// Package orderlight is a from-scratch reproduction of "OrderLight:
// Lightweight Memory-Ordering Primitive for Efficient Fine-Grained PIM
// Computations" (Nag and Balasubramonian, MICRO 2021).
//
// The package is the public facade over the cycle-level simulator in
// internal/: a GPU host issuing fine-grained PIM commands through an
// in-order memory pipe into HBM channels equipped with PIM compute
// units. Three ordering disciplines are available — none (functionally
// incorrect under FR-FCFS reordering), traditional core-centric fences,
// and the paper's memory-centric OrderLight packets — together with the
// full Table 2 workload suite and drivers that regenerate every table
// and figure of the paper's evaluation.
//
// Quick start:
//
//	cfg := orderlight.DefaultConfig()
//	cfg.Run.Primitive = orderlight.PrimitiveOrderLight
//	res, err := orderlight.RunKernel(cfg, "add", 256<<10)
//	fmt.Println(res)
//
// Every entry point has a context-aware variant taking functional
// options. Experiment sweeps fan their cells out across a worker pool
// (one worker per CPU by default) while output stays byte-identical to
// a sequential run:
//
//	tables, err := orderlight.RunAllExperimentsContext(ctx, cfg,
//		orderlight.WithParallelism(4),
//		orderlight.WithProgress(func(done, total int) {
//			fmt.Fprintf(os.Stderr, "\r%d/%d", done, total)
//		}))
//
// Failures are classified by the sentinel errors ErrUnknownKernel,
// ErrUnknownExperiment, ErrInvalidSpec and ErrCanceled; match them
// with errors.Is.
package orderlight

import (
	"context"
	"io"
	"runtime"
	"sync"
	"time"

	"orderlight/internal/config"
	"orderlight/internal/experiments"
	"orderlight/internal/fault"
	"orderlight/internal/gpu"
	"orderlight/internal/isa"
	"orderlight/internal/kernel"
	"orderlight/internal/obs"
	"orderlight/internal/olerrors"
	"orderlight/internal/serve"
	"orderlight/internal/stats"
	"orderlight/internal/trace"
	"orderlight/internal/twin"
)

// Sentinel errors every failure from this package can be classified
// against with errors.Is. They are re-exports of internal/olerrors, so
// internal packages and public callers match the same values.
var (
	// ErrUnknownKernel reports a workload name outside Table 2.
	ErrUnknownKernel = olerrors.ErrUnknownKernel
	// ErrUnknownExperiment reports an experiment ID outside Experiments().
	ErrUnknownExperiment = olerrors.ErrUnknownExperiment
	// ErrInvalidSpec reports a structurally invalid kernel spec or config.
	ErrInvalidSpec = olerrors.ErrInvalidSpec
	// ErrCanceled reports a sweep stopped by its context.
	ErrCanceled = olerrors.ErrCanceled
	// ErrCellPanic reports an experiment cell that panicked; the sweep
	// recovers it into an error instead of crashing.
	ErrCellPanic = olerrors.ErrCellPanic
	// ErrCellTimeout reports a cell killed by the WithCellTimeout
	// watchdog.
	ErrCellTimeout = olerrors.ErrCellTimeout
	// ErrHalted reports a run deterministically stopped by WithHaltAfter
	// after writing its checkpoint; resume with WithResume.
	ErrHalted = olerrors.ErrHalted
	// ErrCheckpointFormat, ErrCheckpointTruncated, ErrCheckpointChecksum
	// and ErrCheckpointVersion classify damaged checkpoint files;
	// ErrCheckpointMismatch reports a healthy checkpoint that belongs to
	// a different run (config, cell or engine disagree).
	ErrCheckpointFormat    = olerrors.ErrCheckpointFormat
	ErrCheckpointTruncated = olerrors.ErrCheckpointTruncated
	ErrCheckpointChecksum  = olerrors.ErrCheckpointChecksum
	ErrCheckpointVersion   = olerrors.ErrCheckpointVersion
	ErrCheckpointMismatch  = olerrors.ErrCheckpointMismatch
	// ErrTwinOutOfConfidence reports a cell the twin engine declines to
	// answer: foreign config, uncalibrated kernel/primitive/footprint,
	// or a faulted or host cell. WithTwinEscalate re-runs such cells on
	// the cycle engine instead. ErrTwinCalibration classifies a damaged
	// or unusable calibration artifact.
	ErrTwinOutOfConfidence = twin.ErrOutOfConfidence
	ErrTwinCalibration     = twin.ErrCalibration
)

// Config is the complete simulator configuration (Table 1 plus PIM and
// run parameters). See internal/config for field documentation.
type Config = config.Config

// Primitive selects the memory-ordering discipline of a run.
type Primitive = config.Primitive

// The four ordering disciplines: no ordering (functionally incorrect),
// the core-centric fence baseline, the paper's OrderLight, and the §8.1
// sequence-number related-work baseline.
const (
	PrimitiveNone       = config.PrimitiveNone
	PrimitiveFence      = config.PrimitiveFence
	PrimitiveOrderLight = config.PrimitiveOrderLight
	PrimitiveSeqno      = config.PrimitiveSeqno
)

// Host kinds: the paper's GPU host and the §9 OoO-CPU extension.
const (
	HostGPU = config.HostGPU
	HostCPU = config.HostCPU
)

// Result holds every measurement of a run: execution time, PIM command
// and data bandwidth, stall cycles, primitive counts, and the functional
// verification verdict.
type Result = stats.Run

// Kernel is a generated, runnable PIM kernel (programs + memory image).
type Kernel = kernel.Kernel

// Spec describes a workload's per-tile phase structure. User code may
// define its own Spec and run it with BuildCustomKernel; Spec.Validate
// reports structural problems.
type Spec = kernel.Spec

// PhaseSpec is one command group within a kernel tile.
type PhaseSpec = kernel.PhaseSpec

// Kind classifies a PIM command; ALUOp selects its arithmetic. These
// re-exports let user code author custom kernel specs.
type (
	Kind  = isa.Kind
	ALUOp = isa.ALUOp
)

// PIM command kinds for custom kernel phases.
const (
	KindPIMLoad    = isa.KindPIMLoad
	KindPIMCompute = isa.KindPIMCompute
	KindPIMStore   = isa.KindPIMStore
	KindPIMScale   = isa.KindPIMScale
	KindPIMExec    = isa.KindPIMExec
)

// ALU operations for custom kernel phases.
const (
	OpNop   = isa.OpNop
	OpAdd   = isa.OpAdd
	OpMul   = isa.OpMul
	OpMAC   = isa.OpMAC
	OpScale = isa.OpScale
	OpCopy  = isa.OpCopy
	OpSub   = isa.OpSub
	OpMax   = isa.OpMax
	OpXor   = isa.OpXor
	OpIncr  = isa.OpIncr
)

// Machine is the assembled simulated system.
type Machine = gpu.Machine

// HostTraffic configures synthetic concurrent host loads (fine-grained
// arbitration scenarios).
type HostTraffic = gpu.HostTraffic

// Table is a rendered experiment result (one paper table or figure).
type Table = experiments.Table

// Tracer records per-request stage crossings through the memory pipe;
// arm one with Machine.SetTracer before Run.
type Tracer = trace.Tracer

// NewTracer creates a tracer retaining the most recent max events.
func NewTracer(max int) *Tracer { return trace.New(max) }

// EventSink consumes the machine's streaming event feed (stage
// crossings, DRAM commands, warp stalls, skip-ahead credits); arm one
// with WithTraceSink or Machine.SetSink.
type EventSink = obs.Sink

// TraceEvent is one event in the streaming feed.
type TraceEvent = obs.Event

// EventTrack names the component timeline a TraceEvent belongs to.
type EventTrack = obs.Track

// PerfettoSink streams the event feed as Chrome trace-event JSON,
// loadable in ui.perfetto.dev. Close it after the run to terminate the
// document.
type PerfettoSink = obs.PerfettoSink

// NewPerfettoSink creates a Perfetto JSON sink streaming to w.
func NewPerfettoSink(w io.Writer) *PerfettoSink { return obs.NewPerfettoSink(w) }

// Manifest is the provenance record of one simulated cell (config hash,
// seed, engine, wall time, go version).
type Manifest = obs.Manifest

// ConfigHash returns the short deterministic digest manifests identify
// configurations by.
func ConfigHash(cfg Config) string { return obs.ConfigHash(cfg) }

// Sampler snapshots a run's counters every N core cycles into a
// time-series; arm one with WithSampler. The cadence is exact even
// under the quiescence skip-ahead engine.
type Sampler = stats.Sampler

// MetricSample is one sampled counter snapshot.
type MetricSample = stats.Sample

// NewSampler creates a sampler with the given cadence in core cycles.
func NewSampler(everyCycles int64) *Sampler { return stats.NewSampler(everyCycles) }

// Scale controls the data footprint experiments simulate.
type Scale = experiments.Scale

// DefaultConfig returns the paper's Table 1 configuration: Volta-class
// GPU, 16-channel HBM, BMF 16, 1/8-row-buffer temporary storage,
// OrderLight primitive.
func DefaultConfig() Config { return config.Default() }

// ParsePrimitive converts "none", "fence" or "orderlight" to a Primitive.
func ParsePrimitive(s string) (Primitive, error) { return config.ParsePrimitive(s) }

// Kernels lists the Table 2 workload names.
func Kernels() []string { return kernel.Names() }

// KernelSpec returns a workload's specification by name.
func KernelSpec(name string) (Spec, error) { return kernel.ByName(name) }

// BuildKernel generates a kernel's programs and initial memory image for
// the given per-channel data footprint in bytes.
func BuildKernel(cfg Config, name string, bytesPerChannel int64) (*Kernel, error) {
	spec, err := kernel.ByName(name)
	if err != nil {
		return nil, err
	}
	return kernel.Build(cfg, spec, bytesPerChannel)
}

// BuildCustomKernel generates a runnable kernel from a user-defined
// spec — the "intrinsics" programming model of §5.4: describe the
// per-tile phase structure and the generator emits the fine-grained PIM
// commands and ordering primitives.
func BuildCustomKernel(cfg Config, spec Spec, bytesPerChannel int64) (*Kernel, error) {
	return kernel.Build(cfg, spec, bytesPerChannel)
}

// SpreadTiles returns a copy of the spec with tiles spread across
// memory-groups (per-group ordering makes this safe; see the
// ablation-placement experiment).
func SpreadTiles(spec Spec) Spec { return kernel.WithSpread(spec) }

// NewMachine assembles a simulator around a built kernel.
func NewMachine(cfg Config, k *Kernel) (*Machine, error) {
	return gpu.NewMachine(cfg, k.Store, k.Programs)
}

// FaultSpec selects a seeded ordering-fault injection campaign class
// for a run (see WithFaultPlan and RunFaultedKernelContext).
type FaultSpec = fault.Spec

// FaultClass enumerates the injectable ordering-fault classes.
type FaultClass = fault.Class

// The injectable fault classes: drop ordering packets at issue, weaken
// OrderLight drain semantics in the controller, illegally reorder
// issues past in-flight epochs in the FR-FCFS arbiter, and delay PIM
// result visibility.
const (
	FaultNone           = fault.ClassNone
	FaultDropOrdering   = fault.ClassDropOrdering
	FaultWeakenDrain    = fault.ClassWeakenDrain
	FaultIllegalReorder = fault.ClassIllegalReorder
	FaultDelayVisible   = fault.ClassDelayVisibility
)

// ParseFaultClass parses a fault-class name (drop, weaken, reorder,
// delay, none).
func ParseFaultClass(s string) (FaultClass, error) { return fault.ParseClass(s) }

// FaultClasses lists every injectable class.
func FaultClasses() []FaultClass { return fault.Classes() }

// FaultVerdict is the differential oracle's classification of a
// fault-injected run; FaultOutcome enumerates its verdicts.
type (
	FaultVerdict = fault.Verdict
	FaultOutcome = fault.Outcome
)

// Oracle outcomes: clean (no fault fired), benign (fault fired, answer
// correct), detected (wrong answer, flagged by verification), escape
// (wrong answer the verifier missed, or oracle/verifier disagreement —
// a simulator bug).
const (
	FaultClean    = fault.OutcomeClean
	FaultBenign   = fault.OutcomeBenign
	FaultDetected = fault.OutcomeDetected
	FaultEscape   = fault.OutcomeEscape
)

// FaultSummary aggregates a fault campaign's verdict counts.
type FaultSummary = experiments.FaultSummary

// RunOpts is the validated bag of run options every entry point builds
// exactly once per call with buildOpts. Most callers never name the
// type — they pass With* options — but services and daemon clients may
// fill it directly (its JSON-tagged fields are the wire format).
// Options never change simulation results — parallelism, progress
// reporting and caching are invisible in the output, which stays
// byte-identical to a sequential run.
type RunOpts = serve.RunOpts

// Option adjusts how a context-aware entry point executes by setting a
// field of the RunOpts bag.
type Option func(*RunOpts)

// buildOpts folds the options into a RunOpts and validates it. Every
// entry point calls it exactly once; all option invariants (resume
// needs a checkpoint directory, negative cadences, malformed fault
// specs, ...) live behind RunOpts.Validate, not in the entry points.
func buildOpts(opts ...Option) (RunOpts, error) {
	var o RunOpts
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.Validate(); err != nil {
		return RunOpts{}, err
	}
	return o, nil
}

// WithParallelism bounds the sweep's worker pool to n goroutines.
// n <= 0 (and the default) means one worker per CPU (GOMAXPROCS);
// WithParallelism(1) forces a fully sequential run.
func WithParallelism(n int) Option {
	return func(o *RunOpts) { o.Parallelism = n }
}

// WithProgress installs a callback invoked after every completed
// simulation cell with the running completion count. Calls are
// serialized and monotonic; the callback must be fast and must not call
// back into this package.
func WithProgress(fn func(done, total int)) Option {
	return func(o *RunOpts) { o.Progress = fn }
}

// WithKernelCache enables or disables the built-kernel cache (enabled
// by default). The cache shares one generated kernel image among every
// cell with identical (config, spec, footprint); each use gets its own
// copy of the mutable memory image, so results are unaffected.
func WithKernelCache(enabled bool) Option {
	return func(o *RunOpts) { o.NoKernelCache = !enabled }
}

// WithDenseEngine runs the simulation on the naive dense tick engine:
// every clock edge fires even when all components are provably idle,
// instead of the default quiescence skip-ahead. Results are
// byte-identical either way (the skip-ahead engine's hints are gated by
// cycle-exact parity tests); the dense engine is the reference for
// those tests and an escape hatch when debugging the simulator itself.
func WithDenseEngine() Option {
	return func(o *RunOpts) { o.Dense = true }
}

// WithParallelEngine runs the simulation on the intra-run parallel
// engine: skip-ahead clocking with each fired edge's per-channel work
// (memory controllers, bank FSMs, PIM units, L2 transfer stages)
// sharded across goroutines and merged at a deterministic barrier.
// Stats, events, cycle counts and memory images are byte-identical to
// the other engines for any shard count; only wall-clock time changes.
// Mutually exclusive with WithDenseEngine.
func WithParallelEngine() Option {
	return func(o *RunOpts) { o.Engine = "parallel" }
}

// WithEngine selects the simulation engine by name: "skip" (the
// default), "dense", "parallel" or "twin" (the calibrated analytical
// model — needs WithCalibration). It is the string-typed form the
// CLIs' -engine flag funnels through; unknown names are rejected by
// option validation, never silently mapped to a default.
func WithEngine(name string) Option {
	return func(o *RunOpts) { o.Engine = name }
}

// WithParallelShards caps the parallel engine's shard count; n <= 0
// picks min(GOMAXPROCS, channels). Implies nothing by itself — combine
// with WithParallelEngine. Results are byte-identical for every value.
func WithParallelShards(n int) Option {
	return func(o *RunOpts) { o.Shards = n }
}

// WithTwin answers the run from the calibrated analytical twin instead
// of simulating: a roofline/queueing model fitted against cycle-engine
// runs predicts cycle counts and stalls in microseconds. Twin answers
// are approximations — each carries the calibration's recorded error
// bound in its manifest, is never marked functionally verified, and is
// never byte-compared against (or cached as) a cycle-engine result.
// The artifact at path is the committed calibration (regenerate with
// `make calibrate`). Cells outside the calibration's confidence domain
// fail with ErrTwinOutOfConfidence unless WithTwinEscalate is set.
func WithTwin(path string) Option {
	return func(o *RunOpts) {
		o.Engine = "twin"
		o.Calibration = path
	}
}

// WithCalibration points the twin engine at a calibration artifact
// without selecting the engine — the string-typed form the CLIs'
// -calibration flag funnels through. Combine with WithEngine("twin");
// WithTwin does both at once.
func WithCalibration(path string) Option {
	return func(o *RunOpts) { o.Calibration = path }
}

// WithTwinEscalate re-runs cells the twin declines as out-of-confidence
// (foreign config, uncalibrated kernel or footprint, faulted or host
// cells) on the skip-ahead cycle engine instead of failing. Escalated
// cells take the ordinary cycle-engine path — same result-cache domain,
// same manifest engine name — so they are byte-identical to a direct
// cycle-engine run.
func WithTwinEscalate() Option {
	return func(o *RunOpts) { o.Escalate = true }
}

// WithScale overrides the data footprint experiments simulate (the
// zero Scale means the default 256 KiB per channel).
func WithScale(sc Scale) Option {
	return func(o *RunOpts) { o.BytesPerChannel = sc.BytesPerChannel }
}

// WithTraceSink streams every machine event of the run into the sink —
// stage crossings, DRAM commands, warp fence/OrderLight stalls, elided
// skip-ahead windows. Only single-cell entry points (RunKernelContext,
// RunSpecContext) accept it; experiment sweeps reject it with
// ErrInvalidSpec because parallel cells would interleave the stream.
func WithTraceSink(s EventSink) Option {
	return func(o *RunOpts) { o.Sink = s }
}

// WithSampler snapshots the run's counters into the sampler every
// sampler-cadence core cycles. Single-cell entry points only, like
// WithTraceSink.
func WithSampler(s *Sampler) Option {
	return func(o *RunOpts) { o.Sampler = s }
}

// WithFaultPlan arms a seeded ordering-fault injection plan for the
// run: the machine deliberately drops ordering packets, weakens drain
// semantics, illegally reorders issues, or delays PIM visibility per
// the spec, and the result carries the differential oracle's Verdict.
// Only single-cell entry points (RunKernelContext, RunSpecContext)
// accept it; experiment sweeps reject it with ErrInvalidSpec — the
// fault campaign (RunFaultCampaignContext) declares its own grid.
func WithFaultPlan(spec FaultSpec) Option {
	return func(o *RunOpts) { o.Fault = spec }
}

// WithManifest attaches a provenance Manifest to every simulated cell;
// experiment tables carry them in Table.Manifests (rendered by
// Table.ManifestMarkdown and the olbench -manifest flag). Manifests
// record wall-clock time, so enabling them makes output
// run-dependent — keep them out of byte-identity comparisons.
func WithManifest() Option {
	return func(o *RunOpts) { o.Manifest = true }
}

// WithCheckpointDir makes the run crash-safe: the directory accumulates
// a per-cell progress journal plus periodic whole-machine checkpoints,
// all written atomically. Combine with WithResume to continue an
// interrupted run deterministically — the resumed run's results are
// byte-identical to an uninterrupted one.
func WithCheckpointDir(dir string) Option {
	return func(o *RunOpts) { o.CheckpointDir = dir }
}

// WithCheckpointEvery sets the mid-run checkpoint cadence in core
// cycles (default 262144). Requires WithCheckpointDir.
func WithCheckpointEvery(cycles int64) Option {
	return func(o *RunOpts) { o.CheckpointEvery = cycles }
}

// WithResume continues an interrupted run from its checkpoint
// directory: cells the journal records complete are not re-simulated,
// and a cell with a mid-run checkpoint restarts from it. Requires
// WithCheckpointDir.
func WithResume() Option {
	return func(o *RunOpts) { o.Resume = true }
}

// WithCellRetries retries a transiently failing cell (panic, deadline,
// watchdog timeout) up to n more times with exponential backoff.
func WithCellRetries(n int) Option {
	return func(o *RunOpts) { o.Retries = n }
}

// WithCellTimeout arms a per-cell wall-clock watchdog: a cell running
// longer is cooperatively aborted and reported as ErrCellTimeout (a
// retryable failure under WithCellRetries).
func WithCellTimeout(d time.Duration) Option {
	return func(o *RunOpts) { o.CellTimeout = d }
}

// WithHaltAfter deterministically stops the run at the first engine
// step past the given core cycle, writes a final checkpoint (with
// WithCheckpointDir) and fails with ErrHalted. It is the reproducible
// "kill" for exercising crash-resume; single-run entry points only.
func WithHaltAfter(cycles int64) Option {
	return func(o *RunOpts) { o.HaltAfter = cycles }
}

// WithResultCache memoizes completed cells in a content-addressed
// on-disk store: a later run (same process or not) that needs an
// identical cell — same config hash, kernel, footprint and engine —
// is served from the cache without simulating, byte-identical to a
// recompute. Fault-injected cells are never cached (the oracle must
// re-run), and a damaged cache entry falls back to recomputation.
// An empty dir keeps the cache in memory only.
func WithResultCache(dir string) Option {
	return func(o *RunOpts) { o.CacheDir = dir }
}

// inProcess is the lazily started Service behind the Run* facade: a
// local job service with a deep queue and one job worker per CPU. The
// facade entry points are thin adapters over it — the same Submit,
// Await and Execute path a daemon request takes, which is what keeps
// HTTP results byte-identical to in-process ones.
var (
	inProcessOnce sync.Once
	inProcessSvc  *serve.Local
)

func inProcess() *serve.Local {
	inProcessOnce.Do(func() {
		inProcessSvc = serve.NewLocal(serve.LocalConfig{
			QueueDepth: 4096,
			Workers:    runtime.GOMAXPROCS(0),
		})
	})
	return inProcessSvc
}

// runJob submits one request to the in-process service and waits for
// its result, returning the job's original error object so errors.Is
// classification is exact. One-shot jobs are forgotten after
// collection — the facade does not accumulate job records.
func runJob(ctx context.Context, req serve.JobRequest) (*serve.JobResult, error) {
	svc := inProcess()
	id, err := svc.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	res, err := serve.Await(ctx, svc, id, nil)
	svc.Forget(id)
	return res, err
}

// RunKernelContext builds and simulates a named kernel under ctx. The
// run executes on the experiment engine, so a panic inside the
// simulator surfaces as an error wrapping ErrCellPanic and a canceled
// context as ErrCanceled.
func RunKernelContext(ctx context.Context, cfg Config, name string, bytesPerChannel int64, opts ...Option) (*Result, error) {
	o, err := buildOpts(opts...)
	if err != nil {
		return nil, err
	}
	res, err := runJob(ctx, serve.JobRequest{
		Kind: serve.KindKernel, Kernel: name, Bytes: bytesPerChannel, Config: &cfg, Opts: o,
	})
	if err != nil {
		return nil, err
	}
	return res.Run, nil
}

// RunSpecContext builds and simulates a user-defined spec under ctx,
// returning the measurements together with the built kernel (for
// HostBaseline and inspection).
func RunSpecContext(ctx context.Context, cfg Config, spec Spec, bytesPerChannel int64, opts ...Option) (*Result, *Kernel, error) {
	o, err := buildOpts(opts...)
	if err != nil {
		return nil, nil, err
	}
	res, err := runJob(ctx, serve.JobRequest{
		Kind: serve.KindSpec, Spec: &spec, Bytes: bytesPerChannel, Config: &cfg, Opts: o,
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Run, res.Kernel, nil
}

// RunFaultedKernelContext builds and simulates a named kernel with the
// given ordering-fault spec armed, returning the measurements together
// with the differential oracle's verdict. A verdict of FaultEscape
// means the simulator produced a wrong answer its own verification
// machinery failed to flag — a simulator bug.
func RunFaultedKernelContext(ctx context.Context, cfg Config, name string, bytesPerChannel int64, fspec FaultSpec, opts ...Option) (*Result, *FaultVerdict, error) {
	o, err := buildOpts(opts...)
	if err != nil {
		return nil, nil, err
	}
	o.Fault = fspec
	if err := o.Validate(); err != nil {
		return nil, nil, err
	}
	res, err := runJob(ctx, serve.JobRequest{
		Kind: serve.KindKernel, Kernel: name, Bytes: bytesPerChannel, Config: &cfg, Opts: o,
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Run, res.Verdict, nil
}

// RunKernel builds and simulates a named kernel and returns its
// measurements. It is RunKernelContext without cancellation.
func RunKernel(cfg Config, name string, bytesPerChannel int64) (*Result, error) {
	return RunKernelContext(context.Background(), cfg, name, bytesPerChannel)
}

// HostBaseline returns the roofline GPU-only execution time for a built
// kernel, in milliseconds — the paper's GPU bars.
func HostBaseline(cfg Config, k *Kernel) float64 {
	return k.HostTime(cfg).Milliseconds()
}

// Experiments lists every reproducible table/figure ID.
func Experiments() []string { return experiments.IDs() }

// ExperimentTitle returns an experiment's one-line description.
func ExperimentTitle(id string) string { return experiments.Title(id) }

// RunExperimentContext regenerates one paper table/figure (or ablation)
// under ctx, fanning its simulation cells across the worker pool.
func RunExperimentContext(ctx context.Context, id string, cfg Config, opts ...Option) (*Table, error) {
	o, err := buildOpts(opts...)
	if err != nil {
		return nil, err
	}
	res, err := runJob(ctx, serve.JobRequest{
		Kind: serve.KindExperiment, Experiment: id, Config: &cfg, Opts: o,
	})
	if err != nil {
		return nil, err
	}
	return res.Tables[0], nil
}

// RunAllExperimentsContext regenerates every table and figure under
// ctx. All experiments' cells share one worker pool and one kernel
// cache, so the sweep saturates the machine across experiment
// boundaries; tables come back in Experiments() order and are
// byte-identical to a sequential (WithParallelism(1)) run.
func RunAllExperimentsContext(ctx context.Context, cfg Config, opts ...Option) ([]*Table, error) {
	o, err := buildOpts(opts...)
	if err != nil {
		return nil, err
	}
	res, err := runJob(ctx, serve.JobRequest{
		Kind: serve.KindSweep, Config: &cfg, Opts: o,
	})
	if err != nil {
		return nil, err
	}
	return res.Tables, nil
}

// RunFaultCampaignContext runs the default ordering-fault injection
// campaign (kernel × fault-class × seed grid, experiment ID
// "fault-campaign") and returns the rendered matrix together with the
// verdict summary. Summary.Escapes must be zero on a healthy simulator
// and Summary.PinnedDetected must be true: the campaign pins the
// paper's Figure 5 no-fence wrong answer as a deterministic detection.
func RunFaultCampaignContext(ctx context.Context, cfg Config, opts ...Option) (*Table, FaultSummary, error) {
	o, err := buildOpts(opts...)
	if err != nil {
		return nil, FaultSummary{}, err
	}
	res, err := runJob(ctx, serve.JobRequest{
		Kind: serve.KindFaultCampaign, Config: &cfg, Opts: o,
	})
	if err != nil {
		return nil, FaultSummary{}, err
	}
	return res.Tables[0], *res.Summary, nil
}

// RunExperiment regenerates one paper table/figure (or ablation). It is
// RunExperimentContext without cancellation.
func RunExperiment(id string, cfg Config, sc Scale) (*Table, error) {
	return RunExperimentContext(context.Background(), id, cfg, WithScale(sc))
}

// RunAllExperiments regenerates every table and figure. It is
// RunAllExperimentsContext without cancellation.
func RunAllExperiments(cfg Config, sc Scale) ([]*Table, error) {
	return RunAllExperimentsContext(context.Background(), cfg, WithScale(sc))
}

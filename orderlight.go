// Package orderlight is a from-scratch reproduction of "OrderLight:
// Lightweight Memory-Ordering Primitive for Efficient Fine-Grained PIM
// Computations" (Nag and Balasubramonian, MICRO 2021).
//
// The package is the public facade over the cycle-level simulator in
// internal/: a GPU host issuing fine-grained PIM commands through an
// in-order memory pipe into HBM channels equipped with PIM compute
// units. Three ordering disciplines are available — none (functionally
// incorrect under FR-FCFS reordering), traditional core-centric fences,
// and the paper's memory-centric OrderLight packets — together with the
// full Table 2 workload suite and drivers that regenerate every table
// and figure of the paper's evaluation.
//
// Quick start:
//
//	cfg := orderlight.DefaultConfig()
//	cfg.Run.Primitive = orderlight.PrimitiveOrderLight
//	res, err := orderlight.RunKernel(cfg, "add", 256<<10)
//	fmt.Println(res)
package orderlight

import (
	"orderlight/internal/config"
	"orderlight/internal/experiments"
	"orderlight/internal/gpu"
	"orderlight/internal/isa"
	"orderlight/internal/kernel"
	"orderlight/internal/stats"
	"orderlight/internal/trace"
)

// Config is the complete simulator configuration (Table 1 plus PIM and
// run parameters). See internal/config for field documentation.
type Config = config.Config

// Primitive selects the memory-ordering discipline of a run.
type Primitive = config.Primitive

// The four ordering disciplines: no ordering (functionally incorrect),
// the core-centric fence baseline, the paper's OrderLight, and the §8.1
// sequence-number related-work baseline.
const (
	PrimitiveNone       = config.PrimitiveNone
	PrimitiveFence      = config.PrimitiveFence
	PrimitiveOrderLight = config.PrimitiveOrderLight
	PrimitiveSeqno      = config.PrimitiveSeqno
)

// Host kinds: the paper's GPU host and the §9 OoO-CPU extension.
const (
	HostGPU = config.HostGPU
	HostCPU = config.HostCPU
)

// Result holds every measurement of a run: execution time, PIM command
// and data bandwidth, stall cycles, primitive counts, and the functional
// verification verdict.
type Result = stats.Run

// Kernel is a generated, runnable PIM kernel (programs + memory image).
type Kernel = kernel.Kernel

// Spec describes a workload's per-tile phase structure. User code may
// define its own Spec and run it with BuildCustomKernel; Spec.Validate
// reports structural problems.
type Spec = kernel.Spec

// PhaseSpec is one command group within a kernel tile.
type PhaseSpec = kernel.PhaseSpec

// Kind classifies a PIM command; ALUOp selects its arithmetic. These
// re-exports let user code author custom kernel specs.
type (
	Kind  = isa.Kind
	ALUOp = isa.ALUOp
)

// PIM command kinds for custom kernel phases.
const (
	KindPIMLoad    = isa.KindPIMLoad
	KindPIMCompute = isa.KindPIMCompute
	KindPIMStore   = isa.KindPIMStore
	KindPIMScale   = isa.KindPIMScale
	KindPIMExec    = isa.KindPIMExec
)

// ALU operations for custom kernel phases.
const (
	OpNop   = isa.OpNop
	OpAdd   = isa.OpAdd
	OpMul   = isa.OpMul
	OpMAC   = isa.OpMAC
	OpScale = isa.OpScale
	OpCopy  = isa.OpCopy
	OpSub   = isa.OpSub
	OpMax   = isa.OpMax
	OpXor   = isa.OpXor
	OpIncr  = isa.OpIncr
)

// Machine is the assembled simulated system.
type Machine = gpu.Machine

// HostTraffic configures synthetic concurrent host loads (fine-grained
// arbitration scenarios).
type HostTraffic = gpu.HostTraffic

// Table is a rendered experiment result (one paper table or figure).
type Table = experiments.Table

// Tracer records per-request stage crossings through the memory pipe;
// arm one with Machine.SetTracer before Run.
type Tracer = trace.Tracer

// NewTracer creates a tracer retaining the most recent max events.
func NewTracer(max int) *Tracer { return trace.New(max) }

// Scale controls the data footprint experiments simulate.
type Scale = experiments.Scale

// DefaultConfig returns the paper's Table 1 configuration: Volta-class
// GPU, 16-channel HBM, BMF 16, 1/8-row-buffer temporary storage,
// OrderLight primitive.
func DefaultConfig() Config { return config.Default() }

// ParsePrimitive converts "none", "fence" or "orderlight" to a Primitive.
func ParsePrimitive(s string) (Primitive, error) { return config.ParsePrimitive(s) }

// Kernels lists the Table 2 workload names.
func Kernels() []string { return kernel.Names() }

// KernelSpec returns a workload's specification by name.
func KernelSpec(name string) (Spec, error) { return kernel.ByName(name) }

// BuildKernel generates a kernel's programs and initial memory image for
// the given per-channel data footprint in bytes.
func BuildKernel(cfg Config, name string, bytesPerChannel int64) (*Kernel, error) {
	spec, err := kernel.ByName(name)
	if err != nil {
		return nil, err
	}
	return kernel.Build(cfg, spec, bytesPerChannel)
}

// BuildCustomKernel generates a runnable kernel from a user-defined
// spec — the "intrinsics" programming model of §5.4: describe the
// per-tile phase structure and the generator emits the fine-grained PIM
// commands and ordering primitives.
func BuildCustomKernel(cfg Config, spec Spec, bytesPerChannel int64) (*Kernel, error) {
	return kernel.Build(cfg, spec, bytesPerChannel)
}

// SpreadTiles returns a copy of the spec with tiles spread across
// memory-groups (per-group ordering makes this safe; see the
// ablation-placement experiment).
func SpreadTiles(spec Spec) Spec { return kernel.WithSpread(spec) }

// NewMachine assembles a simulator around a built kernel.
func NewMachine(cfg Config, k *Kernel) (*Machine, error) {
	return gpu.NewMachine(cfg, k.Store, k.Programs)
}

// RunKernel builds and simulates a named kernel and returns its
// measurements.
func RunKernel(cfg Config, name string, bytesPerChannel int64) (*Result, error) {
	k, err := BuildKernel(cfg, name, bytesPerChannel)
	if err != nil {
		return nil, err
	}
	m, err := NewMachine(cfg, k)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// HostBaseline returns the roofline GPU-only execution time for a built
// kernel, in milliseconds — the paper's GPU bars.
func HostBaseline(cfg Config, k *Kernel) float64 {
	return k.HostTime(cfg).Milliseconds()
}

// Experiments lists every reproducible table/figure ID.
func Experiments() []string { return experiments.IDs() }

// ExperimentTitle returns an experiment's one-line description.
func ExperimentTitle(id string) string { return experiments.Title(id) }

// RunExperiment regenerates one paper table/figure (or ablation).
func RunExperiment(id string, cfg Config, sc Scale) (*Table, error) {
	return experiments.Run(id, cfg, sc)
}

// RunAllExperiments regenerates every table and figure.
func RunAllExperiments(cfg Config, sc Scale) ([]*Table, error) {
	return experiments.RunAll(cfg, sc)
}

package orderlight_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"orderlight"
)

// startDaemon spins a production service behind a real HTTP server and
// returns a client for it — the public-API equivalent of running
// olserve.
func startDaemon(t *testing.T, cfg orderlight.LocalServiceConfig) *orderlight.ServiceClient {
	t.Helper()
	svc := orderlight.NewLocalService(cfg)
	srv := httptest.NewServer(orderlight.NewServiceHandler(svc))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return orderlight.NewServiceClient(srv.URL, srv.Client())
}

// TestServiceParityWithFacade is the acceptance gate of the serving
// layer: a figure requested from a daemon over HTTP renders
// byte-identically to the same figure computed with the plain library
// facade.
func TestServiceParityWithFacade(t *testing.T) {
	cfg := apiConfig()
	want, err := orderlight.RunExperiment("fig5", cfg, orderlight.Scale{})
	if err != nil {
		t.Fatal(err)
	}

	client := startDaemon(t, orderlight.LocalServiceConfig{Workers: 2})
	ctx := context.Background()
	id, err := client.Submit(ctx, orderlight.JobRequest{
		Kind: orderlight.JobExperiment, Experiment: "fig5", Config: &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := orderlight.AwaitJob(ctx, client, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tables[0].Markdown(); got != want.Markdown() {
		t.Fatalf("daemon fig5 differs from facade fig5:\n--- daemon ---\n%s\n--- facade ---\n%s", got, want.Markdown())
	}
}

// TestServiceSentinelsAcrossHTTP pins the JobError round trip: the
// sentinels a failure classifies under in process still match with
// errors.Is after crossing the wire as {code, message}.
func TestServiceSentinelsAcrossHTTP(t *testing.T) {
	client := startDaemon(t, orderlight.LocalServiceConfig{})
	ctx := context.Background()
	cfg := apiConfig()

	if _, err := client.Submit(ctx, orderlight.JobRequest{
		Kind: orderlight.JobKernel, Kernel: "not-a-kernel", Config: &cfg,
	}); !errors.Is(err, orderlight.ErrUnknownKernel) {
		t.Fatalf("bad kernel over HTTP = %v, want ErrUnknownKernel", err)
	}
	if _, err := client.Submit(ctx, orderlight.JobRequest{
		Kind: orderlight.JobExperiment, Experiment: "fig99", Config: &cfg,
	}); !errors.Is(err, orderlight.ErrUnknownExperiment) {
		t.Fatalf("bad experiment over HTTP = %v, want ErrUnknownExperiment", err)
	}
	if _, err := client.Status(ctx, "job-000099"); !errors.Is(err, orderlight.ErrUnknownJob) {
		t.Fatalf("unknown job over HTTP = %v, want ErrUnknownJob", err)
	}

	// A deterministic runtime failure: halting a kernel without a
	// checkpoint directory is invalid; with one, the halt sentinel
	// itself crosses the wire.
	dir := t.TempDir()
	id, err := client.Submit(ctx, orderlight.JobRequest{
		Kind: orderlight.JobKernel, Kernel: "add", Bytes: 8 << 10, Config: &cfg,
		Opts: orderlight.RunOpts{CheckpointDir: dir, HaltAfter: 200},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := orderlight.AwaitJob(ctx, client, id, nil); !errors.Is(err, orderlight.ErrHalted) {
		t.Fatalf("halted job over HTTP = %v, want ErrHalted", err)
	}
	st, err := client.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != orderlight.JobFailed || st.Error == nil || st.Error.Code != "halted" {
		t.Fatalf("halted status = %+v", st)
	}
}

// TestFacadeRunsOnService pins the adapter wiring: the Run* facade is
// a client of the same Service machinery, so a facade sweep and a
// direct service sweep agree byte for byte.
func TestFacadeRunsOnService(t *testing.T) {
	cfg := apiConfig()
	ctx := context.Background()

	facade, err := orderlight.RunExperimentContext(ctx, "table2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := orderlight.NewLocalService(orderlight.LocalServiceConfig{})
	defer svc.Close()
	id, err := svc.Submit(ctx, orderlight.JobRequest{
		Kind: orderlight.JobExperiment, Experiment: "table2", Config: &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := orderlight.AwaitJob(ctx, svc, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].Markdown() != facade.Markdown() {
		t.Fatal("facade and direct service disagree on table2")
	}
}

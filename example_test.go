package orderlight_test

import (
	"fmt"
	"log"

	"orderlight"
)

// Example runs the paper's vector_add kernel under OrderLight on the
// Table 1 machine and checks the functional verdict.
func Example() {
	cfg := orderlight.DefaultConfig()
	cfg.Run.Primitive = orderlight.PrimitiveOrderLight
	res, err := orderlight.RunKernel(cfg, "add", 32<<10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("functionally correct:", res.Correct)
	fmt.Println("issued PIM commands:", res.PIMCommands)
	// Output:
	// functionally correct: true
	// issued PIM commands: 3072
}

// ExampleRunKernel_primitives contrasts the three ordering disciplines
// of the paper's evaluation: no ordering is fast but wrong, fences are
// correct but slow, OrderLight is correct and close to unordered speed.
func ExampleRunKernel_primitives() {
	cfg := orderlight.DefaultConfig()
	run := func(p orderlight.Primitive) *orderlight.Result {
		cfg.Run.Primitive = p
		res, err := orderlight.RunKernel(cfg, "triad", 32<<10)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	none := run(orderlight.PrimitiveNone)
	fence := run(orderlight.PrimitiveFence)
	ol := run(orderlight.PrimitiveOrderLight)

	fmt.Println("none correct:", none.Correct)
	fmt.Println("fence correct:", fence.Correct)
	fmt.Println("orderlight correct:", ol.Correct)
	fmt.Println("orderlight faster than fence:", ol.ExecTime() < fence.ExecTime())
	fmt.Println("fence wait per fence > 100 cycles:", fence.WaitCyclesPerFence() > 100)
	// Output:
	// none correct: false
	// fence correct: true
	// orderlight correct: true
	// orderlight faster than fence: true
	// fence wait per fence > 100 cycles: true
}

// ExampleBuildCustomKernel authors a user-defined kernel through the
// public API (§5.4's intrinsics-style programming model).
func ExampleBuildCustomKernel() {
	spec := orderlight.Spec{
		Name: "axpby", Desc: "y = a*x + b*y", ComputeRatio: "2:3",
		DataStructs: 2, MultiDS: true,
		Phases: []orderlight.PhaseSpec{
			{Name: "load y", Kind: orderlight.KindPIMLoad, Vec: 1, CmdsPerN: 1},
			{Name: "scale y", Kind: orderlight.KindPIMExec, Op: orderlight.OpMul, Imm: 2, CmdsPerN: 1},
			{Name: "mac x", Kind: orderlight.KindPIMCompute, Op: orderlight.OpMAC, Vec: 0, Imm: 3, CmdsPerN: 1},
			{Name: "store y", Kind: orderlight.KindPIMStore, Vec: 1, CmdsPerN: 1},
		},
	}
	cfg := orderlight.DefaultConfig()
	cfg.Run.Primitive = orderlight.PrimitiveOrderLight
	k, err := orderlight.BuildCustomKernel(cfg, spec, 16<<10)
	if err != nil {
		log.Fatal(err)
	}
	m, err := orderlight.NewMachine(cfg, k)
	if err != nil {
		log.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("correct:", res.Correct)
	fmt.Println("ordering primitives per tile:", 4)
	// Output:
	// correct: true
	// ordering primitives per tile: 4
}

// ExampleRunExperiment regenerates one of the paper's tables.
func ExampleRunExperiment() {
	tab, err := orderlight.RunExperiment("table2", orderlight.DefaultConfig(), orderlight.Scale{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rows:", len(tab.Rows))
	fmt.Println("first kernel:", tab.Rows[0][0])
	// Output:
	// rows: 12
	// first kernel: scale
}

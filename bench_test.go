package orderlight

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/core"
	"orderlight/internal/dram"
	"orderlight/internal/experiments"
	"orderlight/internal/isa"
	"orderlight/internal/sim"
)

// benchScale keeps one full-figure regeneration around a second; raise
// it (or use cmd/olbench) for steadier steady-state numbers.
var benchScale = Scale{BytesPerChannel: 32 << 10}

// benchConfig is the Table 1 machine.
func benchConfig() Config { return DefaultConfig() }

// runExperiment is the common body: regenerate the figure b.N times and
// surface one headline metric from the result.
func runExperiment(b *testing.B, id string, metricRow, metricCol int, metricName string) {
	b.Helper()
	cfg := benchConfig()
	var tab *Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Run(id, cfg, benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	if metricRow >= 0 && metricRow < len(tab.Rows) {
		if v, perr := strconv.ParseFloat(tab.Rows[metricRow][metricCol], 64); perr == nil {
			b.ReportMetric(v, metricName)
		}
	}
}

// runExperimentDense is runExperiment on the naive dense tick engine —
// the parity reference. Each Dense benchmark pairs with its plain
// counterpart; cmd/benchjson derives the skip-ahead speedup from the
// pair, which is the number the benchmark trajectory tracks.
func runExperimentDense(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := RunExperimentContext(context.Background(), id, cfg,
			WithScale(benchScale), WithDenseEngine()); err != nil {
			b.Fatal(err)
		}
	}
}

// runExperimentParallel is runExperiment on the intra-run parallel
// engine. Each Parallel benchmark pairs with its plain counterpart the
// way the Dense ones do; cmd/benchjson derives the parallel-vs-skip
// speedup from the pair. shards <= 0 uses min(GOMAXPROCS, channels).
func runExperimentParallel(b *testing.B, id string, shards int) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := RunExperimentContext(context.Background(), id, cfg,
			WithScale(benchScale), WithParallelEngine(), WithParallelShards(shards)); err != nil {
			b.Fatal(err)
		}
	}
}

// runExperimentTwin is runExperiment on the calibrated analytical twin.
// Each Twin benchmark pairs with its plain counterpart; cmd/benchjson
// derives the twin-vs-skip speedup from the pair, which is the µs-per-
// cell trajectory the benchmark record tracks. Unlike the Dense and
// Parallel pairs the outputs are approximate, not byte-identical — the
// speedup is what the recorded error bounds buy. Skips when the
// committed calibration artifact is absent (make calibrate).
func runExperimentTwin(b *testing.B, id string) {
	b.Helper()
	if _, err := os.Stat("calibration.olcal"); err != nil {
		b.Skip("calibration.olcal not present; run `make calibrate`")
	}
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := RunExperimentContext(context.Background(), id, cfg,
			WithScale(benchScale), WithTwin("calibration.olcal")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Config regenerates the configuration table (Table 1).
func BenchmarkTable1Config(b *testing.B) { runExperiment(b, "table1", -1, 0, "") }

// BenchmarkTable2Workloads regenerates the workload table (Table 2).
func BenchmarkTable2Workloads(b *testing.B) { runExperiment(b, "table2", -1, 0, "") }

// BenchmarkFig5FenceOverhead regenerates Figure 5 (fence overhead for
// vector_add) and reports the 1/8-RB wait cycles per fence.
func BenchmarkFig5FenceOverhead(b *testing.B) {
	runExperiment(b, "fig5", 2, 2, "waitCycles/fence@1/8RB")
}

// BenchmarkFig5FenceOverheadDense is Figure 5 on the dense reference
// engine (skip-ahead disabled).
func BenchmarkFig5FenceOverheadDense(b *testing.B) { runExperimentDense(b, "fig5") }

// BenchmarkFig5FenceOverheadParallel is Figure 5 on the intra-run
// parallel engine (per-channel goroutine shards, byte-identical output).
func BenchmarkFig5FenceOverheadParallel(b *testing.B) { runExperimentParallel(b, "fig5", 0) }

// BenchmarkFig5FenceOverheadTwin is Figure 5 answered by the calibrated
// analytical twin — no cycles simulated, approximate within recorded
// error bounds.
func BenchmarkFig5FenceOverheadTwin(b *testing.B) { runExperimentTwin(b, "fig5") }

// BenchmarkFig5CacheWarm regenerates Figure 5 against a warm
// content-addressed result cache: after one priming run, every cell is
// served from the cache, so this is the memoization floor — key
// hashing, blob decode and table assembly, zero cells simulated.
// Compare with BenchmarkFig5FenceOverhead for the cache's payoff.
func BenchmarkFig5CacheWarm(b *testing.B) {
	cfg := benchConfig()
	dir := b.TempDir()
	prime := func() (*Table, error) {
		return RunExperimentContext(context.Background(), "fig5", cfg,
			WithScale(benchScale), WithResultCache(dir))
	}
	if _, err := prime(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prime(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10aStreamBandwidth regenerates Figure 10a and reports the
// Add kernel's OrderLight command bandwidth at 1/8 RB.
func BenchmarkFig10aStreamBandwidth(b *testing.B) {
	runExperiment(b, "fig10a", 17, 3, "addOL-GC/s@1/8RB")
}

// BenchmarkFig10aStreamBandwidthParallel is Figure 10a on the intra-run
// parallel engine.
func BenchmarkFig10aStreamBandwidthParallel(b *testing.B) { runExperimentParallel(b, "fig10a", 0) }

// BenchmarkFig10bStreamTime regenerates Figure 10b and reports the Add
// kernel's OrderLight speedup over the GPU at 1/8 RB.
func BenchmarkFig10bStreamTime(b *testing.B) {
	runExperiment(b, "fig10b", 17, 7, "addOLvsGPU@1/8RB")
}

// BenchmarkFig11PeakCommandBW regenerates Figure 11 and reports the
// measured fraction of the analytic DRAM-timing peak.
func BenchmarkFig11PeakCommandBW(b *testing.B) {
	runExperiment(b, "fig11", 4, 1, "measured/peak")
}

// BenchmarkFig12Applications regenerates Figure 12 and reports bn_fwd's
// OrderLight speedup over fence at 1/16 RB.
func BenchmarkFig12Applications(b *testing.B) {
	runExperiment(b, "fig12", 0, 4, "bnFwdSpeedup@1/16RB")
}

// BenchmarkFig12ApplicationsDense is Figure 12 on the dense reference
// engine.
func BenchmarkFig12ApplicationsDense(b *testing.B) { runExperimentDense(b, "fig12") }

// BenchmarkFig12ApplicationsParallel is Figure 12 on the intra-run
// parallel engine.
func BenchmarkFig12ApplicationsParallel(b *testing.B) { runExperimentParallel(b, "fig12", 0) }

// BenchmarkFig12ApplicationsTwin is Figure 12 answered by the
// calibrated analytical twin.
func BenchmarkFig12ApplicationsTwin(b *testing.B) { runExperimentTwin(b, "fig12") }

// BenchmarkFig12ShardSweep sweeps the parallel engine's shard count on
// the Figure 12 regeneration — the GOMAXPROCS-sensitivity curve.
// Results are byte-identical at every point; only wall time moves, and
// on a single-CPU machine the curve is flat-to-worse, which is the
// honest number (shards beyond the core count only add barrier
// overhead). cmd/benchjson -scaling renders the curve for results_all.md.
func BenchmarkFig12ShardSweep(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			runExperimentParallel(b, "fig12", shards)
		})
	}
}

// BenchmarkFig13BMFSweep regenerates Figure 13 and reports the BMF-4
// OrderLight-over-fence ratio at 1/16 RB.
func BenchmarkFig13BMFSweep(b *testing.B) {
	runExperiment(b, "fig13", 0, 5, "OLoverFence@BMF4")
}

// BenchmarkAblationSubPartitions regenerates the copy-and-merge ablation.
func BenchmarkAblationSubPartitions(b *testing.B) {
	runExperiment(b, "ablation-subpart", -1, 0, "")
}

// BenchmarkAblationPlacement regenerates the operand-placement ablation.
func BenchmarkAblationPlacement(b *testing.B) {
	runExperiment(b, "ablation-placement", -1, 0, "")
}

// BenchmarkAblationOoOHost regenerates the §9 OoO-CPU-host ablation.
func BenchmarkAblationOoOHost(b *testing.B) {
	runExperiment(b, "ablation-ooo", -1, 0, "")
}

// BenchmarkRelatedSeqno regenerates the §8.1 sequence-number comparison
// and reports OrderLight's command bandwidth.
func BenchmarkRelatedSeqno(b *testing.B) {
	runExperiment(b, "related-seqno", 4, 2, "orderlightGC/s")
}

// BenchmarkAblationHostConcurrency regenerates the FGA host-sharing
// ablation.
func BenchmarkAblationHostConcurrency(b *testing.B) {
	runExperiment(b, "ablation-host", -1, 0, "")
}

// BenchmarkAblationNoC regenerates the §9 multi-route NoC ablation.
func BenchmarkAblationNoC(b *testing.B) {
	runExperiment(b, "ablation-noc", -1, 0, "")
}

// BenchmarkAblationRefresh regenerates the DRAM-refresh ablation.
func BenchmarkAblationRefresh(b *testing.B) {
	runExperiment(b, "ablation-refresh", -1, 0, "")
}

// BenchmarkAblationSched regenerates the scheduler-policy ablation.
func BenchmarkAblationSched(b *testing.B) {
	runExperiment(b, "ablation-sched", -1, 0, "")
}

// BenchmarkTaxonomyArbitration regenerates the §3.2 FGA-vs-CGA study
// and reports the CGA/FGA host-latency ratio.
func BenchmarkTaxonomyArbitration(b *testing.B) {
	runExperiment(b, "taxonomy-arbitration", 1, 3, "cgaOverFgaLatency")
}

// BenchmarkValidationHostBW regenerates the host-bandwidth validation
// and reports the measured streaming bandwidth for copy.
func BenchmarkValidationHostBW(b *testing.B) {
	runExperiment(b, "validation-hostbw", 0, 4, "hostGB/s")
}

// BenchmarkSensitivityGranularity regenerates the offload-size
// break-even sweep and reports OL-vs-GPU at the smallest offload.
func BenchmarkSensitivityGranularity(b *testing.B) {
	runExperiment(b, "sensitivity-granularity", 0, 5, "OLvsGPU@4KiB")
}

// BenchmarkSensitivitySMs regenerates the SM-apportionment sweep.
func BenchmarkSensitivitySMs(b *testing.B) {
	runExperiment(b, "sensitivity-sms", -1, 0, "")
}

// --- Component microbenchmarks -------------------------------------

// BenchmarkMachineAddOrderLight measures whole-machine simulation
// throughput: simulated PIM commands per wall second for the Add kernel
// under OrderLight.
func BenchmarkMachineAddOrderLight(b *testing.B) {
	cfg := benchConfig()
	cfg.Run.Primitive = PrimitiveOrderLight
	var cmds int64
	for i := 0; i < b.N; i++ {
		res, err := RunKernel(cfg, "add", 32<<10)
		if err != nil {
			b.Fatal(err)
		}
		cmds += res.PIMCommands
	}
	b.ReportMetric(float64(cmds)/b.Elapsed().Seconds(), "simCmds/s")
}

// BenchmarkMachineAddFence is the fence-mode counterpart (the simulator
// spends most of its cycles idling warps, so this is slower per command).
func BenchmarkMachineAddFence(b *testing.B) {
	cfg := benchConfig()
	cfg.Run.Primitive = PrimitiveFence
	for i := 0; i < b.N; i++ {
		if _, err := RunKernel(cfg, "add", 16<<10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineAddOrderLightDense is the OrderLight machine run on
// the dense reference engine.
func BenchmarkMachineAddOrderLightDense(b *testing.B) {
	cfg := benchConfig()
	cfg.Run.Primitive = PrimitiveOrderLight
	for i := 0; i < b.N; i++ {
		if _, err := RunKernelContext(context.Background(), cfg, "add", 32<<10, WithDenseEngine()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineAddFenceDense is the fence machine run on the dense
// reference engine. Fence mode idles warps for most of the simulated
// time, so this pair shows skip-ahead at its best.
func BenchmarkMachineAddFenceDense(b *testing.B) {
	cfg := benchConfig()
	cfg.Run.Primitive = PrimitiveFence
	for i := 0; i < b.N; i++ {
		if _, err := RunKernelContext(context.Background(), cfg, "add", 16<<10, WithDenseEngine()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineAddOrderLightParallel is the OrderLight machine run
// on the intra-run parallel engine.
func BenchmarkMachineAddOrderLightParallel(b *testing.B) {
	cfg := benchConfig()
	cfg.Run.Primitive = PrimitiveOrderLight
	for i := 0; i < b.N; i++ {
		if _, err := RunKernelContext(context.Background(), cfg, "add", 32<<10, WithParallelEngine()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineAddFenceParallel is the fence machine run on the
// intra-run parallel engine. Fence mode fires far more clock edges, so
// this pair is where the per-tick barrier cost shows.
func BenchmarkMachineAddFenceParallel(b *testing.B) {
	cfg := benchConfig()
	cfg.Run.Primitive = PrimitiveFence
	for i := 0; i < b.N; i++ {
		if _, err := RunKernelContext(context.Background(), cfg, "add", 16<<10, WithParallelEngine()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeSteadyState measures the ring-buffer Pipe and Queue on
// steady-state traffic; allocs/op must report 0.
func BenchmarkPipeSteadyState(b *testing.B) {
	p := sim.NewPipe[int](3, 16)
	q := sim.NewQueue[int](16)
	now := sim.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 16; j++ {
			p.Push(now, j)
			q.Push(j)
		}
		for j := 0; j < 16; j++ {
			p.Pop(now + 3)
			q.Pop()
		}
		now++
	}
}

// BenchmarkOLPacketCodec measures the Figure 8 bit-packing round trip.
func BenchmarkOLPacketCodec(b *testing.B) {
	p := isa.OLPacket{PktID: isa.PktIDOrderLight, Channel: 7, Group: 3, Number: 12345}
	var sink uint64
	for i := 0; i < b.N; i++ {
		p.Number = uint32(i)
		sink += isa.DecodeOLPacket(p.Encode()).Encode()
	}
	_ = sink
}

// BenchmarkTracker measures the memory controller's per-request ordering
// bookkeeping (arrive + issue, with periodic OrderLight packets).
func BenchmarkTracker(b *testing.B) {
	tr := core.NewTracker(4)
	var num uint32
	for i := 0; i < b.N; i++ {
		g := i & 3
		e := tr.Arrive(g)
		if i%8 == 7 {
			_ = tr.OrderLight(g, num)
			num++
		}
		tr.Issued(g, e)
	}
}

// BenchmarkDRAMTiming measures the bank timing checker on a steady
// row-burst pattern.
func BenchmarkDRAMTiming(b *testing.B) {
	tm := dram.NewTiming(config.Default().Memory.Timing, 16)
	cycle := int64(0)
	row := 0
	for i := 0; i < b.N; i++ {
		if tm.OpenRow(0) != row {
			if tm.OpenRow(0) >= 0 {
				cycle = max64(cycle, tm.Earliest(dram.CmdPRE, 0, tm.OpenRow(0)))
				tm.Issue(dram.CmdPRE, 0, tm.OpenRow(0), cycle)
			}
			cycle = max64(cycle, tm.Earliest(dram.CmdACT, 0, row))
			tm.Issue(dram.CmdACT, 0, row, cycle)
		}
		cycle = max64(cycle, tm.Earliest(dram.CmdWR, 0, row))
		tm.Issue(dram.CmdWR, 0, row, cycle)
		if i%8 == 7 {
			row ^= 1
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

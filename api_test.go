package orderlight_test

import (
	"context"
	"errors"
	"testing"

	"orderlight"
)

func apiConfig() orderlight.Config {
	cfg := orderlight.DefaultConfig()
	cfg.Memory.Channels = 4
	cfg.GPU.PIMSMs = 2
	cfg.Run.DeadlineMS = 50
	return cfg
}

func TestSentinelUnknownKernel(t *testing.T) {
	_, err := orderlight.RunKernelContext(context.Background(), apiConfig(), "no-such-kernel", 8<<10)
	if !errors.Is(err, orderlight.ErrUnknownKernel) {
		t.Fatalf("error %v does not match ErrUnknownKernel", err)
	}
	if _, err := orderlight.RunKernel(apiConfig(), "no-such-kernel", 8<<10); !errors.Is(err, orderlight.ErrUnknownKernel) {
		t.Fatalf("legacy RunKernel error %v does not match ErrUnknownKernel", err)
	}
}

func TestSentinelUnknownExperiment(t *testing.T) {
	_, err := orderlight.RunExperimentContext(context.Background(), "no-such-experiment", apiConfig())
	if !errors.Is(err, orderlight.ErrUnknownExperiment) {
		t.Fatalf("error %v does not match ErrUnknownExperiment", err)
	}
}

func TestSentinelInvalidSpec(t *testing.T) {
	var empty orderlight.Spec
	if err := empty.Validate(); !errors.Is(err, orderlight.ErrInvalidSpec) {
		t.Fatalf("Validate() = %v, want ErrInvalidSpec", err)
	}
	if _, _, err := orderlight.RunSpecContext(context.Background(), apiConfig(), empty, 8<<10); !errors.Is(err, orderlight.ErrInvalidSpec) {
		t.Fatalf("RunSpecContext error %v does not match ErrInvalidSpec", err)
	}
}

func TestSentinelCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := orderlight.RunKernelContext(ctx, apiConfig(), "add", 8<<10); !errors.Is(err, orderlight.ErrCanceled) {
		t.Fatalf("canceled RunKernelContext error %v does not match ErrCanceled", err)
	}
	if _, err := orderlight.RunAllExperimentsContext(ctx, apiConfig()); !errors.Is(err, orderlight.ErrCanceled) {
		t.Fatalf("canceled RunAllExperimentsContext error %v does not match ErrCanceled", err)
	}
}

func TestContextVariantsMatchLegacy(t *testing.T) {
	cfg := apiConfig()
	legacy, err := orderlight.RunKernel(cfg, "add", 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := orderlight.RunKernelContext(context.Background(), cfg, "add", 8<<10,
		orderlight.WithParallelism(1), orderlight.WithKernelCache(false))
	if err != nil {
		t.Fatal(err)
	}
	if legacy.String() != viaCtx.String() {
		t.Errorf("context run differs from legacy run:\n%s\nvs\n%s", legacy, viaCtx)
	}
}

func TestOptionsDoNotChangeOutput(t *testing.T) {
	cfg := apiConfig()
	sc := orderlight.Scale{BytesPerChannel: 16 << 10}
	base, err := orderlight.RunExperimentContext(context.Background(), "fig5", cfg,
		orderlight.WithScale(sc), orderlight.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	tuned, err := orderlight.RunExperimentContext(context.Background(), "fig5", cfg,
		orderlight.WithScale(sc),
		orderlight.WithParallelism(8),
		orderlight.WithKernelCache(false),
		orderlight.WithProgress(func(done, total int) { calls++ }))
	if err != nil {
		t.Fatal(err)
	}
	if base.Markdown() != tuned.Markdown() {
		t.Errorf("options changed experiment output")
	}
	if calls == 0 {
		t.Error("progress callback never invoked")
	}
}

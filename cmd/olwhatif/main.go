// Command olwhatif answers what-if queries from the calibrated
// analytical twin: predicted execution time, stall cycles and exact
// command counts for an experiment cell, in microseconds of host time
// instead of the cycle engine's milliseconds-to-seconds. Every answer
// carries the calibration's recorded error bound and is never a
// verified result — for ground truth, run the same cell through olsim.
//
// The same binary maintains the calibration: -calibrate regenerates
// the artifact deterministically from pinned seeds (anchor runs on the
// cycle engine, then a full-grid cross-check that records per-family
// error bounds), and -report renders the twin-vs-cycle error-bound
// table that results_all.md embeds.
//
// Usage:
//
//	olwhatif -kernel add -primitive orderlight -ts 1/8 -bytes 131072
//	olwhatif -calibrate -out calibration.olcal   # regenerate (cycle-engine runs; minutes)
//	olwhatif -report                             # markdown error-bound table
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"orderlight/internal/config"
	"orderlight/internal/gpu"
	"orderlight/internal/kernel"
	"orderlight/internal/stats"
	"orderlight/internal/twin"
)

// checkFootprints are the cross-check footprints -calibrate replays on
// both engines: one off-anchor point low in the calibrated range and
// the experiment grid's default 256 KiB scale. Fixed so the committed
// artifact is byte-identical across regenerations.
var checkFootprints = []int64{48 << 10, 256 << 10}

func main() {
	var (
		calPath = flag.String("calibration", "calibration.olcal", "calibration artifact to answer from (regenerate with -calibrate or `make calibrate`)")
		name    = flag.String("kernel", "add", "Table 2 kernel name")
		prim    = flag.String("primitive", "orderlight", "ordering primitive: none|fence|orderlight")
		ts      = flag.String("ts", "1/8", "temporary storage as a row-buffer fraction")
		bytes   = flag.Int64("bytes", 128<<10, "bytes per channel per data structure")

		calibrate = flag.Bool("calibrate", false, "regenerate the calibration artifact from cycle-engine runs and write it to -out")
		out       = flag.String("out", "calibration.olcal", "where -calibrate writes the artifact")
		parallel  = flag.Int("parallel", 0, "calibration worker pool size (0 = one per CPU; results are identical for every value)")

		report = flag.Bool("report", false, "print the calibration's twin-vs-cycle error-bound table as markdown")
	)
	flag.Parse()

	switch {
	case *calibrate:
		if err := runCalibrate(*out, *parallel); err != nil {
			fatal(err)
		}
	case *report:
		if err := runReport(*calPath); err != nil {
			fatal(err)
		}
	default:
		if err := runQuery(*calPath, *name, *prim, *ts, *bytes); err != nil {
			fatal(err)
		}
	}
}

// skipRun is the cycle-engine CellRunner calibration measures against:
// the default skip-ahead engine, the same machine every experiment
// cell runs on.
func skipRun(_ context.Context, cfg config.Config, spec kernel.Spec, bytesPerChannel int64) (*stats.Run, error) {
	k, err := kernel.Build(cfg, spec, bytesPerChannel)
	if err != nil {
		return nil, err
	}
	m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// runQuery answers one cell from the artifact and prints the
// prediction with its error bar and the answer's own wall time.
func runQuery(calPath, name, prim, ts string, bytes int64) error {
	p, err := twin.LoadPredictor(calPath)
	if err != nil {
		return err
	}
	cfg := config.Default()
	pr, err := config.ParsePrimitive(prim)
	if err != nil {
		return err
	}
	cfg.Run.Primitive = pr
	tsBytes, err := cfg.TSFraction(ts)
	if err != nil {
		return err
	}
	cfg.PIM.TSBytes = tsBytes
	spec, err := kernel.ByName(name)
	if err != nil {
		return err
	}

	start := time.Now()
	pred, err := p.Predict(cfg, spec, bytes)
	wall := time.Since(start)
	if err != nil {
		return err
	}
	r := pred.Run
	fmt.Printf("what-if: %s, primitive %v, TS %dB, %d B/channel  (calibration %s)\n",
		name, pr, tsBytes, bytes, p.Hash())
	fmt.Printf("  predicted execution time: %.4f ms  (±%.1f%% recorded bound)\n",
		r.ExecTime().Milliseconds(), 100*pred.Entry.CyclesBound)
	fmt.Printf("  tiles %d, PIM commands %d (exact), ordering points %d (exact)\n",
		pred.Tiles, r.PIMCommands, pred.Counts.Orders)
	switch pr {
	case config.PrimitiveFence:
		fmt.Printf("  predicted fence stall: %d core cycles  (±%.1f%% recorded bound)\n",
			r.FenceStallCycles, 100*pred.Entry.FenceBound)
	case config.PrimitiveOrderLight:
		fmt.Printf("  predicted OrderLight stall: %d core cycles  (±%.1f%% recorded bound)\n",
			r.OLStallCycles, 100*pred.Entry.OLBound)
	}
	fmt.Printf("  answered in %d µs — analytical model, not a verified simulation "+
		"(ground truth: olsim -kernel %s -primitive %v -ts %s -bytes %d)\n",
		wall.Microseconds(), name, pr, ts, bytes)
	return nil
}

// runCalibrate regenerates the artifact: anchor runs fit the lines,
// the full-grid cross-check records every family's error bound, and
// the result is written atomically. Everything derives from pinned
// seeds and fixed grids, so reruns are byte-identical.
func runCalibrate(out string, parallel int) error {
	ctx := context.Background()
	cfg := config.Default()
	start := time.Now()
	fmt.Fprintf(os.Stderr, "olwhatif: calibrating %d kernels × %d primitives × %d TS sizes on %d anchors (cycle-engine runs)...\n",
		len(kernel.All()), len(twin.CalibrationPrimitives), len(twin.CalibrationFractions), len(twin.DefaultAnchors))
	art, err := twin.Calibrate(ctx, cfg, skipRun, twin.Options{Parallelism: parallel})
	if err != nil {
		return err
	}
	cells, err := twin.FullGrid(cfg, checkFootprints)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "olwhatif: cross-checking %d cells against the cycle engine...\n", len(cells))
	results, err := twin.CrossCheck(ctx, cfg, twin.NewPredictor(art), skipRun, cells, parallel)
	if err != nil {
		return err
	}
	twin.ApplyBounds(art, results, 0)
	if err := twin.Save(art, out); err != nil {
		return err
	}

	errs := make([]float64, len(results))
	worst := 0.0
	for i, r := range results {
		errs[i] = math.Abs(r.CyclesErr)
		if errs[i] > worst {
			worst = errs[i]
		}
	}
	sort.Float64s(errs)
	median := errs[len(errs)/2]
	fmt.Fprintf(os.Stderr, "olwhatif: wrote %s (%d entries, hash %s) in %v\n",
		out, len(art.Entries), art.Hash(), time.Since(start).Round(time.Second))
	fmt.Fprintf(os.Stderr, "olwhatif: cycle-count error over %d cross-checked cells: median %.2f%%, worst %.2f%%\n",
		len(results), 100*median, 100*worst)
	return nil
}

// runReport renders the calibration's per-family error bounds as a
// deterministic markdown table — the twin section of results_all.md.
// Rows aggregate the TS axis (the worst recorded bound across the four
// fractions) so the table stays readable.
func runReport(calPath string) error {
	p, err := twin.LoadPredictor(calPath)
	if err != nil {
		return err
	}
	art := p.Artifact()

	type row struct {
		cycles, fence, ol float64
		cells             int
	}
	type key struct{ kernel, prim string }
	rows := map[key]*row{}
	var order []key
	for _, e := range art.Entries {
		k := key{e.Kernel, e.Primitive}
		r := rows[k]
		if r == nil {
			r = &row{}
			rows[k] = r
			order = append(order, k)
		}
		r.cells += e.Cells
		r.cycles = math.Max(r.cycles, e.CyclesBound)
		r.fence = math.Max(r.fence, e.FenceBound)
		r.ol = math.Max(r.ol, e.OLBound)
	}

	fmt.Printf("## Twin engine: recorded error bounds vs the cycle engine\n\n")
	fmt.Printf("Calibration `%s` (config `%s`, %d entries, anchors %v bytes/channel).\n",
		art.Hash(), art.ConfigHash, len(art.Entries), art.Anchors)
	fmt.Printf("Bounds are the recorded per-family envelopes (worst across TS sizes,\n")
	fmt.Printf("%.1f× safety over the cross-check's worst observed error, %.0f%% floor);\n",
		twin.DefaultSafety, 100*twin.BoundFloor)
	fmt.Printf("command and ordering-point counts are exact by construction.\n\n")
	fmt.Printf("| kernel | primitive | cycles bound | fence-stall bound | OL-stall bound | checked cells |\n")
	fmt.Printf("|--------|-----------|--------------|-------------------|----------------|---------------|\n")
	pct := func(b float64) string {
		if b == 0 {
			return "—"
		}
		return fmt.Sprintf("±%.1f%%", 100*b)
	}
	for _, k := range order {
		r := rows[k]
		fmt.Printf("| %s | %s | %s | %s | %s | %d |\n",
			k.kernel, k.prim, pct(r.cycles), pct(r.fence), pct(r.ol), r.cells)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "olwhatif:", err)
	os.Exit(1)
}

// Command olbench regenerates the paper's tables and figures.
//
// Experiment cells (kernel x primitive x scale) execute on a worker
// pool — one worker per CPU unless -parallel says otherwise — and the
// output is byte-identical to a sequential (-parallel 1) run. Ctrl-C
// cancels the sweep at the next cell boundary.
//
// Usage:
//
//	olbench -exp fig10a                # one experiment, markdown to stdout
//	olbench -exp all -format csv       # everything, CSV
//	olbench -exp all -progress         # live cell counter on stderr
//	olbench -exp all -parallel 1       # sequential reference run
//	olbench -exp fig12 -engine parallel # sharded intra-run engine, identical output
//	olbench -exp fig12 -engine twin -calibration calibration.olcal -escalate  # analytical twin, approximate
//	olbench -exp fig12 -size 262144    # bigger per-channel footprint
//	olbench -exp all -manifest         # attach provenance manifests
//	olbench -exp all -debug-addr :6060 # pprof + expvar while it runs
//	olbench -exp all -checkpoint-dir ck          # journal progress per cell
//	olbench -exp all -checkpoint-dir ck -resume  # skip journal-completed cells
//	olbench -exp all -retries 2 -cell-timeout 5m # retry/watchdog flaky cells
//	olbench -exp fig5 -server http://localhost:8080  # run on an olserve daemon
//	olbench -exp all -cache-dir rc     # memoize cells; an identical rerun simulates nothing
//	olbench -exp fig12 -server URL -fabric  # distribute cells over olserve -worker processes
//	olbench -exp fig5 -chaos fs=0.2 -chaos-seed 7 -cache-dir rc  # seeded fault injection drill
//	olbench -list                      # list experiment IDs
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"orderlight"
	"orderlight/internal/cliflags"
)

// Sweep progress counters, exported at /debug/vars when -debug-addr
// serves the expvar handler.
var (
	cellsDone  = expvar.NewInt("olbench_cells_done")
	cellsTotal = expvar.NewInt("olbench_cells_total")
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment ID or 'all'")
		size     = flag.Int64("size", 0, "bytes per channel per data structure (0 = default)")
		format   = flag.String("format", "md", "output format: md, csv or chart")
		chartCol = flag.Int("chartcol", -1, "column to chart (chart format; -1 = first numeric)")
		channels = flag.Int("channels", 0, "override memory channel count (0 = Table 1's 16)")
		ts       = flag.String("ts", "", "override temporary-storage fraction, e.g. 1/8")
		parallel = flag.Int("parallel", 0, "worker pool size (0 = one per CPU, 1 = sequential)")
		progress = flag.Bool("progress", false, "report completed cells on stderr")
		cache    = flag.Bool("cache", true, "share built kernel images between identical cells")
		list     = flag.Bool("list", false, "list experiments and exit")

		manifest  = flag.Bool("manifest", false, "attach provenance manifests to every table (adds wall-clock times, so output is no longer byte-stable)")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and expvar on this address while the sweep runs, e.g. localhost:6060 (empty disables)")

		server = flag.String("server", "", "submit the experiment to an olserve daemon at this base URL instead of simulating in process (output is byte-identical)")
		tenant = flag.String("tenant", "", "tenant name for the daemon's admission quotas (-server mode)")
		fabric = flag.Bool("fabric", false, "run the job on the daemon's distributed sweep fabric (needs -server and olserve -worker processes; output stays byte-identical)")

		retries  = flag.Int("retries", 0, "retry transiently failing cells (panic, deadline, timeout) up to N times with backoff")
		cellTime = flag.Duration("cell-timeout", 0, "per-cell wall-clock watchdog; a cell running longer fails as a timeout (0 disables)")
	)
	ckpt := cliflags.RegisterCheckpoint(flag.CommandLine)
	eng := cliflags.RegisterEngine(flag.CommandLine)
	rcache := cliflags.RegisterCache(flag.CommandLine)
	chaosFlags := cliflags.RegisterChaos(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, id := range orderlight.Experiments() {
			fmt.Printf("%-24s %s\n", id, orderlight.ExperimentTitle(id))
		}
		return
	}

	cfg := orderlight.DefaultConfig()
	if *channels > 0 {
		cfg.Memory.Channels = *channels
		if need := (*channels + cfg.GPU.WarpsPerSM - 1) / cfg.GPU.WarpsPerSM; need < cfg.GPU.PIMSMs {
			cfg.GPU.PIMSMs = need
		}
	}
	if *ts != "" {
		tsBytes, err := cfg.TSFraction(*ts)
		if err != nil {
			fatal(err)
		}
		cfg.PIM.TSBytes = tsBytes
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	chaosPlan, err := chaosFlags.Plan(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if err != nil {
		fatal(err)
	}

	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "olbench: debug server on http://%s/debug/pprof/ and /debug/vars\n", ln.Addr())
		// DefaultServeMux carries the pprof and expvar handlers; the
		// server dies with the process.
		go http.Serve(ln, nil) //nolint:errcheck
	}

	var cells int
	opts := []orderlight.Option{
		orderlight.WithScale(orderlight.Scale{BytesPerChannel: *size}),
		orderlight.WithParallelism(*parallel),
		orderlight.WithKernelCache(*cache),
	}
	opts = append(opts, eng.Options()...)
	if chaosPlan != nil {
		// Local chaos: the run's durability writes (checkpoint journal,
		// result-cache blobs) go through the plan's seeded sick disk.
		opts = append(opts, orderlight.WithChaosFS(orderlight.NewChaosFS(chaosPlan, nil)))
	}
	if *manifest {
		opts = append(opts, orderlight.WithManifest())
	}
	opts = append(opts, ckpt.Options()...)
	opts = append(opts, rcache.Options()...)
	if *retries > 0 {
		opts = append(opts, orderlight.WithCellRetries(*retries))
	}
	if *cellTime > 0 {
		opts = append(opts, orderlight.WithCellTimeout(*cellTime))
	}
	if *progress {
		opts = append(opts, orderlight.WithProgress(func(done, total int) {
			cells = total
			cellsDone.Set(int64(done))
			cellsTotal.Set(int64(total))
			fmt.Fprintf(os.Stderr, "\rolbench: %d/%d cells", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	} else {
		opts = append(opts, orderlight.WithProgress(func(done, total int) {
			cells = total
			cellsDone.Set(int64(done))
			cellsTotal.Set(int64(total))
		}))
	}

	if *fabric && *server == "" {
		fatal(fmt.Errorf("-fabric distributes cells over a daemon's workers; it needs -server"))
	}

	start := time.Now()
	var tables []*orderlight.Table
	switch {
	case *server != "":
		if ckpt.Active() {
			fatal(fmt.Errorf("-checkpoint-dir/-checkpoint-every/-resume are local paths; the daemon manages its own checkpoints (-checkpoint-root)"))
		}
		if rcache.Active() {
			fatal(fmt.Errorf("-cache-dir is a local path; the daemon manages its own cache (olserve -cache-dir)"))
		}
		if eng.Calibration != "" {
			fatal(fmt.Errorf("-calibration is a local path; the daemon loads its own calibration (olserve -calibration)"))
		}
		tables, err = remote(ctx, *server, *tenant, *exp, cfg, orderlight.RunOpts{
			Parallelism:     *parallel,
			Dense:           eng.Dense,
			Engine:          eng.Name,
			Shards:          eng.Shards,
			Escalate:        eng.Escalate,
			NoKernelCache:   !*cache,
			BytesPerChannel: *size,
			Manifest:        *manifest,
			Retries:         *retries,
			CellTimeout:     *cellTime,
			Fabric:          *fabric,
		}, &cells, chaosPlan)
	case *exp == "all":
		tables, err = orderlight.RunAllExperimentsContext(ctx, cfg, opts...)
	default:
		var t *orderlight.Table
		t, err = orderlight.RunExperimentContext(ctx, *exp, cfg, opts...)
		tables = []*orderlight.Table{t}
	}
	if err != nil {
		if errors.Is(err, orderlight.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "olbench: canceled")
			os.Exit(130)
		}
		fatal(err)
	}

	for _, t := range tables {
		switch *format {
		case "csv":
			fmt.Println("# " + t.ID + ": " + t.Title)
			fmt.Print(t.CSV())
			for _, m := range t.Manifests {
				fmt.Println("# manifest: " + m.JSON())
			}
		case "chart":
			col := *chartCol
			if col < 0 {
				col = t.DefaultChartColumn()
			}
			fmt.Println(t.Chart(col))
		default:
			fmt.Println(t.Markdown())
			if mm := t.ManifestMarkdown(); mm != "" {
				fmt.Println(mm)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "olbench: %d experiment(s), %d cells in %.1fs (parallelism %s)\n",
		len(tables), cells, time.Since(start).Seconds(), parallelismLabel(*parallel))
}

// remote submits the experiment (or full sweep) to an olserve daemon
// and waits on its event stream. The daemon runs the exact same
// execution path as the in-process entry points, so the rendered
// tables are byte-identical to a local run — `olbench` output can be
// diffed across the two modes. The client retries transient transport
// failures with idempotent submissions and resubmits if the daemon
// restarts mid-wait, so a chaos-wrapped (or genuinely flaky) link
// still yields the one result; -chaos here injects faults into this
// client's own connection, not into the daemon.
func remote(ctx context.Context, base, tenant, exp string, cfg orderlight.Config, ro orderlight.RunOpts, cells *int, plan *orderlight.ChaosPlan) ([]*orderlight.Table, error) {
	req := orderlight.JobRequest{Kind: orderlight.JobSweep, Tenant: tenant, Config: &cfg, Opts: ro}
	if exp != "all" {
		req.Kind = orderlight.JobExperiment
		req.Experiment = exp
	}
	// No client timeout: a full sweep legitimately runs for minutes and
	// the events stream stays open throughout.
	svc := orderlight.NewServiceClient(base, &http.Client{Transport: orderlight.ChaosTransport(plan, nil)})
	svc.EnableRetry(orderlight.ServiceRetryPolicy{Attempts: 5, Logf: func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "olbench: "+format+"\n", args...)
	}})
	res, err := orderlight.SubmitAndAwaitJob(ctx, svc, req, func(ev orderlight.WatchEvent) {
		if ev.Type != "progress" {
			return
		}
		*cells = ev.Total
		cellsDone.Set(int64(ev.Done))
		cellsTotal.Set(int64(ev.Total))
	})
	if err != nil {
		return nil, err
	}
	return res.Tables, nil
}

func parallelismLabel(n int) string {
	if n <= 0 {
		return "all CPUs"
	}
	return fmt.Sprintf("%d", n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "olbench:", err)
	os.Exit(1)
}

// Command olbench regenerates the paper's tables and figures.
//
// Usage:
//
//	olbench -exp fig10a                # one experiment, markdown to stdout
//	olbench -exp all -format csv       # everything, CSV
//	olbench -exp fig12 -size 262144    # bigger per-channel footprint
//	olbench -list                      # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"orderlight"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment ID or 'all'")
		size     = flag.Int64("size", 0, "bytes per channel per data structure (0 = default)")
		format   = flag.String("format", "md", "output format: md, csv or chart")
		chartCol = flag.Int("chartcol", -1, "column to chart (chart format; -1 = first numeric)")
		channels = flag.Int("channels", 0, "override memory channel count (0 = Table 1's 16)")
		ts       = flag.String("ts", "", "override temporary-storage fraction, e.g. 1/8")
		list     = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range orderlight.Experiments() {
			fmt.Printf("%-18s %s\n", id, orderlight.ExperimentTitle(id))
		}
		return
	}

	cfg := orderlight.DefaultConfig()
	if *channels > 0 {
		cfg.Memory.Channels = *channels
		if need := (*channels + cfg.GPU.WarpsPerSM - 1) / cfg.GPU.WarpsPerSM; need < cfg.GPU.PIMSMs {
			cfg.GPU.PIMSMs = need
		}
	}
	if *ts != "" {
		cfg = cfg.WithTSFraction(*ts)
	}
	sc := orderlight.Scale{BytesPerChannel: *size}

	var tables []*orderlight.Table
	if *exp == "all" {
		var err error
		tables, err = orderlight.RunAllExperiments(cfg, sc)
		if err != nil {
			fatal(err)
		}
	} else {
		t, err := orderlight.RunExperiment(*exp, cfg, sc)
		if err != nil {
			fatal(err)
		}
		tables = []*orderlight.Table{t}
	}
	for _, t := range tables {
		switch *format {
		case "csv":
			fmt.Println("# " + t.ID + ": " + t.Title)
			fmt.Print(t.CSV())
		case "chart":
			col := *chartCol
			if col < 0 {
				col = t.DefaultChartColumn()
			}
			fmt.Println(t.Chart(col))
		default:
			fmt.Println(t.Markdown())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "olbench:", err)
	os.Exit(1)
}

// Command olfault runs ordering-fault injection campaigns against the
// simulator and classifies every run with the differential oracle.
//
// In campaign mode (the default) it executes the kernel × fault-class
// × seed grid of the "fault-campaign" experiment and prints the verdict
// matrix. Output is deterministic: the same seed yields byte-identical
// matrices across runs and across the dense, skip-ahead and parallel
// engines.
// olfault exits 0 only when the campaign sees zero escapes AND the
// pinned Figure 5 reproduction (drop/fence on add at full rate) is
// detected; any escape — a wrong answer the simulator's own
// verification failed to flag — is a simulator bug and exits 1.
//
// With -kernel/-class it instead injects a single run and prints its
// verdict.
//
// Usage:
//
//	olfault -seed 1 -campaign default
//	olfault -seed 1 -dense                  # parity reference
//	olfault -kernel add -class drop -rate 1 # single faulted run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"orderlight"
	"orderlight/internal/cliflags"
)

func main() {
	var (
		campaign = flag.String("campaign", "default", "campaign grid to run (only \"default\" exists)")
		seed     = flag.Uint64("seed", 1, "base fault seed; the campaign sweeps seed and seed+1")
		bytes    = flag.Int64("bytes", 0, "per-channel footprint override (0 = campaign default)")
		parallel = flag.Int("parallel", 0, "worker pool size (0 = one per CPU)")

		name  = flag.String("kernel", "", "single-run mode: Table 2 kernel name")
		class = flag.String("class", "", "single-run mode: fault class (drop|weaken|reorder|delay)")
		rate  = flag.Float64("rate", 1, "single-run mode: fault rate in (0,1]")
		delay = flag.Int64("delay", 0, "single-run mode: visibility delay in controller cycles (0 = default)")
		prim  = flag.String("primitive", "orderlight", "single-run mode: ordering primitive under attack (fence|orderlight|seqno)")
	)
	ckpt := cliflags.RegisterCheckpoint(flag.CommandLine)
	eng := cliflags.RegisterEngine(flag.CommandLine)
	rcache := cliflags.RegisterCache(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := orderlight.DefaultConfig()
	cfg.Run.Seed = *seed
	var opts []orderlight.Option
	if *parallel > 0 {
		opts = append(opts, orderlight.WithParallelism(*parallel))
	}
	opts = append(opts, eng.Options()...)
	if *bytes > 0 {
		opts = append(opts, orderlight.WithScale(orderlight.Scale{BytesPerChannel: *bytes}))
	}
	opts = append(opts, ckpt.Options()...)
	// Accepted for CLI symmetry, but fault-injected cells are never
	// served from the cache — the oracle must genuinely re-attack.
	opts = append(opts, rcache.Options()...)

	if *name != "" || *class != "" {
		p, err := orderlight.ParsePrimitive(*prim)
		if err != nil {
			fatal(err)
		}
		cfg.Run.Primitive = p
		if err := single(ctx, cfg, *name, *class, *rate, *delay, *bytes, opts); err != nil {
			fatal(err)
		}
		return
	}

	if *campaign != "default" {
		fatal(fmt.Errorf("unknown campaign %q (only \"default\" exists)", *campaign))
	}
	t, sum, err := orderlight.RunFaultCampaignContext(ctx, cfg, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Print(t.Markdown())
	fmt.Printf("\n%s\n", sum)
	if sum.Escapes > 0 {
		fmt.Fprintf(os.Stderr, "olfault: %d escape(s) — wrong answers the verifier missed: %v\n",
			sum.Escapes, sum.EscapeKeys)
		os.Exit(1)
	}
	if !sum.PinnedDetected {
		fmt.Fprintln(os.Stderr, "olfault: pinned Figure 5 reproduction (add/drop/fence) was not detected")
		os.Exit(1)
	}
}

// single injects one faulted run and prints its verdict; a fault the
// oracle classifies as an escape exits 1, everything else exits 0.
func single(ctx context.Context, cfg orderlight.Config, name, class string, rate float64, delay, bytes int64, opts []orderlight.Option) error {
	if name == "" {
		name = "add"
	}
	if class == "" {
		return fmt.Errorf("single-run mode needs -class (drop|weaken|reorder|delay)")
	}
	fc, err := orderlight.ParseFaultClass(class)
	if err != nil {
		return err
	}
	if bytes <= 0 {
		bytes = 128 << 10
	}
	spec := orderlight.FaultSpec{Class: fc, Seed: cfg.Run.Seed, Rate: rate, Delay: delay}
	res, v, err := orderlight.RunFaultedKernelContext(ctx, cfg, name, bytes, spec, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("kernel %s, fault %s\n", name, spec)
	fmt.Print(res)
	fmt.Printf("\nverdict: %s\n", v)
	if v.Outcome == orderlight.FaultEscape {
		fmt.Fprintln(os.Stderr, "olfault: escape — simulator bug")
		os.Exit(1)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "olfault:", err)
	os.Exit(1)
}

// Command olsim runs a single PIM kernel on the simulated machine and
// prints its measurements.
//
// olsim exits 0 only when the run completes and — with -verify, the
// default — the result matches the reference executor. A run that
// verifies incorrect (including the deliberately broken -primitive
// none demo) exits 1 with a diagnostic on stderr; pass -verify=false
// to observe an incorrect run's measurements without the failure exit.
//
// Usage:
//
//	olsim -kernel add -primitive orderlight -ts 1/8
//	olsim -kernel kmeans -primitive fence -bytes 262144
//	olsim -kernel add -primitive none -verify=false  # incorrect-run demo
//	olsim -list                                      # list kernels
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"orderlight"
)

func main() {
	var (
		name     = flag.String("kernel", "add", "Table 2 kernel name")
		prim     = flag.String("primitive", "orderlight", "ordering primitive: none|fence|orderlight|seqno")
		ts       = flag.String("ts", "1/8", "temporary storage as a row-buffer fraction")
		bmf      = flag.Int("bmf", 16, "PIM bandwidth multiplication factor")
		bytes    = flag.Int64("bytes", 128<<10, "bytes per channel per data structure")
		channels = flag.Int("channels", 16, "memory channels")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		verify   = flag.Bool("verify", true, "check the result against the reference executor")
		hostKind = flag.String("host", "gpu", "host front end: gpu (SIMT warps) or cpu (OoO cores, §9)")
		spread   = flag.Bool("spread", false, "spread tiles across memory-groups")
		routes   = flag.Int("routes", 1, "adaptive interconnect routes per channel (§9 NoC divergence)")
		dense    = flag.Bool("dense", false, "use the naive dense tick engine (parity/debugging reference)")
		list     = flag.Bool("list", false, "list kernels and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range orderlight.Kernels() {
			spec, _ := orderlight.KernelSpec(n)
			fmt.Printf("%-8s %-45s compute:memory %s\n", n, spec.Desc, spec.ComputeRatio)
		}
		return
	}

	cfg := orderlight.DefaultConfig()
	p, err := orderlight.ParsePrimitive(*prim)
	if err != nil {
		fatal(err)
	}
	cfg.Run.Primitive = p
	cfg.Run.Seed = *seed
	cfg.Run.Verify = *verify
	cfg.PIM.BMF = *bmf
	cfg.Memory.Channels = *channels
	if need := (*channels + cfg.GPU.WarpsPerSM - 1) / cfg.GPU.WarpsPerSM; need < cfg.GPU.PIMSMs {
		cfg.GPU.PIMSMs = need
	}
	tsBytes, err := cfg.TSFraction(*ts)
	if err != nil {
		fatal(err)
	}
	cfg.PIM.TSBytes = tsBytes
	cfg.GPU.IcntRoutes = *routes
	switch *hostKind {
	case "gpu":
		cfg.Host.Kind = orderlight.HostGPU
	case "cpu":
		cfg.Host.Kind = orderlight.HostCPU
	default:
		fatal(fmt.Errorf("unknown host kind %q", *hostKind))
	}

	spec, err := orderlight.KernelSpec(*name)
	if err != nil {
		fatal(err)
	}
	if *spread {
		spec = orderlight.SpreadTiles(spec)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var opts []orderlight.Option
	if *dense {
		opts = append(opts, orderlight.WithDenseEngine())
	}
	res, k, err := orderlight.RunSpecContext(ctx, cfg, spec, *bytes, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("kernel %s, primitive %v, TS %dB (N=%d), BMF %dx, %d channels\n",
		*name, cfg.Run.Primitive, cfg.PIM.TSBytes, cfg.CommandsPerTile(), cfg.PIM.BMF, cfg.Memory.Channels)
	fmt.Printf("GPU-baseline (roofline): %.4f ms\n\n", orderlight.HostBaseline(cfg, k))
	fmt.Print(res)
	if *verify && !res.Correct {
		fmt.Fprintf(os.Stderr, "olsim: kernel %s under primitive %v failed functional verification\n",
			*name, cfg.Run.Primitive)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "olsim:", err)
	os.Exit(1)
}

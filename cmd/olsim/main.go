// Command olsim runs a single PIM kernel on the simulated machine and
// prints its measurements.
//
// olsim exits 0 only when the run completes and — with -verify, the
// default — the result matches the reference executor. A run that
// verifies incorrect (including the deliberately broken -primitive
// none demo) exits 1 with a diagnostic on stderr; pass -verify=false
// to observe an incorrect run's measurements without the failure exit.
//
// Usage:
//
//	olsim -kernel add -primitive orderlight -ts 1/8
//	olsim -kernel kmeans -primitive fence -bytes 262144
//	olsim -kernel add -primitive none -verify=false  # incorrect-run demo
//	olsim -kernel add -engine parallel               # sharded engine, identical output
//	olsim -kernel add -trace-out run.json            # Perfetto trace
//	olsim -kernel add -sample-every 1000 -sample-out run.csv
//	olsim -kernel add -checkpoint-dir ck -stop-after 50000  # halt with a checkpoint (exit 3)
//	olsim -kernel add -checkpoint-dir ck -resume            # continue, byte-identical
//	olsim -kernel add -cache-dir rc                  # memoize; identical reruns skip simulation
//	olsim -list                                      # list kernels
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"orderlight"
	"orderlight/internal/cliflags"
)

func main() {
	var (
		name     = flag.String("kernel", "add", "Table 2 kernel name")
		prim     = flag.String("primitive", "orderlight", "ordering primitive: none|fence|orderlight|seqno")
		ts       = flag.String("ts", "1/8", "temporary storage as a row-buffer fraction")
		bmf      = flag.Int("bmf", 16, "PIM bandwidth multiplication factor")
		bytes    = flag.Int64("bytes", 128<<10, "bytes per channel per data structure")
		channels = flag.Int("channels", 16, "memory channels")
		seed     = flag.Uint64("seed", 1, "deterministic seed")
		verify   = flag.Bool("verify", true, "check the result against the reference executor")
		hostKind = flag.String("host", "gpu", "host front end: gpu (SIMT warps) or cpu (OoO cores, §9)")
		spread   = flag.Bool("spread", false, "spread tiles across memory-groups")
		routes   = flag.Int("routes", 1, "adaptive interconnect routes per channel (§9 NoC divergence)")
		list     = flag.Bool("list", false, "list kernels and exit")

		traceOut    = flag.String("trace-out", "", "write a Perfetto/Chrome trace-event JSON of the run to this file")
		sampleEvery = flag.Int64("sample-every", 0, "sample counters every N core cycles (0 disables)")
		sampleOut   = flag.String("sample-out", "", "write the sampled time-series here (.json for JSON, else CSV; default stdout)")
		manifest    = flag.Bool("manifest", false, "print the run's provenance manifest as JSON")

		stopAfter = flag.Int64("stop-after", 0, "halt deterministically at this core cycle after writing a checkpoint, exit 3 (crash-resume testing)")
	)
	ckpt := cliflags.RegisterCheckpoint(flag.CommandLine)
	eng := cliflags.RegisterEngine(flag.CommandLine)
	rcache := cliflags.RegisterCache(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, n := range orderlight.Kernels() {
			spec, _ := orderlight.KernelSpec(n)
			fmt.Printf("%-8s %-45s compute:memory %s\n", n, spec.Desc, spec.ComputeRatio)
		}
		return
	}

	cfg := orderlight.DefaultConfig()
	p, err := orderlight.ParsePrimitive(*prim)
	if err != nil {
		fatal(err)
	}
	cfg.Run.Primitive = p
	cfg.Run.Seed = *seed
	cfg.Run.Verify = *verify
	cfg.PIM.BMF = *bmf
	cfg.Memory.Channels = *channels
	if need := (*channels + cfg.GPU.WarpsPerSM - 1) / cfg.GPU.WarpsPerSM; need < cfg.GPU.PIMSMs {
		cfg.GPU.PIMSMs = need
	}
	tsBytes, err := cfg.TSFraction(*ts)
	if err != nil {
		fatal(err)
	}
	cfg.PIM.TSBytes = tsBytes
	cfg.GPU.IcntRoutes = *routes
	switch *hostKind {
	case "gpu":
		cfg.Host.Kind = orderlight.HostGPU
	case "cpu":
		cfg.Host.Kind = orderlight.HostCPU
	default:
		fatal(fmt.Errorf("unknown host kind %q", *hostKind))
	}

	spec, err := orderlight.KernelSpec(*name)
	if err != nil {
		fatal(err)
	}
	if *spread {
		spec = orderlight.SpreadTiles(spec)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := eng.Options()
	var sink *orderlight.PerfettoSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sink = orderlight.NewPerfettoSink(f)
		opts = append(opts, orderlight.WithTraceSink(sink))
	}
	var sampler *orderlight.Sampler
	if *sampleEvery > 0 {
		sampler = orderlight.NewSampler(*sampleEvery)
		opts = append(opts, orderlight.WithSampler(sampler))
	}
	opts = append(opts, ckpt.Options()...)
	opts = append(opts, rcache.Options()...)
	if *stopAfter > 0 {
		opts = append(opts, orderlight.WithHaltAfter(*stopAfter))
	}
	start := time.Now()
	res, k, err := orderlight.RunSpecContext(ctx, cfg, spec, *bytes, opts...)
	wall := time.Since(start)
	if err != nil {
		if errors.Is(err, orderlight.ErrHalted) {
			fmt.Fprintf(os.Stderr, "olsim: halted at checkpoint after core cycle %d; resume with -resume -checkpoint-dir %s\n",
				*stopAfter, ckpt.Dir)
			os.Exit(3)
		}
		fatal(err)
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			fatal(fmt.Errorf("trace %s: %w", *traceOut, err))
		}
		fmt.Fprintf(os.Stderr, "olsim: wrote %d events (%d dropped) to %s — open in ui.perfetto.dev\n",
			sink.Events(), sink.Dropped(), *traceOut)
	}
	if sampler != nil {
		if err := writeSamples(sampler, *sampleOut); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("kernel %s, primitive %v, TS %dB (N=%d), BMF %dx, %d channels\n",
		*name, cfg.Run.Primitive, cfg.PIM.TSBytes, cfg.CommandsPerTile(), cfg.PIM.BMF, cfg.Memory.Channels)
	fmt.Printf("GPU-baseline (roofline): %.4f ms\n\n", orderlight.HostBaseline(cfg, k))
	fmt.Print(res)
	if *manifest {
		m := orderlight.Manifest{
			Cell:            spec.Name,
			Kernel:          spec.Name,
			Primitive:       cfg.Run.Primitive.String(),
			Seed:            cfg.Run.Seed,
			Channels:        cfg.Memory.Channels,
			TSBytes:         cfg.PIM.TSBytes,
			BMF:             cfg.PIM.BMF,
			BytesPerChannel: *bytes,
			ConfigHash:      orderlight.ConfigHash(cfg),
			Engine:          eng.EngineName(),
			WallMS:          float64(wall.Nanoseconds()) / 1e6,
			GoVersion:       runtime.Version(),
		}
		fmt.Printf("\nmanifest: %s\n", m.JSON())
	}
	if *verify && !res.Correct {
		fmt.Fprintf(os.Stderr, "olsim: kernel %s under primitive %v failed functional verification\n",
			*name, cfg.Run.Primitive)
		os.Exit(1)
	}
}

// writeSamples renders the sampled time-series: JSON when the path ends
// in .json, CSV otherwise, stdout when no path is given.
func writeSamples(s *orderlight.Sampler, path string) error {
	var out []byte
	if strings.HasSuffix(path, ".json") {
		b, err := s.JSON()
		if err != nil {
			return err
		}
		out = append(b, '\n')
	} else {
		out = []byte(s.CSV())
	}
	if path == "" {
		_, err := os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "olsim: wrote %d samples to %s\n", len(s.Samples()), path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "olsim:", err)
	os.Exit(1)
}

// Command olserve is the simulation daemon: it exposes the library's
// job service over HTTP/JSON so figures and kernels can be simulated
// from anywhere that can speak curl. Results are byte-identical to
// in-process runs — the daemon funnels into the same execution path as
// the library facade.
//
//	POST   /v1/jobs             submit a kernel/experiment/sweep/fault-campaign job
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result job result (409 until terminal)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/jobs/{id}/events lifecycle stream (server-sent events)
//	POST   /v1/work/lease       fabric workers lease a cell range (-fabric)
//	POST   /v1/work/complete    fabric workers report lease outcomes (-fabric)
//	POST   /v1/work/heartbeat   fabric workers extend a held lease mid-execution
//	GET    /healthz             liveness, queue load, cache health, worker flap view
//	GET    /v1/version          protocol + toolchain versions
//
// SIGTERM and SIGINT drain gracefully: admission stops, queued jobs
// cancel, running jobs are preempted at their next cell boundary with
// their progress journaled. With -checkpoint-root, resubmitting the
// identical request to a restarted daemon resumes from the journal
// instead of starting over. With -cache-dir, completed cells and whole
// jobs memoize in a content-addressed result cache shared across
// tenants, so identical resubmissions are served without simulating.
//
// With -fabric, jobs submitted with RunOpts.Fabric (olbench -fabric)
// are not simulated by the daemon itself: their cells go onto a lease
// board that `olserve -worker` processes drain. The coordinator
// reassembles outcomes in declaration order, so fabric output is
// byte-identical to a local run even across worker crashes. With
// -fabric-journal, the board itself survives a coordinator SIGKILL:
// the restarted daemon replays completions and a resubmitted job
// attaches to them instead of starting over. Workers heartbeat held
// leases; a worker that repeatedly goes silent is marked flapping and
// gets shorter leases so its work re-issues early.
//
// -chaos arms deterministic fault injection (seeded by -chaos-seed)
// against the process's own infrastructure: a worker's coordinator
// calls and journal/cache writes, or the daemon's disk. It exists to
// drill the recovery machinery — see `make smoke-chaos`.
//
// Usage:
//
//	olserve -addr localhost:8080 -checkpoint-root /var/tmp/olserve
//	olserve -addr localhost:0 -addr-file daemon.addr   # scripted port pick
//	olserve -addr localhost:8080 -cache-dir /var/tmp/olcache  # memoize results
//	olserve -cache-dir /var/tmp/olcache -cache-cap 1073741824  # 1 GiB LRU budget
//	olserve -addr localhost:8080 -fabric               # coordinator for -worker processes
//	olserve -fabric -fabric-journal board.journal      # coordinator survives SIGKILL
//	olserve -worker http://localhost:8080 -worker-checkpoint-dir w1  # fabric worker
//	olserve -worker URL -chaos net=0.2,fs=0.1 -chaos-seed 7  # chaos-drilled worker
//	olserve -healthcheck http://localhost:8080          # probe; 0 up, 2 draining, 1 down
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"orderlight"
	"orderlight/internal/cliflags"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "listen address (port 0 picks a free port; see -addr-file)")
		addrFile = flag.String("addr-file", "", "write the actual listen address to this file once serving (for scripts using -addr with port 0)")

		queueDepth = flag.Int("queue-depth", 64, "bounded FIFO queue depth; submissions beyond it get 429")
		perTenant  = flag.Int("per-tenant", 0, "max queued+running jobs per tenant (0 = unlimited)")
		workers    = flag.Int("workers", 0, "concurrently executing jobs (0 = one per CPU)")

		ckptRoot     = flag.String("checkpoint-root", "", "give every job a checkpoint directory under this root keyed by request hash, so preempted jobs resume on resubmission")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for running jobs to reach a cell boundary")

		cacheDir = flag.String("cache-dir", "", "memoize completed cells and whole jobs in this content-addressed result cache, shared across tenants")

		calibration = flag.String("calibration", "", "load this twin calibration artifact once and share it with every engine=twin job that brings none of its own")

		fabric        = flag.Bool("fabric", false, "coordinate Fabric jobs: lease their cells to olserve -worker processes instead of simulating locally")
		leaseTimeout  = flag.Duration("lease-timeout", 0, "fabric lease TTL; an uncompleted lease re-issues after this long (0 = default 30s)")
		chunk         = flag.Int("chunk", 0, "cells per fabric lease (0 = default 4)")
		fabricJournal = flag.String("fabric-journal", "", "append every acknowledged fabric board mutation to this crash journal; a SIGKILLed coordinator restarted on it replays completions, and resubmitted jobs attach instead of starting over (needs -fabric)")

		cacheCap = flag.Int64("cache-cap", 0, "result cache disk budget in bytes; least-recently-used blobs evict beyond it (0 = unbounded; needs -cache-dir)")

		worker         = flag.String("worker", "", "worker mode: join the fabric coordinated by the olserve daemon at this base URL (no daemon is started)")
		workerName     = flag.String("worker-name", "", "worker mode: name reported with each lease (default host:pid)")
		workerCkptDir  = flag.String("worker-checkpoint-dir", "", "worker mode: journal leased cells in this directory so a restarted worker replays finished cells")
		workerPoll     = flag.Duration("worker-poll", 0, "worker mode: how long to wait before re-polling an empty lease board (0 = default 250ms)")
		workerParallel = flag.Int("worker-parallel", 0, "worker mode: per-lease worker pool size override (0 = the job's own setting)")

		healthcheck   = flag.String("healthcheck", "", "client mode: poll BASE/healthz until healthy; exit 0 when up, 2 when draining, 1 when down (no daemon is started)")
		healthTimeout = flag.Duration("healthcheck-timeout", 10*time.Second, "how long -healthcheck polls before giving up")
	)
	chaosFlags := cliflags.RegisterChaos(flag.CommandLine)
	flag.Parse()

	if *healthcheck != "" {
		os.Exit(probe(*healthcheck, *healthTimeout))
	}
	chaosPlan, err := chaosFlags.Plan(func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if err != nil {
		fatal(err)
	}
	if *worker != "" {
		os.Exit(runWorker(*worker, *workerName, *workerCkptDir, *workerPoll, *workerParallel, chaosPlan))
	}
	if *fabricJournal != "" && !*fabric {
		fatal(fmt.Errorf("-fabric-journal records the fabric board; it needs -fabric"))
	}
	if *cacheCap != 0 && *cacheDir == "" {
		fatal(fmt.Errorf("-cache-cap bounds the on-disk result cache; it needs -cache-dir"))
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	svc := orderlight.NewLocalService(orderlight.LocalServiceConfig{
		QueueDepth:     *queueDepth,
		PerTenant:      *perTenant,
		Workers:        *workers,
		CheckpointRoot: *ckptRoot,
		CacheDir:       *cacheDir,
		CacheBytes:     *cacheCap,
		Calibration:    *calibration,
		Fabric:         *fabric,
		LeaseTTL:       *leaseTimeout,
		FabricChunk:    *chunk,
		FabricJournal:  *fabricJournal,
		FS:             orderlight.NewChaosFS(chaosPlan, nil),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "olserve: "+format+"\n", args...)
		},
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	if *addrFile != "" {
		// Written after Listen succeeds, so a script that waits for the
		// file never reads an address nothing serves on.
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	srv := &http.Server{Handler: orderlight.NewServiceHandler(svc)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "olserve: serving on http://%s (workers %d, queue %d)\n",
		ln.Addr(), *workers, *queueDepth)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "olserve: %v — draining (timeout %v)\n", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "olserve:", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "olserve: shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "olserve: drained")
}

// runWorker joins a fabric coordinator as a worker until SIGTERM or
// SIGINT. A worker killed outright (SIGKILL mid-lease) is safe: its
// lease expires on the coordinator and re-issues, and on restart the
// journal in -worker-checkpoint-dir replays the cells it had finished.
// A chaos plan, when armed, injects network faults into every
// coordinator call (retried with backoff — the worker is built to
// survive them) and disk faults into the worker's journal and cache.
func runWorker(base, name, ckptDir string, poll time.Duration, parallel int, plan *orderlight.ChaosPlan) int {
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := orderlight.NewServiceClient(base, &http.Client{Transport: orderlight.ChaosTransport(plan, nil)})
	client.EnableRetry(orderlight.ServiceRetryPolicy{Attempts: 5, Logf: func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "olserve: worker %s: %s\n", name, fmt.Sprintf(format, args...))
	}})
	fmt.Fprintf(os.Stderr, "olserve: worker %s joining fabric at %s\n", name, base)
	err := orderlight.RunFabricWorker(ctx, client, orderlight.FabricWorkerOptions{
		Name:          name,
		Poll:          poll,
		CheckpointDir: ckptDir,
		Parallelism:   parallel,
		FS:            orderlight.NewChaosFS(plan, nil),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "olserve: worker %s: %s\n", name, fmt.Sprintf(format, args...))
		},
	})
	if err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "olserve: worker:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "olserve: worker %s stopped\n", name)
	return 0
}

// probe polls the daemon's health endpoint until it answers or the
// deadline passes, and maps the answer to distinct exit codes so
// scripts and orchestrators can tell the states apart without curl:
// 0 the daemon is up and admitting, 2 it answers but is draining
// (shedding load on the way down — don't route new work, don't kill
// it either), 1 it cannot be reached at all.
func probe(base string, timeout time.Duration) int {
	client := orderlight.NewServiceClient(base, &http.Client{Timeout: 2 * time.Second})
	deadline := time.Now().Add(timeout)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		h, err := client.Healthz(ctx)
		cancel()
		if err == nil {
			fmt.Printf("olserve: %s (%d queued, %d running)\n", h.Status, h.Queued, h.Running)
			if h.Status == "draining" {
				return 2
			}
			return 0
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "olserve: %s unhealthy after %v: %v\n", base, timeout, err)
			return 1
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "olserve:", err)
	os.Exit(1)
}

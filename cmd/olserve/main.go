// Command olserve is the simulation daemon: it exposes the library's
// job service over HTTP/JSON so figures and kernels can be simulated
// from anywhere that can speak curl. Results are byte-identical to
// in-process runs — the daemon funnels into the same execution path as
// the library facade.
//
//	POST   /v1/jobs             submit a kernel/experiment/sweep/fault-campaign job
//	GET    /v1/jobs/{id}        job status
//	GET    /v1/jobs/{id}/result job result (409 until terminal)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/jobs/{id}/events lifecycle stream (server-sent events)
//	GET    /healthz             liveness + queue load
//	GET    /v1/version          protocol + toolchain versions
//
// SIGTERM and SIGINT drain gracefully: admission stops, queued jobs
// cancel, running jobs are preempted at their next cell boundary with
// their progress journaled. With -checkpoint-root, resubmitting the
// identical request to a restarted daemon resumes from the journal
// instead of starting over.
//
// Usage:
//
//	olserve -addr localhost:8080 -checkpoint-root /var/tmp/olserve
//	olserve -addr localhost:0 -addr-file daemon.addr   # scripted port pick
//	olserve -healthcheck http://localhost:8080          # probe; exit 0 when healthy
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"orderlight"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8080", "listen address (port 0 picks a free port; see -addr-file)")
		addrFile = flag.String("addr-file", "", "write the actual listen address to this file once serving (for scripts using -addr with port 0)")

		queueDepth = flag.Int("queue-depth", 64, "bounded FIFO queue depth; submissions beyond it get 429")
		perTenant  = flag.Int("per-tenant", 0, "max queued+running jobs per tenant (0 = unlimited)")
		workers    = flag.Int("workers", 0, "concurrently executing jobs (0 = one per CPU)")

		ckptRoot     = flag.String("checkpoint-root", "", "give every job a checkpoint directory under this root keyed by request hash, so preempted jobs resume on resubmission")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for running jobs to reach a cell boundary")

		healthcheck   = flag.String("healthcheck", "", "client mode: poll BASE/healthz until healthy, exit 0/1 (no daemon is started)")
		healthTimeout = flag.Duration("healthcheck-timeout", 10*time.Second, "how long -healthcheck polls before giving up")
	)
	flag.Parse()

	if *healthcheck != "" {
		os.Exit(probe(*healthcheck, *healthTimeout))
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}

	svc := orderlight.NewLocalService(orderlight.LocalServiceConfig{
		QueueDepth:     *queueDepth,
		PerTenant:      *perTenant,
		Workers:        *workers,
		CheckpointRoot: *ckptRoot,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	if *addrFile != "" {
		// Written after Listen succeeds, so a script that waits for the
		// file never reads an address nothing serves on.
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fatal(err)
		}
	}
	srv := &http.Server{Handler: orderlight.NewServiceHandler(svc)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "olserve: serving on http://%s (workers %d, queue %d)\n",
		ln.Addr(), *workers, *queueDepth)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "olserve: %v — draining (timeout %v)\n", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "olserve:", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "olserve: shutdown:", err)
	}
	fmt.Fprintln(os.Stderr, "olserve: drained")
}

// probe polls the daemon's health endpoint until it answers or the
// deadline passes. It exists so scripts (the smoke target, container
// liveness probes) need no curl.
func probe(base string, timeout time.Duration) int {
	client := orderlight.NewServiceClient(base, &http.Client{Timeout: 2 * time.Second})
	deadline := time.Now().Add(timeout)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		h, err := client.Healthz(ctx)
		cancel()
		if err == nil {
			fmt.Printf("olserve: healthy (%s, %d queued, %d running)\n", h.Status, h.Queued, h.Running)
			return 0
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "olserve: %s unhealthy after %v: %v\n", base, timeout, err)
			return 1
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "olserve:", err)
	os.Exit(1)
}

// Command oltrace runs a short PIM kernel and dumps one channel's
// device-issue order next to the warp's program order, making the memory
// controller's (re)ordering decisions visible: with -primitive none the
// two orders diverge (FR-FCFS row-hit-first), with orderlight they agree
// phase-by-phase.
//
// Usage:
//
//	oltrace -kernel add -primitive none -limit 40
//	oltrace -kernel add -primitive orderlight -channel 2
package main

import (
	"flag"
	"fmt"
	"os"

	"orderlight"
	"orderlight/internal/isa"
)

func main() {
	var (
		name     = flag.String("kernel", "add", "Table 2 kernel name")
		prim     = flag.String("primitive", "orderlight", "ordering primitive: none|fence|orderlight|seqno")
		ts       = flag.String("ts", "1/8", "temporary storage as a row-buffer fraction")
		bytes    = flag.Int64("bytes", 8<<10, "bytes per channel per data structure")
		channel  = flag.Int("channel", 0, "channel whose issue order to dump")
		limit    = flag.Int("limit", 60, "max issued requests to print")
		timeline = flag.Bool("timeline", false, "print per-request stage timelines instead of issue order")
	)
	flag.Parse()

	cfg := orderlight.DefaultConfig()
	cfg.Memory.Channels = 4
	cfg.GPU.PIMSMs = 2
	p, err := orderlight.ParsePrimitive(*prim)
	if err != nil {
		fatal(err)
	}
	cfg.Run.Primitive = p
	tsBytes, err := cfg.TSFraction(*ts)
	if err != nil {
		fatal(err)
	}
	cfg.PIM.TSBytes = tsBytes

	if *channel < 0 || *channel >= cfg.Memory.Channels {
		fatal(fmt.Errorf("channel %d out of range [0,%d)", *channel, cfg.Memory.Channels))
	}

	k, err := orderlight.BuildKernel(cfg, *name, *bytes)
	if err != nil {
		fatal(err)
	}
	m, err := orderlight.NewMachine(cfg, k)
	if err != nil {
		fatal(err)
	}
	var log []isa.Request
	m.Controller(*channel).IssueLog = &log
	var tr *orderlight.Tracer
	if *timeline {
		tr = orderlight.NewTracer(1 << 16)
		m.SetTracer(tr)
	}

	res, err := m.Run()
	if err != nil {
		fatal(err)
	}
	if *timeline {
		fmt.Printf("kernel %s, primitive %v — stage timeline (times in core cycles)\n\n",
			*name, cfg.Run.Primitive)
		fmt.Print(tr.Timeline(*limit))
		fmt.Printf("\nfunctionally correct: %v\n", res.Correct)
		checkCorrect(p, res.Correct)
		return
	}
	fmt.Printf("kernel %s, primitive %v, channel %d — %d requests issued to DRAM\n",
		*name, cfg.Run.Primitive, *channel, len(log))
	fmt.Printf("functionally correct: %v\n\n", res.Correct)
	fmt.Println("device issue order (seq = warp program order; gaps/inversions = reordering):")
	inversions := 0
	var lastSeq uint64
	for i, r := range log {
		marker := "  "
		if i > 0 && r.Seq < lastSeq {
			marker = "<-" // issued earlier than an older (by program order) request
			inversions++
		}
		lastSeq = r.Seq
		if i < *limit {
			fmt.Printf("%4d %s %v\n", i, marker, r)
		}
	}
	if len(log) > *limit {
		fmt.Printf("... (%d more)\n", len(log)-*limit)
	}
	fmt.Printf("\nprogram-order inversions at the device: %d\n", inversions)
	checkCorrect(p, res.Correct)
}

// checkCorrect turns an unexpected verification failure into a failure
// exit: every primitive except the deliberately unordered "none" must
// produce a functionally correct run.
func checkCorrect(p orderlight.Primitive, correct bool) {
	if p != orderlight.PrimitiveNone && !correct {
		fatal(fmt.Errorf("primitive %v verified incorrect — ordering bug", p))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oltrace:", err)
	os.Exit(1)
}

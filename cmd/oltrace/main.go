// Command oltrace runs a short PIM kernel and dumps one channel's
// device-issue order next to the warp's program order, making the memory
// controller's (re)ordering decisions visible: with -primitive none the
// two orders diverge (FR-FCFS row-hit-first), with orderlight they agree
// phase-by-phase.
//
// Usage:
//
//	oltrace -kernel add -primitive none -limit 40
//	oltrace -kernel add -primitive orderlight -channel 2
//	oltrace -kernel add -timeline -ring 65536
//	oltrace -kernel add -trace-out run.json   # Perfetto trace of the run
package main

import (
	"flag"
	"fmt"
	"os"

	"orderlight"
	"orderlight/internal/isa"
)

func main() {
	var (
		name     = flag.String("kernel", "add", "Table 2 kernel name")
		prim     = flag.String("primitive", "orderlight", "ordering primitive: none|fence|orderlight|seqno")
		ts       = flag.String("ts", "1/8", "temporary storage as a row-buffer fraction")
		bytes    = flag.Int64("bytes", 8<<10, "bytes per channel per data structure")
		channel  = flag.Int("channel", 0, "channel whose issue order to dump")
		limit    = flag.Int("limit", 60, "max issued requests to print")
		timeline = flag.Bool("timeline", false, "print per-request stage timelines instead of issue order")
		ring     = flag.Int("ring", 1<<16, "stage-trace ring capacity in events (-timeline; oldest events drop beyond it)")
		traceOut = flag.String("trace-out", "", "write a Perfetto/Chrome trace-event JSON of the run to this file")
	)
	flag.Parse()

	cfg := orderlight.DefaultConfig()
	cfg.Memory.Channels = 4
	cfg.GPU.PIMSMs = 2
	p, err := orderlight.ParsePrimitive(*prim)
	if err != nil {
		fatal(err)
	}
	cfg.Run.Primitive = p
	tsBytes, err := cfg.TSFraction(*ts)
	if err != nil {
		fatal(err)
	}
	cfg.PIM.TSBytes = tsBytes

	if *channel < 0 || *channel >= cfg.Memory.Channels {
		fatal(fmt.Errorf("channel %d out of range [0,%d)", *channel, cfg.Memory.Channels))
	}

	k, err := orderlight.BuildKernel(cfg, *name, *bytes)
	if err != nil {
		fatal(err)
	}
	m, err := orderlight.NewMachine(cfg, k)
	if err != nil {
		fatal(err)
	}
	var log []isa.Request
	m.Controller(*channel).IssueLog = &log
	var tr *orderlight.Tracer
	if *timeline {
		tr = orderlight.NewTracer(*ring)
		m.SetTracer(tr)
	}
	var sink *orderlight.PerfettoSink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sink = orderlight.NewPerfettoSink(f)
		m.SetSink(sink)
	}

	res, err := m.Run()
	if err != nil {
		fatal(err)
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			fatal(fmt.Errorf("trace %s: %w", *traceOut, err))
		}
		fmt.Fprintf(os.Stderr, "oltrace: wrote %d events (%d dropped) to %s — open in ui.perfetto.dev\n",
			sink.Events(), sink.Dropped(), *traceOut)
	}
	if *timeline {
		fmt.Printf("kernel %s, primitive %v — stage timeline (times in core cycles)\n\n",
			*name, cfg.Run.Primitive)
		fmt.Print(tr.Timeline(*limit))
		if d := tr.Dropped(); d > 0 {
			fmt.Printf("\n%d events dropped (ring full — the oldest stage crossings are missing; raise -ring)\n", d)
		}
		fmt.Printf("\nfunctionally correct: %v\n", res.Correct)
		checkCorrect(p, res.Correct)
		return
	}
	fmt.Printf("kernel %s, primitive %v, channel %d — %d requests issued to DRAM\n",
		*name, cfg.Run.Primitive, *channel, len(log))
	fmt.Printf("functionally correct: %v\n\n", res.Correct)
	fmt.Println("device issue order (seq = warp program order; gaps/inversions = reordering):")
	inversions := 0
	var lastSeq uint64
	for i, r := range log {
		marker := "  "
		if i > 0 && r.Seq < lastSeq {
			marker = "<-" // issued earlier than an older (by program order) request
			inversions++
		}
		lastSeq = r.Seq
		if i < *limit {
			fmt.Printf("%4d %s %v\n", i, marker, r)
		}
	}
	if len(log) > *limit {
		fmt.Printf("... (%d more)\n", len(log)-*limit)
	}
	fmt.Printf("\nprogram-order inversions at the device: %d\n", inversions)
	checkCorrect(p, res.Correct)
}

// checkCorrect turns an unexpected verification failure into a failure
// exit: every primitive except the deliberately unordered "none" must
// produce a functionally correct run.
func checkCorrect(p orderlight.Primitive, correct bool) {
	if p != orderlight.PrimitiveNone && !correct {
		fatal(fmt.Errorf("primitive %v verified incorrect — ordering bug", p))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "oltrace:", err)
	os.Exit(1)
}

// Command benchjson records and compares the repository's benchmark
// trajectory. It has three modes:
//
//	go test -bench . -benchmem . | benchjson -label BENCH_PR2 > BENCH_PR2.json
//	benchjson -compare [-gate NAME[:TOLPCT],...] BENCH_PR1.json BENCH_PR2.json
//	benchjson -scaling BENCH_PR7.json
//
// The first parses standard `go test -bench` output (including custom
// ReportMetric columns) into a stable JSON record and derives the
// engine speedups from every Foo / FooDense and Foo / FooParallel
// benchmark pair. The second diffs two such records, flagging time and
// allocation regressions; -gate makes named regressions fatal (exit 1)
// beyond a tolerance (default 25%, for cross-machine trajectory
// points). The third renders the parallel-engine shard-scaling curve
// (the .../shards=N sub-benchmarks) as a markdown section for
// results_all.md. The raw -bench text should be kept next to the JSON
// so external tools (e.g. benchstat) can consume it directly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Speedup is a derived dense-vs-skip engine comparison: benchmark Foo
// ran on the quiescence skip-ahead engine, FooDense on the naive dense
// reference, on identical workloads.
type Speedup struct {
	Benchmark string  `json:"benchmark"`
	SkipNs    float64 `json:"skip_ns_per_op"`
	DenseNs   float64 `json:"dense_ns_per_op"`
	Speedup   float64 `json:"speedup"`
}

// ParallelSpeedup is a derived parallel-vs-skip engine comparison:
// benchmark Foo ran on the sequential skip-ahead engine, FooParallel on
// the intra-run per-channel-sharded one, on identical workloads with
// byte-identical results.
type ParallelSpeedup struct {
	Benchmark  string  `json:"benchmark"`
	SkipNs     float64 `json:"skip_ns_per_op"`
	ParallelNs float64 `json:"parallel_ns_per_op"`
	// Speedup is skip-time / parallel-time: above 1 the shards pay off,
	// below 1 the barriers cost more than the parallelism returns (the
	// expected shape on a single-CPU machine).
	Speedup float64 `json:"speedup"`
}

// TwinSpeedup is a derived twin-vs-skip engine comparison: benchmark
// Foo ran the cycle-accurate skip-ahead engine, FooTwin answered the
// identical grid from the calibrated analytical twin. Unlike the other
// engine pairs the outputs are approximations inside recorded error
// bounds, not byte-identical results — the speedup is what those bounds
// buy.
type TwinSpeedup struct {
	Benchmark string  `json:"benchmark"`
	SkipNs    float64 `json:"skip_ns_per_op"`
	TwinNs    float64 `json:"twin_ns_per_op"`
	// Speedup is skip-time / twin-time: how many times faster the
	// analytical answer arrives.
	Speedup float64 `json:"speedup"`
}

// Record is one point on the benchmark trajectory.
type Record struct {
	Label     string `json:"label,omitempty"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// MaxProcs is the GOMAXPROCS suffix the test runner appended to the
	// benchmark names — the CPU budget the point was recorded under.
	// Scaling curves from a 1-CPU box answer a different question than
	// multi-core ones, so the renderer calls the difference out.
	MaxProcs       int               `json:"maxprocs,omitempty"`
	Benchmarks     []Benchmark       `json:"benchmarks"`
	DenseVsSkip    []Speedup         `json:"dense_vs_skip,omitempty"`
	ParallelVsSkip []ParallelSpeedup `json:"parallel_vs_skip,omitempty"`
	TwinVsSkip     []TwinSpeedup     `json:"twin_vs_skip,omitempty"`
	FailedParses   []string          `json:"failed_parses,omitempty"`
}

func main() {
	label := flag.String("label", "", "label to embed in the JSON record")
	compare := flag.Bool("compare", false, "compare two JSON records (old new) instead of parsing bench output")
	gate := flag.String("gate", "", "comma-separated NAME[:TOLPCT] benchmarks whose ns/op regression beyond TOLPCT (default 25) fails -compare")
	scaling := flag.Bool("scaling", false, "render the shard-scaling curve of one JSON record as markdown")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare [-gate NAME[:TOLPCT],...] OLD.json NEW.json")
			os.Exit(2)
		}
		gates, err := parseGates(*gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		if err := compareFiles(os.Stdout, flag.Arg(0), flag.Arg(1), gates); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *scaling {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -scaling RECORD.json")
			os.Exit(2)
		}
		rec, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		renderScaling(os.Stdout, rec)
		return
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	rec, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rec.Label = *label
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` output. A result line is
//
//	BenchmarkName-8   10   123456 ns/op   12 B/op   3 allocs/op   4.5 custom/unit
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parse(r io.Reader) (*Record, error) {
	// The test runner appends -GOMAXPROCS to benchmark names only when
	// it is above one, so "no suffix anywhere" itself means a 1-CPU run.
	rec := &Record{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, MaxProcs: 1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			rec.FailedParses = append(rec.FailedParses, line)
			continue
		}
		if mp := maxProcsSuffix(strings.Fields(line)[0]); mp > 0 {
			rec.MaxProcs = mp
		}
		rec.Benchmarks = append(rec.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rec.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	rec.DenseVsSkip = deriveSpeedups(rec.Benchmarks)
	rec.ParallelVsSkip = deriveParallelSpeedups(rec.Benchmarks)
	rec.TwinVsSkip = deriveTwinSpeedups(rec.Benchmarks)
	return rec, nil
}

// maxProcsSuffix extracts the -GOMAXPROCS suffix from a benchmark
// name, 0 when there is none.
func maxProcsSuffix(name string) int {
	i := strings.LastIndex(name, "-")
	if i <= 0 {
		return 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return 0
	}
	return n
}

func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	name := f[0]
	// Strip the -GOMAXPROCS suffix the test runner appends.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// deriveSpeedups pairs every FooDense benchmark with its Foo
// counterpart and reports dense-time / skip-time.
func deriveSpeedups(bs []Benchmark) []Speedup {
	byName := make(map[string]Benchmark, len(bs))
	for _, b := range bs {
		byName[b.Name] = b
	}
	var out []Speedup
	for _, b := range bs {
		base, ok := strings.CutSuffix(b.Name, "Dense")
		if !ok {
			continue
		}
		skip, ok := byName[base]
		if !ok || skip.NsPerOp <= 0 {
			continue
		}
		out = append(out, Speedup{
			Benchmark: base,
			SkipNs:    skip.NsPerOp,
			DenseNs:   b.NsPerOp,
			Speedup:   b.NsPerOp / skip.NsPerOp,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Benchmark < out[j].Benchmark })
	return out
}

// deriveParallelSpeedups pairs every FooParallel benchmark with its Foo
// counterpart and reports skip-time / parallel-time.
func deriveParallelSpeedups(bs []Benchmark) []ParallelSpeedup {
	byName := make(map[string]Benchmark, len(bs))
	for _, b := range bs {
		byName[b.Name] = b
	}
	var out []ParallelSpeedup
	for _, b := range bs {
		base, ok := strings.CutSuffix(b.Name, "Parallel")
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		skip, ok := byName[base]
		if !ok {
			continue
		}
		out = append(out, ParallelSpeedup{
			Benchmark:  base,
			SkipNs:     skip.NsPerOp,
			ParallelNs: b.NsPerOp,
			Speedup:    skip.NsPerOp / b.NsPerOp,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Benchmark < out[j].Benchmark })
	return out
}

// deriveTwinSpeedups pairs every FooTwin benchmark with its Foo
// counterpart and reports skip-time / twin-time.
func deriveTwinSpeedups(bs []Benchmark) []TwinSpeedup {
	byName := make(map[string]Benchmark, len(bs))
	for _, b := range bs {
		byName[b.Name] = b
	}
	var out []TwinSpeedup
	for _, b := range bs {
		base, ok := strings.CutSuffix(b.Name, "Twin")
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		skip, ok := byName[base]
		if !ok {
			continue
		}
		out = append(out, TwinSpeedup{
			Benchmark: base,
			SkipNs:    skip.NsPerOp,
			TwinNs:    b.NsPerOp,
			Speedup:   skip.NsPerOp / b.NsPerOp,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Benchmark < out[j].Benchmark })
	return out
}

// gateSpec is one -gate entry: a benchmark whose ns/op regression
// beyond tolPct fails the comparison.
type gateSpec struct {
	name   string
	tolPct float64
}

func parseGates(s string) ([]gateSpec, error) {
	if s == "" {
		return nil, nil
	}
	var out []gateSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		g := gateSpec{name: part, tolPct: 25}
		if n, tol, ok := strings.Cut(part, ":"); ok {
			v, err := strconv.ParseFloat(tol, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("bad gate tolerance %q (want NAME[:TOLPCT])", part)
			}
			g.name, g.tolPct = n, v
		}
		out = append(out, g)
	}
	return out, nil
}

// renderScaling prints the record's parallel-engine shard-scaling
// curve — the .../shards=N sub-benchmarks plus the Foo/FooParallel
// engine speedups — as a markdown section for results_all.md.
func renderScaling(w io.Writer, rec *Record) {
	type point struct {
		shards int
		ns     float64
	}
	curves := map[string][]point{}
	var parents []string
	for _, b := range rec.Benchmarks {
		parent, sub, ok := strings.Cut(b.Name, "/shards=")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(sub)
		if err != nil {
			continue
		}
		if _, seen := curves[parent]; !seen {
			parents = append(parents, parent)
		}
		curves[parent] = append(curves[parent], point{n, b.NsPerOp})
	}
	if len(parents) == 0 && len(rec.ParallelVsSkip) == 0 && len(rec.TwinVsSkip) == 0 {
		return
	}
	fmt.Fprintf(w, "\n## Parallel-engine scaling (%s, %s/%s, %s)\n\n",
		name(rec, "bench record"), rec.GOOS, rec.GOARCH, rec.GoVersion)
	fmt.Fprintf(w, "Output is byte-identical at every shard count; only wall time moves.\n")
	if rec.MaxProcs == 1 {
		fmt.Fprintf(w, "\nRecorded on a 1-CPU container (GOMAXPROCS=1): every shard shares one\ncore, so speedups at or below 1x are the expected shape — the curve\nchecks barrier overhead here, not parallelism.\n")
	}
	for _, parent := range parents {
		pts := curves[parent]
		sort.Slice(pts, func(i, j int) bool { return pts[i].shards < pts[j].shards })
		fmt.Fprintf(w, "\n### %s\n\n| shards | ms/op | vs 1 shard |\n|---:|---:|---:|\n", parent)
		base := pts[0].ns
		for _, p := range pts {
			fmt.Fprintf(w, "| %d | %.0f | %.2fx |\n", p.shards, p.ns/1e6, base/p.ns)
		}
	}
	if len(rec.ParallelVsSkip) > 0 {
		fmt.Fprintf(w, "\n### Parallel engine vs sequential skip-ahead\n\n| benchmark | skip ms/op | parallel ms/op | speedup |\n|---|---:|---:|---:|\n")
		for _, s := range rec.ParallelVsSkip {
			fmt.Fprintf(w, "| %s | %.0f | %.0f | %.2fx |\n", s.Benchmark, s.SkipNs/1e6, s.ParallelNs/1e6, s.Speedup)
		}
	}
	if len(rec.TwinVsSkip) > 0 {
		fmt.Fprintf(w, "\n### Twin engine vs sequential skip-ahead\n\nTwin answers are analytical approximations inside recorded error\nbounds, not byte-identical results — this speedup is what those\nbounds buy.\n")
		fmt.Fprintf(w, "\n| benchmark | skip ms/op | twin µs/op | speedup |\n|---|---:|---:|---:|\n")
		for _, s := range rec.TwinVsSkip {
			fmt.Fprintf(w, "| %s | %.1f | %.0f | %.0fx |\n", s.Benchmark, s.SkipNs/1e6, s.TwinNs/1e3, s.Speedup)
		}
	}
}

func load(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rec, nil
}

// compareFiles renders a trajectory diff between two records: per
// benchmark, time and allocation deltas, with regressions flagged.
// Gated benchmarks whose time regressed beyond their tolerance make the
// comparison itself fail.
func compareFiles(w io.Writer, oldPath, newPath string, gates []gateSpec) error {
	oldRec, err := load(oldPath)
	if err != nil {
		return err
	}
	newRec, err := load(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]Benchmark, len(oldRec.Benchmarks))
	for _, b := range oldRec.Benchmarks {
		oldBy[b.Name] = b
	}

	fmt.Fprintf(w, "benchmark trajectory: %s -> %s\n\n", name(oldRec, oldPath), name(newRec, newPath))
	fmt.Fprintf(w, "%-42s %14s %14s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs Δ")
	for _, nb := range newRec.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "%-42s %14s %14.0f %8s %10s\n", nb.Name, "(new)", nb.NsPerOp, "", "")
			continue
		}
		delete(oldBy, nb.Name)
		delta := "n/a"
		if ob.NsPerOp > 0 {
			d := (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
			delta = fmt.Sprintf("%+.1f%%", d)
			if d > 10 {
				delta += " !"
			}
		}
		allocs := fmt.Sprintf("%+.0f", nb.AllocsPerOp-ob.AllocsPerOp)
		fmt.Fprintf(w, "%-42s %14.0f %14.0f %8s %10s\n", nb.Name, ob.NsPerOp, nb.NsPerOp, delta, allocs)
	}
	var gone []string
	for n := range oldBy {
		gone = append(gone, n)
	}
	sort.Strings(gone)
	for _, n := range gone {
		fmt.Fprintf(w, "%-42s %14.0f %14s\n", n, oldBy[n].NsPerOp, "(gone)")
	}
	if len(newRec.DenseVsSkip) > 0 {
		fmt.Fprintf(w, "\ndense-engine vs skip-ahead (new record):\n")
		for _, s := range newRec.DenseVsSkip {
			fmt.Fprintf(w, "%-42s %.2fx\n", s.Benchmark, s.Speedup)
		}
	}
	if len(newRec.ParallelVsSkip) > 0 {
		fmt.Fprintf(w, "\nparallel engine vs skip-ahead (new record):\n")
		for _, s := range newRec.ParallelVsSkip {
			fmt.Fprintf(w, "%-42s %.2fx\n", s.Benchmark, s.Speedup)
		}
	}
	if len(newRec.TwinVsSkip) > 0 {
		fmt.Fprintf(w, "\ntwin engine vs skip-ahead (new record):\n")
		for _, s := range newRec.TwinVsSkip {
			fmt.Fprintf(w, "%-42s %.0fx\n", s.Benchmark, s.Speedup)
		}
	}
	return checkGates(w, oldRec, newRec, gates)
}

// checkGates fails the comparison when a gated benchmark's ns/op
// regressed beyond its tolerance. A gate naming a benchmark absent from
// either record fails too — a silently vanished gate is itself a
// regression.
func checkGates(w io.Writer, oldRec, newRec *Record, gates []gateSpec) error {
	if len(gates) == 0 {
		return nil
	}
	byName := func(bs []Benchmark) map[string]Benchmark {
		m := make(map[string]Benchmark, len(bs))
		for _, b := range bs {
			m[b.Name] = b
		}
		return m
	}
	oldBy, newBy := byName(oldRec.Benchmarks), byName(newRec.Benchmarks)
	var failed []string
	fmt.Fprintln(w)
	for _, g := range gates {
		ob, okOld := oldBy[g.name]
		nb, okNew := newBy[g.name]
		switch {
		case !okOld || !okNew:
			failed = append(failed, g.name)
			fmt.Fprintf(w, "gate %-40s FAIL: missing from %s record\n", g.name,
				map[bool]string{true: "new", false: "old"}[okOld])
		case ob.NsPerOp <= 0:
			fmt.Fprintf(w, "gate %-40s skip: old record has no timing\n", g.name)
		default:
			d := (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
			if d > g.tolPct {
				failed = append(failed, g.name)
				fmt.Fprintf(w, "gate %-40s FAIL: %+.1f%% (tolerance %+.0f%%)\n", g.name, d, g.tolPct)
			} else {
				fmt.Fprintf(w, "gate %-40s ok: %+.1f%% (tolerance %+.0f%%)\n", g.name, d, g.tolPct)
			}
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("%d gated benchmark(s) regressed: %s", len(failed), strings.Join(failed, ", "))
	}
	return nil
}

func name(r *Record, path string) string {
	if r.Label != "" {
		return r.Label
	}
	return path
}

package orderlight_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"orderlight"
)

// TestCheckpointHaltResumeE2E drives the whole stack through the public
// facade: a run halted mid-flight with a checkpoint on disk, resumed in
// a separate call, must reproduce the uninterrupted run exactly.
func TestCheckpointHaltResumeE2E(t *testing.T) {
	ctx := context.Background()
	cfg := apiConfig()
	spec, err := orderlight.KernelSpec("add")
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := orderlight.RunSpecContext(ctx, cfg, spec, 8<<10)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	_, _, err = orderlight.RunSpecContext(ctx, cfg, spec, 8<<10,
		orderlight.WithCheckpointDir(dir), orderlight.WithHaltAfter(200))
	if !errors.Is(err, orderlight.ErrHalted) {
		t.Fatalf("halted run error = %v, want ErrHalted", err)
	}
	ckpts, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(ckpts) != 1 {
		t.Fatalf("checkpoint files on disk: %v (%v), want exactly 1", ckpts, err)
	}

	res, _, err := orderlight.RunSpecContext(ctx, cfg, spec, 8<<10,
		orderlight.WithCheckpointDir(dir), orderlight.WithResume())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatal("resumed run verified incorrect")
	}
	if res.String() != ref.String() {
		t.Fatalf("resumed run differs from uninterrupted run:\n%s\nvs\n%s", res, ref)
	}
}

// TestCheckpointSentinels: the checkpoint error surface is part of the
// facade — damaged files and invalid option combinations map to typed,
// matchable errors.
func TestCheckpointSentinels(t *testing.T) {
	ctx := context.Background()
	cfg := apiConfig()
	if _, err := orderlight.RunKernelContext(ctx, cfg, "add", 8<<10, orderlight.WithResume()); !errors.Is(err, orderlight.ErrInvalidSpec) {
		t.Fatalf("WithResume without WithCheckpointDir: %v, want ErrInvalidSpec", err)
	}

	dir := t.TempDir()
	spec, err := orderlight.KernelSpec("add")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := orderlight.RunSpecContext(ctx, cfg, spec, 8<<10,
		orderlight.WithCheckpointDir(dir), orderlight.WithHaltAfter(200)); !errors.Is(err, orderlight.ErrHalted) {
		t.Fatalf("halted run error = %v, want ErrHalted", err)
	}
	ckpts, _ := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if len(ckpts) != 1 {
		t.Fatalf("want exactly one checkpoint, got %v", ckpts)
	}
	// Flip one payload byte: the resume must fail with the checksum
	// sentinel, never silently restart or return a wrong result.
	data, err := os.ReadFile(ckpts[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(ckpts[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = orderlight.RunSpecContext(ctx, cfg, spec, 8<<10,
		orderlight.WithCheckpointDir(dir), orderlight.WithResume())
	if !errors.Is(err, orderlight.ErrCheckpointChecksum) {
		t.Fatalf("bit-flipped checkpoint resume error = %v, want ErrCheckpointChecksum", err)
	}
}

package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Transport wraps an http.RoundTripper with seeded network-fault
// injection. Returns base unchanged when the plan has no transport
// class armed, so a chaos-free client pays nothing.
func Transport(p *Plan, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if p == nil || !p.spec.NetActive() {
		return base
	}
	return &transport{plan: p, base: base}
}

type transport struct {
	plan *Plan
	base http.RoundTripper
}

// delayStep quantizes ClassDelay injections; the actual delay is a
// deterministic small multiple of it derived from the op index.
const delayStep = 5 * time.Millisecond

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	class, idx := t.plan.NextNet()
	switch class {
	case ClassNone:
		return t.base.RoundTrip(req)

	case ClassReset:
		// Deliver, then lose the answer: the ambiguous failure. The
		// server-side effect (a submitted job, a completed lease) is
		// real; the caller sees only a dead connection.
		resp, err := t.base.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return nil, &netError{msg: fmt.Sprintf("chaos: connection reset (net #%d)", idx)}

	case ClassTimeout:
		// Never sent — the unambiguous transport failure.
		return nil, &netError{msg: fmt.Sprintf("chaos: timeout (net #%d)", idx), timeout: true}

	case ClassHTTP500:
		// Deliberately NOT a protocol error envelope: this models the
		// envelope-less 5xx a dying daemon or intermediary produces (an
		// HTML error page, a blank body), which is the retryable kind.
		// Protocol-spoken 5xx errors carry envelopes and come from the
		// real server, not from chaos.
		return synthesize(req, http.StatusInternalServerError,
			"chaos: injected internal error\n"), nil

	case ClassGarbage:
		return synthesize(req, http.StatusOK, "<<<chaos garbage; not protocol JSON>>>"), nil

	case ClassDup:
		// Deliver twice, answer with the second delivery — the
		// double-submit a retrying proxy produces. Only requests whose
		// body can be replayed (GetBody, set by http.NewRequest for
		// buffered bodies) are duplicable; others fall through intact.
		if req.Body == nil || req.GetBody != nil {
			first := req.Clone(req.Context())
			if req.GetBody != nil {
				body, err := req.GetBody()
				if err != nil {
					return nil, err
				}
				first.Body = body
			}
			if resp, err := t.base.RoundTrip(first); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if req.GetBody != nil {
				body, err := req.GetBody()
				if err != nil {
					return nil, err
				}
				req.Body = body
			}
		}
		return t.base.RoundTrip(req)

	case ClassDelay:
		d := time.Duration(1+idx%4) * delayStep
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(d):
		}
		return t.base.RoundTrip(req)

	default:
		// Filesystem classes never reach the net domain.
		return t.base.RoundTrip(req)
	}
}

// synthesize fabricates a response that never touched the server.
func synthesize(req *http.Request, status int, body string) *http.Response {
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// netError is the injected transport failure; it satisfies net.Error
// so timeout-aware callers classify it the way they would the real
// thing.
type netError struct {
	msg     string
	timeout bool
}

func (e *netError) Error() string   { return e.msg }
func (e *netError) Timeout() bool   { return e.timeout }
func (e *netError) Temporary() bool { return true }

// Package chaos is deterministic fault injection for the
// infrastructure plane: the HTTP paths between clients, the
// coordinator and fabric workers, and the filesystem underneath the
// result cache, checkpoints and journals.
//
// It mirrors the stateless splitmix64 plan idiom of internal/fault,
// which attacks the *simulated hardware*: one seeded Spec describes
// the whole failure campaign, every decision is a pure hash of
// (seed, class, op index), and therefore a failure sequence is exactly
// replayable from its seed. internal/fault proves the ordering
// machinery correct under attack; this package proves the serving
// stack around it correct under infrastructure fire — the acceptance
// bar stays byte-identical output.
//
// Two injectors consume one Plan:
//
//   - Transport (transport.go) wraps an http.RoundTripper and injects
//     connection resets (after delivery — the ambiguous failure),
//     timeouts, fabricated 5xx and garbage responses, duplicated and
//     delayed deliveries.
//   - NewFS (fs.go) wraps a filesystem and injects ENOSPC, torn
//     writes, fsync failures and rename races into the write path;
//     reads are never faulted, so what the injector tore is discovered
//     the same way a real crash's damage is — at read-back.
package chaos

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
)

// Class enumerates the infrastructure fault families the injector can
// introduce. The first group attacks the network between serve
// clients, the coordinator and workers; the second attacks the disk
// under the cache, checkpoints and journals.
type Class uint8

const (
	// ClassNone disables injection; the zero Spec is a no-op.
	ClassNone Class = iota

	// ClassReset delivers the request to the server, then reports a
	// connection reset to the caller instead of the response. This is
	// the ambiguous failure: the side effect happened, the client
	// cannot know. Surviving it is what idempotency keys are for.
	ClassReset

	// ClassTimeout refuses to send the request at all and reports a
	// timeout. The unambiguous transport failure; plain retry fodder.
	ClassTimeout

	// ClassHTTP500 fabricates a 500 response without contacting the
	// server (an overloaded proxy, a crashing handler).
	ClassHTTP500

	// ClassGarbage fabricates a 200 response whose body is not valid
	// protocol JSON (a truncating proxy, a wedged middlebox).
	ClassGarbage

	// ClassDup delivers the request twice and hands the caller the
	// second response — the retry-amplification double-submit.
	ClassDup

	// ClassDelay delivers the request after a deterministic delay,
	// reordering it against concurrent traffic.
	ClassDelay

	// ClassENOSPC fails a write before any byte lands (full disk).
	ClassENOSPC

	// ClassTorn persists only a prefix of a write, then reports the
	// failure (a crash mid-write). The torn bytes stay on disk for
	// read-back to discover.
	ClassTorn

	// ClassFsyncFail keeps the written data but fails the fsync with
	// EIO — durability unknown, contents intact.
	ClassFsyncFail

	// ClassRenameRace fails the atomic-publish rename as if the
	// temp file had been swept by a concurrent cleaner.
	ClassRenameRace

	classCount
)

// NetClasses lists the transport-plane classes in decision order.
func NetClasses() []Class {
	return []Class{ClassReset, ClassTimeout, ClassHTTP500, ClassGarbage, ClassDup, ClassDelay}
}

// FSClasses lists the filesystem-plane classes in decision order.
func FSClasses() []Class {
	return []Class{ClassENOSPC, ClassTorn, ClassFsyncFail, ClassRenameRace}
}

func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassReset:
		return "reset"
	case ClassTimeout:
		return "timeout"
	case ClassHTTP500:
		return "http500"
	case ClassGarbage:
		return "garbage"
	case ClassDup:
		return "dup"
	case ClassDelay:
		return "delay"
	case ClassENOSPC:
		return "enospc"
	case ClassTorn:
		return "torn"
	case ClassFsyncFail:
		return "fsync"
	case ClassRenameRace:
		return "rename"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// ParseClass converts a class name to a Class.
func ParseClass(s string) (Class, error) {
	for c := Class(1); c < classCount; c++ {
		if c.String() == strings.ToLower(strings.TrimSpace(s)) {
			return c, nil
		}
	}
	if strings.ToLower(strings.TrimSpace(s)) == "none" || strings.TrimSpace(s) == "" {
		return ClassNone, nil
	}
	return ClassNone, fmt.Errorf("chaos: unknown class %q", s)
}

// Spec is the seeded description of one infrastructure chaos plan: a
// rate in (0, 1] per active class. It is a pure value — two plans
// built from equal specs make identical decisions.
type Spec struct {
	// Seed keys every injection decision. Decisions are stateless
	// hashes of (Seed, class, per-domain op index), so a fixed seed
	// replays the identical fault sequence over the identical op
	// sequence.
	Seed uint64

	// Rates maps each active class to its injection rate in (0, 1].
	Rates map[Class]float64
}

// Active reports whether the spec injects anything.
func (s Spec) Active() bool {
	for _, r := range s.Rates {
		if r > 0 {
			return true
		}
	}
	return false
}

// NetActive reports whether any transport-plane class is armed.
func (s Spec) NetActive() bool {
	for _, c := range NetClasses() {
		if s.Rates[c] > 0 {
			return true
		}
	}
	return false
}

// FSActive reports whether any filesystem-plane class is armed.
func (s Spec) FSActive() bool {
	for _, c := range FSClasses() {
		if s.Rates[c] > 0 {
			return true
		}
	}
	return false
}

// Validate reports structurally impossible specs.
func (s Spec) Validate() error {
	for c, r := range s.Rates {
		if c == ClassNone || c >= classCount {
			return fmt.Errorf("chaos: unknown class %d", uint8(c))
		}
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 || r > 1 {
			return fmt.Errorf("chaos: %v rate %v outside [0, 1]", c, r)
		}
	}
	return nil
}

// String renders the spec in the canonical form ParseSpec accepts:
// active classes in declaration order, e.g. "reset=0.2,enospc=0.1".
// The seed is carried separately (-chaos-seed), not in the string.
func (s Spec) String() string {
	var parts []string
	for c := Class(1); c < classCount; c++ {
		if r := s.Rates[c]; r > 0 {
			parts = append(parts, fmt.Sprintf("%v=%s", c, strconv.FormatFloat(r, 'g', -1, 64)))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a chaos plan description: comma-separated
// class=rate pairs ("reset=0.2,enospc=0.1"), with two group
// shorthands — "net=R" arms every transport class at rate R and
// "fs=R" every filesystem class. Entries apply left to right, so a
// later class entry overrides the group that armed it
// ("net=0.3,dup=0" arms every transport class except dup).
// "" and "none" parse to the inactive zero Spec.
func ParseSpec(s string) (Spec, error) {
	spec := Spec{Rates: map[Class]float64{}}
	trimmed := strings.TrimSpace(s)
	if trimmed == "" || strings.EqualFold(trimmed, "none") {
		return Spec{}, nil
	}
	for _, part := range strings.Split(trimmed, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return Spec{}, fmt.Errorf("chaos: malformed entry %q (want class=rate)", part)
		}
		rate, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return Spec{}, fmt.Errorf("chaos: bad rate in %q: %v", part, err)
		}
		if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 || rate > 1 {
			return Spec{}, fmt.Errorf("chaos: rate in %q outside [0, 1]", part)
		}
		var targets []Class
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "net":
			targets = NetClasses()
		case "fs":
			targets = FSClasses()
		default:
			c, err := ParseClass(name)
			if err != nil {
				return Spec{}, err
			}
			if c == ClassNone {
				return Spec{}, fmt.Errorf("chaos: malformed entry %q (want class=rate)", part)
			}
			targets = []Class{c}
		}
		for _, c := range targets {
			if rate == 0 {
				delete(spec.Rates, c)
			} else {
				spec.Rates[c] = rate
			}
		}
	}
	if len(spec.Rates) == 0 {
		return Spec{}, nil
	}
	return spec, nil
}

// opDomain indexes the independent op counters. Each injection point
// draws from its own monotone sequence, so the decision for "the Nth
// write" does not depend on how many renames happened before it.
type opDomain uint8

const (
	opNet opDomain = iota
	opWrite
	opSync
	opRename
	opDomainCount
)

func (d opDomain) String() string {
	switch d {
	case opNet:
		return "net"
	case opWrite:
		return "write"
	case opSync:
		return "sync"
	case opRename:
		return "rename"
	default:
		return fmt.Sprintf("op(%d)", uint8(d))
	}
}

// Plan is a live chaos plan shared by every injector of one process
// (transport wrapper, filesystem shims). Decisions are stateless seed
// hashes over per-domain op indexes; the only mutable state is the op
// counters and the injection tally. A nil *Plan injects nothing, so
// call sites need no plan-presence branches.
type Plan struct {
	spec       Spec
	thresholds [classCount]uint64
	logf       func(format string, args ...any)
	seq        [opDomainCount]atomic.Uint64
	counts     [classCount]atomic.Int64
}

// NewPlan materializes a spec into a live plan. logf, when non-nil,
// receives one line per injected fault ("chaos: net #12 reset") — the
// replayable trace the smoke drill diffs across runs. An inactive
// spec yields a nil plan.
func NewPlan(s Spec, logf func(format string, args ...any)) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if !s.Active() {
		return nil, nil
	}
	p := &Plan{spec: s, logf: logf}
	for c, r := range s.Rates {
		if r <= 0 {
			continue
		}
		if r >= 1 {
			p.thresholds[c] = math.MaxUint64
		} else {
			p.thresholds[c] = uint64(r * float64(math.MaxUint64))
		}
	}
	return p, nil
}

// Spec returns the spec the plan was built from.
func (p *Plan) Spec() Spec {
	if p == nil {
		return Spec{}
	}
	return p.spec
}

// mix is SplitMix64's finalizer — the same stateless per-event hash
// internal/fault uses for ordering faults.
func mix(x uint64) uint64 {
	x += 0x9e37_79b9_7f4a_7c15
	x = (x ^ (x >> 30)) * 0xbf58_476d_1ce4_e5b9
	x = (x ^ (x >> 27)) * 0x94d0_49bb_1331_11eb
	return x ^ (x >> 31)
}

// salt keeps the decision streams of different classes statistically
// independent under equal seeds (the same role as internal/fault's
// per-class salt constants, generated instead of enumerated).
func salt(c Class) uint64 {
	return mix(0xc4a0_5eed_0000_0000 + uint64(c))
}

func (p *Plan) decide(c Class, idx uint64) bool {
	th := p.thresholds[c]
	return th != 0 && mix(p.spec.Seed^salt(c)^idx) <= th
}

// next draws the next op index in a domain and returns the first
// armed class (in the given decision order) that fires on it, with
// the index for trace labeling.
func (p *Plan) next(d opDomain, order []Class) (Class, uint64) {
	if p == nil {
		return ClassNone, 0
	}
	idx := p.seq[d].Add(1) - 1
	for _, c := range order {
		if p.decide(c, idx) {
			p.counts[c].Add(1)
			if p.logf != nil {
				p.logf("chaos: %v #%d %v", d, idx, c)
			}
			return c, idx
		}
	}
	return ClassNone, idx
}

// NextNet draws the fault decision for the next outbound HTTP request.
func (p *Plan) NextNet() (Class, uint64) { return p.next(opNet, NetClasses()) }

// NextWrite draws the fault decision for the next file write.
// Candidate classes: ENOSPC, torn.
func (p *Plan) NextWrite() (Class, uint64) {
	return p.next(opWrite, []Class{ClassENOSPC, ClassTorn})
}

// NextSync draws the fault decision for the next fsync.
func (p *Plan) NextSync() (Class, uint64) {
	return p.next(opSync, []Class{ClassFsyncFail})
}

// NextRename draws the fault decision for the next rename.
func (p *Plan) NextRename() (Class, uint64) {
	return p.next(opRename, []Class{ClassRenameRace})
}

// Injections returns the total number of faults injected so far.
func (p *Plan) Injections() int64 {
	if p == nil {
		return 0
	}
	var n int64
	for i := range p.counts {
		n += p.counts[i].Load()
	}
	return n
}

// Report renders the non-zero injection tallies deterministically,
// e.g. "reset 3, enospc 1", or "none".
func (p *Plan) Report() string {
	if p == nil {
		return "none"
	}
	var parts []string
	for c := Class(1); c < classCount; c++ {
		if n := p.counts[c].Load(); n > 0 {
			parts = append(parts, fmt.Sprintf("%v %d", c, n))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}

package chaos

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// File is the writable-file surface the durability layers (rcache
// blobs, checkpoints, journals) actually use; *os.File satisfies it.
type File interface {
	io.Writer
	io.Closer
	Name() string
	Sync() error
}

// FS is the injectable filesystem seam. Production code takes an FS
// instead of calling the os package directly, so one chaos plan can
// make every store in the process share a sick disk. Read operations
// are part of the seam for symmetry but are never faulted: damage is
// injected on the write path and discovered at read-back, the same
// way a real crash's damage is.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Chmod(name string, mode os.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) Chmod(name string, mode os.FileMode) error  { return os.Chmod(name, mode) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// NewFS wraps a filesystem with seeded write-path fault injection.
// Returns base unchanged when the plan has no filesystem class armed.
// A nil base means OS.
func NewFS(p *Plan, base FS) FS {
	if base == nil {
		base = OS
	}
	if p == nil || !p.spec.FSActive() {
		return base
	}
	return &chaosFS{plan: p, base: base}
}

type chaosFS struct {
	plan *Plan
	base FS
}

func (c *chaosFS) MkdirAll(path string, perm os.FileMode) error { return c.base.MkdirAll(path, perm) }
func (c *chaosFS) ReadFile(name string) ([]byte, error)         { return c.base.ReadFile(name) }
func (c *chaosFS) Remove(name string) error                     { return c.base.Remove(name) }
func (c *chaosFS) Chmod(name string, mode os.FileMode) error    { return c.base.Chmod(name, mode) }
func (c *chaosFS) ReadDir(name string) ([]fs.DirEntry, error)   { return c.base.ReadDir(name) }

func (c *chaosFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := c.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &chaosFile{plan: c.plan, base: f}, nil
}

func (c *chaosFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := c.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &chaosFile{plan: c.plan, base: f}, nil
}

func (c *chaosFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	switch class, _ := c.plan.NextWrite(); class {
	case ClassENOSPC:
		return &os.PathError{Op: "write", Path: name, Err: syscall.ENOSPC}
	case ClassTorn:
		// Persist a prefix, then fail: the file now holds torn bytes
		// the caller knows about only because the error said so.
		c.base.WriteFile(name, data[:len(data)/2], perm)
		return &os.PathError{Op: "write", Path: name, Err: fmt.Errorf("chaos: torn write: %w", io.ErrShortWrite)}
	}
	return c.base.WriteFile(name, data, perm)
}

func (c *chaosFS) Rename(oldpath, newpath string) error {
	if class, _ := c.plan.NextRename(); class == ClassRenameRace {
		// As if a concurrent cleaner swept the temp first; nothing is
		// renamed and the source is left for the caller to collect.
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: syscall.ENOENT}
	}
	return c.base.Rename(oldpath, newpath)
}

type chaosFile struct {
	plan *Plan
	base File
}

func (f *chaosFile) Name() string { return f.base.Name() }
func (f *chaosFile) Close() error { return f.base.Close() }

func (f *chaosFile) Write(b []byte) (int, error) {
	switch class, _ := f.plan.NextWrite(); class {
	case ClassENOSPC:
		return 0, &os.PathError{Op: "write", Path: f.base.Name(), Err: syscall.ENOSPC}
	case ClassTorn:
		n, _ := f.base.Write(b[:len(b)/2])
		return n, &os.PathError{Op: "write", Path: f.base.Name(), Err: fmt.Errorf("chaos: torn write: %w", io.ErrShortWrite)}
	}
	return f.base.Write(b)
}

func (f *chaosFile) Sync() error {
	if class, _ := f.plan.NextSync(); class == ClassFsyncFail {
		// The data written so far stays (our simulated page cache is
		// the real file); only the durability barrier fails.
		return &os.PathError{Op: "sync", Path: f.base.Name(), Err: syscall.EIO}
	}
	return f.base.Sync()
}

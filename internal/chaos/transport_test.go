package chaos

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// onePlan builds a rate-1 plan for a single class.
func onePlan(t *testing.T, c Class) *Plan {
	t.Helper()
	p, err := NewPlan(Spec{Seed: 7, Rates: map[Class]float64{c: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func postJSON(t *testing.T, rt http.RoundTripper, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader([]byte(`{"n":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

func TestTransportPassthrough(t *testing.T) {
	base := http.DefaultTransport
	if got := Transport(nil, base); got != base {
		t.Error("nil plan should return base unchanged")
	}
	// A plan with only filesystem classes armed leaves the transport alone.
	if got := Transport(onePlan(t, ClassENOSPC), base); got != base {
		t.Error("fs-only plan should return base unchanged")
	}
	if got := Transport(onePlan(t, ClassReset), nil); got == nil {
		t.Error("nil base should default to http.DefaultTransport")
	}
}

func TestTransportReset(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	rt := Transport(onePlan(t, ClassReset), nil)
	resp, err := postJSON(t, rt, srv.URL)
	if err == nil {
		resp.Body.Close()
		t.Fatal("reset class returned a response")
	}
	if !strings.Contains(err.Error(), "reset") {
		t.Fatalf("error %v does not look like a reset", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (reset delivers before losing the answer)", hits.Load())
	}
}

func TestTransportTimeout(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()

	rt := Transport(onePlan(t, ClassTimeout), nil)
	if resp, err := postJSON(t, rt, srv.URL); err == nil {
		resp.Body.Close()
		t.Fatal("timeout class returned a response")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("error %v is not a net.Error timeout", err)
	}
	if hits.Load() != 0 {
		t.Fatalf("server saw %d requests, want 0 (timeout never sends)", hits.Load())
	}
}

func TestTransportFabricated(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()

	resp, err := postJSON(t, Transport(onePlan(t, ClassHTTP500), nil), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(body), "chaos") {
		t.Fatalf("500 body %q", body)
	}

	resp, err = postJSON(t, Transport(onePlan(t, ClassGarbage), nil), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("garbage status %d, want 200", resp.StatusCode)
	}
	if strings.HasPrefix(strings.TrimSpace(string(body)), "{") {
		t.Fatalf("garbage body %q parses as JSON-ish", body)
	}
	if hits.Load() != 0 {
		t.Fatalf("server saw %d requests, want 0 (fabricated responses never send)", hits.Load())
	}
}

func TestTransportDup(t *testing.T) {
	var hits atomic.Int64
	var lastBody atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		lastBody.Store(string(b))
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	resp, err := postJSON(t, Transport(onePlan(t, ClassDup), nil), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2", hits.Load())
	}
	if got := lastBody.Load().(string); got != `{"n":1}` {
		t.Fatalf("duplicated body %q lost its payload", got)
	}
}

func TestTransportDelayDelivers(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer srv.Close()

	resp, err := postJSON(t, Transport(onePlan(t, ClassDelay), nil), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", hits.Load())
	}
}

package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestNewFSPassthrough(t *testing.T) {
	if got := NewFS(nil, OS); got != OS {
		t.Error("nil plan should return base unchanged")
	}
	if got := NewFS(onePlan(t, ClassReset), OS); got != OS {
		t.Error("net-only plan should return base unchanged")
	}
	if got := NewFS(onePlan(t, ClassTorn), nil); got == nil {
		t.Error("nil base should default to OS")
	}
}

func TestFSENOSPC(t *testing.T) {
	dir := t.TempDir()
	cfs := NewFS(onePlan(t, ClassENOSPC), OS)
	path := filepath.Join(dir, "blob")

	if err := cfs.WriteFile(path, []byte("payload"), 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("WriteFile err = %v, want ENOSPC", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("ENOSPC write left a file behind")
	}

	f, err := cfs.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("payload"))
	f.Close()
	if n != 0 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Write = %d, %v; want 0, ENOSPC", n, err)
	}
}

func TestFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	cfs := NewFS(onePlan(t, ClassTorn), OS)
	path := filepath.Join(dir, "blob")

	err := cfs.WriteFile(path, []byte("0123456789"), 0o644)
	if err == nil {
		t.Fatal("torn write reported success")
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "01234" {
		t.Fatalf("torn file holds %q, want the 5-byte prefix", got)
	}

	f, err := cfs.CreateTemp(dir, "t*")
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("0123456789"))
	f.Close()
	if werr == nil || n != 5 {
		t.Fatalf("file torn write = %d, %v; want 5, error", n, werr)
	}
}

func TestFSFsyncFail(t *testing.T) {
	dir := t.TempDir()
	cfs := NewFS(onePlan(t, ClassFsyncFail), OS)

	f, err := cfs.OpenFile(filepath.Join(dir, "j"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("line\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Sync err = %v, want EIO", err)
	}
	f.Close()
	got, err := os.ReadFile(filepath.Join(dir, "j"))
	if err != nil || string(got) != "line\n" {
		t.Fatalf("data lost across failed fsync: %q, %v", got, err)
	}
}

func TestFSRenameRace(t *testing.T) {
	dir := t.TempDir()
	cfs := NewFS(onePlan(t, ClassRenameRace), OS)
	tmp := filepath.Join(dir, "x.tmp")
	dst := filepath.Join(dir, "x")
	if err := os.WriteFile(tmp, []byte("v"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cfs.Rename(tmp, dst); !errors.Is(err, syscall.ENOENT) {
		t.Fatalf("Rename err = %v, want ENOENT", err)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Fatal("rename race should leave the temp for the caller to collect")
	}
	if _, err := os.Stat(dst); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("rename race should not publish the destination")
	}
}

// TestFSReadsNeverFaulted pins the read-path contract: a plan with
// every fs class at rate 1 still reads and lists cleanly.
func TestFSReadsNeverFaulted(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a"), []byte("v"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, _ := ParseSpec("fs=1")
	p, err := NewPlan(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfs := NewFS(p, OS)
	if got, err := cfs.ReadFile(filepath.Join(dir, "a")); err != nil || string(got) != "v" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if ents, err := cfs.ReadDir(dir); err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := cfs.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := cfs.Chmod(filepath.Join(dir, "a"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := cfs.Remove(filepath.Join(dir, "a")); err != nil {
		t.Fatal(err)
	}
	if p.Injections() != 0 {
		t.Fatalf("read-path ops consumed %d injections", p.Injections())
	}
}

package chaos

import (
	"fmt"
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    string // canonical String() form
		wantErr bool
	}{
		{in: "", want: "none"},
		{in: "none", want: "none"},
		{in: " None ", want: "none"},
		{in: "reset=0.25", want: "reset=0.25"},
		{in: "torn=1", want: "torn=1"},
		{in: "reset=0.2,enospc=0.1", want: "reset=0.2,enospc=0.1"},
		{in: "enospc=0.1, reset=0.2", want: "reset=0.2,enospc=0.1"},
		{in: "net=0.3", want: "reset=0.3,timeout=0.3,http500=0.3,garbage=0.3,dup=0.3,delay=0.3"},
		{in: "fs=0.5", want: "enospc=0.5,torn=0.5,fsync=0.5,rename=0.5"},
		{in: "net=0.3,dup=0", want: "reset=0.3,timeout=0.3,http500=0.3,garbage=0.3,delay=0.3"},
		{in: "fs=0", want: "none"},
		{in: "reset=0", want: "none"},
		{in: "reset", wantErr: true},
		{in: "reset=", wantErr: true},
		{in: "reset=nope", wantErr: true},
		{in: "reset=1.5", wantErr: true},
		{in: "reset=-0.1", wantErr: true},
		{in: "reset=NaN", wantErr: true},
		{in: "reset=+Inf", wantErr: true},
		{in: "bogus=0.5", wantErr: true},
		{in: "none=0.5", wantErr: true},
	}
	for _, tc := range cases {
		spec, err := ParseSpec(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got %v", tc.in, spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.in, err)
			continue
		}
		if got := spec.String(); got != tc.want {
			t.Errorf("ParseSpec(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	spec, err := ParseSpec("reset=0.125,timeout=0.5,enospc=0.25,rename=1")
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", spec.String(), err)
	}
	if again.String() != spec.String() {
		t.Fatalf("round trip drifted: %q -> %q", spec.String(), again.String())
	}
}

func TestSpecPlaneQueries(t *testing.T) {
	netOnly, _ := ParseSpec("reset=0.5")
	fsOnly, _ := ParseSpec("torn=0.5")
	if !netOnly.NetActive() || netOnly.FSActive() {
		t.Errorf("reset spec: NetActive=%v FSActive=%v", netOnly.NetActive(), netOnly.FSActive())
	}
	if fsOnly.NetActive() || !fsOnly.FSActive() {
		t.Errorf("torn spec: NetActive=%v FSActive=%v", fsOnly.NetActive(), fsOnly.FSActive())
	}
	if (Spec{}).Active() {
		t.Error("zero spec reports active")
	}
}

func TestNewPlanInactive(t *testing.T) {
	p, err := NewPlan(Spec{}, nil)
	if err != nil || p != nil {
		t.Fatalf("NewPlan(zero) = %v, %v; want nil, nil", p, err)
	}
	if _, err := NewPlan(Spec{Rates: map[Class]float64{ClassReset: 2}}, nil); err == nil {
		t.Fatal("NewPlan accepted rate 2")
	}
}

func TestNilPlanIsQuiet(t *testing.T) {
	var p *Plan
	if c, _ := p.NextNet(); c != ClassNone {
		t.Errorf("nil plan NextNet = %v", c)
	}
	if c, _ := p.NextWrite(); c != ClassNone {
		t.Errorf("nil plan NextWrite = %v", c)
	}
	if p.Injections() != 0 || p.Report() != "none" || p.Spec().Active() {
		t.Error("nil plan leaks state")
	}
}

// drive runs a fixed op script against a fresh plan and returns the
// decision trace.
func drive(t *testing.T, seed uint64) []string {
	t.Helper()
	spec, err := ParseSpec("net=0.3,fs=0.3")
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = seed
	var trace []string
	p, err := NewPlan(spec, func(format string, args ...any) {
		trace = append(trace, fmt.Sprintf(format, args...))
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p.NextNet()
		p.NextWrite()
		p.NextSync()
		p.NextRename()
	}
	return trace
}

func TestPlanDeterministicAcrossRuns(t *testing.T) {
	a := drive(t, 42)
	b := drive(t, 42)
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("same seed, different traces:\n%v\nvs\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("rate-0.3 plan injected nothing over 200 ops")
	}
	c := drive(t, 43)
	if strings.Join(a, "\n") == strings.Join(c, "\n") {
		t.Fatal("different seeds produced identical traces")
	}
	for _, line := range a {
		if !strings.HasPrefix(line, "chaos: ") {
			t.Fatalf("trace line %q not chaos-prefixed", line)
		}
	}
}

func TestPlanCountsInjections(t *testing.T) {
	spec, _ := ParseSpec("enospc=1")
	p, err := NewPlan(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if c, _ := p.NextWrite(); c != ClassENOSPC {
			t.Fatalf("write %d: got %v, want enospc", i, c)
		}
	}
	if got := p.Injections(); got != 5 {
		t.Fatalf("Injections = %d, want 5", got)
	}
	if got := p.Report(); got != "enospc 5" {
		t.Fatalf("Report = %q", got)
	}
	// Rate-1 write faults never bleed into other domains.
	if c, _ := p.NextNet(); c != ClassNone {
		t.Fatalf("net drew %v from a write-only plan", c)
	}
}

func TestParseClass(t *testing.T) {
	for c := Class(1); c < classCount; c++ {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if c, err := ParseClass("none"); err != nil || c != ClassNone {
		t.Errorf("ParseClass(none) = %v, %v", c, err)
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Error("ParseClass(bogus) succeeded")
	}
}

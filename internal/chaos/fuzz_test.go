package chaos

import (
	"testing"
)

// FuzzChaosPlanDecode attacks the chaos spec parser: arbitrary input
// must either be rejected or yield a spec that validates, builds a
// plan, and survives a canonical round trip (String -> ParseSpec ->
// String fixed point). The committed corpus pins the grammar: plain
// pairs, group shorthands, overrides, and the rejection cases.
func FuzzChaosPlanDecode(f *testing.F) {
	seeds := []string{
		"",
		"none",
		"reset=0.2",
		"net=0.3",
		"fs=0.5",
		"net=0.25,fs=0.25",
		"net=0.3,dup=0",
		"reset=0.2,timeout=0.1,http500=0.05,garbage=0.05,dup=0.1,delay=0.3",
		"enospc=1,torn=0.5,fsync=0.25,rename=0.125",
		"reset=1.5",
		"reset=-1",
		"reset=NaN",
		"bogus=0.5",
		"reset",
		"=0.5",
		"net=0.3,,fs=0.2",
		"reset=1e-3",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		spec, err := ParseSpec(in)
		if err != nil {
			return
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("ParseSpec(%q) accepted an invalid spec: %v", in, err)
		}
		spec.Seed = 1
		if _, err := NewPlan(spec, nil); err != nil {
			t.Fatalf("ParseSpec(%q) accepted a spec NewPlan rejects: %v", in, err)
		}
		canon := spec.String()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, in, err)
		}
		if again.String() != canon {
			t.Fatalf("canonical form is not a fixed point: %q -> %q", canon, again.String())
		}
	})
}

package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"orderlight/internal/config"
)

// Manifest is the provenance record attached to every simulation cell:
// everything needed to reproduce the datapoint, plus the environment it
// was measured in. Manifests render alongside experiment tables (the
// -manifest flag of olbench) so results_all.md carries its own
// reproduction recipe.
type Manifest struct {
	Cell            string  `json:"cell"`                // cell key, e.g. "fig5/add/fence/ts=1/8"
	Kernel          string  `json:"kernel"`              // Table 2 workload (spec name)
	Primitive       string  `json:"primitive"`           // ordering discipline
	Seed            uint64  `json:"seed"`                // deterministic seed
	Channels        int     `json:"channels"`            // memory channels
	TSBytes         int     `json:"ts_bytes"`            // temporary storage per PIM unit
	BMF             int     `json:"bmf"`                 // bandwidth multiplication factor
	BytesPerChannel int64   `json:"bytes_per_channel"`   // data footprint
	HostBaseline    bool    `json:"host_baseline"`       // host-streaming cell, not a PIM kernel
	ConfigHash      string  `json:"config_hash"`         // ConfigHash of the full config
	Engine          string  `json:"engine"`              // "skip", "dense", "parallel" or "twin"
	WallMS          float64 `json:"wall_ms"`             // host wall-clock time of the cell
	GoVersion       string  `json:"go_version"`          // runtime.Version()
	CacheKey        string  `json:"cache_key,omitempty"` // result-cache content address, when a cache was armed
	CacheHit        bool    `json:"cache_hit,omitempty"` // result served from the cache (WallMS is then zero)

	// Twin provenance: set only on engine=twin answers, which are
	// approximations — CalibrationHash names the exact calibration the
	// answer came from and ErrorBound is its recorded relative
	// cycle-count bound. Deliberately absent from String(): twin tables
	// are never byte-compared against cycle-engine tables.
	CalibrationHash string  `json:"calibration_hash,omitempty"`
	ErrorBound      float64 `json:"error_bound,omitempty"`
}

// ConfigHash returns a short deterministic digest of the complete
// simulator configuration: SHA-256 over the canonical JSON encoding
// (struct field order is fixed, so the encoding — and the hash — round
// trips for equal configs). 16 hex digits are plenty for collision-free
// identification of experiment grids.
func ConfigHash(cfg config.Config) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		// Config is a plain struct of numbers and strings; Marshal
		// cannot fail on it. Guard anyway rather than corrupt a hash.
		panic(fmt.Sprintf("obs: config not encodable: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// EngineName names the engine variant for manifests and checkpoint
// metadata. The parallel engine shares skip-ahead clocking but shards
// each tick, so it gets its own name — a checkpoint resumes on the
// engine that wrote it.
func EngineName(dense, parallel bool) string {
	switch {
	case dense:
		return "dense"
	case parallel:
		return "parallel"
	}
	return "skip"
}

// JSON renders the manifest as a single JSON object.
func (m Manifest) JSON() string {
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("obs: manifest not encodable: %v", err))
	}
	return string(b)
}

// String renders the manifest as one compact human-readable line. It
// deliberately includes only the deterministic reproduction fields —
// no wall time, go version, or cache provenance — so rendered results
// (results_all.md) are byte-identical across machines, reruns, and
// cold-vs-warm cache states; CI regenerates them and diffs. The JSON
// form carries the full record.
func (m Manifest) String() string {
	return fmt.Sprintf("%s: kernel=%s primitive=%s seed=%d cfg=%s engine=%s bytes=%d",
		m.Cell, m.Kernel, m.Primitive, m.Seed, m.ConfigHash, m.Engine, m.BytesPerChannel)
}

package obs

import (
	"bufio"
	"io"
	"strconv"

	"orderlight/internal/sim"
)

// PerfettoSink streams the event stream as Chrome trace-event JSON,
// the legacy format ui.perfetto.dev (and chrome://tracing) loads
// directly. Every Track becomes a named thread under one "orderlight"
// process; duration events use phase "X" (complete), instants phase
// "i". Timestamps are simulated microseconds.
//
// The sink writes incrementally — a run producing millions of events
// never buffers them — and must be Closed to terminate the JSON
// document. Write errors are sticky: the first one stops all further
// output and is reported by Close.
type PerfettoSink struct {
	w       *bufio.Writer
	err     error
	started bool
	events  int64
	dropped int64
	tids    map[Track]int
}

// NewPerfettoSink creates a sink streaming to w. Call Close when the
// run finishes to terminate the JSON document.
func NewPerfettoSink(w io.Writer) *PerfettoSink {
	return &PerfettoSink{w: bufio.NewWriterSize(w, 1<<16), tids: make(map[Track]int)}
}

// pid is the single trace-event process all tracks live under.
const pid = 1

// writeString appends s, latching the first write error.
func (p *PerfettoSink) writeString(s string) {
	if p.err != nil {
		return
	}
	_, p.err = p.w.WriteString(s)
}

// header opens the JSON document on first use.
func (p *PerfettoSink) header() {
	if p.started {
		return
	}
	p.started = true
	p.writeString(`{"displayTimeUnit":"ms","traceEvents":[` + "\n")
	p.writeString(`{"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"orderlight"}}`)
}

// tid returns the thread id for a track, emitting its thread_name
// metadata event on first sight. Assignment order follows emission
// order, which is deterministic for a given run.
func (p *PerfettoSink) tid(t Track) int {
	if id, ok := p.tids[t]; ok {
		return id
	}
	id := len(p.tids) + 1
	p.tids[t] = id
	p.writeString(",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
		strconv.Itoa(id) + ",\"args\":{\"name\":" + strconv.Quote(t.Label()) + "}}")
	return id
}

// us renders a tick count as simulated microseconds. FormatFloat with
// precision -1 emits the shortest decimal that round-trips, so output
// is deterministic across platforms.
func us(t sim.Time) string {
	return strconv.FormatFloat(float64(t)/(sim.BaseTickHz/1e6), 'f', -1, 64)
}

// Emit implements Sink.
func (p *PerfettoSink) Emit(e Event) {
	p.header()
	tid := p.tid(e.Track)
	if p.err != nil {
		return
	}
	p.events++
	p.writeString(",\n{\"name\":" + strconv.Quote(e.Name))
	if e.Dur > 0 {
		p.writeString(`,"ph":"X","ts":` + us(e.At) + `,"dur":` + us(e.Dur))
	} else {
		p.writeString(`,"ph":"i","s":"t","ts":` + us(e.At))
	}
	p.writeString(`,"pid":1,"tid":` + strconv.Itoa(tid))
	if e.Detail != "" {
		p.writeString(`,"args":{"detail":` + strconv.Quote(e.Detail) + "}")
	}
	p.writeString("}")
}

// Drop implements Sink: upstream losses are accumulated and recorded in
// the document trailer so a truncated trace declares itself.
func (p *PerfettoSink) Drop(n int64) { p.dropped += n }

// Events returns how many events have been written.
func (p *PerfettoSink) Events() int64 { return p.events }

// Dropped returns the upstream-reported dropped-event count.
func (p *PerfettoSink) Dropped() int64 { return p.dropped }

// Close terminates the JSON document (recording the event and dropped
// counts as trace metadata), flushes, and returns the first write error
// if any occurred.
func (p *PerfettoSink) Close() error {
	p.header()
	p.writeString(",\n{\"name\":\"trace_stats\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"events\":" +
		strconv.FormatInt(p.events, 10) + ",\"dropped\":" + strconv.FormatInt(p.dropped, 10) + "}}")
	p.writeString("\n]}\n")
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

// Package obs is the simulator's observability layer: structured event
// export, run manifests, and the sink plumbing that turns the
// simulator's internal happenings into artifacts an outside tool can
// inspect.
//
// The package models no paper structure itself — it is the instrument
// panel bolted onto the machine of Figure 6 so the paper's headline
// evidence can be seen forming instead of only read off at the end:
//
//   - Event / Track / Sink are the streaming event model. Components
//     (SMs, warps, L2 slices, memory controllers, PIM units, the two
//     clock domains) emit duration and instant events onto per-component
//     tracks; a Sink consumes them as they happen.
//   - PerfettoSink renders the stream as Chrome trace-event JSON,
//     loadable in ui.perfetto.dev, with one named thread per track.
//     Fence and OrderLight stall spans on the warp tracks are the
//     per-request view behind Figure 5's fence-stall breakdown; DRAM
//     command instants on the controller tracks are the scheduling
//     decisions behind Figures 10-11.
//   - Manifest attaches provenance to a run — config hash, kernel,
//     seed, engine (dense or quiescence skip-ahead), wall time, Go
//     version — so any experiment datapoint (any cell of the tables in
//     results_all.md) is reproducible from its manifest alone.
//
// The event stream is engine-faithful: the quiescence skip-ahead engine
// emits the same work events at the same simulated instants as the
// naive dense engine, and windows it elides appear as explicit credited
// "skip" spans on the clock-domain tracks (see internal/sim).
package obs

package obs

import (
	"encoding/json"
	"reflect"
	"testing"

	"orderlight/internal/config"
)

// TestConfigHashDeterministic checks the hash is a pure function of the
// configuration value: equal configs hash equal, and any field change
// moves the hash.
func TestConfigHashDeterministic(t *testing.T) {
	a, b := config.Default(), config.Default()
	if ConfigHash(a) != ConfigHash(b) {
		t.Fatalf("equal configs hash differently: %s vs %s", ConfigHash(a), ConfigHash(b))
	}
	if len(ConfigHash(a)) != 16 {
		t.Errorf("hash %q is not 16 hex digits", ConfigHash(a))
	}
	b.PIM.TSBytes *= 2
	if ConfigHash(a) == ConfigHash(b) {
		t.Error("TSBytes change did not move the hash")
	}
	c := config.Default()
	c.Run.Seed++
	if ConfigHash(a) == ConfigHash(c) {
		t.Error("seed change did not move the hash")
	}
}

// TestManifestJSONRoundTrip checks a manifest survives its JSON
// encoding unchanged — the acceptance property that lets results_all.md
// carry machine-readable provenance.
func TestManifestJSONRoundTrip(t *testing.T) {
	m := Manifest{
		Cell:            "fig5/add/fence/ts=1/8",
		Kernel:          "add",
		Primitive:       "fence",
		Seed:            42,
		Channels:        16,
		TSBytes:         256,
		BMF:             16,
		BytesPerChannel: 128 << 10,
		HostBaseline:    false,
		ConfigHash:      ConfigHash(config.Default()),
		Engine:          EngineName(false, false),
		WallMS:          12.5,
		GoVersion:       "go1.24.0",
	}
	var back Manifest
	if err := json.Unmarshal([]byte(m.JSON()), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, back) {
		t.Errorf("manifest did not round-trip:\n in: %+v\nout: %+v", m, back)
	}
}

func TestEngineName(t *testing.T) {
	cases := []struct {
		dense, parallel bool
		want            string
	}{
		{false, false, "skip"},
		{true, false, "dense"},
		{false, true, "parallel"},
		{true, true, "dense"}, // dense wins; the runner rejects the combination upstream
	}
	for _, c := range cases {
		if got := EngineName(c.dense, c.parallel); got != c.want {
			t.Errorf("EngineName(%v, %v) = %s, want %s", c.dense, c.parallel, got, c.want)
		}
	}
}

func TestTrackLabel(t *testing.T) {
	cases := []struct {
		tr   Track
		want string
	}{
		{Track{Kind: TrackClockCore}, "clock-core"},
		{Track{Kind: "sm", ID: 3}, "sm 3"},
		{Track{Kind: "mc", ID: 0}, "mc 0"},
	}
	for _, c := range cases {
		if got := c.tr.Label(); got != c.want {
			t.Errorf("Label(%+v) = %q, want %q", c.tr, got, c.want)
		}
	}
	if !(Track{Kind: TrackClockMem}).IsClock() || (Track{Kind: "warp"}).IsClock() {
		t.Error("IsClock misclassifies tracks")
	}
}

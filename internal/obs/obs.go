package obs

import (
	"fmt"

	"orderlight/internal/sim"
)

// Track identifies the component timeline an event belongs to. Tracks
// render as named threads in the Perfetto UI.
type Track struct {
	// Kind is the component class: "clock-core", "clock-mem", "sm",
	// "warp", "l2", "mc" or "pim".
	Kind string
	// ID distinguishes instances of the same kind (SM id, warp id,
	// channel number). Clock-domain tracks use ID 0.
	ID int
}

// Clock-domain track kinds. Component kinds ("sm", "warp", "l2", "mc",
// "pim") carry an instance ID; the two clock domains are singletons.
const (
	TrackClockCore = "clock-core"
	TrackClockMem  = "clock-mem"
)

// IsClock reports whether the track is a clock-domain track. Credited
// skip-ahead spans live only on clock tracks, so event-stream parity
// checks filter on this.
func (t Track) IsClock() bool {
	return t.Kind == TrackClockCore || t.Kind == TrackClockMem
}

// Label renders the track's display name.
func (t Track) Label() string {
	if t.IsClock() {
		return t.Kind
	}
	return fmt.Sprintf("%s %d", t.Kind, t.ID)
}

// Event is one observable happening inside the simulated machine: an
// instant (Dur == 0) such as a stage crossing or a DRAM command, or a
// duration span such as a warp's fence stall or an elided-cycle window.
type Event struct {
	Name   string   // e.g. "inject", "RD", "fence-stall", "skip"
	Track  Track    // component timeline
	At     sim.Time // start instant in base ticks
	Dur    sim.Time // span length; 0 means instant
	Detail string   // optional free-form payload (request id/kind, counts)
}

// Sink consumes the event stream as the simulation runs. The simulator
// is single-threaded, so Sink implementations need no locking against
// Emit; a sink shared across concurrently running machines must
// synchronize internally.
type Sink interface {
	// Emit delivers one event. Events arrive in emission order, which
	// is deterministic for a given configuration and engine.
	Emit(Event)
	// Drop records that n events were lost upstream before reaching
	// the sink (e.g. a bounded buffer overwrote them), so exported
	// artifacts can state their own incompleteness.
	Drop(n int64)
}

// CollectSink buffers events in memory — the sink used by tests and by
// callers that post-process the stream themselves. The zero value is
// ready to use and unbounded; set Max to bound retention (excess events
// are counted as dropped, newest-first is NOT preserved: the cap keeps
// the oldest Max events, mirroring a full queue refusing arrivals).
type CollectSink struct {
	Max     int // 0 = unbounded
	events  []Event
	dropped int64
}

// Emit implements Sink.
func (s *CollectSink) Emit(e Event) {
	if s.Max > 0 && len(s.events) >= s.Max {
		s.dropped++
		return
	}
	s.events = append(s.events, e)
}

// Drop implements Sink.
func (s *CollectSink) Drop(n int64) { s.dropped += n }

// Events returns the buffered events in emission order.
func (s *CollectSink) Events() []Event { return s.events }

// Dropped returns how many events were lost (upstream-reported plus
// locally capped).
func (s *CollectSink) Dropped() int64 { return s.dropped }

// MultiSink fans every event out to several sinks in order.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Drop implements Sink.
func (m MultiSink) Drop(n int64) {
	for _, s := range m {
		s.Drop(n)
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"orderlight/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// testEvents is a fixed event stream covering every encoding path:
// instants with and without detail, duration spans, repeated tracks
// (tid reuse) and a clock-track skip credit.
func testEvents() []Event {
	return []Event{
		{Name: "inject", Track: Track{Kind: "sm", ID: 0}, At: 1 * sim.CoreTicks, Detail: "#1 PIM_Load ch0 g0"},
		{Name: "RD", Track: Track{Kind: "mc", ID: 3}, At: 1 * sim.MemTicks},
		{Name: "inject", Track: Track{Kind: "sm", ID: 0}, At: 2 * sim.CoreTicks, Detail: "#2 PIM_Store ch0 g1"},
		{Name: "fence-stall", Track: Track{Kind: "warp", ID: 2}, At: 10 * sim.CoreTicks, Dur: 20 * sim.CoreTicks, Detail: "20 slots ch2"},
		{Name: "fence", Track: Track{Kind: "warp", ID: 2}, At: 30 * sim.CoreTicks, Detail: "ch2"},
		{Name: "skip", Track: Track{Kind: TrackClockCore}, At: 100 * sim.CoreTicks, Dur: 100 * sim.CoreTicks, Detail: "100 cycles credited"},
	}
}

// TestPerfettoGolden pins the exporter's byte output: the JSON document
// for a fixed event stream must never change shape silently (stable
// ordering, deterministic float formatting). Regenerate with -update
// after an intentional format change.
func TestPerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	p := NewPerfettoSink(&buf)
	for _, e := range testEvents() {
		p.Emit(e)
	}
	p.Drop(7)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "perfetto.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -run Golden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exporter output deviates from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	if p.Events() != int64(len(testEvents())) {
		t.Errorf("Events() = %d, want %d", p.Events(), len(testEvents()))
	}
	if p.Dropped() != 7 {
		t.Errorf("Dropped() = %d, want 7", p.Dropped())
	}
}

// ValidatePerfetto asserts data is a loadable Chrome trace-event JSON
// document: a traceEvents array whose entries all carry name/ph/pid/tid,
// with "X" entries holding numeric ts+dur and "i" entries ts plus scope.
// Shared with the end-to-end test in internal/experiments.
func ValidatePerfetto(t *testing.T, data []byte) (events int) {
	t.Helper()
	var doc struct {
		DisplayTimeUnit string                   `json:"displayTimeUnit"`
		TraceEvents     []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		switch ph := ev["ph"]; ph {
		case "M":
			// Metadata events carry args only.
		case "X":
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("event %d: complete event without numeric ts: %v", i, ev)
			}
			if _, ok := ev["dur"].(float64); !ok {
				t.Fatalf("event %d: complete event without numeric dur: %v", i, ev)
			}
			events++
		case "i":
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("event %d: instant without numeric ts: %v", i, ev)
			}
			if ev["s"] != "t" {
				t.Fatalf("event %d: instant without thread scope: %v", i, ev)
			}
			events++
		default:
			t.Fatalf("event %d: unexpected phase %v", i, ph)
		}
	}
	return events
}

// TestPerfettoSchema checks the synthetic stream parses back as a
// structurally sound trace document, including the trailer stats.
func TestPerfettoSchema(t *testing.T) {
	var buf bytes.Buffer
	p := NewPerfettoSink(&buf)
	for _, e := range testEvents() {
		p.Emit(e)
	}
	p.Drop(3)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if n := ValidatePerfetto(t, buf.Bytes()); n != len(testEvents()) {
		t.Errorf("schema walk saw %d events, want %d", n, len(testEvents()))
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Args struct {
				Events  int64 `json:"events"`
				Dropped int64 `json:"dropped"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	last := doc.TraceEvents[len(doc.TraceEvents)-1]
	if last.Name != "trace_stats" || last.Args.Events != int64(len(testEvents())) || last.Args.Dropped != 3 {
		t.Errorf("trailer = %+v, want trace_stats with events=%d dropped=3", last, len(testEvents()))
	}
}

// TestPerfettoEmptyClose checks a sink closed with no events still
// produces a valid document.
func TestPerfettoEmptyClose(t *testing.T) {
	var buf bytes.Buffer
	if err := NewPerfettoSink(&buf).Close(); err != nil {
		t.Fatal(err)
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, buf.Bytes())
	}
}

// errWriter fails after n bytes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, os.ErrClosed
	}
	w.n -= len(p)
	return len(p), nil
}

// TestPerfettoStickyError checks the first write error is latched and
// surfaced by Close rather than silently swallowed.
func TestPerfettoStickyError(t *testing.T) {
	p := NewPerfettoSink(&errWriter{n: 8})
	for _, e := range testEvents() {
		p.Emit(e)
	}
	if err := p.Close(); err == nil {
		t.Fatal("Close() = nil, want the latched write error")
	}
}

func TestCollectSinkCap(t *testing.T) {
	s := &CollectSink{Max: 2}
	for _, e := range testEvents() {
		s.Emit(e)
	}
	s.Drop(5)
	if len(s.Events()) != 2 {
		t.Errorf("capped sink kept %d events, want 2", len(s.Events()))
	}
	if want := int64(len(testEvents())-2) + 5; s.Dropped() != want {
		t.Errorf("Dropped() = %d, want %d", s.Dropped(), want)
	}
}

func TestMultiSink(t *testing.T) {
	a, b := &CollectSink{}, &CollectSink{}
	m := MultiSink{a, b}
	for _, e := range testEvents() {
		m.Emit(e)
	}
	m.Drop(2)
	if len(a.Events()) != len(testEvents()) || len(b.Events()) != len(testEvents()) {
		t.Errorf("fan-out delivered %d/%d events, want %d each", len(a.Events()), len(b.Events()), len(testEvents()))
	}
	if a.Dropped() != 2 || b.Dropped() != 2 {
		t.Errorf("fan-out dropped %d/%d, want 2 each", a.Dropped(), b.Dropped())
	}
}

package kernel

import (
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/gpu"
	"orderlight/internal/isa"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("registry has %d kernels, want 12 (Table 2)", len(all))
	}
	if len(Stream()) != 5 || len(Apps()) != 7 {
		t.Fatal("stream/app split mismatch")
	}
	seen := map[string]bool{}
	for _, s := range all {
		if seen[s.Name] {
			t.Fatalf("duplicate kernel name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Desc == "" || s.ComputeRatio == "" || len(s.Phases) == 0 {
			t.Errorf("kernel %q is underspecified", s.Name)
		}
	}
	if _, err := ByName("add"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded")
	}
	if len(Names()) != 12 {
		t.Error("Names() length mismatch")
	}
}

func TestPhaseCmds(t *testing.T) {
	if got := (PhaseSpec{CmdsPerN: 1}).cmds(8); got != 8 {
		t.Errorf("CmdsPerN=1, n=8: %d", got)
	}
	if got := (PhaseSpec{CmdsPerN: 3.5}).cmds(8); got != 28 {
		t.Errorf("CmdsPerN=3.5, n=8: %d", got)
	}
	if got := (PhaseSpec{CmdsPerN: 0.1}).cmds(4); got != 1 {
		t.Errorf("minimum clamp: %d", got)
	}
	if got := (PhaseSpec{FixedCmds: 4, CmdsPerN: 9}).cmds(64); got != 4 {
		t.Errorf("FixedCmds override: %d", got)
	}
}

func smallCfg(p config.Primitive) config.Config {
	cfg := config.Default()
	cfg.Memory.Channels = 2
	cfg.GPU.PIMSMs = 1
	cfg.GPU.WarpsPerSM = 2
	cfg.Run.Primitive = p
	cfg.Run.DeadlineMS = 20
	return cfg
}

func TestBuildAddCounts(t *testing.T) {
	cfg := smallCfg(config.PrimitiveOrderLight) // TS 1/8 -> N=8, BMF 16 -> 512 B/cmd
	spec, _ := ByName("add")
	k, err := Build(cfg, spec, 8192) // 16 commands per vector per channel -> 2 tiles
	if err != nil {
		t.Fatal(err)
	}
	wantMem := int64(2 /*ch*/ * 2 /*tiles*/ * 3 /*phases*/ * 8)
	if k.MemCmds != wantMem {
		t.Fatalf("MemCmds = %d, want %d", k.MemCmds, wantMem)
	}
	if k.ExecCmds != 0 {
		t.Fatalf("ExecCmds = %d, want 0", k.ExecCmds)
	}
	if k.Orders != 2*2*3 {
		t.Fatalf("Orders = %d, want 12", k.Orders)
	}
	if k.HostBytes != wantMem*512 {
		t.Fatalf("HostBytes = %d", k.HostBytes)
	}
	if len(k.Programs) != 2 {
		t.Fatalf("programs = %d", len(k.Programs))
	}
}

func TestBuildNoneEmitsNoPrimitives(t *testing.T) {
	cfg := smallCfg(config.PrimitiveNone)
	spec, _ := ByName("add")
	k, err := Build(cfg, spec, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if k.Orders != 0 {
		t.Fatalf("Orders = %d under primitive=none", k.Orders)
	}
	for _, p := range k.Programs {
		for _, in := range p.Instrs {
			if in.Kind == isa.KindFence || in.Kind == isa.KindOrderLight {
				t.Fatal("ordering instruction emitted under primitive=none")
			}
		}
	}
}

func TestBuildExtraOrderSplitsChunks(t *testing.T) {
	cfg := smallCfg(config.PrimitiveOrderLight).WithTSFraction("1/2") // N=32 > ExtraOrderEvery=16
	spec, _ := ByName("fc")
	k, err := Build(cfg, spec, 32768)
	if err != nil {
		t.Fatal(err)
	}
	maxChunk := 0
	for _, in := range k.Programs[0].Instrs {
		if in.Kind.IsPIM() && in.Count > maxChunk {
			maxChunk = in.Count
		}
	}
	if maxChunk > 16 {
		t.Fatalf("max chunk = %d, want <= ExtraOrderEvery (16)", maxChunk)
	}
}

// TestPrimitiveRateShapes checks the Figure 12 structure: stream-like
// kernels halve their primitives-per-instruction as TS doubles, FC and
// KMeans decrease slower, and Gen_Fil does not decrease at all (§7.2).
func TestPrimitiveRateShapes(t *testing.T) {
	rate := func(name, ts string) float64 {
		cfg := smallCfg(config.PrimitiveOrderLight).WithTSFraction(ts)
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		k, err := Build(cfg, spec, 64*1024)
		if err != nil {
			t.Fatal(err)
		}
		return float64(k.Orders) / float64(k.TotalCmds())
	}
	drop := func(name string) float64 { return rate(name, "1/2") / rate(name, "1/16") }

	if d := drop("add"); d > 0.20 {
		t.Errorf("add primitive rate dropped only to %.2f of 1/16-RB value, want <= 0.20 (50%%/doubling)", d)
	}
	if d := drop("gen_fil"); d < 0.95 || d > 1.05 {
		t.Errorf("gen_fil primitive rate changed by %.2f, want ~1.0 (granularity fixed at 128 B)", d)
	}
	dFC, dAdd := drop("fc"), drop("add")
	if dFC <= dAdd {
		t.Errorf("fc rate drop %.3f should be milder than add's %.3f", dFC, dAdd)
	}
	dKM := drop("kmeans")
	if dKM <= dAdd {
		t.Errorf("kmeans rate drop %.3f should be milder than add's %.3f", dKM, dAdd)
	}
}

// TestEveryKernelRunsCorrectlyUnderOrderLight is the suite-wide
// integration test: all 12 Table 2 kernels build, run to completion on
// the simulated machine with OrderLight, and verify functionally.
func TestEveryKernelRunsCorrectlyUnderOrderLight(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			cfg := smallCfg(config.PrimitiveOrderLight)
			k, err := Build(cfg, spec, 16*1024)
			if err != nil {
				t.Fatal(err)
			}
			m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
			if err != nil {
				t.Fatal(err)
			}
			st, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !st.Verified || !st.Correct {
				t.Fatalf("functional verification failed (%d diff slots)", st.DiffSlots)
			}
			if st.PIMCommands != k.TotalCmds() {
				t.Fatalf("issued %d PIM commands, generator predicted %d", st.PIMCommands, k.TotalCmds())
			}
			if st.OLCount != k.Orders {
				t.Fatalf("issued %d OrderLight packets, generator predicted %d", st.OLCount, k.Orders)
			}
		})
	}
}

func TestEveryKernelRunsCorrectlyUnderFence(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			cfg := smallCfg(config.PrimitiveFence)
			k, err := Build(cfg, spec, 4*1024)
			if err != nil {
				t.Fatal(err)
			}
			m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
			if err != nil {
				t.Fatal(err)
			}
			st, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !st.Correct {
				t.Fatalf("fence run incorrect (%d diff slots)", st.DiffSlots)
			}
			if st.FenceCount != k.Orders {
				t.Fatalf("executed %d fences, generator predicted %d", st.FenceCount, k.Orders)
			}
		})
	}
}

func TestEveryKernelRunsCorrectlyUnderSeqno(t *testing.T) {
	// The §8.1 sequence-number baseline serializes every PIM request at
	// the controller, so it too must be functionally correct.
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			cfg := smallCfg(config.PrimitiveSeqno)
			k, err := Build(cfg, spec, 8*1024)
			if err != nil {
				t.Fatal(err)
			}
			if k.Orders != 0 {
				t.Fatal("seqno mode must not emit ordering instructions")
			}
			m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
			if err != nil {
				t.Fatal(err)
			}
			st, err := m.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !st.Correct {
				t.Fatalf("seqno run incorrect (%d diff slots)", st.DiffSlots)
			}
		})
	}
}

func TestSeqnoSlowerThanOrderLightFasterThanFence(t *testing.T) {
	runMS := func(p config.Primitive) float64 {
		cfg := smallCfg(p)
		spec, _ := ByName("add")
		k, err := Build(cfg, spec, 32*1024)
		if err != nil {
			t.Fatal(err)
		}
		m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.ExecMS()
	}
	fe := runMS(config.PrimitiveFence)
	sq := runMS(config.PrimitiveSeqno)
	ol := runMS(config.PrimitiveOrderLight)
	if !(ol < sq) {
		t.Errorf("OrderLight (%.4f ms) should beat seqno (%.4f ms): per-request serialization costs", ol, sq)
	}
	if !(sq < fe) {
		t.Errorf("seqno (%.4f ms) should beat fence (%.4f ms): no per-phase core stall", sq, fe)
	}
}

func TestAddKernelIncorrectWithoutPrimitive(t *testing.T) {
	cfg := smallCfg(config.PrimitiveNone)
	spec, _ := ByName("add")
	k, err := Build(cfg, spec, 16*1024)
	if err != nil {
		t.Fatal(err)
	}
	m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Correct {
		t.Fatal("add without ordering primitive verified correct; hazard did not fire")
	}
}

func TestSpreadTilesCorrectAndFaster(t *testing.T) {
	// Tiles spread across memory-groups stay correct under OrderLight
	// (per-group ordering + per-group TS partitions) and finish faster
	// thanks to bank-group parallelism.
	cfg := smallCfg(config.PrimitiveOrderLight)
	spec, _ := ByName("add")

	run := func(s Spec) (float64, bool) {
		k, err := Build(cfg, s, 32*1024)
		if err != nil {
			t.Fatal(err)
		}
		m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.ExecMS(), st.Correct
	}
	oneMS, oneOK := run(spec)
	spreadMS, spreadOK := run(WithSpread(spec))
	if !oneOK || !spreadOK {
		t.Fatal("a placement variant verified incorrect")
	}
	if !(spreadMS < oneMS) {
		t.Errorf("spread (%.4f ms) not faster than single-group (%.4f ms)", spreadMS, oneMS)
	}
}

func TestSpreadTilesUseAllGroups(t *testing.T) {
	cfg := smallCfg(config.PrimitiveOrderLight)
	spec, _ := ByName("copy")
	k, err := Build(cfg, WithSpread(spec), 32*1024)
	if err != nil {
		t.Fatal(err)
	}
	groups := map[int]bool{}
	for _, in := range k.Programs[0].Instrs {
		groups[in.Group] = true
	}
	if len(groups) != cfg.Memory.GroupsPerChannel {
		t.Fatalf("spread kernel touched %d groups, want %d", len(groups), cfg.Memory.GroupsPerChannel)
	}
}

func TestBMFReducesCommandCount(t *testing.T) {
	// Figure 13's mechanism: the same data footprint needs 4x the
	// commands at BMF 4 versus BMF 16.
	spec, _ := ByName("add")
	cfg16 := smallCfg(config.PrimitiveOrderLight)
	cfg4 := cfg16
	cfg4.PIM.BMF = 4
	k16, err := Build(cfg16, spec, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	k4, err := Build(cfg4, spec, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	if k4.MemCmds != 4*k16.MemCmds {
		t.Fatalf("BMF4 commands = %d, BMF16 = %d, want 4x", k4.MemCmds, k16.MemCmds)
	}
}

func TestBuildHostStreams(t *testing.T) {
	cfg := smallCfg(config.PrimitiveOrderLight)
	cfg.GPU.L2SizeMB = 0 // measure DRAM traffic, not tag hits
	spec, _ := ByName("copy")
	k, err := BuildHost(cfg, spec, 16*1024)
	if err != nil {
		t.Fatal(err)
	}
	// 16 KiB / 512 B = 32 slots per structure; 2 memory phases x BMF 16
	// passes x 32 slots x 2 channels.
	want := int64(2 * 16 * 32 * 2)
	if k.MemCmds != want {
		t.Fatalf("MemCmds = %d, want %d", k.MemCmds, want)
	}
	if k.HostBytes != want*32 {
		t.Fatalf("HostBytes = %d", k.HostBytes)
	}
	for _, p := range k.Programs {
		for _, in := range p.Instrs {
			if in.Kind != isa.KindHostLoad && in.Kind != isa.KindHostStore {
				t.Fatalf("host program contains %v", in.Kind)
			}
			if in.Count > 32 {
				t.Fatalf("warp instruction with %d lanes, max 32", in.Count)
			}
		}
	}
	m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.HostCommands != k.MemCmds {
		t.Fatalf("DRAM serviced %d host commands, generator predicted %d", st.HostCommands, k.MemCmds)
	}
	if st.PIMCommands != 0 {
		t.Fatal("host run issued PIM commands")
	}
	if !st.Correct {
		t.Fatal("host run must leave memory untouched relative to the reference")
	}
}

func TestBuildHostSkipsExecPhases(t *testing.T) {
	cfg := smallCfg(config.PrimitiveOrderLight)
	spec, _ := ByName("kmeans") // load + heavy exec phase
	k, err := BuildHost(cfg, spec, 8*1024)
	if err != nil {
		t.Fatal(err)
	}
	// Only the load phase generates traffic: 16 slots x BMF x channels.
	want := int64(16 * 16 * 2)
	if k.MemCmds != want {
		t.Fatalf("MemCmds = %d, want %d (exec phases produce no memory traffic)", k.MemCmds, want)
	}
}

func TestHostTimeScalesWithBytes(t *testing.T) {
	spec, _ := ByName("copy")
	cfg := smallCfg(config.PrimitiveOrderLight)
	k1, _ := Build(cfg, spec, 16*1024)
	k2, _ := Build(cfg, spec, 32*1024)
	if !(k2.HostTime(cfg) > k1.HostTime(cfg)) {
		t.Fatal("host roofline time must grow with footprint")
	}
}

// Package kernel defines the PIM-kernel intermediate representation and
// the generators for the paper's entire workload suite (Table 2): the
// five stream kernels and the seven data-intensive application kernels.
//
// A kernel is described by its per-tile phase structure: each phase is a
// group of independent fine-grained PIM commands (the "< N times" groups
// of Figure 4), and every phase boundary carries an ordering requirement
// that the generator realizes as a fence, an OrderLight packet, or
// nothing, depending on the configured primitive. The temporary-storage
// size N = TS/32 scales the command count of most phases; kernels with
// structural ordering (FC's dot-product reductions, Gen_Fil's fixed
// 128 B granularity) carry phase sizes or extra ordering points that do
// not scale with TS — which is exactly why they keep high
// primitives-per-instruction rates at large TS in Figure 12.
package kernel

import (
	"fmt"
	"math"

	"orderlight/internal/isa"
	"orderlight/internal/olerrors"
)

// PhaseSpec is one command group within a tile.
type PhaseSpec struct {
	Name string
	Kind isa.Kind
	Op   isa.ALUOp
	Vec  int   // data-structure index addressed by this phase (mem kinds)
	Imm  int32 // scalar immediate

	// CmdsPerN scales the phase's command count with the tile size N
	// (commands = round(CmdsPerN * N), minimum 1). Ignored when
	// FixedCmds > 0.
	CmdsPerN float64
	// FixedCmds pins the phase's command count regardless of TS
	// (Gen_Fil's 128 B granularity = 4 commands).
	FixedCmds int
	// RandomRows makes the phase address pseudo-random rows of its data
	// structure instead of streaming sequentially (histogram bins,
	// genomic seed lookups).
	RandomRows bool
}

// Spec is a complete workload description (one row of Table 2).
type Spec struct {
	Name         string
	Desc         string
	ComputeRatio string // compute:memory ratio as printed in Table 2
	DataStructs  int    // distinct data structures accessed
	MultiDS      bool   // Table 2's "more than one data structure?" column
	Phases       []PhaseSpec
	// ExtraOrderEvery inserts an additional ordering primitive after
	// every that many commands inside scaling phases — the structural
	// ordering of reduction-style kernels (FC, KMeans) that does not
	// amortize with larger TS.
	ExtraOrderEvery int

	// SpreadTiles places tile t in memory-group t mod GroupsPerChannel
	// instead of keeping all operands in group 0. Ordering stays within
	// each tile's group (the OrderLight packets carry that group's ID),
	// so independent tiles proceed in parallel across bank groups — an
	// operand-placement optimization the per-group ordering of §5.3.1
	// makes safe.
	SpreadTiles bool
}

// WithSpread returns a copy of the spec with tile spreading enabled and
// the name suffixed accordingly.
func WithSpread(s Spec) Spec {
	s.SpreadTiles = true
	s.Name += "_spread"
	return s
}

// Validate checks a (possibly user-defined) spec for structural
// soundness before generation. Any violation is reported wrapping
// olerrors.ErrInvalidSpec, so callers can classify with errors.Is.
func (s Spec) Validate() error {
	if err := s.validate(); err != nil {
		return fmt.Errorf("%w: %v", olerrors.ErrInvalidSpec, err)
	}
	return nil
}

// maxPhaseCmds bounds a single phase's command count (fixed or scaled):
// beyond it a spec describes a program no real kernel resembles and
// generation would only burn memory. The Table 2 suite peaks at
// CmdsPerN 14.
const maxPhaseCmds = 1 << 16

func (s Spec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("kernel: spec needs a name")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("kernel: spec %q has no phases", s.Name)
	}
	if s.ExtraOrderEvery < 0 {
		return fmt.Errorf("kernel: spec %q has negative ExtraOrderEvery", s.Name)
	}
	if s.DataStructs < 0 {
		return fmt.Errorf("kernel: spec %q has negative DataStructs", s.Name)
	}
	hasMem := false
	for i, p := range s.Phases {
		switch {
		case p.Kind == isa.KindFence || p.Kind == isa.KindOrderLight:
			return fmt.Errorf("kernel: spec %q phase %d: ordering primitives are inserted by the generator, not listed as phases", s.Name, i)
		case !p.Kind.IsPIM():
			return fmt.Errorf("kernel: spec %q phase %d: kind %v is not a PIM command", s.Name, i, p.Kind)
		case p.FixedCmds < 0:
			return fmt.Errorf("kernel: spec %q phase %d: negative FixedCmds", s.Name, i)
		case p.FixedCmds > maxPhaseCmds:
			return fmt.Errorf("kernel: spec %q phase %d: FixedCmds %d exceeds %d", s.Name, i, p.FixedCmds, maxPhaseCmds)
		case math.IsNaN(p.CmdsPerN) || math.IsInf(p.CmdsPerN, 0):
			return fmt.Errorf("kernel: spec %q phase %d: CmdsPerN %v is not finite", s.Name, i, p.CmdsPerN)
		case p.FixedCmds == 0 && p.CmdsPerN <= 0:
			return fmt.Errorf("kernel: spec %q phase %d: needs CmdsPerN > 0 or FixedCmds > 0", s.Name, i)
		case p.CmdsPerN > maxPhaseCmds:
			return fmt.Errorf("kernel: spec %q phase %d: CmdsPerN %v exceeds %d", s.Name, i, p.CmdsPerN, maxPhaseCmds)
		}
		if p.Kind.IsMemAccess() {
			hasMem = true
			if p.Vec < 0 {
				return fmt.Errorf("kernel: spec %q phase %d: negative vec %d", s.Name, i, p.Vec)
			}
			if s.DataStructs > 0 && p.Vec >= s.DataStructs {
				return fmt.Errorf("kernel: spec %q phase %d: vec %d outside [0,%d)", s.Name, i, p.Vec, s.DataStructs)
			}
		}
	}
	if !hasMem {
		return fmt.Errorf("kernel: spec %q has no memory phase (nothing reaches DRAM)", s.Name)
	}
	return nil
}

// cmds returns the command count of phase p for tile size n.
func (p PhaseSpec) cmds(n int) int {
	if p.FixedCmds > 0 {
		return p.FixedCmds
	}
	c := int(p.CmdsPerN*float64(n) + 0.5)
	if c < 1 {
		c = 1
	}
	return c
}

// Stream returns the five stream-benchmark kernels of Table 2.
func Stream() []Spec {
	return []Spec{
		{
			Name: "scale", Desc: "a[i] = scalar*a[i]", ComputeRatio: "1:1",
			DataStructs: 1, MultiDS: false,
			Phases: []PhaseSpec{
				{Name: "scale a", Kind: isa.KindPIMScale, Op: isa.OpScale, Vec: 0, Imm: 3, CmdsPerN: 1},
			},
		},
		{
			Name: "copy", Desc: "b[i] = a[i]", ComputeRatio: "0:2",
			DataStructs: 2, MultiDS: true,
			Phases: []PhaseSpec{
				{Name: "load a", Kind: isa.KindPIMLoad, Vec: 0, CmdsPerN: 1},
				{Name: "store b", Kind: isa.KindPIMStore, Vec: 1, CmdsPerN: 1},
			},
		},
		{
			Name: "daxpy", Desc: "b[i] = b[i] + scalar*a[i]", ComputeRatio: "2:2",
			DataStructs: 2, MultiDS: true,
			Phases: []PhaseSpec{
				{Name: "load b", Kind: isa.KindPIMLoad, Vec: 1, CmdsPerN: 1},
				{Name: "mac a", Kind: isa.KindPIMCompute, Op: isa.OpMAC, Vec: 0, Imm: 3, CmdsPerN: 1},
				{Name: "store b", Kind: isa.KindPIMStore, Vec: 1, CmdsPerN: 1},
			},
		},
		{
			Name: "triad", Desc: "c[i] = a[i] + scalar*b[i]", ComputeRatio: "2:3",
			DataStructs: 3, MultiDS: true,
			Phases: []PhaseSpec{
				{Name: "load a", Kind: isa.KindPIMLoad, Vec: 0, CmdsPerN: 1},
				{Name: "mac b", Kind: isa.KindPIMCompute, Op: isa.OpMAC, Vec: 1, Imm: 3, CmdsPerN: 1},
				{Name: "store c", Kind: isa.KindPIMStore, Vec: 2, CmdsPerN: 1},
			},
		},
		{
			Name: "add", Desc: "c[i] = a[i] + b[i]", ComputeRatio: "1:3",
			DataStructs: 3, MultiDS: true,
			Phases: []PhaseSpec{
				{Name: "load a", Kind: isa.KindPIMLoad, Vec: 0, CmdsPerN: 1},
				{Name: "add b", Kind: isa.KindPIMCompute, Op: isa.OpAdd, Vec: 1, CmdsPerN: 1},
				{Name: "store c", Kind: isa.KindPIMStore, Vec: 2, CmdsPerN: 1},
			},
		},
	}
}

// Apps returns the seven data-intensive application kernels of Table 2.
func Apps() []Spec {
	return []Spec{
		{
			Name: "bn_fwd", Desc: "batch normalization, forward phase", ComputeRatio: "7:3",
			DataStructs: 3, MultiDS: true,
			Phases: []PhaseSpec{
				{Name: "load x", Kind: isa.KindPIMLoad, Vec: 0, CmdsPerN: 1},
				{Name: "load stats", Kind: isa.KindPIMLoad, Vec: 1, CmdsPerN: 1},
				{Name: "scale", Kind: isa.KindPIMExec, Op: isa.OpMul, Imm: 2, CmdsPerN: 3.5},
				{Name: "bias", Kind: isa.KindPIMExec, Op: isa.OpAdd, Imm: 5, CmdsPerN: 3.5},
				{Name: "store y", Kind: isa.KindPIMStore, Vec: 2, CmdsPerN: 1},
			},
		},
		{
			Name: "bn_bwd", Desc: "batch normalization, backward phase", ComputeRatio: "14:6",
			DataStructs: 6, MultiDS: true,
			Phases: []PhaseSpec{
				{Name: "load dy", Kind: isa.KindPIMLoad, Vec: 0, CmdsPerN: 1},
				{Name: "load x", Kind: isa.KindPIMLoad, Vec: 1, CmdsPerN: 1},
				{Name: "load stats", Kind: isa.KindPIMLoad, Vec: 2, CmdsPerN: 1},
				{Name: "grad a", Kind: isa.KindPIMExec, Op: isa.OpMul, Imm: 2, CmdsPerN: 7},
				{Name: "grad b", Kind: isa.KindPIMExec, Op: isa.OpAdd, Imm: 1, CmdsPerN: 7},
				{Name: "store dx", Kind: isa.KindPIMStore, Vec: 3, CmdsPerN: 1},
				{Name: "store dgamma", Kind: isa.KindPIMStore, Vec: 4, CmdsPerN: 1},
				{Name: "store dbeta", Kind: isa.KindPIMStore, Vec: 5, CmdsPerN: 1},
			},
		},
		{
			Name: "fc", Desc: "fully-connected layer inference (dot products)", ComputeRatio: "2:1",
			DataStructs: 1, MultiDS: false,
			Phases: []PhaseSpec{
				{Name: "load w", Kind: isa.KindPIMLoad, Vec: 0, CmdsPerN: 1},
				{Name: "reduce", Kind: isa.KindPIMExec, Op: isa.OpAdd, Imm: 1, CmdsPerN: 2},
			},
			// Each 16-element dot product needs its own ordering point
			// for the reduction, independent of TS size.
			ExtraOrderEvery: 16,
		},
		{
			Name: "kmeans", Desc: "KMeans clustering (distance from centers)", ComputeRatio: "10:1",
			DataStructs: 1, MultiDS: false,
			Phases: []PhaseSpec{
				{Name: "load points", Kind: isa.KindPIMLoad, Vec: 0, CmdsPerN: 1},
				{Name: "distances", Kind: isa.KindPIMExec, Op: isa.OpSub, Imm: 4, CmdsPerN: 10},
			},
			// Center-update boundaries order every 24 commands.
			ExtraOrderEvery: 24,
		},
		{
			Name: "svm", Desc: "support vector machine scoring", ComputeRatio: "2.5:2",
			DataStructs: 3, MultiDS: true,
			Phases: []PhaseSpec{
				{Name: "load x", Kind: isa.KindPIMLoad, Vec: 0, CmdsPerN: 1},
				{Name: "mac w", Kind: isa.KindPIMCompute, Op: isa.OpMAC, Vec: 1, Imm: 2, CmdsPerN: 1},
				{Name: "margin", Kind: isa.KindPIMExec, Op: isa.OpMax, Imm: 0, CmdsPerN: 0.5},
				{Name: "store out", Kind: isa.KindPIMStore, Vec: 2, CmdsPerN: 1},
			},
		},
		{
			Name: "hist", Desc: "histogram (scattered bin updates)", ComputeRatio: "3:2",
			DataStructs: 2, MultiDS: true,
			Phases: []PhaseSpec{
				{Name: "load keys", Kind: isa.KindPIMLoad, Vec: 0, CmdsPerN: 1},
				{Name: "bump bins", Kind: isa.KindPIMScale, Op: isa.OpIncr, Vec: 1, Imm: 1, CmdsPerN: 1, RandomRows: true},
			},
		},
		{
			Name: "gen_fil", Desc: "genomic sequence filtering (GRIM algorithm)", ComputeRatio: "3:1",
			DataStructs: 1, MultiDS: false,
			Phases: []PhaseSpec{
				// Irregular 128 B (= 4 command) seed fetches; granularity
				// fixed by the algorithm, not by TS (§7.2).
				{Name: "load seeds", Kind: isa.KindPIMLoad, Vec: 0, FixedCmds: 4, RandomRows: true},
				{Name: "compare", Kind: isa.KindPIMExec, Op: isa.OpXor, Imm: 0, FixedCmds: 12},
			},
		},
	}
}

// All returns every Table 2 kernel: stream first, then applications.
func All() []Spec { return append(Stream(), Apps()...) }

// ByName finds a kernel spec by its name. A miss is reported wrapping
// olerrors.ErrUnknownKernel.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("kernel: %w %q (known: %v)", olerrors.ErrUnknownKernel, name, Names())
}

// Names lists every kernel name in registry order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Name
	}
	return out
}

package kernel

import (
	"errors"
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/gpu"
	"orderlight/internal/isa"
	"orderlight/internal/olerrors"
	"orderlight/internal/sim"
)

// fuzzSpec decodes an arbitrary byte string into a (frequently invalid)
// kernel spec: three bytes per phase select the command kind, ALU op,
// data-structure index, immediate and count mode, deliberately covering
// negative counts, ordering-primitive kinds, host kinds, and the
// KindInvalid zero value.
func fuzzSpec(phaseData []byte, dataStructs, extraOrder int64, cmdsPerN float64) Spec {
	spec := Spec{
		Name:            "fuzz",
		Desc:            "fuzz-generated",
		ComputeRatio:    "?",
		DataStructs:     int(dataStructs % (1 << 20)),
		ExtraOrderEvery: int(extraOrder % (1 << 20)),
	}
	for i := 0; i+2 < len(phaseData) && len(spec.Phases) < 8; i += 3 {
		p := PhaseSpec{
			Name: "p",
			Kind: isa.Kind(phaseData[i] % 12),
			Op:   isa.ALUOp(phaseData[i+1] % 8),
			Vec:  int(int8(phaseData[i+1])),
			Imm:  int32(phaseData[i+2]),
		}
		switch phaseData[i+2] % 3 {
		case 0:
			p.CmdsPerN = cmdsPerN
		case 1:
			p.FixedCmds = int(int8(phaseData[i]))
		default:
			p.CmdsPerN = 1
			p.RandomRows = true
		}
		spec.Phases = append(spec.Phases, p)
	}
	return spec
}

// FuzzKernelSpec feeds arbitrary specs through Validate, Build and —
// when the generated program is small enough — a full simulation. The
// invariant: a spec either fails Validate with a classified error, or
// it builds and simulates without panicking; the machine may only fail
// with a deadline error, never wedge or crash.
func FuzzKernelSpec(f *testing.F) {
	f.Add([]byte{1, 0, 0, 2, 1, 1, 3, 2, 2}, int64(3), int64(0), 1.0)
	f.Add([]byte{4, 0, 1}, int64(1), int64(4), 0.5)
	f.Add([]byte{5, 5, 5}, int64(0), int64(-1), 2.0)
	f.Add([]byte{6, 1, 0, 7, 2, 1}, int64(2), int64(0), -1.0)
	f.Add([]byte{}, int64(0), int64(0), 0.0)
	f.Fuzz(func(t *testing.T, phaseData []byte, dataStructs, extraOrder int64, cmdsPerN float64) {
		spec := fuzzSpec(phaseData, dataStructs, extraOrder, cmdsPerN)
		cfg := smallCfg(config.PrimitiveOrderLight)

		verr := spec.Validate()
		k, berr := Build(cfg, spec, 2048)
		if verr != nil {
			if !errors.Is(verr, olerrors.ErrInvalidSpec) {
				t.Fatalf("Validate error %v is not classified as ErrInvalidSpec", verr)
			}
			if berr == nil {
				t.Fatalf("Validate rejected the spec (%v) but Build accepted it", verr)
			}
			return
		}
		if berr != nil {
			t.Fatalf("valid spec failed to build: %v", berr)
		}
		if k.TotalCmds() > 20000 {
			return // structurally fine, too big to simulate per fuzz iteration
		}
		m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
		if err != nil {
			t.Fatalf("valid kernel rejected by the machine: %v", err)
		}
		if _, err := m.Run(); err != nil && !errors.Is(err, sim.ErrDeadline) {
			t.Fatalf("simulation of a valid spec failed: %v", err)
		}
	})
}

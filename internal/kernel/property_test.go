package kernel

import (
	"fmt"
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/gpu"
	"orderlight/internal/isa"
	"orderlight/internal/sim"
)

// randomSpec builds a structurally valid random kernel: 1-5 phases over
// 1-4 data structures, mixed command kinds, commutative exec ops, and
// occasionally fixed-granularity or scattered phases.
func randomSpec(rng *sim.Rand, idx int) Spec {
	nvecs := 1 + rng.Intn(4)
	nphases := 1 + rng.Intn(5)
	spec := Spec{
		Name:         fmt.Sprintf("rand%d", idx),
		Desc:         "randomized property-test kernel",
		ComputeRatio: "?:?",
		DataStructs:  nvecs,
		MultiDS:      nvecs > 1,
	}
	if rng.Intn(4) == 0 {
		spec.ExtraOrderEvery = 8 + rng.Intn(24)
	}
	if rng.Intn(4) == 0 {
		spec.SpreadTiles = true
	}
	hasMem := false
	for p := 0; p < nphases; p++ {
		ph := PhaseSpec{Name: fmt.Sprintf("p%d", p), Vec: rng.Intn(nvecs)}
		switch rng.Intn(5) {
		case 0:
			ph.Kind, ph.CmdsPerN = isa.KindPIMLoad, 1
			hasMem = true
		case 1:
			ph.Kind, ph.Op, ph.Imm, ph.CmdsPerN = isa.KindPIMCompute, isa.OpAdd, 0, 1
			hasMem = true
		case 2:
			ph.Kind, ph.CmdsPerN = isa.KindPIMStore, 1
			hasMem = true
		case 3:
			ph.Kind, ph.Op, ph.Imm, ph.CmdsPerN = isa.KindPIMScale, isa.OpScale, int32(1+rng.Intn(5)), 1
			hasMem = true
		default:
			// Commutative exec op so intra-phase slot reuse is safe.
			ops := []isa.ALUOp{isa.OpAdd, isa.OpMul, isa.OpMax, isa.OpXor}
			ph.Kind, ph.Op, ph.Imm = isa.KindPIMExec, ops[rng.Intn(len(ops))], int32(rng.Intn(7))
			ph.CmdsPerN = []float64{0.5, 1, 2, 3}[rng.Intn(4)]
		}
		if ph.Kind.IsMemAccess() && rng.Intn(6) == 0 {
			ph.RandomRows = true
		}
		if rng.Intn(8) == 0 {
			ph.FixedCmds = 1 + rng.Intn(8)
		}
		spec.Phases = append(spec.Phases, ph)
	}
	if !hasMem {
		spec.Phases = append(spec.Phases, PhaseSpec{Name: "anchor", Kind: isa.KindPIMLoad, Vec: 0, CmdsPerN: 1})
	}
	return spec
}

// TestRandomKernelsCorrectUnderOrderLight is the repository's main
// robustness property: ANY structurally valid kernel, at any temporary
// storage size, with any seed, must verify functionally when ordered
// with OrderLight packets.
func TestRandomKernelsCorrectUnderOrderLight(t *testing.T) {
	rng := sim.NewRand(0xC0FFEE)
	tsFracs := []string{"1/16", "1/8", "1/4", "1/2"}
	for i := 0; i < 24; i++ {
		spec := randomSpec(rng, i)
		if err := spec.Validate(); err != nil {
			t.Fatalf("generated invalid spec: %v", err)
		}
		cfg := smallCfg(config.PrimitiveOrderLight).WithTSFraction(tsFracs[i%len(tsFracs)])
		cfg.Run.Seed = rng.Uint64()
		k, err := Build(cfg, spec, int64(4096+rng.Intn(4)*4096))
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatalf("spec %d (%d phases): %v", i, len(spec.Phases), err)
		}
		if !st.Correct {
			t.Fatalf("spec %d (%+v) incorrect under OrderLight: %d diff slots",
				i, spec, st.DiffSlots)
		}
	}
}

// TestRandomKernelsCorrectUnderFenceOnOoOHost stresses the other
// correct-by-construction pairing: fences on the out-of-order host.
func TestRandomKernelsCorrectUnderFenceOnOoOHost(t *testing.T) {
	rng := sim.NewRand(0xBEEF)
	for i := 0; i < 8; i++ {
		spec := randomSpec(rng, 100+i)
		cfg := smallCfg(config.PrimitiveFence)
		cfg.Host.Kind = config.HostCPU
		cfg.Run.Seed = rng.Uint64()
		k, err := Build(cfg, spec, 4096)
		if err != nil {
			t.Fatal(err)
		}
		m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if !st.Correct {
			t.Fatalf("spec %d incorrect under fence on OoO host", i)
		}
	}
}

// TestRandomKernelsCorrectUnderSeqno stresses the third correct
// discipline on random kernels: strict per-request sequencing at the
// controller.
func TestRandomKernelsCorrectUnderSeqno(t *testing.T) {
	rng := sim.NewRand(0xFACE)
	for i := 0; i < 8; i++ {
		spec := randomSpec(rng, 300+i)
		cfg := smallCfg(config.PrimitiveSeqno)
		cfg.Run.Seed = rng.Uint64()
		k, err := Build(cfg, spec, 4096)
		if err != nil {
			t.Fatal(err)
		}
		m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if !st.Correct {
			t.Fatalf("spec %d incorrect under seqno", i)
		}
	}
}

// TestRandomKernelsCorrectUnderOrderLightMultiRouteNoC adds the §9 NoC
// divergence to the random-kernel property.
func TestRandomKernelsCorrectUnderOrderLightMultiRouteNoC(t *testing.T) {
	rng := sim.NewRand(0xD00D)
	for i := 0; i < 8; i++ {
		spec := randomSpec(rng, 400+i)
		cfg := smallCfg(config.PrimitiveOrderLight)
		cfg.GPU.IcntRoutes = 2 + int(rng.Uint64()%3)
		cfg.Run.Seed = rng.Uint64()
		k, err := Build(cfg, spec, 4096)
		if err != nil {
			t.Fatal(err)
		}
		m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if !st.Correct {
			t.Fatalf("spec %d incorrect under OrderLight with %d NoC routes", i, cfg.GPU.IcntRoutes)
		}
	}
}

// TestVectorsNeverOverlap: distinct data structures of one kernel must
// occupy disjoint addresses (otherwise phases would alias and even the
// reference executor's semantics would be accidental).
func TestVectorsNeverOverlap(t *testing.T) {
	rng := sim.NewRand(7)
	for i := 0; i < 10; i++ {
		spec := randomSpec(rng, 200+i)
		cfg := smallCfg(config.PrimitiveOrderLight)
		k, err := Build(cfg, spec, 8192)
		if err != nil {
			t.Fatal(err)
		}
		owner := map[isa.Addr]int{}
		for _, p := range k.Programs {
			vecAt := map[isa.Addr]int{}
			// Recover each phase's vec by walking instrs alongside spec
			// phases is fragile; instead assert via geometry: addresses
			// of different base rows (vec strips) never collide.
			_ = vecAt
			for _, in := range p.Instrs {
				if !in.Kind.IsMemAccess() {
					continue
				}
				for lane := 0; lane < in.Count; lane++ {
					a := in.Addr + isa.Addr(int64(lane)*in.Strd)
					loc := k.Geom.Decode(a)
					strip := loc.Row / rowSpanOf(k)
					if prev, ok := owner[a]; ok && prev != strip {
						t.Fatalf("address %#x claimed by vec strips %d and %d", uint64(a), prev, strip)
					}
					owner[a] = strip
				}
			}
		}
	}
}

// rowSpanOf recovers the per-vector row span the builder used by
// scanning the program's rows (max row + 1 over structures count).
func rowSpanOf(k *Kernel) int {
	// The builder allocates vec v at base row v*rowSpan; the smallest
	// non-zero base row across instructions is the span. Fall back to a
	// large span when only one structure exists.
	span := 1 << 30
	for _, p := range k.Programs {
		for _, in := range p.Instrs {
			if !in.Kind.IsMemAccess() {
				continue
			}
			row := k.Geom.Decode(in.Addr).Row
			if row > 0 && row < span {
				span = row
			}
		}
	}
	if span == 1<<30 {
		return 1 << 30
	}
	return span
}

// TestMemCmdsInvariantAcrossTS: the total memory commands of a stream
// kernel depend only on the data footprint and BMF, never on the
// temporary-storage size.
func TestMemCmdsInvariantAcrossTS(t *testing.T) {
	spec, _ := ByName("triad")
	var want int64 = -1
	for _, ts := range []string{"1/16", "1/8", "1/4", "1/2"} {
		cfg := smallCfg(config.PrimitiveOrderLight).WithTSFraction(ts)
		k, err := Build(cfg, spec, 64*1024)
		if err != nil {
			t.Fatal(err)
		}
		if want < 0 {
			want = k.MemCmds
		} else if k.MemCmds != want {
			t.Fatalf("MemCmds at TS %s = %d, want %d", ts, k.MemCmds, want)
		}
	}
}

// TestOrderLightCorrectAcrossSeeds: the scheduler seed must never affect
// correctness, only (possibly) timing.
func TestOrderLightCorrectAcrossSeeds(t *testing.T) {
	spec, _ := ByName("daxpy")
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := smallCfg(config.PrimitiveOrderLight)
		cfg.Run.Seed = seed
		k, err := Build(cfg, spec, 16*1024)
		if err != nil {
			t.Fatal(err)
		}
		m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !st.Correct {
			t.Fatalf("seed %d: OrderLight run incorrect", seed)
		}
	}
}

func TestSpecValidateRejectsBadSpecs(t *testing.T) {
	base := func() Spec {
		s, _ := ByName("add")
		return s
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"empty name", func(s *Spec) { s.Name = "" }},
		{"no phases", func(s *Spec) { s.Phases = nil }},
		{"ordering as phase", func(s *Spec) {
			s.Phases = append(s.Phases, PhaseSpec{Kind: isa.KindOrderLight, CmdsPerN: 1})
		}},
		{"host kind phase", func(s *Spec) {
			s.Phases[0].Kind = isa.KindHostLoad
		}},
		{"zero-rate phase", func(s *Spec) { s.Phases[0].CmdsPerN = 0 }},
		{"negative fixed", func(s *Spec) { s.Phases[0].FixedCmds = -1 }},
		{"vec out of range", func(s *Spec) { s.Phases[0].Vec = 99 }},
		{"negative extra order", func(s *Spec) { s.ExtraOrderEvery = -1 }},
		{"exec only", func(s *Spec) {
			s.Phases = []PhaseSpec{{Kind: isa.KindPIMExec, Op: isa.OpAdd, CmdsPerN: 1}}
		}},
	}
	for _, c := range cases {
		s := base()
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate() passed, want error", c.name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("registry spec failed validation: %v", err)
	}
}

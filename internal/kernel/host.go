package kernel

import (
	"orderlight/internal/config"
	"orderlight/internal/dram"
	"orderlight/internal/gpu"
	"orderlight/internal/isa"
)

// BuildHost generates the host-execution version of a kernel: the same
// data footprint streamed through ordinary loads and stores instead of
// PIM commands. It exists to *measure* the GPU baseline on the very same
// DRAM timing model the PIM runs use, validating the roofline's
// effective-bandwidth assumption (the validation-hostbw experiment).
//
// Two modeling notes. First, a host column access moves 32 B while a
// PIM command moves 32xBMF B, so the host streams each phase BMF times
// over the footprint (the slot address space cannot subdivide a slot;
// the repetition reproduces the command count and approximates row
// locality — each repetition re-pays the row activates, which lands the
// measured efficiency near the ~80% the roofline assumes). Second, host
// kernels carry no ordering primitives: the core's register dependences
// handle ordering when the data comes back to the core (§4.3).
func BuildHost(cfg config.Config, spec Spec, bytesPerChannel int64) (*Kernel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	geom := dram.NewGeometry(cfg.Memory.Channels, cfg.Memory.BanksPerChannel,
		cfg.Memory.RowBufferBytes, cfg.Memory.BusWidthBytes,
		cfg.Memory.GroupsPerChannel, cfg.PIM.BMF)

	// Slots covered per structure (same footprint as the PIM build).
	slots := int(bytesPerChannel / int64(cfg.BytesPerCommand()))
	if slots < 1 {
		slots = 1
	}
	k := &Kernel{Spec: spec, Geom: geom, Store: dram.NewStore(geom.LanesPerSlot)}

	for ch := 0; ch < cfg.Memory.Channels; ch++ {
		var instrs []isa.Instr
		for _, p := range spec.Phases {
			if !p.Kind.IsMemAccess() {
				continue // pure-ALU work stays on the SMs; no memory traffic
			}
			kind := isa.KindHostLoad
			if p.Kind.IsWrite() {
				kind = isa.KindHostStore
			}
			// Host structures lie consecutively in the channel's linear
			// slot space, which the geometry interleaves across banks at
			// row granularity — the streaming-friendly layout a GPU
			// driver would pick for ordinary data.
			vbase := int64(p.Vec) * int64(slots+geom.SlotsPerRow)
			base := isa.Addr(vbase*int64(geom.Channels) + int64(ch))
			// BMF passes over the structure (see the doc comment).
			for pass := 0; pass < cfg.PIM.BMF; pass++ {
				remaining := slots
				idx := 0
				for remaining > 0 {
					count := remaining
					if count > 32 { // one warp instruction = 32 SIMT lanes
						count = 32
					}
					instrs = append(instrs, isa.Instr{
						Kind: kind,
						Addr: base + isa.Addr(int64(idx)*int64(geom.Channels)),
						// Host lanes walk consecutive slots.
						Count: count,
						Strd:  int64(geom.Channels),
					})
					k.MemCmds += int64(count)
					idx += count
					remaining -= count
				}
			}
		}
		k.Programs = append(k.Programs, gpu.Program{Channel: ch, Instrs: instrs})
	}
	k.HostBytes = k.MemCmds * int64(cfg.Memory.BusWidthBytes)
	return k, nil
}

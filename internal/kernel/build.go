package kernel

import (
	"fmt"

	"orderlight/internal/config"
	"orderlight/internal/dram"
	"orderlight/internal/gpu"
	"orderlight/internal/isa"
	"orderlight/internal/sim"
)

// Kernel is a fully generated, runnable PIM kernel: the initial memory
// image and one warp program per channel, plus the accounting the
// experiments need (host-equivalent traffic for the GPU baseline and
// expected command counts).
type Kernel struct {
	Spec     Spec
	Programs []gpu.Program
	Store    *dram.Store
	Geom     dram.Geometry

	// Expected command counts across all channels.
	MemCmds  int64 // commands occupying DRAM bank timing
	ExecCmds int64 // pure-ALU PIM commands
	Orders   int64 // ordering primitives emitted (0 when primitive=none)

	// Host-baseline accounting for the roofline model.
	HostBytes int64 // bytes the host would move for the same computation
	HostOps   int64 // int32 operations the host would execute
}

// TotalCmds returns every PIM command the kernel issues.
func (k *Kernel) TotalCmds() int64 { return k.MemCmds + k.ExecCmds }

// HostTime returns the roofline GPU-baseline execution time.
func (k *Kernel) HostTime(cfg config.Config) sim.Time {
	return gpu.HostTime(cfg, k.HostBytes, k.HostOps)
}

// Build generates the kernel for the given configuration. bytesPerChannel
// is the size of the kernel's primary data structure per memory channel;
// the tile count follows from the temporary-storage size and the
// bandwidth multiplication factor (fewer, wider commands at higher BMF —
// the effect Figure 13 sweeps).
func Build(cfg config.Config, spec Spec, bytesPerChannel int64) (*Kernel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	geom := dram.NewGeometry(cfg.Memory.Channels, cfg.Memory.BanksPerChannel,
		cfg.Memory.RowBufferBytes, cfg.Memory.BusWidthBytes,
		cfg.Memory.GroupsPerChannel, cfg.PIM.BMF)
	n := cfg.CommandsPerTile()

	// Tile count: the primary data structure (first memory phase's
	// vector) must be covered once.
	primary := -1
	for _, p := range spec.Phases {
		if p.Kind.IsMemAccess() {
			primary = p.Vec
			break
		}
	}
	if primary < 0 {
		return nil, fmt.Errorf("kernel: spec %q has no memory phase", spec.Name)
	}
	perTile := vecPerTile(spec, n)
	dataCmds := bytesPerChannel / int64(cfg.BytesPerCommand())
	if dataCmds < 1 {
		dataCmds = 1
	}
	tiles := int((dataCmds + int64(perTile[primary]) - 1) / int64(perTile[primary]))
	if tiles < 1 {
		tiles = 1
	}

	// Row layout: every data structure lives in bank 0 of its channel
	// (the paper's mapping places a kernel's operands in the same PIM
	// memory-group; distinct structures land in distinct rows, which is
	// what makes phase switches pay row open/close costs — §7.1.1).
	rowSpan := 1
	for _, pt := range perTile {
		rows := (tiles*pt + geom.SlotsPerRow - 1) / geom.SlotsPerRow
		if rows+1 > rowSpan {
			rowSpan = rows + 1
		}
	}

	k := &Kernel{Spec: spec, Geom: geom, Store: dram.NewStore(geom.LanesPerSlot)}
	for ch := 0; ch < cfg.Memory.Channels; ch++ {
		prog := k.buildChannel(cfg, geom, spec, ch, tiles, n, perTile, rowSpan)
		k.Programs = append(k.Programs, prog)
	}
	k.HostBytes = k.MemCmds * int64(cfg.BytesPerCommand())
	return k, nil
}

// vecPerTile computes, per data-structure index, how many commands of
// that structure one tile consumes (the maximum across phases so that
// read-modify-write structures like daxpy's b stay aligned).
func vecPerTile(spec Spec, n int) map[int]int {
	out := make(map[int]int)
	for _, p := range spec.Phases {
		if !p.Kind.IsMemAccess() {
			continue
		}
		if c := p.cmds(n); c > out[p.Vec] {
			out[p.Vec] = c
		}
	}
	return out
}

// buildChannel emits one channel's warp program and initializes its data.
func (k *Kernel) buildChannel(cfg config.Config, geom dram.Geometry, spec Spec,
	ch, tiles, n int, perTile map[int]int, rowSpan int) gpu.Program {

	rng := sim.NewRand(cfg.Run.Seed ^ uint64(ch)<<32 ^ 0x9e37)
	var instrs []isa.Instr

	// Default placement keeps every operand in memory-group 0, bank 0
	// (the paper's mapping: a kernel's structures share a group and
	// conflict in rows). With SpreadTiles, tile t lives entirely in
	// group t mod GroupsPerChannel so groups work independently.
	groupsUsed := 1
	if spec.SpreadTiles {
		groupsUsed = cfg.Memory.GroupsPerChannel
	}
	group, bank := 0, 0 // current tile's placement

	vecBaseRow := func(v int) int { return v * rowSpan }
	addrOf := func(v, idx int) isa.Addr {
		return geom.Encode(dram.Loc{
			Channel: ch, Bank: bank,
			Row: vecBaseRow(v) + idx/geom.SlotsPerRow,
			Col: idx % geom.SlotsPerRow,
		})
	}
	initSlot := func(a isa.Addr, v, idx int) {
		vals := make([]int32, geom.LanesPerSlot)
		for l := range vals {
			vals[l] = int32(1+v) * int32(100*ch+10*idx+l%7+1)
		}
		k.Store.Write(a, vals)
	}

	order := func() {
		k.Orders++
		switch cfg.Run.Primitive {
		case config.PrimitiveFence:
			instrs = append(instrs, isa.Instr{Kind: isa.KindFence, Group: group})
		case config.PrimitiveOrderLight:
			instrs = append(instrs, isa.Instr{Kind: isa.KindOrderLight, Group: group})
		default:
			k.Orders-- // none: no primitive emitted
		}
	}

	sinceOrder := 0
	for t := 0; t < tiles; t++ {
		group = t % groupsUsed
		bank = group * cfg.BanksPerGroup()
		tIdx := t / groupsUsed // tile index within its group
		slot := 0
		for _, p := range spec.Phases {
			cmds := p.cmds(n)
			emitted := 0
			for emitted < cmds {
				chunk := cmds - emitted
				if spec.ExtraOrderEvery > 0 && sinceOrder+chunk > spec.ExtraOrderEvery {
					chunk = spec.ExtraOrderEvery - sinceOrder
					if chunk <= 0 {
						order()
						sinceOrder = 0
						continue
					}
				}
				in := isa.Instr{
					Kind: p.Kind, Op: p.Op, Imm: p.Imm,
					Count: chunk, TSlot: slot % n, Group: group,
					Strd: int64(geom.Channels),
				}
				if p.Kind.IsMemAccess() {
					var base int
					if p.RandomRows {
						// Irregular access: a pseudo-random aligned run
						// inside the structure's per-group footprint.
						span := (tiles/groupsUsed + 1) * perTile[p.Vec]
						if span < chunk {
							span = chunk
						}
						base = rng.Intn(span-chunk+1) / chunk * chunk
					} else {
						base = tIdx*perTile[p.Vec] + emitted
					}
					in.Addr = addrOf(p.Vec, base)
					// Seed operand data for everything except pure
					// stores, whose targets are overwritten anyway. The
					// formula is deterministic in (vec, idx), so
					// re-seeding an address is idempotent.
					if p.Kind != isa.KindPIMStore {
						for i := 0; i < chunk; i++ {
							initSlot(addrOf(p.Vec, base+i), p.Vec, base+i)
						}
					}
				}
				instrs = append(instrs, in)
				if p.Kind.IsMemAccess() {
					k.MemCmds += int64(chunk)
				} else {
					k.ExecCmds += int64(chunk)
				}
				if p.Op != isa.OpNop {
					k.HostOps += int64(chunk) * int64(geom.LanesPerSlot)
				}
				emitted += chunk
				sinceOrder += chunk
				slot += chunk
			}
			order()
			sinceOrder = 0
		}
	}
	return gpu.Program{Channel: ch, Instrs: instrs}
}

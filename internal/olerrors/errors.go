// Package olerrors holds the typed sentinel errors shared across the
// simulator's layers. They live in a leaf package (imported by config,
// kernel, experiments, runner and the public facade alike) so any layer
// can wrap them with %w and callers can classify failures with
// errors.Is instead of matching message strings.
package olerrors

import "errors"

var (
	// ErrUnknownKernel reports a kernel name absent from the Table 2
	// workload registry.
	ErrUnknownKernel = errors.New("unknown kernel")

	// ErrUnknownExperiment reports an experiment ID absent from the
	// table/figure registry.
	ErrUnknownExperiment = errors.New("unknown experiment")

	// ErrInvalidSpec reports a structurally unsound kernel spec or
	// simulator configuration.
	ErrInvalidSpec = errors.New("invalid specification")

	// ErrCanceled reports a run abandoned because its context was
	// canceled or timed out before every cell completed.
	ErrCanceled = errors.New("run canceled")

	// ErrCellPanic reports an experiment cell whose simulation panicked;
	// the runner converts the panic into this typed error instead of
	// crashing the whole sweep.
	ErrCellPanic = errors.New("experiment cell panicked")
)

// Package olerrors holds the typed sentinel errors shared across the
// simulator's layers. They live in a leaf package (imported by config,
// kernel, experiments, runner and the public facade alike) so any layer
// can wrap them with %w and callers can classify failures with
// errors.Is instead of matching message strings.
package olerrors

import "errors"

var (
	// ErrUnknownKernel reports a kernel name absent from the Table 2
	// workload registry.
	ErrUnknownKernel = errors.New("unknown kernel")

	// ErrUnknownExperiment reports an experiment ID absent from the
	// table/figure registry.
	ErrUnknownExperiment = errors.New("unknown experiment")

	// ErrInvalidSpec reports a structurally unsound kernel spec or
	// simulator configuration.
	ErrInvalidSpec = errors.New("invalid specification")

	// ErrCanceled reports a run abandoned because its context was
	// canceled or timed out before every cell completed.
	ErrCanceled = errors.New("run canceled")

	// ErrCellPanic reports an experiment cell whose simulation panicked;
	// the runner converts the panic into this typed error instead of
	// crashing the whole sweep.
	ErrCellPanic = errors.New("experiment cell panicked")

	// ErrCellTimeout reports an experiment cell killed by the runner's
	// per-cell watchdog: the simulation made no progress toward
	// completion within the configured wall-clock budget.
	ErrCellTimeout = errors.New("experiment cell timed out")

	// ErrAborted reports a machine run stopped between event windows by
	// an external abort request (watchdog or cancellation), before the
	// simulation drained.
	ErrAborted = errors.New("run aborted")

	// ErrHalted reports a machine run deliberately halted at a requested
	// cycle boundary after writing a checkpoint — the controlled "crash"
	// used to exercise resume paths.
	ErrHalted = errors.New("run halted at checkpoint")

	// ErrCheckpointFormat reports a checkpoint file whose structure is
	// not a checkpoint at all: bad magic, trailing garbage, or an
	// undecodable payload.
	ErrCheckpointFormat = errors.New("malformed checkpoint file")

	// ErrCheckpointTruncated reports a checkpoint file shorter than its
	// header or declared payload — a crash mid-copy or a torn download.
	ErrCheckpointTruncated = errors.New("truncated checkpoint file")

	// ErrCheckpointChecksum reports a checkpoint whose payload does not
	// match its recorded SHA-256 — silent corruption (bit flips).
	ErrCheckpointChecksum = errors.New("checkpoint checksum mismatch")

	// ErrCheckpointVersion reports a structurally valid checkpoint
	// written by an incompatible format version.
	ErrCheckpointVersion = errors.New("unsupported checkpoint version")

	// ErrCheckpointMismatch reports a valid checkpoint that belongs to a
	// different run: another cell, config, engine, or machine shape.
	// Resuming it would silently produce wrong results, so it is refused.
	ErrCheckpointMismatch = errors.New("checkpoint does not match this run")
)

package cache

import (
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/dram"
	"orderlight/internal/isa"
)

func testGeom() dram.Geometry {
	c := config.Default()
	return dram.NewGeometry(c.Memory.Channels, c.Memory.BanksPerChannel,
		c.Memory.RowBufferBytes, c.Memory.BusWidthBytes,
		c.Memory.GroupsPerChannel, c.PIM.BMF)
}

func pimReq(id uint64, bank int) isa.Request {
	return isa.Request{ID: id, Kind: isa.KindPIMLoad, Bank: bank, Group: testGeom().GroupOf(bank)}
}

func olPkt(id uint64, group int) isa.Request {
	return isa.Request{
		ID: id, Kind: isa.KindOrderLight, Group: group,
		OL: isa.OLPacket{PktID: isa.PktIDOrderLight, Group: uint8(group)},
	}
}

func TestSlicePIMBypassPreservesSubPathOrder(t *testing.T) {
	s := NewSlice(0, testGeom(), 2, 0)
	// Bank 0 and 2 share sub-path 0; bank 1 goes to sub-path 1.
	s.Accept(pimReq(1, 0))
	s.Accept(pimReq(2, 2))
	s.Accept(pimReq(3, 1))
	var got []uint64
	for {
		r, ok := s.Pop()
		if !ok {
			break
		}
		got = append(got, r.ID)
	}
	if len(got) != 3 {
		t.Fatalf("drained %d requests, want 3", len(got))
	}
	// Same-path order must hold: 1 before 2.
	pos := map[uint64]int{}
	for i, id := range got {
		pos[id] = i
	}
	if pos[1] > pos[2] {
		t.Fatalf("same-sub-path order violated: %v", got)
	}
}

func TestSliceOLCopiesAcrossSubPartitions(t *testing.T) {
	s := NewSlice(0, testGeom(), 2, 0)
	// Group 0's four banks (0-3) span both sub-partitions, so the packet
	// is copied to both and younger requests cannot overtake it.
	s.Accept(pimReq(1, 0)) // path 0
	s.Accept(olPkt(2, 0))  // copies on paths 0 and 1
	s.Accept(pimReq(3, 1)) // path 1, behind the copy

	r, ok := s.Pop()
	if !ok || r.ID != 1 {
		t.Fatalf("first pop = %v, want request 1", r)
	}
	r, ok = s.Pop()
	if !ok || r.Kind != isa.KindOrderLight {
		t.Fatalf("second pop = %v, want merged OrderLight", r)
	}
	r, ok = s.Pop()
	if !ok || r.ID != 3 {
		t.Fatalf("third pop = %v, want request 3", r)
	}
}

func TestSliceBackpressure(t *testing.T) {
	s := NewSlice(0, testGeom(), 2, 0)
	for i := 0; i < 64; i++ {
		if !s.CanAccept(pimReq(uint64(i), 0)) {
			t.Fatalf("rejected request %d with capacity 64", i)
		}
		s.Accept(pimReq(uint64(i), 0))
	}
	if s.CanAccept(pimReq(99, 0)) {
		t.Fatal("full sub-path still accepting")
	}
	if !s.CanAccept(pimReq(100, 1)) {
		t.Fatal("other sub-path should still accept")
	}
	if s.CanAccept(olPkt(101, 0)) {
		t.Fatal("OL accepted with one relevant sub-path full")
	}
}

func TestSliceHostHitServicedLocally(t *testing.T) {
	s := NewSlice(0, testGeom(), 2, 128)
	var hits []uint64
	s.OnHostHit = func(r isa.Request) { hits = append(hits, r.ID) }

	miss := isa.Request{ID: 1, Kind: isa.KindHostLoad, Addr: 0x40, Bank: 0}
	s.Accept(miss) // cold miss: forwards
	if s.Misses != 1 || s.Pending() != 1 {
		t.Fatalf("misses=%d pending=%d, want 1/1", s.Misses, s.Pending())
	}
	hit := isa.Request{ID: 2, Kind: isa.KindHostLoad, Addr: 0x40, Bank: 0}
	s.Accept(hit)
	if s.Hits != 1 || len(hits) != 1 || hits[0] != 2 {
		t.Fatalf("hit not serviced locally: hits=%d callback=%v", s.Hits, hits)
	}
	if s.Pending() != 1 {
		t.Fatal("hit request leaked into the DRAM path")
	}
}

func TestSlicePIMNeverTouchesTags(t *testing.T) {
	s := NewSlice(0, testGeom(), 2, 128)
	r := pimReq(1, 0)
	r.Addr = 0x80
	s.Accept(r)
	host := isa.Request{ID: 2, Kind: isa.KindHostLoad, Addr: 0x80, Bank: 0}
	s.Accept(host)
	if s.Hits != 0 {
		t.Fatal("PIM request allocated a cache line (must bypass)")
	}
}

func TestTagArrayLRU(t *testing.T) {
	ta := NewTagArray(4, 2) // 2 sets x 2 ways
	// Addresses 0, 2, 4 map to set 0 (mod 2).
	if ta.Access(0) {
		t.Fatal("cold access hit")
	}
	ta.Access(2)
	if !ta.Access(0) {
		t.Fatal("0 should still be resident")
	}
	ta.Access(4) // evicts LRU = 2
	if ta.Contains(2) {
		t.Fatal("LRU line not evicted")
	}
	if !ta.Contains(0) || !ta.Contains(4) {
		t.Fatal("MRU lines evicted incorrectly")
	}
}

package cache

import (
	"orderlight/internal/core"
	"orderlight/internal/dram"
	"orderlight/internal/isa"
)

// Slice is one L2 slice.
type Slice struct {
	channel int
	geom    dram.Geometry
	conv    *core.Converge
	div     *core.Diverge
	tags    *TagArray

	// OnHostHit, if set, is called when a host load hits in the tag
	// array and is serviced without reaching DRAM.
	OnHostHit func(r isa.Request)

	// Hits and Misses count host-request tag outcomes.
	Hits, Misses int64
}

// NewSlice creates the slice for a channel with nSub sub-partitions and
// a tag array of the given line capacity (0 disables caching entirely —
// every host request forwards).
func NewSlice(channel int, geom dram.Geometry, nSub, tagLines int) *Slice {
	s := &Slice{
		channel: channel,
		geom:    geom,
		conv:    core.NewConverge(nSub, 64),
	}
	if tagLines > 0 {
		s.tags = NewTagArray(tagLines, 4)
	}
	// Precompute, per memory-group, the paths that serve at least one
	// bank of the group: GroupPaths runs on the per-cycle CanAccept path
	// and must not allocate.
	groupPaths := make([][]int, geom.Groups)
	for g := range groupPaths {
		seen := make([]bool, nSub)
		for _, b := range geom.BanksOfGroup(g) {
			p := b % nSub
			if !seen[p] {
				seen[p] = true
				groupPaths[g] = append(groupPaths[g], p)
			}
		}
	}
	s.div = &core.Diverge{
		NPaths:     nSub,
		Route:      func(r isa.Request) int { return r.Bank % nSub },
		GroupPaths: func(group int) []int { return groupPaths[group] },
	}
	return s
}

// CanAccept reports whether the slice can take the request this cycle.
func (s *Slice) CanAccept(r isa.Request) bool {
	if s.tags != nil && r.Kind == isa.KindHostLoad && s.tags.Contains(r.Addr) {
		return true // will be answered locally
	}
	for _, p := range s.div.Targets(r) {
		if !s.conv.CanPush(p) {
			return false
		}
	}
	return true
}

// Accept routes the request into the sub-partition queues, replicating
// an OrderLight packet across the relevant sub-paths, or answers a host
// load that hits the tag array.
func (s *Slice) Accept(r isa.Request) {
	if s.tags != nil && r.Kind == isa.KindHostLoad {
		if s.tags.Access(r.Addr) {
			s.Hits++
			if s.OnHostHit != nil {
				s.OnHostHit(r)
			}
			return
		}
		s.Misses++
	}
	targets := s.div.Targets(r)
	rep := r
	if r.Kind == isa.KindOrderLight && len(targets) > 1 {
		rep = core.Replicate(r, len(targets))
	}
	for _, p := range targets {
		s.conv.Push(p, rep)
	}
}

// Pop emits the next request toward the L2-to-DRAM queue, merging
// OrderLight copies at the convergence point.
func (s *Slice) Pop() (isa.Request, bool) { return s.conv.Pop() }

// Pending returns the number of requests buffered in the slice.
func (s *Slice) Pending() int { return s.conv.Len() }

// TagArray is a small set-associative cache directory with LRU
// replacement, tracking only presence (the simulator's data lives in
// the DRAM store; L2 data payloads are not modeled).
type TagArray struct {
	sets  int
	assoc int
	tags  [][]isa.Addr // per set, most-recently-used first; 0 len = empty way
}

// NewTagArray creates a tag array with the given total line capacity and
// associativity.
func NewTagArray(lines, assoc int) *TagArray {
	sets := lines / assoc
	if sets < 1 {
		sets = 1
	}
	t := &TagArray{sets: sets, assoc: assoc, tags: make([][]isa.Addr, sets)}
	return t
}

func (t *TagArray) set(a isa.Addr) int { return int(uint64(a) % uint64(t.sets)) }

// Contains reports presence without updating LRU state.
func (t *TagArray) Contains(a isa.Addr) bool {
	for _, x := range t.tags[t.set(a)] {
		if x == a {
			return true
		}
	}
	return false
}

// Access performs a lookup-and-fill: returns true on hit (refreshing
// LRU), false on miss (allocating the line, evicting LRU if needed).
func (t *TagArray) Access(a isa.Addr) bool {
	si := t.set(a)
	ways := t.tags[si]
	for i, x := range ways {
		if x == a {
			copy(ways[1:i+1], ways[:i])
			ways[0] = a
			return true
		}
	}
	if len(ways) < t.assoc {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = a
	t.tags[si] = ways
	return false
}

package cache

import (
	"fmt"

	"orderlight/internal/core"
	"orderlight/internal/isa"
)

// SliceState is an L2 slice's checkpointable state: the sub-partition
// convergence FSM, the tag array's per-set LRU order (nil when caching
// is disabled) and the hit/miss counters.
type SliceState struct {
	Conv   core.ConvergeState
	Tags   [][]isa.Addr
	Hits   int64
	Misses int64
}

// State captures the slice's buffered requests and tag contents.
func (s *Slice) State() SliceState {
	st := SliceState{Conv: s.conv.State(), Hits: s.Hits, Misses: s.Misses}
	if s.tags != nil {
		st.Tags = make([][]isa.Addr, len(s.tags.tags))
		for i, ways := range s.tags.tags {
			st.Tags[i] = append([]isa.Addr(nil), ways...)
		}
	}
	return st
}

// Restore replaces the slice's state with the snapshot.
func (s *Slice) Restore(st SliceState) error {
	if (s.tags == nil) != (len(st.Tags) == 0) {
		// A populated tag snapshot cannot restore onto a cache-disabled
		// slice and vice versa; an empty tag array snapshots as nil (gob
		// elides empty slices), which restores onto either.
		if s.tags == nil {
			return fmt.Errorf("cache: snapshot carries tags but slice has caching disabled")
		}
	}
	if err := s.conv.Restore(st.Conv); err != nil {
		return err
	}
	if s.tags != nil {
		if len(st.Tags) > 0 && len(st.Tags) != len(s.tags.tags) {
			return fmt.Errorf("cache: snapshot has %d tag sets, slice has %d", len(st.Tags), len(s.tags.tags))
		}
		for i := range s.tags.tags {
			var ways []isa.Addr
			if i < len(st.Tags) {
				ways = st.Tags[i]
			}
			if len(ways) > s.tags.assoc {
				return fmt.Errorf("cache: snapshot set %d has %d ways, associativity is %d", i, len(ways), s.tags.assoc)
			}
			s.tags.tags[i] = append([]isa.Addr(nil), ways...)
		}
	}
	s.Hits = st.Hits
	s.Misses = st.Misses
	return nil
}

// Package cache models one L2 slice of the GPU memory pipe (Figure 6).
// Each slice serves exactly one memory channel and is internally split
// into sub-partitions with separate queues — the divergent paths of
// §5.3.2 where a naive fence-free design would lose ordering. PIM
// requests behave like non-temporal accesses: they bypass the tag
// array entirely and only traverse the sub-partition queues, where an
// OrderLight packet is carried by the copy-and-merge FSM of Figure 9.
// Host requests are looked up in a small set-associative tag array;
// hits are answered at the slice, misses forward to DRAM.
//
// The sub-partition count is the knob of the ablation-subpart
// experiment (more divergent paths = more OrderLight copies to merge),
// and host hit/miss counts feed the host-QoS columns of the
// taxonomy-arbitration and ablation-host tables.
package cache

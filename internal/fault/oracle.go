package fault

import (
	"fmt"

	"orderlight/internal/dram"
	"orderlight/internal/stats"
)

// Outcome classifies what a faulted run did to the machine's
// correctness story.
type Outcome uint8

const (
	// OutcomeClean: the plan was armed but no fault actually fired (the
	// kernel never exercised the targeted mechanism), and the answer is
	// correct — the cell carries no evidence either way.
	OutcomeClean Outcome = iota

	// OutcomeBenign: faults were injected but the final memory image
	// still matches the golden one — the ordering violation existed but
	// the data race it permits did not materialize on this schedule.
	OutcomeBenign

	// OutcomeDetected: faults were injected, the final image is wrong,
	// and the machine's own verification flagged it. This is the
	// healthy outcome for a harmful fault — the paper's "no fence,
	// functionally incorrect" datapoint generalized.
	OutcomeDetected

	// OutcomeEscape: the simulator's verdict disagrees with the
	// oracle's independent diff — a wrong answer that verification
	// passed (or never ran on), a correct answer verification flagged,
	// or corruption with zero injections. Any escape is a simulator
	// bug, not a property of the fault.
	OutcomeEscape
)

func (o Outcome) String() string {
	switch o {
	case OutcomeClean:
		return "clean"
	case OutcomeBenign:
		return "benign"
	case OutcomeDetected:
		return "detected"
	case OutcomeEscape:
		return "escape"
	default:
		return fmt.Sprintf("outcome(%d)", uint8(o))
	}
}

// Verdict is the oracle's classification of one faulted cell.
type Verdict struct {
	Outcome Outcome
	Report  Report

	// WrongSlots counts memory slots differing from the golden image
	// (capped at diffCap).
	WrongSlots int

	// Why is a one-line deterministic explanation of the outcome.
	Why string
}

func (v Verdict) String() string {
	return fmt.Sprintf("%v [%v] %s", v.Outcome, v.Report, v.Why)
}

// diffCap bounds the slot diff the oracle materializes per cell.
const diffCap = 1 << 20

// Classify runs the differential oracle over one finished cell: golden
// is the program-order reference image (an unfaulted replay over the
// pristine initial memory), final is the machine's memory after the
// faulted run, st carries the machine's own verification verdict, and
// rep the plan's injection accounting.
//
// The oracle never trusts st.Correct alone — it diffs final against
// golden independently, and any disagreement between that diff and the
// machine's verdict is an escape: the verification layer, not the
// fault, is broken. Faulted cells are expected to run with
// cfg.Run.Verify enabled; a wrong answer on an unverified run is also
// an escape (the harness let corruption through unchecked).
func Classify(golden, final *dram.Store, st *stats.Run, rep Report) Verdict {
	v := Verdict{Report: rep}
	wrong := !final.Equal(golden)
	if wrong {
		v.WrongSlots = len(final.Diff(golden, diffCap))
	}
	detected := st.Verified && !st.Correct

	switch {
	case st.Verified && st.Correct == wrong:
		// The machine's verifier and the oracle's independent diff
		// disagree about whether the image is corrupt.
		v.Outcome = OutcomeEscape
		v.Why = fmt.Sprintf("verifier says correct=%t but oracle diff finds %d wrong slots", st.Correct, v.WrongSlots)
	case !st.Verified && wrong:
		v.Outcome = OutcomeEscape
		v.Why = fmt.Sprintf("%d wrong slots on an unverified run", v.WrongSlots)
	case rep.Injections == 0 && wrong:
		v.Outcome = OutcomeEscape
		v.Why = fmt.Sprintf("%d wrong slots with zero injections", v.WrongSlots)
	case wrong && detected:
		v.Outcome = OutcomeDetected
		v.Why = fmt.Sprintf("verification caught %d wrong slots", v.WrongSlots)
	case rep.Injections == 0:
		v.Outcome = OutcomeClean
		v.Why = "no fault fired"
	default:
		v.Outcome = OutcomeBenign
		v.Why = "ordering violated, data race did not materialize"
	}
	return v
}

package fault

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
)

// Class enumerates the ordering-violation families the injector can
// introduce. Each class attacks a different layer of the ordering
// machinery, mirroring the hazard taxonomy of the consistency
// literature: primitives that never leave the core, primitives the
// controller honors only partially, an arbiter that ignores the
// tracker, and a device whose write-back lags its acknowledgment.
type Class uint8

const (
	// ClassNone disables injection; the zero Spec is a no-op.
	ClassNone Class = iota

	// ClassDropOrdering silently no-ops Fence and OrderLight
	// instructions at host issue: the warp retires the primitive
	// without waiting and without emitting a packet. With rate 1 and a
	// fence-primitive kernel this is exactly the paper's "no fence,
	// functionally incorrect" Figure 5 datapoint.
	ClassDropOrdering

	// ClassWeakenDrain weakens an OrderLight packet's drain semantics
	// at the memory controller: the packet's extra (cross-group)
	// targets are not programmed into the ordering tracker, and a
	// packet with no extra groups is dropped at the tracker entirely —
	// the epoch it should close is released early.
	ClassWeakenDrain

	// ClassIllegalReorder lets the FR-FCFS arbiter issue selected
	// transactions even when the ordering tracker forbids it, hoisting
	// younger accesses past in-flight older epochs.
	ClassIllegalReorder

	// ClassDelayVisibility defers the functional execution (write-back
	// visibility) of selected PIM commands by Delay memory cycles while
	// acknowledging them immediately — the device claims completion
	// before its state change is visible.
	ClassDelayVisibility
)

// Classes lists the active (injectable) fault classes.
func Classes() []Class {
	return []Class{ClassDropOrdering, ClassWeakenDrain, ClassIllegalReorder, ClassDelayVisibility}
}

func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassDropOrdering:
		return "drop"
	case ClassWeakenDrain:
		return "weaken"
	case ClassIllegalReorder:
		return "reorder"
	case ClassDelayVisibility:
		return "delay"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// ParseClass converts a class name ("drop", "weaken", "reorder",
// "delay" or "none") to a Class.
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "none", "":
		return ClassNone, nil
	case "drop":
		return ClassDropOrdering, nil
	case "weaken":
		return ClassWeakenDrain, nil
	case "reorder":
		return ClassIllegalReorder, nil
	case "delay":
		return ClassDelayVisibility, nil
	default:
		return ClassNone, fmt.Errorf("fault: unknown class %q (want drop, weaken, reorder, delay or none)", s)
	}
}

// DefaultDelay is the visibility lag (in memory cycles) a
// ClassDelayVisibility spec applies when Delay is unset.
const DefaultDelay = 64

// Spec is the seeded description of one injection plan. It is a pure
// value: two plans built from equal specs make identical decisions, so
// a faulted run is as deterministic as an unfaulted one.
type Spec struct {
	Class Class

	// Seed keys every injection decision. Decisions are stateless
	// hashes of (Seed, class, event key), so they are independent of
	// event interleaving — the dense and skip-ahead engines, and any
	// worker-pool schedule, see the same choices.
	Seed uint64

	// Rate is the fraction of candidate events faulted, in (0, 1];
	// values <= 0 mean 1 (every candidate).
	Rate float64

	// Delay is the visibility lag in memory cycles for
	// ClassDelayVisibility; values <= 0 mean DefaultDelay.
	Delay int64
}

// Active reports whether the spec injects anything; the zero Spec does
// not.
func (s Spec) Active() bool { return s.Class != ClassNone }

// Validate reports structurally impossible specs.
func (s Spec) Validate() error {
	if s.Class > ClassDelayVisibility {
		return fmt.Errorf("fault: unknown class %d", s.Class)
	}
	if math.IsNaN(s.Rate) || math.IsInf(s.Rate, 0) || s.Rate > 1 {
		return fmt.Errorf("fault: rate %v outside (0, 1]", s.Rate)
	}
	return nil
}

func (s Spec) String() string {
	if !s.Active() {
		return "none"
	}
	out := fmt.Sprintf("%v/seed=%d", s.Class, s.Seed)
	if s.Rate > 0 && s.Rate < 1 {
		out += fmt.Sprintf("/rate=%g", s.Rate)
	}
	if s.Class == ClassDelayVisibility {
		out += fmt.Sprintf("/lag=%d", s.delay())
	}
	return out
}

func (s Spec) rate() float64 {
	if s.Rate <= 0 || s.Rate > 1 {
		return 1
	}
	return s.Rate
}

func (s Spec) delay() int64 {
	if s.Delay <= 0 {
		return DefaultDelay
	}
	return s.Delay
}

// Point identifies one kind of injection event, for reporting.
type Point uint8

const (
	PointFenceDropped Point = iota // fence no-oped at host issue
	PointOLDropped                 // OrderLight no-oped at host issue or controller
	PointOLWeakened                // OrderLight tracker groups skipped at the controller
	PointReordered                 // transaction issued past a closed epoch
	PointDelayedExec               // PIM command's visibility deferred
	pointCount
)

func (p Point) String() string {
	switch p {
	case PointFenceDropped:
		return "fence-dropped"
	case PointOLDropped:
		return "ol-dropped"
	case PointOLWeakened:
		return "ol-weakened"
	case PointReordered:
		return "reordered"
	case PointDelayedExec:
		return "delayed-exec"
	default:
		return fmt.Sprintf("point(%d)", uint8(p))
	}
}

// Plan is a live injection plan threaded through one machine: the SMs
// (or OoO cores) consult it at primitive issue, the memory controllers
// at tracker programming, arbitration and PIM write-back. Decision
// methods are pure and nil-safe — a nil *Plan always answers "no
// fault" — so component hot paths need no plan-presence branches.
// Recording methods count injections as they actually happen. A Plan
// belongs to exactly one machine run; counters are atomic so the
// parallel engine's channel shards can record concurrently. Decisions
// themselves are stateless seed hashes, so plans stay engine-neutral.
type Plan struct {
	spec      Spec
	threshold uint64
	delay     int64
	counts    [pointCount]atomic.Int64
}

// NewPlan materializes a spec into a live plan.
func NewPlan(s Spec) *Plan {
	r := s.rate()
	th := uint64(math.MaxUint64)
	if r < 1 {
		th = uint64(r * float64(math.MaxUint64))
	}
	return &Plan{spec: s, threshold: th, delay: s.delay()}
}

// Spec returns the spec the plan was built from.
func (p *Plan) Spec() Spec {
	if p == nil {
		return Spec{}
	}
	return p.spec
}

// Per-class salts keep the decision streams of different classes (and
// call sites) statistically independent even under equal seeds.
const (
	saltDrop    = 0x5eed_d60b_0000_0001
	saltWeaken  = 0x5eed_3ea7_0000_0002
	saltReorder = 0x5eed_4e04_0000_0003
	saltDelay   = 0x5eed_de1a_0000_0004
)

// mix is SplitMix64's finalizer: a cheap, well-distributed 64-bit hash
// used for stateless per-event decisions.
func mix(x uint64) uint64 {
	x += 0x9e37_79b9_7f4a_7c15
	x = (x ^ (x >> 30)) * 0xbf58_476d_1ce4_e5b9
	x = (x ^ (x >> 27)) * 0x94d0_49bb_1331_11eb
	return x ^ (x >> 31)
}

func (p *Plan) decide(class Class, salt, key uint64) bool {
	if p == nil || p.spec.Class != class {
		return false
	}
	return mix(p.spec.Seed^salt^key) <= p.threshold
}

// ShouldDropOrdering reports whether the ordering instruction at the
// given warp and pc is no-oped at issue (ClassDropOrdering). Keyed by
// static instruction location so the host's stall classifier, issue
// step and quiescence hint always agree about one instruction.
func (p *Plan) ShouldDropOrdering(warp, pc int) bool {
	return p.decide(ClassDropOrdering, saltDrop, uint64(uint32(warp))<<32|uint64(uint32(pc)))
}

// ShouldWeakenDrain reports whether the OrderLight packet carried by
// request id has its tracker programming weakened (ClassWeakenDrain).
func (p *Plan) ShouldWeakenDrain(id uint64) bool {
	return p.decide(ClassWeakenDrain, saltWeaken, id)
}

// ShouldBypassOrdering reports whether the arbiter may issue request id
// even while its epoch is not yet drained (ClassIllegalReorder).
func (p *Plan) ShouldBypassOrdering(id uint64) bool {
	return p.decide(ClassIllegalReorder, saltReorder, id)
}

// DelayExec reports whether the PIM command carried by request id has
// its functional execution deferred, and by how many memory cycles
// (ClassDelayVisibility).
func (p *Plan) DelayExec(id uint64) (int64, bool) {
	if !p.decide(ClassDelayVisibility, saltDelay, id) {
		return 0, false
	}
	return p.delay, true
}

// Record counts one injection at the given point.
func (p *Plan) Record(pt Point) { p.RecordN(pt, 1) }

// RecordN counts n injections at the given point.
func (p *Plan) RecordN(pt Point, n int64) {
	if p == nil || n <= 0 {
		return
	}
	p.counts[pt].Add(n)
}

// Injections returns the total number of faults actually injected so
// far (decisions that fired on a live event, not mere plan arming).
func (p *Plan) Injections() int64 {
	if p == nil {
		return 0
	}
	var n int64
	for i := range p.counts {
		n += p.counts[i].Load()
	}
	return n
}

// PointCounts is the per-point injection counter vector, indexed by
// Point. It is the plan's only mutable state, exposed for checkpointing.
type PointCounts [pointCount]int64

// Counts returns the plan's injection counters.
func (p *Plan) Counts() PointCounts {
	var out PointCounts
	if p == nil {
		return out
	}
	for i := range p.counts {
		out[i] = p.counts[i].Load()
	}
	return out
}

// SetCounts replaces the plan's injection counters (checkpoint resume).
func (p *Plan) SetCounts(c PointCounts) {
	if p == nil {
		return
	}
	for i := range p.counts {
		p.counts[i].Store(c[i])
	}
}

// Report snapshots the plan's injection accounting.
func (p *Plan) Report() Report {
	r := Report{Class: ClassNone}
	if p == nil {
		return r
	}
	r.Class = p.spec.Class
	r.Seed = p.spec.Seed
	r.Points = [pointCount]int64(p.Counts())
	for _, c := range r.Points {
		r.Injections += c
	}
	return r
}

// Report is the injection accounting of one faulted run.
type Report struct {
	Class      Class
	Seed       uint64
	Injections int64
	Points     [pointCount]int64
}

// String renders the non-zero injection points deterministically, e.g.
// "drop: 12 (fence-dropped 12)".
func (r Report) String() string {
	var pts []string
	for p, n := range r.Points {
		if n > 0 {
			pts = append(pts, fmt.Sprintf("%v %d", Point(p), n))
		}
	}
	if len(pts) == 0 {
		return fmt.Sprintf("%v: 0", r.Class)
	}
	return fmt.Sprintf("%v: %d (%s)", r.Class, r.Injections, strings.Join(pts, ", "))
}

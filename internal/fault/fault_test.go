package fault

import (
	"math"
	"strings"
	"testing"
)

func TestClassStringsRoundTrip(t *testing.T) {
	for _, c := range append(Classes(), ClassNone) {
		got, err := ParseClass(c.String())
		if err != nil {
			t.Fatalf("ParseClass(%q): %v", c.String(), err)
		}
		if got != c {
			t.Errorf("ParseClass(%q) = %v, want %v", c.String(), got, c)
		}
	}
	if _, err := ParseClass("frobnicate"); err == nil {
		t.Error("ParseClass accepted an unknown class name")
	}
	if c, err := ParseClass(" Drop "); err != nil || c != ClassDropOrdering {
		t.Errorf("ParseClass is not case/space insensitive: %v, %v", c, err)
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Spec
		ok   bool
	}{
		{"zero", Spec{}, true},
		{"drop full", Spec{Class: ClassDropOrdering, Rate: 1}, true},
		{"delay default lag", Spec{Class: ClassDelayVisibility}, true},
		{"unknown class", Spec{Class: Class(99)}, false},
		{"rate NaN", Spec{Class: ClassDropOrdering, Rate: math.NaN()}, false},
		{"rate +Inf", Spec{Class: ClassDropOrdering, Rate: math.Inf(1)}, false},
		{"rate -Inf", Spec{Class: ClassDropOrdering, Rate: math.Inf(-1)}, false},
		{"rate > 1", Spec{Class: ClassDropOrdering, Rate: 1.5}, false},
		{"rate <= 0 means full", Spec{Class: ClassDropOrdering, Rate: -3}, true},
	}
	for _, tc := range cases {
		if err := tc.s.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%t", tc.name, err, tc.ok)
		}
	}
}

func TestSpecString(t *testing.T) {
	if got := (Spec{}).String(); got != "none" {
		t.Errorf("zero spec = %q", got)
	}
	s := Spec{Class: ClassDelayVisibility, Seed: 7, Rate: 0.25, Delay: 10}
	if got := s.String(); got != "delay/seed=7/rate=0.25/lag=10" {
		t.Errorf("String() = %q", got)
	}
	s = Spec{Class: ClassDropOrdering, Seed: 3}
	if got := s.String(); got != "drop/seed=3" {
		t.Errorf("String() = %q", got)
	}
}

// Nil plans must answer "no fault" everywhere: hot paths rely on it.
func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if p.ShouldDropOrdering(1, 2) || p.ShouldWeakenDrain(3) || p.ShouldBypassOrdering(4) {
		t.Error("nil plan injected a fault")
	}
	if _, ok := p.DelayExec(5); ok {
		t.Error("nil plan delayed execution")
	}
	p.Record(PointReordered) // must not panic
	p.RecordN(PointOLDropped, 10)
	if p.Injections() != 0 {
		t.Error("nil plan counted injections")
	}
	if r := p.Report(); r.Class != ClassNone || r.Injections != 0 {
		t.Errorf("nil plan report = %+v", r)
	}
	if p.Spec().Active() {
		t.Error("nil plan spec is active")
	}
}

// Decisions must be stateless: the same (seed, class, key) always
// answers the same, regardless of call order or interleaving — that is
// what keeps the dense and skip-ahead engines in lock-step.
func TestDecisionsAreStateless(t *testing.T) {
	a := NewPlan(Spec{Class: ClassIllegalReorder, Seed: 42, Rate: 0.5})
	b := NewPlan(Spec{Class: ClassIllegalReorder, Seed: 42, Rate: 0.5})
	// Consult b in reverse order and twice: answers must still agree.
	for id := uint64(0); id < 2000; id++ {
		rev := 1999 - id
		_ = b.ShouldBypassOrdering(rev)
	}
	for id := uint64(0); id < 2000; id++ {
		if a.ShouldBypassOrdering(id) != b.ShouldBypassOrdering(id) {
			t.Fatalf("decision for id %d depends on history", id)
		}
	}
}

// Full rate must fault every candidate; classes must not cross-fire.
func TestFullRateAndClassIsolation(t *testing.T) {
	p := NewPlan(Spec{Class: ClassDropOrdering, Rate: 1, Seed: 9})
	for warp := 0; warp < 8; warp++ {
		for pc := 0; pc < 64; pc++ {
			if !p.ShouldDropOrdering(warp, pc) {
				t.Fatalf("rate-1 drop plan spared warp %d pc %d", warp, pc)
			}
		}
	}
	if p.ShouldWeakenDrain(1) || p.ShouldBypassOrdering(1) {
		t.Error("drop plan answered for another class")
	}
	if _, ok := p.DelayExec(1); ok {
		t.Error("drop plan delayed execution")
	}
}

// The empirical fault rate must track the requested one.
func TestRateIsApproximatelyHonored(t *testing.T) {
	for _, rate := range []float64{0.1, 0.5, 0.9} {
		p := NewPlan(Spec{Class: ClassWeakenDrain, Seed: 1234, Rate: rate})
		const n = 20000
		hits := 0
		for id := uint64(0); id < n; id++ {
			if p.ShouldWeakenDrain(id) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-rate) > 0.02 {
			t.Errorf("rate %g: empirical %g", rate, got)
		}
	}
}

func TestDelayExecUsesSpecLag(t *testing.T) {
	p := NewPlan(Spec{Class: ClassDelayVisibility, Seed: 5, Rate: 1, Delay: 17})
	d, ok := p.DelayExec(99)
	if !ok || d != 17 {
		t.Fatalf("DelayExec = (%d, %t), want (17, true)", d, ok)
	}
	p = NewPlan(Spec{Class: ClassDelayVisibility, Seed: 5, Rate: 1})
	if d, _ := p.DelayExec(99); d != DefaultDelay {
		t.Fatalf("default lag = %d, want %d", d, DefaultDelay)
	}
}

func TestRecordAndReport(t *testing.T) {
	p := NewPlan(Spec{Class: ClassWeakenDrain, Seed: 2, Rate: 1})
	p.Record(PointOLWeakened)
	p.RecordN(PointOLWeakened, 2)
	p.Record(PointOLDropped)
	p.RecordN(PointReordered, 0)  // ignored
	p.RecordN(PointReordered, -5) // ignored
	if p.Injections() != 4 {
		t.Fatalf("Injections() = %d, want 4", p.Injections())
	}
	r := p.Report()
	if r.Class != ClassWeakenDrain || r.Seed != 2 || r.Injections != 4 {
		t.Fatalf("report = %+v", r)
	}
	if r.Points[PointOLWeakened] != 3 || r.Points[PointOLDropped] != 1 {
		t.Fatalf("points = %v", r.Points)
	}
	s := r.String()
	if !strings.Contains(s, "ol-weakened 3") || !strings.Contains(s, "ol-dropped 1") {
		t.Errorf("Report.String() = %q", s)
	}
	if got := (Report{Class: ClassDropOrdering}).String(); got != "drop: 0" {
		t.Errorf("empty report = %q", got)
	}
}

func TestPointStrings(t *testing.T) {
	want := map[Point]string{
		PointFenceDropped: "fence-dropped",
		PointOLDropped:    "ol-dropped",
		PointOLWeakened:   "ol-weakened",
		PointReordered:    "reordered",
		PointDelayedExec:  "delayed-exec",
	}
	for p, w := range want {
		if p.String() != w {
			t.Errorf("Point(%d) = %q, want %q", p, p.String(), w)
		}
	}
}

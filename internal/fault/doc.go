// Package fault is the deterministic ordering-fault injection
// subsystem: it selectively breaks the machinery the rest of the
// simulator exists to model — ordering primitives, tracker drain
// semantics, FR-FCFS eligibility, PIM write-back visibility — and then
// checks that the machine *notices*.
//
// A Spec (class + seed + rate) describes a campaign point; NewPlan
// materializes it into a Plan the machine threads through its hosts and
// memory controllers. Every injection decision is a stateless hash of
// (seed, class, event key), never a draw from a stream, so decisions
// are identical under the dense and skip-ahead engines, under any
// worker-pool schedule, and across repeated runs.
//
// The differential oracle (Classify) compares the faulted run's final
// memory against an independently replayed golden image and
// cross-checks the machine's own verification verdict, classifying each
// cell as detected (wrong answer, flagged), benign (violation injected,
// race did not materialize), clean (no fault fired) or escape (the
// verifier and the oracle disagree — a simulator bug). Campaigns run
// via the fault-campaign experiment and the olfault command; zero
// escapes is the invariant the whole layer enforces.
package fault

package fault

import (
	"strings"
	"testing"

	"orderlight/internal/dram"
	"orderlight/internal/isa"
	"orderlight/internal/stats"
)

// testStores builds a golden image and a final image differing in
// `wrong` slots.
func testStores(t *testing.T, wrong int) (golden, final *dram.Store) {
	t.Helper()
	golden = dram.NewStore(4)
	for a := 0; a < 8; a++ {
		golden.Write(isa.Addr(a), []int32{1, 2, 3, 4})
	}
	final = golden.Clone()
	for a := 0; a < wrong; a++ {
		final.Write(isa.Addr(a), []int32{9, 9, 9, 9})
	}
	return golden, final
}

func TestClassify(t *testing.T) {
	rep1 := Report{Class: ClassDropOrdering, Injections: 5}
	rep0 := Report{Class: ClassDropOrdering}
	cases := []struct {
		name     string
		wrong    int
		verified bool
		correct  bool
		rep      Report
		want     Outcome
		why      string
	}{
		{"detected", 3, true, false, rep1, OutcomeDetected, "verification caught 3 wrong slots"},
		{"benign", 0, true, true, rep1, OutcomeBenign, "did not materialize"},
		{"clean", 0, true, true, rep0, OutcomeClean, "no fault fired"},
		{"escape: verifier passed wrong image", 2, true, true, rep1, OutcomeEscape, "verifier says correct=true"},
		{"escape: verifier flagged correct image", 0, true, false, rep1, OutcomeEscape, "verifier says correct=false"},
		{"escape: wrong but unverified", 1, false, false, rep1, OutcomeEscape, "unverified run"},
		{"escape: wrong with zero injections", 1, true, false, rep0, OutcomeEscape, "zero injections"},
		{"clean unverified", 0, false, false, rep0, OutcomeClean, "no fault fired"},
	}
	for _, tc := range cases {
		golden, final := testStores(t, tc.wrong)
		st := &stats.Run{Verified: tc.verified, Correct: tc.correct}
		v := Classify(golden, final, st, tc.rep)
		if v.Outcome != tc.want {
			t.Errorf("%s: outcome = %v, want %v (why: %s)", tc.name, v.Outcome, tc.want, v.Why)
			continue
		}
		if v.WrongSlots != tc.wrong {
			t.Errorf("%s: WrongSlots = %d, want %d", tc.name, v.WrongSlots, tc.wrong)
		}
		if !strings.Contains(v.Why, tc.why) {
			t.Errorf("%s: Why = %q, want substring %q", tc.name, v.Why, tc.why)
		}
		if !strings.Contains(v.String(), v.Outcome.String()) {
			t.Errorf("%s: String() = %q missing outcome", tc.name, v.String())
		}
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		OutcomeClean: "clean", OutcomeBenign: "benign",
		OutcomeDetected: "detected", OutcomeEscape: "escape",
	}
	for o, w := range want {
		if o.String() != w {
			t.Errorf("Outcome(%d) = %q, want %q", o, o.String(), w)
		}
	}
}

// Package stats collects the measurements the paper reports: execution
// time, core stall cycles, the two PIM metrics defined in §6 (PIM
// command bandwidth in GigaCommands/s and PIM data bandwidth in GB/s),
// and counts of ordering primitives per PIM instruction (Figure 12).
package stats

import (
	"fmt"
	"sort"
	"strings"

	"orderlight/internal/isa"
	"orderlight/internal/sim"
)

// Run accumulates every counter for one simulation. A single Run is
// shared (by pointer) across all components of the simulated machine;
// the simulator is single-threaded so plain fields suffice.
type Run struct {
	// Time bounds of the measured kernel.
	Start sim.Time
	End   sim.Time

	// Core-side counters.
	FenceCount        int64 // fence primitives executed
	OLCount           int64 // OrderLight packets injected
	FenceStallCycles  int64 // core cycles warps spent stalled on fences
	OLStallCycles     int64 // core cycles warps spent waiting to inject OL packets
	IssueStallCycles  int64 // core cycles warps stalled on pipe backpressure
	CreditStallCycles int64 // core cycles warps stalled awaiting seqno credits (§8.1 baseline)
	WarpInstrs        int64 // warp instructions issued (all kinds)

	// Memory-side counters.
	PIMCommands   int64              // PIM commands issued to the memory module
	HostCommands  int64              // host accesses serviced by DRAM
	CmdsByKind    map[isa.Kind]int64 // per request kind
	RowHits       int64
	RowMisses     int64 // column accesses that needed an ACT first
	ActCmds       int64
	PreCmds       int64
	OLMerges      int64 // copy-and-merge completions across the pipe
	OLFlagBlocked int64 // scheduler decisions deferred by an OrderLight flag
	Refreshes     int64 // all-bank refreshes performed (when enabled)

	// Configuration echo needed for derived metrics.
	BytesPerCommand int // 32 B x BMF

	// Correctness of the functional result (set by the verifier).
	Verified  bool
	Correct   bool
	DiffSlots int
}

// New creates an empty Run for the given bytes-per-command.
func New(bytesPerCommand int) *Run {
	return &Run{CmdsByKind: make(map[isa.Kind]int64), BytesPerCommand: bytesPerCommand}
}

// CountCmd records a request issued to the memory module.
func (r *Run) CountCmd(k isa.Kind) {
	r.CmdsByKind[k]++
	if k.IsPIM() {
		r.PIMCommands++
	} else if k.IsMemAccess() {
		r.HostCommands++
	}
}

// FoldFrom adds src's counters into r and zeroes them in src, leaving
// src ready to accumulate the next interval. The parallel engine gives
// each memory-controller shard a private Run and folds it into the
// machine's Run at barriers; every counter is a plain sum, so folding
// in any order reproduces the sequential totals exactly. Time bounds,
// configuration echo and verifier fields are not counters and are left
// alone.
func (r *Run) FoldFrom(src *Run) {
	r.FenceCount += src.FenceCount
	r.OLCount += src.OLCount
	r.FenceStallCycles += src.FenceStallCycles
	r.OLStallCycles += src.OLStallCycles
	r.IssueStallCycles += src.IssueStallCycles
	r.CreditStallCycles += src.CreditStallCycles
	r.WarpInstrs += src.WarpInstrs
	r.PIMCommands += src.PIMCommands
	r.HostCommands += src.HostCommands
	r.RowHits += src.RowHits
	r.RowMisses += src.RowMisses
	r.ActCmds += src.ActCmds
	r.PreCmds += src.PreCmds
	r.OLMerges += src.OLMerges
	r.OLFlagBlocked += src.OLFlagBlocked
	r.Refreshes += src.Refreshes
	for k, n := range src.CmdsByKind {
		if n != 0 {
			r.CmdsByKind[k] += n
			delete(src.CmdsByKind, k)
		}
	}
	*src = Run{CmdsByKind: src.CmdsByKind, BytesPerCommand: src.BytesPerCommand}
}

// ExecTime returns the simulated duration of the run.
func (r *Run) ExecTime() sim.Time { return r.End - r.Start }

// ExecMS returns the simulated duration in milliseconds.
func (r *Run) ExecMS() float64 { return r.ExecTime().Milliseconds() }

// CommandBW returns the PIM command bandwidth in GigaCommands/s (§6).
func (r *Run) CommandBW() float64 {
	secs := r.ExecTime().Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(r.PIMCommands) / secs / 1e9
}

// DataBW returns the PIM data bandwidth in GB/s: command bandwidth times
// the bytes each command moves inside the memory die (§6).
func (r *Run) DataBW() float64 {
	return r.CommandBW() * float64(r.BytesPerCommand)
}

// Primitives returns the total ordering primitives issued.
func (r *Run) Primitives() int64 { return r.FenceCount + r.OLCount }

// PrimitivesPerPIMInstr returns ordering primitives per PIM instruction
// (the line plotted in Figure 12).
func (r *Run) PrimitivesPerPIMInstr() float64 {
	if r.PIMCommands == 0 {
		return 0
	}
	return float64(r.Primitives()) / float64(r.PIMCommands)
}

// WaitCyclesPerFence returns the average core stall per fence (the line
// plotted in Figure 5).
func (r *Run) WaitCyclesPerFence() float64 {
	if r.FenceCount == 0 {
		return 0
	}
	return float64(r.FenceStallCycles) / float64(r.FenceCount)
}

// StallCycles returns all ordering-related core stall cycles.
func (r *Run) StallCycles() int64 {
	return r.FenceStallCycles + r.OLStallCycles + r.CreditStallCycles
}

// RowHitRate returns the fraction of column accesses that hit an open row.
func (r *Run) RowHitRate() float64 {
	total := r.RowHits + r.RowMisses
	if total == 0 {
		return 0
	}
	return float64(r.RowHits) / float64(total)
}

// String renders a multi-line human-readable report.
func (r *Run) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exec time:            %v (%.3f ms)\n", r.ExecTime(), r.ExecMS())
	fmt.Fprintf(&b, "PIM commands:         %d\n", r.PIMCommands)
	fmt.Fprintf(&b, "command bandwidth:    %.3f GC/s\n", r.CommandBW())
	fmt.Fprintf(&b, "data bandwidth:       %.1f GB/s\n", r.DataBW())
	fmt.Fprintf(&b, "ordering primitives:  %d fence, %d OrderLight (%.4f per PIM instr)\n",
		r.FenceCount, r.OLCount, r.PrimitivesPerPIMInstr())
	fmt.Fprintf(&b, "core stalls:          %d fence cycles (%.1f/fence), %d OL cycles, %d credit, %d backpressure\n",
		r.FenceStallCycles, r.WaitCyclesPerFence(), r.OLStallCycles, r.CreditStallCycles, r.IssueStallCycles)
	fmt.Fprintf(&b, "row hit rate:         %.2f (%d hits / %d misses), %d ACT, %d PRE\n",
		r.RowHitRate(), r.RowHits, r.RowMisses, r.ActCmds, r.PreCmds)
	fmt.Fprintf(&b, "OL merges:            %d; scheduler deferrals under flag: %d\n", r.OLMerges, r.OLFlagBlocked)
	kinds := make([]isa.Kind, 0, len(r.CmdsByKind))
	for k := range r.CmdsByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-12v %d\n", k, r.CmdsByKind[k])
	}
	if r.Verified {
		fmt.Fprintf(&b, "functional result:    correct=%v (%d differing slots)\n", r.Correct, r.DiffSlots)
	}
	return b.String()
}

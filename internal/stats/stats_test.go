package stats

import (
	"strings"
	"testing"

	"orderlight/internal/isa"
	"orderlight/internal/sim"
)

func TestDerivedMetrics(t *testing.T) {
	r := New(512)
	r.Start = 0
	r.End = sim.Time(sim.BaseTickHz) // exactly one second
	for i := 0; i < 2000; i++ {
		r.CountCmd(isa.KindPIMLoad)
	}
	if r.PIMCommands != 2000 {
		t.Fatalf("PIMCommands = %d", r.PIMCommands)
	}
	if got := r.CommandBW(); got != 2000.0/1e9 {
		t.Fatalf("CommandBW = %v", got)
	}
	if got := r.DataBW(); got != 2000.0/1e9*512 {
		t.Fatalf("DataBW = %v", got)
	}
}

func TestPrimitiveMetrics(t *testing.T) {
	r := New(512)
	r.FenceCount = 4
	r.FenceStallCycles = 800
	for i := 0; i < 16; i++ {
		r.CountCmd(isa.KindPIMStore)
	}
	if got := r.WaitCyclesPerFence(); got != 200 {
		t.Fatalf("WaitCyclesPerFence = %v", got)
	}
	if got := r.PrimitivesPerPIMInstr(); got != 0.25 {
		t.Fatalf("PrimitivesPerPIMInstr = %v", got)
	}
	r.OLCount = 4
	if got := r.Primitives(); got != 8 {
		t.Fatalf("Primitives = %d", got)
	}
}

func TestZeroGuards(t *testing.T) {
	r := New(512)
	if r.CommandBW() != 0 || r.DataBW() != 0 || r.WaitCyclesPerFence() != 0 ||
		r.PrimitivesPerPIMInstr() != 0 || r.RowHitRate() != 0 {
		t.Fatal("zero-state derived metrics must be 0, not NaN")
	}
}

func TestHostVsPIMClassification(t *testing.T) {
	r := New(512)
	r.CountCmd(isa.KindHostLoad)
	r.CountCmd(isa.KindPIMExec)
	if r.HostCommands != 1 || r.PIMCommands != 1 {
		t.Fatalf("host=%d pim=%d", r.HostCommands, r.PIMCommands)
	}
	// OrderLight packets are neither.
	r.CountCmd(isa.KindOrderLight)
	if r.HostCommands != 1 || r.PIMCommands != 1 {
		t.Fatal("OrderLight miscounted as a command")
	}
}

func TestRowHitRate(t *testing.T) {
	r := New(512)
	r.RowHits, r.RowMisses = 3, 1
	if got := r.RowHitRate(); got != 0.75 {
		t.Fatalf("RowHitRate = %v", got)
	}
}

func TestEnergyBreakdown(t *testing.T) {
	r := New(512)
	r.End = sim.Time(sim.BaseTickHz / 1000) // 1 ms
	r.ActCmds = 10
	r.Refreshes = 2
	for i := 0; i < 100; i++ {
		r.CountCmd(isa.KindPIMLoad) // reads
	}
	for i := 0; i < 50; i++ {
		r.CountCmd(isa.KindPIMStore) // writes
	}
	r.CountCmd(isa.KindPIMExec) // PIM op, no DRAM access

	p := EnergyParams{
		ActNJ: 2, RdNJ: 1, WrNJ: 1.5, RefNJ: 10, PIMOpNJ: 0.5,
		BackgroundW: 0.1, Channels: 4,
	}
	e := r.EnergyBreakdown(p)
	if e.ActivateNJ != 20 {
		t.Errorf("ActivateNJ = %v, want 20", e.ActivateNJ)
	}
	if e.ReadNJ != 100 {
		t.Errorf("ReadNJ = %v, want 100 (exec op must not count as a read)", e.ReadNJ)
	}
	if e.WriteNJ != 75 {
		t.Errorf("WriteNJ = %v, want 75", e.WriteNJ)
	}
	if e.RefreshNJ != 20 {
		t.Errorf("RefreshNJ = %v, want 20", e.RefreshNJ)
	}
	if e.PIMOpNJ != 151*0.5 {
		t.Errorf("PIMOpNJ = %v, want 75.5 (all 151 PIM commands)", e.PIMOpNJ)
	}
	// Background: 0.1 W x 4 channels x 1 ms = 0.4 mJ = 4e5 nJ.
	if e.BackgroundNJ < 3.99e5 || e.BackgroundNJ > 4.01e5 {
		t.Errorf("BackgroundNJ = %v, want ~4e5", e.BackgroundNJ)
	}
	if got := e.TotalNJ(); got != e.ActivateNJ+e.ReadNJ+e.WriteNJ+e.RefreshNJ+e.PIMOpNJ+e.BackgroundNJ {
		t.Errorf("TotalNJ = %v inconsistent", got)
	}
	if r.EDP(p) != e.TotalNJ()*0.001 {
		t.Errorf("EDP = %v", r.EDP(p))
	}
	if !strings.Contains(e.String(), "uJ") {
		t.Error("Energy.String() missing units")
	}
}

func TestStringReport(t *testing.T) {
	r := New(512)
	r.End = sim.Time(1e9)
	r.CountCmd(isa.KindPIMLoad)
	r.Verified, r.Correct = true, true
	s := r.String()
	for _, sub := range []string{"command bandwidth", "PIM_Load", "correct=true"} {
		if !strings.Contains(s, sub) {
			t.Errorf("report missing %q:\n%s", sub, s)
		}
	}
}

func TestFoldFrom(t *testing.T) {
	dst, src := New(512), New(512)
	dst.Start, dst.End = 10, 1000
	dst.FenceCount, dst.PIMCommands = 3, 100
	dst.CountCmd(isa.KindPIMLoad)
	src.FenceCount, src.OLCount, src.RowHits = 2, 5, 7
	src.WarpInstrs, src.Refreshes = 11, 1
	src.CountCmd(isa.KindPIMLoad)
	src.CountCmd(isa.KindHostLoad)
	src.Start, src.End = 999, 999 // time bounds must NOT fold

	dst.FoldFrom(src)
	if dst.FenceCount != 5 || dst.OLCount != 5 || dst.RowHits != 7 ||
		dst.WarpInstrs != 11 || dst.Refreshes != 1 {
		t.Errorf("folded counters wrong: %+v", dst)
	}
	// CountCmd bumped PIMCommands/HostCommands too: 100+1 (dst) +1 (src).
	if dst.PIMCommands != 102 || dst.HostCommands != 1 {
		t.Errorf("command counts = (%d, %d), want (102, 1)", dst.PIMCommands, dst.HostCommands)
	}
	if dst.CmdsByKind[isa.KindPIMLoad] != 2 || dst.CmdsByKind[isa.KindHostLoad] != 1 {
		t.Errorf("CmdsByKind folded wrong: %v", dst.CmdsByKind)
	}
	if dst.Start != 10 || dst.End != 1000 {
		t.Errorf("time bounds moved: [%v, %v]", dst.Start, dst.End)
	}

	// src is reset and immediately reusable; a second fold adds nothing.
	if src.FenceCount != 0 || src.PIMCommands != 0 || len(src.CmdsByKind) != 0 {
		t.Errorf("src not reset: %+v", src)
	}
	if src.BytesPerCommand != 512 {
		t.Errorf("src lost its configuration echo: %d", src.BytesPerCommand)
	}
	before := *dst
	dst.FoldFrom(src)
	if dst.FenceCount != before.FenceCount || dst.PIMCommands != before.PIMCommands {
		t.Error("folding a reset Run changed the destination")
	}
	src.CountCmd(isa.KindPIMLoad)
	dst.FoldFrom(src)
	if dst.CmdsByKind[isa.KindPIMLoad] != 3 {
		t.Errorf("reused src did not fold: %v", dst.CmdsByKind)
	}
}

package stats

import "fmt"

// EnergyParams are per-event energies and background power for the
// memory system, DRAMPower-style. Defaults live in the config package;
// the values are representative HBM2-class constants — the reproduction
// target is relative energy between ordering disciplines, which is
// dominated by runtime (background) differences, not the absolute nJ.
type EnergyParams struct {
	ActNJ       float64 // one activate+precharge pair
	RdNJ        float64 // one 32 B column read, incl. I/O
	WrNJ        float64 // one 32 B column write, incl. I/O
	RefNJ       float64 // one all-bank refresh
	PIMOpNJ     float64 // one PIM command executed at the unit (ALU + TS)
	BackgroundW float64 // static + peripheral power per channel, watts
	Channels    int
}

// Energy is a per-component energy breakdown in nanojoules.
type Energy struct {
	ActivateNJ   float64
	ReadNJ       float64
	WriteNJ      float64
	RefreshNJ    float64
	PIMOpNJ      float64
	BackgroundNJ float64
}

// TotalNJ sums the breakdown.
func (e Energy) TotalNJ() float64 {
	return e.ActivateNJ + e.ReadNJ + e.WriteNJ + e.RefreshNJ + e.PIMOpNJ + e.BackgroundNJ
}

// TotalUJ returns the total in microjoules.
func (e Energy) TotalUJ() float64 { return e.TotalNJ() / 1e3 }

// String renders the breakdown.
func (e Energy) String() string {
	return fmt.Sprintf("total %.2f uJ (act %.2f, rd %.2f, wr %.2f, ref %.2f, pim %.2f, bg %.2f)",
		e.TotalUJ(), e.ActivateNJ/1e3, e.ReadNJ/1e3, e.WriteNJ/1e3,
		e.RefreshNJ/1e3, e.PIMOpNJ/1e3, e.BackgroundNJ/1e3)
}

// EnergyBreakdown derives the run's memory-system energy from its event
// counters and duration.
func (r *Run) EnergyBreakdown(p EnergyParams) Energy {
	var reads, writes int64
	for k, n := range r.CmdsByKind {
		if !k.IsMemAccess() {
			continue
		}
		if k.IsWrite() {
			writes += n
		} else {
			reads += n
		}
	}
	return Energy{
		ActivateNJ:   float64(r.ActCmds) * p.ActNJ,
		ReadNJ:       float64(reads) * p.RdNJ,
		WriteNJ:      float64(writes) * p.WrNJ,
		RefreshNJ:    float64(r.Refreshes) * p.RefNJ,
		PIMOpNJ:      float64(r.PIMCommands) * p.PIMOpNJ,
		BackgroundNJ: p.BackgroundW * float64(p.Channels) * r.ExecTime().Seconds() * 1e9,
	}
}

// EDP returns the energy-delay product in nJ*s for the run under the
// given parameters — the figure of merit where slow-but-same-traffic
// configurations (fences) lose twice.
func (r *Run) EDP(p EnergyParams) float64 {
	return r.EnergyBreakdown(p).TotalNJ() * r.ExecTime().Seconds()
}

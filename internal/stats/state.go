package stats

import (
	"orderlight/internal/isa"
)

// Snapshot deep-copies the Run for checkpointing.
func (r *Run) Snapshot() Run {
	out := *r
	out.CmdsByKind = make(map[isa.Kind]int64, len(r.CmdsByKind))
	for k, n := range r.CmdsByKind {
		out.CmdsByKind[k] = n
	}
	return out
}

// RestoreFrom overwrites the Run in place with a snapshot, preserving
// the pointer every machine component shares. A nil CmdsByKind (gob
// elides empty maps) restores as an empty map.
func (r *Run) RestoreFrom(s Run) {
	m := make(map[isa.Kind]int64, len(s.CmdsByKind))
	for k, n := range s.CmdsByKind {
		m[k] = n
	}
	*r = s
	r.CmdsByKind = m
}

// SamplerState is a Sampler's checkpointable state: the next due cycle
// and the samples taken so far. Cadence is configuration; the run and
// gauge bindings are re-armed by Machine.SetSampler on resume.
type SamplerState struct {
	Next    int64
	Samples []Sample
}

// State captures the sampler's progress.
func (s *Sampler) State() SamplerState {
	return SamplerState{Next: s.next, Samples: append([]Sample(nil), s.samples...)}
}

// Restore replaces the sampler's progress with the snapshot.
func (s *Sampler) Restore(st SamplerState) {
	s.next = st.Next
	s.samples = append([]Sample(nil), st.Samples...)
}

package stats

import (
	"encoding/json"
	"strings"
	"testing"

	"orderlight/internal/sim"
)

func at(cyc int64) sim.Time { return sim.Time(cyc) * sim.CoreTicks }

// TestSamplerCadence checks samples land exactly on cadence multiples
// and that a late observation (an edge past the due cycle) re-arms on
// the grid instead of drifting.
func TestSamplerCadence(t *testing.T) {
	run := &Run{}
	s := NewSampler(100)
	s.Bind(run, func() int { return 7 })

	if s.NextCycle() != 100 {
		t.Fatalf("NextCycle() = %d, want 100", s.NextCycle())
	}
	run.PIMCommands = 5
	s.ObserveCycle(at(99)) // not due yet
	if len(s.Samples()) != 0 {
		t.Fatal("sampled before the cadence cycle")
	}
	s.ObserveCycle(at(100))
	run.PIMCommands = 11
	s.ObserveCycle(at(250)) // late: cycle 200 was never observed
	if s.NextCycle() != 300 {
		t.Errorf("after a late sample NextCycle() = %d, want 300 (grid-aligned)", s.NextCycle())
	}
	s.ObserveCycle(at(300))
	s.Finish(at(342))

	got := s.Samples()
	wantCycles := []int64{100, 250, 300, 342}
	if len(got) != len(wantCycles) {
		t.Fatalf("recorded %d samples, want %d", len(got), len(wantCycles))
	}
	for i, w := range wantCycles {
		if got[i].Cycle != w {
			t.Errorf("sample %d at cycle %d, want %d", i, got[i].Cycle, w)
		}
	}
	if got[0].PIMCommands != 5 || got[1].PIMCommands != 11 {
		t.Errorf("counter snapshots wrong: %+v", got[:2])
	}
	if got[0].Pending != 7 {
		t.Errorf("gauge not sampled: %+v", got[0])
	}
}

// TestSamplerFinishDedup checks Finish does not duplicate a sample when
// the run ends exactly on a cadence cycle.
func TestSamplerFinishDedup(t *testing.T) {
	s := NewSampler(50)
	s.Bind(&Run{}, nil)
	s.ObserveCycle(at(50))
	s.Finish(at(50))
	if len(s.Samples()) != 1 {
		t.Errorf("endpoint on a cadence cycle recorded %d samples, want 1", len(s.Samples()))
	}
}

// TestSamplerRenders checks both export formats stay consistent with
// the sample schema.
func TestSamplerRenders(t *testing.T) {
	s := NewSampler(10)
	s.Bind(&Run{PIMCommands: 3}, nil)
	s.ObserveCycle(at(10))

	csv := s.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want header + 1 sample:\n%s", len(lines), csv)
	}
	if h, r := len(strings.Split(lines[0], ",")), len(strings.Split(lines[1], ",")); h != r {
		t.Errorf("CSV header has %d columns, row has %d", h, r)
	}

	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back []Sample
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].PIMCommands != 3 {
		t.Errorf("JSON round trip lost data: %+v", back)
	}

	empty := NewSampler(10)
	if b, _ := empty.JSON(); string(b) != "[]" {
		t.Errorf("empty series JSON = %s, want []", b)
	}
}

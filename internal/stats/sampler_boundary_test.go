package stats

import (
	"math"
	"testing"
)

// TestNewSamplerClampsNonPositiveCadence pins the constructor guard: a
// zero or negative cadence degrades to every-cycle sampling instead of
// a sampler that never fires (or divides by zero in the re-arm).
func TestNewSamplerClampsNonPositiveCadence(t *testing.T) {
	for _, every := range []int64{0, -3} {
		s := NewSampler(every)
		if s.Every() != 1 {
			t.Errorf("NewSampler(%d).Every() = %d, want 1", every, s.Every())
		}
		if s.NextCycle() != 1 {
			t.Errorf("NewSampler(%d).NextCycle() = %d, want 1", every, s.NextCycle())
		}
	}
	if s := NewSampler(64); s.Every() != 64 {
		t.Errorf("Every() = %d, want 64", s.Every())
	}
}

// TestSamplerUnboundIsInert: before Bind, due observations and Finish
// must record nothing — the machine arms samplers before the run, but a
// user holding an unbound sampler must not corrupt the series.
func TestSamplerUnboundIsInert(t *testing.T) {
	s := NewSampler(10)
	s.ObserveCycle(at(10))
	s.ObserveCycle(at(20))
	s.Finish(at(25))
	if n := len(s.Samples()); n != 0 {
		t.Fatalf("unbound sampler recorded %d samples", n)
	}
	if s.NextCycle() != 10 {
		t.Errorf("unbound sampler advanced its due cycle to %d", s.NextCycle())
	}
}

// TestSamplerSkipTargetOnCadence emulates the quiescence skip-ahead
// contract at the boundary the PR 3 suite left untested: the engine
// folds NextCycle into its work hint, so after a warp the next fired
// edge lands *exactly* on the sample cycle. Observing at precisely
// NextCycle every time must walk the cadence grid one step per sample —
// no double samples, no elided windows, and a Finish landing on the
// last skip target must dedup instead of appending.
func TestSamplerSkipTargetOnCadence(t *testing.T) {
	const every = 128
	s := NewSampler(every)
	run := &Run{}
	s.Bind(run, nil)

	for i := 1; i <= 5; i++ {
		due := s.NextCycle()
		if want := int64(i) * every; due != want {
			t.Fatalf("skip target %d = cycle %d, want %d", i, due, want)
		}
		run.PIMCommands = int64(i) // distinguish the snapshots
		s.ObserveCycle(at(due))    // the engine warps exactly here
		if got := s.NextCycle(); got != due+every {
			t.Fatalf("after sampling at %d, NextCycle() = %d, want %d", due, got, due+every)
		}
	}
	// The run drains on the final skip target itself: sample cycle ==
	// skip target == end cycle. Finish must not duplicate it.
	s.Finish(at(5 * every))
	got := s.Samples()
	if len(got) != 5 {
		t.Fatalf("recorded %d samples, want 5", len(got))
	}
	for i, sm := range got {
		if sm.Cycle != int64(i+1)*every {
			t.Errorf("sample %d at cycle %d, want %d", i, sm.Cycle, int64(i+1)*every)
		}
		if sm.PIMCommands != int64(i+1) {
			t.Errorf("sample %d snapshot %d, want %d", i, sm.PIMCommands, i+1)
		}
	}
}

// TestSamplerFinishOffGrid: a Finish past the last cadence cycle
// appends the endpoint even when no further sample was due.
func TestSamplerFinishOffGrid(t *testing.T) {
	s := NewSampler(100)
	s.Bind(&Run{}, nil)
	s.ObserveCycle(at(100))
	s.Finish(at(117))
	got := s.Samples()
	if len(got) != 2 || got[1].Cycle != 117 {
		t.Fatalf("endpoint sample missing or misplaced: %+v", got)
	}
}

// TestSamplerCommandBW covers the running-bandwidth column: zero until
// simulated time advances past the run start, then commands per second.
func TestSamplerCommandBW(t *testing.T) {
	run := &Run{Start: 0, PIMCommands: 1000}
	s := NewSampler(1)
	s.Bind(run, nil)
	s.ObserveCycle(at(0) + 1) // one base tick: due (cycle >= 1? no) — not due
	s.ObserveCycle(at(1))
	got := s.Samples()
	if len(got) != 1 {
		t.Fatalf("recorded %d samples, want 1", len(got))
	}
	secs := at(1).Seconds()
	want := 1000 / secs / 1e9
	if math.Abs(got[0].CommandBW-want) > 1e-9 {
		t.Errorf("CommandBW = %g, want %g", got[0].CommandBW, want)
	}

	// A snapshot at the start instant itself has no elapsed time; the
	// column must stay zero rather than divide by zero.
	z := NewSampler(1)
	z.Bind(&Run{Start: at(5), PIMCommands: 7}, nil)
	z.Finish(at(5))
	if zs := z.Samples(); len(zs) != 1 || zs[0].CommandBW != 0 {
		t.Errorf("zero-elapsed snapshot CommandBW = %+v, want 0", zs)
	}
}

package stats

import (
	"encoding/json"
	"fmt"
	"strings"

	"orderlight/internal/sim"
)

// Sample is one snapshot of the shared Run counters at a core-cycle
// boundary. Counters are cumulative since the start of the run, so
// Figure-5-style endpoint numbers become curves: plot the samples
// directly for totals, or difference consecutive samples for rates.
type Sample struct {
	Cycle int64   `json:"cycle"` // core cycle of the snapshot
	USec  float64 `json:"usec"`  // simulated microseconds

	PIMCommands       int64 `json:"pim_commands"`
	HostCommands      int64 `json:"host_commands"`
	FenceCount        int64 `json:"fences"`
	OLCount           int64 `json:"ol_packets"`
	FenceStallCycles  int64 `json:"fence_stall_cycles"`
	OLStallCycles     int64 `json:"ol_stall_cycles"`
	CreditStallCycles int64 `json:"credit_stall_cycles"`
	IssueStallCycles  int64 `json:"issue_stall_cycles"`
	RowHits           int64 `json:"row_hits"`
	RowMisses         int64 `json:"row_misses"`
	OLMerges          int64 `json:"ol_merges"`
	OLFlagBlocked     int64 `json:"ol_flag_blocked"`

	// Pending is a gauge, not a counter: requests in flight anywhere in
	// the memory system (interconnect, L2 slices, L2-to-DRAM pipes,
	// controllers, acknowledgment path) at the snapshot instant.
	Pending int `json:"pending"`

	// CommandBW is the cumulative PIM command bandwidth in GC/s from
	// run start to the snapshot (the §6 metric as a running value).
	CommandBW float64 `json:"command_bw_gcs"`
}

// Sampler snapshots a Run's counters every N simulated core cycles.
// Create one with NewSampler, arm it with Machine.SetSampler (which
// binds the run and the queue-depth gauge), and read the time-series
// after the run. Sampling cadence is exact under the quiescence
// skip-ahead engine: the machine's quiescence hints treat a due sample
// as work, so sample cycles are never elided and the series is
// byte-identical to a dense-engine run.
type Sampler struct {
	every   int64
	next    int64
	run     *Run
	gauge   func() int
	samples []Sample
}

// NewSampler creates a sampler with the given cadence in core cycles.
func NewSampler(everyCycles int64) *Sampler {
	if everyCycles <= 0 {
		everyCycles = 1
	}
	return &Sampler{every: everyCycles, next: everyCycles}
}

// Every returns the cadence in core cycles.
func (s *Sampler) Every() int64 { return s.every }

// Bind attaches the run whose counters are sampled and an optional
// gauge for the Pending column. The machine calls this; user code
// normally never does.
func (s *Sampler) Bind(run *Run, gauge func() int) {
	s.run = run
	s.gauge = gauge
}

// NextCycle returns the next core cycle at which a sample is due. The
// machine folds this into its quiescence hint so skip-ahead never warps
// past a sample point.
func (s *Sampler) NextCycle() int64 { return s.next }

// ObserveCycle takes a sample if one is due at the given instant. The
// machine calls it once per fired core edge; cadence stays exact
// because the machine also wakes itself at NextCycle.
func (s *Sampler) ObserveCycle(now sim.Time) {
	cyc := now.CoreCycles()
	if cyc < s.next || s.run == nil {
		return
	}
	s.take(cyc, now)
	// Re-arm at the next multiple of the cadence after cyc, so a late
	// observation (possible only in externally-driven creep phases)
	// cannot double-sample a window.
	s.next = (cyc/s.every + 1) * s.every
}

// Finish records one final sample at the run's end instant so the
// series always reaches the endpoint the tables report. The machine
// calls it after the engine drains.
func (s *Sampler) Finish(now sim.Time) {
	if s.run == nil {
		return
	}
	cyc := now.CoreCycles()
	if n := len(s.samples); n > 0 && s.samples[n-1].Cycle == cyc {
		return
	}
	s.take(cyc, now)
}

func (s *Sampler) take(cyc int64, now sim.Time) {
	r := s.run
	sm := Sample{
		Cycle:             cyc,
		USec:              now.Seconds() * 1e6,
		PIMCommands:       r.PIMCommands,
		HostCommands:      r.HostCommands,
		FenceCount:        r.FenceCount,
		OLCount:           r.OLCount,
		FenceStallCycles:  r.FenceStallCycles,
		OLStallCycles:     r.OLStallCycles,
		CreditStallCycles: r.CreditStallCycles,
		IssueStallCycles:  r.IssueStallCycles,
		RowHits:           r.RowHits,
		RowMisses:         r.RowMisses,
		OLMerges:          r.OLMerges,
		OLFlagBlocked:     r.OLFlagBlocked,
	}
	if s.gauge != nil {
		sm.Pending = s.gauge()
	}
	if secs := (now - r.Start).Seconds(); secs > 0 {
		sm.CommandBW = float64(r.PIMCommands) / secs / 1e9
	}
	s.samples = append(s.samples, sm)
}

// Samples returns the recorded time-series in cycle order.
func (s *Sampler) Samples() []Sample { return s.samples }

// CSV renders the series with a header row, one sample per line.
func (s *Sampler) CSV() string {
	var b strings.Builder
	b.WriteString("cycle,usec,pim_commands,host_commands,fences,ol_packets," +
		"fence_stall_cycles,ol_stall_cycles,credit_stall_cycles,issue_stall_cycles," +
		"row_hits,row_misses,ol_merges,ol_flag_blocked,pending,command_bw_gcs\n")
	for _, x := range s.samples {
		fmt.Fprintf(&b, "%d,%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f\n",
			x.Cycle, x.USec, x.PIMCommands, x.HostCommands, x.FenceCount, x.OLCount,
			x.FenceStallCycles, x.OLStallCycles, x.CreditStallCycles, x.IssueStallCycles,
			x.RowHits, x.RowMisses, x.OLMerges, x.OLFlagBlocked, x.Pending, x.CommandBW)
	}
	return b.String()
}

// JSON renders the series as a JSON array.
func (s *Sampler) JSON() ([]byte, error) {
	if s.samples == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(s.samples)
}

package core

import (
	"testing"
	"testing/quick"

	"orderlight/internal/isa"
	"orderlight/internal/sim"
)

func mkReq(id uint64, kind isa.Kind, bank int) isa.Request {
	return isa.Request{ID: id, Kind: kind, Bank: bank}
}

func mkOL(id uint64, group uint8) isa.Request {
	return isa.Request{
		ID:   id,
		Kind: isa.KindOrderLight,
		OL:   isa.OLPacket{PktID: isa.PktIDOrderLight, Group: group},
	}
}

func evenOddDiverge(nPaths int) *Diverge {
	return &Diverge{
		NPaths: nPaths,
		Route:  func(r isa.Request) int { return r.Bank % nPaths },
		GroupPaths: func(int) []int {
			all := make([]int, nPaths)
			for i := range all {
				all[i] = i
			}
			return all
		},
	}
}

func TestDivergeTargetsNormalRequest(t *testing.T) {
	d := evenOddDiverge(2)
	got := d.Targets(mkReq(1, isa.KindPIMLoad, 3))
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Targets = %v, want [1]", got)
	}
}

func TestDivergeTargetsOrderLightAllPaths(t *testing.T) {
	d := evenOddDiverge(4)
	got := d.Targets(mkOL(9, 0))
	if len(got) != 4 {
		t.Fatalf("Targets = %v, want all 4 paths", got)
	}
}

func TestDivergeTargetsGroupSubset(t *testing.T) {
	// A memory-group served by only two of four sub-partitions must copy
	// the packet to exactly those two (the paper's example in §5.3.2).
	d := &Diverge{
		NPaths: 4,
		Route:  func(r isa.Request) int { return r.Bank % 4 },
		GroupPaths: func(g int) []int {
			if g == 1 {
				return []int{1, 3}
			}
			return []int{0, 1, 2, 3}
		},
	}
	got := d.Targets(mkOL(5, 1))
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Targets = %v, want [1 3]", got)
	}
}

func TestDivergeTargetsExtraGroupsUnion(t *testing.T) {
	d := &Diverge{
		NPaths: 4,
		Route:  func(r isa.Request) int { return 0 },
		GroupPaths: func(g int) []int {
			switch g {
			case 0:
				return []int{0}
			case 1:
				return []int{1}
			default:
				return []int{2, 3}
			}
		},
	}
	r := mkOL(7, 0)
	r.OL.ExtraGroups = []uint8{1}
	got := d.Targets(r)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Targets = %v, want [0 1]", got)
	}
}

func TestConvergeMergesAllCopies(t *testing.T) {
	c := NewConverge(2, 0)
	// Path 0: [load1, OLcopy] ; Path 1: [OLcopy].
	c.Push(0, mkReq(1, isa.KindPIMLoad, 0))
	ol := Replicate(mkOL(100, 0), 2)
	c.Push(0, ol)
	c.Push(1, ol)

	// The OL cannot merge yet: path 0's copy is behind load1.
	got, ok := c.Pop()
	if !ok || got.ID != 1 {
		t.Fatalf("Pop = %v,%v, want load1", got, ok)
	}
	// Now both copies are at heads: merge must happen before anything else.
	got, ok = c.Pop()
	if !ok || got.Kind != isa.KindOrderLight || got.ID != 100 {
		t.Fatalf("Pop = %v,%v, want merged OL 100", got, ok)
	}
	if got.Copies != 0 {
		t.Fatalf("merged packet Copies = %d, want 0", got.Copies)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d after merge, want 0", c.Len())
	}
}

func TestConvergeBlocksYoungerRequestsBehindCopy(t *testing.T) {
	c := NewConverge(2, 0)
	ol := Replicate(mkOL(50, 0), 2)
	// Path 0: [OLcopy, load2]; Path 1: [load3, OLcopy].
	c.Push(0, ol)
	c.Push(0, mkReq(2, isa.KindPIMLoad, 0))
	c.Push(1, mkReq(3, isa.KindPIMLoad, 1))
	c.Push(1, ol)

	// load3 is ahead of its copy: it may proceed. load2 is behind a
	// waiting copy on path 0 and must NOT overtake the packet.
	got, ok := c.Pop()
	if !ok || got.ID != 3 {
		t.Fatalf("first Pop = %v,%v, want load3", got, ok)
	}
	got, ok = c.Pop()
	if !ok || got.Kind != isa.KindOrderLight {
		t.Fatalf("second Pop = %v,%v, want merged OL", got, ok)
	}
	got, ok = c.Pop()
	if !ok || got.ID != 2 {
		t.Fatalf("third Pop = %v,%v, want load2", got, ok)
	}
}

func TestConvergeSingleCopyPassesThrough(t *testing.T) {
	// Copies == 1: divergence decided only one path was relevant.
	c := NewConverge(2, 0)
	c.Push(1, Replicate(mkOL(8, 2), 1))
	got, ok := c.Pop()
	if !ok || got.Kind != isa.KindOrderLight || got.ID != 8 {
		t.Fatalf("Pop = %v,%v, want OL 8", got, ok)
	}
}

func TestConvergeEmptyPop(t *testing.T) {
	c := NewConverge(2, 0)
	if _, ok := c.Pop(); ok {
		t.Fatal("Pop on empty converge reported ok")
	}
}

func TestConvergeRoundRobinFairness(t *testing.T) {
	c := NewConverge(2, 0)
	for i := 0; i < 3; i++ {
		c.Push(0, mkReq(uint64(10+i), isa.KindPIMLoad, 0))
		c.Push(1, mkReq(uint64(20+i), isa.KindPIMLoad, 1))
	}
	var order []uint64
	for {
		r, ok := c.Pop()
		if !ok {
			break
		}
		order = append(order, r.ID)
	}
	// Round-robin alternates paths: 10,20,11,21,12,22.
	want := []uint64{10, 20, 11, 21, 12, 22}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("drain order = %v, want %v", order, want)
		}
	}
}

// TestConvergeConservationProperty: every pushed normal request emerges
// exactly once; every replicated packet emerges exactly once (merged);
// per-path relative order of normal requests is preserved; and no
// request pushed after a copy on its path ever emerges before the merged
// packet.
func TestConvergeConservationProperty(t *testing.T) {
	f := func(plan []uint8, seed uint64) bool {
		const nPaths = 3
		c := NewConverge(nPaths, 0)
		rng := sim.NewRand(seed)
		type pushRec struct {
			id      uint64
			path    int
			afterOL map[uint64]bool
		}
		var (
			id        uint64 = 1
			pushes    []pushRec
			olPending = map[uint64]bool{} // packets pushed, not yet seen merged
			olOrderBy = map[uint64]map[uint64]bool{}
			// olSeenBefore[r] = set of OL ids that were pushed on r's path
			// before r.
			perPathOLs = make([]map[uint64]bool, nPaths)
		)
		for i := range perPathOLs {
			perPathOLs[i] = map[uint64]bool{}
		}
		copySet := func(m map[uint64]bool) map[uint64]bool {
			out := make(map[uint64]bool, len(m))
			for k := range m {
				out[k] = true
			}
			return out
		}
		for _, op := range plan {
			if op%4 == 0 { // push an OrderLight on a random subset of paths
				paths := []int{}
				for p := 0; p < nPaths; p++ {
					if rng.Bool() {
						paths = append(paths, p)
					}
				}
				if len(paths) == 0 {
					paths = []int{rng.Intn(nPaths)}
				}
				ol := Replicate(mkOL(id, 0), len(paths))
				for _, p := range paths {
					c.Push(p, ol)
					perPathOLs[p][id] = true
				}
				olPending[id] = true
				olOrderBy[id] = map[uint64]bool{}
				id++
			} else { // push a normal request on one path
				p := int(op) % nPaths
				r := mkReq(id, isa.KindPIMLoad, p)
				c.Push(p, r)
				pushes = append(pushes, pushRec{id: id, path: p, afterOL: copySet(perPathOLs[p])})
				id++
			}
		}
		// Drain fully.
		seen := map[uint64]int{}
		mergedAt := map[uint64]int{}
		var drained []uint64
		for {
			r, ok := c.Pop()
			if !ok {
				break
			}
			seen[r.ID]++
			if r.Kind == isa.KindOrderLight {
				mergedAt[r.ID] = len(drained)
			}
			drained = append(drained, r.ID)
		}
		if c.Len() != 0 {
			return false // something got stuck
		}
		// Conservation: each id exactly once.
		for _, p := range pushes {
			if seen[p.id] != 1 {
				return false
			}
		}
		for olID := range olPending {
			if seen[olID] != 1 {
				return false
			}
		}
		// Barrier: a request pushed after OL x on its path emerges after
		// the merged x.
		pos := map[uint64]int{}
		for i, idv := range drained {
			pos[idv] = i
		}
		for _, p := range pushes {
			for olID := range p.afterOL {
				if pos[p.id] < mergedAt[olID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicate(t *testing.T) {
	r := mkOL(1, 0)
	r2 := Replicate(r, 3)
	if r2.Copies != 3 || r.Copies != 0 {
		t.Fatal("Replicate must return a stamped copy without mutating the original")
	}
}

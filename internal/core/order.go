// Package core implements the paper's primary contribution: the
// OrderLight memory-centric ordering machinery of §5.
//
// It contains the three hardware structures the paper adds:
//
//   - Tracker: the memory-controller scheduler augmentation of §5.3.2 —
//     a request counter and an OrderLight flag per PIM memory-group,
//     generalized to a queue of epochs so that several in-flight
//     OrderLight packets never stall packet acceptance.
//   - CopyMerge: the copy-and-merge finite state machine of Figure 9 that
//     carries an OrderLight packet across divergent memory-pipe paths.
//   - CollectorCounter: the per-(channel, group) operand-collector
//     counters of §5.3.1 that tell the core when an OrderLight packet may
//     be injected behind all older PIM requests.
//   - FenceTracker: the core-centric baseline — outstanding-request
//     accounting that a traditional fence spins on (§4.3).
package core

import "fmt"

// Epoch identifies the ordering interval a request belongs to within one
// (channel, memory-group). Epoch e must fully issue to DRAM before any
// request of epoch e+1 may be scheduled.
type Epoch int

// Tracker enforces OrderLight semantics at one memory controller. The
// paper's formulation keeps, per memory-group, a counter of requests
// that entered the scheduler before the OrderLight packet and a flag
// that blocks younger requests while the counter drains. Tracker keeps a
// small FIFO of such counters (one per OrderLight packet received), which
// degenerates to exactly the paper's flag+counter when at most one
// packet is buffered.
type Tracker struct {
	groups []trackerGroup
	// LastPktNum records the most recent OrderLight packet number seen
	// per group, for the sanity checks / statistics the packet-number
	// field exists for (§5.3.1). -1 until the first packet arrives.
	lastPktNum []int64
}

type trackerGroup struct {
	// epochs[i] is the number of not-yet-issued requests in the i-th
	// oldest ordering epoch. The final element is the currently open
	// epoch; earlier elements are epochs closed by an OrderLight packet.
	epochs []int
	// base is the Epoch id of epochs[0].
	base Epoch
}

// NewTracker creates a tracker for nGroups memory-groups.
func NewTracker(nGroups int) *Tracker {
	t := &Tracker{
		groups:     make([]trackerGroup, nGroups),
		lastPktNum: make([]int64, nGroups),
	}
	for g := range t.groups {
		t.groups[g].epochs = []int{0}
		t.lastPktNum[g] = -1
	}
	return t
}

// Arrive registers a request for the given group with the scheduler and
// returns the epoch the request belongs to. Must be called once per
// request, in the order requests enter the scheduler's transaction queue
// (the pipe preserves that order).
func (t *Tracker) Arrive(group int) Epoch {
	g := &t.groups[group]
	g.epochs[len(g.epochs)-1]++
	return g.base + Epoch(len(g.epochs)-1)
}

// OrderLight records an OrderLight packet for the group: the current
// epoch closes and a new one opens. Requests arriving later belong to
// the new epoch and will not be scheduled until the closed epochs drain.
// pktNum is the packet's 32-bit sequence number; OrderLight returns an
// error if it is not strictly increasing (the sanity check the field is
// for). The ordering state is updated regardless.
func (t *Tracker) OrderLight(group int, pktNum uint32) error {
	g := &t.groups[group]
	g.epochs = append(g.epochs, 0)
	// A packet over an already-drained epoch imposes no constraint: the
	// paper's counter is already zero, so the flag clears immediately.
	for len(g.epochs) > 1 && g.epochs[0] == 0 {
		g.epochs = g.epochs[1:]
		g.base++
	}
	var err error
	if last := t.lastPktNum[group]; last >= 0 && int64(pktNum) <= last {
		err = fmt.Errorf("core: OrderLight packet number %d not increasing (last %d) in group %d",
			pktNum, last, group)
	}
	t.lastPktNum[group] = int64(pktNum)
	return err
}

// CanIssue reports whether a request of the given epoch may be scheduled
// now: only requests of the oldest non-drained epoch are eligible. This
// is the paper's "any subsequent request to that memory-group is not
// scheduled until the flag is unset" check.
func (t *Tracker) CanIssue(group int, e Epoch) bool {
	g := &t.groups[group]
	return e == g.base
}

// Issued tells the tracker a request of the given epoch was scheduled
// (issued toward DRAM). When the oldest epoch drains and was closed by
// an OrderLight packet, the next epoch becomes eligible — the paper's
// "the flag is unset when the counter ... is decremented to zero".
func (t *Tracker) Issued(group int, e Epoch) {
	g := &t.groups[group]
	idx := int(e - g.base)
	if idx < 0 || idx >= len(g.epochs) {
		panic(fmt.Sprintf("core: Issued with unknown epoch %d (base %d, %d epochs)", e, g.base, len(g.epochs)))
	}
	if g.epochs[idx] <= 0 {
		panic(fmt.Sprintf("core: Issued on drained epoch %d of group %d", e, group))
	}
	g.epochs[idx]--
	// Retire fully drained closed epochs from the front.
	for len(g.epochs) > 1 && g.epochs[0] == 0 {
		g.epochs = g.epochs[1:]
		g.base++
	}
}

// Blocked reports whether the group currently has an OrderLight
// constraint pending (i.e. at least one closed epoch not yet drained) —
// the paper's OrderLight flag, for statistics.
func (t *Tracker) Blocked(group int) bool {
	return len(t.groups[group].epochs) > 1
}

// Outstanding returns the total number of registered-but-unissued
// requests in the group across all epochs.
func (t *Tracker) Outstanding(group int) int {
	n := 0
	for _, c := range t.groups[group].epochs {
		n += c
	}
	return n
}

// PendingEpochs returns how many ordering epochs are live for the group
// (1 = unconstrained).
func (t *Tracker) PendingEpochs(group int) int {
	return len(t.groups[group].epochs)
}

package core

import (
	"fmt"

	"orderlight/internal/isa"
	"orderlight/internal/sim"
)

// Diverge describes a divergence point in the memory pipe (Figure 9):
// normal requests are routed to exactly one sub-path, while an
// OrderLight packet is replicated onto every sub-path that can carry
// requests of its memory-group(s).
type Diverge struct {
	// NPaths is the number of sub-paths leaving the divergence point.
	NPaths int
	// Route maps a normal request to its sub-path.
	Route func(isa.Request) int
	// GroupPaths lists the sub-paths that may carry requests of a given
	// memory-group. The divergence FSM uses the packet's channel and
	// memory-group IDs to pick the relevant sub-paths (§5.3.2).
	// Implementations should return a precomputed slice: Targets is on
	// the per-cycle CanAccept path and must not allocate.
	GroupPaths func(group int) []int

	seen []bool // scratch for Targets, sized NPaths on first use
	out  []int  // scratch result buffer reused across Targets calls
}

// Targets returns the sub-paths a request must be placed on: one path
// for a normal request, the union of relevant paths for an OrderLight
// packet (deduplicated, ascending by construction of GroupPaths). The
// returned slice is scratch owned by the Diverge: it is valid only
// until the next Targets call.
func (d *Diverge) Targets(r isa.Request) []int {
	if d.out == nil {
		d.out = make([]int, 0, d.NPaths)
		d.seen = make([]bool, d.NPaths)
	}
	d.out = d.out[:0]
	if r.Kind != isa.KindOrderLight {
		return append(d.out, d.Route(r))
	}
	for i := range d.seen {
		d.seen[i] = false
	}
	// Walk the packet's base group then the extension fields directly:
	// OLPacket.Groups() would allocate, and path-level dedup via seen[]
	// already subsumes its group-level dedup.
	d.addGroupPaths(int(r.OL.Group))
	for _, g := range r.OL.ExtraGroups {
		d.addGroupPaths(int(g))
	}
	if len(d.out) == 0 {
		// A packet whose groups map nowhere still needs one path so it
		// is not silently dropped.
		d.out = append(d.out, 0)
	}
	return d.out
}

func (d *Diverge) addGroupPaths(g int) {
	for _, p := range d.GroupPaths(g) {
		if !d.seen[p] {
			d.seen[p] = true
			d.out = append(d.out, p)
		}
	}
}

// Replicate stamps the request with the number of copies the convergence
// FSM must collect. Normal requests keep Copies == 0.
func Replicate(r isa.Request, copies int) isa.Request {
	r.Copies = copies
	return r
}

// Converge is the convergence-point FSM of Figure 9. It owns the
// sub-path FIFOs between a Diverge and the downstream pipe stage.
// Normal requests drain from sub-path heads in round-robin order; an
// OrderLight copy blocks its sub-path until every copy of the same
// packet has reached the head of its own sub-path, at which point all
// copies retire and a single merged packet is emitted. Requests behind a
// copy therefore cannot overtake the packet, exactly as §5.3.2 requires.
type Converge struct {
	paths []*sim.Queue[isa.Request]
	rr    int
}

// NewConverge creates a convergence point with nPaths sub-path FIFOs of
// the given capacity each (0 = unbounded).
func NewConverge(nPaths, capacity int) *Converge {
	c := &Converge{paths: make([]*sim.Queue[isa.Request], nPaths)}
	for i := range c.paths {
		c.paths[i] = sim.NewQueue[isa.Request](capacity)
	}
	return c
}

// NPaths returns the number of sub-paths.
func (c *Converge) NPaths() int { return len(c.paths) }

// CanPush reports whether sub-path i has room.
func (c *Converge) CanPush(i int) bool { return c.paths[i].CanPush() }

// Push enqueues a request (or OrderLight copy) on sub-path i.
func (c *Converge) Push(i int, r isa.Request) { c.paths[i].Push(r) }

// Len returns the total number of queued entries across sub-paths.
func (c *Converge) Len() int {
	n := 0
	for _, p := range c.paths {
		n += p.Len()
	}
	return n
}

// Pop emits the next request from the convergence point, or ok=false if
// nothing can proceed this cycle. At most one request is emitted per
// call, modeling a single downstream slot per cycle.
func (c *Converge) Pop() (isa.Request, bool) {
	// First, try to complete a merge: find an OrderLight copy at a head
	// whose sibling copies are all at their heads too.
	for i := range c.paths {
		h, ok := c.paths[i].Peek()
		if !ok || h.Kind != isa.KindOrderLight {
			continue
		}
		if c.mergeReady(h) {
			c.popCopies(h.ID)
			return Replicate(h, 0), true
		}
	}
	// Otherwise drain a normal request, round-robin across sub-paths.
	// Sub-paths headed by a waiting OrderLight copy are blocked.
	for k := 0; k < len(c.paths); k++ {
		i := (c.rr + k) % len(c.paths)
		h, ok := c.paths[i].Peek()
		if !ok || h.Kind == isa.KindOrderLight {
			continue
		}
		c.paths[i].Pop()
		c.rr = (i + 1) % len(c.paths)
		return h, true
	}
	return isa.Request{}, false
}

// PopBest behaves like Pop but, when several sub-path heads are
// eligible, picks the one the comparison function prefers instead of
// round-robin. Used by the sequence-number baseline, whose memory
// controller must drain requests in warp sequence order.
func (c *Converge) PopBest(better func(a, b isa.Request) bool) (isa.Request, bool) {
	for i := range c.paths {
		h, ok := c.paths[i].Peek()
		if !ok || h.Kind != isa.KindOrderLight {
			continue
		}
		if c.mergeReady(h) {
			c.popCopies(h.ID)
			return Replicate(h, 0), true
		}
	}
	best := -1
	var bestReq isa.Request
	for i := range c.paths {
		h, ok := c.paths[i].Peek()
		if !ok || h.Kind == isa.KindOrderLight {
			continue
		}
		if best < 0 || better(h, bestReq) {
			best, bestReq = i, h
		}
	}
	if best < 0 {
		return isa.Request{}, false
	}
	c.paths[best].Pop()
	return bestReq, true
}

// mergeReady reports whether every copy of packet h is at the head of
// some sub-path.
func (c *Converge) mergeReady(h isa.Request) bool {
	if h.Copies <= 0 {
		return true // single-path packet: nothing to merge
	}
	n := 0
	for _, p := range c.paths {
		if hd, ok := p.Peek(); ok && hd.Kind == isa.KindOrderLight && hd.ID == h.ID {
			n++
		}
	}
	if n > h.Copies {
		panic(fmt.Sprintf("core: %d copies of packet %d at heads, expected at most %d", n, h.ID, h.Copies))
	}
	return n == h.Copies
}

// popCopies removes every head-of-path copy of the packet.
func (c *Converge) popCopies(id uint64) {
	for _, p := range c.paths {
		if hd, ok := p.Peek(); ok && hd.Kind == isa.KindOrderLight && hd.ID == id {
			p.Pop()
		}
	}
}

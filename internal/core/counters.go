package core

import "fmt"

// CollectorCounter implements the operand-collector augmentation of
// §5.3.1: one counter per (memory-channel, memory-group) tracking PIM
// requests currently resident in the operand collector. An OrderLight
// instruction may inject its packet only when the counter for its
// channel and group reads zero — guaranteeing the packet enters the
// memory pipe behind every older PIM request, without the full pipeline
// drain a fence performs.
// A CollectorCounter may carry a hardware budget (§5.3.1: "to reduce
// the number of counters, an implementation may limit the number of
// channels/memory-groups that can be controlled per SM"): only budget
// (channel, group) pairs are watched precisely at a time; a counter is
// reclaimed when its pair drains, and an OrderLight instruction for an
// unwatched pair falls back to the conservative condition that the
// whole collector is empty.
type CollectorCounter struct {
	channels int
	groups   int
	counts   []int

	budget int          // 0 = one counter per pair (unlimited)
	tagged map[int]bool // pair indices currently holding a counter
	total  int          // outstanding across all pairs
}

// NewCollectorCounter creates counters for channels x groups, one per
// pair (no hardware budget).
func NewCollectorCounter(channels, groups int) *CollectorCounter {
	return NewCollectorCounterBudget(channels, groups, 0)
}

// NewCollectorCounterBudget creates counters with at most budget
// concurrently watched (channel, group) pairs; budget <= 0 means one
// counter per pair.
func NewCollectorCounterBudget(channels, groups, budget int) *CollectorCounter {
	return &CollectorCounter{
		channels: channels,
		groups:   groups,
		counts:   make([]int, channels*groups),
		budget:   budget,
		tagged:   make(map[int]bool),
	}
}

func (c *CollectorCounter) idx(ch, g int) int {
	if ch < 0 || ch >= c.channels || g < 0 || g >= c.groups {
		panic(fmt.Sprintf("core: collector counter index (%d,%d) out of range %dx%d", ch, g, c.channels, c.groups))
	}
	return ch*c.groups + g
}

// Alloc records a PIM request entering the operand collector. Under a
// budget, the pair grabs a free counter if one exists.
func (c *CollectorCounter) Alloc(ch, g int) {
	i := c.idx(ch, g)
	if c.budget > 0 && !c.tagged[i] && len(c.tagged) < c.budget {
		c.tagged[i] = true
	}
	c.counts[i]++
	c.total++
}

// Release records a PIM request leaving the operand collector (issued to
// the LDST queue). A watched pair that drains returns its counter to
// the free pool.
func (c *CollectorCounter) Release(ch, g int) {
	i := c.idx(ch, g)
	if c.counts[i] == 0 {
		panic(fmt.Sprintf("core: collector counter (%d,%d) released below zero", ch, g))
	}
	c.counts[i]--
	c.total--
	if c.budget > 0 && c.counts[i] == 0 {
		delete(c.tagged, i)
	}
}

// Zero reports whether an OrderLight packet for (ch, g) may inject: the
// pair's counter reads zero if the hardware watches it, otherwise the
// conservative whole-collector-empty condition applies.
func (c *CollectorCounter) Zero(ch, g int) bool {
	i := c.idx(ch, g)
	if c.budget <= 0 || c.tagged[i] {
		return c.counts[i] == 0
	}
	if c.counts[i] == 0 {
		return true // nothing outstanding for the pair at all
	}
	return c.total == 0
}

// Count returns the current counter value, for statistics.
func (c *CollectorCounter) Count(ch, g int) int { return c.counts[c.idx(ch, g)] }

// FenceTracker implements the baseline's core-centric bookkeeping
// (§4.3): each warp counts PIM requests it has issued into the memory
// pipe that have not yet been acknowledged as issued-to-DRAM. A fence
// instruction stalls its warp until the count reads zero. The large
// per-fence cost measured in Figure 5 is exactly the round trip this
// counter forces the core to wait for.
type FenceTracker struct {
	outstanding []int
}

// NewFenceTracker creates a tracker for nWarps warps.
func NewFenceTracker(nWarps int) *FenceTracker {
	return &FenceTracker{outstanding: make([]int, nWarps)}
}

// Issued records a PIM request leaving warp w toward memory.
func (f *FenceTracker) Issued(w int) { f.outstanding[w]++ }

// Acked records the acknowledgment for one of warp w's requests.
func (f *FenceTracker) Acked(w int) {
	if f.outstanding[w] == 0 {
		panic(fmt.Sprintf("core: fence tracker for warp %d acked below zero", w))
	}
	f.outstanding[w]--
}

// Drained reports whether warp w has no outstanding PIM requests — the
// condition releasing a fence.
func (f *FenceTracker) Drained(w int) bool { return f.outstanding[w] == 0 }

// Outstanding returns warp w's in-flight count, for statistics.
func (f *FenceTracker) Outstanding(w int) int { return f.outstanding[w] }

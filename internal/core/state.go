package core

import (
	"fmt"
	"sort"

	"orderlight/internal/isa"
)

// This file is the core layer's checkpoint surface: exported snapshot
// structs plus State/Restore pairs for the Tracker, CollectorCounter,
// FenceTracker and Converge FSMs. Snapshots deep-copy; Restore methods
// validate structural compatibility against the component they restore
// onto and rebuild derived state (totals, budget tags) from scratch.

// TrackerGroupState is one memory-group's epoch queue.
type TrackerGroupState struct {
	Epochs []int
	Base   int
}

// TrackerState is the Tracker's checkpointable state.
type TrackerState struct {
	Groups     []TrackerGroupState
	LastPktNum []int64
}

// State captures the tracker's epoch queues and packet-number history.
func (t *Tracker) State() TrackerState {
	s := TrackerState{
		Groups:     make([]TrackerGroupState, len(t.groups)),
		LastPktNum: append([]int64(nil), t.lastPktNum...),
	}
	for i, g := range t.groups {
		s.Groups[i] = TrackerGroupState{Epochs: append([]int(nil), g.epochs...), Base: int(g.base)}
	}
	return s
}

// Restore replaces the tracker's state with the snapshot.
func (t *Tracker) Restore(s TrackerState) error {
	if len(s.Groups) != len(t.groups) || len(s.LastPktNum) != len(t.lastPktNum) {
		return fmt.Errorf("core: snapshot has %d tracker groups, tracker has %d", len(s.Groups), len(t.groups))
	}
	for i, g := range s.Groups {
		if len(g.Epochs) == 0 {
			// The open epoch always exists; gob elides empty slices, so an
			// empty snapshot group is structurally invalid.
			return fmt.Errorf("core: snapshot tracker group %d has no epochs", i)
		}
		t.groups[i] = trackerGroup{epochs: append([]int(nil), g.Epochs...), base: Epoch(g.Base)}
	}
	copy(t.lastPktNum, s.LastPktNum)
	return nil
}

// CollectorCounterState is the CollectorCounter's checkpointable state.
// Tagged lists the watched pair indices in ascending order; Total is
// recomputed from Counts on restore.
type CollectorCounterState struct {
	Counts []int
	Tagged []int
}

// State captures the per-pair counts and the watched-pair set.
func (c *CollectorCounter) State() CollectorCounterState {
	s := CollectorCounterState{Counts: append([]int(nil), c.counts...)}
	for i := range c.tagged {
		s.Tagged = append(s.Tagged, i)
	}
	sort.Ints(s.Tagged)
	return s
}

// Restore replaces the counter state with the snapshot.
func (c *CollectorCounter) Restore(s CollectorCounterState) error {
	if len(s.Counts) != len(c.counts) {
		return fmt.Errorf("core: snapshot has %d collector counters, component has %d", len(s.Counts), len(c.counts))
	}
	total := 0
	for _, n := range s.Counts {
		if n < 0 {
			return fmt.Errorf("core: snapshot collector count %d is negative", n)
		}
		total += n
	}
	copy(c.counts, s.Counts)
	c.total = total
	c.tagged = make(map[int]bool, len(s.Tagged))
	for _, i := range s.Tagged {
		if i < 0 || i >= len(c.counts) {
			return fmt.Errorf("core: snapshot tagged pair %d out of range", i)
		}
		c.tagged[i] = true
	}
	return nil
}

// State captures the per-warp outstanding-request counts.
func (f *FenceTracker) State() []int {
	return append([]int(nil), f.outstanding...)
}

// Restore replaces the per-warp counts with the snapshot.
func (f *FenceTracker) Restore(s []int) error {
	if len(s) != len(f.outstanding) {
		return fmt.Errorf("core: snapshot has %d fence-tracked warps, tracker has %d", len(s), len(f.outstanding))
	}
	copy(f.outstanding, s)
	return nil
}

// ConvergeState is the Converge FSM's checkpointable state: each
// sub-path FIFO's contents plus the round-robin cursor.
type ConvergeState struct {
	Paths [][]isa.Request
	RR    int
}

// State captures the sub-path FIFOs in order.
func (c *Converge) State() ConvergeState {
	s := ConvergeState{Paths: make([][]isa.Request, len(c.paths)), RR: c.rr}
	for i, p := range c.paths {
		s.Paths[i] = p.State()
	}
	return s
}

// Restore replaces the sub-path FIFOs with the snapshot.
func (c *Converge) Restore(s ConvergeState) error {
	if len(s.Paths) != len(c.paths) {
		return fmt.Errorf("core: snapshot has %d converge paths, component has %d", len(s.Paths), len(c.paths))
	}
	if s.RR < 0 || (len(c.paths) > 0 && s.RR >= len(c.paths)) {
		return fmt.Errorf("core: snapshot converge cursor %d out of range", s.RR)
	}
	for i, entries := range s.Paths {
		if err := c.paths[i].Restore(entries); err != nil {
			return err
		}
	}
	c.rr = s.RR
	return nil
}

package core

import (
	"testing"
	"testing/quick"

	"orderlight/internal/sim"
)

func TestTrackerUnconstrainedIssuesFreely(t *testing.T) {
	tr := NewTracker(4)
	e1 := tr.Arrive(0)
	e2 := tr.Arrive(0)
	if e1 != e2 {
		t.Fatalf("requests without an OrderLight between them got epochs %d, %d", e1, e2)
	}
	if !tr.CanIssue(0, e1) || !tr.CanIssue(0, e2) {
		t.Fatal("unconstrained requests not issueable")
	}
	// Out-of-order issue within an epoch is allowed (FR-FCFS freedom).
	tr.Issued(0, e2)
	tr.Issued(0, e1)
	if tr.Outstanding(0) != 0 {
		t.Fatalf("outstanding = %d, want 0", tr.Outstanding(0))
	}
}

func TestTrackerOrderLightBlocksYoungerEpoch(t *testing.T) {
	tr := NewTracker(2)
	old := tr.Arrive(1)
	if err := tr.OrderLight(1, 0); err != nil {
		t.Fatal(err)
	}
	young := tr.Arrive(1)
	if young == old {
		t.Fatal("OrderLight did not open a new epoch")
	}
	if !tr.Blocked(1) {
		t.Fatal("group not flagged after OrderLight with outstanding older request")
	}
	if tr.CanIssue(1, young) {
		t.Fatal("younger request issueable before older epoch drained")
	}
	if !tr.CanIssue(1, old) {
		t.Fatal("older request must stay issueable")
	}
	tr.Issued(1, old)
	if tr.Blocked(1) {
		t.Fatal("group still flagged after older epoch drained")
	}
	if !tr.CanIssue(1, young) {
		t.Fatal("younger request not released after drain")
	}
	tr.Issued(1, young)
}

func TestTrackerGroupsAreIndependent(t *testing.T) {
	// §5.3.1: the memory-group ID exists so that ordering in one group
	// never constrains another group's requests.
	tr := NewTracker(2)
	e0 := tr.Arrive(0)
	if err := tr.OrderLight(0, 0); err != nil {
		t.Fatal(err)
	}
	tr.Arrive(0) // younger, blocked
	other := tr.Arrive(1)
	if !tr.CanIssue(1, other) {
		t.Fatal("request in unrelated group blocked by another group's OrderLight")
	}
	if !tr.CanIssue(0, e0) {
		t.Fatal("pre-OrderLight request blocked")
	}
}

func TestTrackerMultipleBufferedPackets(t *testing.T) {
	tr := NewTracker(1)
	a := tr.Arrive(0)
	tr.OrderLight(0, 0)
	b := tr.Arrive(0)
	tr.OrderLight(0, 1)
	c := tr.Arrive(0)
	if tr.PendingEpochs(0) != 3 {
		t.Fatalf("PendingEpochs = %d, want 3", tr.PendingEpochs(0))
	}
	if tr.CanIssue(0, b) || tr.CanIssue(0, c) {
		t.Fatal("younger epochs issueable too early")
	}
	tr.Issued(0, a)
	if !tr.CanIssue(0, b) || tr.CanIssue(0, c) {
		t.Fatal("epoch b should be eligible, c not")
	}
	tr.Issued(0, b)
	if !tr.CanIssue(0, c) {
		t.Fatal("epoch c not released")
	}
}

func TestTrackerEmptyEpochRetiresImmediately(t *testing.T) {
	// An OrderLight packet with no outstanding older requests must not
	// block anything (zero-cost packet).
	tr := NewTracker(1)
	tr.OrderLight(0, 0)
	e := tr.Arrive(0)
	if !tr.CanIssue(0, e) {
		t.Fatal("request blocked by OrderLight over an empty epoch")
	}
}

func TestTrackerPacketNumberSanityCheck(t *testing.T) {
	tr := NewTracker(1)
	if err := tr.OrderLight(0, 5); err != nil {
		t.Fatalf("first packet rejected: %v", err)
	}
	if err := tr.OrderLight(0, 6); err != nil {
		t.Fatalf("increasing packet rejected: %v", err)
	}
	if err := tr.OrderLight(0, 6); err == nil {
		t.Fatal("duplicate packet number not flagged")
	}
	if err := tr.OrderLight(0, 4); err == nil {
		t.Fatal("decreasing packet number not flagged")
	}
}

func TestTrackerIssuedPanicsOnBadEpoch(t *testing.T) {
	tr := NewTracker(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Issued on unknown epoch did not panic")
		}
	}()
	tr.Issued(0, 7)
}

// TestTrackerOrderingInvariantProperty drives the tracker with a random
// mix of arrivals, OrderLight packets and issue attempts and checks the
// fundamental invariant: no request is ever issued before a request of
// an older epoch in the same group.
func TestTrackerOrderingInvariantProperty(t *testing.T) {
	type pending struct {
		group int
		epoch Epoch
		seq   int
	}
	f := func(ops []uint16, seed uint64) bool {
		const groups = 3
		tr := NewTracker(groups)
		rng := sim.NewRand(seed)
		var queue []pending
		lastIssuedSeq := make(map[int]int) // group -> next expected "barrier floor"
		maxIssuedPerEpoch := map[[2]int]bool{}
		seq := 0
		pkt := make([]uint32, groups)
		for _, op := range ops {
			g := int(op) % groups
			switch (op / 8) % 3 {
			case 0: // arrival
				e := tr.Arrive(g)
				queue = append(queue, pending{group: g, epoch: e, seq: seq})
				seq++
			case 1: // OrderLight
				tr.OrderLight(g, pkt[g])
				pkt[g]++
			case 2: // try to issue a random pending request
				if len(queue) == 0 {
					continue
				}
				i := rng.Intn(len(queue))
				p := queue[i]
				if !tr.CanIssue(p.group, p.epoch) {
					continue
				}
				// Invariant: every older-epoch request in this group must
				// already be issued (i.e. not in the queue).
				for _, q := range queue {
					if q.group == p.group && q.epoch < p.epoch {
						return false
					}
				}
				tr.Issued(p.group, p.epoch)
				maxIssuedPerEpoch[[2]int{p.group, int(p.epoch)}] = true
				queue = append(queue[:i], queue[i+1:]...)
				_ = lastIssuedSeq
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorCounter(t *testing.T) {
	c := NewCollectorCounter(2, 2)
	if !c.Zero(0, 0) {
		t.Fatal("fresh counter not zero")
	}
	c.Alloc(0, 0)
	c.Alloc(0, 0)
	c.Alloc(1, 1)
	if c.Zero(0, 0) || c.Count(0, 0) != 2 {
		t.Fatalf("count(0,0) = %d, want 2", c.Count(0, 0))
	}
	if c.Zero(1, 1) {
		t.Fatal("count(1,1) should be nonzero")
	}
	if !c.Zero(0, 1) || !c.Zero(1, 0) {
		t.Fatal("untouched counters should be zero")
	}
	c.Release(0, 0)
	c.Release(0, 0)
	if !c.Zero(0, 0) {
		t.Fatal("counter not zero after balanced releases")
	}
}

func TestCollectorCounterBudgetExactWhenTagged(t *testing.T) {
	c := NewCollectorCounterBudget(2, 2, 1)
	c.Alloc(0, 0) // grabs the only counter
	if c.Zero(0, 0) {
		t.Fatal("watched pair with outstanding request reported zero")
	}
	c.Release(0, 0) // counter freed on drain
	if !c.Zero(0, 0) {
		t.Fatal("drained watched pair not zero")
	}
	// The freed counter is reusable by another pair.
	c.Alloc(1, 1)
	if c.Zero(1, 1) {
		t.Fatal("second pair did not reuse the freed counter")
	}
	c.Release(1, 1)
}

func TestCollectorCounterBudgetFallbackIsConservative(t *testing.T) {
	c := NewCollectorCounterBudget(2, 2, 1)
	c.Alloc(0, 0) // takes the counter
	c.Alloc(1, 1) // unwatched: folded into the conservative total
	// Pair (1,1) is unwatched and has an outstanding request: its
	// OrderLight may only inject when the whole collector is empty.
	if c.Zero(1, 1) {
		t.Fatal("unwatched nonzero pair reported zero")
	}
	c.Release(1, 1)
	// Now (1,1) has nothing outstanding at all: safe even unwatched.
	if !c.Zero(1, 1) {
		t.Fatal("fully drained pair reported nonzero")
	}
	// (0,0) still watched and nonzero.
	if c.Zero(0, 0) {
		t.Fatal("watched nonzero pair reported zero")
	}
	c.Release(0, 0)
	if !c.Zero(0, 0) || !c.Zero(1, 1) {
		t.Fatal("empty collector not zero everywhere")
	}
}

func TestCollectorCounterBudgetFallbackWaitsForTotal(t *testing.T) {
	c := NewCollectorCounterBudget(1, 4, 1)
	c.Alloc(0, 0) // watched
	c.Alloc(0, 1) // unwatched
	c.Alloc(0, 1) // unwatched again
	if c.Zero(0, 1) {
		t.Fatal("unwatched pair zero with outstanding requests")
	}
	c.Release(0, 1)
	c.Release(0, 1)
	// Its own count drained: zero regardless of the other pair.
	if !c.Zero(0, 1) {
		t.Fatal("pair with drained count should read zero")
	}
	c.Release(0, 0)
}

func TestCollectorCounterUnderflowPanics(t *testing.T) {
	c := NewCollectorCounter(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Release below zero did not panic")
		}
	}()
	c.Release(0, 0)
}

func TestCollectorCounterRangePanics(t *testing.T) {
	c := NewCollectorCounter(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	c.Alloc(2, 0)
}

func TestFenceTracker(t *testing.T) {
	f := NewFenceTracker(2)
	if !f.Drained(0) {
		t.Fatal("fresh warp not drained")
	}
	f.Issued(0)
	f.Issued(0)
	f.Issued(1)
	if f.Drained(0) || f.Outstanding(0) != 2 {
		t.Fatalf("outstanding(0) = %d, want 2", f.Outstanding(0))
	}
	f.Acked(0)
	if f.Drained(0) {
		t.Fatal("drained with one request still outstanding")
	}
	f.Acked(0)
	if !f.Drained(0) {
		t.Fatal("not drained after all acks")
	}
	if f.Drained(1) {
		t.Fatal("warp 1 should still be outstanding")
	}
}

func TestFenceTrackerUnderflowPanics(t *testing.T) {
	f := NewFenceTracker(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Acked below zero did not panic")
		}
	}()
	f.Acked(0)
}

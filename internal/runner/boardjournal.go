package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"orderlight/internal/chaos"
)

// This file is the fabric coordinator's crash journal: every board
// mutation that represents acknowledged work — a job posted, a cell
// outcome recorded, a job collected — is appended to a JSON-lines file
// before the coordinator's answer leaves the process. A SIGKILLed
// coordinator restarted on the same journal replays it and comes back
// with completions intact: workers re-lease only the genuinely
// unfinished ranges, and a client that resubmits the identical request
// attaches to the replayed job (jobs are keyed by request content, see
// JobKey) instead of starting the sweep over.
//
// The write discipline matches internal/ckpt's progress journal: one
// marshaled line per record, a single Write then a Sync, so a crash
// leaves at most one torn trailing line — tolerated on replay. Damage
// anywhere else is a loud error: records after it were acknowledged,
// and silently dropping them would re-run (or worse, re-collect) work.
// If an append fails mid-flight the journal turns itself off rather
// than write past a possibly-torn line; the board keeps serving, it
// just loses restart coverage (see degradedLocked).

// boardRecord is one journal line.
type boardRecord struct {
	Op      string       `json:"op"`                // "post", "cell", "forget"
	Job     string       `json:"job"`               // board job key (JobKey)
	Total   int          `json:"total,omitempty"`   // post: cell count
	Request []byte       `json:"request,omitempty"` // post: serialized request
	Outcome *CellOutcome `json:"outcome,omitempty"` // cell: one completion
}

// boardJournal is the open append handle plus its degrade latch.
type boardJournal struct {
	f    chaos.File
	path string
	logf func(format string, args ...any)
	down bool // first failed append turns journaling off
}

// NewJournaledBoard is NewBoard plus a crash journal at path: existing
// records are replayed into the fresh board (missing file = empty
// journal), pending ranges are rebuilt from the gaps, then the file is
// opened for appending. fsys is the filesystem appends go through
// (nil = the real one; the chaos harness injects its sick disk here —
// replay reads are never faulted, damage is discovered by content).
// logf, when non-nil, receives replay and degrade notices.
func NewJournaledBoard(ttl time.Duration, chunk int, path string, fsys chaos.FS, logf func(format string, args ...any)) (*Board, error) {
	if fsys == nil {
		fsys = chaos.OS
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	b := NewBoard(ttl, chunk)
	replayed, err := b.replayJournal(path)
	if err != nil {
		return nil, err
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: board journal: %w", err)
	}
	b.mu.Lock()
	b.rebuildPendingLocked()
	b.journal = &boardJournal{f: f, path: path, logf: logf}
	jobs := len(b.order)
	b.mu.Unlock()
	if replayed > 0 {
		logf("fabric: replayed %d journal record(s) from %s: %d unfinished job(s) restored", replayed, path, jobs)
	}
	return b, nil
}

// replayJournal reads the journal (plain os read — replay happens
// before any chaos matters, and reads are never faulted anyway) and
// applies every record to the empty board. Torn tail tolerated,
// corrupt middle loud. Returns the number of records applied.
func (b *Board) replayJournal(path string) (int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("runner: board journal: %w", err)
	}
	defer f.Close()

	b.mu.Lock()
	defer b.mu.Unlock()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line, applied := 0, 0
	var pendingErr error
	for sc.Scan() {
		line++
		if pendingErr != nil {
			return 0, pendingErr
		}
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rec boardRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			pendingErr = fmt.Errorf("runner: board journal %s line %d: %w", path, line, err)
			continue
		}
		if err := b.applyRecordLocked(&rec); err != nil {
			pendingErr = fmt.Errorf("runner: board journal %s line %d: %w", path, line, err)
			continue
		}
		applied++
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("runner: board journal %s: %w", path, err)
	}
	// A torn final line is the footprint of a crash mid-append; the
	// record it held was never acknowledged, so dropping it is correct.
	return applied, nil
}

// applyRecordLocked replays one journal record. Caller holds b.mu.
func (b *Board) applyRecordLocked(rec *boardRecord) error {
	switch rec.Op {
	case "post":
		if rec.Total <= 0 {
			return fmt.Errorf("post record for %q has no cells", rec.Job)
		}
		if _, ok := b.jobs[rec.Job]; ok {
			return fmt.Errorf("job %q posted twice", rec.Job)
		}
		b.jobs[rec.Job] = newBoardJob(rec.Request, rec.Total, b.chunk)
		b.order = append(b.order, rec.Job)
	case "cell":
		j := b.jobs[rec.Job]
		if j == nil {
			return fmt.Errorf("cell record for unposted job %q", rec.Job)
		}
		o := rec.Outcome
		if o == nil {
			return fmt.Errorf("cell record for %q has no outcome", rec.Job)
		}
		if j.finished {
			return nil // late duplicate journaled after a failure record
		}
		if o.Err != "" {
			b.applyFailureLocked(j, o)
			return nil
		}
		if o.Index < 0 || o.Index >= j.total {
			return fmt.Errorf("outcome index %d out of range [0,%d)", o.Index, j.total)
		}
		if j.outcomes[o.Index] != nil {
			return nil
		}
		j.outcomes[o.Index] = o
		j.done++
		if j.done == j.total {
			j.finished = true
			close(j.doneCh)
		}
	case "forget":
		if _, ok := b.jobs[rec.Job]; !ok {
			return nil
		}
		delete(b.jobs, rec.Job)
		for i, id := range b.order {
			if id == rec.Job {
				b.order = append(b.order[:i], b.order[i+1:]...)
				break
			}
		}
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
	return nil
}

// rebuildPendingLocked recomputes every unfinished job's pending list
// from its missing outcomes, chunked like fresh posts. Called once
// after replay — no leases survive a restart, so everything not
// completed is pending. Caller holds b.mu.
func (b *Board) rebuildPendingLocked() {
	for _, j := range b.jobs {
		if j.finished {
			continue
		}
		j.pending = j.pending[:0]
		for lo := 0; lo < j.total; {
			if j.outcomes[lo] != nil {
				lo++
				continue
			}
			hi := lo
			for hi < j.total && hi-lo < b.chunk && j.outcomes[hi] == nil {
				hi++
			}
			j.pending = append(j.pending, [2]int{lo, hi})
			lo = hi
		}
	}
}

// appendJournalLocked writes one record, degrading the journal on the
// first failure: appending past a possibly-torn line would turn the
// replay's tolerable torn tail into a loud corrupt middle. The board
// keeps operating without the journal — a subsequent coordinator
// restart loses the un-journaled progress, never the running job.
// Caller holds b.mu.
func (b *Board) appendJournalLocked(rec boardRecord) {
	jn := b.journal
	if jn == nil || jn.down {
		return
	}
	line, err := json.Marshal(&rec)
	if err != nil {
		jn.down = true
		jn.logf("fabric: board journal disabled: encode: %v", err)
		return
	}
	line = append(line, '\n')
	_, err = jn.f.Write(line)
	if err == nil {
		err = jn.f.Sync()
	}
	if err != nil {
		jn.down = true
		jn.logf("fabric: board journal %s disabled after write failure (restart coverage lost, job unaffected): %v", jn.path, err)
	}
}

// JournalDegraded reports whether the board's crash journal has shut
// itself off after a write failure.
func (b *Board) JournalDegraded() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.journal != nil && b.journal.down
}

package runner

import (
	"errors"
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/fault"
	"orderlight/internal/gpu"
	"orderlight/internal/kernel"
	"orderlight/internal/sim"
)

// FuzzFaultPlan throws arbitrary fault plans at the skip-ahead engine:
// any class, seed, rate (including NaN/Inf/negative) and delay, under
// both ordering primitives. The invariant is liveness: a faulted
// machine either finishes the run or fails with the simulated-time
// deadline error — it never wedges the quiescence protocol (a hang
// would surface as the fuzzer's per-run timeout) and never panics.
// The machine is driven directly, without the engine's panic recovery,
// so a crash registers as a crash.
func FuzzFaultPlan(f *testing.F) {
	f.Add(uint64(1), uint64(1), 1.0, int64(0), false)
	f.Add(uint64(2), uint64(99), 0.5, int64(64), true)
	f.Add(uint64(3), uint64(0), -1.0, int64(-5), false)
	f.Add(uint64(4), uint64(7), 0.25, int64(100000), true)
	f.Add(uint64(0), uint64(3), 0.0, int64(1), false)
	f.Fuzz(func(t *testing.T, classBits, seed uint64, rate float64, delay int64, fence bool) {
		spec := fault.Spec{
			Class: fault.Class(classBits % 5),
			Seed:  seed,
			Rate:  rate,
			Delay: delay,
		}
		if spec.Validate() != nil {
			// NaN/Inf/overweight rates are rejected at the spec layer;
			// nothing downstream may ever see them.
			return
		}
		cfg := config.Default()
		cfg.Memory.Channels = 2
		cfg.GPU.PIMSMs = 1
		cfg.GPU.WarpsPerSM = 2
		cfg.Run.DeadlineMS = 20
		cfg.Run.Primitive = config.PrimitiveOrderLight
		if fence {
			cfg.Run.Primitive = config.PrimitiveFence
		}
		ks, err := kernel.ByName("add")
		if err != nil {
			t.Fatal(err)
		}
		k, err := kernel.Build(cfg, ks, 2048)
		if err != nil {
			t.Fatal(err)
		}
		m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
		if err != nil {
			t.Fatal(err)
		}
		m.SetFaultPlan(fault.NewPlan(spec))
		if _, err := m.Run(); err != nil && !errors.Is(err, sim.ErrDeadline) {
			t.Fatalf("faulted run %s failed with a non-deadline error: %v", spec, err)
		}
	})
}

package runner

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"orderlight/internal/obs"
	"orderlight/internal/rcache"
	"orderlight/internal/stats"
)

// cellResultVersion is baked into every cell cache key so a change to
// CellResult's shape (or to what a simulation means) invalidates old
// entries by construction instead of decoding them wrongly.
const cellResultVersion = 1

// CellResult is the cacheable payload of one completed cell: exactly
// the fields journal replay needs to reconstruct a Result without
// re-simulating. Kernels and manifests are rebuilt at lookup time;
// fault verdicts are never cached (faulted cells always re-execute, so
// the differential oracle really runs).
type CellResult struct {
	Run         *stats.Run
	HostLatency float64
	HostServed  int64
}

// cellCacheKey is the content address of a cell's result: the
// manifest's sha256 config hash (which covers the seed and every
// timing/geometry knob), the kernel spec, the per-channel footprint,
// the host/traffic variant, and the engine name. Deliberately absent:
// the cell's display Key (identical cells in different experiments
// share one entry), the shard count (N-shard output is gated
// byte-identical to 1-shard, so any shard count may answer any other —
// TestCellCacheEngineShardParity holds this honest), and the
// checkpoint/retry knobs (they cannot change a completed result).
func (e *Engine) cellCacheKey(c *Cell) string {
	return fmt.Sprintf("cell|v%d|%s|%#v|%d|%t|%#v|%s",
		cellResultVersion, obs.ConfigHash(c.Cfg), c.Spec, c.Bytes, c.Host, c.Traffic,
		obs.EngineName(e.dense, e.parallel))
}

// cacheableCell reports whether a cell's result may be served from or
// inserted into the result cache. Fault-injected cells are excluded —
// their point is the injection and the oracle verdict, not the result.
func cacheableCell(c *Cell) bool { return !c.Fault.Active() }

// encodeCellResult and decodeCellResult are the gob round-trip shared
// by the cycle-result and twin-result cache paths.
func encodeCellResult(cr *CellResult) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cr); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeCellResult(data []byte, cr *CellResult) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(cr)
}

// cacheArmed reports whether this engine consults the result cache at
// all. Engines armed with a trace sink, sampler, or deterministic halt
// never do: a cache hit would skip the side effects those options
// exist for.
func (e *Engine) cacheArmed() bool {
	return e.rcache != nil && e.sink == nil && e.sampler == nil && e.haltAfter <= 0
}

// lookupCache serves a cell from the result cache. Like journal
// replay, the kernel image is rebuilt (cached builds make this cheap)
// and the manifest — when requested — carries zero wall time plus
// cache provenance. A damaged or mis-keyed blob was already handled
// inside rcache.Get as a miss.
func (e *Engine) lookupCache(c *Cell) (Result, bool, error) {
	key := e.cellCacheKey(c)
	data, ok := e.rcache.Get(key)
	if !ok {
		return Result{}, false, nil
	}
	var cr CellResult
	if err := decodeCellResult(data, &cr); err != nil || cr.Run == nil {
		// The container was intact but the payload is not a CellResult
		// (e.g. written by a future build whose gob shape moved on).
		// Treat as a miss; the recompute overwrites the slot.
		return Result{}, false, nil
	}
	k, err := e.buildKernel(c)
	if err != nil {
		return Result{}, false, err
	}
	res := Result{
		Run: cr.Run, Kernel: k,
		HostLatency: cr.HostLatency, HostServed: cr.HostServed,
	}
	if e.manifest {
		m := e.newManifest(c, 0)
		m.CacheKey = key
		m.CacheHit = true
		res.Manifest = m
	}
	return res, true, nil
}

// storeCache inserts a completed cell's result. It runs only after the
// simulation finished and the verifier recorded its verdict — the
// verdict travels inside the cached stats.Run, so a warm hit
// reproduces it bit for bit. Store failures are deliberately swallowed
// (e.g. a read-only cache directory): the cache is an accelerator, not
// a correctness dependency, and the computed result is already in hand.
func (e *Engine) storeCache(c *Cell, res Result) {
	data, err := encodeCellResult(&CellResult{
		Run: res.Run, HostLatency: res.HostLatency, HostServed: res.HostServed,
	})
	if err != nil {
		return
	}
	_ = e.rcache.Put(e.cellCacheKey(c), data)
}

// Simulated reports how many cells this engine actually simulated
// (cache hits and journal replays excluded) over its lifetime. The
// warm-cache acceptance test asserts this stays zero on a rerun.
func (e *Engine) Simulated() int64 { return e.simulated.Load() }

// ResultCacheStats snapshots the attached result cache's counters
// (zero Stats when no cache is attached).
func (e *Engine) ResultCacheStats() rcache.Stats {
	if e.rcache == nil {
		return rcache.Stats{}
	}
	return e.rcache.Stats()
}

package runner

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"orderlight/internal/chaos"
	"orderlight/internal/stats"
)

// completeRange drives one lease to completion with synthetic outcomes.
func completeRange(t *testing.T, b *Board, l *Lease, worker string) {
	t.Helper()
	outs := make([]CellOutcome, 0, l.Hi-l.Lo)
	for i := l.Lo; i < l.Hi; i++ {
		outs = append(outs, CellOutcome{Index: i, Key: "k", Run: stats.New(512)})
	}
	if err := b.Complete(l.Job, l.ID, worker, outs); err != nil {
		t.Fatal(err)
	}
}

// A coordinator killed mid-sweep restarts on its journal with the
// completed cells intact: a resubmitted identical request attaches to
// the replayed job, only the unfinished ranges are re-leased, and the
// assembled outcomes are identical to an uninterrupted run.
func TestJournaledBoardRestartResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "board.journal")
	req := []byte(`{"kind":"experiment"}`)

	b1, err := NewJournaledBoard(time.Minute, 2, path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	key, err := b1.Post(req, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Finish the first chunk [0,2), then "SIGKILL" the coordinator by
	// abandoning b1 — nothing is flushed beyond what each Complete
	// already synced.
	completeRange(t, b1, b1.Lease("w1"), "w1")

	var notices []string
	b2, err := NewJournaledBoard(time.Minute, 2, path, nil, func(f string, a ...any) {
		notices = append(notices, f)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(notices) == 0 {
		t.Fatal("restart on a non-empty journal logged no replay notice")
	}

	// Resubmission attaches: same key, progress picks up at 2/6.
	var firstDone int
	key2, err := b2.Post(req, 6, func(done, total int) {
		if firstDone == 0 {
			firstDone = done
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if key2 != key {
		t.Fatalf("resubmitted job key = %q, want %q", key2, key)
	}
	if firstDone != 2 {
		t.Fatalf("attach progress reported done=%d, want 2", firstDone)
	}

	// Only indices [2,6) are pending; the replayed chunk never re-leases.
	var leased []int
	for {
		l := b2.Lease("w2")
		if l == nil {
			break
		}
		for i := l.Lo; i < l.Hi; i++ {
			leased = append(leased, i)
		}
		completeRange(t, b2, l, "w2")
	}
	if len(leased) != 4 || leased[0] != 2 || leased[3] != 5 {
		t.Fatalf("post-restart leased indices = %v, want [2 3 4 5]", leased)
	}
	got, err := b2.Wait(context.Background(), key2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("got %d outcomes, want 6", len(got))
	}
	for i, o := range got {
		if o.Index != i {
			t.Fatalf("outcome %d has index %d — declaration order lost across restart", i, o.Index)
		}
	}
}

// Posting a journaled job with a different cell count is the one
// unresolvable attach conflict and must fail loudly.
func TestJournaledBoardAttachTotalMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "board.journal")
	b1, err := NewJournaledBoard(time.Minute, 2, path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b1.Post([]byte("req"), 4, nil); err != nil {
		t.Fatal(err)
	}
	b2, err := NewJournaledBoard(time.Minute, 2, path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Post([]byte("req"), 5, nil); err == nil {
		t.Fatal("attach with mismatched total succeeded")
	}
}

// A crash mid-append leaves a torn trailing line; replay drops it
// silently (the record was never acknowledged) and the board restarts.
func TestJournaledBoardTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "board.journal")
	b1, err := NewJournaledBoard(time.Minute, 2, path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b1.Post([]byte("req"), 2, nil); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"cell","job":"fj-tr`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b2, err := NewJournaledBoard(time.Minute, 2, path, nil, nil)
	if err != nil {
		t.Fatalf("torn tail rejected: %v", err)
	}
	if l := b2.Lease("w"); l == nil || l.Lo != 0 || l.Hi != 2 {
		t.Fatalf("replayed job lease = %+v", l)
	}
}

// Damage before the last line means acknowledged records are
// unreadable; replay must refuse rather than silently resurrect a
// partial board.
func TestJournaledBoardCorruptMiddleLoud(t *testing.T) {
	path := filepath.Join(t.TempDir(), "board.journal")
	b1, err := NewJournaledBoard(time.Minute, 1, path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	key, err := b1.Post([]byte("req"), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	completeRange(t, b1, b1.Lease("w"), "w")
	completeRange(t, b1, b1.Lease("w"), "w")
	if _, err := b1.Wait(context.Background(), key); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 3 {
		t.Fatalf("journal has %d lines, want >= 3", len(lines))
	}
	lines[1] = "{garbage!!\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewJournaledBoard(time.Minute, 1, path, nil, nil); err == nil {
		t.Fatal("corrupt middle line replayed without error")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("corrupt-middle error %v does not name the damaged line", err)
	}
}

// A journaled failure outcome replays as a failed job: Wait on the
// attached resubmission reports the original cell error.
func TestJournaledBoardReplaysFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "board.journal")
	b1, err := NewJournaledBoard(time.Minute, 4, path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b1.Post([]byte("req"), 3, nil); err != nil {
		t.Fatal(err)
	}
	l := b1.Lease("w")
	if err := b1.Complete(l.Job, l.ID, "w", []CellOutcome{{Index: 1, Key: "bad", Err: "boom"}}); err != nil {
		t.Fatal(err)
	}
	b2, err := NewJournaledBoard(time.Minute, 4, path, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	key, err := b2.Post([]byte("req"), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Wait(context.Background(), key); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("replayed failure Wait = %v, want boom", err)
	}
}

// brokenFS opens files whose writes and syncs always fail — the
// permanently sick disk, without chaos-plan scheduling.
type brokenFS struct{ chaos.FS }

func (b brokenFS) OpenFile(name string, flag int, perm os.FileMode) (chaos.File, error) {
	f, err := b.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return brokenFile{f}, nil
}

type brokenFile struct{ chaos.File }

func (f brokenFile) Write([]byte) (int, error) {
	return 0, &os.PathError{Op: "write", Path: f.Name(), Err: syscall.ENOSPC}
}
func (f brokenFile) Sync() error {
	return &os.PathError{Op: "sync", Path: f.Name(), Err: syscall.EIO}
}

// A dead journal disk degrades the journal, never the job: the board
// keeps leasing and completing, it just loses restart coverage.
func TestJournaledBoardDegradesOnSickDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "board.journal")
	var notices int
	b, err := NewJournaledBoard(time.Minute, 2, path, brokenFS{chaos.OS}, func(string, ...any) {
		notices++
	})
	if err != nil {
		t.Fatal(err)
	}
	key, err := b.Post([]byte("req"), 4, nil)
	if err != nil {
		t.Fatalf("Post on sick journal disk failed: %v", err)
	}
	if !b.JournalDegraded() {
		t.Fatal("journal not degraded after failed append")
	}
	if notices != 1 {
		t.Fatalf("degrade logged %d notices, want exactly 1 (latch, not per-append)", notices)
	}
	for {
		l := b.Lease("w")
		if l == nil {
			break
		}
		completeRange(t, b, l, "w")
	}
	if got, err := b.Wait(context.Background(), key); err != nil || len(got) != 4 {
		t.Fatalf("Wait on degraded board = %d outcomes, %v", len(got), err)
	}
	if notices != 1 {
		t.Fatalf("completions re-logged the degrade notice (%d total)", notices)
	}
}

// Heartbeats extend a lease past its original TTL deadline.
func TestBoardHeartbeatExtendsLease(t *testing.T) {
	b := NewBoard(time.Minute, 4)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	if _, err := b.Post([]byte("req"), 4, nil); err != nil {
		t.Fatal(err)
	}
	l := b.Lease("w1")
	if l == nil {
		t.Fatal("no lease")
	}
	if l.HeartbeatMillis != (time.Minute / 4).Milliseconds() {
		t.Fatalf("HeartbeatMillis = %d, want ttl/4", l.HeartbeatMillis)
	}
	// Beat every 40s: each beat lands inside the current deadline and
	// re-extends it, so after 2 TTLs the lease is still held.
	for i := 0; i < 3; i++ {
		now = now.Add(40 * time.Second)
		if !b.Heartbeat("w1", l.Job, l.ID) {
			t.Fatalf("heartbeat %d reported lease lost", i)
		}
		if got := b.Lease("w2"); got != nil {
			t.Fatalf("heartbeat-extended range re-issued: %+v", got)
		}
	}
	// Stop beating; the lease expires on its last extension.
	now = now.Add(2 * time.Minute)
	if b.Heartbeat("w1", l.Job, l.ID) {
		t.Fatal("expired lease still heartbeats as held")
	}
	if got := b.Lease("w2"); got == nil || got.Lo != 0 {
		t.Fatalf("expired range not re-issued: %+v", got)
	}
}

// With heartbeats armed, a silent worker loses its lease after the
// grace period — well before the full TTL.
func TestBoardHeartbeatEarlyReclaim(t *testing.T) {
	b := NewBoard(time.Minute, 4)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	b.EnableHeartbeats(10 * time.Second)
	if _, err := b.Post([]byte("req"), 4, nil); err != nil {
		t.Fatal(err)
	}
	if l := b.Lease("w1"); l == nil {
		t.Fatal("no lease")
	}
	// 15s of silence: far inside the 60s TTL, past the 10s grace.
	now = now.Add(15 * time.Second)
	l2 := b.Lease("w2")
	if l2 == nil || l2.Lo != 0 {
		t.Fatalf("silent worker's range not reclaimed early: %+v", l2)
	}
}

// Two consecutive expiries mark a worker flapping; its next lease runs
// on a quarter TTL, and one successful completion clears the mark.
func TestBoardFlapDetection(t *testing.T) {
	b := NewBoard(time.Minute, 4)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	if _, err := b.Post([]byte("req"), 4, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < flapStreak; i++ {
		if l := b.Lease("w1"); l == nil {
			t.Fatalf("lease %d not granted", i)
		}
		now = now.Add(2 * time.Minute) // expire it
	}
	l := b.Lease("w1") // reclaim charges the second expiry, then re-grants
	if l == nil {
		t.Fatal("flapping worker refused work entirely")
	}
	ws := b.Workers()
	if len(ws) != 1 || !ws[0].Flapping || ws[0].Expiries < flapStreak {
		t.Fatalf("Workers() = %+v, want w1 flapping", ws)
	}
	// The flapping lease expires at ttl/4, not ttl.
	now = now.Add(20 * time.Second) // > 15s = ttl/4, < 60s = ttl
	l2 := b.Lease("w2")
	if l2 == nil || l2.Lo != 0 {
		t.Fatalf("flapping worker's short lease not reclaimed at ttl/4: %+v", l2)
	}
	// w2 completes; w1's next completion clears its streak too.
	completeRange(t, b, l2, "w2")
	if err := b.Complete(l.Job, l.ID, "w1", nil); err != nil {
		t.Fatal(err)
	}
	for _, w := range b.Workers() {
		if w.Name == "w1" && w.Flapping {
			t.Fatalf("completion did not clear flap mark: %+v", w)
		}
	}
}

// Workers sorts flapping workers first so /healthz surfaces trouble.
func TestBoardWorkersSnapshotOrder(t *testing.T) {
	b := NewBoard(time.Minute, 4)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	if _, err := b.Post([]byte("req"), 8, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < flapStreak; i++ {
		if l := b.Lease("zz-flappy"); l == nil {
			t.Fatalf("lease %d not granted", i)
		}
		now = now.Add(2 * time.Minute)
	}
	b.Lease("aa-steady") // triggers the final reclaim, then takes the range
	ws := b.Workers()
	if len(ws) != 2 || ws[0].Name != "zz-flappy" || !ws[0].Flapping {
		t.Fatalf("Workers() = %+v, want zz-flappy first (flapping)", ws)
	}
	if ws[1].Name != "aa-steady" || ws[1].Leases != 1 {
		t.Fatalf("Workers()[1] = %+v, want aa-steady holding 1 lease", ws[1])
	}
}

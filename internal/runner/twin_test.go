package runner

import (
	"context"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/fault"
	"orderlight/internal/gpu"
	"orderlight/internal/kernel"
	"orderlight/internal/obs"
	"orderlight/internal/olerrors"
	"orderlight/internal/rcache"
	"orderlight/internal/stats"
	"orderlight/internal/twin"
)

// twinTestPredictor calibrates one small artifact over the shared test
// grid (copy/add under fence and OrderLight, anchored around the
// 8 KiB footprint testCells uses) and memoizes it — calibration runs
// the cycle engine, so every test sharing it keeps the suite fast.
var (
	twinTestOnce sync.Once
	twinTestPred *twin.Predictor
	twinTestErr  error
)

func testTwinPredictor(t *testing.T) *twin.Predictor {
	t.Helper()
	twinTestOnce.Do(func() {
		cfg := testConfig()
		var specs []kernel.Spec
		for _, name := range []string{"copy", "add"} {
			spec, err := kernel.ByName(name)
			if err != nil {
				twinTestErr = err
				return
			}
			specs = append(specs, spec)
		}
		run := func(ctx context.Context, cfg config.Config, spec kernel.Spec, bytes int64) (*stats.Run, error) {
			k, err := kernel.Build(cfg, spec, bytes)
			if err != nil {
				return nil, err
			}
			m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
			if err != nil {
				return nil, err
			}
			return m.Run()
		}
		art, err := twin.Calibrate(context.Background(), cfg, run, twin.Options{
			Anchors:    []int64{4 << 10, 8 << 10, 16 << 10},
			TSBytes:    []int{cfg.PIM.TSBytes},
			Primitives: []config.Primitive{config.PrimitiveFence, config.PrimitiveOrderLight},
			Specs:      specs,
		})
		if err != nil {
			twinTestErr = err
			return
		}
		twinTestPred = twin.NewPredictor(art)
	})
	if twinTestErr != nil {
		t.Fatalf("test calibration failed: %v", twinTestErr)
	}
	return twinTestPred
}

// TestTwinEngineGuards pins every twin-engine option conflict to
// ErrInvalidSpec with a message that names what to remove, matching the
// standard the cycle-engine guards set.
func TestTwinEngineGuards(t *testing.T) {
	pred := testTwinPredictor(t)
	tests := []struct {
		name string
		opts Options
		want string
	}{
		{
			name: "dense conflict",
			opts: Options{TwinEngine: true, Twin: pred, DenseEngine: true},
			want: "-engine=twin|dense|skip|parallel",
		},
		{
			name: "parallel conflict",
			opts: Options{TwinEngine: true, Twin: pred, ParallelEngine: true},
			want: "-engine=twin|dense|skip|parallel",
		},
		{
			name: "trace sink",
			opts: Options{TwinEngine: true, Twin: pred, TraceSink: obs.NewPerfettoSink(io.Discard)},
			want: "no events",
		},
		{
			name: "sampler",
			opts: Options{TwinEngine: true, Twin: pred, Sampler: stats.NewSampler(100)},
			want: "no time-series",
		},
		{
			name: "halt",
			opts: Options{TwinEngine: true, Twin: pred, HaltAfterCycles: 100},
			want: "WithHaltAfter",
		},
		{
			name: "checkpoints",
			opts: Options{TwinEngine: true, Twin: pred, CheckpointDir: t.TempDir()},
			want: "checkpoints journal cycle-engine progress",
		},
		{
			name: "nil calibration",
			opts: Options{TwinEngine: true},
			want: "TwinEngine needs a calibration",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.opts).Run(context.Background(), testCells(t))
			if err == nil {
				t.Fatal("conflicting twin options succeeded")
			}
			if !errors.Is(err, olerrors.ErrInvalidSpec) {
				t.Errorf("error %v is not classified as ErrInvalidSpec", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestTwinEngineAnswersGrid runs the shared test grid on the twin and
// checks the contract: zero cells simulated, exact command counts
// (identical to the cycle engine's), and a manifest that declares the
// answer approximate — engine "twin", the calibration hash, a recorded
// error bound, and no Verified claim.
func TestTwinEngineAnswersGrid(t *testing.T) {
	pred := testTwinPredictor(t)
	cells := testCells(t)

	cyc, err := New(Options{}).Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{TwinEngine: true, Twin: pred, Manifest: true})
	res, err := eng.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if n := eng.Simulated(); n != 0 {
		t.Errorf("twin run simulated %d cells, want 0", n)
	}
	for i := range cells {
		if res[i].Run.PIMCommands != cyc[i].Run.PIMCommands {
			t.Errorf("cell %s: twin PIMCommands %d != cycle %d (counts must be exact)",
				cells[i].Key, res[i].Run.PIMCommands, cyc[i].Run.PIMCommands)
		}
		if res[i].Run.Verified {
			t.Errorf("cell %s: twin answer claims functional verification", cells[i].Key)
		}
		m := res[i].Manifest
		if m == nil {
			t.Fatalf("cell %s: no manifest", cells[i].Key)
		}
		if m.Engine != "twin" {
			t.Errorf("cell %s: manifest engine %q, want twin", cells[i].Key, m.Engine)
		}
		if m.CalibrationHash != pred.Hash() {
			t.Errorf("cell %s: manifest calibration %q, want %q", cells[i].Key, m.CalibrationHash, pred.Hash())
		}
	}
}

// TestTwinEscalation pins the escalation contract: a cell the twin
// declines fails the sweep with twin.ErrOutOfConfidence by default, and
// with TwinEscalate it falls through to the skip-ahead cycle engine
// with a byte-identical result (same stats, same manifest engine name).
func TestTwinEscalation(t *testing.T) {
	pred := testTwinPredictor(t)
	cells := testCells(t)
	// 32 KiB/channel is outside the test calibration's anchored range,
	// so the twin must decline this cell.
	cells[1].Bytes = 32 << 10

	_, err := New(Options{TwinEngine: true, Twin: pred}).Run(context.Background(), cells)
	if !errors.Is(err, twin.ErrOutOfConfidence) {
		t.Fatalf("out-of-range cell returned %v, want twin.ErrOutOfConfidence", err)
	}
	var ce *CellError
	if !errors.As(err, &ce) || ce.Index != 1 {
		t.Fatalf("error %v does not name cell 1", err)
	}

	direct, err := New(Options{Manifest: true}).Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	esc, err := New(Options{TwinEngine: true, Twin: pred, TwinEscalate: true, Manifest: true}).
		Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if esc[1].Run.String() != direct[1].Run.String() {
		t.Errorf("escalated cell differs from direct cycle-engine run:\n%s\nvs\n%s",
			esc[1].Run, direct[1].Run)
	}
	if got := esc[1].Manifest.Engine; got != "skip" {
		t.Errorf("escalated cell's manifest engine %q, want skip", got)
	}
	if got := esc[0].Manifest.Engine; got != "twin" {
		t.Errorf("in-confidence cell's manifest engine %q, want twin", got)
	}
}

// TestTwinCellDeclines pins the runner-level confidence guards: cells
// whose shape the model cannot vouch for — host baselines, concurrent
// traffic, armed fault plans — decline with twin.ErrOutOfConfidence
// before the predictor is even consulted.
func TestTwinCellDeclines(t *testing.T) {
	pred := testTwinPredictor(t)
	tests := []struct {
		name   string
		mutate func(*Cell)
	}{
		{"host cell", func(c *Cell) { c.Host = true }},
		{"host traffic", func(c *Cell) { c.Traffic = gpu.HostTraffic{PerChannel: 4, EveryN: 8} }},
		{"fault plan", func(c *Cell) { c.Fault = fault.Spec{Class: fault.ClassDropOrdering, Rate: 1, Seed: 1} }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cells := testCells(t)
			tc.mutate(&cells[0])
			_, err := New(Options{TwinEngine: true, Twin: pred}).Run(context.Background(), cells)
			if !errors.Is(err, twin.ErrOutOfConfidence) {
				t.Errorf("got %v, want twin.ErrOutOfConfidence", err)
			}
		})
	}
}

// TestTwinCacheHitManifest checks a warm twin answer's provenance: the
// replayed manifest still says engine "twin", carries the calibration
// hash, and marks itself a cache hit under the twin-domain key.
func TestTwinCacheHitManifest(t *testing.T) {
	pred := testTwinPredictor(t)
	cells := testCells(t)
	cache, err := rcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{TwinEngine: true, Twin: pred, ResultCache: cache}).
		Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	warm, err := New(Options{TwinEngine: true, Twin: pred, ResultCache: cache, Manifest: true}).
		Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		m := warm[i].Manifest
		if m == nil {
			t.Fatalf("cell %s: no manifest", cells[i].Key)
		}
		if !m.CacheHit || m.Engine != "twin" || m.CalibrationHash != pred.Hash() {
			t.Errorf("cell %s: warm manifest {hit:%t engine:%q cal:%q}, want twin cache hit",
				cells[i].Key, m.CacheHit, m.Engine, m.CalibrationHash)
		}
	}
}

// TestTwinCacheDomainSeparation holds the cache-poisoning line: twin
// answers live in their own "twin|" key domain, so a cycle-engine run
// sharing the same result cache can never be served an approximation,
// and a warm twin rerun serves its own entries.
func TestTwinCacheDomainSeparation(t *testing.T) {
	pred := testTwinPredictor(t)
	cells := testCells(t)
	cache, err := rcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}

	ground, err := New(Options{}).Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}

	// Populate the cache with twin answers first.
	tw := New(Options{TwinEngine: true, Twin: pred, ResultCache: cache})
	first, err := tw.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}

	// A cycle run against the twin-warmed cache must simulate every cell
	// and reproduce the ground truth — no twin entry may answer it.
	cyc := New(Options{ResultCache: cache})
	res, err := cyc.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if n := cyc.Simulated(); n != int64(len(cells)) {
		t.Errorf("cycle run over twin-warmed cache simulated %d cells, want %d", n, len(cells))
	}
	for i := range cells {
		if res[i].Run.String() != ground[i].Run.String() {
			t.Errorf("cell %s: cycle result over twin-warmed cache differs from ground truth", cells[i].Key)
		}
	}

	// A warm twin rerun is served from the twin domain, identically.
	tw2 := New(Options{TwinEngine: true, Twin: pred, ResultCache: cache})
	warm, err := tw2.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if n := tw2.Simulated(); n != 0 {
		t.Errorf("warm twin rerun simulated %d cells, want 0", n)
	}
	for i := range cells {
		if warm[i].Run.String() != first[i].Run.String() {
			t.Errorf("cell %s: warm twin answer differs from first", cells[i].Key)
		}
	}
}

package runner

import (
	"context"
	"fmt"
	"sync"
	"time"

	"orderlight/internal/fault"
	"orderlight/internal/olerrors"
	"orderlight/internal/stats"
)

// This file is the coordinator side of the distributed sweep fabric: a
// Board hands out contiguous cell ranges of posted jobs to preemptible
// workers under expiring leases, collects per-cell outcomes, and
// reassembles them in declaration order — so a distributed run is
// byte-identical to a local one. The HTTP surface lives in
// internal/serve (/v1/work/lease, /v1/work/complete); the Board is
// transport-agnostic.

// CellOutcome is one cell's wire-serializable result: the same fields
// the progress journal records (ckpt.JournalEntry), which are exactly
// what declaration-order reassembly needs. Kernels and manifests are
// rebuilt coordinator-side.
type CellOutcome struct {
	Index       int            `json:"index"` // position in the job's declared cell list
	Key         string         `json:"key"`
	Run         *stats.Run     `json:"run,omitempty"`
	HostLatency float64        `json:"host_latency,omitempty"`
	HostServed  int64          `json:"host_served,omitempty"`
	Fault       *fault.Verdict `json:"fault,omitempty"`
	Err         string         `json:"error,omitempty"` // non-empty fails the whole job, like a local sweep
}

// Lease is one granted work range. Request is the posting job's
// serialized request, opaque to the Board: workers re-derive the
// identical cell list from it (cell enumeration is deterministic), so
// cells themselves never cross the wire.
type Lease struct {
	Job     string `json:"job"`
	ID      string `json:"lease"`
	Lo      int    `json:"lo"` // first cell index, inclusive
	Hi      int    `json:"hi"` // last cell index, exclusive
	Total   int    `json:"total"`
	Request []byte `json:"request"`
}

// DefaultLeaseTTL and DefaultChunk are the Board defaults: leases
// short enough that a killed worker's range is re-issued promptly,
// chunks small enough that a sweep spreads across a few workers.
const (
	DefaultLeaseTTL = 30 * time.Second
	DefaultChunk    = 4
)

type leaseState struct {
	lo, hi   int
	deadline time.Time
}

type boardJob struct {
	request  []byte
	total    int
	pending  [][2]int // unleased [lo,hi) ranges, ascending
	leases   map[string]leaseState
	outcomes []*CellOutcome
	done     int
	errMsg   string
	finished bool
	doneCh   chan struct{}
	progress func(done, total int)
}

// Board is the coordinator's work ledger. All methods are safe for
// concurrent use. Expired leases are reclaimed lazily on the next
// Lease call — workers poll, so reclamation needs no timer goroutine.
type Board struct {
	mu    sync.Mutex
	ttl   time.Duration
	chunk int
	seq   int
	jobs  map[string]*boardJob
	order []string // FIFO job dispatch order
	now   func() time.Time
}

// NewBoard creates a board. ttl <= 0 uses DefaultLeaseTTL, chunk <= 0
// uses DefaultChunk.
func NewBoard(ttl time.Duration, chunk int) *Board {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	return &Board{ttl: ttl, chunk: chunk, jobs: make(map[string]*boardJob), now: time.Now}
}

// Post registers a job of total cells with the board. request is the
// opaque serialized job the workers rebuild cells from; progress, when
// non-nil, is called under no board lock ordering guarantees after
// each newly completed cell.
func (b *Board) Post(jobID string, request []byte, total int, progress func(done, total int)) error {
	if total <= 0 {
		return fmt.Errorf("runner: %w: fabric job %q has no cells", olerrors.ErrInvalidSpec, jobID)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.jobs[jobID]; ok {
		return fmt.Errorf("runner: fabric job %q already posted", jobID)
	}
	j := &boardJob{
		request:  request,
		total:    total,
		leases:   make(map[string]leaseState),
		outcomes: make([]*CellOutcome, total),
		doneCh:   make(chan struct{}),
		progress: progress,
	}
	for lo := 0; lo < total; lo += b.chunk {
		hi := lo + b.chunk
		if hi > total {
			hi = total
		}
		j.pending = append(j.pending, [2]int{lo, hi})
	}
	b.jobs[jobID] = j
	b.order = append(b.order, jobID)
	return nil
}

// reclaimLocked returns expired leases' ranges to their jobs' pending
// lists. Caller holds b.mu.
func (b *Board) reclaimLocked(now time.Time) {
	for _, j := range b.jobs {
		if j.finished {
			continue
		}
		for id, ls := range j.leases {
			if now.After(ls.deadline) {
				delete(j.leases, id)
				j.pending = append(j.pending, [2]int{ls.lo, ls.hi})
			}
		}
	}
}

// Lease grants the next pending range to a worker, or returns nil when
// no work is available right now (the worker should poll again — a
// range may reappear when a lease expires).
func (b *Board) Lease(worker string) *Lease {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.reclaimLocked(now)
	for _, id := range b.order {
		j := b.jobs[id]
		if j == nil || j.finished || len(j.pending) == 0 {
			continue
		}
		span := j.pending[0]
		j.pending = j.pending[1:]
		b.seq++
		leaseID := fmt.Sprintf("l%06d", b.seq)
		j.leases[leaseID] = leaseState{lo: span[0], hi: span[1], deadline: now.Add(b.ttl)}
		return &Lease{Job: id, ID: leaseID, Lo: span[0], Hi: span[1], Total: j.total, Request: j.request}
	}
	return nil
}

// Complete records a lease's outcomes. Late completions of expired
// (and possibly re-issued) leases are accepted: results are
// deterministic, so duplicate indices carry identical payloads and
// only the first fill counts. An outcome with a non-empty Err fails
// the whole job, mirroring a local sweep's first-error semantics.
func (b *Board) Complete(jobID, leaseID string, outcomes []CellOutcome) error {
	b.mu.Lock()
	j := b.jobs[jobID]
	if j == nil {
		b.mu.Unlock()
		return fmt.Errorf("runner: fabric job %q unknown (completed or forgotten)", jobID)
	}
	delete(j.leases, leaseID)
	if j.finished {
		b.mu.Unlock()
		return nil
	}
	for i := range outcomes {
		o := outcomes[i]
		if o.Err != "" {
			j.errMsg = fmt.Sprintf("cell %d (%s): %s", o.Index, o.Key, o.Err)
			j.finished = true
			close(j.doneCh)
			b.mu.Unlock()
			return nil
		}
		if o.Index < 0 || o.Index >= j.total {
			b.mu.Unlock()
			return fmt.Errorf("runner: fabric job %q: outcome index %d out of range [0,%d)", jobID, o.Index, j.total)
		}
		if j.outcomes[o.Index] != nil {
			continue // duplicate from a re-issued lease
		}
		j.outcomes[o.Index] = &o
		j.done++
	}
	progress, done, total := j.progress, j.done, j.total
	if j.done == j.total {
		j.finished = true
		close(j.doneCh)
	}
	b.mu.Unlock()
	if progress != nil {
		progress(done, total)
	}
	return nil
}

// Wait blocks until the job finishes (all cells complete, or a worker
// reported a cell failure) or ctx is done, then removes the job from
// the board and returns the outcomes in declaration order.
func (b *Board) Wait(ctx context.Context, jobID string) ([]CellOutcome, error) {
	b.mu.Lock()
	j := b.jobs[jobID]
	b.mu.Unlock()
	if j == nil {
		return nil, fmt.Errorf("runner: fabric job %q unknown", jobID)
	}
	select {
	case <-ctx.Done():
		b.Forget(jobID)
		return nil, fmt.Errorf("runner: %w: %v", olerrors.ErrCanceled, ctx.Err())
	case <-j.doneCh:
	}
	b.Forget(jobID)
	if j.errMsg != "" {
		return nil, fmt.Errorf("runner: fabric job %q failed: %s", jobID, j.errMsg)
	}
	out := make([]CellOutcome, j.total)
	for i, o := range j.outcomes {
		out[i] = *o
	}
	return out, nil
}

// Forget drops a job (canceled or collected); outstanding leases for
// it complete as no-ops.
func (b *Board) Forget(jobID string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.jobs[jobID]; !ok {
		return
	}
	delete(b.jobs, jobID)
	for i, id := range b.order {
		if id == jobID {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
}

// ExecuteLease runs cells[lo:hi] on this engine and maps the results
// onto wire outcomes. A sweep error becomes a single Err outcome for
// the chunk — the coordinator fails the job with it, mirroring local
// first-error semantics. The engine's own checkpoint/journal options
// apply, so a preempted worker restarted on the same -checkpoint-dir
// replays its finished cells instead of re-simulating them.
func (e *Engine) ExecuteLease(ctx context.Context, cells []Cell, lo, hi int) []CellOutcome {
	if lo < 0 || hi > len(cells) || lo >= hi {
		return []CellOutcome{{Index: lo, Err: fmt.Sprintf("lease range [%d,%d) outside cell list of %d", lo, hi, len(cells))}}
	}
	res, err := e.Run(ctx, cells[lo:hi])
	if err != nil {
		return []CellOutcome{{Index: lo, Key: cells[lo].Key, Err: err.Error()}}
	}
	out := make([]CellOutcome, hi-lo)
	for i, r := range res {
		out[i] = CellOutcome{
			Index: lo + i, Key: cells[lo+i].Key,
			Run: r.Run, HostLatency: r.HostLatency, HostServed: r.HostServed,
			Fault: r.Fault,
		}
	}
	return out
}

// ResultFromOutcome reconstructs a full Result from a wire outcome,
// rebuilding the kernel image locally exactly like journal replay —
// assemblers read generation metadata off the kernel, and rebuilding
// is deterministic.
func (e *Engine) ResultFromOutcome(c *Cell, o CellOutcome) (Result, error) {
	if o.Err != "" {
		return Result{}, fmt.Errorf("cell %d (%s): %s", o.Index, o.Key, o.Err)
	}
	k, err := e.buildKernel(c)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Run: o.Run, Kernel: k,
		HostLatency: o.HostLatency, HostServed: o.HostServed,
		Fault: o.Fault,
	}
	if e.manifest {
		res.Manifest = e.newManifest(c, 0)
	}
	return res, nil
}

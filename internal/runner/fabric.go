package runner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"orderlight/internal/fault"
	"orderlight/internal/olerrors"
	"orderlight/internal/stats"
)

// This file is the coordinator side of the distributed sweep fabric: a
// Board hands out contiguous cell ranges of posted jobs to preemptible
// workers under expiring leases, collects per-cell outcomes, and
// reassembles them in declaration order — so a distributed run is
// byte-identical to a local one. The HTTP surface lives in
// internal/serve (/v1/work/lease, /v1/work/complete); the Board is
// transport-agnostic.

// CellOutcome is one cell's wire-serializable result: the same fields
// the progress journal records (ckpt.JournalEntry), which are exactly
// what declaration-order reassembly needs. Kernels and manifests are
// rebuilt coordinator-side.
type CellOutcome struct {
	Index       int            `json:"index"` // position in the job's declared cell list
	Key         string         `json:"key"`
	Run         *stats.Run     `json:"run,omitempty"`
	HostLatency float64        `json:"host_latency,omitempty"`
	HostServed  int64          `json:"host_served,omitempty"`
	Fault       *fault.Verdict `json:"fault,omitempty"`
	Err         string         `json:"error,omitempty"` // non-empty fails the whole job, like a local sweep
}

// Lease is one granted work range. Request is the posting job's
// serialized request, opaque to the Board: workers re-derive the
// identical cell list from it (cell enumeration is deterministic), so
// cells themselves never cross the wire.
type Lease struct {
	Job     string `json:"job"`
	ID      string `json:"lease"`
	Lo      int    `json:"lo"` // first cell index, inclusive
	Hi      int    `json:"hi"` // last cell index, exclusive
	Total   int    `json:"total"`
	Request []byte `json:"request"`
	// HeartbeatMillis is the cadence the worker should call Heartbeat
	// at while executing this lease. Heartbeats extend the lease and
	// drive the board's liveness view; a worker that skips them is
	// merely reclaimed on the full TTL like before.
	HeartbeatMillis int64 `json:"heartbeat_ms,omitempty"`
}

// DefaultLeaseTTL and DefaultChunk are the Board defaults: leases
// short enough that a killed worker's range is re-issued promptly,
// chunks small enough that a sweep spreads across a few workers.
const (
	DefaultLeaseTTL = 30 * time.Second
	DefaultChunk    = 4
)

type leaseState struct {
	lo, hi   int
	worker   string
	deadline time.Time
}

// flapStreak is how many consecutive expired leases mark a worker as
// flapping. A flapping worker still gets work — preemptible workers
// are the fabric's design center — but on short (ttl/4) leases, so a
// crash-looping host cannot pin a range for a full TTL per loop.
const flapStreak = 2

// workerInfo is the board's liveness record for one worker name.
type workerInfo struct {
	lastSeen time.Time
	streak   int // consecutive expired leases; reset by any Complete
	leases   int // currently held
}

// WorkerStatus is one worker's liveness snapshot, served by /healthz
// on fabric coordinators.
type WorkerStatus struct {
	Name     string    `json:"name"`
	LastSeen time.Time `json:"last_seen"`
	Leases   int       `json:"leases"`
	Expiries int       `json:"expired_streak,omitempty"`
	Flapping bool      `json:"flapping,omitempty"`
}

type boardJob struct {
	request  []byte
	total    int
	pending  [][2]int // unleased [lo,hi) ranges, ascending
	leases   map[string]leaseState
	outcomes []*CellOutcome
	done     int
	errMsg   string
	finished bool
	doneCh   chan struct{}
	progress func(done, total int)
}

// Board is the coordinator's work ledger. All methods are safe for
// concurrent use. Expired leases are reclaimed lazily on the next
// Lease call — workers poll, so reclamation needs no timer goroutine.
type Board struct {
	mu      sync.Mutex
	ttl     time.Duration
	chunk   int
	seq     int
	jobs    map[string]*boardJob
	order   []string // FIFO job dispatch order
	now     func() time.Time
	workers map[string]*workerInfo

	// hbGrace, when non-zero, arms heartbeat-driven early reclaim: a
	// lease whose holder has not been heard from (lease, heartbeat or
	// complete) for hbGrace is reclaimed before its TTL deadline.
	hbGrace time.Duration

	// journal, when non-nil, receives every board mutation so a killed
	// coordinator restarts with leases' work intact. See boardjournal.go.
	journal *boardJournal
}

// JobKey is the board's content-addressed job identity: identical
// request bytes always map to the same key. That is what lets a client
// resubmit after a coordinator restart and attach to the replayed
// job's progress instead of starting over.
func JobKey(request []byte) string {
	sum := sha256.Sum256(request)
	return "fj-" + hex.EncodeToString(sum[:8])
}

// NewBoard creates a board. ttl <= 0 uses DefaultLeaseTTL, chunk <= 0
// uses DefaultChunk.
func NewBoard(ttl time.Duration, chunk int) *Board {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	return &Board{
		ttl: ttl, chunk: chunk,
		jobs:    make(map[string]*boardJob),
		workers: make(map[string]*workerInfo),
		now:     time.Now,
	}
}

// EnableHeartbeats arms early lease reclaim: a worker silent for grace
// (no lease poll, heartbeat or completion) loses its leases without
// waiting out the TTL. grace <= 0 means half the lease TTL. Off by
// default so a board driven without heartbeats keeps pure-TTL
// semantics.
func (b *Board) EnableHeartbeats(grace time.Duration) {
	if grace <= 0 {
		grace = b.ttl / 2
	}
	b.mu.Lock()
	b.hbGrace = grace
	b.mu.Unlock()
}

// touchLocked updates a worker's liveness record. Caller holds b.mu.
func (b *Board) touchLocked(worker string, now time.Time) *workerInfo {
	if worker == "" {
		return nil
	}
	w := b.workers[worker]
	if w == nil {
		w = &workerInfo{}
		b.workers[worker] = w
	}
	w.lastSeen = now
	return w
}

// Workers reports every known worker's liveness snapshot, flapping
// workers first, then by name.
func (b *Board) Workers() []WorkerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]WorkerStatus, 0, len(b.workers))
	for name, w := range b.workers {
		out = append(out, WorkerStatus{
			Name: name, LastSeen: w.lastSeen, Leases: w.leases,
			Expiries: w.streak, Flapping: w.streak >= flapStreak,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flapping != out[j].Flapping {
			return out[i].Flapping
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Post registers a job of total cells with the board and returns its
// content-addressed key (JobKey of the request bytes). Posting a
// request the board already tracks — typically a resubmission after a
// coordinator restart replayed the job from its journal — attaches to
// the existing job: the caller's progress callback takes over and Wait
// picks up from however many cells are already complete, rather than
// re-running them. progress, when non-nil, is called under no board
// lock ordering guarantees after each newly completed cell.
func (b *Board) Post(request []byte, total int, progress func(done, total int)) (string, error) {
	key := JobKey(request)
	if total <= 0 {
		return "", fmt.Errorf("runner: %w: fabric job %q has no cells", olerrors.ErrInvalidSpec, key)
	}
	b.mu.Lock()
	if j, ok := b.jobs[key]; ok {
		if j.total != total {
			b.mu.Unlock()
			return "", fmt.Errorf("runner: fabric job %q posted with %d cells, board holds %d — cell enumeration is not deterministic across builds?", key, total, j.total)
		}
		j.progress = progress
		done := j.done
		b.mu.Unlock()
		if progress != nil && done > 0 {
			progress(done, total)
		}
		return key, nil
	}
	j := newBoardJob(request, total, b.chunk)
	j.progress = progress
	b.jobs[key] = j
	b.order = append(b.order, key)
	b.appendJournalLocked(boardRecord{Op: "post", Job: key, Total: total, Request: request})
	b.mu.Unlock()
	return key, nil
}

// newBoardJob builds a job record with its full pending list. Shared
// by Post and journal replay.
func newBoardJob(request []byte, total, chunk int) *boardJob {
	j := &boardJob{
		request:  request,
		total:    total,
		leases:   make(map[string]leaseState),
		outcomes: make([]*CellOutcome, total),
		doneCh:   make(chan struct{}),
	}
	for lo := 0; lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		j.pending = append(j.pending, [2]int{lo, hi})
	}
	return j
}

// reclaimLocked returns expired leases' ranges to their jobs' pending
// lists and charges each expiry to its holder's flap streak. With
// heartbeats armed, a lease whose holder has been silent for hbGrace
// is reclaimed early — a SIGKILLed worker's range comes back after the
// grace, not the full TTL. Caller holds b.mu.
func (b *Board) reclaimLocked(now time.Time) {
	for _, j := range b.jobs {
		if j.finished {
			continue
		}
		for id, ls := range j.leases {
			expired := now.After(ls.deadline)
			if !expired && b.hbGrace > 0 {
				if w := b.workers[ls.worker]; w != nil && now.Sub(w.lastSeen) > b.hbGrace {
					expired = true
				}
			}
			if !expired {
				continue
			}
			delete(j.leases, id)
			j.pending = append(j.pending, [2]int{ls.lo, ls.hi})
			if w := b.workers[ls.worker]; w != nil {
				w.streak++
				if w.leases > 0 {
					w.leases--
				}
			}
		}
	}
}

// leaseTTLLocked is the deadline extension a worker earns: the full
// TTL normally, a quarter of it while the worker is flapping. Caller
// holds b.mu.
func (b *Board) leaseTTLLocked(w *workerInfo) time.Duration {
	if w != nil && w.streak >= flapStreak {
		return b.ttl / 4
	}
	return b.ttl
}

// Lease grants the next pending range to a worker, or returns nil when
// no work is available right now (the worker should poll again — a
// range may reappear when a lease expires).
func (b *Board) Lease(worker string) *Lease {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.reclaimLocked(now)
	w := b.touchLocked(worker, now)
	for _, id := range b.order {
		j := b.jobs[id]
		if j == nil || j.finished || len(j.pending) == 0 {
			continue
		}
		span := j.pending[0]
		j.pending = j.pending[1:]
		b.seq++
		leaseID := fmt.Sprintf("l%06d", b.seq)
		j.leases[leaseID] = leaseState{lo: span[0], hi: span[1], worker: worker, deadline: now.Add(b.leaseTTLLocked(w))}
		if w != nil {
			w.leases++
		}
		return &Lease{
			Job: id, ID: leaseID, Lo: span[0], Hi: span[1], Total: j.total, Request: j.request,
			HeartbeatMillis: (b.ttl / 4).Milliseconds(),
		}
	}
	return nil
}

// Heartbeat records that worker is still executing a lease, extending
// its deadline (by the full TTL, or TTL/4 while the worker is
// flapping). It returns false when the lease is no longer held — it
// expired and was re-issued, or its job finished — which the worker
// may treat as a hint to abandon the range; finishing anyway is
// harmless, since completions are first-fill-wins.
func (b *Board) Heartbeat(worker, jobID, leaseID string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	// Reclaim first — like Lease — so a beat on a lease that already
	// sat out its deadline honestly answers "lost" instead of quietly
	// resurrecting it.
	b.reclaimLocked(now)
	w := b.touchLocked(worker, now)
	j := b.jobs[jobID]
	if j == nil || j.finished {
		return false
	}
	ls, ok := j.leases[leaseID]
	if !ok || ls.worker != worker {
		return false
	}
	ls.deadline = now.Add(b.leaseTTLLocked(w))
	j.leases[leaseID] = ls
	return true
}

// Complete records a lease's outcomes from worker. Late completions
// of expired (and possibly re-issued) leases are accepted: results are
// deterministic, so duplicate indices carry identical payloads and
// only the first fill counts. An outcome with a non-empty Err fails
// the whole job, mirroring a local sweep's first-error semantics. A
// successful completion clears the worker's flap streak.
func (b *Board) Complete(jobID, leaseID, worker string, outcomes []CellOutcome) error {
	b.mu.Lock()
	w := b.touchLocked(worker, b.now())
	if w != nil {
		w.streak = 0
	}
	j := b.jobs[jobID]
	if j == nil {
		b.mu.Unlock()
		return fmt.Errorf("runner: fabric job %q unknown (completed or forgotten)", jobID)
	}
	if _, held := j.leases[leaseID]; held && w != nil && w.leases > 0 {
		w.leases--
	}
	delete(j.leases, leaseID)
	if j.finished {
		b.mu.Unlock()
		return nil
	}
	for i := range outcomes {
		o := outcomes[i]
		if o.Err != "" {
			b.applyFailureLocked(j, &o)
			b.appendJournalLocked(boardRecord{Op: "cell", Job: jobID, Outcome: &o})
			b.mu.Unlock()
			return nil
		}
		if o.Index < 0 || o.Index >= j.total {
			b.mu.Unlock()
			return fmt.Errorf("runner: fabric job %q: outcome index %d out of range [0,%d)", jobID, o.Index, j.total)
		}
		if j.outcomes[o.Index] != nil {
			continue // duplicate from a re-issued lease
		}
		j.outcomes[o.Index] = &o
		j.done++
		b.appendJournalLocked(boardRecord{Op: "cell", Job: jobID, Outcome: &o})
	}
	progress, done, total := j.progress, j.done, j.total
	if j.done == j.total {
		j.finished = true
		close(j.doneCh)
	}
	b.mu.Unlock()
	if progress != nil {
		progress(done, total)
	}
	return nil
}

// applyFailureLocked marks a job failed by one cell's error outcome.
// Shared by Complete and journal replay. Caller holds b.mu.
func (b *Board) applyFailureLocked(j *boardJob, o *CellOutcome) {
	j.errMsg = fmt.Sprintf("cell %d (%s): %s", o.Index, o.Key, o.Err)
	j.finished = true
	close(j.doneCh)
}

// Wait blocks until the job finishes (all cells complete, or a worker
// reported a cell failure) or ctx is done, then removes the job from
// the board and returns the outcomes in declaration order.
func (b *Board) Wait(ctx context.Context, jobID string) ([]CellOutcome, error) {
	b.mu.Lock()
	j := b.jobs[jobID]
	b.mu.Unlock()
	if j == nil {
		return nil, fmt.Errorf("runner: fabric job %q unknown", jobID)
	}
	select {
	case <-ctx.Done():
		b.Forget(jobID)
		return nil, fmt.Errorf("runner: %w: %v", olerrors.ErrCanceled, ctx.Err())
	case <-j.doneCh:
	}
	b.Forget(jobID)
	if j.errMsg != "" {
		return nil, fmt.Errorf("runner: fabric job %q failed: %s", jobID, j.errMsg)
	}
	out := make([]CellOutcome, j.total)
	for i, o := range j.outcomes {
		out[i] = *o
	}
	return out, nil
}

// Forget drops a job (canceled or collected); outstanding leases for
// it complete as no-ops.
func (b *Board) Forget(jobID string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.jobs[jobID]; !ok {
		return
	}
	delete(b.jobs, jobID)
	for i, id := range b.order {
		if id == jobID {
			b.order = append(b.order[:i], b.order[i+1:]...)
			break
		}
	}
	b.appendJournalLocked(boardRecord{Op: "forget", Job: jobID})
}

// ExecuteLease runs cells[lo:hi] on this engine and maps the results
// onto wire outcomes. A sweep error becomes a single Err outcome for
// the chunk — the coordinator fails the job with it, mirroring local
// first-error semantics. The engine's own checkpoint/journal options
// apply, so a preempted worker restarted on the same -checkpoint-dir
// replays its finished cells instead of re-simulating them.
func (e *Engine) ExecuteLease(ctx context.Context, cells []Cell, lo, hi int) []CellOutcome {
	if lo < 0 || hi > len(cells) || lo >= hi {
		return []CellOutcome{{Index: lo, Err: fmt.Sprintf("lease range [%d,%d) outside cell list of %d", lo, hi, len(cells))}}
	}
	res, err := e.Run(ctx, cells[lo:hi])
	if err != nil {
		return []CellOutcome{{Index: lo, Key: cells[lo].Key, Err: err.Error()}}
	}
	out := make([]CellOutcome, hi-lo)
	for i, r := range res {
		out[i] = CellOutcome{
			Index: lo + i, Key: cells[lo+i].Key,
			Run: r.Run, HostLatency: r.HostLatency, HostServed: r.HostServed,
			Fault: r.Fault,
		}
	}
	return out
}

// ResultFromOutcome reconstructs a full Result from a wire outcome,
// rebuilding the kernel image locally exactly like journal replay —
// assemblers read generation metadata off the kernel, and rebuilding
// is deterministic.
func (e *Engine) ResultFromOutcome(c *Cell, o CellOutcome) (Result, error) {
	if o.Err != "" {
		return Result{}, fmt.Errorf("cell %d (%s): %s", o.Index, o.Key, o.Err)
	}
	k, err := e.buildKernel(c)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Run: o.Run, Kernel: k,
		HostLatency: o.HostLatency, HostServed: o.HostServed,
		Fault: o.Fault,
	}
	if e.manifest {
		res.Manifest = e.newManifest(c, 0)
	}
	return res, nil
}

package runner

import (
	"fmt"
	"runtime"
	"time"

	"orderlight/internal/obs"
	"orderlight/internal/twin"
)

// twinCacheKey is the content address of a twin answer. It lives in
// its own "twin|" key domain — disjoint from the cycle engines'
// "cell|" domain by construction — and bakes in the calibration hash,
// so a twin answer can never be served as a cycle result and a
// recalibration invalidates every stale prediction.
func (e *Engine) twinCacheKey(c *Cell) string {
	return fmt.Sprintf("twin|v%d|%s|%#v|%d|%s",
		cellResultVersion, obs.ConfigHash(c.Cfg), c.Spec, c.Bytes, e.twin.Hash())
}

// runTwinCell answers one cell from the analytical twin. Anything the
// model cannot vouch for — host-baseline cells, concurrent traffic,
// fault injection, or a query the predictor itself declines — returns
// an error wrapping twin.ErrOutOfConfidence so runCellRetry can
// escalate to the cycle engine when asked to.
func (e *Engine) runTwinCell(c *Cell) (Result, error) {
	switch {
	case c.Host:
		return Result{}, fmt.Errorf("runner: %w: host-baseline cell %q has no analytical model", twin.ErrOutOfConfidence, c.Key)
	case c.Traffic.PerChannel > 0:
		return Result{}, fmt.Errorf("runner: %w: concurrent host traffic on cell %q is not modeled", twin.ErrOutOfConfidence, c.Key)
	case c.Fault.Active():
		return Result{}, fmt.Errorf("runner: %w: fault injection on cell %q needs a real simulation", twin.ErrOutOfConfidence, c.Key)
	}
	key := e.twinCacheKey(c)
	if e.cacheArmed() {
		if res, ok := e.lookupTwinCache(c, key); ok {
			return res, nil
		}
	}
	start := time.Now()
	pred, err := e.twin.Predict(c.Cfg, c.Spec, c.Bytes)
	if err != nil {
		return Result{}, fmt.Errorf("cell %q: %w", c.Key, err)
	}
	wall := time.Since(start)
	res := Result{Run: pred.Run, Kernel: pred.Kernel}
	if e.manifest {
		res.Manifest = e.twinManifest(c, float64(wall.Nanoseconds())/1e6, pred)
		if e.cacheArmed() {
			res.Manifest.CacheKey = key
		}
	}
	if e.cacheArmed() {
		e.storeTwinCache(c, key, res)
	}
	return res, nil
}

// twinManifest stamps a twin answer's provenance: engine "twin", the
// calibration content hash, and the recorded relative error bound of
// the predicted cycle count. Verified is never claimed.
func (e *Engine) twinManifest(c *Cell, wallMS float64, pred *twin.Prediction) *obs.Manifest {
	return &obs.Manifest{
		Cell:            c.Key,
		Kernel:          c.Spec.Name,
		Primitive:       c.Cfg.Run.Primitive.String(),
		Seed:            c.Cfg.Run.Seed,
		Channels:        c.Cfg.Memory.Channels,
		TSBytes:         c.Cfg.PIM.TSBytes,
		BMF:             c.Cfg.PIM.BMF,
		BytesPerChannel: c.Bytes,
		ConfigHash:      obs.ConfigHash(c.Cfg),
		Engine:          "twin",
		CalibrationHash: e.twin.Hash(),
		ErrorBound:      pred.Entry.CyclesBound,
		WallMS:          wallMS,
		GoVersion:       runtime.Version(),
	}
}

// lookupTwinCache serves a twin answer from the result cache's twin
// key domain. The synthesized kernel accounting is recomputed (it is
// microseconds of arithmetic) rather than stored.
func (e *Engine) lookupTwinCache(c *Cell, key string) (Result, bool) {
	data, ok := e.rcache.Get(key)
	if !ok {
		return Result{}, false
	}
	pred, err := e.twin.Predict(c.Cfg, c.Spec, c.Bytes)
	if err != nil {
		return Result{}, false
	}
	var cr CellResult
	if err := decodeCellResult(data, &cr); err != nil || cr.Run == nil {
		return Result{}, false
	}
	res := Result{Run: cr.Run, Kernel: pred.Kernel}
	if e.manifest {
		m := e.twinManifest(c, 0, pred)
		m.CacheKey = key
		m.CacheHit = true
		res.Manifest = m
	}
	return res, true
}

// storeTwinCache inserts a twin answer under its twin-domain key.
// Like storeCache, failures are swallowed: the cache is an
// accelerator, never a correctness dependency.
func (e *Engine) storeTwinCache(c *Cell, key string, res Result) {
	data, err := encodeCellResult(&CellResult{Run: res.Run})
	if err != nil {
		return
	}
	_ = e.rcache.Put(key, data)
}

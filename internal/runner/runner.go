package runner

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"orderlight/internal/chaos"
	"orderlight/internal/ckpt"
	"orderlight/internal/config"
	"orderlight/internal/fault"
	"orderlight/internal/gpu"
	"orderlight/internal/kernel"
	"orderlight/internal/obs"
	"orderlight/internal/olerrors"
	"orderlight/internal/pim"
	"orderlight/internal/rcache"
	"orderlight/internal/stats"
	"orderlight/internal/twin"
)

// Cell is one independent simulation in an experiment grid.
type Cell struct {
	// Key identifies the cell in errors and logs, e.g.
	// "fig10a/add/fence/ts=1/8".
	Key string

	Cfg   config.Config
	Spec  kernel.Spec
	Bytes int64 // per-channel footprint of the primary data structure

	// Host builds the host-streaming program (the validation baseline)
	// instead of the PIM kernel.
	Host bool

	// Traffic injects synthetic concurrent host loads (zero disables).
	Traffic gpu.HostTraffic

	// Fault, when active, arms a seeded ordering-fault injection plan
	// for this cell; the result then carries the differential oracle's
	// Verdict. Each cell materializes its own fault.Plan from the spec,
	// so faulted cells parallelize like any others. PIM kernels only —
	// a host-baseline cell with an active Fault is rejected.
	Fault fault.Spec

	// hook, when set, runs at the start of the cell's execution. It is a
	// package-private test seam for exercising panic recovery.
	hook func()
}

// Result holds everything one cell's simulation produced.
type Result struct {
	Run    *stats.Run
	Kernel *kernel.Kernel

	// Concurrent-host measurements (zero when the cell had no Traffic).
	HostLatency float64 // mean host-load latency in core cycles
	HostServed  int64   // host loads served

	// Manifest is the cell's provenance record; nil unless the engine
	// was created with Options.Manifest.
	Manifest *obs.Manifest

	// Fault is the differential oracle's verdict on a fault-injected
	// cell; nil unless the cell had an active Fault spec.
	Fault *fault.Verdict
}

// CellError is the typed error a failing cell contributes to the sweep:
// it names the cell and wraps the underlying cause (including
// olerrors.ErrCellPanic for recovered panics), so errors.Is works on
// the sweep-level error.
type CellError struct {
	Key   string
	Index int // position in the declared cell list
	Err   error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("cell %d (%s): %v", e.Index, e.Key, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// Options configures an Engine.
type Options struct {
	// Parallelism bounds the worker pool; <= 0 means GOMAXPROCS.
	Parallelism int

	// Progress, when set, is called after every completed cell with the
	// running completion count. Calls are serialized and monotonic; the
	// callback must be fast and must not call back into the engine.
	Progress func(done, total int)

	// DisableKernelCache turns off the built-kernel cache (every cell
	// regenerates its kernel image from scratch).
	DisableKernelCache bool

	// DenseEngine runs every cell on the naive dense tick engine instead
	// of the quiescence skip-ahead one. Results are byte-identical; the
	// dense engine is the parity reference and a debugging escape hatch.
	DenseEngine bool

	// ParallelEngine runs every cell on the intra-run parallel engine:
	// skip-ahead clocking with each fired edge's per-channel work sharded
	// across goroutines and merged deterministically. Results are
	// byte-identical to the other engines. Mutually exclusive with
	// DenseEngine.
	ParallelEngine bool

	// ParallelShards caps the parallel engine's shard count; <= 0 picks
	// min(GOMAXPROCS, channels). Only meaningful with ParallelEngine;
	// results are byte-identical for every value.
	ParallelShards int

	// TraceSink, when set, streams every machine event (stage crossings,
	// DRAM commands, warp stalls, skip credits) from the run into the
	// sink. Only legal for single-cell Run calls: a multi-cell sweep
	// would interleave streams nondeterministically, so Run rejects it.
	TraceSink obs.Sink

	// Sampler, when set, snapshots the run's counters every N core
	// cycles into a time-series. Single-cell only, like TraceSink.
	Sampler *stats.Sampler

	// Manifest attaches a provenance record (config hash, seed, engine,
	// wall time, go version) to every Result.
	Manifest bool

	// CheckpointDir enables crash-safe progress: the directory holds a
	// per-cell progress journal (journal.jsonl) and mid-cell machine
	// checkpoints (<hash>.ckpt), written atomically. Empty disables.
	CheckpointDir string

	// CheckpointEvery is the mid-cell checkpoint cadence in core cycles;
	// <= 0 means DefaultCheckpointEvery. Only meaningful with a
	// CheckpointDir.
	CheckpointEvery int64

	// Resume continues an interrupted sweep from CheckpointDir: cells
	// recorded complete in the journal are reconstructed without
	// re-simulating, and a cell with an on-disk checkpoint restarts from
	// it — deterministically, as if never interrupted. Requires a
	// CheckpointDir.
	Resume bool

	// CellRetries retries a cell that failed transiently (recovered
	// panic, simulation deadline, watchdog timeout) up to N more times
	// with exponential backoff; 0 disables.
	CellRetries int

	// CellTimeout arms a per-cell wall-clock watchdog: a cell running
	// longer is cooperatively aborted and reported as
	// olerrors.ErrCellTimeout. 0 disables.
	CellTimeout time.Duration

	// HaltAfterCycles deterministically halts the cell at the first
	// engine step past the given core cycle, writes a final checkpoint
	// (when a CheckpointDir is set) and fails the run with
	// olerrors.ErrHalted. It is the reproducible "kill" behind
	// crash-resume testing. Single-cell only, like TraceSink.
	HaltAfterCycles int64

	// ResultCache, when set, memoizes completed cell results in a
	// content-addressed store: each unfaulted cell is looked up before
	// execution and inserted after its verification verdict is recorded.
	// A warm rerun of an identical sweep simulates zero cells and
	// produces byte-identical output. Ignored for cells/engines the
	// cache cannot serve faithfully (fault injection, trace sinks,
	// samplers, deterministic halts).
	ResultCache *rcache.Cache

	// TwinEngine answers every cell from the calibrated analytical twin
	// instead of simulating: microsecond approximate answers with a
	// recorded error bound, never functionally verified. Requires Twin.
	// Mutually exclusive with the cycle engines and with every option
	// that observes or steers a real simulation (trace sinks, samplers,
	// halts, checkpoints).
	TwinEngine bool

	// Twin is the calibration the twin engine answers from.
	Twin *twin.Predictor

	// TwinEscalate re-runs any cell the twin declines
	// (twin.ErrOutOfConfidence) on the skip-ahead cycle engine instead
	// of failing it. The escalated cell is byte-identical to a direct
	// cycle-engine run. Only meaningful with TwinEngine.
	TwinEscalate bool

	// FS is the filesystem checkpoints and the progress journal write
	// through; nil means the real one. The chaos harness injects its
	// sick disk here. Durability failures under a sick disk degrade
	// (see Engine.DurabilityErrors) instead of failing cells: a run on
	// a dying disk loses crash-resume coverage, never results.
	FS chaos.FS
}

// Engine executes cell lists. An Engine is safe for concurrent use and
// its kernel cache persists across Run calls, so one engine should
// serve a whole sweep.
type Engine struct {
	par      int
	progress func(done, total int)
	dense    bool
	parallel bool
	shards   int
	cache    *kernelCache
	sink     obs.Sink
	sampler  *stats.Sampler
	manifest bool

	ckptDir   string
	ckptEvery int64
	resume    bool
	retries   int
	cellTO    time.Duration
	haltAfter int64
	rcache    *rcache.Cache
	twinEng   bool
	twin      *twin.Predictor
	twinEsc   bool
	fs        chaos.FS
	retryBase time.Duration // backoff base; test seam, 0 means 10ms
	grace     time.Duration // watchdog abandon grace; test seam

	simulated atomic.Int64 // cells actually executed (not replayed or cache-served)

	// Durability degradation state: a failed journal append stops
	// journaling for the rest of the engine's life (appending past a
	// torn line would turn a tolerable torn tail into a loud corrupt
	// middle on the next resume); failed checkpoint saves are counted
	// and skipped. Both cost resume coverage, never correctness.
	journalDown    atomic.Bool
	durabilityErrs atomic.Int64

	mu   sync.Mutex // serializes progress callbacks
	done int
}

// New creates an engine.
func New(opts Options) *Engine {
	e := &Engine{
		par:       opts.Parallelism,
		progress:  opts.Progress,
		dense:     opts.DenseEngine,
		parallel:  opts.ParallelEngine,
		shards:    opts.ParallelShards,
		sink:      opts.TraceSink,
		sampler:   opts.Sampler,
		manifest:  opts.Manifest,
		ckptDir:   opts.CheckpointDir,
		ckptEvery: opts.CheckpointEvery,
		resume:    opts.Resume,
		retries:   opts.CellRetries,
		cellTO:    opts.CellTimeout,
		haltAfter: opts.HaltAfterCycles,
		rcache:    opts.ResultCache,
		twinEng:   opts.TwinEngine,
		twin:      opts.Twin,
		twinEsc:   opts.TwinEscalate,
		fs:        opts.FS,
	}
	if e.fs == nil {
		e.fs = chaos.OS
	}
	if !opts.DisableKernelCache {
		e.cache = newKernelCache()
	}
	return e
}

// CacheStats reports built-kernel cache hits and misses accumulated
// over the engine's lifetime (both zero when the cache is disabled).
func (e *Engine) CacheStats() (hits, misses int64) {
	if e.cache == nil {
		return 0, 0
	}
	return e.cache.stats()
}

// Run executes the cells and returns their results in declaration
// order. The first failing cell (in declaration order) aborts the
// sweep: already-running cells finish, unstarted cells never start, and
// the returned error is a *CellError naming the culprit. A canceled
// context yields an error wrapping olerrors.ErrCanceled unless a
// non-cancellation failure happened first.
func (e *Engine) Run(ctx context.Context, cells []Cell) ([]Result, error) {
	if e.dense && e.parallel {
		// Name both options, like the single-cell guards below: the caller
		// must drop WithDenseEngine or WithParallelEngine, not guess.
		return nil, fmt.Errorf("runner: %w: WithDenseEngine and WithParallelEngine pick conflicting engines; choose one of -engine=dense|skip|parallel",
			olerrors.ErrInvalidSpec)
	}
	if e.twinEng {
		// The twin is an approximation, not a simulation: every option
		// that observes or steers a real run is meaningless under it and
		// silently wrong to ignore, so each conflict is named and refused.
		switch {
		case e.dense || e.parallel:
			return nil, fmt.Errorf("runner: %w: TwinEngine conflicts with the dense/parallel cycle engines; choose one of -engine=twin|dense|skip|parallel",
				olerrors.ErrInvalidSpec)
		case e.sink != nil:
			return nil, fmt.Errorf("runner: %w: WithTraceSink needs a real simulation; the twin engine produces no events",
				olerrors.ErrInvalidSpec)
		case e.sampler != nil:
			return nil, fmt.Errorf("runner: %w: WithSampler needs a real simulation; the twin engine produces no time-series",
				olerrors.ErrInvalidSpec)
		case e.haltAfter > 0:
			return nil, fmt.Errorf("runner: %w: WithHaltAfter halts a real simulation; the twin engine has none",
				olerrors.ErrInvalidSpec)
		case e.ckptDir != "":
			return nil, fmt.Errorf("runner: %w: checkpoints journal cycle-engine progress; twin answers must not masquerade as simulated cells",
				olerrors.ErrInvalidSpec)
		case e.twin == nil:
			return nil, fmt.Errorf("runner: %w: TwinEngine needs a calibration (Options.Twin / WithTwin)",
				olerrors.ErrInvalidSpec)
		}
	}
	if len(cells) > 1 {
		// Name the offending option: "TraceSink/Sampler" told the caller
		// nothing about which of their options to remove.
		if e.sink != nil {
			return nil, fmt.Errorf("runner: %w: WithTraceSink attaches to exactly one cell, got %d",
				olerrors.ErrInvalidSpec, len(cells))
		}
		if e.sampler != nil {
			return nil, fmt.Errorf("runner: %w: WithSampler attaches to exactly one cell, got %d",
				olerrors.ErrInvalidSpec, len(cells))
		}
		if e.haltAfter > 0 {
			return nil, fmt.Errorf("runner: %w: WithHaltAfter attaches to exactly one cell, got %d",
				olerrors.ErrInvalidSpec, len(cells))
		}
	}
	if e.resume && e.ckptDir == "" {
		return nil, fmt.Errorf("runner: %w: Resume needs a CheckpointDir", olerrors.ErrInvalidSpec)
	}
	var (
		journal   *ckpt.Journal
		doneCells map[string]ckpt.JournalEntry
	)
	if e.ckptDir != "" {
		if err := e.fs.MkdirAll(e.ckptDir, 0o755); err != nil {
			return nil, fmt.Errorf("runner: checkpoint dir: %w", err)
		}
		jpath := filepath.Join(e.ckptDir, journalName)
		if e.resume {
			m, err := ckpt.LoadJournal(jpath)
			if err != nil {
				return nil, err
			}
			doneCells = m
		}
		j, err := ckpt.OpenJournalFS(jpath, e.fs)
		if err != nil {
			return nil, err
		}
		journal = j
		defer journal.Close()
		// A cancelled or crashed save can strand a temp file; the rename
		// protocol makes temps always-garbage, so sweep them on the way
		// out and leave the directory holding only real checkpoints.
		defer e.sweepTemps()
	}
	total := len(cells)
	results := make([]Result, total)
	errs := make([]error, total)

	par := e.par
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > total {
		par = total
	}

	var (
		mu      sync.Mutex
		next    int
		stopped bool
		wg      sync.WaitGroup
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if stopped || next >= total {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	finish := func(i int, err error) {
		mu.Lock()
		errs[i] = err
		if err != nil {
			stopped = true
		}
		mu.Unlock()
		e.tick(total)
	}

	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if cerr := ctx.Err(); cerr != nil {
					finish(i, &CellError{Key: cells[i].Key, Index: i,
						Err: fmt.Errorf("%w: %v", olerrors.ErrCanceled, cerr)})
					continue
				}
				if ent, ok := doneCells[cellHash(&cells[i])]; ok {
					res, err := e.replayJournal(&cells[i], ent)
					if err != nil {
						finish(i, &CellError{Key: cells[i].Key, Index: i, Err: err})
						continue
					}
					results[i] = res
					finish(i, nil)
					continue
				}
				res, err := e.runCellRetry(ctx, &cells[i], journal)
				if err != nil {
					finish(i, &CellError{Key: cells[i].Key, Index: i, Err: err})
					continue
				}
				results[i] = res
				finish(i, nil)
			}
		}()
	}
	wg.Wait()

	// Prefer a real failure over a cancellation artifact: a canceled
	// sweep marks every unfinished cell with ErrCanceled, which must not
	// shadow the genuine error that may hide behind it.
	var cancelErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, olerrors.ErrCanceled) {
			if cancelErr == nil {
				cancelErr = err
			}
			continue
		}
		return nil, err
	}
	if cancelErr != nil {
		return nil, cancelErr
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("runner: %w: %v", olerrors.ErrCanceled, cerr)
	}
	return results, nil
}

// tick advances the completion counter and reports progress. The
// engine-level mutex keeps callbacks serialized and counts monotonic
// even when several Run calls share the engine.
func (e *Engine) tick(total int) {
	if e.progress == nil {
		e.mu.Lock()
		e.done++
		e.mu.Unlock()
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.done++
	e.progress(e.done, total)
}

// runCell executes one simulation with panic recovery. stop, when
// non-nil, is the cooperative abort flag the watchdog and cancellation
// paths set; the machine polls it between engine steps.
func (e *Engine) runCell(c *Cell, hash string, stop *atomic.Bool) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v\n%s", olerrors.ErrCellPanic, r, debug.Stack())
		}
	}()
	if c.hook != nil {
		c.hook()
	}

	var plan *fault.Plan
	if c.Fault.Active() {
		if err := c.Fault.Validate(); err != nil {
			return Result{}, err
		}
		if c.Host {
			return Result{}, fmt.Errorf("runner: %w: fault injection targets the PIM pipeline; host-baseline cell %q cannot take a Fault spec",
				olerrors.ErrInvalidSpec, c.Key)
		}
		plan = fault.NewPlan(c.Fault)
	}

	k, err := e.buildKernel(c)
	if err != nil {
		return Result{}, err
	}
	m, err := gpu.NewMachine(c.Cfg, k.Store, k.Programs)
	if err != nil {
		return Result{}, err
	}
	if plan != nil {
		m.SetFaultPlan(plan)
	}
	if c.Traffic.PerChannel > 0 {
		m.SetHostTraffic(c.Traffic)
	}
	if e.dense {
		m.SetDense(true)
	}
	if e.parallel {
		m.SetParallel(e.shards)
	}
	if e.sink != nil {
		m.SetSink(e.sink)
	}
	if e.sampler != nil {
		m.SetSampler(e.sampler)
	}
	if stop != nil {
		m.SetAbort(stop.Load)
	}
	if e.haltAfter > 0 {
		m.SetHaltAfter(e.haltAfter)
	}
	if e.ckptDir != "" {
		// Checkpoint wiring comes after every other setter: RestoreState
		// overwrites whatever state the setters initialized, and the
		// capture closure must see the fully armed machine.
		path := e.ckptPath(hash)
		meta := ckpt.Meta{
			CellHash: hash, Cell: c.Key, Kernel: c.Spec.Name,
			ConfigHash: obs.ConfigHash(c.Cfg), Engine: obs.EngineName(e.dense, e.parallel),
			Seed: c.Cfg.Run.Seed, Bytes: c.Bytes, Fault: c.Fault.String(),
			Host: c.Host, Traffic: c.Traffic.PerChannel > 0,
		}
		every := e.ckptEvery
		if every <= 0 {
			every = DefaultCheckpointEvery
		}
		m.SetCheckpoint(every, func() error {
			st := m.CaptureState()
			mm := meta
			mm.CoreCycle = st.Engine.Now.CoreCycles()
			mm.SimTime = int64(st.Engine.Now)
			if serr := ckpt.SaveFS(path, &ckpt.Checkpoint{Meta: mm, Machine: st}, e.fs); serr != nil {
				// A failed save costs this cell its restart point, not
				// the run: the atomic protocol left the previous
				// checkpoint (or none) intact, so resume still works —
				// from further back.
				e.durabilityErrs.Add(1)
			}
			return nil
		})
		if e.resume {
			switch ck, lerr := ckpt.Load(path); {
			case lerr == nil:
				if verr := validateMeta(ck.Meta, meta); verr != nil {
					return Result{}, verr
				}
				if rerr := m.RestoreState(ck.Machine); rerr != nil {
					return Result{}, fmt.Errorf("runner: %w: %v", olerrors.ErrCheckpointMismatch, rerr)
				}
			case errors.Is(lerr, fs.ErrNotExist):
				// No mid-cell checkpoint: the cell starts from scratch.
			default:
				// A damaged checkpoint is a loud failure, never a silent
				// from-scratch rerun that would mask the corruption.
				return Result{}, fmt.Errorf("cell %q: %w", c.Key, lerr)
			}
		}
	}
	e.simulated.Add(1)
	start := time.Now()
	st, err := m.Run()
	wall := time.Since(start)
	if err != nil {
		return Result{}, fmt.Errorf("%s (%v, TS %dB): %w",
			c.Spec.Name, c.Cfg.Run.Primitive, c.Cfg.PIM.TSBytes, err)
	}
	lat, served := m.HostLatency()
	res = Result{Run: st, Kernel: k, HostLatency: lat, HostServed: served}
	if plan != nil {
		v, oerr := e.classifyFault(c, k, st, plan)
		if oerr != nil {
			return Result{}, oerr
		}
		res.Fault = &v
	}
	if e.manifest {
		res.Manifest = e.newManifest(c, float64(wall.Nanoseconds())/1e6)
	}
	return res, nil
}

// newManifest builds a cell's provenance record. Journal-replayed cells
// carry zero wall time — they did not run.
func (e *Engine) newManifest(c *Cell, wallMS float64) *obs.Manifest {
	return &obs.Manifest{
		Cell:            c.Key,
		Kernel:          c.Spec.Name,
		Primitive:       c.Cfg.Run.Primitive.String(),
		Seed:            c.Cfg.Run.Seed,
		Channels:        c.Cfg.Memory.Channels,
		TSBytes:         c.Cfg.PIM.TSBytes,
		BMF:             c.Cfg.PIM.BMF,
		BytesPerChannel: c.Bytes,
		HostBaseline:    c.Host,
		ConfigHash:      obs.ConfigHash(c.Cfg),
		Engine:          obs.EngineName(e.dense, e.parallel),
		WallMS:          wallMS,
		GoVersion:       runtime.Version(),
	}
}

// classifyFault runs the differential oracle for a fault-injected cell:
// it rebuilds a pristine kernel image (the cache hands out an
// independent store clone per use), replays every program on the
// reference PIM executor to obtain the golden image, and classifies the
// faulted run's final store against it. The golden replay is fully
// independent of the simulator's own Verify pass, so a disagreement
// between the two is an escape, not a tautology.
func (e *Engine) classifyFault(c *Cell, k *kernel.Kernel, st *stats.Run, plan *fault.Plan) (fault.Verdict, error) {
	gold, err := e.buildKernel(c)
	if err != nil {
		return fault.Verdict{}, fmt.Errorf("runner: fault oracle rebuild: %w", err)
	}
	nslots := c.Cfg.CommandsPerTile() * c.Cfg.Memory.GroupsPerChannel
	for _, p := range gold.Programs {
		reqs := gpu.ExpandProgram(gold.Geom, c.Cfg.CommandsPerTile(), p)
		if err := pim.Replay(gold.Store, p.Channel, nslots, reqs); err != nil {
			return fault.Verdict{}, fmt.Errorf("runner: fault oracle replay: %w", err)
		}
	}
	return fault.Classify(gold.Store, k.Store, st, plan.Report()), nil
}

// buildKernel generates or fetches the cell's kernel image. Cached
// kernels share their immutable parts (programs, accounting); the
// mutable DRAM store is cloned per use so concurrent runs never alias.
func (e *Engine) buildKernel(c *Cell) (*kernel.Kernel, error) {
	if e.cache == nil {
		return buildCell(c)
	}
	return e.cache.get(c)
}

func buildCell(c *Cell) (*kernel.Kernel, error) {
	if c.Host {
		return kernel.BuildHost(c.Cfg, c.Spec, c.Bytes)
	}
	return kernel.Build(c.Cfg, c.Spec, c.Bytes)
}

package runner

import (
	"fmt"
	"sync"
	"sync/atomic"

	"orderlight/internal/kernel"
)

// kernelCache memoizes built kernel images keyed by everything that
// feeds generation: the full configuration, the spec, the footprint and
// the host/PIM variant. Sweeps revisit the same (spec, footprint,
// config) point constantly — every ablation reuses the OrderLight Add
// kernel, every figure revisits each TS size — so memoizing the build
// removes a large slice of sweep time without touching determinism:
// generation is a pure function of the key.
//
// Concurrent requests for the same key build once (per-entry
// sync.Once); the shared image's mutable DRAM store is cloned for every
// caller, while the immutable programs and accounting are shared.
type kernelCache struct {
	mu sync.Mutex
	m  map[string]*cacheEntry

	hits, misses atomic.Int64
}

type cacheEntry struct {
	once sync.Once
	k    *kernel.Kernel
	err  error
}

func newKernelCache() *kernelCache {
	return &kernelCache{m: make(map[string]*cacheEntry)}
}

func (c *kernelCache) stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

func (c *kernelCache) get(cell *Cell) (*kernel.Kernel, error) {
	key := cacheKey(cell)
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &cacheEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()

	built := false
	e.once.Do(func() {
		built = true
		e.k, e.err = buildCell(cell)
	})
	if built {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	if e.err != nil {
		return nil, e.err
	}
	// Hand out a private copy of the store: machines write through it.
	k := *e.k
	k.Store = e.k.Store.Clone()
	return &k, nil
}

// cacheKey renders the cell's generation inputs. %#v over the config
// and spec is deterministic (value types only, no pointers or maps) and
// covers every field Build reads, including the ordering primitive and
// the seed; host traffic is deliberately excluded because it does not
// affect kernel generation.
func cacheKey(c *Cell) string {
	return fmt.Sprintf("%#v|%#v|%d|%t", c.Cfg, c.Spec, c.Bytes, c.Host)
}

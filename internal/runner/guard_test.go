package runner

import (
	"context"
	"errors"
	"io"
	"strings"
	"testing"

	"orderlight/internal/obs"
	"orderlight/internal/olerrors"
	"orderlight/internal/stats"
)

// TestSingleCellGuardNamesOption pins the error text of the multi-cell
// guard: the message must name the facade option the caller has to
// remove (WithTraceSink / WithSampler), not a bare field name, and must
// classify as ErrInvalidSpec. A regression here turns a self-explaining
// error back into a scavenger hunt.
func TestSingleCellGuardNamesOption(t *testing.T) {
	cells := testCells(t)
	tests := []struct {
		name string
		opts Options
		want string
	}{
		{
			name: "trace sink",
			opts: Options{TraceSink: obs.NewPerfettoSink(io.Discard)},
			want: "WithTraceSink attaches to exactly one cell, got 4",
		},
		{
			name: "sampler",
			opts: Options{Sampler: stats.NewSampler(100)},
			want: "WithSampler attaches to exactly one cell, got 4",
		},
		{
			name: "sink wins over sampler",
			opts: Options{TraceSink: obs.NewPerfettoSink(io.Discard), Sampler: stats.NewSampler(100)},
			want: "WithTraceSink attaches to exactly one cell, got 4",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.opts).Run(context.Background(), cells)
			if err == nil {
				t.Fatal("multi-cell run with a single-cell option succeeded")
			}
			if !errors.Is(err, olerrors.ErrInvalidSpec) {
				t.Errorf("error %v is not classified as ErrInvalidSpec", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the offending option; want substring %q", err, tc.want)
			}
		})
	}

	// The same options on a single cell are legal: the guard must not
	// overreach.
	if _, err := New(Options{Sampler: stats.NewSampler(100), TraceSink: obs.NewPerfettoSink(io.Discard)}).
		Run(context.Background(), cells[:1]); err != nil {
		t.Errorf("single-cell run with sink and sampler failed: %v", err)
	}
}

// TestEngineConflictGuardNamesOptions pins the dense+parallel conflict
// message to the same standard as the single-cell guards: it must name
// both facade options and the flag spelling that picks one engine.
func TestEngineConflictGuardNamesOptions(t *testing.T) {
	_, err := New(Options{DenseEngine: true, ParallelEngine: true}).Run(context.Background(), testCells(t))
	if err == nil {
		t.Fatal("run with two engines selected succeeded")
	}
	if !errors.Is(err, olerrors.ErrInvalidSpec) {
		t.Errorf("error %v is not classified as ErrInvalidSpec", err)
	}
	for _, want := range []string{"WithDenseEngine", "WithParallelEngine", "-engine=dense|skip|parallel"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not contain %q", err, want)
		}
	}

	// Either engine alone is legal, with or without a shard override.
	if _, err := New(Options{ParallelEngine: true, ParallelShards: 2}).Run(context.Background(), testCells(t)); err != nil {
		t.Errorf("parallel-engine run failed: %v", err)
	}
}

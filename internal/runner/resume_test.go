package runner

import (
	"bytes"
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"orderlight/internal/ckpt"
	"orderlight/internal/config"
	"orderlight/internal/fault"
	"orderlight/internal/kernel"
	"orderlight/internal/olerrors"
)

// oneCell returns a single add/OrderLight cell (~600 simulated core
// cycles, so halts in the low hundreds land mid-run).
func oneCell(t *testing.T) []Cell {
	t.Helper()
	spec, err := kernel.ByName("add")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Run.Primitive = config.PrimitiveOrderLight
	return []Cell{{Key: "resume/add/orderlight", Cfg: cfg, Spec: spec, Bytes: 8 << 10}}
}

func TestSweepResumeFromJournal(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cells := testCells(t)
	ref, err := New(Options{Parallelism: 1}).Run(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Parallelism: 1, CheckpointDir: dir}).Run(ctx, cells); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash after the first two cells: drop the journal's tail.
	jpath := filepath.Join(dir, "journal.jsonl")
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("journal has %d lines, want >= 4", len(lines))
	}
	if err := os.WriteFile(jpath, append(append([]byte(nil), lines[0]...), lines[1]...), 0o644); err != nil {
		t.Fatal(err)
	}

	var ran int32
	resumed := testCells(t)
	for i := range resumed {
		resumed[i].hook = func() { atomic.AddInt32(&ran, 1) }
	}
	res, err := New(Options{Parallelism: 1, CheckpointDir: dir, Resume: true}).Run(ctx, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&ran); got != int32(len(cells)-2) {
		t.Fatalf("resumed sweep simulated %d cells, want %d (two were journal-complete)", got, len(cells)-2)
	}
	for i := range res {
		if res[i].Run.String() != ref[i].Run.String() {
			t.Errorf("cell %d (%s): resumed result differs from reference:\n%s\nvs\n%s",
				i, cells[i].Key, res[i].Run, ref[i].Run)
		}
	}

	// A second resume replays everything from the journal: nothing runs.
	atomic.StoreInt32(&ran, 0)
	res, err = New(Options{Parallelism: 1, CheckpointDir: dir, Resume: true}).Run(ctx, resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&ran); got != 0 {
		t.Fatalf("fully journaled sweep still simulated %d cells", got)
	}
	for i := range res {
		if res[i].Run.String() != ref[i].Run.String() {
			t.Errorf("cell %d: journal replay differs from reference", i)
		}
	}
}

func TestHaltCheckpointResumeSweep(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ref, err := New(Options{}).Run(ctx, oneCell(t))
	if err != nil {
		t.Fatal(err)
	}

	cells := oneCell(t)
	_, err = New(Options{CheckpointDir: dir, HaltAfterCycles: 200}).Run(ctx, cells)
	if !errors.Is(err, olerrors.ErrHalted) {
		t.Fatalf("halted sweep error = %v, want ErrHalted", err)
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("halted sweep error %v is not a *CellError", err)
	}
	ckPath := filepath.Join(dir, cellHash(&cells[0])+".ckpt")
	if _, err := os.Stat(ckPath); err != nil {
		t.Fatalf("halt left no checkpoint: %v", err)
	}

	res, err := New(Options{CheckpointDir: dir, Resume: true}).Run(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Run.String() != ref[0].Run.String() {
		t.Fatalf("resumed cell differs from uninterrupted run:\n%s\nvs\n%s", res[0].Run, ref[0].Run)
	}
	if !res[0].Run.Correct {
		t.Fatal("resumed cell verified incorrect")
	}
	// The cell is journal-complete; its checkpoint is spent and removed.
	if _, err := os.Stat(ckPath); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("spent checkpoint still on disk: %v", err)
	}
}

func TestFaultedCellHaltResumeParity(t *testing.T) {
	ctx := context.Background()
	cells := oneCell(t)
	cells[0].Fault = fault.Spec{Class: fault.ClassDropOrdering, Seed: 7, Rate: 0.5}

	ref, err := New(Options{}).Run(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	if ref[0].Fault == nil {
		t.Fatal("faulted reference cell has no verdict")
	}

	dir := t.TempDir()
	if _, err := New(Options{CheckpointDir: dir, HaltAfterCycles: 200}).Run(ctx, cells); !errors.Is(err, olerrors.ErrHalted) {
		t.Fatalf("halted faulted sweep error = %v, want ErrHalted", err)
	}
	res, err := New(Options{CheckpointDir: dir, Resume: true}).Run(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Fault == nil {
		t.Fatal("resumed faulted cell has no verdict")
	}
	if *res[0].Fault != *ref[0].Fault {
		t.Fatalf("resumed verdict %+v, want %+v", *res[0].Fault, *ref[0].Fault)
	}
	if res[0].Run.String() != ref[0].Run.String() {
		t.Fatalf("resumed faulted stats differ:\n%s\nvs\n%s", res[0].Run, ref[0].Run)
	}
}

func TestCellRetrySucceedsAfterTransientPanics(t *testing.T) {
	cells := oneCell(t)
	var attempts int32
	cells[0].hook = func() {
		if atomic.AddInt32(&attempts, 1) <= 2 {
			panic("transient")
		}
	}
	e := New(Options{CellRetries: 2})
	e.retryBase = time.Millisecond
	res, err := e.Run(context.Background(), cells)
	if err != nil {
		t.Fatalf("retried cell failed: %v", err)
	}
	if got := atomic.LoadInt32(&attempts); got != 3 {
		t.Fatalf("cell ran %d times, want 3", got)
	}
	if !res[0].Run.Correct {
		t.Fatal("retried cell verified incorrect")
	}
}

func TestCellRetriesExhausted(t *testing.T) {
	cells := oneCell(t)
	var attempts int32
	cells[0].hook = func() {
		atomic.AddInt32(&attempts, 1)
		panic("permanent")
	}
	e := New(Options{CellRetries: 1})
	e.retryBase = time.Millisecond
	_, err := e.Run(context.Background(), cells)
	if !errors.Is(err, olerrors.ErrCellPanic) {
		t.Fatalf("exhausted retries error = %v, want ErrCellPanic", err)
	}
	if got := atomic.LoadInt32(&attempts); got != 2 {
		t.Fatalf("cell ran %d times, want 2 (original + 1 retry)", got)
	}
}

func TestNonRetryableFailureRunsOnce(t *testing.T) {
	spec, err := kernel.ByName("add")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	var attempts int32
	cells := []Cell{{
		Key: "bad", Cfg: cfg, Spec: spec, Bytes: 8 << 10, Host: true,
		Fault: fault.Spec{Class: fault.ClassDropOrdering, Seed: 1, Rate: 1},
		hook:  func() { atomic.AddInt32(&attempts, 1) },
	}}
	e := New(Options{CellRetries: 3})
	e.retryBase = time.Millisecond
	_, err = e.Run(context.Background(), cells)
	if !errors.Is(err, olerrors.ErrInvalidSpec) {
		t.Fatalf("invalid cell error = %v, want ErrInvalidSpec", err)
	}
	if got := atomic.LoadInt32(&attempts); got != 1 {
		t.Fatalf("structurally failing cell ran %d times, want 1 (not retryable)", got)
	}
}

func TestCellWatchdogTimeout(t *testing.T) {
	cells := oneCell(t)
	release := make(chan struct{})
	cells[0].hook = func() { <-release }
	defer close(release)
	e := New(Options{CellTimeout: 20 * time.Millisecond})
	e.grace = 30 * time.Millisecond
	start := time.Now()
	_, err := e.Run(context.Background(), cells)
	if !errors.Is(err, olerrors.ErrCellTimeout) {
		t.Fatalf("wedged cell error = %v, want ErrCellTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog took %v to fire", elapsed)
	}
}

func TestCancelCleanupLeavesConsistentDir(t *testing.T) {
	dir := t.TempDir()
	// A stray temp file from a crashed save must be swept on exit.
	stray := filepath.Join(dir, "deadbeef.ckpt.tmp")
	if err := os.WriteFile(stray, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cells := testCells(t)
	cells[0].hook = func() { cancel() }
	_, err := New(Options{Parallelism: 1, CheckpointDir: dir}).Run(ctx, cells)
	if !errors.Is(err, olerrors.ErrCanceled) {
		t.Fatalf("canceled sweep error = %v, want ErrCanceled", err)
	}
	if _, err := os.Stat(stray); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("stray checkpoint temp file survived the sweep")
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("temp files left after cancellation: %v", tmps)
	}
	// The journal is loadable — consistent, possibly partial.
	if _, err := ckpt.LoadJournal(filepath.Join(dir, "journal.jsonl")); err != nil {
		t.Fatalf("journal unreadable after cancellation: %v", err)
	}
}

func TestResumeRefusesCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cells := oneCell(t)
	path := filepath.Join(dir, cellHash(&cells[0])+".ckpt")
	if err := os.WriteFile(path, []byte("OLCKPT but torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := New(Options{CheckpointDir: dir, Resume: true}).Run(context.Background(), cells)
	if !errors.Is(err, olerrors.ErrCheckpointTruncated) {
		t.Fatalf("corrupt checkpoint error = %v, want ErrCheckpointTruncated", err)
	}
}

func TestResumeRefusesEngineMismatch(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cells := oneCell(t)
	if _, err := New(Options{CheckpointDir: dir, HaltAfterCycles: 200}).Run(ctx, cells); !errors.Is(err, olerrors.ErrHalted) {
		t.Fatalf("halted sweep error = %v, want ErrHalted", err)
	}
	// The checkpoint was written by the skip engine; resuming on the
	// dense engine must be refused, not silently diverge.
	_, err := New(Options{CheckpointDir: dir, Resume: true, DenseEngine: true}).Run(ctx, cells)
	if !errors.Is(err, olerrors.ErrCheckpointMismatch) {
		t.Fatalf("engine-mismatch resume error = %v, want ErrCheckpointMismatch", err)
	}
}

func TestValidateMeta(t *testing.T) {
	want := ckpt.Meta{CellHash: "aa", ConfigHash: "cc", Engine: "skip"}
	if err := validateMeta(want, want); err != nil {
		t.Fatalf("matching meta rejected: %v", err)
	}
	for _, got := range []ckpt.Meta{
		{CellHash: "bb", ConfigHash: "cc", Engine: "skip"},
		{CellHash: "aa", ConfigHash: "dd", Engine: "skip"},
		{CellHash: "aa", ConfigHash: "cc", Engine: "dense"},
	} {
		if err := validateMeta(got, want); !errors.Is(err, olerrors.ErrCheckpointMismatch) {
			t.Errorf("meta %+v: error %v, want ErrCheckpointMismatch", got, err)
		}
	}
}

func TestResumeOptionValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := New(Options{Resume: true}).Run(ctx, oneCell(t)); !errors.Is(err, olerrors.ErrInvalidSpec) {
		t.Fatalf("Resume without CheckpointDir: %v, want ErrInvalidSpec", err)
	}
	if _, err := New(Options{HaltAfterCycles: 100}).Run(ctx, testCells(t)); !errors.Is(err, olerrors.ErrInvalidSpec) {
		t.Fatalf("multi-cell HaltAfterCycles: %v, want ErrInvalidSpec", err)
	}
}

func TestCellHashStableAndSensitive(t *testing.T) {
	cells := testCells(t)
	a, b := cellHash(&cells[0]), cellHash(&cells[0])
	if a != b {
		t.Fatal("cell hash is not stable")
	}
	seen := map[string]string{}
	for i := range cells {
		h := cellHash(&cells[i])
		if prev, dup := seen[h]; dup {
			t.Fatalf("cells %q and %q collide on hash %s", prev, cells[i].Key, h)
		}
		seen[h] = cells[i].Key
	}
	mutated := cells[0]
	mutated.Bytes++
	if cellHash(&mutated) == a {
		t.Fatal("cell hash ignores the footprint")
	}
}

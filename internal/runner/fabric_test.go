package runner

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"orderlight/internal/config"
	"orderlight/internal/kernel"
	"orderlight/internal/olerrors"
	"orderlight/internal/stats"
)

// fabricCells builds a small deterministic cell list for board tests.
func fabricCells(t *testing.T, n int) []Cell {
	t.Helper()
	cfg := config.Default()
	cells := make([]Cell, n)
	for i := range cells {
		sp, err := kernel.ByName("add")
		if err != nil {
			t.Fatal(err)
		}
		cells[i] = Cell{Key: "fab/" + string(rune('a'+i)), Cfg: cfg, Spec: sp, Bytes: 4 << 10}
	}
	return cells
}

func TestBoardLeaseCompleteWait(t *testing.T) {
	b := NewBoard(time.Minute, 2)
	key, err := b.Post([]byte("req"), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if key != JobKey([]byte("req")) {
		t.Fatalf("Post key = %q, want content hash %q", key, JobKey([]byte("req")))
	}
	var leases []*Lease
	for {
		l := b.Lease("w")
		if l == nil {
			break
		}
		if string(l.Request) != "req" {
			t.Fatalf("lease request = %q", l.Request)
		}
		leases = append(leases, l)
	}
	if len(leases) != 3 { // chunks [0,2) [2,4) [4,5)
		t.Fatalf("got %d leases, want 3", len(leases))
	}
	done := make(chan struct{})
	var got []CellOutcome
	var werr error
	go func() {
		defer close(done)
		got, werr = b.Wait(context.Background(), key)
	}()
	for _, l := range leases {
		outs := make([]CellOutcome, 0, l.Hi-l.Lo)
		for i := l.Lo; i < l.Hi; i++ {
			outs = append(outs, CellOutcome{Index: i, Key: "k", Run: stats.New(512)})
		}
		if err := b.Complete(l.Job, l.ID, "w", outs); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if werr != nil {
		t.Fatal(werr)
	}
	if len(got) != 5 {
		t.Fatalf("got %d outcomes", len(got))
	}
	for i, o := range got {
		if o.Index != i {
			t.Fatalf("outcome %d has index %d — not declaration order", i, o.Index)
		}
	}
}

// An expired lease's range is re-issued, and the late completion of
// the original lease is accepted without double-counting.
func TestBoardLeaseExpiryAndDuplicates(t *testing.T) {
	b := NewBoard(time.Minute, 4)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	key, err := b.Post(nil, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	l1 := b.Lease("w1")
	if l1 == nil || l1.Lo != 0 || l1.Hi != 4 {
		t.Fatalf("lease = %+v", l1)
	}
	if l := b.Lease("w2"); l != nil {
		t.Fatalf("second lease granted while first outstanding: %+v", l)
	}
	now = now.Add(2 * time.Minute) // l1 expires
	l2 := b.Lease("w2")
	if l2 == nil || l2.Lo != 0 || l2.Hi != 4 {
		t.Fatalf("re-issued lease = %+v", l2)
	}
	outs := make([]CellOutcome, 4)
	for i := range outs {
		outs[i] = CellOutcome{Index: i, Run: stats.New(512)}
	}
	// The dead-but-alive w1 completes late, then w2 duplicates.
	if err := b.Complete(key, l1.ID, "w1", outs); err != nil {
		t.Fatal(err)
	}
	if err := b.Complete(key, l2.ID, "w2", outs); err != nil {
		t.Fatal(err)
	}
	got, err := b.Wait(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d outcomes", len(got))
	}
}

func TestBoardWorkerErrorFailsJob(t *testing.T) {
	b := NewBoard(time.Minute, 8)
	key, err := b.Post(nil, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	l := b.Lease("w")
	if err := b.Complete(key, l.ID, "w", []CellOutcome{{Index: 1, Key: "bad/cell", Err: "simulated blowup"}}); err != nil {
		t.Fatal(err)
	}
	_, err = b.Wait(context.Background(), key)
	if err == nil || !strings.Contains(err.Error(), "simulated blowup") || !strings.Contains(err.Error(), "bad/cell") {
		t.Fatalf("Wait error = %v", err)
	}
	if b.Lease("w") != nil {
		t.Fatal("failed job still leasing")
	}
}

func TestBoardWaitCancel(t *testing.T) {
	b := NewBoard(time.Minute, 1)
	key, err := b.Post(nil, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Wait(ctx, key); !errors.Is(err, olerrors.ErrCanceled) {
		t.Fatalf("Wait = %v, want ErrCanceled", err)
	}
	// The job is forgotten; a straggler Complete errors but does not panic.
	if err := b.Complete(key, "l000001", "w", nil); err == nil {
		t.Fatal("Complete on forgotten job succeeded")
	}
}

func TestBoardProgress(t *testing.T) {
	b := NewBoard(time.Minute, 1)
	var mu sync.Mutex
	var ticks []int
	key, err := b.Post(nil, 3, func(done, total int) {
		mu.Lock()
		ticks = append(ticks, done)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for {
		l := b.Lease("w")
		if l == nil {
			break
		}
		if err := b.Complete(key, l.ID, "w", []CellOutcome{{Index: l.Lo, Run: stats.New(512)}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.Wait(context.Background(), key); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 3 || ticks[2] != 3 {
		t.Fatalf("progress ticks = %v", ticks)
	}
}

// ExecuteLease + ResultFromOutcome round-trip: a leased chunk executed
// on a worker engine reassembles into results identical to a local run.
func TestExecuteLeaseRoundTrip(t *testing.T) {
	cells := fabricCells(t, 3)
	local := New(Options{})
	want, err := local.Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	workerEng := New(Options{})
	coord := New(Options{})
	var results []Result
	for lo := 0; lo < len(cells); lo++ { // chunk size 1: worst case
		outs := workerEng.ExecuteLease(context.Background(), cells, lo, lo+1)
		if len(outs) != 1 || outs[0].Err != "" {
			t.Fatalf("outcomes = %+v", outs)
		}
		r, err := coord.ResultFromOutcome(&cells[lo], outs[0])
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	for i := range want {
		if want[i].Run.String() != results[i].Run.String() {
			t.Fatalf("cell %d stats differ:\n%s\nvs\n%s", i, want[i].Run, results[i].Run)
		}
	}
}

func TestExecuteLeaseBadRange(t *testing.T) {
	cells := fabricCells(t, 2)
	eng := New(Options{})
	outs := eng.ExecuteLease(context.Background(), cells, 1, 5)
	if len(outs) != 1 || outs[0].Err == "" {
		t.Fatalf("outcomes = %+v", outs)
	}
}

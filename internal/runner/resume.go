package runner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"orderlight/internal/ckpt"
	"orderlight/internal/olerrors"
	"orderlight/internal/sim"
	"orderlight/internal/twin"
)

// journalName is the progress journal's file name inside CheckpointDir.
const journalName = "journal.jsonl"

// DefaultCheckpointEvery is the checkpoint cadence in core cycles when
// a checkpoint directory is set without an explicit cadence.
const DefaultCheckpointEvery = 1 << 18

// cellHash renders a cell's full identity — everything that affects its
// result — into a short stable key for journal entries and checkpoint
// file names. %#v over value-typed structs is deterministic.
func cellHash(c *Cell) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%#v|%#v|%d|%t|%#v|%#v",
		c.Key, c.Cfg, c.Spec, c.Bytes, c.Host, c.Traffic, c.Fault)))
	return hex.EncodeToString(sum[:8])
}

// ckptPath is the cell's checkpoint file inside the checkpoint dir.
func (e *Engine) ckptPath(hash string) string {
	return filepath.Join(e.ckptDir, hash+".ckpt")
}

// sweepTemps removes stray checkpoint temp files. An interrupted save
// leaves a *.tmp next to the real file; the atomic rename protocol means
// a temp file is never a valid checkpoint, so removal is always safe.
func (e *Engine) sweepTemps() {
	tmps, _ := filepath.Glob(filepath.Join(e.ckptDir, "*.tmp"))
	for _, t := range tmps {
		os.Remove(t)
	}
}

// validateMeta refuses to restore a checkpoint into a run it does not
// belong to. Identity is the cell hash (covering config, spec,
// footprint, traffic and fault plan), the config hash as a second
// opinion, and the engine flavor — a checkpoint resumes on the engine
// that wrote it.
func validateMeta(got, want ckpt.Meta) error {
	switch {
	case got.CellHash != want.CellHash:
		return fmt.Errorf("runner: %w: file belongs to cell %q (%s), this run is cell %q (%s)",
			olerrors.ErrCheckpointMismatch, got.Cell, got.CellHash, want.Cell, want.CellHash)
	case got.ConfigHash != want.ConfigHash:
		return fmt.Errorf("runner: %w: file was written under config %s, this run uses %s",
			olerrors.ErrCheckpointMismatch, got.ConfigHash, want.ConfigHash)
	case got.Engine != want.Engine:
		return fmt.Errorf("runner: %w: file was written by the %s engine, this run uses %s (rerun with the matching engine)",
			olerrors.ErrCheckpointMismatch, got.Engine, want.Engine)
	}
	return nil
}

// replayJournal reconstructs a journal-completed cell's Result without
// re-simulating. The kernel image is rebuilt (cached builds make this
// cheap) because results carry generation metadata; the manifest, when
// requested, is restamped with zero wall time — the cell did not run.
func (e *Engine) replayJournal(c *Cell, ent ckpt.JournalEntry) (Result, error) {
	k, err := e.buildKernel(c)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		Run: ent.Run, Kernel: k,
		HostLatency: ent.HostLatency, HostServed: ent.HostServed,
		Fault: ent.Fault,
	}
	if e.manifest {
		res.Manifest = e.newManifest(c, 0)
	}
	return res, nil
}

// retryable reports whether a cell failure is worth retrying: recovered
// panics, simulation deadline overruns and watchdog timeouts. Structural
// failures (invalid specs, checkpoint damage, cancellation, deterministic
// halts) are not — they would fail identically again.
func retryable(err error) bool {
	return errors.Is(err, olerrors.ErrCellPanic) ||
		errors.Is(err, sim.ErrDeadline) ||
		errors.Is(err, olerrors.ErrCellTimeout)
}

// backoff sleeps before retry attempt+1: exponential in the attempt with
// deterministic jitter derived from the cell hash, so concurrent
// retrying cells decorrelate without nondeterministic randomness. The
// sleep is cut short by context cancellation.
func (e *Engine) backoff(ctx context.Context, hash string, attempt int) error {
	base := e.retryBase
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	d := base << uint(attempt)
	var seed uint64
	for _, b := range []byte(hash) {
		seed = seed*131 + uint64(b)
	}
	seed += uint64(attempt) * 0x9e37_79b9_7f4a_7c15
	d += time.Duration(seed % uint64(d/2+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return fmt.Errorf("runner: %w: %v", olerrors.ErrCanceled, ctx.Err())
	case <-t.C:
		return nil
	}
}

// journalAppend records a completed cell, degrading on failure: the
// first failed append disables journaling for the rest of the engine's
// life and counts a durability error, but the cell's result stands.
// Appending past a torn write would turn the journal's tolerable torn
// tail into a loud corrupt middle on the next resume, so once one
// append fails none may follow it.
func (e *Engine) journalAppend(journal *ckpt.Journal, ent ckpt.JournalEntry) {
	if e.journalDown.Load() {
		return
	}
	if jerr := journal.Append(ent); jerr != nil {
		e.journalDown.Store(true)
		e.durabilityErrs.Add(1)
	}
}

// DurabilityErrors reports how many checkpoint saves or journal appends
// failed and were degraded (skipped) during this engine's runs. Zero
// means full crash-resume coverage; non-zero means results are still
// correct but a crash would resume from further back.
func (e *Engine) DurabilityErrors() int64 { return e.durabilityErrs.Load() }

// runCellRetry drives one cell through the watchdog and the retry loop,
// and journals the completed result. Retries rerun the cell from
// scratch (or from its last on-disk checkpoint when resume is on) after
// an exponential backoff.
func (e *Engine) runCellRetry(ctx context.Context, c *Cell, journal *ckpt.Journal) (Result, error) {
	if e.twinEng {
		res, err := e.runTwinCell(c)
		if err == nil {
			return res, nil
		}
		if !e.twinEsc || !errors.Is(err, twin.ErrOutOfConfidence) {
			return Result{}, err
		}
		// Escalation: fall through to the skip-ahead cycle engine. The
		// cell takes the ordinary path below — same cache domain, same
		// manifest engine name — so its result is byte-identical to a
		// direct cycle-engine run.
	}
	hash := cellHash(c)
	cached := e.cacheArmed() && cacheableCell(c)
	if cached {
		if res, ok, err := e.lookupCache(c); err != nil {
			return Result{}, err
		} else if ok {
			if journal != nil {
				// Journal the served cell like any completed one, so a
				// later resume of this sweep replays it even without the
				// cache directory.
				e.journalAppend(journal, ckpt.JournalEntry{
					Key: c.Key, Hash: hash, Run: res.Run,
					HostLatency: res.HostLatency, HostServed: res.HostServed,
				})
			}
			return res, nil
		}
	}
	for attempt := 0; ; attempt++ {
		res, err := e.runCellGuarded(ctx, c, hash)
		if err == nil {
			if cached {
				e.storeCache(c, res)
			}
			if res.Manifest != nil && cached {
				res.Manifest.CacheKey = e.cellCacheKey(c)
			}
			if journal != nil {
				e.journalAppend(journal, ckpt.JournalEntry{
					Key: c.Key, Hash: hash, Run: res.Run,
					HostLatency: res.HostLatency, HostServed: res.HostServed,
					Fault: res.Fault,
				})
				// The cell is journal-complete; its checkpoint is spent.
				os.Remove(e.ckptPath(hash))
			}
			return res, nil
		}
		if attempt >= e.retries || !retryable(err) {
			return Result{}, err
		}
		if serr := e.backoff(ctx, hash, attempt); serr != nil {
			return Result{}, serr
		}
	}
}

// abandonGrace is how long a stopped cell gets to notice its abort flag
// before the watchdog abandons its goroutine. The abort poll runs every
// abortPollCycles of simulated time, so anything still running after the
// grace period is wedged inside a single tick, not merely slow.
const abandonGrace = 10 * time.Second

// runCellGuarded runs one cell under the per-cell watchdog and the
// context: either firing sets the machine's cooperative abort flag and
// waits a grace period for the cell to unwind. A cell that ignores the
// flag is abandoned — its goroutine may leak, but the sweep reports a
// typed error instead of hanging. Results are read only after the cell
// goroutine signals completion, so an abandoned cell can never race the
// sweep's result slots.
func (e *Engine) runCellGuarded(ctx context.Context, c *Cell, hash string) (Result, error) {
	if e.cellTO <= 0 && ctx.Done() == nil {
		return e.runCell(c, hash, nil)
	}
	var stop atomic.Bool
	type outcome struct {
		res Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := e.runCell(c, hash, &stop)
		done <- outcome{res, err}
	}()

	var timeout <-chan time.Time
	if e.cellTO > 0 {
		t := time.NewTimer(e.cellTO)
		defer t.Stop()
		timeout = t.C
	}
	grace := e.grace
	if grace <= 0 {
		grace = abandonGrace
	}

	var shape func(outcome) (Result, error)
	select {
	case o := <-done:
		return o.res, o.err
	case <-ctx.Done():
		stop.Store(true)
		shape = func(o outcome) (Result, error) {
			if o.err != nil && errors.Is(o.err, olerrors.ErrAborted) {
				return Result{}, fmt.Errorf("runner: %w: %v", olerrors.ErrCanceled, ctx.Err())
			}
			return o.res, o.err
		}
	case <-timeout:
		stop.Store(true)
		shape = func(o outcome) (Result, error) {
			if o.err != nil && errors.Is(o.err, olerrors.ErrAborted) {
				return Result{}, fmt.Errorf("runner: %w: cell %q exceeded %v", olerrors.ErrCellTimeout, c.Key, e.cellTO)
			}
			// The cell finished (or failed on its own) at the wire;
			// keep the genuine outcome.
			return o.res, o.err
		}
	}

	g := time.NewTimer(grace)
	defer g.Stop()
	select {
	case o := <-done:
		return shape(o)
	case <-g.C:
		if ctx.Err() != nil {
			return Result{}, fmt.Errorf("runner: %w: %v (cell %q ignored its abort flag; goroutine abandoned)",
				olerrors.ErrCanceled, ctx.Err(), c.Key)
		}
		return Result{}, fmt.Errorf("runner: %w: cell %q exceeded %v and ignored its abort flag; goroutine abandoned",
			olerrors.ErrCellTimeout, c.Key, e.cellTO)
	}
}

package runner

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/kernel"
	"orderlight/internal/olerrors"
)

// testConfig shrinks the machine for test speed.
func testConfig() config.Config {
	cfg := config.Default()
	cfg.Memory.Channels = 4
	cfg.GPU.PIMSMs = 2
	cfg.Run.DeadlineMS = 50
	return cfg
}

// testCells declares a small grid: two kernels under two primitives.
func testCells(t *testing.T) []Cell {
	t.Helper()
	var cells []Cell
	for _, name := range []string{"copy", "add"} {
		spec, err := kernel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, prim := range []config.Primitive{config.PrimitiveFence, config.PrimitiveOrderLight} {
			cfg := testConfig()
			cfg.Run.Primitive = prim
			cells = append(cells, Cell{
				Key: fmt.Sprintf("%s/%v", name, prim), Cfg: cfg, Spec: spec, Bytes: 8 << 10,
			})
		}
	}
	return cells
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	cells := testCells(t)
	seq, err := New(Options{Parallelism: 1}).Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(Options{Parallelism: 8}).Run(context.Background(), cells)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(cells) || len(par) != len(cells) {
		t.Fatalf("result lengths %d/%d, want %d", len(seq), len(par), len(cells))
	}
	for i := range seq {
		if seq[i].Run.String() != par[i].Run.String() {
			t.Errorf("cell %d (%s): sequential and parallel results differ:\n%s\nvs\n%s",
				i, cells[i].Key, seq[i].Run, par[i].Run)
		}
	}
}

func TestRunRecoversPanicsAsCellError(t *testing.T) {
	cells := testCells(t)
	cells[2].hook = func() { panic("boom") }
	_, err := New(Options{Parallelism: 4}).Run(context.Background(), cells)
	if err == nil {
		t.Fatal("panicking cell did not fail the sweep")
	}
	if !errors.Is(err, olerrors.ErrCellPanic) {
		t.Errorf("error %v does not wrap ErrCellPanic", err)
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *CellError", err)
	}
	if ce.Index != 2 || ce.Key != cells[2].Key {
		t.Errorf("CellError names cell %d (%q), want 2 (%q)", ce.Index, ce.Key, cells[2].Key)
	}
}

func TestRunPrefersRealErrorOverCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cells := testCells(t)
	// The first claimed cell fails and cancels the rest; the sweep must
	// report the panic, not the cancellation it caused.
	cells[0].hook = func() { cancel(); panic("boom") }
	_, err := New(Options{Parallelism: 1}).Run(ctx, cells)
	if !errors.Is(err, olerrors.ErrCellPanic) {
		t.Errorf("error %v does not wrap ErrCellPanic", err)
	}
}

func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(Options{}).Run(ctx, testCells(t))
	if !errors.Is(err, olerrors.ErrCanceled) {
		t.Fatalf("canceled run returned %v, want ErrCanceled", err)
	}
}

func TestRunEmptyCellList(t *testing.T) {
	res, err := New(Options{}).Run(context.Background(), nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty run = (%v, %v), want ([], nil)", res, err)
	}
}

func TestProgressMonotonic(t *testing.T) {
	var seen []int
	var totals []int
	eng := New(Options{Parallelism: 4, Progress: func(done, total int) {
		seen = append(seen, done)
		totals = append(totals, total)
	}})
	cells := testCells(t)
	if _, err := eng.Run(context.Background(), cells); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(cells) {
		t.Fatalf("progress called %d times, want %d", len(seen), len(cells))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress counts %v not monotonic", seen)
		}
		if totals[i] != len(cells) {
			t.Fatalf("progress total %d, want %d", totals[i], len(cells))
		}
	}
}

func TestKernelCacheSharing(t *testing.T) {
	cells := testCells(t)
	// Duplicate the grid: every cell recurs once, so half the builds
	// must be cache hits — with identical measurements.
	dup := append(append([]Cell{}, cells...), cells...)

	eng := New(Options{Parallelism: 4})
	res, err := eng.Run(context.Background(), dup)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := eng.CacheStats()
	if misses != int64(len(cells)) || hits != int64(len(cells)) {
		t.Errorf("cache stats = %d hits / %d misses, want %d / %d",
			hits, misses, len(cells), len(cells))
	}
	for i := range cells {
		if res[i].Run.String() != res[i+len(cells)].Run.String() {
			t.Errorf("cell %d: cached rerun differs from first run", i)
		}
	}

	uncached := New(Options{Parallelism: 4, DisableKernelCache: true})
	res2, err := uncached.Run(context.Background(), dup)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := uncached.CacheStats(); h != 0 || m != 0 {
		t.Errorf("disabled cache reported stats %d/%d", h, m)
	}
	for i := range dup {
		if res[i].Run.String() != res2[i].Run.String() {
			t.Errorf("cell %d: cached and uncached results differ", i)
		}
	}
}

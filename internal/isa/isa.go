// Package isa defines the fine-grained PIM instruction set of §4.2, the
// memory-pipe request format, and the bit-level OrderLight packet layout
// of Figure 8. Every component of the simulated machine — SMs, the
// interconnect, L2 slices, memory controllers and PIM units — exchanges
// values of these types.
package isa

import "fmt"

// Addr is a physical byte address in the simulated memory space.
type Addr uint64

// Kind classifies a memory-pipe request or warp instruction.
type Kind uint8

const (
	// KindInvalid is the zero Kind and is never valid on the wire.
	KindInvalid Kind = iota

	// KindPIMLoad moves data from an open DRAM row into the PIM unit's
	// temporary storage (Figure 4 line 2). Timing: one column read.
	KindPIMLoad

	// KindPIMCompute fetches an operand from DRAM to the PIM ALU and
	// combines it with a temporary-storage slot (Figure 4 lines 4-5,
	// "Fetch-and-Add"). Timing: one column read.
	KindPIMCompute

	// KindPIMStore moves a result from temporary storage to DRAM
	// (Figure 4 line 7). Timing: one column write.
	KindPIMStore

	// KindPIMScale is an in-place read-modify-write on one column
	// (e.g. the stream Scale kernel a[i] = s*a[i]). Timing: one column
	// write (the internal read is hidden behind the PIM unit).
	KindPIMScale

	// KindPIMExec is a pure ALU operation on temporary storage with no
	// DRAM access (e.g. the per-element compute of KMeans or batchnorm).
	// It consumes a command-bus slot but no bank timing.
	KindPIMExec

	// KindOrderLight is an OrderLight packet (§5.2). It is not a memory
	// access: it percolates through the memory pipe and programs the
	// memory controller's ordering state.
	KindOrderLight

	// KindFence is the core-centric baseline primitive. It never enters
	// the memory pipe; the SM resolves it by stalling (§4.3).
	KindFence

	// KindHostLoad and KindHostStore are ordinary (non-PIM) host
	// accesses used to model concurrent host traffic under fine-grained
	// arbitration (§3.4).
	KindHostLoad
	KindHostStore
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPIMLoad:
		return "PIM_Load"
	case KindPIMCompute:
		return "PIM_Compute"
	case KindPIMStore:
		return "PIM_Store"
	case KindPIMScale:
		return "PIM_Scale"
	case KindPIMExec:
		return "PIM_Exec"
	case KindOrderLight:
		return "OrderLight"
	case KindFence:
		return "Fence"
	case KindHostLoad:
		return "Host_Load"
	case KindHostStore:
		return "Host_Store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsPIM reports whether the kind is a PIM command that must reach the
// memory module (everything the ordering machinery applies to).
func (k Kind) IsPIM() bool {
	switch k {
	case KindPIMLoad, KindPIMCompute, KindPIMStore, KindPIMScale, KindPIMExec:
		return true
	}
	return false
}

// IsMemAccess reports whether the kind occupies DRAM bank timing.
func (k Kind) IsMemAccess() bool {
	switch k {
	case KindPIMLoad, KindPIMCompute, KindPIMStore, KindPIMScale, KindHostLoad, KindHostStore:
		return true
	}
	return false
}

// IsWrite reports whether the kind is write-like at the DRAM device
// (routed to the memory controller's write queue).
func (k Kind) IsWrite() bool {
	switch k {
	case KindPIMStore, KindPIMScale, KindHostStore:
		return true
	}
	return false
}

// ALUOp is the operation a PIM compute or exec command performs. The
// simulator executes these functionally over int32 lanes so that
// ordering violations corrupt real results.
type ALUOp uint8

const (
	OpNop   ALUOp = iota
	OpAdd         // dst = ts[src] + operand
	OpMul         // dst = ts[src] * operand
	OpMAC         // dst = ts[src] + imm*operand (Daxpy/Triad fused form)
	OpScale       // in-place: mem = imm * mem (Scale kernel / BN scale)
	OpCopy        // dst = operand (Copy kernel: load-then-store path)
	OpSub         // dst = ts[src] - operand (distance-style kernels)
	OpMax         // dst = max(ts[src], operand) (reduction-style kernels)
	OpXor         // dst = ts[src] ^ operand (hashing/filter kernels)
	OpIncr        // dst = operand + imm (in-memory counter bump, e.g. histogram bins)
)

// String implements fmt.Stringer.
func (o ALUOp) String() string {
	names := [...]string{"nop", "add", "mul", "mac", "scale", "copy", "sub", "max", "xor", "incr"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("ALUOp(%d)", uint8(o))
}

// Apply computes the op over one int32 lane. ts is the current
// temporary-storage lane value, operand the value fetched from memory,
// imm the kernel's scalar.
func (o ALUOp) Apply(ts, operand, imm int32) int32 {
	switch o {
	case OpNop:
		return ts
	case OpAdd:
		return ts + operand
	case OpMul:
		return ts * operand
	case OpMAC:
		return ts + imm*operand
	case OpScale:
		return imm * operand
	case OpCopy:
		return operand
	case OpSub:
		return ts - operand
	case OpMax:
		if ts > operand {
			return ts
		}
		return operand
	case OpXor:
		return ts ^ operand
	case OpIncr:
		return operand + imm
	default:
		panic(fmt.Sprintf("isa: Apply on unknown op %v", o))
	}
}

// Request is one entry traveling down the memory pipe of Figure 6: a
// fine-grained PIM command, a host access, or an OrderLight packet.
type Request struct {
	ID      uint64 // globally unique, for tracing and acks
	Kind    Kind
	Op      ALUOp // for PIMCompute/PIMExec/PIMScale
	Addr    Addr  // target of the column access (memory kinds only)
	Channel int   // memory channel (fixed at issue; PIM kernels know the mapping, §5.4)
	Group   int   // PIM memory-group within the channel
	Bank    int   // resolved by address mapping before the MC
	Row     int
	SM      int    // issuing SM
	Warp    int    // issuing warp (global warp ID)
	Seq     uint64 // per-warp program-order sequence number
	TSlot   int    // temporary-storage slot (src for store, dst for load/compute)
	Imm     int32  // scalar immediate for MAC/Scale
	Lanes   int    // int32 lanes this command covers (BytesPerCommand/4)

	// OL carries the packet payload when Kind == KindOrderLight.
	OL OLPacket
	// Copies is used by the copy-and-merge FSM: >0 marks a replica and
	// records how many replicas the merge point must collect.
	Copies int
}

// String renders a compact single-line description for traces.
func (r Request) String() string {
	if r.Kind == KindOrderLight {
		return fmt.Sprintf("req#%d %v %v", r.ID, r.Kind, r.OL)
	}
	return fmt.Sprintf("req#%d %v ch%d g%d b%d row%d addr=0x%x seq=%d",
		r.ID, r.Kind, r.Channel, r.Group, r.Bank, r.Row, uint64(r.Addr), r.Seq)
}

// Instr is one decoded warp instruction of a PIM kernel. A single warp
// instruction uses SIMT lanes to emit Count consecutive PIM commands
// (§6, "Modelling PIM kernels": one warp generates N PIM instructions in
// parallel).
type Instr struct {
	Kind  Kind
	Op    ALUOp
	Addr  Addr  // base address; lane i targets Addr + i*Stride
	Count int   // number of PIM commands this warp instruction emits
	Strd  int64 // byte stride between lanes (usually BytesPerCommand host-visible: 32 B)
	TSlot int   // base TS slot; lane i uses TSlot + i
	Imm   int32
	Group int // memory-group the commands (or the OL packet) target

	// XGroups lists additional memory-groups an OrderLight instruction
	// orders, via the packet's optional extension fields (§5.3.1) —
	// used when one phase's commands span several groups.
	XGroups []uint8
}

// String renders a compact description.
func (in Instr) String() string {
	return fmt.Sprintf("%v x%d @0x%x g%d", in.Kind, in.Count, uint64(in.Addr), in.Group)
}

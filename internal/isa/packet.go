package isa

import "fmt"

// OLPacket is the OrderLight packet of Figure 8. The hardware format is
// 42 bits:
//
//	[ 1: 0]  2 b  packet ID (distinguishes OL packets from loads/stores)
//	[ 5: 2]  4 b  channel ID
//	[ 9: 6]  4 b  memory-group ID
//	[41:10] 32 b  packet number within (channel, group)
//
// The packet can be extended with additional 4-bit memory-group fields to
// order across multiple groups (§5.3.1); ExtraGroups carries those. Only
// the base 42-bit field is bit-packed by Encode.
type OLPacket struct {
	PktID   uint8  // 2-bit type tag; PktIDOrderLight for OL packets
	Channel uint8  // 4-bit memory-channel ID
	Group   uint8  // 4-bit memory-group ID
	Number  uint32 // 32-bit packet number within (channel, group)

	// ExtraGroups lists additional memory-group IDs the packet orders
	// (the optional repeated 4-bit fields of §5.3.1). Not bit-packed.
	ExtraGroups []uint8
}

// Packet-ID values for the 2-bit type tag.
const (
	PktIDData       uint8 = 0 // normal load/store request
	PktIDOrderLight uint8 = 3 // OrderLight packet
)

// Field widths and shifts of the Figure 8 layout.
const (
	olPktIDBits   = 2
	olChannelBits = 4
	olGroupBits   = 4
	olNumberBits  = 32

	olChannelShift = olPktIDBits
	olGroupShift   = olChannelShift + olChannelBits
	olNumberShift  = olGroupShift + olGroupBits

	// OLPacketBits is the total width of the base packet: 42 bits.
	OLPacketBits = olNumberShift + olNumberBits
)

// Encode packs the base packet fields into the low 42 bits of a uint64
// exactly as Figure 8 lays them out.
func (p OLPacket) Encode() uint64 {
	return uint64(p.PktID&0b11) |
		uint64(p.Channel&0b1111)<<olChannelShift |
		uint64(p.Group&0b1111)<<olGroupShift |
		uint64(p.Number)<<olNumberShift
}

// DecodeOLPacket unpacks a 42-bit packet produced by Encode.
func DecodeOLPacket(w uint64) OLPacket {
	return OLPacket{
		PktID:   uint8(w & 0b11),
		Channel: uint8(w >> olChannelShift & 0b1111),
		Group:   uint8(w >> olGroupShift & 0b1111),
		Number:  uint32(w >> olNumberShift),
	}
}

// Valid reports whether the packet's fields fit their hardware widths
// and the packet ID marks an OrderLight packet.
func (p OLPacket) Valid() bool {
	if p.PktID != PktIDOrderLight || p.Channel > 15 || p.Group > 15 {
		return false
	}
	for _, g := range p.ExtraGroups {
		if g > 15 {
			return false
		}
	}
	return true
}

// Groups returns every memory-group the packet orders: the base group
// plus any extension fields, deduplicated, in first-appearance order.
func (p OLPacket) Groups() []uint8 {
	out := []uint8{p.Group}
	for _, g := range p.ExtraGroups {
		dup := false
		for _, o := range out {
			if o == g {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, g)
		}
	}
	return out
}

// String implements fmt.Stringer.
func (p OLPacket) String() string {
	if len(p.ExtraGroups) == 0 {
		return fmt.Sprintf("OL{ch%d g%d #%d}", p.Channel, p.Group, p.Number)
	}
	return fmt.Sprintf("OL{ch%d g%d+%v #%d}", p.Channel, p.Group, p.ExtraGroups, p.Number)
}

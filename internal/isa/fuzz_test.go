package isa

import "testing"

// FuzzPacketRoundTrip checks the Figure 8 bit layout against arbitrary
// 64-bit words: decoding any word and re-encoding it must reproduce the
// word's low 42 bits exactly, the encoding must never spill past
// OLPacketBits, and decode∘encode must be the identity on decoded
// packets.
func FuzzPacketRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(3)) // bare OrderLight tag
	f.Add(OLPacket{PktID: PktIDOrderLight, Channel: 15, Group: 15, Number: 1<<32 - 1}.Encode())
	f.Add(OLPacket{PktID: PktIDOrderLight, Channel: 7, Group: 3, Number: 41}.Encode())
	f.Add(^uint64(0)) // every bit set, including the 22 beyond the packet
	f.Fuzz(func(t *testing.T, w uint64) {
		p := DecodeOLPacket(w)
		e := p.Encode()
		if e >= 1<<OLPacketBits {
			t.Fatalf("Encode(%+v) = %#x spills past %d bits", p, e, OLPacketBits)
		}
		if mask := uint64(1)<<OLPacketBits - 1; e != w&mask {
			t.Fatalf("decode∘encode(%#x) = %#x, want the low %d bits %#x", w, e, OLPacketBits, w&mask)
		}
		q := DecodeOLPacket(e)
		if q.PktID != p.PktID || q.Channel != p.Channel || q.Group != p.Group || q.Number != p.Number {
			t.Fatalf("re-decode mismatch: %+v vs %+v", q, p)
		}
		// Valid packets must survive the trip with validity intact.
		if p.Valid() != q.Valid() {
			t.Fatalf("validity not preserved: %t vs %t", p.Valid(), q.Valid())
		}
	})
}

package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindClassification(t *testing.T) {
	cases := []struct {
		k               Kind
		pim, mem, write bool
	}{
		{KindPIMLoad, true, true, false},
		{KindPIMCompute, true, true, false},
		{KindPIMStore, true, true, true},
		{KindPIMScale, true, true, true},
		{KindPIMExec, true, false, false},
		{KindOrderLight, false, false, false},
		{KindFence, false, false, false},
		{KindHostLoad, false, true, false},
		{KindHostStore, false, true, true},
	}
	for _, c := range cases {
		if c.k.IsPIM() != c.pim {
			t.Errorf("%v.IsPIM() = %v, want %v", c.k, c.k.IsPIM(), c.pim)
		}
		if c.k.IsMemAccess() != c.mem {
			t.Errorf("%v.IsMemAccess() = %v, want %v", c.k, c.k.IsMemAccess(), c.mem)
		}
		if c.k.IsWrite() != c.write {
			t.Errorf("%v.IsWrite() = %v, want %v", c.k, c.k.IsWrite(), c.write)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindPIMLoad.String() != "PIM_Load" || KindOrderLight.String() != "OrderLight" {
		t.Error("Kind.String() mismatch")
	}
	if !strings.HasPrefix(Kind(200).String(), "Kind(") {
		t.Error("unknown Kind should render as Kind(n)")
	}
}

func TestALUOpApply(t *testing.T) {
	cases := []struct {
		op          ALUOp
		ts, operand int32
		imm, want   int32
	}{
		{OpNop, 7, 100, 0, 7},
		{OpAdd, 3, 4, 0, 7},
		{OpMul, 3, 4, 0, 12},
		{OpMAC, 10, 4, 3, 22},
		{OpScale, 0, 5, 3, 15},
		{OpCopy, 99, 5, 0, 5},
		{OpSub, 9, 4, 0, 5},
		{OpMax, 3, 8, 0, 8},
		{OpMax, 9, 8, 0, 9},
		{OpXor, 0b1100, 0b1010, 0, 0b0110},
		{OpIncr, 99, 5, 1, 6},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.ts, c.operand, c.imm); got != c.want {
			t.Errorf("%v.Apply(%d,%d,%d) = %d, want %d", c.op, c.ts, c.operand, c.imm, got, c.want)
		}
	}
}

func TestALUOpApplyPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Apply on unknown op did not panic")
		}
	}()
	ALUOp(99).Apply(0, 0, 0)
}

func TestOLPacketEncodeLayout(t *testing.T) {
	// Hand-computed Figure 8 layout: pktID in bits [1:0], channel
	// [5:2], group [9:6], number [41:10].
	p := OLPacket{PktID: PktIDOrderLight, Channel: 0xA, Group: 0x5, Number: 0xDEADBEEF}
	w := p.Encode()
	if got := w & 0b11; got != uint64(PktIDOrderLight) {
		t.Errorf("pktID bits = %b", got)
	}
	if got := w >> 2 & 0b1111; got != 0xA {
		t.Errorf("channel bits = %x, want A", got)
	}
	if got := w >> 6 & 0b1111; got != 0x5 {
		t.Errorf("group bits = %x, want 5", got)
	}
	if got := uint32(w >> 10); got != 0xDEADBEEF {
		t.Errorf("number bits = %x, want DEADBEEF", got)
	}
	if OLPacketBits != 42 {
		t.Errorf("OLPacketBits = %d, want 42 (2+4+4+32)", OLPacketBits)
	}
}

func TestOLPacketRoundTripProperty(t *testing.T) {
	f := func(ch, grp uint8, num uint32) bool {
		p := OLPacket{PktID: PktIDOrderLight, Channel: ch & 0xF, Group: grp & 0xF, Number: num}
		d := DecodeOLPacket(p.Encode())
		return d.PktID == p.PktID && d.Channel == p.Channel &&
			d.Group == p.Group && d.Number == p.Number
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOLPacketEncodeFitsWidth(t *testing.T) {
	f := func(ch, grp uint8, num uint32) bool {
		p := OLPacket{PktID: PktIDOrderLight, Channel: ch & 0xF, Group: grp & 0xF, Number: num}
		return p.Encode()>>OLPacketBits == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOLPacketValid(t *testing.T) {
	good := OLPacket{PktID: PktIDOrderLight, Channel: 15, Group: 15, Number: 1}
	if !good.Valid() {
		t.Error("maximal in-range packet reported invalid")
	}
	for _, bad := range []OLPacket{
		{PktID: PktIDData, Channel: 0, Group: 0},
		{PktID: PktIDOrderLight, Channel: 16},
		{PktID: PktIDOrderLight, Group: 16},
		{PktID: PktIDOrderLight, ExtraGroups: []uint8{16}},
	} {
		if bad.Valid() {
			t.Errorf("packet %+v reported valid", bad)
		}
	}
}

func TestOLPacketGroupsDedup(t *testing.T) {
	p := OLPacket{PktID: PktIDOrderLight, Group: 2, ExtraGroups: []uint8{3, 2, 3, 4}}
	got := p.Groups()
	want := []uint8{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Groups() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Groups() = %v, want %v", got, want)
		}
	}
}

func TestRequestString(t *testing.T) {
	r := Request{ID: 1, Kind: KindPIMLoad, Channel: 2, Group: 1, Bank: 3, Row: 7, Addr: 0x1000, Seq: 5}
	s := r.String()
	for _, sub := range []string{"PIM_Load", "ch2", "g1", "row7", "0x1000"} {
		if !strings.Contains(s, sub) {
			t.Errorf("Request.String() = %q missing %q", s, sub)
		}
	}
	ol := Request{ID: 2, Kind: KindOrderLight, OL: OLPacket{PktID: PktIDOrderLight, Channel: 1, Group: 0, Number: 9}}
	if !strings.Contains(ol.String(), "OL{ch1 g0 #9}") {
		t.Errorf("OL Request.String() = %q", ol.String())
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Kind: KindPIMStore, Count: 8, Addr: 0x40, Group: 2}
	if !strings.Contains(in.String(), "PIM_Store x8") {
		t.Errorf("Instr.String() = %q", in.String())
	}
}

func TestALUOpString(t *testing.T) {
	if OpMAC.String() != "mac" || OpScale.String() != "scale" {
		t.Error("ALUOp.String() mismatch")
	}
	if !strings.HasPrefix(ALUOp(42).String(), "ALUOp(") {
		t.Error("unknown ALUOp should render as ALUOp(n)")
	}
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"orderlight/internal/olerrors"
)

// Await blocks until the job reaches a terminal state and returns its
// result (or its original error). It prefers the Watch stream; when a
// transport cannot stream it degrades to Status polling. A ctx that
// expires mid-wait requests Cancel on the job — the caller walking
// away should not leave work running — and reports the job's own
// terminal error when the cancellation lands, or ctx's error when the
// service cannot be reached anymore.
//
// onEvent, when non-nil, observes every watch event before Await acts
// on it (progress bars, trace taps).
func Await(ctx context.Context, svc Service, id JobID, onEvent func(WatchEvent)) (*JobResult, error) {
	events, err := svc.Watch(ctx, id)
	if err != nil {
		return nil, err
	}
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				// Stream closed: the job is terminal, or our ctx died and
				// Watch unsubscribed us mid-run.
				if ctx.Err() != nil {
					return cancelAndCollect(ctx, svc, id)
				}
				return svc.Result(context.WithoutCancel(ctx), id)
			}
			if onEvent != nil {
				onEvent(ev)
			}
			if ev.Terminal() {
				return svc.Result(context.WithoutCancel(ctx), id)
			}
		case <-ctx.Done():
			return cancelAndCollect(ctx, svc, id)
		}
	}
}

// SubmitAndAwait is Submit followed by Await, hardened against a
// service restart: if the job vanishes mid-wait (ErrUnknownJob — a
// daemon restarted and lost its in-memory job store), the identical
// request is resubmitted and awaited again. With a retry-armed client
// the submission carries an idempotency key, and on a fabric
// coordinator with a journal the resubmitted job attaches to the
// replayed board state — completed cells are not re-run. Bounded at a
// few resubmissions so a crash-looping daemon fails loudly instead of
// forever.
func SubmitAndAwait(ctx context.Context, svc Service, req JobRequest, onEvent func(WatchEvent)) (*JobResult, error) {
	const resubmits = 4
	for attempt := 0; ; attempt++ {
		id, err := svc.Submit(ctx, req)
		if err != nil {
			return nil, err
		}
		res, err := Await(ctx, svc, id, onEvent)
		if err != nil && errors.Is(err, ErrUnknownJob) && attempt < resubmits && ctx.Err() == nil {
			continue
		}
		return res, err
	}
}

// cancelAndCollect turns an abandoned wait into a clean cancellation:
// cancel the job, then wait (briefly) for it to settle so the caller
// gets the job's real terminal error — usually wrapping
// olerrors.ErrCanceled — instead of a bare context error.
func cancelAndCollect(ctx context.Context, svc Service, id JobID) (*JobResult, error) {
	bg := context.WithoutCancel(ctx)
	if err := svc.Cancel(bg, id); err != nil {
		return nil, fmt.Errorf("serve: %w: %v (cancel failed: %v)", olerrors.ErrCanceled, ctx.Err(), err)
	}
	// A running job stops at its next cell boundary; poll until it
	// settles. The deadline only guards against a wedged service.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, err := svc.Status(bg, id)
		if err != nil {
			return nil, fmt.Errorf("serve: %w: %v (status failed: %v)", olerrors.ErrCanceled, ctx.Err(), err)
		}
		if st.State.Terminal() {
			return svc.Result(bg, id)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil, fmt.Errorf("serve: %w: %v (job %s did not settle after cancel)", olerrors.ErrCanceled, ctx.Err(), id)
}

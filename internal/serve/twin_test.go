package serve

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/gpu"
	"orderlight/internal/kernel"
	"orderlight/internal/olerrors"
	"orderlight/internal/stats"
	"orderlight/internal/twin"
)

// testArtifact calibrates one small artifact over the add kernel on the
// shrunken test machine (anchored 4–16 KiB around the 8 KiB footprint
// kernelReq uses, all three primitives, all four TS fractions so fig5
// twin jobs answer every cell) and memoizes it across tests.
var (
	twinArtOnce sync.Once
	twinArt     *twin.Artifact
	twinArtErr  error
)

func testCalibration(t *testing.T) string {
	t.Helper()
	twinArtOnce.Do(func() {
		cfg := *testConfig()
		spec, err := kernel.ByName("add")
		if err != nil {
			twinArtErr = err
			return
		}
		run := func(ctx context.Context, cfg config.Config, spec kernel.Spec, bytes int64) (*stats.Run, error) {
			k, err := kernel.Build(cfg, spec, bytes)
			if err != nil {
				return nil, err
			}
			m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
			if err != nil {
				return nil, err
			}
			return m.Run()
		}
		twinArt, twinArtErr = twin.Calibrate(context.Background(), cfg, run, twin.Options{
			Anchors: []int64{4 << 10, 8 << 10, 16 << 10},
			Specs:   []kernel.Spec{spec},
		})
	})
	if twinArtErr != nil {
		t.Fatalf("test calibration failed: %v", twinArtErr)
	}
	path := filepath.Join(t.TempDir(), "test.olcal")
	if err := twin.Save(twinArt, path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestExecuteTwinCalibrationPaths pins Execute's artifact resolution:
// an attached predictor wins, a Calibration path loads, no source at
// all is ErrInvalidSpec naming the fix, and an unreadable path
// surfaces the loader's error.
func TestExecuteTwinCalibrationPaths(t *testing.T) {
	ctx := context.Background()

	req := twinKernelReq(t, "add")
	if _, err := Execute(ctx, &req); err != nil {
		t.Errorf("twin job with a calibration path failed: %v", err)
	}

	bare := kernelReq("add")
	bare.Opts.Engine = "twin"
	if _, err := Execute(ctx, &bare); !errors.Is(err, olerrors.ErrInvalidSpec) ||
		!strings.Contains(fmt.Sprint(err), "needs a calibration artifact") {
		t.Errorf("twin job without any calibration source returned %v, want ErrInvalidSpec naming the artifact", err)
	}

	missing := kernelReq("add")
	missing.Opts.Engine = "twin"
	missing.Opts.Calibration = filepath.Join(t.TempDir(), "absent.olcal")
	if _, err := Execute(ctx, &missing); err == nil {
		t.Error("twin job with an unreadable calibration path succeeded")
	}
}

func twinKernelReq(t *testing.T, name string) JobRequest {
	req := kernelReq(name)
	req.Opts.Engine = "twin"
	req.Opts.Calibration = testCalibration(t)
	return req
}

// TestValidateTwinOptions pins the twin option invariants at the single
// admission gate: every cycle-engine observer/steerer is refused under
// the twin, and the twin-only knobs are refused without it.
func TestValidateTwinOptions(t *testing.T) {
	cases := []struct {
		name string
		opts RunOpts
		want string // "" accepts; otherwise a required substring of the error
	}{
		{"twin", RunOpts{Engine: "twin"}, ""},
		{"twin with calibration", RunOpts{Engine: "twin", Calibration: "cal.olcal"}, ""},
		{"twin with escalate", RunOpts{Engine: "twin", Escalate: true}, ""},
		{"twin with predictor", RunOpts{Engine: "twin", TwinPredictor: &twin.Predictor{}}, ""},
		{"dense flag vs twin", RunOpts{Dense: true, Engine: "twin"}, "conflicts with engine"},
		{"twin with checkpoints", RunOpts{Engine: "twin", CheckpointDir: "ck"}, "checkpoints journal cycle-engine progress"},
		{"twin with resume", RunOpts{Engine: "twin", CheckpointDir: "ck", Resume: true}, "checkpoints journal cycle-engine progress"},
		{"twin with halt", RunOpts{Engine: "twin", HaltAfter: 100}, "no cycles to halt"},
		{"twin with stream-trace", RunOpts{Engine: "twin", StreamTrace: true}, "no event feed"},
		{"twin with sampler", RunOpts{Engine: "twin", Sampler: stats.NewSampler(100)}, "no counters to sample"},
		{"twin with fabric", RunOpts{Engine: "twin", Fabric: true}, "microseconds of local math"},
		{"calibration without twin", RunOpts{Calibration: "cal.olcal"}, "needs the twin engine"},
		{"calibration on parallel", RunOpts{Engine: "parallel", Calibration: "cal.olcal"}, "needs the twin engine"},
		{"escalate without twin", RunOpts{Escalate: true}, "needs the twin engine"},
		{"predictor without twin", RunOpts{TwinPredictor: &twin.Predictor{}}, "needs the twin engine"},
		{"shards on twin", RunOpts{Engine: "twin", Shards: 4}, "needs the parallel engine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := JobRequest{Kind: KindKernel, Kernel: "add", Opts: tc.opts}
			err := req.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want accept", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted, want error containing %q", tc.want)
			}
			if !errors.Is(err, olerrors.ErrInvalidSpec) {
				t.Errorf("error %v is not classified as ErrInvalidSpec", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestLocalTwinJobs runs twin jobs end to end on the Local service: a
// single-cell kernel job and a fig5 experiment job, both answered from
// the calibration without simulating, with exact command counts and no
// verification claim.
func TestLocalTwinJobs(t *testing.T) {
	svc := NewLocal(LocalConfig{})
	defer svc.Close()
	ctx := context.Background()

	req := twinKernelReq(t, "add")
	id, err := svc.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Await(ctx, svc, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run == nil || res.Run.PIMCommands == 0 {
		t.Fatalf("twin kernel job result implausible: %+v", res)
	}
	if res.Run.Verified {
		t.Fatal("twin answer claims functional verification")
	}

	exp := JobRequest{Kind: KindExperiment, Experiment: "fig5", Config: testConfig()}
	exp.Opts.Engine = "twin"
	exp.Opts.Calibration = req.Opts.Calibration
	exp.Opts.BytesPerChannel = 8 << 10
	id, err = svc.Submit(ctx, exp)
	if err != nil {
		t.Fatal(err)
	}
	res, err = Await(ctx, svc, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 || res.Tables[0].ID != "fig5" {
		t.Fatalf("twin experiment job returned %+v", res.Tables)
	}
}

// TestLocalTwinEscalation pins the serve-tier escalation contract: a
// cell outside the calibrated range fails with the twin-confidence
// sentinel by default, and with escalate it re-runs on the skip-ahead
// cycle engine with a byte-identical result.
func TestLocalTwinEscalation(t *testing.T) {
	svc := NewLocal(LocalConfig{})
	defer svc.Close()
	ctx := context.Background()

	// 32 KiB/channel is outside the test calibration's 4–16 KiB range.
	req := twinKernelReq(t, "add")
	req.Bytes = 32 << 10
	id, err := svc.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Await(ctx, svc, id, nil); !errors.Is(err, twin.ErrOutOfConfidence) {
		t.Fatalf("out-of-range twin job = %v, want twin.ErrOutOfConfidence", err)
	}
	st, err := svc.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.Error == nil || st.Error.Code != "twin-confidence" {
		t.Fatalf("out-of-range twin status = %+v", st)
	}

	direct := kernelReq("add")
	direct.Bytes = 32 << 10
	id, err = svc.Submit(ctx, direct)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Await(ctx, svc, id, nil)
	if err != nil {
		t.Fatal(err)
	}

	esc := req
	esc.Opts.Escalate = true
	id, err = svc.Submit(ctx, esc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Await(ctx, svc, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Run.String() != want.Run.String() {
		t.Fatalf("escalated twin job differs from direct cycle-engine run:\n%s\nvs\n%s",
			got.Run, want.Run)
	}
}

// TestLocalSharedCalibration covers the daemon-side calibration: a
// service started with a Calibration path serves twin jobs that bring
// none of their own, and a service with an unloadable artifact refuses
// twin submissions while cycle-engine jobs keep running.
func TestLocalSharedCalibration(t *testing.T) {
	svc := NewLocal(LocalConfig{Calibration: testCalibration(t)})
	defer svc.Close()
	ctx := context.Background()

	req := kernelReq("add")
	req.Opts.Engine = "twin"
	id, err := svc.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Await(ctx, svc, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run == nil || res.Run.PIMCommands == 0 {
		t.Fatalf("shared-calibration twin job result implausible: %+v", res)
	}

	bad := NewLocal(LocalConfig{Calibration: filepath.Join(t.TempDir(), "missing.olcal")})
	defer bad.Close()
	if _, err := bad.Submit(ctx, req); !errors.Is(err, olerrors.ErrInvalidSpec) {
		t.Fatalf("twin Submit on bad calibration = %v, want ErrInvalidSpec", err)
	}
	id, err = bad.Submit(ctx, kernelReq("add"))
	if err != nil {
		t.Fatalf("cycle job on bad-calibration daemon = %v, want accept", err)
	}
	if _, err := Await(ctx, bad, id, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTwinJobsNotMemoized holds the memoization line: twin answers are
// keyed to a calibration file on the server's disk, so whole-job memos
// would outlive a recalibration — only cycle-engine jobs memoize.
func TestTwinJobsNotMemoized(t *testing.T) {
	skip := kernelReq("add")
	if !jobMemoizable(&skip) {
		t.Error("plain kernel job not memoizable")
	}
	tw := kernelReq("add")
	tw.Opts.Engine = "twin"
	tw.Opts.Calibration = "cal.olcal"
	if jobMemoizable(&tw) {
		t.Error("twin job is whole-job memoizable; a memo would outlive recalibration")
	}

	// A twin job on a cache-armed daemon still runs correctly (per-cell
	// twin-domain caching only), and an identical resubmission agrees.
	svc := NewLocal(LocalConfig{CacheDir: t.TempDir()})
	defer svc.Close()
	ctx := context.Background()
	req := twinKernelReq(t, "add")
	var runs []*stats.Run
	for i := 0; i < 2; i++ {
		id, err := svc.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Await(ctx, svc, id, nil)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, res.Run)
	}
	if runs[0].String() != runs[1].String() {
		t.Fatal("identical twin resubmission disagrees with first answer")
	}
}

// TestHandlerTwinSentinelRoundTrips pins the wire taxonomy: the twin
// sentinels survive the HTTP round trip via their JobError codes, and
// the twin option fields travel inside the submitted request.
func TestHandlerTwinSentinelRoundTrips(t *testing.T) {
	fake, client := newFakeServer(t)
	ctx := context.Background()

	for _, tc := range []struct {
		sentinel error
		code     string
	}{
		{twin.ErrOutOfConfidence, "twin-confidence"},
		{twin.ErrCalibration, "twin-calibration"},
	} {
		req := kernelReq("add")
		req.Opts.Engine = "twin"
		req.Opts.Calibration = "cal.olcal"
		req.Opts.Escalate = true
		id, err := client.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		sub := fake.Submitted[len(fake.Submitted)-1]
		if sub.Opts.Engine != "twin" || sub.Opts.Calibration != "cal.olcal" || !sub.Opts.Escalate {
			t.Fatalf("twin options lost in transit: %+v", sub.Opts)
		}
		fake.Start(id)
		fake.Finish(id, nil, fmt.Errorf("serve: cell add: %w", tc.sentinel))
		if _, err := client.Result(ctx, id); !errors.Is(err, tc.sentinel) {
			t.Fatalf("Result = %v, want %v across the wire", err, tc.sentinel)
		}
		st, err := client.Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Error == nil || st.Error.Code != tc.code {
			t.Fatalf("failed status = %+v, want code %q", st, tc.code)
		}
	}
}

package serve

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"orderlight/internal/olerrors"
)

// fabricReq is a small multi-cell experiment job marked for the
// fabric.
func fabricReq() JobRequest {
	return JobRequest{
		Kind: KindExperiment, Experiment: "fig5",
		Config: testConfig(),
		Opts:   RunOpts{BytesPerChannel: 8 << 10, Fabric: true},
	}
}

// localReq is the same job executed on the local path, for parity.
func localReq() JobRequest {
	r := fabricReq()
	r.Opts.Fabric = false
	return r
}

// TestFabricInProcessByteIdentity runs a fabric job with two
// in-process workers driving the Local's WorkProvider surface
// directly, and proves the assembled table is byte-identical to the
// local execution path.
func TestFabricInProcessByteIdentity(t *testing.T) {
	ctx := context.Background()
	ref := localReq()
	want, err := Execute(ctx, &ref)
	if err != nil {
		t.Fatal(err)
	}

	svc := NewLocal(LocalConfig{Fabric: true, FabricChunk: 2})
	defer svc.Close()
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	for i := 0; i < 2; i++ {
		name := []string{"w1", "w2"}[i]
		go RunWorker(wctx, svc, WorkerOptions{Name: name, Poll: 10 * time.Millisecond, CheckpointDir: t.TempDir()})
	}

	id, err := svc.Submit(ctx, fabricReq())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Await(ctx, svc, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tables) != 1 || got.Tables[0].Markdown() != want.Tables[0].Markdown() {
		t.Fatalf("fabric table differs from local:\n--- local ---\n%s\n--- fabric ---\n%s",
			want.Tables[0].Markdown(), got.Tables[0].Markdown())
	}
}

// TestFabricOverHTTPLeaseExpiry runs the full wire path — daemon,
// HTTP client as WorkProvider — and simulates a worker death: one
// lease is taken and never completed, so its range must be re-issued
// after the TTL and finished by the surviving worker, with output
// still byte-identical to a local run.
func TestFabricOverHTTPLeaseExpiry(t *testing.T) {
	ctx := context.Background()
	ref := localReq()
	want, err := Execute(ctx, &ref)
	if err != nil {
		t.Fatal(err)
	}

	svc := NewLocal(LocalConfig{Fabric: true, FabricChunk: 1, LeaseTTL: 100 * time.Millisecond})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	client := NewClient(srv.URL, nil)

	id, err := client.Submit(ctx, fabricReq())
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker leases one range and is never heard from again.
	for {
		l, err := client.LeaseWork(ctx, "doomed")
		if err != nil {
			t.Fatal(err)
		}
		if l != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	go RunWorker(wctx, client, WorkerOptions{Name: "survivor", Poll: 10 * time.Millisecond, CheckpointDir: t.TempDir()})

	got, err := Await(ctx, client, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tables) != 1 || got.Tables[0].Markdown() != want.Tables[0].Markdown() {
		t.Fatalf("fabric-over-HTTP table differs from local:\n--- local ---\n%s\n--- fabric ---\n%s",
			want.Tables[0].Markdown(), got.Tables[0].Markdown())
	}
}

// TestFabricAdmission pins the fabric validation rules and the
// coordinator-less rejections.
func TestFabricAdmission(t *testing.T) {
	ctx := context.Background()

	bad := []JobRequest{
		{Kind: KindKernel, Kernel: "add", Opts: RunOpts{Fabric: true}},
		func() JobRequest { r := fabricReq(); r.Opts.Manifest = true; return r }(),
		func() JobRequest { r := fabricReq(); r.Opts.CheckpointDir = t.TempDir(); return r }(),
	}
	for i, req := range bad {
		if err := req.Validate(); !errors.Is(err, olerrors.ErrInvalidSpec) {
			t.Fatalf("bad request %d validated: %v", i, err)
		}
	}

	// A fabric job on a coordinator-less service is rejected at Submit.
	svc := NewLocal(LocalConfig{})
	defer svc.Close()
	if _, err := svc.Submit(ctx, fabricReq()); !errors.Is(err, olerrors.ErrInvalidSpec) {
		t.Fatalf("fabric submit without coordinator = %v, want invalid-spec", err)
	}
	// And its work endpoints answer invalid-spec through the wire.
	srv := httptest.NewServer(NewHandler(&Fake{}))
	defer srv.Close()
	if _, err := NewClient(srv.URL, nil).LeaseWork(ctx, "w"); !errors.Is(err, olerrors.ErrInvalidSpec) {
		t.Fatalf("lease against non-fabric service = %v, want invalid-spec", err)
	}
}

// TestJobMemoization proves the daemon answers an identical request —
// from a different tenant — straight from the result cache, with
// byte-identical output.
func TestJobMemoization(t *testing.T) {
	ctx := context.Background()
	svc := NewLocal(LocalConfig{CacheDir: t.TempDir()})
	defer svc.Close()

	run := func(tenant string) *JobResult {
		req := localReq()
		req.Tenant = tenant
		id, err := svc.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Await(ctx, svc, id, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := run("alice")
	h0 := svc.Health()
	second := run("bob")
	h1 := svc.Health()

	if second.Tables[0].Markdown() != first.Tables[0].Markdown() {
		t.Fatal("memoized result differs from computed one")
	}
	if h1.CacheHits <= h0.CacheHits {
		t.Fatalf("second run hit nothing: hits %d -> %d", h0.CacheHits, h1.CacheHits)
	}
}

// TestJobMemoizableExclusions pins which jobs may never be memoized
// whole: anything that must genuinely run (fault campaigns and the
// sweeps embedding them, manifest runs recording fresh provenance,
// streaming/sampling/halted runs).
func TestJobMemoizableExclusions(t *testing.T) {
	base := localReq()
	if !jobMemoizable(&base) {
		t.Fatal("plain experiment job should be memoizable")
	}
	cases := map[string]JobRequest{
		"fault-campaign": {Kind: KindFaultCampaign},
		"sweep":          {Kind: KindSweep},
		"manifest":       func() JobRequest { r := localReq(); r.Opts.Manifest = true; return r }(),
		"stream-trace":   {Kind: KindKernel, Kernel: "add", Opts: RunOpts{StreamTrace: true}},
		"halt-after":     {Kind: KindKernel, Kernel: "add", Opts: RunOpts{HaltAfter: 100}},
	}
	for name, req := range cases {
		if jobMemoizable(&req) {
			t.Errorf("%s job must not be memoizable", name)
		}
	}
}

// TestJobCacheKeyScrubbing: execution tuning, tenancy, durability and
// transport must not split the memo key; the simulated workload must.
func TestJobCacheKeyScrubbing(t *testing.T) {
	base := localReq()
	key := jobCacheKey(&base)
	if key == "" {
		t.Fatal("empty job cache key")
	}
	same := []func(*JobRequest){
		func(r *JobRequest) { r.Tenant = "someone-else" },
		func(r *JobRequest) { r.Opts.Parallelism = 7 },
		func(r *JobRequest) { r.Opts.Retries = 3 },
		func(r *JobRequest) { r.Opts.CheckpointDir = "/tmp/x"; r.Opts.Resume = true },
		func(r *JobRequest) { r.Opts.Fabric = true },
		func(r *JobRequest) { r.Opts.CacheDir = "/tmp/y" },
	}
	for i, mut := range same {
		r := localReq()
		mut(&r)
		if got := jobCacheKey(&r); got != key {
			t.Errorf("mutation %d changed the key", i)
		}
	}
	diff := []func(*JobRequest){
		func(r *JobRequest) { r.Experiment = "fig10a" },
		func(r *JobRequest) { r.Opts.BytesPerChannel = 4 << 10 },
		func(r *JobRequest) { r.Opts.Engine = "dense" },
		func(r *JobRequest) { r.Config = nil },
	}
	for i, mut := range diff {
		r := localReq()
		mut(&r)
		if got := jobCacheKey(&r); got == key {
			t.Errorf("mutation %d should change the key", i)
		}
	}
}

package serve

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"orderlight/internal/olerrors"
	"orderlight/internal/runner"
)

// Client speaks the /v1 JSON protocol to a remote daemon. It
// implements Service, so everything written against the interface —
// Await, the facade adapters, olbench's -server mode — works
// unchanged against a daemon across the network.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy
}

// NewClient returns a client for the daemon at base (e.g.
// "http://localhost:8080"). A nil hc uses http.DefaultClient; pass a
// client without timeouts for Watch streams on long sweeps.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// RetryPolicy tunes the client's transient-failure retry loop.
type RetryPolicy struct {
	// Attempts is the total number of tries per call; <= 1 disables
	// retry.
	Attempts int
	// Base is the backoff before the second try, doubling per attempt;
	// <= 0 means 50ms.
	Base time.Duration
	// Max caps one backoff sleep; <= 0 means 2s.
	Max time.Duration
	// Logf observes each retry; nil discards.
	Logf func(format string, args ...any)
}

// EnableRetry arms transient-failure retry on every call: transport
// errors, 5xx answers and undecodable response bodies are retried with
// capped exponential backoff and deterministic jitter (keyed on the
// request path and attempt, so concurrent clients decorrelate
// reproducibly). Service-level errors — 4xx classifications like
// unknown-job or invalid-spec — are never retried.
//
// Retry makes Submit ambiguous (a lost response is indistinguishable
// from a lost request), so arming it also stamps every submission with
// a content-derived idempotency key; the daemon collapses duplicate
// deliveries onto one job.
func (c *Client) EnableRetry(p RetryPolicy) {
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 2 * time.Second
	}
	c.retry = p
}

// errTransient tags failures worth retrying: the request may not have
// been processed, or the response was lost or mangled in flight.
var errTransient = errors.New("transient transport failure")

// retryBackoff is the sleep before attempt (1-based past the first):
// capped exponential with deterministic jitter, the same idiom as the
// runner's cell retry backoff.
func (c *Client) retryBackoff(path string, attempt int) time.Duration {
	d := c.retry.Base << uint(attempt-1)
	if d > c.retry.Max {
		d = c.retry.Max
	}
	var seed uint64
	for _, b := range []byte(path) {
		seed = seed*131 + uint64(b)
	}
	seed += uint64(attempt) * 0x9e37_79b9_7f4a_7c15
	seed ^= seed >> 33
	seed *= 0xff51_afd7_ed55_8ccd
	seed ^= seed >> 33
	return d + time.Duration(seed%uint64(d/2+1))
}

// decodeError rebuilds the service error from an error envelope. The
// JobError's Unwrap re-arms the sentinel, so
// errors.Is(err, olerrors.ErrUnknownKernel) holds on the client side
// exactly as it did inside the daemon. An answer that carries a valid
// envelope is the daemon speaking — even on 5xx, where this protocol
// reports terminal job errors — and is never retried; an envelope-less
// 5xx (a dying daemon, a proxy error page) is tagged transient.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error != nil {
		return fmt.Errorf("serve: daemon: %w", eb.Error)
	}
	if resp.StatusCode >= 500 {
		return fmt.Errorf("serve: daemon: %w: status %s: %s", errTransient, resp.Status, bytes.TrimSpace(body))
	}
	return fmt.Errorf("serve: daemon: unexpected status %s: %s", resp.Status, bytes.TrimSpace(body))
}

// doJSON performs one request and decodes a JSON response into out,
// retrying transient failures when EnableRetry armed it.
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("serve: client: encode request: %w", err)
		}
		payload = b
	}
	attempts := c.retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if c.retry.Logf != nil {
				c.retry.Logf("serve: client: retrying %s %s (attempt %d/%d): %v", method, path, attempt+1, attempts, lastErr)
			}
			if !sleepCtx(ctx, c.retryBackoff(path, attempt)) {
				return fmt.Errorf("serve: client: %w: %v (last failure: %v)", olerrors.ErrCanceled, ctx.Err(), lastErr)
			}
		}
		err := c.doJSONOnce(ctx, method, path, payload, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !errors.Is(err, errTransient) || ctx.Err() != nil {
			return err
		}
	}
	return lastErr
}

// doJSONOnce is one attempt of doJSON. Transport failures and
// undecodable responses are tagged transient.
func (c *Client) doJSONOnce(ctx context.Context, method, path string, payload []byte, out any) error {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("serve: client: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("serve: client: %w: %v", errTransient, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if resp.StatusCode == http.StatusNoContent {
		return nil // out, if any, keeps its zero value
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		// A mangled body on a 2xx: the daemon did the work but the
		// answer was lost in flight — exactly what retry is for.
		return fmt.Errorf("serve: client: %w: decode response: %v", errTransient, err)
	}
	return nil
}

// Submit implements Service. With retry armed, the submission is
// stamped with a content-derived idempotency key first, so a retried
// delivery of the same submission lands on the same job.
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobID, error) {
	if req.Opts.Progress != nil || req.Opts.Sink != nil || req.Opts.Sampler != nil {
		return "", fmt.Errorf("serve: %w: in-process callbacks (WithProgress, WithTraceSink, WithSampler) cannot cross the wire; use the events stream (stream_trace) instead", olerrors.ErrInvalidSpec)
	}
	if c.retry.Attempts > 1 && req.IdempotencyKey == "" {
		b, err := json.Marshal(&req)
		if err == nil {
			sum := sha256.Sum256(b)
			req.IdempotencyKey = "idem-" + hex.EncodeToString(sum[:8])
		}
	}
	var st JobStatus
	if err := c.doJSON(ctx, http.MethodPost, "/v1/jobs", &req, &st); err != nil {
		return "", err
	}
	return st.ID, nil
}

// Status implements Service.
func (c *Client) Status(ctx context.Context, id JobID) (JobStatus, error) {
	var st JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+string(id), nil, &st)
	return st, err
}

// Result implements Service.
func (c *Client) Result(ctx context.Context, id JobID) (*JobResult, error) {
	var res JobResult
	if err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+string(id)+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Cancel implements Service.
func (c *Client) Cancel(ctx context.Context, id JobID) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+string(id), nil, nil)
}

// Watch implements Service by consuming the job's server-sent event
// stream. The returned channel closes when the daemon ends the stream
// (terminal state) or ctx is canceled.
func (c *Client) Watch(ctx context.Context, id JobID) (<-chan WatchEvent, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+string(id)+"/events", nil)
	if err != nil {
		return nil, fmt.Errorf("serve: client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: client: %w", err)
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	ch := make(chan WatchEvent, 128)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if !bytes.HasPrefix(line, []byte("data: ")) {
				continue // blank separators, comments
			}
			var ev WatchEvent
			if err := json.Unmarshal(line[len("data: "):], &ev); err != nil {
				continue
			}
			select {
			case ch <- ev:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch, nil
}

// LeaseWork implements WorkProvider over HTTP: poll the daemon's
// fabric coordinator for a cell range. (nil, nil) means no work is
// pending right now — poll again after a short sleep.
func (c *Client) LeaseWork(ctx context.Context, worker string) (*runner.Lease, error) {
	var l runner.Lease
	if err := c.doJSON(ctx, http.MethodPost, "/v1/work/lease", WorkLeaseRequest{Worker: worker}, &l); err != nil {
		return nil, err
	}
	if l.Job == "" {
		return nil, nil // 204: nothing leased
	}
	return &l, nil
}

// CompleteWork implements WorkProvider over HTTP.
func (c *Client) CompleteWork(ctx context.Context, comp WorkCompletion) error {
	return c.doJSON(ctx, http.MethodPost, "/v1/work/complete", &comp, nil)
}

// HeartbeatWork implements WorkProvider over HTTP.
func (c *Client) HeartbeatWork(ctx context.Context, hb WorkHeartbeat) (bool, error) {
	var reply WorkHeartbeatReply
	if err := c.doJSON(ctx, http.MethodPost, "/v1/work/heartbeat", &hb, &reply); err != nil {
		return false, err
	}
	return reply.Held, nil
}

// Healthz fetches the daemon's health snapshot. It doubles as the
// liveness probe olserve's -healthcheck mode uses.
func (c *Client) Healthz(ctx context.Context) (HealthInfo, error) {
	var h HealthInfo
	err := c.doJSON(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// ServerVersion fetches the daemon's protocol and toolchain versions.
func (c *Client) ServerVersion(ctx context.Context) (VersionInfo, error) {
	var v VersionInfo
	err := c.doJSON(ctx, http.MethodGet, "/v1/version", nil, &v)
	return v, err
}

package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"orderlight/internal/olerrors"
	"orderlight/internal/runner"
)

// Client speaks the /v1 JSON protocol to a remote daemon. It
// implements Service, so everything written against the interface —
// Await, the facade adapters, olbench's -server mode — works
// unchanged against a daemon across the network.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the daemon at base (e.g.
// "http://localhost:8080"). A nil hc uses http.DefaultClient; pass a
// client without timeouts for Watch streams on long sweeps.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

// decodeError rebuilds the service error from an error envelope. The
// JobError's Unwrap re-arms the sentinel, so
// errors.Is(err, olerrors.ErrUnknownKernel) holds on the client side
// exactly as it did inside the daemon.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error != nil {
		return fmt.Errorf("serve: daemon: %w", eb.Error)
	}
	return fmt.Errorf("serve: daemon: unexpected status %s: %s", resp.Status, bytes.TrimSpace(body))
}

// doJSON performs one request and decodes a JSON response into out.
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("serve: client: encode request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("serve: client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("serve: client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if resp.StatusCode == http.StatusNoContent {
		return nil // out, if any, keeps its zero value
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("serve: client: decode response: %w", err)
	}
	return nil
}

// Submit implements Service.
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobID, error) {
	if req.Opts.Progress != nil || req.Opts.Sink != nil || req.Opts.Sampler != nil {
		return "", fmt.Errorf("serve: %w: in-process callbacks (WithProgress, WithTraceSink, WithSampler) cannot cross the wire; use the events stream (stream_trace) instead", olerrors.ErrInvalidSpec)
	}
	var st JobStatus
	if err := c.doJSON(ctx, http.MethodPost, "/v1/jobs", &req, &st); err != nil {
		return "", err
	}
	return st.ID, nil
}

// Status implements Service.
func (c *Client) Status(ctx context.Context, id JobID) (JobStatus, error) {
	var st JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+string(id), nil, &st)
	return st, err
}

// Result implements Service.
func (c *Client) Result(ctx context.Context, id JobID) (*JobResult, error) {
	var res JobResult
	if err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+string(id)+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Cancel implements Service.
func (c *Client) Cancel(ctx context.Context, id JobID) error {
	return c.doJSON(ctx, http.MethodDelete, "/v1/jobs/"+string(id), nil, nil)
}

// Watch implements Service by consuming the job's server-sent event
// stream. The returned channel closes when the daemon ends the stream
// (terminal state) or ctx is canceled.
func (c *Client) Watch(ctx context.Context, id JobID) (<-chan WatchEvent, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+string(id)+"/events", nil)
	if err != nil {
		return nil, fmt.Errorf("serve: client: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("serve: client: %w", err)
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	ch := make(chan WatchEvent, 128)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if !bytes.HasPrefix(line, []byte("data: ")) {
				continue // blank separators, comments
			}
			var ev WatchEvent
			if err := json.Unmarshal(line[len("data: "):], &ev); err != nil {
				continue
			}
			select {
			case ch <- ev:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch, nil
}

// LeaseWork implements WorkProvider over HTTP: poll the daemon's
// fabric coordinator for a cell range. (nil, nil) means no work is
// pending right now — poll again after a short sleep.
func (c *Client) LeaseWork(ctx context.Context, worker string) (*runner.Lease, error) {
	var l runner.Lease
	if err := c.doJSON(ctx, http.MethodPost, "/v1/work/lease", WorkLeaseRequest{Worker: worker}, &l); err != nil {
		return nil, err
	}
	if l.Job == "" {
		return nil, nil // 204: nothing leased
	}
	return &l, nil
}

// CompleteWork implements WorkProvider over HTTP.
func (c *Client) CompleteWork(ctx context.Context, comp WorkCompletion) error {
	return c.doJSON(ctx, http.MethodPost, "/v1/work/complete", &comp, nil)
}

// Healthz fetches the daemon's health snapshot. It doubles as the
// liveness probe olserve's -healthcheck mode uses.
func (c *Client) Healthz(ctx context.Context) (HealthInfo, error) {
	var h HealthInfo
	err := c.doJSON(ctx, http.MethodGet, "/healthz", nil, &h)
	return h, err
}

// ServerVersion fetches the daemon's protocol and toolchain versions.
func (c *Client) ServerVersion(ctx context.Context) (VersionInfo, error) {
	var v VersionInfo
	err := c.doJSON(ctx, http.MethodGet, "/v1/version", nil, &v)
	return v, err
}

package serve_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"

	"orderlight/internal/config"
	"orderlight/internal/serve"
)

// Example submits one kernel job to an olserve daemon through the HTTP
// client and waits for its result. The httptest server stands in for a
// real daemon; the request/response path is the production one.
func Example() {
	svc := serve.NewLocal(serve.LocalConfig{})
	defer svc.Close()
	srv := httptest.NewServer(serve.NewHandler(svc))
	defer srv.Close()

	client := serve.NewClient(srv.URL, srv.Client())
	cfg := config.Default()
	cfg.Memory.Channels = 4
	cfg.GPU.PIMSMs = 2

	ctx := context.Background()
	id, err := client.Submit(ctx, serve.JobRequest{
		Kind: serve.KindKernel, Kernel: "add", Bytes: 8 << 10, Config: &cfg,
	})
	if err != nil {
		fmt.Println("submit:", err)
		return
	}
	res, err := serve.Await(ctx, client, id, nil)
	if err != nil {
		fmt.Println("await:", err)
		return
	}
	fmt.Println("verified:", res.Run.Correct)
	// Output:
	// verified: true
}

// Example (resultCache) gives the daemon a content-addressed result
// cache: a byte-identical resubmission — here from a different tenant
// — is answered from the cache without re-simulating.
func Example_resultCache() {
	dir, err := os.MkdirTemp("", "olcache")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)

	svc := serve.NewLocal(serve.LocalConfig{CacheDir: dir})
	defer svc.Close()

	cfg := config.Default()
	cfg.Memory.Channels = 4
	cfg.GPU.PIMSMs = 2
	req := serve.JobRequest{Kind: serve.KindKernel, Kernel: "add", Bytes: 8 << 10, Config: &cfg}

	ctx := context.Background()
	for _, tenant := range []string{"alice", "bob"} {
		r := req
		r.Tenant = tenant
		id, err := svc.Submit(ctx, r)
		if err != nil {
			fmt.Println("submit:", err)
			return
		}
		if _, err := serve.Await(ctx, svc, id, nil); err != nil {
			fmt.Println("await:", err)
			return
		}
	}
	fmt.Println("bob served from cache:", svc.Health().CacheHits > 0)
	// Output:
	// bob served from cache: true
}

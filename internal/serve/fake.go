package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"orderlight/internal/olerrors"
)

// Fake is the injectable Service for transport and client tests: it
// records submissions, lets the test script admission failures,
// latencies and outcomes, and honors the same Watch contract as Local
// — all without ever spinning the cycle-level engine (the Navarch
// pkg/gpu fake-manager idiom).
//
// Two driving styles compose:
//
//   - Scripted: the test calls Start and Finish to walk a job through
//     its lifecycle at exactly the moments it wants.
//   - Auto: setting AutoResult (and optionally AutoLatency/AutoErr)
//     makes every submission run itself to completion on a goroutine.
type Fake struct {
	// AutoResult, when non-nil, completes every job with this result
	// after AutoLatency, or with AutoErr when that is set.
	AutoResult *JobResult
	// AutoErr fails auto-completed jobs instead of succeeding them.
	AutoErr error
	// AutoLatency delays auto-completion; zero completes immediately.
	AutoLatency time.Duration

	mu        sync.Mutex
	seq       int
	jobs      map[JobID]*job
	submitErr error
	// Submitted records every admitted request in order, for
	// assertions on what the client actually sent.
	Submitted []JobRequest
}

// NewFake returns an empty scripted fake.
func NewFake() *Fake {
	return &Fake{jobs: make(map[JobID]*job)}
}

// ScriptSubmitError makes every following Submit fail with err (until
// scripted again with nil). Use it to provoke 429/503 handling in
// clients: ScriptSubmitError(ErrQueueFull).
func (f *Fake) ScriptSubmitError(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.submitErr = err
}

// Submit implements Service.
func (f *Fake) Submit(ctx context.Context, req JobRequest) (JobID, error) {
	if err := ctx.Err(); err != nil {
		return "", fmt.Errorf("serve: %w: %v", olerrors.ErrCanceled, err)
	}
	if err := req.Validate(); err != nil {
		return "", err
	}
	f.mu.Lock()
	if f.submitErr != nil {
		err := f.submitErr
		f.mu.Unlock()
		return "", fmt.Errorf("serve: %w", err)
	}
	f.seq++
	j := &job{
		id:        JobID(fmt.Sprintf("job-%06d", f.seq)),
		req:       req,
		state:     StateQueued,
		resumable: req.Opts.CheckpointDir != "",
		submitted: time.Now(),
		doneCh:    make(chan struct{}),
	}
	f.jobs[j.id] = j
	f.Submitted = append(f.Submitted, req)
	auto := f.AutoResult != nil || f.AutoErr != nil
	f.mu.Unlock()
	if auto {
		go f.autoRun(j.id)
	}
	return j.id, nil
}

// autoRun drives one job through running to its scripted outcome.
func (f *Fake) autoRun(id JobID) {
	f.Start(id)
	if f.AutoLatency > 0 {
		time.Sleep(f.AutoLatency)
	}
	f.Finish(id, f.AutoResult, f.AutoErr)
}

// Start moves a queued job to running and emits the state event. It is
// a no-op on jobs that already left the queue.
func (f *Fake) Start(id JobID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	if !ok || j.state != StateQueued {
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	f.broadcastLocked(j, WatchEvent{Type: "state", State: StateRunning})
}

// Progress emits a progress event and updates the job's counters.
func (f *Fake) Progress(id JobID, done, total int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	if !ok || j.state.Terminal() {
		return
	}
	j.done, j.total = done, total
	f.broadcastLocked(j, WatchEvent{Type: "progress", Done: done, Total: total})
}

// Finish moves a job to its terminal state: done when err is nil,
// canceled when err wraps olerrors.ErrCanceled, failed otherwise. It
// is a no-op on already-terminal jobs.
func (f *Fake) Finish(id JobID, res *JobResult, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	if !ok || j.state.Terminal() {
		return
	}
	j.finished = time.Now()
	j.res, j.err = res, err
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, olerrors.ErrCanceled):
		j.state = StateCanceled
	default:
		j.state = StateFailed
	}
	f.broadcastLocked(j, WatchEvent{Type: "state", State: j.state, Error: WireError(err)})
	for _, ch := range j.watchers {
		close(ch)
	}
	j.watchers = nil
	close(j.doneCh)
}

func (f *Fake) broadcastLocked(j *job, ev WatchEvent) {
	for _, ch := range j.watchers {
		select {
		case ch <- ev:
		default:
		}
	}
}

func (f *Fake) lookup(id JobID) (*job, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	j, ok := f.jobs[id]
	if !ok {
		return nil, fmt.Errorf("serve: %w %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Status implements Service.
func (f *Fake) Status(_ context.Context, id JobID) (JobStatus, error) {
	j, err := f.lookup(id)
	if err != nil {
		return JobStatus{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return JobStatus{
		ID: j.id, Kind: j.req.Kind, State: j.state, Tenant: j.req.Tenant,
		Done: j.done, Total: j.total,
		Error: WireError(j.err), Resumable: j.resumable,
		SubmittedAt: j.submitted, StartedAt: j.started, FinishedAt: j.finished,
	}, nil
}

// Result implements Service.
func (f *Fake) Result(_ context.Context, id JobID) (*JobResult, error) {
	j, err := f.lookup(id)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !j.state.Terminal() {
		return nil, fmt.Errorf("serve: %w: job %s is %s", ErrNotFinished, id, j.state)
	}
	if j.err != nil {
		return nil, j.err
	}
	return j.res, nil
}

// Cancel implements Service. The fake cancels queued AND running jobs
// immediately — there is no engine to wind down.
func (f *Fake) Cancel(_ context.Context, id JobID) error {
	j, err := f.lookup(id)
	if err != nil {
		return err
	}
	f.mu.Lock()
	terminal := j.state.Terminal()
	f.mu.Unlock()
	if terminal {
		return nil
	}
	f.Finish(id, nil, fmt.Errorf("serve: %w: job canceled", olerrors.ErrCanceled))
	return nil
}

// Watch implements Service with the same contract as Local: initial
// snapshot, buffered intermediate events, guaranteed terminal event,
// then close.
func (f *Fake) Watch(ctx context.Context, id JobID) (<-chan WatchEvent, error) {
	j, err := f.lookup(id)
	if err != nil {
		return nil, err
	}
	ch := make(chan WatchEvent, 128)
	f.mu.Lock()
	ch <- WatchEvent{Type: "state", State: j.state, Done: j.done, Total: j.total, Error: WireError(j.err)}
	if j.state.Terminal() {
		close(ch)
		f.mu.Unlock()
		return ch, nil
	}
	j.watchers = append(j.watchers, ch)
	f.mu.Unlock()

	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				f.mu.Lock()
				for i, c := range j.watchers {
					if c == ch {
						j.watchers = append(j.watchers[:i], j.watchers[i+1:]...)
						close(ch)
						break
					}
				}
				f.mu.Unlock()
			case <-j.doneCh:
			}
		}()
	}
	return ch, nil
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"

	"orderlight/internal/olerrors"
)

// Version identifies the wire protocol the daemon speaks. Bump it when
// the request or result schema changes incompatibly.
const Version = "v1"

// VersionInfo is the /v1/version payload.
type VersionInfo struct {
	API       string `json:"api"`
	GoVersion string `json:"go_version"`
}

// Drainer is implemented by services that support graceful shutdown;
// the daemon type-asserts it on SIGTERM and /healthz reports its load.
type Drainer interface {
	Drain(ctx context.Context) error
	Health() HealthInfo
}

// NewHandler mounts the Service on an http.ServeMux speaking the
// /v1 JSON protocol:
//
//	POST   /v1/jobs             submit (202 + status)
//	GET    /v1/jobs/{id}        status
//	GET    /v1/jobs/{id}/result result (409 until terminal)
//	DELETE /v1/jobs/{id}        cancel (202 + status)
//	GET    /v1/jobs/{id}/events lifecycle stream (server-sent events)
//	POST   /v1/work/lease       fabric worker leases a cell range (204 when idle)
//	POST   /v1/work/complete    fabric worker reports a range's outcomes
//	POST   /v1/work/heartbeat   fabric worker extends a held lease mid-execution
//	GET    /healthz             liveness + queue load
//	GET    /v1/version          protocol + toolchain versions
//
// Admission failures map to 429 (queue full, tenant quota) and 503
// (draining), both with Retry-After; bad requests to 400; unknown jobs
// to 404; premature result fetches to 409. Every error body is
// {"error": {"code", "message"}} with the code from the shared wire
// taxonomy, so clients rebuild errors.Is-compatible errors.
func NewHandler(svc Service) http.Handler {
	h := &handler{svc: svc}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", h.submit)
	mux.HandleFunc("GET /v1/jobs/{id}", h.status)
	mux.HandleFunc("GET /v1/jobs/{id}/result", h.result)
	mux.HandleFunc("DELETE /v1/jobs/{id}", h.cancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", h.events)
	mux.HandleFunc("POST /v1/work/lease", h.workLease)
	mux.HandleFunc("POST /v1/work/complete", h.workComplete)
	mux.HandleFunc("POST /v1/work/heartbeat", h.workHeartbeat)
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /v1/version", h.version)
	return mux
}

type handler struct {
	svc Service
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error *JobError `json:"error"`
}

// writeError maps err to its HTTP status and JSON envelope.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrQuotaExceeded):
		w.Header().Set("Retry-After", "1")
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownJob):
		status = http.StatusNotFound
	case errors.Is(err, ErrNotFinished):
		status = http.StatusConflict
	case errors.Is(err, olerrors.ErrUnknownKernel),
		errors.Is(err, olerrors.ErrUnknownExperiment),
		errors.Is(err, olerrors.ErrInvalidSpec):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorBody{Error: WireError(err)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (h *handler) submit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("serve: %w: malformed job request: %v", olerrors.ErrInvalidSpec, err))
		return
	}
	id, err := h.svc.Submit(r.Context(), req)
	if err != nil {
		writeError(w, err)
		return
	}
	st, err := h.svc.Status(r.Context(), id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (h *handler) status(w http.ResponseWriter, r *http.Request) {
	st, err := h.svc.Status(r.Context(), JobID(r.PathValue("id")))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (h *handler) result(w http.ResponseWriter, r *http.Request) {
	res, err := h.svc.Result(r.Context(), JobID(r.PathValue("id")))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (h *handler) cancel(w http.ResponseWriter, r *http.Request) {
	id := JobID(r.PathValue("id"))
	if err := h.svc.Cancel(r.Context(), id); err != nil {
		writeError(w, err)
		return
	}
	st, err := h.svc.Status(r.Context(), id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// events streams the job lifecycle as server-sent events: each watch
// event is one "data: <json>" frame. The stream ends after the
// terminal state event (or when the client goes away, which
// unsubscribes the watcher).
func (h *handler) events(w http.ResponseWriter, r *http.Request) {
	events, err := h.svc.Watch(r.Context(), JobID(r.PathValue("id")))
	if err != nil {
		writeError(w, err)
		return
	}
	fl, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	if fl != nil {
		fl.Flush()
	}
	enc := json.NewEncoder(w)
	for ev := range events {
		if _, err := w.Write([]byte("data: ")); err != nil {
			return
		}
		if err := enc.Encode(ev); err != nil { // Encode appends the \n
			return
		}
		if _, err := w.Write([]byte("\n")); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
	}
}

// workProvider type-asserts the fabric coordinator surface; services
// without one (a non-fabric daemon, the Fake) answer invalid-spec.
func (h *handler) workProvider(w http.ResponseWriter) (WorkProvider, bool) {
	wp, ok := h.svc.(WorkProvider)
	if !ok {
		writeError(w, fmt.Errorf("serve: %w: this service has no fabric coordinator", olerrors.ErrInvalidSpec))
		return nil, false
	}
	return wp, true
}

// workLease answers a fabric worker's poll: 200 with a lease, or 204
// when nothing is pending right now.
func (h *handler) workLease(w http.ResponseWriter, r *http.Request) {
	wp, ok := h.workProvider(w)
	if !ok {
		return
	}
	var req WorkLeaseRequest
	_ = json.NewDecoder(r.Body).Decode(&req) // empty body = anonymous worker
	l, err := wp.LeaseWork(r.Context(), req.Worker)
	if err != nil {
		writeError(w, err)
		return
	}
	if l == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, l)
}

// workComplete records a lease's outcomes; 204 on success.
func (h *handler) workComplete(w http.ResponseWriter, r *http.Request) {
	wp, ok := h.workProvider(w)
	if !ok {
		return
	}
	var comp WorkCompletion
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&comp); err != nil {
		writeError(w, fmt.Errorf("serve: %w: malformed work completion: %v", olerrors.ErrInvalidSpec, err))
		return
	}
	if err := wp.CompleteWork(r.Context(), comp); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// workHeartbeat extends a held lease; the reply says whether the
// lease is still held.
func (h *handler) workHeartbeat(w http.ResponseWriter, r *http.Request) {
	wp, ok := h.workProvider(w)
	if !ok {
		return
	}
	var hb WorkHeartbeat
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&hb); err != nil {
		writeError(w, fmt.Errorf("serve: %w: malformed work heartbeat: %v", olerrors.ErrInvalidSpec, err))
		return
	}
	held, err := wp.HeartbeatWork(r.Context(), hb)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, WorkHeartbeatReply{Held: held})
}

func (h *handler) healthz(w http.ResponseWriter, _ *http.Request) {
	if d, ok := h.svc.(Drainer); ok {
		writeJSON(w, http.StatusOK, d.Health())
		return
	}
	writeJSON(w, http.StatusOK, HealthInfo{Status: "ok"})
}

func (h *handler) version(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, VersionInfo{API: Version, GoVersion: runtime.Version()})
}

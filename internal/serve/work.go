package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"orderlight/internal/chaos"
	"orderlight/internal/config"
	"orderlight/internal/experiments"
	"orderlight/internal/olerrors"
	"orderlight/internal/rcache"
	"orderlight/internal/runner"
)

// This file is the serve side of the distributed sweep fabric. The
// coordinator (a fabric-enabled Local) posts multi-cell jobs on a
// runner.Board and exposes it over two endpoints:
//
//	POST /v1/work/lease     worker polls for a cell range
//	POST /v1/work/complete  worker reports a range's outcomes
//
// Workers never receive cells — they receive the job's serialized
// request and re-derive the identical cell list from it (enumeration
// is deterministic), so the wire carries kilobytes, not kernel
// images. The coordinator reassembles outcomes in declaration order,
// which keeps a distributed run byte-identical to a local one.

// WorkLeaseRequest is a worker's lease poll.
type WorkLeaseRequest struct {
	// Worker names the polling worker; used for lease bookkeeping and
	// logs, not authorization.
	Worker string `json:"worker"`
}

// WorkCompletion reports one finished lease.
type WorkCompletion struct {
	Job      string               `json:"job"`
	Lease    string               `json:"lease"`
	Worker   string               `json:"worker,omitempty"`
	Outcomes []runner.CellOutcome `json:"outcomes"`
}

// WorkHeartbeat is a worker's mid-lease liveness proof.
type WorkHeartbeat struct {
	Job    string `json:"job"`
	Lease  string `json:"lease"`
	Worker string `json:"worker,omitempty"`
}

// WorkHeartbeatReply is the coordinator's answer: Held false means the
// lease expired and was (or will be) re-issued — the worker may finish
// anyway (completions are first-fill-wins) or abandon the range.
type WorkHeartbeatReply struct {
	Held bool `json:"held"`
}

// WorkProvider is the coordinator surface a worker drives. Local
// implements it when fabric is enabled; Client implements it
// unconditionally (the daemon answers invalid-spec when it has no
// coordinator), so RunWorker runs identically in process and over
// HTTP.
type WorkProvider interface {
	// LeaseWork grants the next pending cell range, or (nil, nil) when
	// no work is available right now — poll again.
	LeaseWork(ctx context.Context, worker string) (*runner.Lease, error)

	// CompleteWork records a lease's outcomes. Completing an expired
	// or re-issued lease is accepted (results are deterministic);
	// completing a forgotten job errors with ErrUnknownJob.
	CompleteWork(ctx context.Context, comp WorkCompletion) error

	// HeartbeatWork extends a held lease and feeds the coordinator's
	// worker-liveness view. false means the lease is no longer held.
	HeartbeatWork(ctx context.Context, hb WorkHeartbeat) (bool, error)
}

// fabricPlan is a multi-cell request decomposed for the fabric: the
// full deterministic cell list (both sides derive it) and the
// coordinator's assembly of declaration-ordered results into the
// job's output.
type fabricPlan struct {
	cells    []runner.Cell
	assemble func([]runner.Result) (*JobResult, error)
}

// planFabric decomposes a validated multi-cell request. It mirrors
// Execute's per-kind dispatch exactly — same Cells, same Assemble,
// same ordering — which is what makes fabric output byte-identical to
// the local path.
func planFabric(req *JobRequest) (*fabricPlan, error) {
	cfg := config.Default()
	if req.Config != nil {
		cfg = *req.Config
	}
	sc := experiments.Scale{BytesPerChannel: req.Opts.BytesPerChannel}
	switch req.Kind {
	case KindExperiment:
		id := req.Experiment
		cells, err := experiments.Cells(id, cfg, sc)
		if err != nil {
			return nil, err
		}
		return &fabricPlan{cells: cells, assemble: func(res []runner.Result) (*JobResult, error) {
			t, err := experiments.Assemble(id, cfg, sc, res)
			if err != nil {
				return nil, err
			}
			return &JobResult{Tables: []*experiments.Table{t}}, nil
		}}, nil
	case KindSweep:
		ids := experiments.IDs()
		var all []runner.Cell
		spans := make([][2]int, len(ids))
		for i, id := range ids {
			cells, err := experiments.Cells(id, cfg, sc)
			if err != nil {
				return nil, err
			}
			spans[i] = [2]int{len(all), len(all) + len(cells)}
			all = append(all, cells...)
		}
		return &fabricPlan{cells: all, assemble: func(res []runner.Result) (*JobResult, error) {
			out := make([]*experiments.Table, len(ids))
			for i, id := range ids {
				t, err := experiments.Assemble(id, cfg, sc, res[spans[i][0]:spans[i][1]])
				if err != nil {
					return nil, err
				}
				out[i] = t
			}
			return &JobResult{Tables: out}, nil
		}}, nil
	case KindFaultCampaign:
		cells, err := experiments.Cells("fault-campaign", cfg, sc)
		if err != nil {
			return nil, err
		}
		return &fabricPlan{cells: cells, assemble: func(res []runner.Result) (*JobResult, error) {
			t, err := experiments.Assemble("fault-campaign", cfg, sc, res)
			if err != nil {
				return nil, err
			}
			sum := experiments.CampaignSummary(cfg, cells, res)
			return &JobResult{Tables: []*experiments.Table{t}, Summary: &sum}, nil
		}}, nil
	default:
		return nil, fmt.Errorf("serve: %w: job kind %q cannot run on the fabric", olerrors.ErrInvalidSpec, req.Kind)
	}
}

// WorkerOptions tunes one fabric worker.
type WorkerOptions struct {
	// Name identifies the worker in leases and logs.
	Name string

	// Poll is the idle poll interval; <= 0 means 250ms.
	Poll time.Duration

	// CheckpointDir, when set, makes the worker preemptible: every
	// finished cell is journaled there, and a worker restarted on the
	// same directory replays finished cells instead of re-simulating
	// them. The journal is keyed by full cell identity, so one
	// directory safely serves leases of many jobs.
	CheckpointDir string

	// CheckpointEvery is the mid-cell checkpoint cadence in core
	// cycles; <= 0 uses the runner default. Needs CheckpointDir.
	CheckpointEvery int64

	// Parallelism overrides the leased job's cell worker pool on this
	// worker; <= 0 keeps the job's own setting.
	Parallelism int

	// FS is the filesystem this worker's journal, checkpoints and
	// result cache write through; nil means the real one (the chaos
	// harness injects its sick disk here).
	FS chaos.FS

	// Logf receives worker progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// pollJitter spreads worker polls over [poll/2, 3*poll/2): cadence is
// derived deterministically from the worker's name and the poll index
// (same splitmix-style mix the runner's retry backoff uses), so a
// fleet of workers started together decorrelates without
// nondeterministic randomness — and a given worker's poll pattern is
// exactly reproducible.
func pollJitter(name string, n uint64, poll time.Duration) time.Duration {
	var seed uint64
	for _, b := range []byte(name) {
		seed = seed*131 + uint64(b)
	}
	seed += n * 0x9e37_79b9_7f4a_7c15
	seed ^= seed >> 33
	seed *= 0xff51_afd7_ed55_8ccd
	seed ^= seed >> 33
	return poll/2 + time.Duration(seed%uint64(poll)+1)
}

// RunWorker drives one fabric worker until ctx is canceled: poll for
// a lease, re-derive the cells, execute the range, report the
// outcomes, repeat. Transient coordinator errors (daemon restarting,
// job forgotten) are logged and retried — the worker is disposable by
// design; a killed worker's lease simply expires and its range is
// re-issued. Returns nil on cancellation.
func RunWorker(ctx context.Context, wp WorkProvider, opts WorkerOptions) error {
	poll := opts.Poll
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var polls uint64
	for {
		if ctx.Err() != nil {
			return nil
		}
		lease, err := wp.LeaseWork(ctx, opts.Name)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			logf("worker %s: lease: %v", opts.Name, err)
			polls++
			if !sleepCtx(ctx, pollJitter(opts.Name, polls, poll)) {
				return nil
			}
			continue
		}
		if lease == nil {
			polls++
			if !sleepCtx(ctx, pollJitter(opts.Name, polls, poll)) {
				return nil
			}
			continue
		}
		logf("worker %s: leased %s %s cells [%d,%d) of %d", opts.Name, lease.Job, lease.ID, lease.Lo, lease.Hi, lease.Total)
		hbStop := startHeartbeats(ctx, wp, lease, opts.Name, logf)
		outs := executeLeasedRange(ctx, lease, opts)
		hbStop()
		if ctx.Err() != nil {
			// Preempted mid-lease: report nothing. The lease expires and
			// the range is re-issued; our journal keeps the cells that
			// finished.
			return nil
		}
		if err := wp.CompleteWork(ctx, WorkCompletion{Job: lease.Job, Lease: lease.ID, Worker: opts.Name, Outcomes: outs}); err != nil {
			// A forgotten job (canceled, collected) or a coordinator
			// hiccup; either way the work is durable in our journal and
			// re-deliverable, so keep serving.
			logf("worker %s: complete %s %s: %v", opts.Name, lease.Job, lease.ID, err)
		}
	}
}

// startHeartbeats beats the coordinator at the lease's advertised
// cadence while the worker executes its range, and returns a stop
// function. Heartbeat failures are logged and tolerated — the worker's
// recourse is the same either way: finish the range and complete it
// (first-fill-wins makes a late completion harmless). A lease with no
// cadence hint gets no heartbeats, reproducing pure-TTL behavior.
func startHeartbeats(ctx context.Context, wp WorkProvider, lease *runner.Lease, name string, logf func(string, ...any)) func() {
	if lease.HeartbeatMillis <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(time.Duration(lease.HeartbeatMillis) * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-t.C:
				held, err := wp.HeartbeatWork(ctx, WorkHeartbeat{Job: lease.Job, Lease: lease.ID, Worker: name})
				if err != nil {
					logf("worker %s: heartbeat %s %s: %v", name, lease.Job, lease.ID, err)
				} else if !held {
					logf("worker %s: lease %s %s no longer held; finishing anyway", name, lease.Job, lease.ID)
					return
				}
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

// executeLeasedRange rebuilds the leased job's cell list and runs the
// granted range. Structural failures (undecodable request, unknown
// experiment) become a single Err outcome, which fails the job at the
// coordinator with the cause attached.
func executeLeasedRange(ctx context.Context, lease *runner.Lease, opts WorkerOptions) []runner.CellOutcome {
	fail := func(err error) []runner.CellOutcome {
		return []runner.CellOutcome{{Index: lease.Lo, Err: err.Error()}}
	}
	var req JobRequest
	if err := json.Unmarshal(lease.Request, &req); err != nil {
		return fail(fmt.Errorf("decode leased request: %v", err))
	}
	plan, err := planFabric(&req)
	if err != nil {
		return fail(err)
	}
	eng, err := workerEngine(&req, opts)
	if err != nil {
		return fail(err)
	}
	return eng.ExecuteLease(ctx, plan.cells, lease.Lo, lease.Hi)
}

// workerEngine builds the engine for one lease from the leased job's
// own options — engine flavor, retries, footprint all travel with the
// request, so every worker simulates the job the same way — plus this
// worker's durability and parallelism settings.
func workerEngine(req *JobRequest, opts WorkerOptions) (*runner.Engine, error) {
	o := &req.Opts
	var cache *rcache.Cache
	if o.CacheDir != "" {
		var err error
		if cache, err = rcache.OpenWith(rcache.Config{Dir: o.CacheDir, FS: opts.FS}); err != nil {
			return nil, fmt.Errorf("open result cache: %v", err)
		}
	}
	par := o.Parallelism
	if opts.Parallelism > 0 {
		par = opts.Parallelism
	}
	return runner.New(runner.Options{
		Parallelism:        par,
		DisableKernelCache: o.NoKernelCache,
		DenseEngine:        o.Dense || o.Engine == "dense",
		ParallelEngine:     o.Engine == "parallel",
		ParallelShards:     o.Shards,
		CellRetries:        o.Retries,
		CellTimeout:        o.CellTimeout,
		CheckpointDir:      opts.CheckpointDir,
		CheckpointEvery:    opts.CheckpointEvery,
		Resume:             opts.CheckpointDir != "",
		ResultCache:        cache,
		FS:                 opts.FS,
	}), nil
}

// sleepCtx sleeps d or until ctx cancels; false means canceled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// Package serve is the simulation-as-a-service layer: a Service
// interface (Submit/Status/Result/Cancel/Watch) over the runner engine,
// a production Local implementation with a bounded FIFO job queue,
// admission control, per-tenant quotas, graceful drain and
// checkpoint-backed preemption, an injectable Fake with scriptable
// failures for handler and client tests, and an HTTP/JSON transport
// (handler + client) that the olserve daemon mounts.
//
// Every caller of the simulator — the library facade in the root
// package, the CLIs, and the daemon — funnels through one code path:
// a JobRequest validated by Validate and executed by Execute. That is
// what keeps a figure regenerated over HTTP byte-identical to one
// regenerated in process.
//
// The Manager-interface + injectable-fake idiom follows Navarch's
// pkg/gpu: the Service interface is small enough to fake completely,
// so the HTTP layer and its clients are tested without ever spinning
// the cycle-level engine.
package serve

// Package serve is the simulation-as-a-service layer: a Service
// interface (Submit/Status/Result/Cancel/Watch) over the runner engine,
// a production Local implementation with a bounded FIFO job queue,
// admission control, per-tenant quotas, graceful drain and
// checkpoint-backed preemption, an injectable Fake with scriptable
// failures for handler and client tests, and an HTTP/JSON transport
// (handler + client) that the olserve daemon mounts.
//
// Every caller of the simulator — the library facade in the root
// package, the CLIs, and the daemon — funnels through one code path:
// a JobRequest validated by Validate and executed by Execute. That is
// what keeps a figure regenerated over HTTP byte-identical to one
// regenerated in process.
//
// # Result cache
//
// A Local built with LocalConfig.CacheDir opens one rcache.Cache and
// shares it across every job and tenant, at two granularities. Each
// cell a job simulates is memoized individually (internal/runner
// consults the cache before executing a cell), so a resubmission that
// overlaps an earlier sweep skips the overlapping cells. Whole jobs
// additionally memoize under a key derived from the scrubbed request:
// a byte-identical resubmission — even from a different tenant — is
// answered without touching the engine at all. Jobs whose outputs are
// not pure functions of the request (manifests, trace sinks, fault
// campaigns) are never memoized; Health reports hit/miss counters.
//
// # Sweep fabric
//
// A Local built with LocalConfig.Fabric accepts jobs that set
// RunOpts.Fabric and distributes their cells instead of simulating
// them: the cells go onto a runner.Board as chunked leases, and
// RunWorker loops — typically `olserve -worker` processes pointed at
// the daemon, speaking the /v1/work/lease and /v1/work/complete
// endpoints — drain the board. Workers re-derive the cell grid from
// the serialized request (cell enumeration is deterministic, so cells
// never cross the wire), simulate locally, and report outcomes; the
// coordinator reassembles them in declaration order, which keeps
// fabric output byte-identical to a local run. A worker killed
// mid-lease is harmless: the lease expires and re-issues, and the
// worker's own cell journal replays anything it had finished.
//
// The Manager-interface + injectable-fake idiom follows Navarch's
// pkg/gpu: the Service interface is small enough to fake completely,
// so the HTTP layer and its clients are tested without ever spinning
// the cycle-level engine.
package serve

package serve

import (
	"context"
	"fmt"

	"orderlight/internal/config"
	"orderlight/internal/experiments"
	"orderlight/internal/kernel"
	"orderlight/internal/olerrors"
	"orderlight/internal/rcache"
	"orderlight/internal/runner"
	"orderlight/internal/twin"
)

// Service is the public face of the simulator-as-a-service: submit a
// job, observe it, collect its result. Two implementations exist — the
// production Local wrapping the runner engine, and the injectable Fake
// for transport and client tests — plus the HTTP Client, which speaks
// to a remote Local through the daemon.
type Service interface {
	// Submit validates and admits a job. It returns as soon as the job
	// is queued; admission failures (full queue, tenant quota, drain)
	// and validation failures are synchronous.
	Submit(ctx context.Context, req JobRequest) (JobID, error)

	// Status reports the job's current state.
	Status(ctx context.Context, id JobID) (JobStatus, error)

	// Result returns a terminal job's output. A running or queued job
	// gets ErrNotFinished; a failed or canceled job gets its error.
	Result(ctx context.Context, id JobID) (*JobResult, error)

	// Cancel requests cooperative cancellation. Canceling a queued job
	// is immediate; a running job stops at its next cell boundary.
	// Cancel of a terminal job is a no-op.
	Cancel(ctx context.Context, id JobID) error

	// Watch streams the job's lifecycle: an initial state snapshot,
	// progress (and optionally trace) events while it runs, and a final
	// terminal state event, after which the channel closes. Slow
	// consumers lose intermediate events, never the terminal one, as
	// long as they keep draining the channel.
	Watch(ctx context.Context, id JobID) (<-chan WatchEvent, error)
}

// DefaultBytes is the per-channel footprint of single-cell jobs that
// do not specify one.
const DefaultBytes = 128 << 10

// Execute runs one validated request to completion on the calling
// goroutine. It is the single execution path shared by the library
// facade, the CLIs and the daemon: everything builds the same runner
// engine from the same options, which is why a result obtained over
// HTTP is byte-identical to one computed in process.
func Execute(ctx context.Context, req *JobRequest) (*JobResult, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	cfg := config.Default()
	if req.Config != nil {
		cfg = *req.Config
	}
	o := &req.Opts
	cache := o.Cache
	if cache == nil && o.CacheDir != "" {
		var err error
		if cache, err = rcache.OpenWith(rcache.Config{Dir: o.CacheDir, FS: o.FS}); err != nil {
			return nil, fmt.Errorf("serve: open result cache: %w", err)
		}
	}
	var pred *twin.Predictor
	if o.Engine == "twin" {
		pred = o.TwinPredictor
		if pred == nil {
			if o.Calibration == "" {
				return nil, fmt.Errorf("serve: %w: the twin engine needs a calibration artifact (WithTwin(path) / -calibration; regenerate with `make calibrate`)", olerrors.ErrInvalidSpec)
			}
			var err error
			if pred, err = twin.LoadPredictor(o.Calibration); err != nil {
				return nil, fmt.Errorf("serve: load calibration %q: %w", o.Calibration, err)
			}
		}
	}
	eng := runner.New(runner.Options{
		Parallelism:        o.Parallelism,
		Progress:           o.Progress,
		DisableKernelCache: o.NoKernelCache,
		DenseEngine:        o.Dense || o.Engine == "dense",
		ParallelEngine:     o.Engine == "parallel",
		ParallelShards:     o.Shards,
		TwinEngine:         o.Engine == "twin",
		Twin:               pred,
		TwinEscalate:       o.Escalate,
		TraceSink:          o.Sink,
		Sampler:            o.Sampler,
		Manifest:           o.Manifest,
		CheckpointDir:      o.CheckpointDir,
		CheckpointEvery:    o.CheckpointEvery,
		Resume:             o.Resume,
		CellRetries:        o.Retries,
		CellTimeout:        o.CellTimeout,
		HaltAfterCycles:    o.HaltAfter,
		ResultCache:        cache,
		FS:                 o.FS,
	})
	sc := experiments.Scale{BytesPerChannel: o.BytesPerChannel}

	switch req.Kind {
	case KindKernel, KindSpec:
		spec, err := singleSpec(req)
		if err != nil {
			return nil, err
		}
		bytes := req.Bytes
		if bytes <= 0 {
			bytes = DefaultBytes
		}
		cells := []runner.Cell{{Key: spec.Name, Cfg: cfg, Spec: spec, Bytes: bytes, Fault: o.Fault}}
		res, err := eng.Run(ctx, cells)
		if err != nil {
			return nil, err
		}
		r := res[0]
		return &JobResult{
			Run: r.Run, Kernel: r.Kernel,
			HostLatency: r.HostLatency, HostServed: r.HostServed,
			Verdict: r.Fault, Manifest: r.Manifest,
		}, nil
	case KindExperiment:
		t, err := experiments.RunEngine(ctx, eng, req.Experiment, cfg, sc)
		if err != nil {
			return nil, err
		}
		return &JobResult{Tables: []*experiments.Table{t}}, nil
	case KindSweep:
		tables, err := experiments.RunAllEngine(ctx, eng, cfg, sc)
		if err != nil {
			return nil, err
		}
		return &JobResult{Tables: tables}, nil
	case KindFaultCampaign:
		t, sum, err := experiments.FaultCampaignEngine(ctx, eng, cfg, sc)
		if err != nil {
			return nil, err
		}
		return &JobResult{Tables: []*experiments.Table{t}, Summary: &sum}, nil
	default:
		// Validate already rejected unknown kinds; this is unreachable.
		return nil, fmt.Errorf("serve: unhandled job kind %q", req.Kind)
	}
}

// singleSpec resolves the kernel spec a single-cell request names or
// carries.
func singleSpec(req *JobRequest) (kernel.Spec, error) {
	if req.Kind == KindKernel {
		return kernel.ByName(req.Kernel)
	}
	return *req.Spec, nil
}

package serve

import (
	"errors"
	"fmt"
	"time"

	"orderlight/internal/chaos"
	"orderlight/internal/config"
	"orderlight/internal/experiments"
	"orderlight/internal/fault"
	"orderlight/internal/kernel"
	"orderlight/internal/obs"
	"orderlight/internal/olerrors"
	"orderlight/internal/rcache"
	"orderlight/internal/stats"
	"orderlight/internal/twin"
)

// JobID identifies one submitted job for the rest of its life. IDs are
// assigned by the Service and are opaque to callers.
type JobID string

// JobState is a job's position in its lifecycle.
type JobState string

// The five job states. A job moves queued -> running -> one of the
// three terminal states; Cancel can short-circuit straight from queued
// to canceled.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final: the job will never run
// again and its Result (or error) is stable.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobKind selects what a job simulates.
type JobKind string

// The job kinds. Kernel and Spec jobs run exactly one simulation cell
// and accept the single-cell options (trace sink, sampler, fault plan,
// halt-after); Experiment, Sweep and FaultCampaign jobs fan out over
// cell grids and reject them.
const (
	KindKernel        JobKind = "kernel"         // one named Table 2 kernel
	KindSpec          JobKind = "spec"           // one user-defined kernel spec
	KindExperiment    JobKind = "experiment"     // one paper table/figure
	KindSweep         JobKind = "sweep"          // every experiment
	KindFaultCampaign JobKind = "fault-campaign" // ordering-fault injection grid
)

// Service-level sentinel errors. They classify admission and lookup
// failures the same way olerrors classifies simulation failures:
// wrapped with %w on the way up, matched with errors.Is at the edges
// (the HTTP layer maps them to status codes; clients get them back via
// JobError).
var (
	// ErrQueueFull reports a Submit refused because the bounded FIFO
	// queue is at capacity. Retry after a delay.
	ErrQueueFull = errors.New("job queue full")

	// ErrQuotaExceeded reports a Submit refused because the tenant
	// already has its maximum jobs queued or running.
	ErrQuotaExceeded = errors.New("per-tenant job quota exceeded")

	// ErrDraining reports a Submit refused because the service is
	// shutting down and no longer admits work.
	ErrDraining = errors.New("service is draining")

	// ErrUnknownJob reports an ID no job in the store carries.
	ErrUnknownJob = errors.New("unknown job")

	// ErrNotFinished reports a Result request for a job that has not
	// reached a terminal state yet.
	ErrNotFinished = errors.New("job not finished")
)

// wireSentinels maps wire codes to sentinel errors in classification
// priority order: service-level conditions first (they are the most
// actionable), then the runner/checkpoint taxonomy, then the broad
// classifications. WireError picks the first match, so a CellError
// wrapping ErrCellTimeout codes as "cell-timeout", not "canceled".
var wireSentinels = []struct {
	code string
	err  error
}{
	{"queue-full", ErrQueueFull},
	{"quota-exceeded", ErrQuotaExceeded},
	{"draining", ErrDraining},
	{"unknown-job", ErrUnknownJob},
	{"not-finished", ErrNotFinished},
	{"halted", olerrors.ErrHalted},
	{"checkpoint-format", olerrors.ErrCheckpointFormat},
	{"checkpoint-truncated", olerrors.ErrCheckpointTruncated},
	{"checkpoint-checksum", olerrors.ErrCheckpointChecksum},
	{"checkpoint-version", olerrors.ErrCheckpointVersion},
	{"checkpoint-mismatch", olerrors.ErrCheckpointMismatch},
	{"cell-timeout", olerrors.ErrCellTimeout},
	{"cell-panic", olerrors.ErrCellPanic},
	{"twin-confidence", twin.ErrOutOfConfidence},
	{"twin-calibration", twin.ErrCalibration},
	{"canceled", olerrors.ErrCanceled},
	{"unknown-kernel", olerrors.ErrUnknownKernel},
	{"unknown-experiment", olerrors.ErrUnknownExperiment},
	{"invalid-spec", olerrors.ErrInvalidSpec},
}

// JobError is the wire form of a job failure: a sentinel code plus the
// full error text. It is shared between the library facade and the
// HTTP boundary, and it unwraps to the sentinel it encodes, so
// errors.Is(err, olerrors.ErrUnknownKernel) holds on both sides of the
// wire.
type JobError struct {
	// Code names the first sentinel the original error matched, e.g.
	// "unknown-kernel" or "queue-full"; empty when none matched.
	Code string `json:"code,omitempty"`
	// Message is the original error's full text.
	Message string `json:"message"`
}

// Error implements error.
func (e *JobError) Error() string { return e.Message }

// Unwrap maps the code back to its sentinel, re-arming errors.Is after
// a trip through JSON. An unknown or empty code unwraps to nil.
func (e *JobError) Unwrap() error {
	for _, s := range wireSentinels {
		if s.code == e.Code {
			return s.err
		}
	}
	return nil
}

// WireError classifies err into its wire form; nil maps to nil.
func WireError(err error) *JobError {
	if err == nil {
		return nil
	}
	je := &JobError{Message: err.Error()}
	for _, s := range wireSentinels {
		if errors.Is(err, s.err) {
			je.Code = s.code
			break
		}
	}
	return je
}

// RunOpts is the validated bag of run options every entry point builds
// once per call. The JSON-tagged fields travel over the wire; the
// function and interface fields are in-process only (a daemon caller
// cannot pass a Go callback through HTTP) and are dropped on marshal.
type RunOpts struct {
	// Parallelism bounds the job's cell worker pool; <= 0 means one
	// worker per CPU.
	Parallelism int `json:"parallelism,omitempty"`
	// Dense runs on the naive dense tick engine (parity reference).
	// Kept for wire compatibility; it is shorthand for Engine "dense".
	Dense bool `json:"dense,omitempty"`
	// Engine selects the simulation engine by name: "skip" (default),
	// "dense", or "parallel" (intra-run per-channel sharding; results
	// are byte-identical across all three), or "twin" — the calibrated
	// analytical model, whose answers are approximations with recorded
	// error bounds, never byte-compared against the cycle engines.
	// Unknown values are rejected at admission.
	Engine string `json:"engine,omitempty"`
	// Shards caps the parallel engine's shard count; <= 0 picks
	// min(GOMAXPROCS, channels). Only meaningful with Engine "parallel".
	Shards int `json:"shards,omitempty"`
	// Calibration is the twin engine's calibration artifact path (the
	// facade's WithTwin / the CLIs' -calibration). Only meaningful with
	// Engine "twin".
	Calibration string `json:"calibration,omitempty"`
	// Escalate re-runs cells the twin declines as out-of-confidence on
	// the skip-ahead cycle engine instead of failing; escalated cells
	// are byte-identical to a direct cycle-engine run. Only meaningful
	// with Engine "twin".
	Escalate bool `json:"escalate,omitempty"`
	// NoKernelCache disables sharing built kernel images across cells.
	NoKernelCache bool `json:"no_kernel_cache,omitempty"`
	// BytesPerChannel overrides the experiment data footprint (the
	// facade's WithScale); 0 means the experiment default.
	BytesPerChannel int64 `json:"bytes_per_channel,omitempty"`
	// Manifest attaches provenance manifests to every simulated cell.
	Manifest bool `json:"manifest,omitempty"`
	// Fault arms a seeded ordering-fault plan (single-cell jobs only).
	Fault fault.Spec `json:"fault,omitempty"`
	// CheckpointDir/CheckpointEvery/Resume are the crash-safe options;
	// see the facade's WithCheckpointDir family.
	CheckpointDir   string `json:"checkpoint_dir,omitempty"`
	CheckpointEvery int64  `json:"checkpoint_every,omitempty"`
	Resume          bool   `json:"resume,omitempty"`
	// Retries and CellTimeout drive the per-cell retry/watchdog loop.
	// CellTimeout marshals as nanoseconds.
	Retries     int           `json:"retries,omitempty"`
	CellTimeout time.Duration `json:"cell_timeout_ns,omitempty"`
	// HaltAfter deterministically stops a single-cell run at the first
	// engine step past this core cycle (crash-resume testing).
	HaltAfter int64 `json:"halt_after,omitempty"`
	// StreamTrace relays the machine's event feed to Watch subscribers
	// as "trace" events (single-cell jobs only).
	StreamTrace bool `json:"stream_trace,omitempty"`
	// CacheDir points the run at an on-disk content-addressed result
	// cache: completed unfaulted cells are memoized and identical cells
	// in later runs are served without simulating (the facade's
	// WithResultCache / the CLIs' -cache-dir). Cached and recomputed
	// results are byte-identical.
	CacheDir string `json:"cache_dir,omitempty"`
	// Fabric runs a multi-cell job on the distributed sweep fabric: the
	// daemon coordinates, preemptible workers (olserve -worker) lease
	// cell ranges over /v1/work, and declaration-order reassembly keeps
	// the output byte-identical to a local run. Daemon-side only — the
	// serving Local must have fabric enabled.
	Fabric bool `json:"fabric,omitempty"`

	// In-process-only fields; see the facade options of the same names.
	Progress func(done, total int) `json:"-"`
	Sink     obs.Sink              `json:"-"`
	Sampler  *stats.Sampler        `json:"-"`
	// Cache is an already-open result cache (the daemon attaches its
	// shared one); takes precedence over CacheDir.
	Cache *rcache.Cache `json:"-"`
	// TwinPredictor is an already-loaded calibration (the daemon
	// attaches its shared one); takes precedence over Calibration.
	TwinPredictor *twin.Predictor `json:"-"`
	// FS is the filesystem the run's durability layers (checkpoints,
	// journals, result-cache blobs) write through; nil means the real
	// one. The chaos harness injects its seeded sick disk here. Never
	// crosses the wire — a daemon's disks are its own.
	FS chaos.FS `json:"-"`
}

// Validate reports structurally invalid option combinations. This is
// the one place option invariants live; every entry point — facade,
// CLI and daemon — funnels through it.
func (o *RunOpts) Validate() error {
	switch {
	case o.Resume && o.CheckpointDir == "":
		return fmt.Errorf("serve: %w: WithResume (resume) needs a checkpoint directory (WithCheckpointDir)", olerrors.ErrInvalidSpec)
	case o.CheckpointEvery != 0 && o.CheckpointDir == "":
		return fmt.Errorf("serve: %w: WithCheckpointEvery (checkpoint_every) needs a checkpoint directory (WithCheckpointDir)", olerrors.ErrInvalidSpec)
	case o.CheckpointEvery < 0:
		return fmt.Errorf("serve: %w: checkpoint cadence %d is negative", olerrors.ErrInvalidSpec, o.CheckpointEvery)
	case o.Retries < 0:
		return fmt.Errorf("serve: %w: retry count %d is negative", olerrors.ErrInvalidSpec, o.Retries)
	case o.CellTimeout < 0:
		return fmt.Errorf("serve: %w: cell timeout %v is negative", olerrors.ErrInvalidSpec, o.CellTimeout)
	case o.HaltAfter < 0:
		return fmt.Errorf("serve: %w: halt-after cycle %d is negative", olerrors.ErrInvalidSpec, o.HaltAfter)
	case o.BytesPerChannel < 0:
		return fmt.Errorf("serve: %w: bytes per channel %d is negative", olerrors.ErrInvalidSpec, o.BytesPerChannel)
	}
	switch o.Engine {
	case "", "skip", "dense", "parallel", "twin":
	default:
		return fmt.Errorf("serve: %w: unknown engine %q (want skip|dense|parallel|twin)", olerrors.ErrInvalidSpec, o.Engine)
	}
	if o.Dense && (o.Engine == "skip" || o.Engine == "parallel" || o.Engine == "twin") {
		return fmt.Errorf("serve: %w: WithDenseEngine (dense) conflicts with engine %q; pick one engine", olerrors.ErrInvalidSpec, o.Engine)
	}
	if o.Engine == "twin" {
		// The twin answers from a fitted model — it has no machine to
		// checkpoint, trace, sample, halt, fault or distribute.
		switch {
		case o.CheckpointDir != "" || o.Resume:
			return fmt.Errorf("serve: %w: checkpoints journal cycle-engine progress; the twin engine has none (drop WithCheckpointDir/WithResume)", olerrors.ErrInvalidSpec)
		case o.HaltAfter > 0:
			return fmt.Errorf("serve: %w: WithHaltAfter stops a cycle engine mid-run; the twin engine has no cycles to halt", olerrors.ErrInvalidSpec)
		case o.Sink != nil || o.StreamTrace:
			return fmt.Errorf("serve: %w: the twin engine simulates nothing and emits no event feed (drop WithTraceSink/stream_trace)", olerrors.ErrInvalidSpec)
		case o.Sampler != nil:
			return fmt.Errorf("serve: %w: the twin engine simulates nothing and has no counters to sample (drop WithSampler)", olerrors.ErrInvalidSpec)
		case o.Fabric:
			return fmt.Errorf("serve: %w: twin answers are microseconds of local math; the sweep fabric would only add transport (drop fabric)", olerrors.ErrInvalidSpec)
		case o.Fault.Active():
			return fmt.Errorf("serve: %w: fault injection attacks a real machine; the twin engine has none (run the fault plan on a cycle engine)", olerrors.ErrInvalidSpec)
		}
	} else {
		switch {
		case o.Calibration != "":
			return fmt.Errorf("serve: %w: WithCalibration (calibration) needs the twin engine (WithTwin / engine \"twin\")", olerrors.ErrInvalidSpec)
		case o.Escalate:
			return fmt.Errorf("serve: %w: WithTwinEscalate (escalate) needs the twin engine (WithTwin / engine \"twin\")", olerrors.ErrInvalidSpec)
		case o.TwinPredictor != nil:
			return fmt.Errorf("serve: %w: a twin predictor needs the twin engine (WithTwin / engine \"twin\")", olerrors.ErrInvalidSpec)
		}
	}
	if o.Shards < 0 {
		return fmt.Errorf("serve: %w: shard count %d is negative", olerrors.ErrInvalidSpec, o.Shards)
	}
	if o.Shards != 0 && o.Engine != "parallel" {
		return fmt.Errorf("serve: %w: WithParallelShards (shards) needs the parallel engine (WithParallelEngine / engine \"parallel\")", olerrors.ErrInvalidSpec)
	}
	if o.Fault.Active() {
		if err := o.Fault.Validate(); err != nil {
			return fmt.Errorf("serve: %w: %v", olerrors.ErrInvalidSpec, err)
		}
	}
	return nil
}

// JobRequest describes one job. The zero value is invalid; Kind must
// be set and the kind-specific field filled in.
type JobRequest struct {
	Kind JobKind `json:"kind"`

	// Tenant is the quota key for admission control; empty means the
	// "default" tenant.
	Tenant string `json:"tenant,omitempty"`

	// IdempotencyKey, when non-empty, makes Submit idempotent: a
	// submission whose key matches a queued, running or done job hands
	// back that job's ID instead of enqueueing a duplicate. Retry-armed
	// clients stamp it automatically (a client that lost a response
	// cannot tell whether the daemon lost the request), deriving it
	// from the request content so identical retries collide and
	// different jobs never do.
	IdempotencyKey string `json:"idempotency_key,omitempty"`

	// Kernel names a Table 2 workload (KindKernel).
	Kernel string `json:"kernel,omitempty"`

	// Spec is a user-defined kernel spec (KindSpec).
	Spec *kernel.Spec `json:"spec,omitempty"`

	// Experiment is a table/figure ID (KindExperiment).
	Experiment string `json:"experiment,omitempty"`

	// Bytes is the per-channel data footprint for single-cell jobs;
	// <= 0 means 128 KiB.
	Bytes int64 `json:"bytes,omitempty"`

	// Config is the full simulator configuration; nil means the Table 1
	// default.
	Config *config.Config `json:"config,omitempty"`

	// Opts tunes execution without changing simulation results (except
	// Fault, which is part of the job's identity).
	Opts RunOpts `json:"opts,omitempty"`
}

// MultiCell reports whether the request fans out over a cell grid, in
// which case the single-cell options are rejected.
func (r *JobRequest) MultiCell() bool {
	return r.Kind != KindKernel && r.Kind != KindSpec
}

// Validate is the single admission gate for every caller: it checks
// the option bag, the kind-specific payload, and — in one place
// instead of per entry point — the single-cell-only option guards.
func (r *JobRequest) Validate() error {
	if err := r.Opts.Validate(); err != nil {
		return err
	}
	switch r.Kind {
	case KindKernel:
		if _, err := kernel.ByName(r.Kernel); err != nil {
			return err
		}
	case KindSpec:
		if r.Spec == nil {
			return fmt.Errorf("serve: %w: spec job carries no kernel spec", olerrors.ErrInvalidSpec)
		}
		if err := r.Spec.Validate(); err != nil {
			return err
		}
	case KindExperiment:
		if !experiments.Known(r.Experiment) {
			return fmt.Errorf("serve: %w %q (known: %v)", olerrors.ErrUnknownExperiment, r.Experiment, experiments.IDs())
		}
	case KindSweep, KindFaultCampaign:
		// No payload beyond config and options.
	default:
		return fmt.Errorf("serve: %w: unknown job kind %q (want kernel|spec|experiment|sweep|fault-campaign)", olerrors.ErrInvalidSpec, r.Kind)
	}
	if r.MultiCell() {
		switch {
		case r.Opts.Sink != nil || r.Opts.StreamTrace:
			return fmt.Errorf("serve: %w: WithTraceSink (stream_trace) attaches to exactly one run; %s jobs fan out many cells", olerrors.ErrInvalidSpec, r.Kind)
		case r.Opts.Sampler != nil:
			return fmt.Errorf("serve: %w: WithSampler attaches to exactly one run; %s jobs fan out many cells", olerrors.ErrInvalidSpec, r.Kind)
		case r.Opts.HaltAfter > 0:
			return fmt.Errorf("serve: %w: WithHaltAfter attaches to exactly one run; %s jobs fan out many cells", olerrors.ErrInvalidSpec, r.Kind)
		case r.Opts.Fault.Active():
			return fmt.Errorf("serve: %w: WithFaultPlan applies to exactly one run; use RunFaultedKernelContext or a fault-campaign job", olerrors.ErrInvalidSpec)
		}
	}
	if r.Opts.Fabric {
		switch {
		case !r.MultiCell():
			return fmt.Errorf("serve: %w: fabric distributes cell grids; %s jobs run one cell — submit it directly", olerrors.ErrInvalidSpec, r.Kind)
		case r.Opts.Manifest:
			return fmt.Errorf("serve: %w: manifests record per-cell wall times the coordinator cannot observe; drop manifest or fabric", olerrors.ErrInvalidSpec)
		case r.Opts.CheckpointDir != "" || r.Opts.Resume:
			return fmt.Errorf("serve: %w: fabric durability lives on the workers (olserve -worker -checkpoint-dir); drop the job-level checkpoint options", olerrors.ErrInvalidSpec)
		}
	}
	return nil
}

// JobStatus is a job's observable state, shared between the library
// facade and the wire format. Timestamps are wall-clock and therefore
// run-dependent; results stay deterministic.
type JobStatus struct {
	ID     JobID    `json:"id"`
	Kind   JobKind  `json:"kind"`
	State  JobState `json:"state"`
	Tenant string   `json:"tenant,omitempty"`

	// Done/Total mirror the runner's progress callback.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`

	// Error classifies a failed or canceled job.
	Error *JobError `json:"error,omitempty"`

	// Resumable reports that the job has a checkpoint directory, so a
	// preempted or failed run can continue from its journal by
	// resubmitting the identical request.
	Resumable bool `json:"resumable,omitempty"`

	SubmittedAt time.Time `json:"submitted_at,omitempty"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
}

// JobResult is everything a completed job produced. Exactly which
// fields are set depends on the job kind.
type JobResult struct {
	// Run and friends are the single-cell outputs (KindKernel,
	// KindSpec).
	Run         *stats.Run     `json:"run,omitempty"`
	HostLatency float64        `json:"host_latency,omitempty"`
	HostServed  int64          `json:"host_served,omitempty"`
	Verdict     *fault.Verdict `json:"verdict,omitempty"`
	Manifest    *obs.Manifest  `json:"manifest,omitempty"`

	// Tables are the rendered outputs of experiment, sweep and
	// fault-campaign jobs (one per experiment, in declaration order).
	Tables []*experiments.Table `json:"tables,omitempty"`

	// Summary is the fault campaign's verdict aggregation.
	Summary *experiments.FaultSummary `json:"summary,omitempty"`

	// Kernel is the built kernel image of a single-cell job. It is an
	// in-process convenience (RunSpecContext returns it) and far too
	// big for the wire.
	Kernel *kernel.Kernel `json:"-"`
}

// WatchEvent is one item in a job's Watch stream.
type WatchEvent struct {
	// Type is "state" (State set; terminal states carry Error on
	// failure), "progress" (Done/Total set) or "trace" (Trace set).
	Type  string     `json:"type"`
	State JobState   `json:"state,omitempty"`
	Done  int        `json:"done,omitempty"`
	Total int        `json:"total,omitempty"`
	Trace *obs.Event `json:"trace,omitempty"`
	Error *JobError  `json:"error,omitempty"`
}

// Terminal reports whether the event announces a terminal state — the
// stream's last event before close.
func (e WatchEvent) Terminal() bool {
	return e.Type == "state" && e.State.Terminal()
}

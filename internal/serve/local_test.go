package serve

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"orderlight/internal/config"
	"orderlight/internal/olerrors"
)

// testConfig shrinks the machine so every job finishes in tens of
// milliseconds.
func testConfig() *config.Config {
	cfg := config.Default()
	cfg.Memory.Channels = 4
	cfg.GPU.PIMSMs = 2
	return &cfg
}

func kernelReq(name string) JobRequest {
	return JobRequest{Kind: KindKernel, Kernel: name, Bytes: 8 << 10, Config: testConfig()}
}

func TestLocalLifecycle(t *testing.T) {
	svc := NewLocal(LocalConfig{})
	defer svc.Close()
	ctx := context.Background()

	id, err := svc.Submit(ctx, kernelReq("add"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Await(ctx, svc, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run == nil || !res.Run.Correct {
		t.Fatalf("job result implausible: %+v", res)
	}
	st, err := svc.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Error != nil {
		t.Fatalf("status after done = %+v", st)
	}
	// Watch on a terminal job: one snapshot, then close.
	events, err := svc.Watch(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	ev, ok := <-events
	if !ok || !ev.Terminal() || ev.State != StateDone {
		t.Fatalf("terminal watch snapshot = %+v (ok %v)", ev, ok)
	}
	if _, ok := <-events; ok {
		t.Fatal("watch stream did not close after terminal snapshot")
	}
}

func TestLocalUnknownJobAndNotFinished(t *testing.T) {
	svc := NewLocal(LocalConfig{})
	defer svc.Close()
	ctx := context.Background()

	if _, err := svc.Status(ctx, "job-nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Status(unknown) = %v, want ErrUnknownJob", err)
	}
	if _, err := svc.Result(ctx, "job-nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Result(unknown) = %v, want ErrUnknownJob", err)
	}

	// A job held in its progress callback is running, not finished.
	gate := make(chan struct{})
	started := make(chan struct{})
	req := kernelReq("add")
	req.Opts.Progress = func(done, total int) {
		close(started)
		<-gate
	}
	id, err := svc.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := svc.Result(ctx, id); !errors.Is(err, ErrNotFinished) {
		t.Fatalf("Result(running) = %v, want ErrNotFinished", err)
	}
	close(gate)
	if _, err := Await(ctx, svc, id, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalSubmitValidation(t *testing.T) {
	svc := NewLocal(LocalConfig{})
	defer svc.Close()
	ctx := context.Background()

	cases := []struct {
		name string
		req  JobRequest
		want error
	}{
		{"unknown kernel", kernelReq("not-a-kernel"), olerrors.ErrUnknownKernel},
		{"unknown experiment", JobRequest{Kind: KindExperiment, Experiment: "fig99"}, olerrors.ErrUnknownExperiment},
		{"unknown kind", JobRequest{Kind: "nonsense"}, olerrors.ErrInvalidSpec},
		{"resume without dir", func() JobRequest {
			r := kernelReq("add")
			r.Opts.Resume = true
			return r
		}(), olerrors.ErrInvalidSpec},
		{"halt-after on sweep", JobRequest{Kind: KindSweep, Opts: RunOpts{HaltAfter: 100}}, olerrors.ErrInvalidSpec},
		{"stream-trace on experiment", JobRequest{Kind: KindExperiment, Experiment: "fig5", Opts: RunOpts{StreamTrace: true}}, olerrors.ErrInvalidSpec},
	}
	for _, tc := range cases {
		if _, err := svc.Submit(ctx, tc.req); !errors.Is(err, tc.want) {
			t.Errorf("%s: Submit = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestLocalQueueFullAndQuota(t *testing.T) {
	svc := NewLocal(LocalConfig{Workers: 1, QueueDepth: 2, PerTenant: 2})
	defer svc.Close()
	ctx := context.Background()

	// Hold the single worker inside job 1's progress callback.
	gate := make(chan struct{})
	started := make(chan struct{})
	blocking := kernelReq("add")
	blocking.Tenant = "alice"
	blocking.Opts.Progress = func(done, total int) {
		select {
		case <-started:
		default:
			close(started)
		}
		<-gate
	}
	id1, err := svc.Submit(ctx, blocking)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Alice's second job fills her quota (1 running + 1 queued).
	alice2 := kernelReq("triad")
	alice2.Tenant = "alice"
	id2, err := svc.Submit(ctx, alice2)
	if err != nil {
		t.Fatal(err)
	}
	alice3 := kernelReq("copy")
	alice3.Tenant = "alice"
	if _, err := svc.Submit(ctx, alice3); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("Submit over quota = %v, want ErrQuotaExceeded", err)
	}

	// Another tenant takes the last queue slot; the next submission
	// finds the queue (depth 2) at capacity.
	bob := kernelReq("add")
	bob.Tenant = "bob"
	idBob, err := svc.Submit(ctx, bob)
	if err != nil {
		t.Fatal(err)
	}
	carol := kernelReq("add")
	carol.Tenant = "carol"
	if _, err := svc.Submit(ctx, carol); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit over capacity = %v, want ErrQueueFull", err)
	}

	// Canceling a queued job is immediate — it never runs.
	if err := svc.Cancel(ctx, id2); err != nil {
		t.Fatal(err)
	}
	st, err := svc.Status(ctx, id2)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("canceled-while-queued state = %v", st.State)
	}

	close(gate)
	for _, id := range []JobID{id1, idBob} {
		if _, err := Await(ctx, svc, id, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLocalCancelMidRun(t *testing.T) {
	svc := NewLocal(LocalConfig{})
	defer svc.Close()
	ctx := context.Background()

	// fig5 fans out several cells; parallelism 1 guarantees cells
	// remain when the first progress callback fires.
	req := JobRequest{Kind: KindExperiment, Experiment: "fig5", Config: testConfig()}
	req.Opts.Parallelism = 1
	started := make(chan struct{})
	req.Opts.Progress = func(done, total int) {
		select {
		case <-started:
		default:
			close(started)
		}
	}
	id, err := svc.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := svc.Cancel(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := Await(ctx, svc, id, nil); !errors.Is(err, olerrors.ErrCanceled) {
		t.Fatalf("canceled job result = %v, want ErrCanceled", err)
	}
	st, err := svc.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled || st.Error == nil || st.Error.Code != "canceled" {
		t.Fatalf("status after mid-run cancel = %+v", st)
	}
}

func TestLocalWatchStreamsProgress(t *testing.T) {
	svc := NewLocal(LocalConfig{})
	defer svc.Close()
	ctx := context.Background()

	req := JobRequest{Kind: KindExperiment, Experiment: "fig5", Config: testConfig()}
	req.Opts.Parallelism = 1
	id, err := svc.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	events, err := svc.Watch(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	var progress int
	var last WatchEvent
	for ev := range events {
		if ev.Type == "progress" {
			progress++
		}
		last = ev
	}
	if !last.Terminal() || last.State != StateDone {
		t.Fatalf("last event = %+v, want terminal done", last)
	}
	if progress == 0 {
		t.Fatal("watch saw no progress events")
	}
}

func TestLocalDrainRejectsAndPreempts(t *testing.T) {
	root := t.TempDir()
	svc := NewLocal(LocalConfig{Workers: 1, CheckpointRoot: root})

	// A slow sweep-ish job: fig5 sequentially, gated so we know it
	// started before draining.
	req := JobRequest{Kind: KindExperiment, Experiment: "fig5", Config: testConfig()}
	req.Opts.Parallelism = 1
	started := make(chan struct{})
	req.Opts.Progress = func(done, total int) {
		select {
		case <-started:
		default:
			close(started)
		}
	}
	ctx := context.Background()
	id, err := svc.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Resumable {
		t.Fatal("job under CheckpointRoot not marked resumable")
	}
	<-started

	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := svc.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	// Preempted at a cell boundary: canceled, with its progress
	// journaled under the request-keyed directory.
	st, err = svc.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("preempted job state = %v, want canceled", st.State)
	}
	journals, _ := filepath.Glob(filepath.Join(root, "*", "journal.jsonl"))
	if len(journals) == 0 {
		t.Fatal("drain left no journal under the checkpoint root")
	}
	// Draining service refuses new work.
	if _, err := svc.Submit(ctx, kernelReq("add")); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit while draining = %v, want ErrDraining", err)
	}
	svc.Close()

	// A fresh service over the same root resumes the identical request
	// from the journal; the finished table is byte-identical to an
	// uninterrupted run.
	svc2 := NewLocal(LocalConfig{Workers: 1, CheckpointRoot: root})
	defer svc2.Close()
	req2 := JobRequest{Kind: KindExperiment, Experiment: "fig5", Config: testConfig()}
	req2.Opts.Parallelism = 1
	id2, err := svc2.Submit(ctx, req2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Await(ctx, svc2, id2, nil)
	if err != nil {
		t.Fatal(err)
	}

	want, err := Execute(ctx, &JobRequest{Kind: KindExperiment, Experiment: "fig5", Config: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].Markdown() != want.Tables[0].Markdown() {
		t.Fatalf("resumed table differs from uninterrupted run:\n%s\nvs\n%s",
			res.Tables[0].Markdown(), want.Tables[0].Markdown())
	}
}

func TestLocalSubmitCanceledContext(t *testing.T) {
	svc := NewLocal(LocalConfig{})
	defer svc.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Submit(ctx, kernelReq("add")); !errors.Is(err, olerrors.ErrCanceled) {
		t.Fatalf("Submit with canceled ctx = %v, want ErrCanceled", err)
	}
}

func TestLocalForget(t *testing.T) {
	svc := NewLocal(LocalConfig{})
	defer svc.Close()
	ctx := context.Background()
	id, err := svc.Submit(ctx, kernelReq("add"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Await(ctx, svc, id, nil); err != nil {
		t.Fatal(err)
	}
	svc.Forget(id)
	if _, err := svc.Status(ctx, id); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Status after Forget = %v, want ErrUnknownJob", err)
	}
}

package serve

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"orderlight/internal/chaos"
	"orderlight/internal/experiments"
	"orderlight/internal/fault"
	"orderlight/internal/obs"
	"orderlight/internal/olerrors"
	"orderlight/internal/rcache"
	"orderlight/internal/runner"
	"orderlight/internal/stats"
	"orderlight/internal/twin"
)

// LocalConfig tunes the production Service implementation.
type LocalConfig struct {
	// QueueDepth bounds the FIFO job queue; Submit fails with
	// ErrQueueFull beyond it. <= 0 means 64.
	QueueDepth int

	// PerTenant caps each tenant's queued-plus-running jobs; Submit
	// fails with ErrQuotaExceeded beyond it. <= 0 disables quotas.
	PerTenant int

	// Workers is how many jobs execute concurrently (each job still
	// fans its cells across its own worker pool). <= 0 means 1.
	Workers int

	// CheckpointRoot, when set, gives every job without an explicit
	// checkpoint directory one keyed by the request's content hash
	// under this root, with resume armed. A job preempted by Drain (or
	// a daemon crash) then continues from its journal when the
	// identical request is resubmitted — checkpoint-backed preemption.
	CheckpointRoot string

	// CacheDir, when set, opens a shared content-addressed result
	// cache (internal/rcache): per-cell results are memoized inside
	// every job, and whole memoizable jobs are answered without
	// running — across tenants, since identical requests produce
	// byte-identical results regardless of who submitted them. An
	// unopenable directory fails every Submit rather than silently
	// running uncached.
	CacheDir string

	// Calibration, when set, loads a twin calibration artifact once at
	// startup and shares its predictor with every twin job that does
	// not carry its own (olserve -calibration). An unloadable artifact
	// fails twin submissions — cycle-engine jobs are unaffected.
	Calibration string

	// Fabric enables the distributed sweep coordinator: multi-cell
	// jobs submitted with the fabric option are posted on a work board
	// and executed by olserve -worker processes leasing cell ranges
	// over /v1/work. Without it, fabric submissions are rejected at
	// admission.
	Fabric bool

	// LeaseTTL is how long a fabric worker holds an uncompleted lease
	// before its range is re-issued; <= 0 means runner.DefaultLeaseTTL.
	LeaseTTL time.Duration

	// FabricChunk is how many cells one lease spans; <= 0 means
	// runner.DefaultChunk.
	FabricChunk int

	// FabricJournal, when set (and Fabric is on), journals every board
	// mutation to this file so a killed coordinator restarts with its
	// jobs' completions intact: workers re-lease only unfinished ranges
	// and a resubmitted identical request attaches to the replayed job.
	// An unreplayable journal fails fabric submissions, not startup.
	FabricJournal string

	// CacheBytes caps the result cache's on-disk footprint; past it the
	// least recently used blobs are evicted. <= 0 means uncapped.
	CacheBytes int64

	// FS is the filesystem the fabric journal and result cache write
	// through; nil means the real one (the chaos harness injects its
	// sick disk here).
	FS chaos.FS

	// Logf receives operational notices (journal replay and degrade,
	// flapping workers); nil discards them.
	Logf func(format string, args ...any)
}

// job is the service-side record of one submission.
type job struct {
	id     JobID
	req    JobRequest
	state  JobState
	err    error
	res    *JobResult
	done   int
	total  int
	cancel context.CancelFunc

	// resumable records that the job runs with a checkpoint directory,
	// so preemption leaves it continuable.
	resumable bool

	submitted time.Time
	started   time.Time
	finished  time.Time

	watchers []chan WatchEvent
	// doneCh closes at the terminal transition; Await-style helpers
	// block on it without polling.
	doneCh chan struct{}
}

// Local is the production Service: a bounded FIFO queue in front of
// the runner engine, with admission control, per-tenant quotas,
// graceful drain and checkpoint-backed preemption.
type Local struct {
	cfg LocalConfig

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// cache is the shared result cache (nil without CacheDir);
	// cacheErr records an open failure, surfaced on every Submit.
	cache    *rcache.Cache
	cacheErr error

	// twin is the shared calibration predictor (nil without
	// Calibration); twinErr records a load failure, surfaced on twin
	// submissions only.
	twin    *twin.Predictor
	twinErr error

	// board is the fabric coordinator's work ledger (nil without
	// cfg.Fabric); boardErr records a journal replay failure, surfaced
	// on fabric submissions.
	board    *runner.Board
	boardErr error

	mu       sync.Mutex
	seq      int
	jobs     map[JobID]*job
	queue    chan *job
	draining bool
	wg       sync.WaitGroup
}

// NewLocal creates the service and starts its job workers.
func NewLocal(cfg LocalConfig) *Local {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Local{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[JobID]*job),
		queue:      make(chan *job, cfg.QueueDepth),
	}
	if cfg.CacheDir != "" {
		s.cache, s.cacheErr = rcache.OpenWith(rcache.Config{Dir: cfg.CacheDir, DiskBytes: cfg.CacheBytes, FS: cfg.FS})
		if s.cacheErr != nil {
			s.cacheErr = fmt.Errorf("serve: %w: result cache %q: %v", olerrors.ErrInvalidSpec, cfg.CacheDir, s.cacheErr)
		}
	}
	if cfg.Calibration != "" {
		s.twin, s.twinErr = twin.LoadPredictor(cfg.Calibration)
		if s.twinErr != nil {
			s.twinErr = fmt.Errorf("serve: %w: calibration %q: %v", olerrors.ErrInvalidSpec, cfg.Calibration, s.twinErr)
		}
	}
	if cfg.Fabric {
		if cfg.FabricJournal != "" {
			s.board, s.boardErr = runner.NewJournaledBoard(cfg.LeaseTTL, cfg.FabricChunk, cfg.FabricJournal, cfg.FS, cfg.Logf)
			if s.boardErr != nil {
				s.boardErr = fmt.Errorf("serve: %w: fabric journal %q: %v", olerrors.ErrInvalidSpec, cfg.FabricJournal, s.boardErr)
			}
		} else {
			s.board = runner.NewBoard(cfg.LeaseTTL, cfg.FabricChunk)
		}
		if s.board != nil {
			// Heartbeat-driven liveness: a silent worker loses its leases
			// after half the TTL instead of the full TTL.
			s.board.EnableHeartbeats(0)
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Submit implements Service. Validation and admission are synchronous;
// execution is not.
func (s *Local) Submit(ctx context.Context, req JobRequest) (JobID, error) {
	if err := ctx.Err(); err != nil {
		return "", fmt.Errorf("serve: %w: %v", olerrors.ErrCanceled, err)
	}
	if err := req.Validate(); err != nil {
		return "", err
	}
	if s.cacheErr != nil {
		return "", s.cacheErr
	}
	if s.twinErr != nil && req.Opts.Engine == "twin" {
		return "", s.twinErr
	}
	if req.Opts.Fabric && s.board == nil {
		if s.boardErr != nil {
			return "", s.boardErr
		}
		return "", fmt.Errorf("serve: %w: this service has no fabric coordinator (start olserve with -fabric)", olerrors.ErrInvalidSpec)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return "", fmt.Errorf("serve: %w", ErrDraining)
	}
	// Idempotent resubmission: a retrying client cannot tell a lost
	// response from a lost request, so it stamps submissions with a
	// content-derived key. If that exact submission is already queued,
	// running or done, hand back its job instead of enqueueing a
	// duplicate. Failed and canceled jobs are excluded on purpose — an
	// explicit resubmit after failure should rerun.
	if req.IdempotencyKey != "" {
		for _, j := range s.jobs {
			if j.req.IdempotencyKey == req.IdempotencyKey &&
				(j.state == StateQueued || j.state == StateRunning || j.state == StateDone) {
				return j.id, nil
			}
		}
	}
	if s.cfg.PerTenant > 0 && s.inflightLocked(req.Tenant) >= s.cfg.PerTenant {
		return "", fmt.Errorf("serve: %w: tenant %q already has %d job(s) in flight",
			ErrQuotaExceeded, tenantName(req.Tenant), s.cfg.PerTenant)
	}
	if s.cfg.CheckpointRoot != "" && req.Opts.CheckpointDir == "" && !req.Opts.Fabric && req.Opts.Engine != "twin" {
		// (Fabric jobs excluded: their durability lives in the workers'
		// journals, and fabric+checkpoint is an invalid combination.
		// Twin jobs likewise: they have no cycle-engine progress to
		// journal, and twin+checkpoint is rejected at validation.)
		// Key the directory by request content, not job ID: the same
		// request resubmitted after preemption (or a daemon restart)
		// lands on the same journal and resumes instead of restarting.
		req.Opts.CheckpointDir = filepath.Join(s.cfg.CheckpointRoot, requestHash(&req))
		req.Opts.Resume = true
	}
	s.seq++
	j := &job{
		id:        JobID(fmt.Sprintf("job-%06d", s.seq)),
		req:       req,
		state:     StateQueued,
		cancel:    func() {}, // replaced with the real job context's cancel at start
		resumable: req.Opts.CheckpointDir != "",
		submitted: time.Now(),
		doneCh:    make(chan struct{}),
	}
	select {
	case s.queue <- j:
	default:
		return "", fmt.Errorf("serve: %w: %d job(s) queued", ErrQueueFull, s.cfg.QueueDepth)
	}
	s.jobs[j.id] = j
	return j.id, nil
}

// inflightLocked counts a tenant's queued and running jobs. Callers
// hold s.mu.
func (s *Local) inflightLocked(tenant string) int {
	n := 0
	for _, j := range s.jobs {
		if j.req.Tenant == tenant && !j.state.Terminal() {
			n++
		}
	}
	return n
}

func tenantName(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

// requestHash is the deterministic content identity of a request: the
// canonical JSON of its wire fields. In-process fields carry json:"-"
// and so cannot perturb it.
func requestHash(req *JobRequest) string {
	b, err := json.Marshal(req)
	if err != nil {
		// JobRequest is a closed set of marshalable types; a failure
		// here is a programming error, but degrade to a constant rather
		// than panic the daemon.
		return "unhashable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// worker executes queued jobs until the queue closes (drain).
func (s *Local) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob drives one job from queued to a terminal state.
func (s *Local) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()

	s.mu.Lock()
	if j.state != StateQueued {
		// Canceled while queued; already terminal.
		s.mu.Unlock()
		return
	}
	if s.draining {
		s.finishLocked(j, nil, fmt.Errorf("serve: %w: job preempted by drain before starting", olerrors.ErrCanceled))
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel // Cancel and Drain now reach the running engine
	s.broadcastLocked(j, WatchEvent{Type: "state", State: StateRunning})
	s.mu.Unlock()

	// The job's own copy of the request gets the service's observers
	// chained onto the caller's: progress feeds Status and Watch, and
	// single-cell trace streaming fans into Watch alongside any
	// in-process sink.
	req := j.req
	userProgress := req.Opts.Progress
	req.Opts.Progress = func(done, total int) {
		if userProgress != nil {
			userProgress(done, total)
		}
		s.mu.Lock()
		j.done, j.total = done, total
		s.broadcastLocked(j, WatchEvent{Type: "progress", Done: done, Total: total})
		s.mu.Unlock()
	}
	if req.Opts.StreamTrace && !req.MultiCell() {
		relay := &watchSink{s: s, j: j}
		if req.Opts.Sink != nil {
			req.Opts.Sink = obs.MultiSink{req.Opts.Sink, relay}
		} else {
			req.Opts.Sink = relay
		}
	}

	// Whole-job memoization: identical memoizable requests — across
	// tenants, since results depend only on the request — are answered
	// straight from the result cache without running.
	memoKey := ""
	if s.cache != nil && jobMemoizable(&req) {
		memoKey = jobCacheKey(&req)
		if res, ok := s.memoGet(memoKey); ok {
			s.mu.Lock()
			s.finishLocked(j, res, nil)
			s.mu.Unlock()
			return
		}
	}
	// Per-cell memoization: jobs without their own cache settings run
	// against the daemon's shared cache. (Safe for twin jobs too — the
	// runner keys their cells in a distinct "twin|" domain that embeds
	// the calibration hash, so a twin answer can never be served as a
	// cycle-engine result or vice versa.)
	if s.cache != nil && req.Opts.Cache == nil && req.Opts.CacheDir == "" {
		req.Opts.Cache = s.cache
	}
	// Twin jobs without their own calibration run against the daemon's
	// shared predictor (olserve -calibration).
	if req.Opts.Engine == "twin" && req.Opts.TwinPredictor == nil && req.Opts.Calibration == "" {
		req.Opts.TwinPredictor = s.twin
	}

	var res *JobResult
	var err error
	if req.Opts.Fabric {
		res, err = s.executeFabric(ctx, j.id, &req)
	} else {
		res, err = Execute(ctx, &req)
	}
	if err == nil && memoKey != "" {
		s.memoPut(memoKey, res)
	}

	s.mu.Lock()
	s.finishLocked(j, res, err)
	s.mu.Unlock()
}

// executeFabric runs one multi-cell job on the sweep fabric: post the
// serialized request on the board, wait for workers to complete every
// cell range, rebuild full results in declaration order, and assemble
// exactly as the local path would — byte-identical output.
func (s *Local) executeFabric(ctx context.Context, id JobID, req *JobRequest) (*JobResult, error) {
	plan, err := planFabric(req)
	if err != nil {
		return nil, err
	}
	wire, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("serve: encode fabric request: %w", err)
	}
	key, err := s.board.Post(wire, len(plan.cells), req.Opts.Progress)
	if err != nil {
		return nil, err
	}
	outs, err := s.board.Wait(ctx, key)
	if err != nil {
		return nil, err
	}
	eng := runner.New(runner.Options{DisableKernelCache: req.Opts.NoKernelCache})
	res := make([]runner.Result, len(outs))
	for i := range outs {
		r, err := eng.ResultFromOutcome(&plan.cells[i], outs[i])
		if err != nil {
			return nil, err
		}
		res[i] = r
	}
	return plan.assemble(res)
}

// LeaseWork implements WorkProvider for fabric-enabled services.
func (s *Local) LeaseWork(_ context.Context, worker string) (*runner.Lease, error) {
	if s.board == nil {
		return nil, fmt.Errorf("serve: %w: this service has no fabric coordinator", olerrors.ErrInvalidSpec)
	}
	return s.board.Lease(worker), nil
}

// CompleteWork implements WorkProvider. Completions for jobs the
// board no longer tracks (canceled, collected) report ErrUnknownJob;
// workers treat that as routine and keep polling.
func (s *Local) CompleteWork(_ context.Context, comp WorkCompletion) error {
	if s.board == nil {
		return fmt.Errorf("serve: %w: this service has no fabric coordinator", olerrors.ErrInvalidSpec)
	}
	if err := s.board.Complete(comp.Job, comp.Lease, comp.Worker, comp.Outcomes); err != nil {
		return fmt.Errorf("serve: %w: %v", ErrUnknownJob, err)
	}
	return nil
}

// HeartbeatWork implements WorkProvider: a worker mid-lease proves it
// is alive, extending the lease. false means the lease is no longer
// held (expired and re-issued, or the job finished).
func (s *Local) HeartbeatWork(_ context.Context, hb WorkHeartbeat) (bool, error) {
	if s.board == nil {
		return false, fmt.Errorf("serve: %w: this service has no fabric coordinator", olerrors.ErrInvalidSpec)
	}
	return s.board.Heartbeat(hb.Worker, hb.Job, hb.Lease), nil
}

// jobMemoizable excludes jobs whose results the cache must not serve:
// manifest runs (they exist to record fresh provenance), streaming and
// sampling runs (the side channel is the point), halted runs, and
// anything fault-injected — the campaign's oracle must genuinely
// re-attack the simulator, so fault-campaign jobs and sweeps (which
// embed the campaign experiment) always run. Twin jobs are excluded
// too: their answers are approximations keyed to a calibration file on
// the server's disk, and a whole-job memo would outlive a recalibration
// — per-cell twin caching (which embeds the calibration hash in its
// key) is the only memoization they get.
func jobMemoizable(req *JobRequest) bool {
	o := &req.Opts
	return !o.Manifest && !o.StreamTrace && o.Sink == nil && o.Sampler == nil &&
		o.HaltAfter == 0 && !o.Fault.Active() && o.Engine != "twin" &&
		req.Kind != KindFaultCampaign && req.Kind != KindSweep
}

// jobCacheKey is the whole-job cache key: the canonical JSON of the
// request with everything scrubbed that cannot change the result —
// tenant, scheduling (parallelism, shards, retries, timeouts),
// durability (checkpoints), transport (fabric) and cache plumbing
// itself. The engine name stays in the key, mirroring the per-cell
// discipline documented in internal/rcache.
func jobCacheKey(req *JobRequest) string {
	r := *req
	r.Tenant = ""
	r.IdempotencyKey = ""
	o := r.Opts
	o.Parallelism, o.Shards = 0, 0
	o.CheckpointDir, o.CheckpointEvery, o.Resume = "", 0, false
	o.Retries, o.CellTimeout = 0, 0
	o.CacheDir, o.Fabric = "", false
	o.Progress, o.Sink, o.Sampler, o.Cache, o.TwinPredictor = nil, nil, nil, nil, nil
	r.Opts = o
	b, err := json.Marshal(&r)
	if err != nil {
		return ""
	}
	return "job|v1|" + string(b)
}

// jobMemo is the gob payload of a memoized job: JobResult field by
// field, minus the kernel image — an in-process convenience, far too
// big to store, and not gob-encodable anyway (its backing store keeps
// its fields unexported).
type jobMemo struct {
	Run         *stats.Run
	HostLatency float64
	HostServed  int64
	Verdict     *fault.Verdict
	Manifest    *obs.Manifest
	Tables      []*experiments.Table
	Summary     *experiments.FaultSummary
}

func (s *Local) memoGet(key string) (*JobResult, bool) {
	if key == "" {
		return nil, false
	}
	blob, ok := s.cache.Get(key)
	if !ok {
		return nil, false
	}
	var m jobMemo
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&m); err != nil {
		return nil, false // undecodable = miss; the rerun heals the slot
	}
	return &JobResult{
		Run: m.Run, HostLatency: m.HostLatency, HostServed: m.HostServed,
		Verdict: m.Verdict, Manifest: m.Manifest,
		Tables: m.Tables, Summary: m.Summary,
	}, true
}

func (s *Local) memoPut(key string, res *JobResult) {
	if key == "" || res == nil {
		return
	}
	m := jobMemo{
		Run: res.Run, HostLatency: res.HostLatency, HostServed: res.HostServed,
		Verdict: res.Verdict, Manifest: res.Manifest,
		Tables: res.Tables, Summary: res.Summary,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&m); err != nil {
		return // the cache is an accelerator, not a correctness dependency
	}
	s.cache.Put(key, buf.Bytes())
}

// finishLocked moves a job to its terminal state, notifies watchers
// and closes their channels. Callers hold s.mu.
func (s *Local) finishLocked(j *job, res *JobResult, err error) {
	j.finished = time.Now()
	j.res, j.err = res, err
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(err, olerrors.ErrCanceled):
		j.state = StateCanceled
	default:
		j.state = StateFailed
	}
	s.broadcastLocked(j, WatchEvent{Type: "state", State: j.state, Error: WireError(err)})
	for _, ch := range j.watchers {
		close(ch)
	}
	j.watchers = nil
	close(j.doneCh)
}

// broadcastLocked delivers an event to every watcher without blocking:
// a full subscriber buffer drops the event (Watch documents the loss
// contract). Callers hold s.mu.
func (s *Local) broadcastLocked(j *job, ev WatchEvent) {
	for _, ch := range j.watchers {
		select {
		case ch <- ev:
		default:
		}
	}
}

// watchSink relays machine events into the job's watch stream.
type watchSink struct {
	s *Local
	j *job
}

func (w *watchSink) Emit(e obs.Event) {
	w.s.mu.Lock()
	w.s.broadcastLocked(w.j, WatchEvent{Type: "trace", Trace: &e})
	w.s.mu.Unlock()
}

func (w *watchSink) Drop(int64) {}

// lookup fetches a job by ID.
func (s *Local) lookup(id JobID) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("serve: %w %q", ErrUnknownJob, id)
	}
	return j, nil
}

// Status implements Service.
func (s *Local) Status(_ context.Context, id JobID) (JobStatus, error) {
	j, err := s.lookup(id)
	if err != nil {
		return JobStatus{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return JobStatus{
		ID: j.id, Kind: j.req.Kind, State: j.state, Tenant: j.req.Tenant,
		Done: j.done, Total: j.total,
		Error: WireError(j.err), Resumable: j.resumable,
		SubmittedAt: j.submitted, StartedAt: j.started, FinishedAt: j.finished,
	}, nil
}

// Result implements Service. In process it returns the job's original
// error object, so errors.Is classification is exact; the HTTP layer
// converts to JobError only at the boundary.
func (s *Local) Result(_ context.Context, id JobID) (*JobResult, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !j.state.Terminal() {
		return nil, fmt.Errorf("serve: %w: job %s is %s", ErrNotFinished, id, j.state)
	}
	if j.err != nil {
		return nil, j.err
	}
	return j.res, nil
}

// Cancel implements Service.
func (s *Local) Cancel(_ context.Context, id JobID) error {
	j, err := s.lookup(id)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case j.state.Terminal():
		// Idempotent: canceling a finished job changes nothing.
	case j.state == StateQueued:
		s.finishLocked(j, nil, fmt.Errorf("serve: %w: job canceled while queued", olerrors.ErrCanceled))
	default:
		j.cancel()
	}
	return nil
}

// Watch implements Service.
func (s *Local) Watch(ctx context.Context, id JobID) (<-chan WatchEvent, error) {
	j, err := s.lookup(id)
	if err != nil {
		return nil, err
	}
	ch := make(chan WatchEvent, 128)
	s.mu.Lock()
	// The snapshot event means a subscriber never has to race Status:
	// the stream itself says where the job is now.
	snap := WatchEvent{Type: "state", State: j.state, Done: j.done, Total: j.total, Error: WireError(j.err)}
	ch <- snap
	if j.state.Terminal() {
		close(ch)
		s.mu.Unlock()
		return ch, nil
	}
	j.watchers = append(j.watchers, ch)
	s.mu.Unlock()

	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				s.mu.Lock()
				for i, c := range j.watchers {
					if c == ch {
						j.watchers = append(j.watchers[:i], j.watchers[i+1:]...)
						close(ch)
						break
					}
				}
				s.mu.Unlock()
			case <-j.doneCh:
				// finishLocked already closed the channel.
			}
		}()
	}
	return ch, nil
}

// Forget drops a terminal job from the store. The in-process facade
// calls it after collecting a one-shot result so short-lived calls do
// not accumulate; a daemon keeps jobs until restart. Forgetting a
// non-terminal or unknown job is a no-op.
func (s *Local) Forget(id JobID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok && j.state.Terminal() {
		delete(s.jobs, id)
	}
}

// HealthInfo is the service's load snapshot, served by /healthz.
type HealthInfo struct {
	Status     string `json:"status"` // "ok" or "draining"
	Queued     int    `json:"queued"`
	Running    int    `json:"running"`
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	// Fabric reports whether this daemon coordinates a sweep fabric
	// (accepts fabric jobs and serves /v1/work leases).
	Fabric bool `json:"fabric,omitempty"`
	// CacheHits/CacheMisses are the shared result cache's counters;
	// both zero when the daemon runs uncached.
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
	// CacheDegraded reports the result cache has tripped its disk
	// breaker and now serves memory-only (see internal/rcache).
	CacheDegraded bool `json:"cache_degraded,omitempty"`
	// FabricWorkers is the coordinator's per-worker liveness view,
	// flapping workers first. Empty on non-fabric daemons.
	FabricWorkers []runner.WorkerStatus `json:"fabric_workers,omitempty"`
}

// Health reports the service's current load.
func (s *Local) Health() HealthInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := HealthInfo{Status: "ok", Workers: s.cfg.Workers, QueueDepth: s.cfg.QueueDepth, Fabric: s.board != nil}
	if s.draining {
		h.Status = "draining"
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		h.CacheHits, h.CacheMisses = cs.Hits, cs.Misses
		h.CacheDegraded = cs.Degraded
	}
	if s.board != nil {
		h.FabricWorkers = s.board.Workers()
	}
	for _, j := range s.jobs {
		switch j.state {
		case StateQueued:
			h.Queued++
		case StateRunning:
			h.Running++
		}
	}
	return h
}

// Drain gracefully shuts the service down: new submissions are
// refused, queued jobs are canceled without starting, and running jobs
// are preempted — their contexts cancel, the runner journals every
// completed cell and aborts the rest, and the jobs finish canceled and
// resumable (when they have a checkpoint directory). Drain returns
// when every worker has exited or ctx expires.
func (s *Local) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
		for _, j := range s.jobs {
			if j.state == StateRunning {
				j.cancel()
			}
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// Close drains with no deadline and releases the service's base
// context. It is the test-friendly teardown.
func (s *Local) Close() error {
	err := s.Drain(context.Background())
	s.baseCancel()
	return err
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"orderlight/internal/chaos"
	"orderlight/internal/olerrors"
)

// flakyHandler wraps a real daemon handler behind a gate that fails
// the first fails requests with an envelope-less plain-text 500 — the
// dying-proxy failure the client's retry loop exists for.
func flakyHandler(inner http.Handler, fails int) (http.Handler, *atomic.Int64) {
	var seen atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if seen.Add(1) <= int64(fails) {
			http.Error(w, "bad gateway fumes", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}), &seen
}

// With retry armed, envelope-less 5xx answers are retried until the
// daemon responds, and the whole submit/await path completes.
func TestClientRetryTransient500(t *testing.T) {
	svc := NewLocal(LocalConfig{})
	defer svc.Close()
	h, seen := flakyHandler(NewHandler(svc), 2)
	srv := httptest.NewServer(h)
	defer srv.Close()

	client := NewClient(srv.URL, srv.Client())
	client.EnableRetry(RetryPolicy{Attempts: 5, Base: time.Millisecond})
	ctx := context.Background()

	id, err := client.Submit(ctx, kernelReq("add"))
	if err != nil {
		t.Fatalf("Submit through flaky front end: %v", err)
	}
	res, err := Await(ctx, client, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run == nil || !res.Run.Correct {
		t.Fatalf("result = %+v", res)
	}
	if seen.Load() < 3 {
		t.Fatalf("server saw %d requests, want the 2 failures plus retries", seen.Load())
	}
}

// A 500 that carries a valid error envelope is the daemon speaking —
// a terminal job error, not a transport loss — and is never retried.
func TestClientEnvelopeErrorNotRetried(t *testing.T) {
	var seen atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen.Add(1)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: WireError(
			fmt.Errorf("serve: %w: job gone", olerrors.ErrCanceled))})
	}))
	defer srv.Close()

	client := NewClient(srv.URL, srv.Client())
	client.EnableRetry(RetryPolicy{Attempts: 5, Base: time.Millisecond})
	_, err := client.Status(context.Background(), "j1")
	if !errors.Is(err, olerrors.ErrCanceled) {
		t.Fatalf("err = %v, want the envelope's ErrCanceled", err)
	}
	if seen.Load() != 1 {
		t.Fatalf("enveloped error was retried: %d requests", seen.Load())
	}
}

// Retry gives up after Attempts tries and reports the last failure.
func TestClientRetryExhausted(t *testing.T) {
	var seen atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen.Add(1)
		http.Error(w, "still dead", http.StatusInternalServerError)
	}))
	defer srv.Close()

	client := NewClient(srv.URL, srv.Client())
	client.EnableRetry(RetryPolicy{Attempts: 3, Base: time.Millisecond})
	_, err := client.Status(context.Background(), "j1")
	if err == nil || !strings.Contains(err.Error(), "still dead") {
		t.Fatalf("err = %v", err)
	}
	if seen.Load() != 3 {
		t.Fatalf("server saw %d requests, want exactly Attempts=3", seen.Load())
	}
}

// A retry-armed client stamps submissions with a content-derived
// idempotency key, and injected duplicate deliveries (chaos ClassDup)
// land on one job.
func TestClientDupDeliveryCollapses(t *testing.T) {
	svc := NewLocal(LocalConfig{})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	spec, err := chaos.ParseSpec("dup=1.0")
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 7
	plan, err := chaos.NewPlan(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	hc := &http.Client{Transport: chaos.Transport(plan, nil)}
	client := NewClient(srv.URL, hc)
	client.EnableRetry(RetryPolicy{Attempts: 3, Base: time.Millisecond})
	ctx := context.Background()

	id, err := client.Submit(ctx, kernelReq("add"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Await(ctx, client, id, nil); err != nil {
		t.Fatal(err)
	}
	svc.mu.Lock()
	got := len(svc.jobs)
	svc.mu.Unlock()
	if got != 1 {
		t.Fatalf("duplicated submit created %d jobs, want 1", got)
	}
}

// Local collapses same-key submissions onto the live job, but a
// distinct key (or no key) always creates a fresh one.
func TestLocalIdempotentSubmit(t *testing.T) {
	svc := NewLocal(LocalConfig{Workers: 1})
	defer svc.Close()
	ctx := context.Background()

	req := kernelReq("add")
	req.IdempotencyKey = "idem-test1"
	id1, err := svc.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := svc.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if id1 != id2 {
		t.Fatalf("same-key submits produced %s and %s", id1, id2)
	}
	other := kernelReq("add")
	other.IdempotencyKey = "idem-test2"
	id3, err := svc.Submit(ctx, other)
	if err != nil {
		t.Fatal(err)
	}
	if id3 == id1 {
		t.Fatal("distinct keys collapsed onto one job")
	}
	if _, err := Await(ctx, svc, id1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Await(ctx, svc, id3, nil); err != nil {
		t.Fatal(err)
	}
	// The job is done but still tracked: a retried delivery of the
	// original submission must keep mapping to it.
	id4, err := svc.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if id4 != id1 {
		t.Fatalf("post-completion duplicate created new job %s, want %s", id4, id1)
	}
}

// unknownJobService fails the first Result/Watch cycle like a daemon
// that restarted and lost its job store, then delegates to a real
// Local — the scenario SubmitAndAwait exists for.
type unknownJobService struct {
	*Local
	forgets atomic.Int64
}

func (u *unknownJobService) Watch(ctx context.Context, id JobID) (<-chan WatchEvent, error) {
	if u.forgets.Load() > 0 {
		u.Local.Cancel(ctx, id)
		ch := make(chan WatchEvent)
		close(ch) // stream drops immediately: "daemon restarted"
		return ch, nil
	}
	return u.Local.Watch(ctx, id)
}

func (u *unknownJobService) Result(ctx context.Context, id JobID) (*JobResult, error) {
	if u.forgets.Add(-1) >= 0 {
		return nil, ErrUnknownJob
	}
	return u.Local.Result(ctx, id)
}

func TestSubmitAndAwaitResubmits(t *testing.T) {
	svc := &unknownJobService{Local: NewLocal(LocalConfig{})}
	defer svc.Close()
	svc.forgets.Store(1)
	res, err := SubmitAndAwait(context.Background(), svc, kernelReq("add"), nil)
	if err != nil {
		t.Fatalf("SubmitAndAwait across simulated restart: %v", err)
	}
	if res.Run == nil || !res.Run.Correct {
		t.Fatalf("result = %+v", res)
	}
}

// Worker poll jitter is reproducible and bounded to [poll/2, 3*poll/2].
func TestPollJitterDeterministicBounds(t *testing.T) {
	const poll = 250 * time.Millisecond
	var distinct int
	for n := uint64(0); n < 64; n++ {
		d := pollJitter("w1", n, poll)
		if d < poll/2 || d > poll*3/2 {
			t.Fatalf("pollJitter(w1, %d) = %v outside [%v, %v]", n, d, poll/2, poll*3/2)
		}
		if d != pollJitter("w1", n, poll) {
			t.Fatalf("pollJitter(w1, %d) not deterministic", n)
		}
		if d != pollJitter("w2", n, poll) {
			distinct++
		}
	}
	if distinct == 0 {
		t.Fatal("two workers share an identical poll schedule — no decorrelation")
	}
}

// The heartbeat route round-trips: a held lease answers true, a
// vanished one false.
func TestHeartbeatOverHTTP(t *testing.T) {
	svc := NewLocal(LocalConfig{Fabric: true, FabricChunk: 2})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	client := NewClient(srv.URL, nil)
	ctx := context.Background()

	if _, err := client.Submit(ctx, fabricReq()); err != nil {
		t.Fatal(err)
	}
	var lease *WorkHeartbeat
	for lease == nil {
		l, err := client.LeaseWork(ctx, "w1")
		if err != nil {
			t.Fatal(err)
		}
		if l != nil {
			lease = &WorkHeartbeat{Job: l.Job, Lease: l.ID, Worker: "w1"}
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if held, err := client.HeartbeatWork(ctx, *lease); err != nil || !held {
		t.Fatalf("heartbeat on held lease = %v, %v", held, err)
	}
	if held, err := client.HeartbeatWork(ctx, WorkHeartbeat{Job: lease.Job, Lease: "l999999", Worker: "w1"}); err != nil || held {
		t.Fatalf("heartbeat on unknown lease = %v, %v", held, err)
	}
}

// The full coordinator-crash story in process: a fabric job is
// half-done when the coordinator dies (abandoned, never Closed — a
// SIGKILL runs no cleanup); a fresh coordinator on the same journal
// accepts the resubmission, hands out only the unfinished ranges, and
// the assembled result is byte-identical to a local run.
func TestFabricCoordinatorRestartResume(t *testing.T) {
	ctx := context.Background()
	ref := localReq()
	want, err := Execute(ctx, &ref)
	if err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(t.TempDir(), "board.journal")
	svc1 := NewLocal(LocalConfig{Fabric: true, FabricChunk: 2, FabricJournal: journal})
	if _, err := svc1.Submit(ctx, fabricReq()); err != nil {
		t.Fatal(err)
	}
	// One worker completes exactly one lease, then the coordinator "dies".
	var first *WorkHeartbeat
	for first == nil {
		l, err := svc1.LeaseWork(ctx, "w1")
		if err != nil {
			t.Fatal(err)
		}
		if l == nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		outs := executeLeasedRange(ctx, l, WorkerOptions{Name: "w1"})
		if err := svc1.CompleteWork(ctx, WorkCompletion{Job: l.Job, Lease: l.ID, Worker: "w1", Outcomes: outs}); err != nil {
			t.Fatal(err)
		}
		first = &WorkHeartbeat{Job: l.Job, Lease: l.ID}
	}

	svc2 := NewLocal(LocalConfig{Fabric: true, FabricChunk: 2, FabricJournal: journal})
	defer svc2.Close()
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	var leasedLo atomic.Int64
	leasedLo.Store(-1)
	go func() {
		for wctx.Err() == nil {
			l, err := svc2.LeaseWork(wctx, "w2")
			if err != nil || l == nil {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			if int64(l.Lo) < leasedLo.Load() || leasedLo.Load() < 0 {
				leasedLo.Store(int64(l.Lo))
			}
			outs := executeLeasedRange(wctx, l, WorkerOptions{Name: "w2"})
			_ = svc2.CompleteWork(wctx, WorkCompletion{Job: l.Job, Lease: l.ID, Worker: "w2", Outcomes: outs})
		}
	}()

	got, err := SubmitAndAwait(ctx, svc2, fabricReq(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tables) != 1 || got.Tables[0].Markdown() != want.Tables[0].Markdown() {
		t.Fatalf("post-restart fabric table differs from local:\n--- local ---\n%s\n--- fabric ---\n%s",
			want.Tables[0].Markdown(), got.Tables[0].Markdown())
	}
	if lo := leasedLo.Load(); lo < 2 {
		t.Fatalf("restarted coordinator re-leased range starting at %d — replayed chunk [0,2) was re-run", lo)
	}
}

package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"orderlight/internal/olerrors"
	"orderlight/internal/stats"
)

// newFakeServer wires a Fake behind the real handler and returns a
// Client speaking real HTTP to it.
func newFakeServer(t *testing.T) (*Fake, *Client) {
	t.Helper()
	fake := NewFake()
	srv := httptest.NewServer(NewHandler(fake))
	t.Cleanup(srv.Close)
	return fake, NewClient(srv.URL, srv.Client())
}

func TestHandlerSubmitStatusResult(t *testing.T) {
	fake, client := newFakeServer(t)
	ctx := context.Background()

	id, err := client.Submit(ctx, kernelReq("add"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := client.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateQueued || st.Kind != KindKernel {
		t.Fatalf("status = %+v", st)
	}
	if len(fake.Submitted) != 1 || fake.Submitted[0].Kernel != "add" {
		t.Fatalf("daemon saw %+v", fake.Submitted)
	}

	fake.Start(id)
	fake.Progress(id, 1, 1)
	fake.Finish(id, &JobResult{Run: &stats.Run{Correct: true}}, nil)

	res, err := client.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run == nil || !res.Run.Correct {
		t.Fatalf("result = %+v", res)
	}
}

func TestHandlerAdmission429And503(t *testing.T) {
	fake, client := newFakeServer(t)
	ctx := context.Background()

	// errors.Is round-trips through the wire envelope.
	for _, tc := range []struct {
		scripted error
		status   int
		retry    bool
	}{
		{ErrQueueFull, http.StatusTooManyRequests, true},
		{ErrQuotaExceeded, http.StatusTooManyRequests, true},
		{ErrDraining, http.StatusServiceUnavailable, true},
	} {
		fake.ScriptSubmitError(tc.scripted)
		if _, err := client.Submit(ctx, kernelReq("add")); !errors.Is(err, tc.scripted) {
			t.Fatalf("Submit = %v, want %v", err, tc.scripted)
		}

		// The raw response carries the status code and Retry-After the
		// protocol promises.
		body, _ := json.Marshal(kernelReq("add"))
		resp, err := http.Post(client.base+"/v1/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%v: status = %d, want %d", tc.scripted, resp.StatusCode, tc.status)
		}
		if tc.retry && resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%v: no Retry-After header", tc.scripted)
		}
	}
	fake.ScriptSubmitError(nil)
}

func TestHandlerErrorRoundTrips(t *testing.T) {
	fake, client := newFakeServer(t)
	ctx := context.Background()

	// Unknown job: 404, ErrUnknownJob.
	if _, err := client.Status(ctx, "job-nope"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Status(unknown) = %v, want ErrUnknownJob", err)
	}
	// Premature result: 409, ErrNotFinished.
	id, err := client.Submit(ctx, kernelReq("add"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Result(ctx, id); !errors.Is(err, ErrNotFinished) {
		t.Fatalf("Result(queued) = %v, want ErrNotFinished", err)
	}
	// Validation: 400, sentinel preserved.
	if _, err := client.Submit(ctx, kernelReq("not-a-kernel")); !errors.Is(err, olerrors.ErrUnknownKernel) {
		t.Fatalf("Submit(bad kernel) = %v, want ErrUnknownKernel", err)
	}
	// A failed job's sentinel crosses the wire: the daemon classified a
	// watchdog kill, the client re-arms the same sentinel.
	fake.Start(id)
	fake.Finish(id, nil, fmt.Errorf("runner: cell add: %w after 5ms", olerrors.ErrCellTimeout))
	if _, err := client.Result(ctx, id); !errors.Is(err, olerrors.ErrCellTimeout) {
		t.Fatalf("Result(failed) = %v, want ErrCellTimeout", err)
	}
	st, err := client.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.Error == nil || st.Error.Code != "cell-timeout" {
		t.Fatalf("failed status = %+v", st)
	}
}

func TestHandlerCancelMidRun(t *testing.T) {
	fake, client := newFakeServer(t)
	ctx := context.Background()

	id, err := client.Submit(ctx, kernelReq("add"))
	if err != nil {
		t.Fatal(err)
	}
	fake.Start(id)
	if err := client.Cancel(ctx, id); err != nil {
		t.Fatal(err)
	}
	st, err := client.Status(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("state after cancel = %v", st.State)
	}
	if _, err := client.Result(ctx, id); !errors.Is(err, olerrors.ErrCanceled) {
		t.Fatalf("Result(canceled) = %v, want ErrCanceled", err)
	}
}

func TestHandlerWatchStreamTerminates(t *testing.T) {
	fake, client := newFakeServer(t)
	ctx := context.Background()

	id, err := client.Submit(ctx, kernelReq("add"))
	if err != nil {
		t.Fatal(err)
	}
	events, err := client.Watch(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		fake.Start(id)
		fake.Progress(id, 1, 2)
		fake.Progress(id, 2, 2)
		fake.Finish(id, &JobResult{Run: &stats.Run{Correct: true}}, nil)
	}()

	var last WatchEvent
	var sawProgress bool
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				if !last.Terminal() || last.State != StateDone {
					t.Fatalf("stream ended on %+v, want terminal done", last)
				}
				if !sawProgress {
					t.Fatal("stream carried no progress events")
				}
				return
			}
			if ev.Type == "progress" {
				sawProgress = true
			}
			last = ev
		case <-deadline:
			t.Fatal("watch stream did not terminate")
		}
	}
}

func TestHandlerAutoFakeAwait(t *testing.T) {
	fake := NewFake()
	fake.AutoResult = &JobResult{Run: &stats.Run{Correct: true}}
	fake.AutoLatency = 10 * time.Millisecond
	srv := httptest.NewServer(NewHandler(fake))
	defer srv.Close()
	client := NewClient(srv.URL, srv.Client())

	ctx := context.Background()
	id, err := client.Submit(ctx, kernelReq("add"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Await(ctx, client, id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run == nil || !res.Run.Correct {
		t.Fatalf("awaited result = %+v", res)
	}
}

func TestHandlerHealthzAndVersion(t *testing.T) {
	svc := NewLocal(LocalConfig{Workers: 2, QueueDepth: 5})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	client := NewClient(srv.URL, srv.Client())

	ctx := context.Background()
	h, err := client.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 2 || h.QueueDepth != 5 {
		t.Fatalf("healthz = %+v", h)
	}
	v, err := client.ServerVersion(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.API != Version || v.GoVersion == "" {
		t.Fatalf("version = %+v", v)
	}
}

func TestHandlerMalformedBody(t *testing.T) {
	_, client := newFakeServer(t)
	resp, err := http.Post(client.base+"/v1/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d, want 400", resp.StatusCode)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == nil || eb.Error.Code != "invalid-spec" {
		t.Fatalf("malformed body envelope = %+v (err %v)", eb, err)
	}
}

package serve

import (
	"errors"
	"strings"
	"testing"

	"orderlight/internal/olerrors"
)

// TestValidateEngine pins engine-field validation on the job wire
// format: unknown engine names are rejected at admission (never mapped
// to a default engine), conflicting selections are rejected, and the
// shard override demands the parallel engine.
func TestValidateEngine(t *testing.T) {
	cases := []struct {
		name string
		opts RunOpts
		want string // "" accepts; otherwise a required substring of the error
	}{
		{"default", RunOpts{}, ""},
		{"skip", RunOpts{Engine: "skip"}, ""},
		{"dense", RunOpts{Engine: "dense"}, ""},
		{"parallel", RunOpts{Engine: "parallel"}, ""},
		{"parallel with shards", RunOpts{Engine: "parallel", Shards: 4}, ""},
		{"dense flag", RunOpts{Dense: true}, ""},
		{"dense flag with dense engine", RunOpts{Dense: true, Engine: "dense"}, ""},
		{"unknown engine", RunOpts{Engine: "turbo"}, `unknown engine "turbo"`},
		{"misspelled engine", RunOpts{Engine: "Skip"}, `unknown engine "Skip"`},
		{"dense flag vs skip engine", RunOpts{Dense: true, Engine: "skip"}, "conflicts with engine"},
		{"dense flag vs parallel engine", RunOpts{Dense: true, Engine: "parallel"}, "conflicts with engine"},
		{"negative shards", RunOpts{Engine: "parallel", Shards: -1}, "negative"},
		{"shards without parallel", RunOpts{Shards: 4}, "needs the parallel engine"},
		{"shards on dense", RunOpts{Engine: "dense", Shards: 4}, "needs the parallel engine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := JobRequest{Kind: KindKernel, Kernel: "add", Opts: tc.opts}
			err := req.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want accept", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() accepted, want error containing %q", tc.want)
			}
			if !errors.Is(err, olerrors.ErrInvalidSpec) {
				t.Errorf("error %v is not classified as ErrInvalidSpec", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

package serve

import (
	"context"
	"net/http/httptest"
	"testing"
)

// TestDaemonByteIdentity is the tentpole guarantee end to end: a
// figure regenerated through real HTTP — JSON request in, JSON tables
// out — renders byte-identically to one computed in process, because
// both funnel through the same Execute path.
func TestDaemonByteIdentity(t *testing.T) {
	svc := NewLocal(LocalConfig{Workers: 2})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	req := JobRequest{Kind: KindExperiment, Experiment: "fig5", Config: testConfig()}
	id, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Await(ctx, client, id, nil)
	if err != nil {
		t.Fatal(err)
	}

	direct, err := Execute(ctx, &JobRequest{Kind: KindExperiment, Experiment: "fig5", Config: testConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Tables[0].Markdown(), direct.Tables[0].Markdown(); got != want {
		t.Fatalf("daemon table differs from in-process table:\n--- daemon ---\n%s\n--- direct ---\n%s", got, want)
	}
	if got, want := res.Tables[0].CSV(), direct.Tables[0].CSV(); got != want {
		t.Fatalf("daemon CSV differs from in-process CSV:\n%s\nvs\n%s", got, want)
	}
}

// TestDaemonKernelRoundTrip checks the single-cell result survives the
// JSON round trip with its full report intact.
func TestDaemonKernelRoundTrip(t *testing.T) {
	svc := NewLocal(LocalConfig{})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	id, err := client.Submit(ctx, kernelReq("add"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Await(ctx, client, id, nil)
	if err != nil {
		t.Fatal(err)
	}

	direct, err := Execute(ctx, func() *JobRequest { r := kernelReq("add"); return &r }())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Run.String(), direct.Run.String(); got != want {
		t.Fatalf("daemon run report differs:\n%s\nvs\n%s", got, want)
	}
	if res.HostLatency != direct.HostLatency || res.HostServed != direct.HostServed {
		t.Fatalf("host counters differ: %v/%v vs %v/%v",
			res.HostLatency, res.HostServed, direct.HostLatency, direct.HostServed)
	}
}

// TestDaemonStreamTrace checks single-cell trace streaming over SSE:
// trace events arrive interleaved with progress and the stream still
// terminates cleanly.
func TestDaemonStreamTrace(t *testing.T) {
	svc := NewLocal(LocalConfig{})
	defer svc.Close()
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	client := NewClient(srv.URL, srv.Client())
	ctx := context.Background()

	// Hold the single worker with an in-process blocker so the SSE
	// watcher is attached before the traced job starts — intermediate
	// events are lossy by contract, so the subscription must win the
	// race deterministically.
	gate := make(chan struct{})
	started := make(chan struct{})
	blocker := kernelReq("add")
	blocker.Opts.Progress = func(done, total int) {
		select {
		case <-started:
		default:
			close(started)
		}
		<-gate
	}
	idB, err := svc.Submit(ctx, blocker)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	req := kernelReq("add")
	req.Opts.StreamTrace = true
	id, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	// client.Watch returns once the daemon has registered the watcher
	// (the SSE response headers are flushed after subscription).
	events, err := client.Watch(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	close(gate)

	var traces int
	for ev := range events {
		if ev.Type == "trace" && ev.Trace != nil {
			traces++
		}
	}
	res, err := client.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run == nil || !res.Run.Correct {
		t.Fatalf("traced run result = %+v", res)
	}
	if traces == 0 {
		t.Fatal("no trace events crossed the wire")
	}
	if _, err := Await(ctx, svc, idB, nil); err != nil {
		t.Fatal(err)
	}
}

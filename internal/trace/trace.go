// Package trace records the journey of individual requests through the
// memory pipe of Figure 6: when each request enters the interconnect,
// reaches its L2 slice, enters the L2-to-DRAM path, is accepted by the
// memory controller, and finally issues to the DRAM device. The trace
// is a bounded ring buffer, cheap enough to leave armed during ordinary
// runs, and renders either as a raw event log or as a per-request
// lifecycle table (used by cmd/oltrace).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"orderlight/internal/isa"
	"orderlight/internal/sim"
)

// Stage identifies a measurement point in the memory pipe.
type Stage uint8

const (
	// StageInject is the request entering the interconnect at the SM.
	StageInject Stage = iota
	// StageL2 is arrival at the L2 slice (after the interconnect pipe).
	StageL2
	// StageToDRAM is entry into the L2-to-DRAM path (after the slice's
	// sub-partition queues, i.e. after any copy-and-merge).
	StageToDRAM
	// StageMC is acceptance into the memory controller's queues.
	StageMC
	// StageDevice is the column command (or exec slot) issuing to the
	// DRAM device — the completion point for PIM commands.
	StageDevice

	numStages
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	names := [...]string{"inject", "l2", "to-dram", "mc", "device"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("Stage(%d)", uint8(s))
}

// Event is one stage crossing.
type Event struct {
	At      sim.Time
	Stage   Stage
	Channel int
	Req     isa.Request
}

// Tracer is a bounded ring buffer of events. The zero Tracer is not
// usable; create one with New. Not safe for concurrent use (the
// simulator is single-threaded).
type Tracer struct {
	ring    []Event
	next    int
	wrapped bool
	total   int64
}

// New creates a tracer retaining the most recent max events.
func New(max int) *Tracer {
	if max <= 0 {
		max = 1
	}
	return &Tracer{ring: make([]Event, 0, max)}
}

// Record appends an event.
func (t *Tracer) Record(at sim.Time, stage Stage, r isa.Request) {
	t.total++
	ev := Event{At: at, Stage: stage, Channel: r.Channel, Req: r}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
		return
	}
	t.ring[t.next] = ev
	t.next = (t.next + 1) % cap(t.ring)
	t.wrapped = true
}

// Total returns how many events were recorded over the tracer's life
// (including any that fell out of the ring).
func (t *Tracer) Total() int64 { return t.total }

// Dropped returns how many recorded events have fallen out of the ring
// buffer. A nonzero count means renders from this tracer are truncated
// (the oldest events are gone) and callers should say so.
func (t *Tracer) Dropped() int64 { return t.total - int64(len(t.ring)) }

// Events returns the retained events in chronological order.
func (t *Tracer) Events() []Event {
	if !t.wrapped {
		out := make([]Event, len(t.ring))
		copy(out, t.ring)
		return out
	}
	out := make([]Event, 0, cap(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Lifecycle is the per-request stage timeline assembled from a trace.
type Lifecycle struct {
	Req    isa.Request
	Stamps [numStages]sim.Time // 0 = not observed; index by Stage
}

// Latency returns the inject-to-device latency, or 0 if either endpoint
// was not observed.
func (l Lifecycle) Latency() sim.Time {
	if l.Stamps[StageInject] == 0 || l.Stamps[StageDevice] == 0 {
		return 0
	}
	return l.Stamps[StageDevice] - l.Stamps[StageInject]
}

// Lifecycles groups the retained events by request ID, ordered by
// injection time. Requests with no retained inject event are dropped.
func (t *Tracer) Lifecycles() []Lifecycle {
	byID := map[uint64]*Lifecycle{}
	for _, ev := range t.Events() {
		lc, ok := byID[ev.Req.ID]
		if !ok {
			lc = &Lifecycle{Req: ev.Req}
			byID[ev.Req.ID] = lc
		}
		lc.Stamps[ev.Stage] = ev.At
	}
	out := make([]Lifecycle, 0, len(byID))
	for _, lc := range byID {
		if lc.Stamps[StageInject] != 0 {
			out = append(out, *lc)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Stamps[StageInject] < out[j].Stamps[StageInject]
	})
	return out
}

// Timeline renders up to limit request lifecycles as an aligned table
// with stage times in core cycles relative to the first injection.
func (t *Tracer) Timeline(limit int) string {
	lcs := t.Lifecycles()
	if len(lcs) == 0 {
		return "(no traced requests)\n"
	}
	base := lcs[0].Stamps[StageInject]
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %8s %8s %8s %8s %8s %9s\n",
		"request", "inject", "l2", "to-dram", "mc", "device", "latency")
	cyc := func(t sim.Time) string {
		if t == 0 {
			return "-"
		}
		return fmt.Sprintf("%d", (t - base).CoreCycles())
	}
	for i, lc := range lcs {
		if i >= limit {
			fmt.Fprintf(&b, "... (%d more)\n", len(lcs)-limit)
			break
		}
		name := fmt.Sprintf("#%d %v ch%d g%d", lc.Req.ID, lc.Req.Kind, lc.Req.Channel, lc.Req.Group)
		fmt.Fprintf(&b, "%-28s %8s %8s %8s %8s %8s %8dc\n",
			name, cyc(lc.Stamps[StageInject]), cyc(lc.Stamps[StageL2]),
			cyc(lc.Stamps[StageToDRAM]), cyc(lc.Stamps[StageMC]),
			cyc(lc.Stamps[StageDevice]), lc.Latency().CoreCycles())
	}
	return b.String()
}

package trace

import (
	"strings"
	"testing"

	"orderlight/internal/isa"
	"orderlight/internal/sim"
)

// TestDropped checks the ring declares its own truncation: once more
// events are recorded than the ring holds, Dropped reports exactly how
// many fell out.
func TestDropped(t *testing.T) {
	tr := New(4)
	if tr.Dropped() != 0 {
		t.Fatalf("fresh tracer Dropped() = %d, want 0", tr.Dropped())
	}
	for i := 0; i < 10; i++ {
		tr.Record(sim.Time(i+1)*sim.CoreTicks, StageInject, isa.Request{ID: uint64(i + 1)})
	}
	if tr.Total() != 10 {
		t.Errorf("Total() = %d, want 10", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped() = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	// The survivors must be the newest four, in order.
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Req.ID != want {
			t.Errorf("event %d: request #%d, want #%d", i, ev.Req.ID, want)
		}
	}
}

// TestTimelineUnderWrap checks a wrapped ring still renders (requests
// whose inject event was lost are silently omitted from the table — the
// caller reports the drop count via Dropped).
func TestTimelineUnderWrap(t *testing.T) {
	tr := New(3)
	for i := 0; i < 6; i++ {
		tr.Record(sim.Time(i+1)*sim.CoreTicks, StageInject, isa.Request{ID: uint64(i + 1)})
	}
	out := tr.Timeline(10)
	if !strings.Contains(out, "#4 ") || strings.Contains(out, "#1 ") {
		t.Errorf("wrapped timeline should show only retained requests:\n%s", out)
	}
	if tr.Dropped() != 3 {
		t.Errorf("Dropped() = %d, want 3", tr.Dropped())
	}
}

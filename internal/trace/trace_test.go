package trace

import (
	"strings"
	"testing"

	"orderlight/internal/isa"
	"orderlight/internal/sim"
)

func req(id uint64) isa.Request {
	return isa.Request{ID: id, Kind: isa.KindPIMLoad, Channel: 1, Group: 0}
}

func TestTracerRingRetention(t *testing.T) {
	tr := New(3)
	for i := 1; i <= 5; i++ {
		tr.Record(sim.Time(i*100), StageInject, req(uint64(i)))
	}
	if tr.Total() != 5 {
		t.Fatalf("Total = %d, want 5", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	// Chronological order, the most recent three.
	if evs[0].Req.ID != 3 || evs[2].Req.ID != 5 {
		t.Fatalf("events = %v..%v, want 3..5", evs[0].Req.ID, evs[2].Req.ID)
	}
	if evs[0].At > evs[1].At || evs[1].At > evs[2].At {
		t.Fatal("events not chronological")
	}
}

func TestTracerZeroMaxClamps(t *testing.T) {
	tr := New(0)
	tr.Record(1, StageInject, req(1))
	tr.Record(2, StageInject, req(2))
	if len(tr.Events()) != 1 {
		t.Fatal("zero-max tracer should clamp to one retained event")
	}
}

func TestLifecycleAssembly(t *testing.T) {
	tr := New(64)
	stages := []Stage{StageInject, StageL2, StageToDRAM, StageMC, StageDevice}
	// Request 7 crosses every stage; request 8 only injects.
	for i, s := range stages {
		tr.Record(sim.Time(100+i*50), s, req(7))
	}
	tr.Record(sim.Time(120), StageInject, req(8))
	// An orphan MC event (inject fell out of the window) is dropped.
	tr.Record(sim.Time(10), StageMC, req(9))

	lcs := tr.Lifecycles()
	if len(lcs) != 2 {
		t.Fatalf("lifecycles = %d, want 2", len(lcs))
	}
	if lcs[0].Req.ID != 7 || lcs[1].Req.ID != 8 {
		t.Fatalf("order = [%d %d], want injection order [7 8]", lcs[0].Req.ID, lcs[1].Req.ID)
	}
	if got := lcs[0].Latency(); got != 200 {
		t.Fatalf("latency = %d, want 200", got)
	}
	if lcs[1].Latency() != 0 {
		t.Fatal("request without device stamp should report zero latency")
	}
}

func TestLifecycleStampsMonotonic(t *testing.T) {
	tr := New(64)
	for i, s := range []Stage{StageInject, StageL2, StageToDRAM, StageMC, StageDevice} {
		tr.Record(sim.Time(17*(i+1)), s, req(1))
	}
	lc := tr.Lifecycles()[0]
	for s := StageInject; s < StageDevice; s++ {
		if lc.Stamps[s] >= lc.Stamps[s+1] {
			t.Fatalf("stage %v stamp %d not before %v stamp %d", s, lc.Stamps[s], s+1, lc.Stamps[s+1])
		}
	}
}

func TestTimelineRendering(t *testing.T) {
	tr := New(64)
	for i, s := range []Stage{StageInject, StageL2, StageToDRAM, StageMC, StageDevice} {
		tr.Record(sim.Time(17*(i*10+1)), s, req(42))
	}
	out := tr.Timeline(10)
	for _, want := range []string{"#42", "PIM_Load", "device", "latency"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if got := New(4).Timeline(10); !strings.Contains(got, "no traced requests") {
		t.Errorf("empty timeline = %q", got)
	}
}

func TestTimelineLimit(t *testing.T) {
	tr := New(64)
	for i := 1; i <= 5; i++ {
		tr.Record(sim.Time(i*17), StageInject, req(uint64(i)))
	}
	out := tr.Timeline(2)
	if !strings.Contains(out, "3 more") {
		t.Errorf("limit note missing:\n%s", out)
	}
}

func TestStageString(t *testing.T) {
	if StageInject.String() != "inject" || StageDevice.String() != "device" {
		t.Error("Stage.String mismatch")
	}
	if !strings.HasPrefix(Stage(99).String(), "Stage(") {
		t.Error("unknown stage should render as Stage(n)")
	}
}

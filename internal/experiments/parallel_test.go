package experiments

import (
	"context"
	"errors"
	"testing"
	"time"

	"orderlight/internal/olerrors"
	"orderlight/internal/runner"
)

// TestParallelMatchesSequential is the engine's core guarantee: for
// every experiment, a parallel sweep renders byte-identical markdown to
// a sequential (parallelism 1) sweep.
func TestParallelMatchesSequential(t *testing.T) {
	cfg := tinyConfig()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			seq, err := RunEngine(context.Background(), runner.New(runner.Options{Parallelism: 1}), id, cfg, tinyScale)
			if err != nil {
				t.Fatal(err)
			}
			par, err := RunEngine(context.Background(), runner.New(runner.Options{Parallelism: 8}), id, cfg, tinyScale)
			if err != nil {
				t.Fatal(err)
			}
			if seq.Markdown() != par.Markdown() {
				t.Errorf("parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
					seq.Markdown(), par.Markdown())
			}
		})
	}
}

// TestRunAllMatchesPerExperiment checks the flattened whole-suite sweep
// (shared pool and kernel cache across experiment boundaries) renders
// the same tables as running each experiment on its own.
func TestRunAllMatchesPerExperiment(t *testing.T) {
	cfg := tinyConfig()
	all, err := RunAllEngine(context.Background(), runner.New(runner.Options{Parallelism: 8}), cfg, tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	ids := IDs()
	if len(all) != len(ids) {
		t.Fatalf("RunAll returned %d tables, want %d", len(all), len(ids))
	}
	for i, id := range ids {
		one, err := Run(id, cfg, tinyScale)
		if err != nil {
			t.Fatal(err)
		}
		if all[i].Markdown() != one.Markdown() {
			t.Errorf("%s: whole-suite table differs from standalone run", id)
		}
	}
}

// TestRunAllCancellation cancels a sweep after the first completed cell
// and expects a prompt ErrCanceled.
func TestRunAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := runner.New(runner.Options{Parallelism: 1, Progress: func(done, total int) {
		if done == 1 {
			cancel()
		}
	}})
	done := make(chan error, 1)
	go func() {
		_, err := RunAllEngine(ctx, eng, tinyConfig(), tinyScale)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, olerrors.ErrCanceled) {
			t.Fatalf("canceled sweep returned %v, want ErrCanceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("canceled sweep did not return promptly")
	}
}

// TestCellKeysNamespaced checks every declared cell carries its
// experiment's ID prefix, so sweep errors name their origin.
func TestCellKeysNamespaced(t *testing.T) {
	cfg := tinyConfig()
	for _, id := range IDs() {
		cells, err := Cells(id, cfg, tinyScale)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cells {
			if len(c.Key) < len(id)+1 || c.Key[:len(id)+1] != id+"/" {
				t.Errorf("%s: cell key %q lacks experiment prefix", id, c.Key)
			}
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	_, err := Run("bogus", tinyConfig(), tinyScale)
	if !errors.Is(err, olerrors.ErrUnknownExperiment) {
		t.Fatalf("unknown experiment returned %v, want ErrUnknownExperiment", err)
	}
	if _, err := Cells("bogus", tinyConfig(), tinyScale); !errors.Is(err, olerrors.ErrUnknownExperiment) {
		t.Fatalf("Cells on unknown experiment returned %v", err)
	}
}

package experiments

import (
	"strconv"
	"strings"
	"testing"

	"orderlight/internal/config"
)

// tinyScale keeps experiment tests fast.
var tinyScale = Scale{BytesPerChannel: 16 * 1024}

// tinyConfig shrinks the machine to 4 channels for test speed while
// keeping the full pipe structure.
func tinyConfig() config.Config {
	cfg := config.Default()
	cfg.Memory.Channels = 4
	cfg.GPU.PIMSMs = 2
	cfg.Run.DeadlineMS = 50
	return cfg
}

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q is not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestIDsStable(t *testing.T) {
	ids := IDs()
	if len(ids) != 23 {
		t.Fatalf("IDs() = %v, want 23 experiments", ids)
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
	if _, err := Run("bogus", tinyConfig(), tinyScale); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable1(t *testing.T) {
	tab, err := Run("table1", tinyConfig(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	md := tab.Markdown()
	if !strings.Contains(md, "FRFCFS") || !strings.Contains(md, "850 MHz") {
		t.Fatalf("Table 1 markdown missing expected entries:\n%s", md)
	}
}

func TestTable2(t *testing.T) {
	tab, err := Run("table2", tinyConfig(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("Table 2 has %d rows, want 12", len(tab.Rows))
	}
	csv := tab.CSV()
	if !strings.Contains(csv, "gen_fil") || !strings.Contains(csv, "10:1") {
		t.Fatalf("Table 2 CSV missing entries:\n%s", csv)
	}
}

func TestFig5Shape(t *testing.T) {
	tab, err := Fig5(tinyConfig(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("Fig5 rows = %d, want 5 (no-fence + 4 TS)", len(tab.Rows))
	}
	// Row 0: no fence — fast but incorrect.
	if tab.Rows[0][3] != "false" {
		t.Error("no-fence run should be functionally incorrect")
	}
	noneMS := cell(t, tab, 0, 1)
	for r := 1; r <= 4; r++ {
		if tab.Rows[r][3] != "true" {
			t.Errorf("fence run %s incorrect", tab.Rows[r][0])
		}
		if ms := cell(t, tab, r, 1); ms <= noneMS {
			t.Errorf("fence at %s not slower than no-fence (%v <= %v)", tab.Rows[r][0], ms, noneMS)
		}
		if w := cell(t, tab, r, 2); w < 50 {
			t.Errorf("wait cycles/fence at %s = %v, implausibly low", tab.Rows[r][0], w)
		}
	}
	// Fence overhead shrinks with larger TS (fewer fences).
	if !(cell(t, tab, 1, 1) > cell(t, tab, 4, 1)) {
		t.Error("fence time should fall as TS grows")
	}
}

func TestFig11Shape(t *testing.T) {
	tab, err := Fig11(tinyConfig(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r[1]
	}
	if byName["row cycle (mem cycles)"] != "44" {
		t.Fatalf("row cycle = %s, want 44", byName["row cycle (mem cycles)"])
	}
	frac, err := strconv.ParseFloat(byName["measured / analytic peak"], 64)
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.80 || frac > 1.02 {
		t.Fatalf("measured/peak = %.2f, want OrderLight close to the DRAM-timing bound", frac)
	}
}

func TestFig13Shape(t *testing.T) {
	tab, err := Fig13(tinyConfig(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("Fig13 rows = %d, want 12 (3 BMF x 4 TS)", len(tab.Rows))
	}
	for i, r := range tab.Rows {
		ratio := cell(t, tab, i, 5)
		if ratio < 1.0 {
			t.Errorf("row %v: OrderLight slower than fence (ratio %.2f)", r[:2], ratio)
		}
	}
	// Lower BMF means more commands for the same data, so the fence
	// burden grows: OL/fence ratio at BMF 4 should exceed BMF 16 at the
	// same (small) TS.
	if !(cell(t, tab, 0, 5) > cell(t, tab, 8, 5)*0.9) {
		t.Error("fence burden did not grow at lower BMF")
	}
}

func TestAblationSubPartitions(t *testing.T) {
	tab, err := AblationSubPartitions(tinyConfig(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	base := cell(t, tab, 0, 1)
	for i, r := range tab.Rows {
		if r[3] != "true" {
			t.Errorf("sub-partition config %s incorrect", r[0])
		}
		if ms := cell(t, tab, i, 1); ms > base*1.25 {
			t.Errorf("OL time at %s sub-partitions = %v, want flat (~%v)", r[0], ms, base)
		}
	}
}

func TestAblationHostConcurrency(t *testing.T) {
	tab, err := AblationHostConcurrency(tinyConfig(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	served := cell(t, tab, 1, 3)
	if served != 4*64 {
		t.Fatalf("served = %v host loads, want 256", served)
	}
	// Host traffic in another group must see lower latency than traffic
	// conservatively ordered inside the PIM group.
	other, same := cell(t, tab, 1, 2), cell(t, tab, 2, 2)
	if !(other < same) {
		t.Errorf("other-group latency %.0f should beat PIM-group latency %.0f", other, same)
	}
}

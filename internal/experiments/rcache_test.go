package experiments

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/rcache"
	"orderlight/internal/runner"
)

var cacheTestScale = Scale{BytesPerChannel: 16 << 10}

// renderAll is the results_all.md shape for one experiment: table +
// manifests, the exact bytes `make results` commits.
func renderAll(t *Table) string {
	return t.Markdown() + t.ManifestMarkdown()
}

// TestWarmCacheRerunExecutesZeroCells is the tentpole acceptance gate:
// a warm-cache rerun of a full experiment simulates zero cells and
// renders byte-identical output (table and manifests).
func TestWarmCacheRerunExecutesZeroCells(t *testing.T) {
	cfg := config.Default()
	cache, err := rcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}

	cold := runner.New(runner.Options{ResultCache: cache, Manifest: true})
	coldTab, err := RunEngine(context.Background(), cold, "fig5", cfg, cacheTestScale)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Simulated() == 0 {
		t.Fatal("cold run simulated zero cells — the test proves nothing")
	}
	if s := cache.Stats(); s.Stores == 0 {
		t.Fatalf("cold run stored nothing: %+v", s)
	}

	warm := runner.New(runner.Options{ResultCache: cache, Manifest: true})
	warmTab, err := RunEngine(context.Background(), warm, "fig5", cfg, cacheTestScale)
	if err != nil {
		t.Fatal(err)
	}
	if n := warm.Simulated(); n != 0 {
		t.Fatalf("warm rerun simulated %d cells, want 0", n)
	}
	if got, want := renderAll(warmTab), renderAll(coldTab); got != want {
		t.Fatalf("warm output differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", want, got)
	}
	// Provenance: warm manifests carry the hit marker, cold ones the key.
	for _, m := range warmTab.Manifests {
		if !m.CacheHit || m.CacheKey == "" {
			t.Fatalf("warm manifest missing cache provenance: %+v", m)
		}
	}
	for _, m := range coldTab.Manifests {
		if m.CacheHit || m.CacheKey == "" {
			t.Fatalf("cold manifest has wrong cache provenance: %+v", m)
		}
	}
}

// TestWarmCacheSurvivesReopen reruns against a fresh Cache over the
// same directory — the cross-process shape (olbench -cache-dir twice).
func TestWarmCacheSurvivesReopen(t *testing.T) {
	cfg := config.Default()
	dir := t.TempDir()
	c1, err := rcache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := runner.New(runner.Options{ResultCache: c1})
	coldTab, err := RunEngine(context.Background(), cold, "fig10a", cfg, cacheTestScale)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := rcache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm := runner.New(runner.Options{ResultCache: c2})
	warmTab, err := RunEngine(context.Background(), warm, "fig10a", cfg, cacheTestScale)
	if err != nil {
		t.Fatal(err)
	}
	if n := warm.Simulated(); n != 0 {
		t.Fatalf("reopened warm rerun simulated %d cells, want 0", n)
	}
	if warmTab.Markdown() != coldTab.Markdown() {
		t.Fatal("reopened warm output differs from cold")
	}
}

// TestCellCacheEngineShardParity is the parity gate the cache key
// design leans on: the engine name is part of the key (per the store's
// contract), but results themselves must be engine- and
// shard-independent — a warm rerun at any shard count is byte-identical
// to the cold run at any other, and the skip/dense/parallel engines
// produce identical cached tables.
func TestCellCacheEngineShardParity(t *testing.T) {
	cfg := config.Default()
	type variant struct {
		name string
		opts runner.Options
	}
	variants := []variant{
		{"skip", runner.Options{}},
		{"dense", runner.Options{DenseEngine: true}},
		{"parallel-1", runner.Options{ParallelEngine: true, ParallelShards: 1}},
		{"parallel-4", runner.Options{ParallelEngine: true, ParallelShards: 4}},
	}
	var ref *Table
	for _, v := range variants {
		o := v.opts
		cache, err := rcache.Open(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		o.ResultCache = cache
		tab, err := RunEngine(context.Background(), runner.New(o), "fig5", cfg, cacheTestScale)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if ref == nil {
			ref = tab
			continue
		}
		if tab.Markdown() != ref.Markdown() {
			t.Fatalf("%s table differs from %s:\n%s\nvs\n%s", v.name, variants[0].name, tab.Markdown(), ref.Markdown())
		}
		if !reflect.DeepEqual(tab.Rows, ref.Rows) {
			t.Fatalf("%s rows differ from %s", v.name, variants[0].name)
		}
	}
	// Shard-independence of the key itself: warm a cache at 4 shards,
	// rerun at 2 — still zero simulations.
	cache, err := rcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := runner.New(runner.Options{ParallelEngine: true, ParallelShards: 4, ResultCache: cache})
	if _, err := RunEngine(context.Background(), cold, "fig5", cfg, cacheTestScale); err != nil {
		t.Fatal(err)
	}
	warm := runner.New(runner.Options{ParallelEngine: true, ParallelShards: 2, ResultCache: cache})
	if _, err := RunEngine(context.Background(), warm, "fig5", cfg, cacheTestScale); err != nil {
		t.Fatal(err)
	}
	if n := warm.Simulated(); n != 0 {
		t.Fatalf("2-shard rerun of a 4-shard-warmed cache simulated %d cells, want 0", n)
	}
}

// TestCorruptCacheFallsBackToRecompute damages every blob a cold run
// wrote (truncation and bit flips) and reruns: the engine must
// re-simulate every cell and still produce byte-identical output — a
// damaged cache costs time, never correctness.
func TestCorruptCacheFallsBackToRecompute(t *testing.T) {
	cfg := config.Default()
	dir := t.TempDir()
	cache, err := rcache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := runner.New(runner.Options{ResultCache: cache})
	coldTab, err := RunEngine(context.Background(), cold, "fig5", cfg, cacheTestScale)
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := filepath.Glob(filepath.Join(dir, "*.res"))
	if err != nil || len(blobs) == 0 {
		t.Fatalf("no blobs written: %v %v", blobs, err)
	}
	for i, p := range blobs {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			data = data[:len(data)/2] // truncate
		} else {
			data[len(data)-1] ^= 0x01 // bit flip
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := rcache.Open(dir, 0) // fresh memory front; disk is damaged
	if err != nil {
		t.Fatal(err)
	}
	warm := runner.New(runner.Options{ResultCache: fresh})
	warmTab, err := RunEngine(context.Background(), warm, "fig5", cfg, cacheTestScale)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Simulated() != cold.Simulated() {
		t.Fatalf("rerun over damaged cache simulated %d cells, cold run %d", warm.Simulated(), cold.Simulated())
	}
	if warmTab.Markdown() != coldTab.Markdown() {
		t.Fatal("rerun over damaged cache produced different output")
	}
	if s := fresh.Stats(); s.Corrupt != int64(len(blobs)) {
		t.Fatalf("Corrupt = %d, want %d", s.Corrupt, len(blobs))
	}
	// The recompute healed the slots: a third run is all hits again.
	healed, err := rcache.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	again := runner.New(runner.Options{ResultCache: healed})
	if _, err := RunEngine(context.Background(), again, "fig5", cfg, cacheTestScale); err != nil {
		t.Fatal(err)
	}
	if n := again.Simulated(); n != 0 {
		t.Fatalf("healed rerun simulated %d cells, want 0", n)
	}
}

// TestFaultCampaignNeverCached: fault-injected cells bypass the cache
// in both directions, so campaign reruns genuinely re-attack the
// simulator.
func TestFaultCampaignNeverCached(t *testing.T) {
	cfg := config.Default()
	cache, err := rcache.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := runner.New(runner.Options{ResultCache: cache})
	if _, _, err := FaultCampaignEngine(context.Background(), eng, cfg, Scale{BytesPerChannel: 4 << 10}); err != nil {
		t.Fatal(err)
	}
	first := eng.Simulated()
	if first == 0 {
		t.Fatal("campaign simulated nothing")
	}
	eng2 := runner.New(runner.Options{ResultCache: cache})
	if _, _, err := FaultCampaignEngine(context.Background(), eng2, cfg, Scale{BytesPerChannel: 4 << 10}); err != nil {
		t.Fatal(err)
	}
	// The campaign mixes faulted cells (never cached) with unfaulted
	// baseline cells (cached): the rerun must re-execute every faulted
	// cell.
	if eng2.Simulated() == 0 {
		t.Fatal("faulted cells were served from the cache")
	}
	if eng2.Simulated() > first {
		t.Fatalf("rerun simulated more (%d) than the cold run (%d)", eng2.Simulated(), first)
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (§6-§7): Table 1 (configuration), Table 2 (workloads),
// Figure 5 (fence overhead), Figures 10a/10b (stream bandwidth and
// time), Figure 11 (DRAM-timing peak command bandwidth), Figure 12
// (application speedups and primitive rates) and Figure 13 (BMF sweep) —
// plus two ablations on the design choices DESIGN.md calls out.
//
// Each experiment returns a Table whose rows are the series the paper
// plots. Absolute values differ from the paper (different data-set
// sizes; a purpose-built simulator instead of GPGPU-Sim), but the shape
// — who wins, by what factor, where crossovers fall — is the
// reproduction target. EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"

	"orderlight/internal/obs"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string

	// Manifests carries the provenance record of every simulated cell
	// behind the table, in cell declaration order. Populated only when
	// the runner engine was created with Options.Manifest (the olbench
	// -manifest flag); empty for descriptive tables with no cells.
	Manifests []*obs.Manifest
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes are not
// needed: no cell produced by this package contains a comma).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ",") + "\n")
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ",") + "\n")
	}
	return b.String()
}

// ManifestMarkdown renders the attached cell manifests as a collapsed
// markdown section, one line per cell; empty when none are attached.
func (t *Table) ManifestMarkdown() string {
	if len(t.Manifests) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("<details><summary>run manifests</summary>\n\n```\n")
	for _, m := range t.Manifests {
		b.WriteString(m.String() + "\n")
	}
	b.WriteString("```\n\n</details>\n")
	return b.String()
}

// f1, f2, f3 format floats at fixed precision for table cells.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/fault"
	"orderlight/internal/gpu"
	"orderlight/internal/kernel"
	"orderlight/internal/obs"
	"orderlight/internal/olerrors"
	"orderlight/internal/runner"
)

// TestRunAllParityParallelVsSkip is the acceptance gate for the
// intra-run parallel engine: every experiment table of the full sweep
// must render byte-identically whether cells run on the sequential
// skip-ahead engine or sharded across per-channel goroutines.
func TestRunAllParityParallelVsSkip(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep x2")
	}
	cfg := tinyConfig()
	sc := Scale{BytesPerChannel: 8 * 1024}
	ctx := context.Background()

	skip, err := RunAllEngine(ctx, runner.New(runner.Options{}), cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAllEngine(ctx, runner.New(runner.Options{ParallelEngine: true, ParallelShards: 4}), cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(skip) != len(par) {
		t.Fatalf("skip engine produced %d tables, parallel %d", len(skip), len(par))
	}
	for i, s := range skip {
		if sMD, pMD := s.Markdown(), par[i].Markdown(); sMD != pMD {
			t.Errorf("table %s differs between engines:\n--- skip ---\n%s\n--- parallel ---\n%s", s.ID, sMD, pMD)
		}
	}
}

// randomParityCells samples the configuration space the way
// TestRandomizedDenseSkipParity does, plus active fault plans on a
// quarter of the cells — the parallel engine shares the fault
// hook-points with the sequential ones, so injected decisions and
// verdicts must not move either.
func randomParityCells(t *testing.T, seed int64, n int) []runner.Cell {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := kernel.Names()
	prims := []config.Primitive{
		config.PrimitiveNone, config.PrimitiveFence,
		config.PrimitiveOrderLight, config.PrimitiveSeqno,
	}
	classes := []fault.Class{
		fault.ClassDropOrdering, fault.ClassWeakenDrain,
		fault.ClassIllegalReorder, fault.ClassDelayVisibility,
	}
	cells := make([]runner.Cell, 0, n)
	for i := 0; i < n; i++ {
		cfg := tinyConfig()
		name := names[rng.Intn(len(names))]
		cfg.Run.Primitive = prims[rng.Intn(len(prims))]
		cfg = cfg.WithTSFraction(TSFractions[rng.Intn(len(TSFractions))])
		cfg.Memory.RefreshEnabled = rng.Intn(2) == 0
		cfg.GPU.IcntRoutes = 1 + rng.Intn(2)
		if rng.Intn(4) == 0 {
			cfg.Host.Kind = config.HostCPU
		}
		spec, err := kernel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c := runner.Cell{
			Key:   fmt.Sprintf("par%02d/%s/%v/ts=%dB", i, name, cfg.Run.Primitive, cfg.PIM.TSBytes),
			Cfg:   cfg,
			Spec:  spec,
			Bytes: int64(1+rng.Intn(8)) * 1024,
		}
		if cfg.Host.Kind == config.HostGPU && rng.Intn(3) == 0 {
			c.Traffic = gpu.HostTraffic{
				PerChannel:        4 + rng.Intn(12),
				EveryN:            50 + rng.Intn(200),
				Group:             rng.Intn(4),
				Rows:              1 + rng.Intn(4),
				CoarseArbitration: rng.Intn(2) == 0,
			}
		}
		if rng.Intn(4) == 0 {
			c.Fault = fault.Spec{
				Class: classes[rng.Intn(len(classes))],
				Seed:  rng.Uint64(),
				Rate:  0.25 + rng.Float64()*0.75,
			}
		}
		cells = append(cells, c)
	}
	return cells
}

// TestRandomizedThreeWayParity fuzzes engine parity across all three
// engines at once: for every sampled cell — random kernels, primitives,
// TS sizes, refresh, NoC routes, host front ends, host traffic, and
// active fault plans — dense, skip-ahead and parallel must agree on
// every statistic (cycle counts included), the host-latency
// measurements, the fault verdict, and the complete post-run memory
// image.
func TestRandomizedThreeWayParity(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized simulation sweep x3")
	}
	cells := randomParityCells(t, 0x3e147a11e1, 24)

	ctx := context.Background()
	skipRes, err := runner.New(runner.Options{DisableKernelCache: true}).Run(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	engines := []struct {
		name string
		opts runner.Options
	}{
		{"dense", runner.Options{DenseEngine: true, DisableKernelCache: true}},
		{"parallel", runner.Options{ParallelEngine: true, ParallelShards: 3, DisableKernelCache: true}},
		// Shard-count independence: one shard must already be
		// byte-identical, so any count is.
		{"parallel-1shard", runner.Options{ParallelEngine: true, ParallelShards: 1, DisableKernelCache: true}},
	}
	for _, e := range engines {
		res, err := runner.New(e.opts).Run(ctx, cells)
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		for i := range cells {
			s, o := skipRes[i], res[i]
			if !reflect.DeepEqual(s.Run, o.Run) {
				t.Errorf("%s: stats diverge skip vs %s:\nskip: %+v\n%s: %+v",
					cells[i].Key, e.name, s.Run, e.name, o.Run)
				continue
			}
			if s.HostLatency != o.HostLatency || s.HostServed != o.HostServed {
				t.Errorf("%s: host-load measurements diverge: skip (%.3f, %d) vs %s (%.3f, %d)",
					cells[i].Key, s.HostLatency, s.HostServed, e.name, o.HostLatency, o.HostServed)
			}
			if (s.Fault == nil) != (o.Fault == nil) {
				t.Errorf("%s: fault verdict presence diverges skip vs %s", cells[i].Key, e.name)
			} else if s.Fault != nil && *s.Fault != *o.Fault {
				t.Errorf("%s: fault verdicts diverge: skip %+v vs %s %+v",
					cells[i].Key, *s.Fault, e.name, *o.Fault)
			}
			if !s.Kernel.Store.Equal(o.Kernel.Store) {
				t.Errorf("%s: final memory images differ at %v", cells[i].Key,
					s.Kernel.Store.Diff(o.Kernel.Store, 4))
			}
		}
	}
}

// TestParallelEventStreamParity pins the strongest form of the
// determinism claim: the parallel engine replays staged per-channel
// effects in channel order, so its emitted event stream — including
// clock-track skip spans, which the dense engine legitimately lacks —
// is identical to the sequential skip-ahead engine's, event for event.
func TestParallelEventStreamParity(t *testing.T) {
	cells := randomParityCells(t, 0x5eeded, 6)
	ctx := context.Background()
	for i := range cells {
		var skipSink, parSink obs.CollectSink
		one := []runner.Cell{cells[i]}
		if _, err := runner.New(runner.Options{TraceSink: &skipSink, DisableKernelCache: true}).Run(ctx, one); err != nil {
			t.Fatal(err)
		}
		opts := runner.Options{
			ParallelEngine: true, ParallelShards: 1 + i%4,
			TraceSink: &parSink, DisableKernelCache: true,
		}
		if _, err := runner.New(opts).Run(ctx, one); err != nil {
			t.Fatal(err)
		}
		se, pe := skipSink.Events(), parSink.Events()
		if len(se) != len(pe) {
			t.Errorf("%s: event counts diverge: skip %d vs parallel %d", cells[i].Key, len(se), len(pe))
			continue
		}
		for j := range se {
			if se[j] != pe[j] {
				t.Errorf("%s: event %d diverges:\nskip:     %+v\nparallel: %+v", cells[i].Key, j, se[j], pe[j])
				break
			}
		}
		if skipSink.Dropped() != parSink.Dropped() {
			t.Errorf("%s: drop counts diverge: skip %d vs parallel %d",
				cells[i].Key, skipSink.Dropped(), parSink.Dropped())
		}
	}
}

// TestParallelHaltResumeParity kills a parallel-engine run at a
// checkpoint and resumes it: the continuation must be byte-identical to
// an uninterrupted run on either engine, and the checkpoint metadata
// must refuse a cross-engine resume.
func TestParallelHaltResumeParity(t *testing.T) {
	ctx := context.Background()
	spec, err := kernel.ByName("add")
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Run.Primitive = config.PrimitiveOrderLight
	cells := []runner.Cell{{Key: "parresume/add/orderlight", Cfg: cfg, Spec: spec, Bytes: 8 << 10}}

	ref, err := runner.New(runner.Options{}).Run(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	par := runner.Options{ParallelEngine: true, ParallelShards: 2}
	halt := par
	halt.CheckpointDir, halt.HaltAfterCycles = dir, 200
	if _, err := runner.New(halt).Run(ctx, cells); !errors.Is(err, olerrors.ErrHalted) {
		t.Fatalf("halted parallel sweep error = %v, want ErrHalted", err)
	}

	// The checkpoint records engine "parallel"; a skip-engine resume must
	// be refused rather than silently continued.
	if _, err := runner.New(runner.Options{CheckpointDir: dir, Resume: true}).Run(ctx, cells); !errors.Is(err, olerrors.ErrCheckpointMismatch) {
		t.Fatalf("cross-engine resume error = %v, want ErrCheckpointMismatch", err)
	}

	resume := par
	resume.CheckpointDir, resume.Resume = dir, true
	res, err := runner.New(resume).Run(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Run.String() != ref[0].Run.String() {
		t.Fatalf("resumed parallel cell differs from uninterrupted skip run:\n%s\nvs\n%s", res[0].Run, ref[0].Run)
	}
	if !res[0].Run.Correct {
		t.Fatal("resumed parallel cell verified incorrect")
	}
}

// TestFaultCampaignParityParallelVsSkip runs the full fault-injection
// campaign on both engines: verdict matrix and summary must match.
func TestFaultCampaignParityParallelVsSkip(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaign x2")
	}
	cfg := tinyConfig()
	sc := Scale{BytesPerChannel: 8 * 1024}
	ctx := context.Background()

	st, ssum, err := FaultCampaignEngine(ctx, runner.New(runner.Options{}), cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	pt, psum, err := FaultCampaignEngine(ctx, runner.New(runner.Options{ParallelEngine: true, ParallelShards: 4}), cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if sMD, pMD := st.Markdown(), pt.Markdown(); sMD != pMD {
		t.Errorf("campaign verdict matrices differ:\n--- skip ---\n%s\n--- parallel ---\n%s", sMD, pMD)
	}
	if !reflect.DeepEqual(ssum, psum) {
		t.Errorf("campaign summaries differ: skip %+v vs parallel %+v", ssum, psum)
	}
}

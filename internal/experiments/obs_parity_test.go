package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/kernel"
	"orderlight/internal/obs"
	"orderlight/internal/olerrors"
	"orderlight/internal/runner"
	"orderlight/internal/stats"
)

func obsCell(t *testing.T, name string, prim config.Primitive) runner.Cell {
	t.Helper()
	cfg := tinyConfig()
	cfg.Run.Primitive = prim
	spec, err := kernel.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return runner.Cell{
		Key:   fmt.Sprintf("%s/%v", name, prim),
		Cfg:   cfg,
		Spec:  spec,
		Bytes: 4 * 1024,
	}
}

func runWithObs(t *testing.T, c runner.Cell, dense bool) (*obs.CollectSink, *stats.Sampler) {
	t.Helper()
	sink := &obs.CollectSink{}
	smp := stats.NewSampler(256)
	eng := runner.New(runner.Options{
		DenseEngine:        dense,
		TraceSink:          sink,
		Sampler:            smp,
		DisableKernelCache: true,
	})
	if _, err := eng.Run(context.Background(), []runner.Cell{c}); err != nil {
		t.Fatal(err)
	}
	return sink, smp
}

// nonClock filters the stream down to machine events: skip-ahead credit
// spans live only on clock tracks and are the one legitimate difference
// between engines, so parity is asserted on everything else.
func nonClock(evs []obs.Event) []obs.Event {
	out := make([]obs.Event, 0, len(evs))
	for _, e := range evs {
		if !e.Track.IsClock() {
			out = append(out, e)
		}
	}
	return out
}

// TestEventStreamParityDenseVsSkip is the observability acceptance
// gate: for every ordering primitive, the dense and skip-ahead engines
// must emit identical machine-event streams — same events, same order,
// same timestamps and stall-span durations. Only the clock-track skip
// credits (which exist to make elision visible) may differ.
func TestEventStreamParityDenseVsSkip(t *testing.T) {
	prims := []config.Primitive{
		config.PrimitiveNone, config.PrimitiveFence,
		config.PrimitiveOrderLight, config.PrimitiveSeqno,
	}
	for _, prim := range prims {
		t.Run(prim.String(), func(t *testing.T) {
			cell := obsCell(t, "add", prim)
			skipSink, _ := runWithObs(t, cell, false)
			denseSink, _ := runWithObs(t, cell, true)

			s, d := nonClock(skipSink.Events()), nonClock(denseSink.Events())
			if len(s) == 0 {
				t.Fatal("skip engine emitted no machine events")
			}
			if !reflect.DeepEqual(s, d) {
				n := len(s)
				if len(d) < n {
					n = len(d)
				}
				for i := 0; i < n; i++ {
					if !reflect.DeepEqual(s[i], d[i]) {
						t.Fatalf("streams diverge at event %d (of %d/%d):\nskip:  %+v\ndense: %+v",
							i, len(s), len(d), s[i], d[i])
					}
				}
				t.Fatalf("streams are a prefix of each other: skip %d events, dense %d", len(s), len(d))
			}

			// The dense engine must emit no skip credits at all.
			for _, e := range denseSink.Events() {
				if e.Track.IsClock() {
					t.Fatalf("dense engine emitted a clock-track event: %+v", e)
				}
			}
		})
	}
}

// TestEventStreamHasExpectedShapes spot-checks the taxonomy: a fence
// run carries fence instants with preceding stall spans, an OrderLight
// run carries orderlight instants, and both carry stage crossings and
// DRAM commands.
func TestEventStreamHasExpectedShapes(t *testing.T) {
	count := func(evs []obs.Event, name string) (n int) {
		for _, e := range evs {
			if e.Name == name {
				n++
			}
		}
		return n
	}

	fenceSink, _ := runWithObs(t, obsCell(t, "add", config.PrimitiveFence), false)
	fe := fenceSink.Events()
	if count(fe, "fence") == 0 || count(fe, "fence-stall") == 0 {
		t.Errorf("fence run: %d fence instants, %d stall spans — want both > 0",
			count(fe, "fence"), count(fe, "fence-stall"))
	}
	for _, e := range fe {
		if e.Name == "fence-stall" && e.Dur <= 0 {
			t.Errorf("stall span without duration: %+v", e)
		}
	}

	olSink, _ := runWithObs(t, obsCell(t, "add", config.PrimitiveOrderLight), false)
	oe := olSink.Events()
	if count(oe, "orderlight") == 0 {
		t.Error("orderlight run emitted no orderlight instants")
	}
	if count(oe, "inject") == 0 || count(oe, "device") == 0 {
		t.Errorf("stage crossings missing: %d inject, %d device", count(oe, "inject"), count(oe, "device"))
	}
	if count(oe, "RD")+count(oe, "WR") == 0 || count(oe, "ACT") == 0 {
		t.Errorf("DRAM commands missing: %d RD, %d WR, %d ACT", count(oe, "RD"), count(oe, "WR"), count(oe, "ACT"))
	}
	pim := 0
	for _, e := range oe {
		if e.Track.Kind == "pim" {
			pim++
		}
	}
	if pim == 0 {
		t.Error("no PIM-unit track events")
	}
	skips := 0
	for _, e := range oe {
		if e.Track.IsClock() && e.Name == "skip" {
			skips++
		}
	}
	if skips == 0 {
		t.Error("skip-ahead run emitted no skip-credit spans (elision should be visible)")
	}
}

// TestSamplerParityDenseVsSkip checks sampling cadence is unaffected by
// quiescence skip-ahead: both engines must produce the identical
// time-series — same sample cycles, same counter values.
func TestSamplerParityDenseVsSkip(t *testing.T) {
	for _, prim := range []config.Primitive{config.PrimitiveFence, config.PrimitiveOrderLight} {
		t.Run(prim.String(), func(t *testing.T) {
			cell := obsCell(t, "add", prim)
			_, skipSmp := runWithObs(t, cell, false)
			_, denseSmp := runWithObs(t, cell, true)

			s, d := skipSmp.Samples(), denseSmp.Samples()
			if len(s) < 2 {
				t.Fatalf("skip run recorded only %d samples — cadence 256 should yield more", len(s))
			}
			if !reflect.DeepEqual(s, d) {
				t.Fatalf("time-series diverge:\nskip:  %+v\ndense: %+v", s, d)
			}
			// Every non-final sample must land exactly on the cadence grid:
			// skip-ahead is not allowed to elide a sample cycle.
			for i, x := range s[:len(s)-1] {
				if x.Cycle%skipSmp.Every() != 0 {
					t.Errorf("sample %d at cycle %d is off the %d-cycle grid", i, x.Cycle, skipSmp.Every())
				}
			}
		})
	}
}

// TestPerfettoEndToEnd streams a real run through the Perfetto exporter
// and checks the document loads as valid trace-event JSON.
func TestPerfettoEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	sink := obs.NewPerfettoSink(&buf)
	eng := runner.New(runner.Options{TraceSink: sink, DisableKernelCache: true})
	cell := obsCell(t, "add", config.PrimitiveOrderLight)
	if _, err := eng.Run(context.Background(), []runner.Cell{cell}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace of a real run is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" || len(doc.TraceEvents) < 10 {
		t.Fatalf("implausible document: unit %q, %d events", doc.DisplayTimeUnit, len(doc.TraceEvents))
	}
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M", "X", "i":
		default:
			t.Fatalf("event %d has unexpected phase %q", i, ev.Ph)
		}
	}
}

// TestTraceSinkSingleCellOnly checks the runner rejects observability
// attachments on multi-cell sweeps instead of interleaving streams.
func TestTraceSinkSingleCellOnly(t *testing.T) {
	cells := []runner.Cell{
		obsCell(t, "add", config.PrimitiveFence),
		obsCell(t, "add", config.PrimitiveOrderLight),
	}
	eng := runner.New(runner.Options{TraceSink: &obs.CollectSink{}})
	if _, err := eng.Run(context.Background(), cells); !errors.Is(err, olerrors.ErrInvalidSpec) {
		t.Errorf("multi-cell run with a trace sink: err = %v, want ErrInvalidSpec", err)
	}
	eng = runner.New(runner.Options{Sampler: stats.NewSampler(100)})
	if _, err := eng.Run(context.Background(), cells); !errors.Is(err, olerrors.ErrInvalidSpec) {
		t.Errorf("multi-cell run with a sampler: err = %v, want ErrInvalidSpec", err)
	}
}

// TestManifestsOnTables checks every simulated cell of an experiment
// carries a manifest whose config hash round-trips against the cell's
// own configuration.
func TestManifestsOnTables(t *testing.T) {
	cfg := tinyConfig()
	sc := Scale{BytesPerChannel: 4 * 1024}
	eng := runner.New(runner.Options{Manifest: true})
	table, err := RunEngine(context.Background(), eng, "fig5", cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := Cells("fig5", cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Manifests) != len(cells) {
		t.Fatalf("%d manifests for %d cells", len(table.Manifests), len(cells))
	}
	for i, m := range table.Manifests {
		if m.Cell != cells[i].Key {
			t.Errorf("manifest %d names cell %q, want %q", i, m.Cell, cells[i].Key)
		}
		if want := obs.ConfigHash(cells[i].Cfg); m.ConfigHash != want {
			t.Errorf("%s: config hash %s does not round-trip (want %s)", m.Cell, m.ConfigHash, want)
		}
		if m.Engine != "skip" || m.GoVersion == "" || m.WallMS < 0 {
			t.Errorf("%s: implausible manifest %+v", m.Cell, m)
		}
	}
	if table.ManifestMarkdown() == "" {
		t.Error("ManifestMarkdown() empty despite attached manifests")
	}
}

package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/fault"
	"orderlight/internal/kernel"
	"orderlight/internal/runner"
)

// TestFaultedDenseSkipParity extends the engine-parity property to
// fault-injected runs: for random (kernel, primitive, fault class,
// rate, seed) samples, the dense and skip-ahead engines must agree on
// every statistic, the final memory image, AND the differential
// oracle's verdict — same outcome, same injection counts, same wrong
// slots. Fault decisions are stateless hashes precisely so that this
// holds; a divergence means an injection hook consulted
// schedule-dependent state.
func TestFaultedDenseSkipParity(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized faulted simulation sweep x2")
	}
	rng := rand.New(rand.NewSource(0xfa17))
	names := []string{"add", "daxpy", "triad", "copy", "scale"}
	prims := []config.Primitive{config.PrimitiveFence, config.PrimitiveOrderLight}
	classes := fault.Classes()
	rates := []float64{0.25, 0.5, 1}

	cells := make([]runner.Cell, 0, 20)
	for i := 0; i < 20; i++ {
		cfg := tinyConfig()
		cfg.Run.Primitive = prims[rng.Intn(len(prims))]
		cfg = cfg.WithTSFraction(TSFractions[rng.Intn(len(TSFractions))])
		name := names[rng.Intn(len(names))]
		spec, err := kernel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		fs := fault.Spec{
			Class: classes[rng.Intn(len(classes))],
			Seed:  rng.Uint64(),
			Rate:  rates[rng.Intn(len(rates))],
		}
		if fs.Class == fault.ClassDelayVisibility && rng.Intn(2) == 0 {
			fs.Delay = int64(1 + rng.Intn(200))
		}
		cells = append(cells, runner.Cell{
			Key:   fmt.Sprintf("fparity%02d/%s/%v/%s", i, name, cfg.Run.Primitive, fs),
			Cfg:   cfg,
			Spec:  spec,
			Bytes: int64(1+rng.Intn(8)) * 1024,
			Fault: fs,
		})
	}

	ctx := context.Background()
	skipRes, err := runner.New(runner.Options{DisableKernelCache: true}).Run(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	denseRes, err := runner.New(runner.Options{DenseEngine: true, DisableKernelCache: true}).Run(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		s, d := skipRes[i], denseRes[i]
		if !reflect.DeepEqual(s.Run, d.Run) {
			t.Errorf("%s: stats diverge between engines:\nskip:  %+v\ndense: %+v", cells[i].Key, s.Run, d.Run)
			continue
		}
		if !s.Kernel.Store.Equal(d.Kernel.Store) {
			t.Errorf("%s: final memory images differ at %v", cells[i].Key,
				s.Kernel.Store.Diff(d.Kernel.Store, 4))
		}
		if s.Fault == nil || d.Fault == nil {
			t.Errorf("%s: missing verdict (skip %v, dense %v)", cells[i].Key, s.Fault, d.Fault)
			continue
		}
		if !reflect.DeepEqual(*s.Fault, *d.Fault) {
			t.Errorf("%s: verdicts diverge between engines:\nskip:  %v\ndense: %v",
				cells[i].Key, *s.Fault, *d.Fault)
		}
		if s.Fault.Outcome == fault.OutcomeEscape {
			t.Errorf("%s: escape: %v", cells[i].Key, *s.Fault)
		}
	}
}

// TestFaultCampaignZeroEscapes is the acceptance gate for the
// injection campaign itself: the default grid must classify every cell
// as detected or benign (never escape), and the pinned Figure 5
// reproduction — drop/fence on add at full rate — must come back
// detected.
func TestFaultCampaignZeroEscapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full fault campaign")
	}
	cfg := tinyConfig()
	tab, sum, err := FaultCampaign(cfg, Scale{BytesPerChannel: 32 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Escapes != 0 {
		t.Fatalf("campaign saw %d escape(s): %v\n%s", sum.Escapes, sum.EscapeKeys, tab.Markdown())
	}
	if !sum.PinnedDetected {
		t.Fatalf("pinned Figure 5 reproduction not detected:\n%s", tab.Markdown())
	}
	if sum.Detected == 0 {
		t.Fatal("campaign detected nothing")
	}
	if got := sum.Detected + sum.Benign + sum.Clean; got != len(tab.Rows) {
		t.Fatalf("summary covers %d cells, table has %d rows", got, len(tab.Rows))
	}
}

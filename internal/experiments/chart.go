package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// chartWidth is the bar width of Chart, in character cells.
const chartWidth = 40

// Chart renders one numeric column of the table as horizontal ASCII
// bars — a terminal rendition of the paper's figure the table encodes.
// Rows whose cell is not numeric are skipped. col indexes Columns.
func (t *Table) Chart(col int) string {
	if col < 0 || col >= len(t.Columns) {
		return fmt.Sprintf("(column %d out of range)\n", col)
	}
	type bar struct {
		label string
		val   float64
	}
	var bars []bar
	maxVal := 0.0
	labelW := 0
	for _, r := range t.Rows {
		v, err := strconv.ParseFloat(r[col], 64)
		if err != nil {
			continue
		}
		label := strings.Join(r[:min(col, len(r))], " ")
		if lw := len(label); lw > labelW {
			labelW = lw
		}
		if v > maxVal {
			maxVal = v
		}
		bars = append(bars, bar{label: label, val: v})
	}
	if len(bars) == 0 || maxVal <= 0 {
		return "(no numeric data to chart)\n"
	}
	if labelW > 36 {
		labelW = 36
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s)\n\n", t.ID, t.Title, t.Columns[col])
	for _, bb := range bars {
		n := int(bb.val / maxVal * chartWidth)
		if n < 1 && bb.val > 0 {
			n = 1
		}
		label := bb.label
		if len(label) > labelW {
			label = label[:labelW]
		}
		fmt.Fprintf(&b, "%-*s |%s %g\n", labelW, label, strings.Repeat("#", n), bb.val)
	}
	return b.String()
}

// DefaultChartColumn picks the column Chart uses when the caller does
// not specify one: the first column whose first row parses as a number.
func (t *Table) DefaultChartColumn() int {
	if len(t.Rows) == 0 {
		return -1
	}
	for c := range t.Columns {
		if _, err := strconv.ParseFloat(t.Rows[0][c], 64); err == nil {
			return c
		}
	}
	return -1
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package experiments

import (
	"orderlight/internal/config"
	"orderlight/internal/gpu"
	"orderlight/internal/kernel"
	"orderlight/internal/runner"
)

// TaxonomyArbitration quantifies the §3 taxonomy's arbitration axis: the
// same OrderLight PIM kernel runs while the host keeps wanting memory,
// under fine-grained arbitration (host loads interleave with PIM
// commands at the memory controller — the FGO/FGA class this paper
// enables) and under coarse-grained arbitration (host loads are locked
// out until the PIM computation finishes — the CGA classes of §3.2/§3.3,
// whose QoS damage the paper argues datacenters cannot accept).
func TaxonomyArbitration(cfg config.Config, sc Scale) (*Table, error) {
	return Run("taxonomy-arbitration", cfg, sc)
}

func taxonomyArbitrationCells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	spec, err := kernel.ByName("add")
	if err != nil {
		return nil, err
	}
	var cells []runner.Cell
	for _, cga := range []bool{false, true} {
		cell := specCell(withPrimitive(cfg, config.PrimitiveOrderLight), spec, sc.orDefault().BytesPerChannel)
		cell.Traffic = gpu.HostTraffic{
			PerChannel: 64, EveryN: 40, Group: 2, CoarseArbitration: cga,
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

func taxonomyArbitrationAssemble(_ config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "taxonomy-arbitration", Title: "Arbitration granularity: host-load latency under FGA vs CGA",
		Columns: []string{"Arbitration", "PIM ms", "Host mean latency (core cycles)", "Latency vs FGA"},
		Notes: []string{
			"CGA makes system memory inaccessible to the host for the whole PIM computation (§3.2); FGA interleaves at individual-command granularity and keeps host latency bounded by queueing, not by kernel length.",
		},
	}
	fga, cga := res[0], res[1]
	t.AddRow("fine-grained (FGA)", f4(fga.Run.ExecMS()), f1(fga.HostLatency), "1.00")
	t.AddRow("coarse-grained (CGA)", f4(cga.Run.ExecMS()), f1(cga.HostLatency), f2(cga.HostLatency/fga.HostLatency))
	return t, nil
}

package experiments

import (
	"orderlight/internal/config"
	"orderlight/internal/gpu"
	"orderlight/internal/kernel"
)

// TaxonomyArbitration quantifies the §3 taxonomy's arbitration axis: the
// same OrderLight PIM kernel runs while the host keeps wanting memory,
// under fine-grained arbitration (host loads interleave with PIM
// commands at the memory controller — the FGO/FGA class this paper
// enables) and under coarse-grained arbitration (host loads are locked
// out until the PIM computation finishes — the CGA classes of §3.2/§3.3,
// whose QoS damage the paper argues datacenters cannot accept).
func TaxonomyArbitration(cfg config.Config, sc Scale) (*Table, error) {
	t := &Table{
		ID: "taxonomy-arbitration", Title: "Arbitration granularity: host-load latency under FGA vs CGA",
		Columns: []string{"Arbitration", "PIM ms", "Host mean latency (core cycles)", "Latency vs FGA"},
		Notes: []string{
			"CGA makes system memory inaccessible to the host for the whole PIM computation (§3.2); FGA interleaves at individual-command granularity and keeps host latency bounded by queueing, not by kernel length.",
		},
	}
	run := func(label string, cga bool) (float64, error) {
		c := withPrimitive(cfg, config.PrimitiveOrderLight)
		spec, err := kernel.ByName("add")
		if err != nil {
			return 0, err
		}
		k, err := kernel.Build(c, spec, sc.orDefault().BytesPerChannel)
		if err != nil {
			return 0, err
		}
		m, err := gpu.NewMachine(c, k.Store, k.Programs)
		if err != nil {
			return 0, err
		}
		m.SetHostTraffic(gpu.HostTraffic{
			PerChannel: 64, EveryN: 40, Group: 2, CoarseArbitration: cga,
		})
		st, err := m.Run()
		if err != nil {
			return 0, err
		}
		lat, _ := m.HostLatency()
		t.AddRow(label, f4(st.ExecMS()), f1(lat), "")
		return lat, nil
	}
	fga, err := run("fine-grained (FGA)", false)
	if err != nil {
		return nil, err
	}
	cga, err := run("coarse-grained (CGA)", true)
	if err != nil {
		return nil, err
	}
	t.Rows[0][3] = "1.00"
	t.Rows[1][3] = f2(cga / fga)
	return t, nil
}

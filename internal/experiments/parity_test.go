package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/gpu"
	"orderlight/internal/kernel"
	"orderlight/internal/runner"
)

// TestRunAllParityDenseVsSkip is the acceptance gate for the
// quiescence skip-ahead engine: every experiment table of the full
// sweep must render byte-identically on the naive dense engine and the
// skip-ahead one.
func TestRunAllParityDenseVsSkip(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep x2")
	}
	cfg := tinyConfig()
	sc := Scale{BytesPerChannel: 8 * 1024}
	ctx := context.Background()

	skip, err := RunAllEngine(ctx, runner.New(runner.Options{}), cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := RunAllEngine(ctx, runner.New(runner.Options{DenseEngine: true}), cfg, sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(skip) != len(dense) {
		t.Fatalf("skip engine produced %d tables, dense %d", len(skip), len(dense))
	}
	for i, s := range skip {
		if sMD, dMD := s.Markdown(), dense[i].Markdown(); sMD != dMD {
			t.Errorf("table %s differs between engines:\n--- skip ---\n%s\n--- dense ---\n%s", s.ID, sMD, dMD)
		}
	}
}

// TestRandomizedDenseSkipParity fuzzes the engine-parity claim across
// the configuration space: random kernels, ordering primitives, TS
// sizes, refresh, NoC routes, host front ends, and concurrent host
// traffic. For every sampled cell the skip-ahead and dense engines must
// agree on every statistic, the final cycle count, the host-latency
// measurements, and the complete post-run memory image.
func TestRandomizedDenseSkipParity(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized simulation sweep x2")
	}
	rng := rand.New(rand.NewSource(0x0c0ffee))
	names := kernel.Names()
	prims := []config.Primitive{
		config.PrimitiveNone, config.PrimitiveFence,
		config.PrimitiveOrderLight, config.PrimitiveSeqno,
	}
	cells := make([]runner.Cell, 0, 24)
	for i := 0; i < 24; i++ {
		cfg := tinyConfig()
		name := names[rng.Intn(len(names))]
		cfg.Run.Primitive = prims[rng.Intn(len(prims))]
		cfg = cfg.WithTSFraction(TSFractions[rng.Intn(len(TSFractions))])
		cfg.Memory.RefreshEnabled = rng.Intn(2) == 0
		cfg.GPU.IcntRoutes = 1 + rng.Intn(2)
		if rng.Intn(4) == 0 {
			cfg.Host.Kind = config.HostCPU
		}
		spec, err := kernel.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		c := runner.Cell{
			Key:   fmt.Sprintf("rand%02d/%s/%v/ts=%dB", i, name, cfg.Run.Primitive, cfg.PIM.TSBytes),
			Cfg:   cfg,
			Spec:  spec,
			Bytes: int64(1+rng.Intn(8)) * 1024,
		}
		if cfg.Host.Kind == config.HostGPU && rng.Intn(3) == 0 {
			c.Traffic = gpu.HostTraffic{
				PerChannel:        4 + rng.Intn(12),
				EveryN:            50 + rng.Intn(200),
				Group:             rng.Intn(4),
				Rows:              1 + rng.Intn(4),
				CoarseArbitration: rng.Intn(2) == 0,
			}
		}
		cells = append(cells, c)
	}

	// The kernel cache is disabled so each engine mutates its own store
	// build; otherwise both runs would see pre-cloned images anyway, but
	// this keeps the memory-image comparison airtight.
	ctx := context.Background()
	skipRes, err := runner.New(runner.Options{DisableKernelCache: true}).Run(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	denseRes, err := runner.New(runner.Options{DenseEngine: true, DisableKernelCache: true}).Run(ctx, cells)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		s, d := skipRes[i], denseRes[i]
		if !reflect.DeepEqual(s.Run, d.Run) {
			t.Errorf("%s: stats diverge between engines:\nskip:  %+v\ndense: %+v", cells[i].Key, s.Run, d.Run)
			continue
		}
		if s.HostLatency != d.HostLatency || s.HostServed != d.HostServed {
			t.Errorf("%s: host-load measurements diverge: skip (%.3f, %d) vs dense (%.3f, %d)",
				cells[i].Key, s.HostLatency, s.HostServed, d.HostLatency, d.HostServed)
		}
		if !s.Kernel.Store.Equal(d.Kernel.Store) {
			t.Errorf("%s: final memory images differ at %v", cells[i].Key,
				s.Kernel.Store.Diff(d.Kernel.Store, 4))
		}
	}
}

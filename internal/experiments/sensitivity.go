package experiments

import (
	"fmt"

	"orderlight/internal/config"
	"orderlight/internal/gpu"
	"orderlight/internal/kernel"
)

// SensitivitySMs reproduces the §6 observation about host-compute
// apportionment: under fences, warps idle so much that a couple of SMs
// (eight warps each, via context switching) can drive all 16 channels;
// under OrderLight the command throughput is high enough that the paper
// dedicates one SM per two channels. The sweep varies how many SMs the
// PIM kernel occupies and shows fence performance is flat (core time is
// all stall) while OrderLight speeds up with more front-end width.
func SensitivitySMs(cfg config.Config, sc Scale) (*Table, error) {
	t := &Table{
		ID: "sensitivity-sms", Title: "PIM-kernel SM apportionment (§6 baseline-limitations discussion)",
		Columns: []string{"SMs (warps/SM)", "Fence ms", "OL ms", "OL gain from SMs"},
		Notes: []string{
			"Fence runs are stall-bound and insensitive to front-end width; OrderLight converts extra SMs into command throughput until the DRAM bound.",
		},
	}
	// Use the group-spread Add variant: with bank-group parallelism the
	// DRAM stops being the sole bound and front-end width shows.
	spec, err := kernel.ByName("add")
	if err != nil {
		return nil, err
	}
	spread := kernel.WithSpread(spec)
	channels := cfg.Memory.Channels
	var olBase float64
	for _, sms := range []int{2, 4, 8} {
		if channels%sms != 0 {
			continue
		}
		c := cfg
		c.GPU.PIMSMs = sms
		c.GPU.WarpsPerSM = channels / sms
		runOne := func(prim config.Primitive) (float64, error) {
			cc := withPrimitive(c, prim)
			k, err := kernel.Build(cc, spread, sc.orDefault().BytesPerChannel)
			if err != nil {
				return 0, err
			}
			m, err := gpu.NewMachine(cc, k.Store, k.Programs)
			if err != nil {
				return 0, err
			}
			st, err := m.Run()
			if err != nil {
				return 0, err
			}
			return st.ExecMS(), nil
		}
		feMS, err := runOne(config.PrimitiveFence)
		if err != nil {
			return nil, err
		}
		olMS, err := runOne(config.PrimitiveOrderLight)
		if err != nil {
			return nil, err
		}
		if olBase == 0 {
			olBase = olMS
		}
		t.AddRow(fmt.Sprintf("%d (%d)", sms, channels/sms),
			f4(feMS), f4(olMS), f2(olBase/olMS))
	}
	return t, nil
}

// SensitivityGranularity sweeps the offload size — the heart of the
// taxonomy argument (§3.5): fine-grained offload is only worth having if
// small computations still win. Fixed costs (memory-pipe fill, and the
// per-phase fence round trips) must amortize; OrderLight's break-even
// point against the GPU baseline sits at a far smaller offload than the
// fence's.
func SensitivityGranularity(cfg config.Config, sc Scale) (*Table, error) {
	t := &Table{
		ID: "sensitivity-granularity", Title: "Offload granularity: PIM speedup vs kernel footprint",
		Columns: []string{"Bytes/channel", "GPU ms", "Fence ms", "OL ms", "Fence vs GPU", "OL vs GPU"},
		Notes: []string{
			"Fine-grained offload pays off only if small offloads win; OrderLight crosses break-even at a much smaller footprint than fences (§3.5).",
		},
	}
	spec, err := kernel.ByName("add")
	if err != nil {
		return nil, err
	}
	for _, bytes := range []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10} {
		k, err := kernel.Build(withPrimitive(cfg, config.PrimitiveFence), spec, bytes)
		if err != nil {
			return nil, err
		}
		gpuMS := gpu.HostTime(cfg, k.HostBytes, k.HostOps).Milliseconds()
		fe, _, err := runKernel(withPrimitive(cfg, config.PrimitiveFence), "add", Scale{BytesPerChannel: bytes})
		if err != nil {
			return nil, err
		}
		ol, _, err := runKernel(withPrimitive(cfg, config.PrimitiveOrderLight), "add", Scale{BytesPerChannel: bytes})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", bytes),
			f4(gpuMS), f4(fe.ExecMS()), f4(ol.ExecMS()),
			f2(gpuMS/fe.ExecMS()), f2(gpuMS/ol.ExecMS()))
	}
	return t, nil
}

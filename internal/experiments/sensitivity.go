package experiments

import (
	"fmt"

	"orderlight/internal/config"
	"orderlight/internal/gpu"
	"orderlight/internal/kernel"
	"orderlight/internal/runner"
)

// SensitivitySMs reproduces the §6 observation about host-compute
// apportionment: under fences, warps idle so much that a couple of SMs
// (eight warps each, via context switching) can drive all 16 channels;
// under OrderLight the command throughput is high enough that the paper
// dedicates one SM per two channels. The sweep varies how many SMs the
// PIM kernel occupies and shows fence performance is flat (core time is
// all stall) while OrderLight speeds up with more front-end width.
func SensitivitySMs(cfg config.Config, sc Scale) (*Table, error) {
	return Run("sensitivity-sms", cfg, sc)
}

var smCounts = []int{2, 4, 8}

// smApportionments lists the (SMs, warps/SM) splits that divide the
// channel count evenly — the grid both the cell list and the table walk.
func smApportionments(cfg config.Config) [][2]int {
	var out [][2]int
	for _, sms := range smCounts {
		if cfg.Memory.Channels%sms != 0 {
			continue
		}
		out = append(out, [2]int{sms, cfg.Memory.Channels / sms})
	}
	return out
}

func sensitivitySMsCells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	spec, err := kernel.ByName("add")
	if err != nil {
		return nil, err
	}
	// Use the group-spread Add variant: with bank-group parallelism the
	// DRAM stops being the sole bound and front-end width shows.
	spread := kernel.WithSpread(spec)
	var cells []runner.Cell
	for _, ap := range smApportionments(cfg) {
		c := cfg
		c.GPU.PIMSMs = ap[0]
		c.GPU.WarpsPerSM = ap[1]
		for _, prim := range []config.Primitive{config.PrimitiveFence, config.PrimitiveOrderLight} {
			cells = append(cells, specCell(withPrimitive(c, prim), spread, sc.orDefault().BytesPerChannel))
		}
	}
	return cells, nil
}

func sensitivitySMsAssemble(cfg config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "sensitivity-sms", Title: "PIM-kernel SM apportionment (§6 baseline-limitations discussion)",
		Columns: []string{"SMs (warps/SM)", "Fence ms", "OL ms", "OL gain from SMs"},
		Notes: []string{
			"Fence runs are stall-bound and insensitive to front-end width; OrderLight converts extra SMs into command throughput until the DRAM bound.",
		},
	}
	cur := cursor{res: res}
	var olBase float64
	for _, ap := range smApportionments(cfg) {
		feMS := cur.next().Run.ExecMS()
		olMS := cur.next().Run.ExecMS()
		if olBase == 0 {
			olBase = olMS
		}
		t.AddRow(fmt.Sprintf("%d (%d)", ap[0], ap[1]),
			f4(feMS), f4(olMS), f2(olBase/olMS))
	}
	return t, nil
}

// SensitivityGranularity sweeps the offload size — the heart of the
// taxonomy argument (§3.5): fine-grained offload is only worth having if
// small computations still win. Fixed costs (memory-pipe fill, and the
// per-phase fence round trips) must amortize; OrderLight's break-even
// point against the GPU baseline sits at a far smaller offload than the
// fence's.
func SensitivityGranularity(cfg config.Config, sc Scale) (*Table, error) {
	return Run("sensitivity-granularity", cfg, sc)
}

var granularityBytes = []int64{4 << 10, 16 << 10, 64 << 10, 256 << 10}

func sensitivityGranularityCells(cfg config.Config, _ Scale) ([]runner.Cell, error) {
	var cells []runner.Cell
	for _, bytes := range granularityBytes {
		for _, prim := range []config.Primitive{config.PrimitiveFence, config.PrimitiveOrderLight} {
			cell, err := simCell(withPrimitive(cfg, prim), "add", Scale{BytesPerChannel: bytes})
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

func sensitivityGranularityAssemble(cfg config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "sensitivity-granularity", Title: "Offload granularity: PIM speedup vs kernel footprint",
		Columns: []string{"Bytes/channel", "GPU ms", "Fence ms", "OL ms", "Fence vs GPU", "OL vs GPU"},
		Notes: []string{
			"Fine-grained offload pays off only if small offloads win; OrderLight crosses break-even at a much smaller footprint than fences (§3.5).",
		},
	}
	cur := cursor{res: res}
	for _, bytes := range granularityBytes {
		feRes := cur.next()
		fe, k := feRes.Run, feRes.Kernel
		ol := cur.next().Run
		gpuMS := gpu.HostTime(cfg, k.HostBytes, k.HostOps).Milliseconds()
		t.AddRow(fmt.Sprintf("%d", bytes),
			f4(gpuMS), f4(fe.ExecMS()), f4(ol.ExecMS()),
			f2(gpuMS/fe.ExecMS()), f2(gpuMS/ol.ExecMS()))
	}
	return t, nil
}

package experiments

import (
	"context"
	"fmt"
	"strings"

	"orderlight/internal/config"
	"orderlight/internal/fault"
	"orderlight/internal/runner"
)

// The fault campaign deliberately breaks the simulator's ordering
// machinery — dropped fences/OrderLight packets, weakened drains,
// illegally reordered issues, delayed PIM visibility — and checks that
// the differential oracle classifies every injected run as either
// detected (wrong answer, flagged by verification) or benign (fault
// fired but the schedule happened to still be legal). An escape —
// a wrong answer the verifier missed, or a disagreement between the
// verifier and the independent oracle replay — is a simulator bug.
//
// The drop/fence/add point at full rate is the paper's Figure 5
// "No Fence" configuration reproduced as an injected fault: the
// campaign pins it as deterministically detected.

// campaignFloorBytes is the minimum per-channel footprint a campaign
// cell runs at. `make smoke` proves the no-ordering add kernel produces
// a wrong answer at exactly this footprint, so the pinned drop/fence
// case is guaranteed a detected verdict at any campaign scale.
const campaignFloorBytes = 32 * 1024

// campaignSeeds is how many fault seeds each (kernel, class, primitive)
// point sweeps; actual seed values are cfg.Run.Seed+i.
const campaignSeeds = 2

// campaignCase is one (class, primitive, rate) point of the campaign.
type campaignCase struct {
	class fault.Class
	prim  config.Primitive
	rate  float64
}

// campaignCases lays out the default campaign grid. Full-rate drops are
// the deterministic wrong-answer reproductions; half-rate weaken,
// reorder and delay probe partial corruption where benign outcomes are
// possible and the oracle must still never see an escape.
func campaignCases() []campaignCase {
	return []campaignCase{
		{fault.ClassDropOrdering, config.PrimitiveFence, 1},
		{fault.ClassDropOrdering, config.PrimitiveOrderLight, 1},
		{fault.ClassWeakenDrain, config.PrimitiveOrderLight, 0.5},
		{fault.ClassIllegalReorder, config.PrimitiveOrderLight, 0.5},
		{fault.ClassDelayVisibility, config.PrimitiveFence, 0.5},
		{fault.ClassDelayVisibility, config.PrimitiveOrderLight, 0.5},
	}
}

var campaignKernels = []string{"add", "daxpy"}

// faultCampaignCells enumerates the campaign grid: kernel × case ×
// seed. Verification must be on (the oracle's "detected" outcome is the
// verifier flagging the wrong answer) and the footprint is floored so
// full-rate ordering drops always corrupt.
func faultCampaignCells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	sc = sc.orDefault()
	if sc.BytesPerChannel < campaignFloorBytes {
		sc.BytesPerChannel = campaignFloorBytes
	}
	cfg.Run.Verify = true
	var cells []runner.Cell
	for _, name := range campaignKernels {
		for _, cc := range campaignCases() {
			for s := 0; s < campaignSeeds; s++ {
				c, err := simCell(withPrimitive(cfg, cc.prim).WithTSFraction("1/8"), name, sc)
				if err != nil {
					return nil, err
				}
				c.Fault = fault.Spec{Class: cc.class, Seed: cfg.Run.Seed + uint64(s), Rate: cc.rate}
				c.Key = fmt.Sprintf("%s/%v/%v/seed=%d", name, cc.class, cc.prim, c.Fault.Seed)
				cells = append(cells, c)
			}
		}
	}
	return cells, nil
}

// FaultSummary aggregates a campaign's verdicts for callers that gate
// on them (olfault's exit code, the zero-escape test).
type FaultSummary struct {
	Detected, Benign, Clean, Escapes int

	// PinnedDetected reports whether the paper's Figure 5 no-fence
	// wrong answer — the drop/fence/add cell at the base seed — came
	// back detected, as it deterministically must.
	PinnedDetected bool

	// EscapeKeys lists the cells (if any) whose verdicts were escapes.
	EscapeKeys []string
}

func (s FaultSummary) String() string {
	return fmt.Sprintf("detected=%d benign=%d clean=%d escapes=%d pinned-detected=%t",
		s.Detected, s.Benign, s.Clean, s.Escapes, s.PinnedDetected)
}

// pinnedKeyPart identifies the Figure 5 reproduction cell within the
// campaign at the given base seed.
func pinnedKeyPart(baseSeed uint64) string {
	return fmt.Sprintf("add/%v/%v/seed=%d", fault.ClassDropOrdering, config.PrimitiveFence, baseSeed)
}

// CampaignSummary tallies the verdicts of a campaign's results. Cells
// and results must correspond (same order), as RunEngine guarantees.
func CampaignSummary(cfg config.Config, cells []runner.Cell, res []runner.Result) FaultSummary {
	var s FaultSummary
	pinned := pinnedKeyPart(cfg.Run.Seed)
	for i, r := range res {
		if r.Fault == nil {
			continue
		}
		switch r.Fault.Outcome {
		case fault.OutcomeDetected:
			s.Detected++
			if i < len(cells) && strings.HasSuffix(cells[i].Key, pinned) {
				s.PinnedDetected = true
			}
		case fault.OutcomeBenign:
			s.Benign++
		case fault.OutcomeClean:
			s.Clean++
		default:
			s.Escapes++
			if i < len(cells) {
				s.EscapeKeys = append(s.EscapeKeys, cells[i].Key)
			}
		}
	}
	return s
}

// FaultCampaign runs the default campaign on a default engine and
// returns its rendered table plus the verdict summary.
func FaultCampaign(cfg config.Config, sc Scale) (*Table, FaultSummary, error) {
	return FaultCampaignEngine(context.Background(), runner.New(runner.Options{}), cfg, sc)
}

// FaultCampaignEngine is FaultCampaign on a caller-owned engine.
func FaultCampaignEngine(ctx context.Context, eng *runner.Engine, cfg config.Config, sc Scale) (*Table, FaultSummary, error) {
	cells, err := Cells("fault-campaign", cfg, sc)
	if err != nil {
		return nil, FaultSummary{}, err
	}
	res, err := eng.Run(ctx, cells)
	if err != nil {
		return nil, FaultSummary{}, fmt.Errorf("experiments: fault-campaign: %w", err)
	}
	t, err := Assemble("fault-campaign", cfg, sc, res)
	if err != nil {
		return nil, FaultSummary{}, err
	}
	t.Manifests = manifests(res)
	return t, CampaignSummary(cfg, cells, res), nil
}

// faultCampaignAssemble renders the campaign matrix. One row per cell,
// plus a summary note; escapes do not abort assembly (the table is the
// evidence), but olfault and the campaign test gate on them.
func faultCampaignAssemble(cfg config.Config, sc Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "fault-campaign", Title: "Ordering-fault injection campaign (differential oracle)",
		Columns: []string{"Kernel", "Class", "Primitive", "Seed", "Injections", "Wrong slots", "Outcome"},
		Notes: []string{
			"Outcomes: detected = wrong answer flagged by verification; benign = fault injected, answer still correct; escape = oracle/verifier disagreement (simulator bug).",
			"Pinned: drop/fence on add at full rate reproduces the paper's Figure 5 no-fence wrong answer and must always be detected.",
		},
	}
	cur := cursor{res: res}
	var sum FaultSummary
	pinned := pinnedKeyPart(cfg.Run.Seed)
	for _, name := range campaignKernels {
		for _, cc := range campaignCases() {
			for s := 0; s < campaignSeeds; s++ {
				r := cur.next()
				v := r.Fault
				if v == nil {
					return nil, fmt.Errorf("experiments: fault-campaign: cell %s/%v/%v missing verdict", name, cc.class, cc.prim)
				}
				t.AddRow(name, cc.class.String(), cc.prim.String(),
					fmt.Sprintf("%d", v.Report.Seed),
					fmt.Sprintf("%d", v.Report.Injections),
					fmt.Sprintf("%d", v.WrongSlots),
					v.Outcome.String())
				switch v.Outcome {
				case fault.OutcomeDetected:
					sum.Detected++
					key := fmt.Sprintf("%s/%v/%v/seed=%d", name, cc.class, cc.prim, v.Report.Seed)
					if key == pinned {
						sum.PinnedDetected = true
					}
				case fault.OutcomeBenign:
					sum.Benign++
				case fault.OutcomeClean:
					sum.Clean++
				default:
					sum.Escapes++
				}
			}
		}
	}
	t.Notes = append(t.Notes, "Campaign verdicts: "+sum.String())
	return t, nil
}

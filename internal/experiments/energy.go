package experiments

import (
	"fmt"

	"orderlight/internal/config"
	"orderlight/internal/runner"
	"orderlight/internal/stats"
)

// energyParams adapts the config's energy constants.
func energyParams(cfg config.Config) stats.EnergyParams {
	return stats.EnergyParams{
		ActNJ:       cfg.Energy.ActNJ,
		RdNJ:        cfg.Energy.RdNJ,
		WrNJ:        cfg.Energy.WrNJ,
		RefNJ:       cfg.Energy.RefNJ,
		PIMOpNJ:     cfg.Energy.PIMOpNJ,
		BackgroundW: cfg.Energy.BackgroundW,
		Channels:    cfg.Memory.Channels,
	}
}

// AblationEnergy compares memory-system energy across ordering
// disciplines. All disciplines move the same data, so dynamic energy is
// nearly identical; what separates them is background energy over their
// very different runtimes — the fence loses once on delay and again on
// energy, which the energy-delay product makes stark.
func AblationEnergy(cfg config.Config, sc Scale) (*Table, error) {
	return Run("ablation-energy", cfg, sc)
}

var energyPrimitives = []config.Primitive{
	config.PrimitiveFence, config.PrimitiveSeqno, config.PrimitiveOrderLight,
}

func ablationEnergyCells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	var cells []runner.Cell
	for _, prim := range energyPrimitives {
		cell, err := simCell(withPrimitive(cfg, prim), "add", sc)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

func ablationEnergyAssemble(cfg config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "ablation-energy", Title: "Memory-system energy by ordering discipline (Add kernel)",
		Columns: []string{"Primitive", "Exec ms", "Dynamic uJ", "Background uJ", "Total uJ", "EDP (nJ*s)"},
		Notes: []string{
			"Same data moved => same dynamic energy; fences pay background power over a several-fold longer runtime and lose squared on EDP.",
		},
	}
	p := energyParams(cfg)
	cur := cursor{res: res}
	for _, prim := range energyPrimitives {
		st := cur.next().Run
		e := st.EnergyBreakdown(p)
		dynamic := e.TotalNJ() - e.BackgroundNJ
		t.AddRow(prim.String(), f4(st.ExecMS()),
			f2(dynamic/1e3), f2(e.BackgroundNJ/1e3), f2(e.TotalUJ()),
			fmt.Sprintf("%.4g", st.EDP(p)))
	}
	return t, nil
}

package experiments

import (
	"fmt"

	"orderlight/internal/config"
	"orderlight/internal/gpu"
	"orderlight/internal/kernel"
	"orderlight/internal/runner"
)

// AblationSubPartitions varies the number of divergent L2 sub-partition
// paths the OrderLight packet must be copied across (Figure 9). The
// design claim under test: copy-and-merge keeps OrderLight cheap no
// matter how wide the divergence is, and correctness holds throughout.
func AblationSubPartitions(cfg config.Config, sc Scale) (*Table, error) {
	return Run("ablation-subpart", cfg, sc)
}

var subPartCounts = []int{1, 2, 4}

func ablationSubPartCells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	var cells []runner.Cell
	for _, nsub := range subPartCounts {
		c := withPrimitive(cfg, config.PrimitiveOrderLight)
		c.GPU.L2SubPartitions = nsub
		cell, err := simCell(c, "add", sc)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

func ablationSubPartAssemble(_ config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "ablation-subpart", Title: "OrderLight cost vs L2 sub-partition count (copy-and-merge)",
		Columns: []string{"Sub-partitions", "OL ms", "OL merges", "Correct"},
		Notes: []string{
			"Each packet is replicated across every sub-path serving its memory-group and merged at the convergence point; execution time should be essentially flat.",
		},
	}
	cur := cursor{res: res}
	for _, nsub := range subPartCounts {
		st := cur.next().Run
		t.AddRow(fmt.Sprintf("%d", nsub), f4(st.ExecMS()),
			fmt.Sprintf("%d", st.OLMerges), fmt.Sprintf("%v", st.Correct))
	}
	return t, nil
}

// AblationPlacement compares the paper's default operand placement (all
// structures in one memory-group, rows conflicting in one bank) against
// spreading tiles across every memory-group. Per-group ordering
// (§5.3.1) makes the spread safe: each tile's OrderLight packets carry
// only that tile's group ID, so independent tiles overlap across bank
// groups and row cycles hide behind each other.
func AblationPlacement(cfg config.Config, sc Scale) (*Table, error) {
	return Run("ablation-placement", cfg, sc)
}

func ablationPlacementCells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	spec, err := kernel.ByName("add")
	if err != nil {
		return nil, err
	}
	var cells []runner.Cell
	for _, spread := range []bool{false, true} {
		s := spec
		if spread {
			s = kernel.WithSpread(spec)
		}
		for _, prim := range []config.Primitive{config.PrimitiveFence, config.PrimitiveOrderLight} {
			cells = append(cells, specCell(withPrimitive(cfg, prim), s, sc.orDefault().BytesPerChannel))
		}
	}
	return cells, nil
}

func ablationPlacementAssemble(_ config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "ablation-placement", Title: "Operand placement: one memory-group vs tiles spread across groups",
		Columns: []string{"Placement", "Primitive", "Exec ms", "Cmd GC/s", "Row hit rate", "Correct"},
		Notes: []string{
			"Spreading helps OrderLight much more than fences: the fence still stalls the core per phase regardless of where operands live.",
		},
	}
	cur := cursor{res: res}
	for _, spread := range []bool{false, true} {
		label := "one group"
		if spread {
			label = "spread across groups"
		}
		for _, prim := range []config.Primitive{config.PrimitiveFence, config.PrimitiveOrderLight} {
			st := cur.next().Run
			t.AddRow(label, prim.String(), f4(st.ExecMS()), f2(st.CommandBW()),
				f2(st.RowHitRate()), fmt.Sprintf("%v", st.Correct))
		}
	}
	return t, nil
}

// AblationOoOHost runs the Add kernel on the §9 extension host: an
// out-of-order CPU core whose reservation stations issue memory
// operations in arbitrary order — a reordering source the GPU host does
// not have. The claims under test: without ordering the OoO host is
// (even more readily) functionally incorrect; fences serialize the
// window and pay the round trip; OrderLight needs only the
// dispatch-stage counter (the OoO analog of the operand collector).
func AblationOoOHost(cfg config.Config, sc Scale) (*Table, error) {
	return Run("ablation-ooo", cfg, sc)
}

var oooPrimitives = []config.Primitive{
	config.PrimitiveNone, config.PrimitiveFence,
	config.PrimitiveSeqno, config.PrimitiveOrderLight,
}

func ablationOoOCells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	var cells []runner.Cell
	for _, prim := range oooPrimitives {
		c := withPrimitive(cfg, prim)
		c.Host.Kind = config.HostCPU
		cell, err := simCell(c, "add", sc)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

func ablationOoOAssemble(_ config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "ablation-ooo", Title: "OoO-CPU host (§9): ordering disciplines under reservation-station reordering",
		Columns: []string{"Primitive", "Exec ms", "Cmd GC/s", "Stall cycles", "Correct"},
		Notes: []string{
			"The CPU core dispatches in order but issues memory out of order from its window; OrderLight's dispatch-stage counter plays the operand collector's role.",
		},
	}
	cur := cursor{res: res}
	for _, prim := range oooPrimitives {
		st := cur.next().Run
		t.AddRow(prim.String(), f4(st.ExecMS()), f2(st.CommandBW()),
			fmt.Sprintf("%d", st.StallCycles()), fmt.Sprintf("%v", st.Correct))
	}
	return t, nil
}

// AblationCounters exercises §5.3.1's cost-reduction note: limiting the
// number of per-(channel, group) OrderLight counters an SM implements.
// An unwatched pair's packet falls back to waiting for the whole
// collector to drain — correct but conservative. The sweep uses the
// group-spread Add kernel (several pairs live per SM) so a tiny budget
// actually bites.
func AblationCounters(cfg config.Config, sc Scale) (*Table, error) {
	return Run("ablation-counters", cfg, sc)
}

var counterBudgets = []int{1, 2, 4, 0}

func ablationCountersCells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	spec, err := kernel.ByName("add")
	if err != nil {
		return nil, err
	}
	spread := kernel.WithSpread(spec)
	var cells []runner.Cell
	for _, tags := range counterBudgets {
		c := withPrimitive(cfg, config.PrimitiveOrderLight)
		c.GPU.CollectorTags = tags
		cells = append(cells, specCell(c, spread, sc.orDefault().BytesPerChannel))
	}
	return cells, nil
}

func ablationCountersAssemble(_ config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "ablation-counters", Title: "OrderLight counter budget per SM (§5.3.1 hardware-cost knob)",
		Columns: []string{"Counters/SM", "OL ms", "OL stall cycles", "Correct"},
		Notes: []string{
			"Fewer counters never break correctness; they only make injection more conservative. Measured: even a single counter per SM costs nothing here, because a pair's counter frees the moment its phase drains — evidence the paper's cost-reduction knob is essentially free.",
		},
	}
	cur := cursor{res: res}
	for _, tags := range counterBudgets {
		st := cur.next().Run
		label := fmt.Sprintf("%d", tags)
		if tags == 0 {
			label = "unlimited"
		}
		t.AddRow(label, f4(st.ExecMS()), fmt.Sprintf("%d", st.OLStallCycles),
			fmt.Sprintf("%v", st.Correct))
	}
	return t, nil
}

// AblationNoC exercises the §9 note that networks-on-chip between cache
// levels may unorder PIM requests: the SM-to-L2 interconnect is given
// several adaptively-routed parallel routes, turning it into one more
// divergence point. OrderLight packets are replicated across routes and
// merged at the L2 (path-divergence ideas "are applicable here"), so
// correctness holds at every width while the unordered configuration
// stays broken.
func AblationNoC(cfg config.Config, sc Scale) (*Table, error) {
	return Run("ablation-noc", cfg, sc)
}

var nocRoutes = []int{1, 2, 4}

func ablationNoCCells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	var cells []runner.Cell
	for _, routes := range nocRoutes {
		for _, prim := range []config.Primitive{config.PrimitiveNone, config.PrimitiveOrderLight} {
			c := withPrimitive(cfg, prim)
			c.GPU.IcntRoutes = routes
			cell, err := simCell(c, "add", sc)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

func ablationNoCAssemble(_ config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "ablation-noc", Title: "Adaptive multi-route NoC (§9): OrderLight across interconnect divergence",
		Columns: []string{"NoC routes", "Primitive", "Exec ms", "Cmd GC/s", "Correct"},
		Notes: []string{
			"Copy-and-merge carries the packet across adaptive routes exactly as it does across L2 sub-partitions; the cost stays negligible.",
		},
	}
	cur := cursor{res: res}
	for _, routes := range nocRoutes {
		for _, prim := range []config.Primitive{config.PrimitiveNone, config.PrimitiveOrderLight} {
			st := cur.next().Run
			t.AddRow(fmt.Sprintf("%d", routes), prim.String(), f4(st.ExecMS()),
				f2(st.CommandBW()), fmt.Sprintf("%v", st.Correct))
		}
	}
	return t, nil
}

// AblationRefresh quantifies what leaving DRAM refresh out of the model
// costs: the same OrderLight run with all-bank refresh enabled (tREFI
// 3.9 us, tRFC 350 ns — a ~9% duty cycle upper bound) versus disabled
// (the paper's setup).
func AblationRefresh(cfg config.Config, sc Scale) (*Table, error) {
	return Run("ablation-refresh", cfg, sc)
}

func ablationRefreshCells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	var cells []runner.Cell
	for _, on := range []bool{false, true} {
		c := withPrimitive(cfg, config.PrimitiveOrderLight)
		c.Memory.RefreshEnabled = on
		cell, err := simCell(c, "add", sc)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

func ablationRefreshAssemble(_ config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "ablation-refresh", Title: "All-bank refresh impact on an OrderLight run",
		Columns: []string{"Refresh", "Exec ms", "Cmd GC/s", "Refreshes", "Correct"},
		Notes: []string{
			"Refresh steals a bounded fraction of memory cycles; it does not interact with the ordering machinery, which is why the paper (and the default config) omit it.",
		},
	}
	cur := cursor{res: res}
	for _, on := range []bool{false, true} {
		st := cur.next().Run
		label := "off (paper setup)"
		if on {
			label = "on (tREFI 3.9us, tRFC 350ns)"
		}
		t.AddRow(label, f4(st.ExecMS()), f2(st.CommandBW()),
			fmt.Sprintf("%d", st.Refreshes), fmt.Sprintf("%v", st.Correct))
	}
	return t, nil
}

// AblationSched isolates what FR-FCFS contributes: under strict FCFS
// the scheduler never hoists row hits, so bandwidth drops for every
// primitive — and the no-primitive configuration loses the very
// reordering that makes it incorrect (it may verify by accident, which
// is the trap the paper's footnote about relying on scheduler behavior
// warns against).
func AblationSched(cfg config.Config, sc Scale) (*Table, error) {
	return Run("ablation-sched", cfg, sc)
}

var schedPolicies = []config.SchedPolicy{config.SchedFRFCFS, config.SchedFCFS}

func ablationSchedCells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	var cells []runner.Cell
	for _, pol := range schedPolicies {
		for _, prim := range []config.Primitive{config.PrimitiveNone, config.PrimitiveOrderLight} {
			c := withPrimitive(cfg, prim)
			c.Memory.Sched = pol
			cell, err := simCell(c, "add", sc)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

func ablationSchedAssemble(_ config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "ablation-sched", Title: "Scheduler policy: FR-FCFS vs strict FCFS",
		Columns: []string{"Scheduler", "Primitive", "Exec ms", "Cmd GC/s", "Row hit rate", "Correct"},
		Notes: []string{
			"FR-FCFS's row-hit-first policy is simultaneously where the bandwidth comes from and why unordered PIM commands break.",
		},
	}
	cur := cursor{res: res}
	for _, pol := range schedPolicies {
		for _, prim := range []config.Primitive{config.PrimitiveNone, config.PrimitiveOrderLight} {
			st := cur.next().Run
			t.AddRow(string(pol), prim.String(), f4(st.ExecMS()), f2(st.CommandBW()),
				f2(st.RowHitRate()), fmt.Sprintf("%v", st.Correct))
		}
	}
	return t, nil
}

// AblationHostConcurrency demonstrates the fine-grained-arbitration
// benefit OrderLight is built for (§3.4/§5.3.1): concurrent host loads
// interleave with an OrderLight-ordered PIM kernel. Host traffic mapped
// to a different memory-group is never gated by the PIM kernel's
// ordering flags; traffic aimed at the PIM group is (conservatively)
// ordered and pays for it.
func AblationHostConcurrency(cfg config.Config, sc Scale) (*Table, error) {
	return Run("ablation-host", cfg, sc)
}

// ablationHostScenarios pairs each row label with its traffic load.
var ablationHostScenarios = []struct {
	label   string
	traffic gpu.HostTraffic
}{
	{"PIM only", gpu.HostTraffic{}},
	{"host in other group (FGA)", gpu.HostTraffic{PerChannel: 64, EveryN: 50, Group: 1}},
	{"host in PIM group (conservatively ordered)", gpu.HostTraffic{PerChannel: 64, EveryN: 50, Group: 0}},
}

func ablationHostCells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	var cells []runner.Cell
	for _, s := range ablationHostScenarios {
		cell, err := simCell(withPrimitive(cfg, config.PrimitiveOrderLight), "add", sc)
		if err != nil {
			return nil, err
		}
		cell.Traffic = s.traffic
		cells = append(cells, cell)
	}
	return cells, nil
}

func ablationHostAssemble(_ config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "ablation-host", Title: "Concurrent host traffic under fine-grained arbitration",
		Columns: []string{"Scenario", "PIM ms", "Host mean latency (core cycles)", "Host loads served"},
		Notes: []string{
			"The memory-group ID in the OrderLight packet (Figure 8) exists so non-PIM requests in other groups are never constrained.",
		},
	}
	cur := cursor{res: res}
	for _, s := range ablationHostScenarios {
		r := cur.next()
		t.AddRow(s.label, f4(r.Run.ExecMS()), f1(r.HostLatency), fmt.Sprintf("%d", r.HostServed))
	}
	return t, nil
}

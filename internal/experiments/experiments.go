package experiments

import (
	"fmt"

	"orderlight/internal/config"
	"orderlight/internal/isa"
	"orderlight/internal/kernel"
	"orderlight/internal/runner"
)

// Scale controls how much data each experiment pushes per channel. The
// default keeps every experiment comfortably under a second of wall
// time; benchmarks may raise it.
type Scale struct {
	BytesPerChannel int64
}

// DefaultScale is used when the caller passes a zero Scale. 256 KiB per
// channel per data structure keeps the 220-cycle memory-pipe fill under
// a few percent of each measurement while the full suite still runs in
// well under a minute.
var DefaultScale = Scale{BytesPerChannel: 256 * 1024}

func (s Scale) orDefault() Scale {
	if s.BytesPerChannel <= 0 {
		return DefaultScale
	}
	return s
}

// TSFractions are the temporary-storage sizes every figure sweeps.
var TSFractions = []string{"1/16", "1/8", "1/4", "1/2"}

// simCell declares one standard simulation: a named Table 2 kernel
// under one configuration at the experiment's scale.
func simCell(cfg config.Config, name string, sc Scale) (runner.Cell, error) {
	spec, err := kernel.ByName(name)
	if err != nil {
		return runner.Cell{}, err
	}
	return specCell(cfg, spec, sc.orDefault().BytesPerChannel), nil
}

// specCell declares a simulation of an explicit spec and footprint.
func specCell(cfg config.Config, spec kernel.Spec, bytes int64) runner.Cell {
	return runner.Cell{
		Key:   fmt.Sprintf("%s/%v/ts=%dB", spec.Name, cfg.Run.Primitive, cfg.PIM.TSBytes),
		Cfg:   cfg,
		Spec:  spec,
		Bytes: bytes,
	}
}

// cursor walks cell results in declaration order during assembly.
type cursor struct {
	res []runner.Result
	i   int
}

func (c *cursor) next() runner.Result {
	r := c.res[c.i]
	c.i++
	return r
}

// withPrimitive returns cfg configured for the given primitive.
func withPrimitive(cfg config.Config, p config.Primitive) config.Config {
	cfg.Run.Primitive = p
	return cfg
}

// Table1 renders the simulator configuration (paper Table 1).
func Table1(cfg config.Config, sc Scale) (*Table, error) { return Run("table1", cfg, sc) }

func table1Assemble(cfg config.Config, _ Scale, _ []runner.Result) (*Table, error) {
	t := &Table{ID: "table1", Title: "Simulator details", Columns: []string{"Parameter", "Value"}}
	for _, row := range cfg.Table1() {
		t.AddRow(row[0], row[1])
	}
	t.AddRow("PIM temporary storage", fmt.Sprintf("%d B (N=%d commands)", cfg.PIM.TSBytes, cfg.CommandsPerTile()))
	t.AddRow("PIM bandwidth multiplier", fmt.Sprintf("%dx", cfg.PIM.BMF))
	t.AddRow("Host front end", string(cfg.Host.Kind))
	t.AddRow("Ordering primitive", cfg.Run.Primitive.String())
	t.AddRow("Interconnect routes", fmt.Sprintf("%d", cfg.GPU.IcntRoutes))
	refresh := "off"
	if cfg.Memory.RefreshEnabled {
		refresh = fmt.Sprintf("tREFI=%d tRFC=%d", cfg.Memory.REFI, cfg.Memory.RFC)
	}
	t.AddRow("Refresh", refresh)
	return t, nil
}

// Table2 renders the workload suite (paper Table 2).
func Table2(cfg config.Config, sc Scale) (*Table, error) { return Run("table2", cfg, sc) }

func table2Assemble(config.Config, Scale, []runner.Result) (*Table, error) {
	t := &Table{
		ID: "table2", Title: "Summary of workloads",
		Columns: []string{"Kernel", "Description", "Compute:Memory", ">1 data structure?"},
	}
	for _, s := range kernel.All() {
		multi := "No"
		if s.MultiDS {
			multi = "Yes"
		}
		t.AddRow(s.Name, s.Desc, s.ComputeRatio, multi)
	}
	return t, nil
}

// Fig5 measures fence overhead for the vector_add kernel: execution time
// and waiting cycles per fence across TS sizes, with the no-fence point
// included to show it is fast but functionally incorrect.
func Fig5(cfg config.Config, sc Scale) (*Table, error) { return Run("fig5", cfg, sc) }

func fig5Cells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	var cells []runner.Cell
	c, err := simCell(withPrimitive(cfg, config.PrimitiveNone).WithTSFraction("1/8"), "add", sc)
	if err != nil {
		return nil, err
	}
	cells = append(cells, c)
	for _, ts := range TSFractions {
		c, err := simCell(withPrimitive(cfg, config.PrimitiveFence).WithTSFraction(ts), "add", sc)
		if err != nil {
			return nil, err
		}
		cells = append(cells, c)
	}
	return cells, nil
}

func fig5Assemble(_ config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "fig5", Title: "Fence overhead for vector_add",
		Columns: []string{"Config", "Exec time (ms)", "Wait cycles/fence", "Functionally correct"},
		Notes: []string{
			"Paper: fences slow vector_add by 4.5x-25x over the (incorrect) no-fence run; 165-245 wait cycles per fence.",
		},
	}
	cur := cursor{res: res}
	none := cur.next().Run
	t.AddRow("No Fence", f4(none.ExecMS()), "0", fmt.Sprintf("%v", none.Correct))
	for _, ts := range TSFractions {
		st := cur.next().Run
		t.AddRow("Fence "+ts+" RB", f4(st.ExecMS()), f1(st.WaitCyclesPerFence()), fmt.Sprintf("%v", st.Correct))
	}
	return t, nil
}

// streamGridCells declares the shared fence/OrderLight grid over the
// five stream kernels and every TS size — the cell list Figures 10a and
// 10b both consume (declaration order: kernel, then TS, then fence
// before OrderLight).
func streamGridCells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	var cells []runner.Cell
	for _, s := range kernel.Stream() {
		for _, ts := range TSFractions {
			for _, prim := range []config.Primitive{config.PrimitiveFence, config.PrimitiveOrderLight} {
				cells = append(cells, specCell(withPrimitive(cfg, prim).WithTSFraction(ts), s, sc.orDefault().BytesPerChannel))
			}
		}
	}
	return cells, nil
}

// Fig10a measures PIM command and data bandwidth for the five stream
// kernels, fence versus OrderLight, across TS sizes (BMF 16).
func Fig10a(cfg config.Config, sc Scale) (*Table, error) { return Run("fig10a", cfg, sc) }

func fig10aAssemble(_ config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "fig10a", Title: "Stream: PIM command and data bandwidth, fence vs OrderLight",
		Columns: []string{"Kernel", "TS", "Fence GC/s", "OL GC/s", "Fence GB/s", "OL GB/s", "OL/Fence"},
		Notes: []string{
			"Paper: OrderLight command bandwidth averages 2.6x fence on Add; OL data bandwidth exceeds the 405 GB/s external peak by ~4.3x on average.",
		},
	}
	cur := cursor{res: res}
	var sumRatio float64
	var nRatio int
	for _, s := range kernel.Stream() {
		for _, ts := range TSFractions {
			fe := cur.next().Run
			ol := cur.next().Run
			ratio := ol.CommandBW() / fe.CommandBW()
			sumRatio += ratio
			nRatio++
			t.AddRow(s.Name, ts+" RB",
				f2(fe.CommandBW()), f2(ol.CommandBW()),
				f1(fe.DataBW()), f1(ol.DataBW()),
				f2(ratio))
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("Measured mean OL/fence command-bandwidth ratio: %.2fx", sumRatio/float64(nRatio)))
	return t, nil
}

// Fig10b measures execution time and core stall cycles for the stream
// kernels: GPU baseline, fence, OrderLight.
func Fig10b(cfg config.Config, sc Scale) (*Table, error) { return Run("fig10b", cfg, sc) }

func fig10bAssemble(cfg config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "fig10b", Title: "Stream: execution time and core stalls (GPU / fence / OrderLight)",
		Columns: []string{"Kernel", "TS", "GPU ms", "Fence ms", "OL ms", "Fence stalls", "OL stalls", "OL speedup vs GPU"},
		Notes: []string{
			"Paper: fences show little benefit over the GPU except at large TS (2-3.4x); OrderLight beats the GPU at every TS by 3.5x-7.4x on average.",
		},
	}
	cur := cursor{res: res}
	for _, s := range kernel.Stream() {
		for _, ts := range TSFractions {
			feRes := cur.next()
			fe, k := feRes.Run, feRes.Kernel
			ol := cur.next().Run
			gpuMS := k.HostTime(cfg).Milliseconds()
			t.AddRow(s.Name, ts+" RB",
				f4(gpuMS), f4(fe.ExecMS()), f4(ol.ExecMS()),
				fmt.Sprintf("%d", fe.StallCycles()), fmt.Sprintf("%d", ol.StallCycles()),
				f2(gpuMS/ol.ExecMS()))
		}
	}
	return t, nil
}

// Fig11 derives the DRAM-timing bound on PIM command bandwidth: opening
// a row, issuing 8 column writes, and switching to a conflicting row
// costs tRCDW + 7*tCCDL + tWTP + tRP memory cycles, and a two-vector
// store microkernel measured on the full machine approaches that peak
// under OrderLight.
func Fig11(cfg config.Config, sc Scale) (*Table, error) { return Run("fig11", cfg, sc) }

// fig11PQSpec is the two-vector store pattern (copy's store side is the
// closest Table 2 kernel; a dedicated p/q spec isolates the bound).
func fig11PQSpec() kernel.Spec {
	return kernel.Spec{
		Name: "fig11_pq", Desc: "store p then store q per tile", ComputeRatio: "0:2",
		DataStructs: 2, MultiDS: true,
		Phases: []kernel.PhaseSpec{
			{Name: "store p", Kind: isa.KindPIMStore, Vec: 0, CmdsPerN: 1},
			{Name: "store q", Kind: isa.KindPIMStore, Vec: 1, CmdsPerN: 1},
		},
	}
}

func fig11Cells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	c := withPrimitive(cfg, config.PrimitiveOrderLight).WithTSFraction("1/8")
	// The measurement needs enough bursts that the 220-cycle pipe fill
	// is amortized; enforce a floor on the footprint.
	bytes := sc.orDefault().BytesPerChannel
	if bytes < 256*1024 {
		bytes = 256 * 1024
	}
	return []runner.Cell{specCell(c, fig11PQSpec(), bytes)}, nil
}

func fig11Assemble(cfg config.Config, _ Scale, res []runner.Result) (*Table, error) {
	tm := cfg.Memory.Timing
	burst := 8
	cycles := tm.RCDW + (burst-1)*tm.CCDL + tm.WTP + tm.RP
	memHz := float64(cfg.Memory.MemFreqMHz) * 1e6
	peak := float64(burst) / float64(cycles) * memHz * float64(cfg.Memory.Channels) / 1e9

	t := &Table{
		ID: "fig11", Title: "DRAM timing bound for 8 writes between conflicting rows",
		Columns: []string{"Quantity", "Value"},
		Notes: []string{
			"Paper: tRCDW(9) + 7xtCCDL(14) + tWTP(9) + tRP(12) = 44 cycles per 8 commands, ~2.3 GC/s peak; OrderLight measures ~2.1 GC/s.",
		},
	}
	t.AddRow("row cycle (mem cycles)", fmt.Sprintf("%d", cycles))
	t.AddRow("commands per row cycle", fmt.Sprintf("%d", burst))
	t.AddRow("analytic peak (GC/s, all channels)", f2(peak))

	st := res[0].Run
	t.AddRow("measured OrderLight (GC/s)", f2(st.CommandBW()))
	t.AddRow("measured / analytic peak", f2(st.CommandBW()/peak))
	return t, nil
}

// Fig12 measures the application kernels: fence vs OrderLight execution
// time, the speedup, and ordering primitives per PIM instruction.
func Fig12(cfg config.Config, sc Scale) (*Table, error) { return Run("fig12", cfg, sc) }

func fig12Cells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	var cells []runner.Cell
	for _, s := range kernel.Apps() {
		for _, ts := range TSFractions {
			for _, prim := range []config.Primitive{config.PrimitiveFence, config.PrimitiveOrderLight} {
				cells = append(cells, specCell(withPrimitive(cfg, prim).WithTSFraction(ts), s, sc.orDefault().BytesPerChannel))
			}
		}
	}
	return cells, nil
}

func fig12Assemble(_ config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "fig12", Title: "Applications: OrderLight speedup over fence and primitive rate",
		Columns: []string{"Kernel", "TS", "Fence ms", "OL ms", "Speedup", "Primitives/PIM instr"},
		Notes: []string{
			"Paper: OrderLight delivers 5.5x-8.5x over fence across the suite; FC/KMeans/Gen_Fil keep high primitive rates at large TS and hence large wins.",
		},
	}
	cur := cursor{res: res}
	var minSp, maxSp float64
	for _, s := range kernel.Apps() {
		for _, ts := range TSFractions {
			fe := cur.next().Run
			ol := cur.next().Run
			sp := fe.ExecMS() / ol.ExecMS()
			if minSp == 0 || sp < minSp {
				minSp = sp
			}
			if sp > maxSp {
				maxSp = sp
			}
			t.AddRow(s.Name, ts+" RB", f4(fe.ExecMS()), f4(ol.ExecMS()), f2(sp), f4(ol.PrimitivesPerPIMInstr()))
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("Measured speedup range: %.1fx-%.1fx", minSp, maxSp))
	return t, nil
}

// Fig13 sweeps the bandwidth multiplication factor for the Add kernel:
// fence vs OrderLight vs the GPU baseline at BMF 4, 8, 16.
func Fig13(cfg config.Config, sc Scale) (*Table, error) { return Run("fig13", cfg, sc) }

var fig13BMFs = []int{4, 8, 16}

func fig13Cells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	var cells []runner.Cell
	for _, bmf := range fig13BMFs {
		c := cfg
		c.PIM.BMF = bmf
		for _, ts := range TSFractions {
			for _, prim := range []config.Primitive{config.PrimitiveFence, config.PrimitiveOrderLight} {
				cell, err := simCell(withPrimitive(c, prim).WithTSFraction(ts), "add", sc)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

func fig13Assemble(cfg config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "fig13", Title: "Add kernel under different bandwidth multiplication factors",
		Columns: []string{"BMF", "TS", "GPU ms", "Fence ms", "OL ms", "OL/fence"},
		Notes: []string{
			"Paper: OrderLight beats fence by 1.9x-3.1x across BMFs; fence is worse than or comparable to the GPU in 8 of 12 cases, OrderLight better in 10 of 12.",
		},
	}
	cur := cursor{res: res}
	for _, bmf := range fig13BMFs {
		c := cfg
		c.PIM.BMF = bmf
		for _, ts := range TSFractions {
			feRes := cur.next()
			fe, k := feRes.Run, feRes.Kernel
			ol := cur.next().Run
			t.AddRow(fmt.Sprintf("%dx", bmf), ts+" RB",
				f4(k.HostTime(c).Milliseconds()), f4(fe.ExecMS()), f4(ol.ExecMS()),
				f2(fe.ExecMS()/ol.ExecMS()))
		}
	}
	return t, nil
}

package experiments

import (
	"fmt"
	"sort"
	"sync"

	"orderlight/internal/config"
)

// Runner is the signature every experiment driver shares.
type Runner func(config.Config, Scale) (*Table, error)

// registry maps experiment IDs to their drivers. IDs match the paper's
// table/figure numbering plus the repository's own ablations.
var registry = map[string]struct {
	run   Runner
	title string
}{
	"table1":                  {Table1, "simulator configuration (paper Table 1)"},
	"table2":                  {Table2, "workload suite (paper Table 2)"},
	"fig5":                    {Fig5, "fence overhead for vector_add (paper Figure 5)"},
	"fig10a":                  {Fig10a, "stream command/data bandwidth (paper Figure 10a)"},
	"fig10b":                  {Fig10b, "stream execution time and stalls (paper Figure 10b)"},
	"fig11":                   {Fig11, "DRAM-timing peak command bandwidth (paper Figure 11)"},
	"fig12":                   {Fig12, "application speedups and primitive rates (paper Figure 12)"},
	"fig13":                   {Fig13, "bandwidth-multiplication-factor sweep (paper Figure 13)"},
	"ablation-subpart":        {AblationSubPartitions, "ablation: L2 sub-partition count vs copy-and-merge cost"},
	"ablation-host":           {AblationHostConcurrency, "ablation: concurrent host traffic under fine-grained arbitration"},
	"ablation-placement":      {AblationPlacement, "ablation: operand placement across memory-groups (per-group ordering)"},
	"ablation-ooo":            {AblationOoOHost, "ablation: OoO-CPU host under reservation-station reordering (§9)"},
	"ablation-counters":       {AblationCounters, "ablation: per-SM OrderLight counter budget (§5.3.1)"},
	"ablation-energy":         {AblationEnergy, "ablation: memory-system energy and EDP by ordering discipline"},
	"ablation-noc":            {AblationNoC, "ablation: adaptive multi-route NoC divergence (§9)"},
	"ablation-refresh":        {AblationRefresh, "ablation: all-bank DRAM refresh impact"},
	"ablation-sched":          {AblationSched, "ablation: FR-FCFS vs strict FCFS scheduling"},
	"related-seqno":           {RelatedSeqno, "related work: sequence-number ordering with credits (Kim et al., §8.1)"},
	"sensitivity-sms":         {SensitivitySMs, "sensitivity: PIM-kernel SM apportionment (§6)"},
	"taxonomy-arbitration":    {TaxonomyArbitration, "taxonomy: host QoS under fine vs coarse arbitration (§3.2)"},
	"validation-hostbw":       {ValidationHostBW, "validation: measured host streaming bandwidth vs roofline assumption"},
	"sensitivity-granularity": {SensitivityGranularity, "sensitivity: offload granularity break-even (§3.5)"},
}

// IDs lists every experiment, paper figures first, then ablations,
// alphabetically within each class.
func IDs() []string {
	var figs, abl []string
	for id := range registry {
		if len(id) > 8 && id[:8] == "ablation" {
			abl = append(abl, id)
		} else {
			figs = append(figs, id)
		}
	}
	sort.Strings(figs)
	sort.Strings(abl)
	return append(figs, abl...)
}

// Title returns an experiment's one-line description.
func Title(id string) string { return registry[id].title }

// Run executes one experiment by ID.
func Run(id string, cfg config.Config, sc Scale) (*Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return e.run(cfg, sc)
}

// RunAll executes every experiment in IDs() order. Experiments are
// independent simulations, so they run concurrently (bounded by
// GOMAXPROCS via the runtime); results come back in IDs() order and any
// error aborts with the first failing experiment named.
func RunAll(cfg config.Config, sc Scale) ([]*Table, error) {
	ids := IDs()
	out := make([]*Table, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			t, err := Run(id, cfg, sc)
			if err != nil {
				errs[i] = fmt.Errorf("experiments: %s: %w", id, err)
				return
			}
			out[i] = t
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

package experiments

import (
	"context"
	"fmt"
	"sort"

	"orderlight/internal/config"
	"orderlight/internal/obs"
	"orderlight/internal/olerrors"
	"orderlight/internal/runner"
)

// Runner is the signature every experiment driver shares.
type Runner func(config.Config, Scale) (*Table, error)

// decl is the declarative form of an experiment: cells enumerates the
// grid of independent simulations, assemble turns their results —
// delivered in declaration order — into the rendered table. The split
// is what lets the runner engine execute every cell of every experiment
// on one worker pool while output stays byte-identical to a sequential
// run.
type decl struct {
	title    string
	cells    func(config.Config, Scale) ([]runner.Cell, error)
	assemble func(config.Config, Scale, []runner.Result) (*Table, error)
}

// noCells is the cell enumerator of purely descriptive experiments
// (Table 1 and Table 2 render configuration, not simulation).
func noCells(config.Config, Scale) ([]runner.Cell, error) { return nil, nil }

// registry maps experiment IDs to their declarations. IDs match the
// paper's table/figure numbering plus the repository's own ablations.
var registry = map[string]decl{
	"table1":                  {"simulator configuration (paper Table 1)", noCells, table1Assemble},
	"table2":                  {"workload suite (paper Table 2)", noCells, table2Assemble},
	"fault-campaign":          {"ordering-fault injection campaign with differential oracle", faultCampaignCells, faultCampaignAssemble},
	"fig5":                    {"fence overhead for vector_add (paper Figure 5)", fig5Cells, fig5Assemble},
	"fig10a":                  {"stream command/data bandwidth (paper Figure 10a)", streamGridCells, fig10aAssemble},
	"fig10b":                  {"stream execution time and stalls (paper Figure 10b)", streamGridCells, fig10bAssemble},
	"fig11":                   {"DRAM-timing peak command bandwidth (paper Figure 11)", fig11Cells, fig11Assemble},
	"fig12":                   {"application speedups and primitive rates (paper Figure 12)", fig12Cells, fig12Assemble},
	"fig13":                   {"bandwidth-multiplication-factor sweep (paper Figure 13)", fig13Cells, fig13Assemble},
	"ablation-subpart":        {"ablation: L2 sub-partition count vs copy-and-merge cost", ablationSubPartCells, ablationSubPartAssemble},
	"ablation-host":           {"ablation: concurrent host traffic under fine-grained arbitration", ablationHostCells, ablationHostAssemble},
	"ablation-placement":      {"ablation: operand placement across memory-groups (per-group ordering)", ablationPlacementCells, ablationPlacementAssemble},
	"ablation-ooo":            {"ablation: OoO-CPU host under reservation-station reordering (§9)", ablationOoOCells, ablationOoOAssemble},
	"ablation-counters":       {"ablation: per-SM OrderLight counter budget (§5.3.1)", ablationCountersCells, ablationCountersAssemble},
	"ablation-energy":         {"ablation: memory-system energy and EDP by ordering discipline", ablationEnergyCells, ablationEnergyAssemble},
	"ablation-noc":            {"ablation: adaptive multi-route NoC divergence (§9)", ablationNoCCells, ablationNoCAssemble},
	"ablation-refresh":        {"ablation: all-bank DRAM refresh impact", ablationRefreshCells, ablationRefreshAssemble},
	"ablation-sched":          {"ablation: FR-FCFS vs strict FCFS scheduling", ablationSchedCells, ablationSchedAssemble},
	"related-seqno":           {"related work: sequence-number ordering with credits (Kim et al., §8.1)", relatedSeqnoCells, relatedSeqnoAssemble},
	"sensitivity-sms":         {"sensitivity: PIM-kernel SM apportionment (§6)", sensitivitySMsCells, sensitivitySMsAssemble},
	"taxonomy-arbitration":    {"taxonomy: host QoS under fine vs coarse arbitration (§3.2)", taxonomyArbitrationCells, taxonomyArbitrationAssemble},
	"validation-hostbw":       {"validation: measured host streaming bandwidth vs roofline assumption", validationHostBWCells, validationHostBWAssemble},
	"sensitivity-granularity": {"sensitivity: offload granularity break-even (§3.5)", sensitivityGranularityCells, sensitivityGranularityAssemble},
}

// IDs lists every experiment, paper figures first, then ablations,
// alphabetically within each class.
func IDs() []string {
	var figs, abl []string
	for id := range registry {
		if len(id) > 8 && id[:8] == "ablation" {
			abl = append(abl, id)
		} else {
			figs = append(figs, id)
		}
	}
	sort.Strings(figs)
	sort.Strings(abl)
	return append(figs, abl...)
}

// Title returns an experiment's one-line description.
func Title(id string) string { return registry[id].title }

// Known reports whether id names a registered experiment. It lets
// admission layers reject bad IDs before a job is queued.
func Known(id string) bool { _, ok := registry[id]; return ok }

// Cells enumerates an experiment's independent simulation cells, with
// every cell key prefixed by the experiment ID. An unknown ID is
// reported wrapping olerrors.ErrUnknownExperiment.
func Cells(id string, cfg config.Config, sc Scale) ([]runner.Cell, error) {
	d, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: %w %q (known: %v)", olerrors.ErrUnknownExperiment, id, IDs())
	}
	cells, err := d.cells(cfg, sc)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	for i := range cells {
		cells[i].Key = id + "/" + cells[i].Key
	}
	return cells, nil
}

// Assemble renders an experiment's table from its cell results (in
// declaration order, as the runner returns them).
func Assemble(id string, cfg config.Config, sc Scale, res []runner.Result) (*Table, error) {
	d, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: %w %q (known: %v)", olerrors.ErrUnknownExperiment, id, IDs())
	}
	t, err := d.assemble(cfg, sc, res)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	return t, nil
}

// RunEngine executes one experiment by ID on the given engine.
func RunEngine(ctx context.Context, eng *runner.Engine, id string, cfg config.Config, sc Scale) (*Table, error) {
	cells, err := Cells(id, cfg, sc)
	if err != nil {
		return nil, err
	}
	res, err := eng.Run(ctx, cells)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	t, err := Assemble(id, cfg, sc, res)
	if err != nil {
		return nil, err
	}
	t.Manifests = manifests(res)
	return t, nil
}

// manifests collects the non-nil provenance records of a result slice,
// preserving cell declaration order.
func manifests(res []runner.Result) []*obs.Manifest {
	var out []*obs.Manifest
	for _, r := range res {
		if r.Manifest != nil {
			out = append(out, r.Manifest)
		}
	}
	return out
}

// Run executes one experiment by ID with a default engine (full
// parallelism, kernel cache on). Results are deterministic: cell
// simulations are independent and reassembly follows declaration order.
func Run(id string, cfg config.Config, sc Scale) (*Table, error) {
	return RunEngine(context.Background(), runner.New(runner.Options{}), id, cfg, sc)
}

// RunAllEngine executes every experiment in IDs() order on the given
// engine. All experiments' cells are flattened into one list first, so
// the pool stays saturated across experiment boundaries and the kernel
// cache is shared by the whole sweep; tables come back in IDs() order.
func RunAllEngine(ctx context.Context, eng *runner.Engine, cfg config.Config, sc Scale) ([]*Table, error) {
	ids := IDs()
	var all []runner.Cell
	spans := make([][2]int, len(ids))
	for i, id := range ids {
		cells, err := Cells(id, cfg, sc)
		if err != nil {
			return nil, err
		}
		spans[i] = [2]int{len(all), len(all) + len(cells)}
		all = append(all, cells...)
	}
	res, err := eng.Run(ctx, all)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	out := make([]*Table, len(ids))
	for i, id := range ids {
		span := res[spans[i][0]:spans[i][1]]
		t, err := Assemble(id, cfg, sc, span)
		if err != nil {
			return nil, err
		}
		t.Manifests = manifests(span)
		out[i] = t
	}
	return out, nil
}

// RunAll executes every experiment with a default engine. Output is
// byte-identical to a sequential (parallelism 1) sweep.
func RunAll(cfg config.Config, sc Scale) ([]*Table, error) {
	return RunAllEngine(context.Background(), runner.New(runner.Options{}), cfg, sc)
}

package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestFig10aShape(t *testing.T) {
	tab, err := Fig10a(tinyConfig(), Scale{BytesPerChannel: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5*4 {
		t.Fatalf("rows = %d, want 20 (5 kernels x 4 TS)", len(tab.Rows))
	}
	for i, r := range tab.Rows {
		fence, ol := cell(t, tab, i, 2), cell(t, tab, i, 3)
		if !(ol > fence) {
			t.Errorf("%v @ %v: OL bandwidth %v not above fence %v", r[0], r[1], ol, fence)
		}
		dataBW, cmdBW := cell(t, tab, i, 5), ol
		if dataBW < cmdBW {
			t.Errorf("%v: data BW below command BW", r[0])
		}
	}
	// Fence bandwidth must grow with TS within a kernel (fewer fences).
	if !(cell(t, tab, 3, 2) > cell(t, tab, 0, 2)) {
		t.Error("fence bandwidth did not grow with TS for scale")
	}
}

func TestFig10bShape(t *testing.T) {
	// Needs a footprint large enough to amortize the memory-pipe fill,
	// or OL cannot beat the GPU roofline (that effect is measured
	// deliberately by sensitivity-granularity).
	tab, err := Fig10b(tinyConfig(), Scale{BytesPerChannel: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(tab.Rows))
	}
	for i, r := range tab.Rows {
		gpuMS, feMS, olMS := cell(t, tab, i, 2), cell(t, tab, i, 3), cell(t, tab, i, 4)
		if !(olMS < feMS) {
			t.Errorf("%v @ %v: OL (%v ms) not faster than fence (%v ms)", r[0], r[1], olMS, feMS)
		}
		if !(olMS < gpuMS) {
			t.Errorf("%v @ %v: OL (%v ms) not faster than GPU (%v ms)", r[0], r[1], olMS, gpuMS)
		}
		feStalls, olStalls := cell(t, tab, i, 5), cell(t, tab, i, 6)
		if !(feStalls > olStalls) {
			t.Errorf("%v @ %v: fence stalls not above OL stalls", r[0], r[1])
		}
	}
}

func TestFig12Shape(t *testing.T) {
	tab, err := Fig12(tinyConfig(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7*4 {
		t.Fatalf("rows = %d, want 28 (7 kernels x 4 TS)", len(tab.Rows))
	}
	byKernel := map[string][]float64{}
	for i, r := range tab.Rows {
		sp := cell(t, tab, i, 4)
		if sp <= 1.0 {
			t.Errorf("%v @ %v: speedup %.2f <= 1", r[0], r[1], sp)
		}
		byKernel[r[0]] = append(byKernel[r[0]], sp)
	}
	// Gen_Fil's speedup must be flat across TS (fixed 128 B granularity).
	gf := byKernel["gen_fil"]
	if gf[0]/gf[3] > 1.1 || gf[3]/gf[0] > 1.1 {
		t.Errorf("gen_fil speedups vary with TS: %v", gf)
	}
	// bn_fwd's speedup must fall with TS (primitive rate amortizes).
	bn := byKernel["bn_fwd"]
	if !(bn[0] > bn[3]) {
		t.Errorf("bn_fwd speedup did not fall with TS: %v", bn)
	}
}

func TestRelatedSeqnoShape(t *testing.T) {
	tab, err := RelatedSeqno(tinyConfig(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (fence, 3 credit levels, OL)", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r[5] != "true" {
			t.Errorf("%s not functionally correct", r[0])
		}
	}
	fence := cell(t, tab, 0, 1)
	seq8 := cell(t, tab, 1, 1)
	seq128 := cell(t, tab, 3, 1)
	ol := cell(t, tab, 4, 1)
	if !(seq128 < seq8) {
		t.Error("more credits should speed seqno up")
	}
	if !(ol <= seq128) {
		t.Errorf("OrderLight (%v) should match or beat best seqno (%v)", ol, seq128)
	}
	if !(seq8 <= fence*1.2) {
		t.Errorf("seqno with few credits (%v) should be at worst fence-like (%v)", seq8, fence)
	}
}

func TestSensitivityGranularityShape(t *testing.T) {
	tab, err := SensitivityGranularity(tinyConfig(), Scale{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	// OL's speedup over the GPU must grow with footprint (fixed costs
	// amortize) and beat fence's at every size.
	first := cell(t, tab, 0, 5)
	last := cell(t, tab, 3, 5)
	if !(last > first) {
		t.Errorf("OL-vs-GPU did not grow with footprint: %v -> %v", first, last)
	}
	for i := range tab.Rows {
		if !(cell(t, tab, i, 5) > cell(t, tab, i, 4)) {
			t.Errorf("row %d: OL-vs-GPU not above fence-vs-GPU", i)
		}
	}
}

func TestSensitivitySMsShape(t *testing.T) {
	cfg := tinyConfig() // 4 channels: sweep hits 2 and 4 SMs
	tab, err := SensitivitySMs(cfg, tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatalf("rows = %d, want >= 2", len(tab.Rows))
	}
	// Fence must stay essentially flat across SM counts.
	feFirst, feLast := cell(t, tab, 0, 1), cell(t, tab, len(tab.Rows)-1, 1)
	if feLast > feFirst*1.15 || feFirst > feLast*1.15 {
		t.Errorf("fence time moved with SM count: %v -> %v", feFirst, feLast)
	}
}

func TestTaxonomyArbitrationShape(t *testing.T) {
	tab, err := TaxonomyArbitration(tinyConfig(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	fga, cga := cell(t, tab, 0, 2), cell(t, tab, 1, 2)
	if !(cga > fga) {
		t.Errorf("CGA host latency (%v) should exceed FGA (%v)", cga, fga)
	}
	ratio, err := strconv.ParseFloat(tab.Rows[1][3], 64)
	if err != nil || ratio <= 1.0 {
		t.Errorf("latency ratio = %v (%v)", tab.Rows[1][3], err)
	}
}

func TestValidationHostBWShape(t *testing.T) {
	tab, err := ValidationHostBW(tinyConfig(), Scale{BytesPerChannel: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tab.Rows {
		measured, assumed := cell(t, tab, i, 4), cell(t, tab, i, 5)
		if measured < assumed*0.65 || measured > assumed*1.25 {
			t.Errorf("%s: measured host BW %v far from assumption %v", r[0], measured, assumed)
		}
	}
}

func TestAblationRefreshShape(t *testing.T) {
	// Tighten tREFI so the short test run spans several refresh windows.
	cfg := tinyConfig()
	cfg.Memory.REFI = 400
	cfg.Memory.RFC = 36
	tab, err := AblationRefresh(cfg, tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	off, on := cell(t, tab, 0, 1), cell(t, tab, 1, 1)
	if !(on >= off) {
		t.Errorf("refresh made the run faster (%v -> %v)?", off, on)
	}
	if on > off*1.25 {
		t.Errorf("refresh overhead %v -> %v exceeds the ~10%% duty-cycle bound", off, on)
	}
	if tab.Rows[1][4] != "true" || tab.Rows[0][4] != "true" {
		t.Error("refresh must not affect correctness")
	}
	refreshes := cell(t, tab, 1, 3)
	if refreshes <= 0 {
		t.Error("no refreshes performed with refresh enabled")
	}
}

func TestAblationSchedShape(t *testing.T) {
	tab, err := AblationSched(tinyConfig(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	// Row order: frfcfs/none, frfcfs/ol, fcfs/none, fcfs/ol.
	if tab.Rows[1][5] != "true" || tab.Rows[3][5] != "true" {
		t.Error("OrderLight must be correct under both schedulers")
	}
	frNoneBW, fcNoneBW := cell(t, tab, 0, 3), cell(t, tab, 2, 3)
	if !(frNoneBW > fcNoneBW) {
		t.Error("FR-FCFS should out-bandwidth FCFS on the unordered stream")
	}
}

func TestAblationOoOShape(t *testing.T) {
	tab, err := AblationOoOHost(tinyConfig(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	if tab.Rows[0][4] != "false" {
		t.Error("unordered OoO host should be incorrect")
	}
	for _, r := range tab.Rows[1:] {
		if r[4] != "true" {
			t.Errorf("%s on OoO host incorrect", r[0])
		}
	}
	feMS, olMS := cell(t, tab, 1, 1), cell(t, tab, 3, 1)
	if !(olMS < feMS) {
		t.Error("OrderLight should beat fence on the OoO host")
	}
}

func TestAblationNoCShape(t *testing.T) {
	tab, err := AblationNoC(tinyConfig(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	base := cell(t, tab, 1, 2) // 1 route, orderlight
	for i, r := range tab.Rows {
		if r[1] == "orderlight" {
			if r[4] != "true" {
				t.Errorf("%s routes: OrderLight incorrect across NoC divergence", r[0])
			}
			if ms := cell(t, tab, i, 2); ms > base*1.2 {
				t.Errorf("%s routes: OL time %v not flat vs %v", r[0], ms, base)
			}
		}
	}
}

func TestAblationPlacementShape(t *testing.T) {
	tab, err := AblationPlacement(tinyConfig(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: one/fence, one/ol, spread/fence, spread/ol.
	oneOL, spreadOL := cell(t, tab, 1, 3), cell(t, tab, 3, 3)
	if !(spreadOL > oneOL) {
		t.Errorf("spreading did not raise OL bandwidth (%v -> %v)", oneOL, spreadOL)
	}
	for _, r := range tab.Rows {
		if r[5] != "true" {
			t.Errorf("%s/%s incorrect", r[0], r[1])
		}
	}
}

func TestAblationCountersShape(t *testing.T) {
	tab, err := AblationCounters(tinyConfig(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	unlimited := cell(t, tab, 3, 1)
	for i, r := range tab.Rows {
		if r[3] != "true" {
			t.Errorf("budget %s broke correctness", r[0])
		}
		if ms := cell(t, tab, i, 1); ms > unlimited*1.5 {
			t.Errorf("budget %s cost %v vs unlimited %v — too conservative", r[0], ms, unlimited)
		}
	}
}

func TestAblationEnergyShape(t *testing.T) {
	tab, err := AblationEnergy(tinyConfig(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tab.Rows))
	}
	// Dynamic energy identical across disciplines (same traffic).
	dynF, dynO := cell(t, tab, 0, 2), cell(t, tab, 2, 2)
	if dynF != dynO {
		t.Errorf("dynamic energy differs: fence %v vs OL %v", dynF, dynO)
	}
	// Fence total and EDP must exceed OrderLight's.
	if !(cell(t, tab, 0, 4) > cell(t, tab, 2, 4)) {
		t.Error("fence total energy not above OrderLight")
	}
	if !(cell(t, tab, 0, 5) > cell(t, tab, 2, 5)) {
		t.Error("fence EDP not above OrderLight")
	}
}

func TestChartRendering(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"Kernel", "TS", "GC/s"},
		Rows: [][]string{
			{"add", "1/8", "2.50"},
			{"scale", "1/8", "5.00"},
			{"note", "1/8", "n/a"}, // non-numeric skipped
		},
	}
	out := tab.Chart(2)
	if !strings.Contains(out, "add 1/8") || !strings.Contains(out, "scale 1/8") {
		t.Fatalf("labels missing:\n%s", out)
	}
	// scale's bar must be twice add's.
	var addBar, scaleBar int
	for _, line := range strings.Split(out, "\n") {
		n := strings.Count(line, "#")
		switch {
		case strings.HasPrefix(line, "add"):
			addBar = n
		case strings.HasPrefix(line, "scale"):
			scaleBar = n
		}
	}
	if scaleBar != 2*addBar || scaleBar == 0 {
		t.Fatalf("bars add=%d scale=%d, want 1:2", addBar, scaleBar)
	}
	if strings.Contains(out, "n/a") {
		t.Fatal("non-numeric row charted")
	}
	if got := tab.DefaultChartColumn(); got != 2 {
		t.Fatalf("DefaultChartColumn = %d, want 2", got)
	}
	if !strings.Contains(tab.Chart(99), "out of range") {
		t.Fatal("bad column not reported")
	}
	empty := &Table{ID: "e", Columns: []string{"a"}}
	if empty.DefaultChartColumn() != -1 {
		t.Fatal("empty table should have no chart column")
	}
}

func TestRunAllAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	cfg := tinyConfig()
	tabs, err := RunAll(cfg, Scale{BytesPerChannel: 8 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != len(IDs()) {
		t.Fatalf("RunAll returned %d tables, want %d", len(tabs), len(IDs()))
	}
	for _, tab := range tabs {
		if tab.ID == "" || len(tab.Columns) == 0 {
			t.Errorf("table %q malformed", tab.Title)
		}
		if tab.Markdown() == "" || tab.CSV() == "" {
			t.Errorf("table %s renders empty", tab.ID)
		}
	}
}

package experiments

import (
	"fmt"

	"orderlight/internal/config"
	"orderlight/internal/runner"
)

// RelatedSeqno compares OrderLight against the sequence-number ordering
// of Kim et al. (§8.1): per-request sequence numbers released in order
// at the memory controller with credit-based flow control at the core.
// The paper's qualitative claims under test:
//
//   - sequence numbers need memory-side reorder buffering proportional
//     to the credit count, where OrderLight needs none;
//   - the credit round trip throttles PIM command bandwidth;
//   - strict per-request order also forfeits FR-FCFS's freedom to
//     reorder independent requests within a phase.
func RelatedSeqno(cfg config.Config, sc Scale) (*Table, error) {
	return Run("related-seqno", cfg, sc)
}

var seqnoCredits = []int{8, 32, 128}

func relatedSeqnoCells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	var cells []runner.Cell
	fe, err := simCell(withPrimitive(cfg, config.PrimitiveFence), "add", sc)
	if err != nil {
		return nil, err
	}
	cells = append(cells, fe)
	for _, credits := range seqnoCredits {
		c := withPrimitive(cfg, config.PrimitiveSeqno)
		c.Run.SeqnoCredits = credits
		cell, err := simCell(c, "add", sc)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	ol, err := simCell(withPrimitive(cfg, config.PrimitiveOrderLight), "add", sc)
	if err != nil {
		return nil, err
	}
	return append(cells, ol), nil
}

func relatedSeqnoAssemble(_ config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "related-seqno", Title: "OrderLight vs sequence-number ordering (Kim et al., §8.1)",
		Columns: []string{"Mechanism", "Exec ms", "Cmd GC/s", "Stall cycles", "MC buffering needed", "Correct"},
		Notes: []string{
			"Sequence numbers serialize every PIM request at the controller and pay a credit round trip; OrderLight orders only at phase boundaries and needs no credit state.",
		},
	}
	cur := cursor{res: res}
	fe := cur.next().Run
	t.AddRow("fence", f4(fe.ExecMS()), f2(fe.CommandBW()),
		fmt.Sprintf("%d", fe.StallCycles()), "none", fmt.Sprintf("%v", fe.Correct))

	for _, credits := range seqnoCredits {
		st := cur.next().Run
		t.AddRow(fmt.Sprintf("seqno (%d credits)", credits), f4(st.ExecMS()), f2(st.CommandBW()),
			fmt.Sprintf("%d", st.StallCycles()),
			fmt.Sprintf("%d entries/warp", credits), fmt.Sprintf("%v", st.Correct))
	}

	ol := cur.next().Run
	t.AddRow("OrderLight", f4(ol.ExecMS()), f2(ol.CommandBW()),
		fmt.Sprintf("%d", ol.StallCycles()), "none", fmt.Sprintf("%v", ol.Correct))
	return t, nil
}

package experiments

import (
	"fmt"

	"orderlight/internal/config"
	"orderlight/internal/gpu"
	"orderlight/internal/kernel"
	"orderlight/internal/runner"
)

// ValidationHostBW measures the GPU baseline on the simulator itself:
// the same kernels streamed as ordinary host loads/stores through the
// identical DRAM timing model, instead of the roofline estimate the
// figures use for their GPU bars. The experiment reports measured host
// bandwidth next to the roofline's assumed effective bandwidth so the
// assumption is auditable.
func ValidationHostBW(cfg config.Config, sc Scale) (*Table, error) {
	return Run("validation-hostbw", cfg, sc)
}

var hostBWKernels = []string{"copy", "add"}

func validationHostBWCells(cfg config.Config, sc Scale) ([]runner.Cell, error) {
	// Streaming working sets do not fit in the L2 in reality; disable
	// the tag array so the scaled-down footprint doesn't cache-hit.
	c := cfg
	c.GPU.L2SizeMB = 0
	var cells []runner.Cell
	for _, name := range hostBWKernels {
		spec, err := kernel.ByName(name)
		if err != nil {
			return nil, err
		}
		cell := specCell(c, spec, sc.orDefault().BytesPerChannel)
		cell.Host = true
		cells = append(cells, cell)
	}
	return cells, nil
}

func validationHostBWAssemble(cfg config.Config, _ Scale, res []runner.Result) (*Table, error) {
	t := &Table{
		ID: "validation-hostbw", Title: "Measured host streaming bandwidth vs the roofline assumption",
		Columns: []string{"Kernel", "Host cmds", "Measured ms", "Roofline ms", "Measured GB/s", "Assumed GB/s"},
		Notes: []string{
			"Measured host streaming lands within a few percent of peak x HostEff, so the roofline GPU bars used by Figures 10b/12/13 rest on a bandwidth number this same DRAM model reproduces.",
		},
	}
	assumed := gpu.HostEffectiveBW(cfg) / 1e9
	c := cfg
	c.GPU.L2SizeMB = 0
	cur := cursor{res: res}
	for _, name := range hostBWKernels {
		r := cur.next()
		st, k := r.Run, r.Kernel
		secs := st.ExecTime().Seconds()
		measured := float64(st.HostCommands) * float64(c.Memory.BusWidthBytes) / secs / 1e9
		roofMS := gpu.HostTime(c, k.HostBytes, 0).Milliseconds()
		t.AddRow(name, fmt.Sprintf("%d", st.HostCommands),
			f4(st.ExecMS()), f4(roofMS), f1(measured), f1(assumed))
	}
	return t, nil
}

// Package ckpt implements crash-safe checkpoint files and the per-cell
// progress journal behind resumable runs.
//
// A checkpoint is the complete machine state at an epoch-safe boundary
// (between engine steps), wrapped in a versioned, checksummed container:
//
//	magic "OLCKPT" | version uint16 | payload length uint64 | sha256 | gob payload
//
// (integers big-endian). The payload is the gob encoding of Checkpoint.
// Writes are atomic (temp file + fsync + rename), so a crash mid-write
// leaves either the previous checkpoint or none — never a torn file.
// Loads verify structure and checksum before decoding and classify every
// failure mode as a distinct olerrors sentinel; a damaged file is always
// a loud, typed error, never a silent bad resume.
//
// Resuming from a checkpoint is deterministic: a run checkpointed at
// cycle C and continued produces byte-identical results (final memory
// image, statistics, non-clock trace events) to one that was never
// interrupted, on both the dense and skip-ahead engines.
package ckpt

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"os"

	"orderlight/internal/chaos"
	"orderlight/internal/gpu"
	"orderlight/internal/olerrors"
)

// Version is the current checkpoint format version. Decode rejects any
// other version with olerrors.ErrCheckpointVersion.
const Version = 1

const magic = "OLCKPT"

// headerLen is magic + version + payload length + sha256.
const headerLen = len(magic) + 2 + 8 + sha256.Size

// Meta identifies the run a checkpoint belongs to. Load-time identity
// checks (cell hash, config hash, engine) are the resume safety net: a
// checkpoint restored into a differently-configured run would decode
// cleanly and then diverge silently, so the runner refuses mismatches
// with olerrors.ErrCheckpointMismatch. The remaining fields are
// provenance for humans reading a stray .ckpt file.
type Meta struct {
	CellHash   string // runner cell identity (see runner cell hashing)
	Cell       string // human-readable cell key
	Kernel     string // kernel spec name
	ConfigHash string // obs.ConfigHash of the cell's config
	Engine     string // obs.EngineName: "dense" or "skip"
	Seed       uint64
	Bytes      int64  // per-channel footprint
	Fault      string // fault spec (String form), "none" when unfaulted
	Host       bool   // host-baseline cell
	Traffic    bool   // synthetic host traffic armed
	CoreCycle  int64  // core cycle the state was captured at
	SimTime    int64  // engine time in base ticks
}

// Checkpoint is a checkpoint file's payload.
type Checkpoint struct {
	Meta    Meta
	Machine *gpu.MachineState
}

// Encode renders a checkpoint into the versioned container format.
func Encode(c *Checkpoint) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(c); err != nil {
		return nil, fmt.Errorf("ckpt: encode: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	out := make([]byte, 0, headerLen+payload.Len())
	out = append(out, magic...)
	out = binary.BigEndian.AppendUint16(out, Version)
	out = binary.BigEndian.AppendUint64(out, uint64(payload.Len()))
	out = append(out, sum[:]...)
	out = append(out, payload.Bytes()...)
	return out, nil
}

// Decode parses and verifies a checkpoint container. Every failure mode
// maps to a distinct sentinel: a short read is ErrCheckpointTruncated,
// wrong magic or trailing garbage or an undecodable payload is
// ErrCheckpointFormat, a version from the future is
// ErrCheckpointVersion, and a payload that does not hash to the header's
// digest is ErrCheckpointChecksum.
func Decode(data []byte) (*Checkpoint, error) {
	if len(data) < len(magic) {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", olerrors.ErrCheckpointTruncated, len(data), headerLen)
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", olerrors.ErrCheckpointFormat, data[:len(magic)])
	}
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", olerrors.ErrCheckpointTruncated, len(data), headerLen)
	}
	ver := binary.BigEndian.Uint16(data[len(magic):])
	if ver != Version {
		return nil, fmt.Errorf("%w: file is v%d, this build reads v%d", olerrors.ErrCheckpointVersion, ver, Version)
	}
	declared := binary.BigEndian.Uint64(data[len(magic)+2:])
	var sum [sha256.Size]byte
	copy(sum[:], data[len(magic)+10:])
	payload := data[headerLen:]
	if uint64(len(payload)) < declared {
		return nil, fmt.Errorf("%w: payload is %d of %d declared bytes", olerrors.ErrCheckpointTruncated, len(payload), declared)
	}
	if uint64(len(payload)) > declared {
		return nil, fmt.Errorf("%w: %d bytes of trailing garbage", olerrors.ErrCheckpointFormat, uint64(len(payload))-declared)
	}
	if sha256.Sum256(payload) != sum {
		return nil, fmt.Errorf("%w: payload does not match header digest", olerrors.ErrCheckpointChecksum)
	}
	c := &Checkpoint{}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(c); err != nil {
		return nil, fmt.Errorf("%w: payload decode: %v", olerrors.ErrCheckpointFormat, err)
	}
	return c, nil
}

// Save writes a checkpoint atomically: the container is written to
// path+".tmp", synced, and renamed over path. A crash at any point
// leaves either the previous file or no file — the temp file is removed
// on any error.
func Save(path string, c *Checkpoint) error {
	return SaveFS(path, c, chaos.OS)
}

// SaveFS is Save through an injectable filesystem — the seam the chaos
// harness uses to make checkpoint publication fail (ENOSPC, torn
// writes, rename races).
func SaveFS(path string, c *Checkpoint, fsys chaos.FS) error {
	if fsys == nil {
		fsys = chaos.OS
	}
	data, err := Encode(c)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ckpt: save: %w", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = fsys.Rename(tmp, path)
	}
	if err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("ckpt: save %s: %w", path, err)
	}
	return nil
}

// Load reads and decodes a checkpoint file. The error distinguishes a
// missing file (os.IsNotExist / errors.Is(err, fs.ErrNotExist)) from a
// damaged one (the Decode sentinels).
func Load(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("ckpt: load %s: %w", path, err)
	}
	return c, nil
}

package ckpt_test

import (
	"bytes"
	"testing"

	"orderlight/internal/ckpt"
)

// fuzzSeedCheckpoint is a small valid checkpoint container (no machine
// state) used to seed the decoder fuzzer near the interesting surface.
func fuzzSeedCheckpoint(tb testing.TB) []byte {
	data, err := ckpt.Encode(&ckpt.Checkpoint{Meta: ckpt.Meta{
		CellHash: "00ff", Cell: "fuzz", Kernel: "add", Engine: "skip",
		Seed: 1, Bytes: 64, Fault: "none", CoreCycle: 10, SimTime: 170,
	}})
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzCheckpointDecode throws arbitrary bytes at the checkpoint
// decoder. The invariants: Decode never panics, and anything it
// accepts survives a re-encode/re-decode round trip with identical
// metadata — a corrupt file is always a typed error, never a crash or
// a silently wrong checkpoint.
func FuzzCheckpointDecode(f *testing.F) {
	valid := fuzzSeedCheckpoint(f)
	f.Add([]byte{})
	f.Add([]byte("OLCKPT"))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), 0xAA))
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)-1] ^= 0x01
	f.Add(mutated)
	wrongVer := append([]byte(nil), valid...)
	wrongVer[7] = 0x07
	f.Add(wrongVer)
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ckpt.Decode(data)
		if err != nil {
			return
		}
		re, err := ckpt.Encode(c)
		if err != nil {
			t.Fatalf("accepted checkpoint does not re-encode: %v", err)
		}
		c2, err := ckpt.Decode(re)
		if err != nil {
			t.Fatalf("re-encoded checkpoint does not decode: %v", err)
		}
		if c2.Meta != c.Meta {
			t.Fatalf("metadata changed across round trip: %+v vs %+v", c2.Meta, c.Meta)
		}
	})
}

// TestFuzzSeedsAreWellFormed pins the committed corpus entries'
// intent: the valid seed decodes, the mutations fail typed.
func TestFuzzSeedsAreWellFormed(t *testing.T) {
	valid := fuzzSeedCheckpoint(t)
	if _, err := ckpt.Decode(valid); err != nil {
		t.Fatalf("seed checkpoint does not decode: %v", err)
	}
	if !bytes.HasPrefix(valid, []byte("OLCKPT")) {
		t.Fatal("seed checkpoint lost its magic")
	}
}

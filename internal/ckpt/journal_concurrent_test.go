package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"orderlight/internal/stats"
)

// TestJournalConcurrentWriters models the fabric shape: two worker
// processes (two independent Journal handles, no shared mutex) append
// completion records to one file at the same time. O_APPEND plus
// one-write-per-entry must keep every line intact.
func TestJournalConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	const perWriter = 50

	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, j *Journal) {
			defer wg.Done()
			defer j.Close()
			for i := 0; i < perWriter; i++ {
				e := JournalEntry{
					Key:  fmt.Sprintf("w%d-cell%d", w, i),
					Hash: fmt.Sprintf("w%d-%04d", w, i),
					Run:  &stats.Run{},
				}
				if err := j.Append(e); err != nil {
					t.Errorf("writer %d append %d: %v", w, i, err)
					return
				}
			}
		}(w, j)
	}
	wg.Wait()

	got, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2*perWriter {
		t.Fatalf("journal holds %d entries, want %d", len(got), 2*perWriter)
	}
	for w := 0; w < 2; w++ {
		for i := 0; i < perWriter; i++ {
			if _, ok := got[fmt.Sprintf("w%d-%04d", w, i)]; !ok {
				t.Fatalf("entry w%d-%04d lost", w, i)
			}
		}
	}
}

// TestJournalTornTailAfterConcurrentWrites: a crash mid-append leaves
// a partial final line; everything the two writers acknowledged before
// it must still load.
func TestJournalTornTailAfterConcurrentWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(w int, j *Journal) {
			defer wg.Done()
			defer j.Close()
			for i := 0; i < 10; i++ {
				j.Append(JournalEntry{Hash: fmt.Sprintf("w%d-%d", w, i), Run: &stats.Run{}})
			}
		}(w, j)
	}
	wg.Wait()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"Hash":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := LoadJournal(path)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if len(got) != 20 {
		t.Fatalf("journal holds %d entries, want 20", len(got))
	}
}

// TestJournalCorruptMiddleIsLoud: damage anywhere but the tail means
// the journal is corrupt, not merely torn — later appends landed after
// the damage, so silently resuming would drop acknowledged work.
func TestJournalCorruptMiddleIsLoud(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(JournalEntry{Hash: "a", Run: &stats.Run{}})
	j.Close()

	// A torn line that was NOT the final write: another writer's entry
	// landed after it.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString("{\"Hash\":\"torn\n")
	f.Close()
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j2.Append(JournalEntry{Hash: "b", Run: &stats.Run{}})
	j2.Close()

	if _, err := LoadJournal(path); err == nil {
		t.Fatal("corrupt middle loaded silently")
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %v does not name the corrupt line", err)
	}
}

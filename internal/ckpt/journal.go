package ckpt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"orderlight/internal/chaos"
	"orderlight/internal/fault"
	"orderlight/internal/stats"
)

// JournalEntry records one completed experiment cell: its identity and
// everything needed to reconstruct the cell's Result without
// re-simulating. One JSON object per line.
type JournalEntry struct {
	Key         string         // human-readable cell key
	Hash        string         // cell identity hash (the resume key)
	Run         *stats.Run     // the cell's statistics
	HostLatency float64        // mean host-load latency in core cycles
	HostServed  int64          // host loads served
	Fault       *fault.Verdict // oracle verdict; nil when unfaulted
}

// Journal is an append-only progress log for a sweep. Each Append is a
// single write followed by a sync, so a crash leaves at most one
// partial trailing line — which LoadJournal tolerates. Append is safe
// for concurrent use by the runner's worker pool.
type Journal struct {
	mu sync.Mutex
	f  chaos.File
}

// OpenJournal opens (creating if needed) a journal for appending.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalFS(path, chaos.OS)
}

// OpenJournalFS is OpenJournal through an injectable filesystem — the
// seam the chaos harness uses to make journal appends fail.
func OpenJournalFS(path string, fsys chaos.FS) (*Journal, error) {
	if fsys == nil {
		fsys = chaos.OS
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ckpt: journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// Append records one completed cell. The entry is marshaled to a single
// line, written in one call, and synced before Append returns, so an
// acknowledged entry survives a crash.
func (j *Journal) Append(e JournalEntry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("ckpt: journal: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("ckpt: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("ckpt: journal: %w", err)
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// LoadJournal reads a journal into a map keyed by cell hash. A missing
// file is an empty journal. A partial trailing line — the footprint of
// a crash mid-append — is skipped; a malformed line anywhere else is an
// error (the journal is corrupt, not merely torn).
func LoadJournal(path string) (map[string]JournalEntry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]JournalEntry{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ckpt: journal: %w", err)
	}
	defer f.Close()

	out := make(map[string]JournalEntry)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := 0
	var pendingErr error
	for sc.Scan() {
		line++
		// A decode failure is only forgivable on the final line (a torn
		// append); remember it and fail if more lines follow.
		if pendingErr != nil {
			return nil, pendingErr
		}
		var e JournalEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			pendingErr = fmt.Errorf("ckpt: journal %s line %d: %w", path, line, err)
			continue
		}
		if e.Hash == "" {
			pendingErr = fmt.Errorf("ckpt: journal %s line %d: entry has no cell hash", path, line)
			continue
		}
		out[e.Hash] = e
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ckpt: journal %s: %w", path, err)
	}
	return out, nil
}

package ckpt_test

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"orderlight/internal/ckpt"
	"orderlight/internal/config"
	"orderlight/internal/gpu"
	"orderlight/internal/kernel"
	"orderlight/internal/olerrors"
	"orderlight/internal/sim"
	"orderlight/internal/stats"
)

// testConfig is a small 2-channel machine, fast enough for file-level
// round trips.
func testConfig() config.Config {
	cfg := config.Default()
	cfg.Memory.Channels = 2
	cfg.GPU.PIMSMs = 1
	cfg.GPU.WarpsPerSM = 2
	cfg.Run.DeadlineMS = 20
	cfg.Run.Primitive = config.PrimitiveOrderLight
	return cfg
}

// buildMachine constructs a fresh machine over a fresh kernel image.
func buildMachine(t *testing.T, cfg config.Config, dense bool) (*gpu.Machine, *kernel.Kernel) {
	t.Helper()
	ks, err := kernel.ByName("add")
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Build(cfg, ks, 2048)
	if err != nil {
		t.Fatal(err)
	}
	m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
	if err != nil {
		t.Fatal(err)
	}
	m.SetDense(dense)
	return m, k
}

// haltState runs a machine up to `halt` core cycles and captures its
// state there.
func haltState(t *testing.T, cfg config.Config, dense bool, halt int64) *gpu.MachineState {
	t.Helper()
	m, _ := buildMachine(t, cfg, dense)
	m.SetHaltAfter(halt)
	if _, err := m.Run(); !errors.Is(err, olerrors.ErrHalted) {
		t.Fatalf("Run = %v, want ErrHalted", err)
	}
	return m.CaptureState()
}

func testMeta() ckpt.Meta {
	return ckpt.Meta{
		CellHash: "0011223344556677", Cell: "test/add/orderlight", Kernel: "add",
		ConfigHash: "deadbeef", Engine: "skip", Seed: 1, Bytes: 2048,
		Fault: "none", CoreCycle: 100, SimTime: 1700,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	state := haltState(t, testConfig(), false, 200)
	c := &ckpt.Checkpoint{Meta: testMeta(), Machine: state}
	data, err := ckpt.Encode(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ckpt.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != c.Meta {
		t.Fatalf("meta round-tripped to %+v, want %+v", got.Meta, c.Meta)
	}
	if got.Machine == nil {
		t.Fatal("machine state lost in round trip")
	}
	if got.Machine.Engine.Now != state.Engine.Now {
		t.Fatalf("engine time %v, want %v", got.Machine.Engine.Now, state.Engine.Now)
	}
	if got.Machine.NextID != state.NextID {
		t.Fatalf("next request id %d, want %d", got.Machine.NextID, state.NextID)
	}
}

// TestDecodeCorruption drives every damage class to its distinct
// sentinel: a corrupt checkpoint is always a loud, typed error and
// never a panic or a silent bad resume.
func TestDecodeCorruption(t *testing.T) {
	state := haltState(t, testConfig(), false, 200)
	valid, err := ckpt.Encode(&ckpt.Checkpoint{Meta: testMeta(), Machine: state})
	if err != nil {
		t.Fatal(err)
	}

	// A well-formed container whose payload is not a gob stream: the
	// checksum verifies, the decode does not.
	garbagePayload := container(1, []byte("this is not a gob stream at all"))

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-1] ^= 0x40

	wrongVersion := append([]byte(nil), valid...)
	wrongVersion[6], wrongVersion[7] = 0x00, 0x02 // version 2
	badMagic := append([]byte("XXXXXX"), valid[6:]...)

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, olerrors.ErrCheckpointTruncated},
		{"shorter-than-magic", valid[:3], olerrors.ErrCheckpointTruncated},
		{"short-header", valid[:20], olerrors.ErrCheckpointTruncated},
		{"truncated-payload", valid[:len(valid)-10], olerrors.ErrCheckpointTruncated},
		{"bad-magic", badMagic, olerrors.ErrCheckpointFormat},
		{"trailing-garbage", append(append([]byte(nil), valid...), 0xAA), olerrors.ErrCheckpointFormat},
		{"garbage-gob-payload", garbagePayload, olerrors.ErrCheckpointFormat},
		{"future-version", wrongVersion, olerrors.ErrCheckpointVersion},
		{"bit-flip", flipped, olerrors.ErrCheckpointChecksum},
	}
	all := []error{
		olerrors.ErrCheckpointTruncated, olerrors.ErrCheckpointFormat,
		olerrors.ErrCheckpointVersion, olerrors.ErrCheckpointChecksum,
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ckpt.Decode(tc.data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Decode = %v, want %v", err, tc.want)
			}
			// The sentinels are distinct: exactly one matches.
			for _, s := range all {
				if s != tc.want && errors.Is(err, s) {
					t.Fatalf("Decode error %v also matches %v", err, s)
				}
			}
		})
	}
}

// container hand-assembles a checkpoint container around an arbitrary
// payload with a correct length field and digest — the layout the
// package doc specifies: magic, version, payload length, sha256,
// payload (integers big-endian).
func container(version uint16, payload []byte) []byte {
	out := []byte("OLCKPT")
	out = binary.BigEndian.AppendUint16(out, version)
	out = binary.BigEndian.AppendUint64(out, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...)
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cell.ckpt")
	state := haltState(t, testConfig(), false, 200)
	c := &ckpt.Checkpoint{Meta: testMeta(), Machine: state}
	if err := ckpt.Save(path, c); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("temp file left behind after a successful save")
	}
	got, err := ckpt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != c.Meta {
		t.Fatalf("loaded meta %+v, want %+v", got.Meta, c.Meta)
	}
	// Overwrite is atomic too: save again and reload.
	c.Meta.CoreCycle = 999
	if err := ckpt.Save(path, c); err != nil {
		t.Fatal(err)
	}
	if got, err = ckpt.Load(path); err != nil || got.Meta.CoreCycle != 999 {
		t.Fatalf("reload after overwrite: %+v, %v", got.Meta, err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := ckpt.Load(filepath.Join(t.TempDir(), "nope.ckpt"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Load = %v, want fs.ErrNotExist", err)
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(path, []byte("OLCKPTgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ckpt.Load(path)
	if !errors.Is(err, olerrors.ErrCheckpointTruncated) {
		t.Fatalf("Load = %v, want ErrCheckpointTruncated", err)
	}
}

// TestSaveLoadResumeParity is the full file-level crash-resume
// property: halt → Save → Load → RestoreState → Run equals an
// uninterrupted run exactly, on both engines and at several halt
// points, including under an active fault plan via the runner (covered
// separately at machine level).
func TestSaveLoadResumeParity(t *testing.T) {
	for _, dense := range []bool{false, true} {
		name := "skip"
		if dense {
			name = "dense"
		}
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			ref, refK := buildMachine(t, cfg, dense)
			refStats, err := ref.Run()
			if err != nil {
				t.Fatal(err)
			}
			total := int64(refStats.ExecTime() / sim.CoreTicks)
			if total < 10 {
				t.Fatalf("reference run too short: %d cycles", total)
			}
			for _, h := range []int64{1, total / 4, total / 2, total - 1} {
				path := filepath.Join(t.TempDir(), "cell.ckpt")
				m, _ := buildMachine(t, cfg, dense)
				m.SetHaltAfter(h)
				meta := testMeta()
				m.SetCheckpoint(1<<30, func() error {
					st := m.CaptureState()
					mm := meta
					mm.CoreCycle = st.Engine.Now.CoreCycles()
					return ckpt.Save(path, &ckpt.Checkpoint{Meta: mm, Machine: st})
				})
				if _, err := m.Run(); !errors.Is(err, olerrors.ErrHalted) {
					t.Fatalf("halt at %d: Run = %v, want ErrHalted", h, err)
				}

				ck, err := ckpt.Load(path)
				if err != nil {
					t.Fatalf("halt at %d: %v", h, err)
				}
				// The engine never warps to the halt boundary: the state is
				// captured at the last fired event at or before it.
				if ck.Meta.CoreCycle > h {
					t.Fatalf("halt at %d: checkpoint stamped at cycle %d, past the halt", h, ck.Meta.CoreCycle)
				}
				m2, k2 := buildMachine(t, cfg, dense)
				if err := m2.RestoreState(ck.Machine); err != nil {
					t.Fatalf("halt at %d: restore: %v", h, err)
				}
				st2, err := m2.Run()
				if err != nil {
					t.Fatalf("halt at %d: resumed run: %v", h, err)
				}
				if st2.String() != refStats.String() {
					t.Fatalf("halt at %d: resumed stats diverge:\n%s\nwant\n%s", h, st2, refStats)
				}
				if !st2.Correct {
					t.Fatalf("halt at %d: resumed run verified incorrect", h)
				}
				if !k2.Store.Equal(refK.Store) {
					t.Fatalf("halt at %d: resumed final memory image differs", h)
				}
			}
		})
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := ckpt.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	run := stats.New(64)
	run.PIMCommands = 42
	entries := []ckpt.JournalEntry{
		{Key: "a", Hash: "h1", Run: run, HostLatency: 1.5, HostServed: 7},
		{Key: "b", Hash: "h2", Run: run},
	}
	for _, e := range entries {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ckpt.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(got))
	}
	if e := got["h1"]; e.Key != "a" || e.HostLatency != 1.5 || e.HostServed != 7 || e.Run.PIMCommands != 42 {
		t.Fatalf("entry h1 = %+v", e)
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	got, err := ckpt.LoadJournal(filepath.Join(t.TempDir(), "absent.jsonl"))
	if err != nil || len(got) != 0 {
		t.Fatalf("LoadJournal = %v entries, %v; want empty, nil", got, err)
	}
}

func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := ckpt.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(ckpt.JournalEntry{Key: "a", Hash: "h1"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// A crash mid-append leaves a partial final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"Key":"b","Hash":"h2","Ru`)
	f.Close()
	got, err := ckpt.LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["h1"].Key != "a" {
		t.Fatalf("torn journal loaded as %+v", got)
	}
}

func TestJournalRejectsCorruptMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	content := `{"Key":"a","Hash":"h1"}` + "\n" +
		`{"Key":"b","Hash":` + "\n" + // malformed, NOT the final line
		`{"Key":"c","Hash":"h3"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.LoadJournal(path); err == nil {
		t.Fatal("corrupt mid-journal line accepted")
	}
}

func TestJournalRejectsMissingHash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	content := `{"Key":"a"}` + "\n" + `{"Key":"b","Hash":"h2"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.LoadJournal(path); err == nil {
		t.Fatal("hashless entry followed by more lines accepted")
	}
}

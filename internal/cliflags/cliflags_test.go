package cliflags

import (
	"flag"
	"testing"
)

// parse registers all three shared groups on a fresh FlagSet and
// parses args, so tests exercise exactly what the commands do.
func parse(t *testing.T, args ...string) (*Checkpoint, *Cache, *Engine) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	ck := RegisterCheckpoint(fs)
	ca := RegisterCache(fs)
	en := RegisterEngine(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return ck, ca, en
}

func TestZeroValueGroups(t *testing.T) {
	ck, ca, en := parse(t)
	if ck.Active() || ca.Active() {
		t.Error("unset flag groups report Active")
	}
	if got := len(ck.Options()) + len(ca.Options()) + len(en.Options()); got != 0 {
		t.Errorf("unset flag groups produced %d options, want 0", got)
	}
	if en.EngineName() != "skip" {
		t.Errorf("default engine %q, want skip", en.EngineName())
	}
}

func TestCheckpointGroup(t *testing.T) {
	ck, _, _ := parse(t, "-checkpoint-dir", "ck", "-checkpoint-every", "1024", "-resume")
	if ck.Dir != "ck" || ck.Every != 1024 || !ck.Resume {
		t.Errorf("parsed checkpoint group %+v", ck)
	}
	if !ck.Active() {
		t.Error("set checkpoint group reports inactive")
	}
	if got := len(ck.Options()); got != 3 {
		t.Errorf("checkpoint group produced %d options, want 3", got)
	}
	// Each flag alone still counts as active.
	for _, args := range [][]string{
		{"-checkpoint-dir", "ck"}, {"-checkpoint-every", "1"}, {"-resume"},
	} {
		ck, _, _ := parse(t, args...)
		if !ck.Active() {
			t.Errorf("checkpoint group %v reports inactive", args)
		}
	}
}

func TestCacheGroup(t *testing.T) {
	_, ca, _ := parse(t, "-cache-dir", "rc")
	if ca.Dir != "rc" || !ca.Active() {
		t.Errorf("parsed cache group %+v", ca)
	}
	if got := len(ca.Options()); got != 1 {
		t.Errorf("cache group produced %d options, want 1", got)
	}
}

func TestEngineGroup(t *testing.T) {
	tests := []struct {
		args []string
		name string
		opts int
	}{
		{nil, "skip", 0},
		{[]string{"-dense"}, "dense", 1},
		{[]string{"-engine", "dense"}, "dense", 1},
		{[]string{"-engine", "parallel", "-shards", "4"}, "parallel", 2},
		{[]string{"-engine", "twin", "-calibration", "cal.olcal", "-escalate"}, "twin", 3},
		{[]string{"-engine", "bogus"}, "skip", 1}, // travels verbatim; validation rejects it later
	}
	for _, tc := range tests {
		_, _, en := parse(t, tc.args...)
		if got := en.EngineName(); got != tc.name {
			t.Errorf("%v: EngineName %q, want %q", tc.args, got, tc.name)
		}
		if got := len(en.Options()); got != tc.opts {
			t.Errorf("%v: %d options, want %d", tc.args, got, tc.opts)
		}
	}
}

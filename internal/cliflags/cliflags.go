// Package cliflags holds the flag definitions the olsim, olbench and
// olfault commands share, so the checkpoint/resume surface is declared
// once instead of hand-rolled per command.
package cliflags

import (
	"flag"

	"orderlight"
)

// Checkpoint receives the shared crash-safety flags. Validation is not
// done here: the option invariants (resume needs a directory, negative
// cadence, ...) live in the library's single buildOpts gate, so every
// command reports them identically.
type Checkpoint struct {
	// Dir is -checkpoint-dir.
	Dir string
	// Every is -checkpoint-every, in core cycles.
	Every int64
	// Resume is -resume.
	Resume bool
}

// RegisterCheckpoint installs -checkpoint-dir, -checkpoint-every and
// -resume on fs (use flag.CommandLine in main).
func RegisterCheckpoint(fs *flag.FlagSet) *Checkpoint {
	c := &Checkpoint{}
	fs.StringVar(&c.Dir, "checkpoint-dir", "",
		"keep crash-safe checkpoints and a per-cell progress journal in this directory")
	fs.Int64Var(&c.Every, "checkpoint-every", 0,
		"checkpoint cadence in core cycles (0 = default 262144; needs -checkpoint-dir)")
	fs.BoolVar(&c.Resume, "resume", false,
		"resume from -checkpoint-dir; the continued run is byte-identical to an uninterrupted one")
	return c
}

// Options converts the parsed flags into facade options.
func (c *Checkpoint) Options() []orderlight.Option {
	var opts []orderlight.Option
	if c.Dir != "" {
		opts = append(opts, orderlight.WithCheckpointDir(c.Dir))
	}
	if c.Every > 0 {
		opts = append(opts, orderlight.WithCheckpointEvery(c.Every))
	}
	if c.Resume {
		opts = append(opts, orderlight.WithResume())
	}
	return opts
}

// Active reports whether any checkpoint flag was set — commands whose
// remote modes cannot honor local checkpoint directories use it to
// reject the combination up front.
func (c *Checkpoint) Active() bool {
	return c.Dir != "" || c.Every != 0 || c.Resume
}

// Cache receives the shared result-cache flag.
type Cache struct {
	// Dir is -cache-dir.
	Dir string
}

// RegisterCache installs -cache-dir on fs.
func RegisterCache(fs *flag.FlagSet) *Cache {
	c := &Cache{}
	fs.StringVar(&c.Dir, "cache-dir", "",
		"memoize completed cells in this content-addressed result cache; identical cells in later runs are served without simulating")
	return c
}

// Options converts the parsed flag into facade options.
func (c *Cache) Options() []orderlight.Option {
	if c.Dir == "" {
		return nil
	}
	return []orderlight.Option{orderlight.WithResultCache(c.Dir)}
}

// Active reports whether the cache flag was set.
func (c *Cache) Active() bool { return c.Dir != "" }

// Engine receives the shared engine-selection flags. Like Checkpoint,
// it does no validation of its own: unknown -engine names travel into
// the option bag verbatim so the library's single validation gate
// rejects them with the same message everywhere.
type Engine struct {
	// Name is -engine: "", "skip", "dense", "parallel" or "twin".
	Name string
	// Dense is -dense, the pre-existing shorthand for -engine=dense.
	Dense bool
	// Shards is -shards, the parallel engine's shard-count cap.
	Shards int
	// Calibration is -calibration, the twin engine's artifact path.
	Calibration string
	// Escalate is -escalate, the twin engine's out-of-confidence
	// fallback to the cycle engine.
	Escalate bool
}

// RegisterEngine installs -engine, -dense, -shards, -calibration and
// -escalate on fs.
func RegisterEngine(fs *flag.FlagSet) *Engine {
	e := &Engine{}
	fs.StringVar(&e.Name, "engine", "",
		"simulation engine: skip (default), dense (naive parity reference) or parallel (per-channel goroutine sharding) — byte-identical results — or twin (calibrated analytical model; microsecond approximate answers with recorded error bounds)")
	fs.BoolVar(&e.Dense, "dense", false,
		"shorthand for -engine=dense")
	fs.IntVar(&e.Shards, "shards", 0,
		"parallel engine shard count (0 = min(GOMAXPROCS, channels); needs -engine=parallel)")
	fs.StringVar(&e.Calibration, "calibration", "",
		"calibration artifact for the twin engine (needs -engine=twin; regenerate with `make calibrate`)")
	fs.BoolVar(&e.Escalate, "escalate", false,
		"re-run cells the twin declines as out-of-confidence on the cycle engine instead of failing (needs -engine=twin)")
	return e
}

// Options converts the parsed flags into facade options.
func (e *Engine) Options() []orderlight.Option {
	var opts []orderlight.Option
	if e.Dense {
		opts = append(opts, orderlight.WithDenseEngine())
	}
	if e.Name != "" {
		opts = append(opts, orderlight.WithEngine(e.Name))
	}
	if e.Shards != 0 {
		opts = append(opts, orderlight.WithParallelShards(e.Shards))
	}
	if e.Calibration != "" {
		opts = append(opts, orderlight.WithCalibration(e.Calibration))
	}
	if e.Escalate {
		opts = append(opts, orderlight.WithTwinEscalate())
	}
	return opts
}

// Chaos receives the shared fault-injection flags. Like the other
// groups it does no validation: ParseChaosSpec inside Plan reports
// malformed specs, so every command rejects them identically.
type Chaos struct {
	// Spec is -chaos: comma-separated class=rate pairs
	// ("reset=0.2,enospc=0.1"; "net=R"/"fs=R" group shorthands).
	Spec string
	// Seed is -chaos-seed. The injected fault sequence is a pure
	// function of (seed, op index), so a failing run replays exactly.
	Seed uint64
}

// RegisterChaos installs -chaos and -chaos-seed on fs.
func RegisterChaos(fs *flag.FlagSet) *Chaos {
	c := &Chaos{}
	fs.StringVar(&c.Spec, "chaos", "",
		"inject deterministic infrastructure faults: comma-separated class=rate pairs (reset, timeout, http500, garbage, dup, delay, enospc, torn, fsyncfail, renamerace; net=R / fs=R arm a whole plane), e.g. net=0.2,fs=0.1")
	fs.Uint64Var(&c.Seed, "chaos-seed", 1,
		"seed for -chaos; the same seed replays the identical injected-fault sequence")
	return c
}

// Active reports whether a chaos spec was given.
func (c *Chaos) Active() bool { return c.Spec != "" }

// Plan parses the flags into a live chaos plan. Injections are logged
// through logf (nil discards); an empty or "none" spec yields a nil
// plan, which every injector treats as chaos-free.
func (c *Chaos) Plan(logf func(format string, args ...any)) (*orderlight.ChaosPlan, error) {
	spec, err := orderlight.ParseChaosSpec(c.Spec)
	if err != nil {
		return nil, err
	}
	spec.Seed = c.Seed
	return orderlight.NewChaosPlan(spec, logf)
}

// EngineName returns the engine the flags select, for labeling output:
// "dense", "parallel", "twin", or "skip" (also for unknown names,
// which never reach a run — validation rejects them first).
func (e *Engine) EngineName() string {
	switch {
	case e.Dense || e.Name == "dense":
		return "dense"
	case e.Name == "parallel":
		return "parallel"
	case e.Name == "twin":
		return "twin"
	}
	return "skip"
}

package config

import (
	"strings"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() does not validate: %v", err)
	}
}

func TestTSFraction(t *testing.T) {
	c := Default() // 2048 B row buffer
	cases := []struct {
		frac string
		want int
	}{
		{"1/16", 128},
		{"1/8", 256},
		{"1/4", 512},
		{"1/2", 1024},
		{"1/1", 2048},
	}
	for _, tc := range cases {
		got, err := c.TSFraction(tc.frac)
		if err != nil {
			t.Errorf("TSFraction(%q) error: %v", tc.frac, err)
			continue
		}
		if got != tc.want {
			t.Errorf("TSFraction(%q) = %d, want %d", tc.frac, got, tc.want)
		}
	}
}

func TestTSFractionErrors(t *testing.T) {
	c := Default()
	for _, bad := range []string{"", "8", "0/8", "1/0", "-1/8", "x/8", "1/y", "1/3"} {
		if _, err := c.TSFraction(bad); err == nil {
			t.Errorf("TSFraction(%q) succeeded, want error", bad)
		}
	}
}

func TestCommandsPerTileMatchesFigure11(t *testing.T) {
	// Figure 11: a 256 B temporary storage admits 8 column accesses of
	// 32 B each before the row must switch.
	c := Default().WithTSFraction("1/8")
	if got := c.CommandsPerTile(); got != 8 {
		t.Fatalf("CommandsPerTile() = %d, want 8", got)
	}
}

func TestBytesPerCommand(t *testing.T) {
	c := Default()
	if got := c.BytesPerCommand(); got != 32*16 {
		t.Fatalf("BytesPerCommand() = %d, want 512", got)
	}
}

func TestHostPeakBandwidth(t *testing.T) {
	// 16 channels x 32 B x 850 MHz = 435.2 GB/s raw pin bandwidth. The
	// paper quotes 405 GB/s effective; GPU.HostPeakGBs carries that.
	c := Default()
	if got := c.HostPeakBandwidth(); got != 16*32*850e6 {
		t.Fatalf("HostPeakBandwidth() = %v", got)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutate := []struct {
		name string
		f    func(*Config)
	}{
		{"zero PIM SMs", func(c *Config) { c.GPU.PIMSMs = 0 }},
		{"too few warps", func(c *Config) { c.GPU.PIMSMs = 1; c.GPU.WarpsPerSM = 1 }},
		{"too many channels", func(c *Config) { c.Memory.Channels = 17 }},
		{"too many groups", func(c *Config) { c.Memory.GroupsPerChannel = 17 }},
		{"banks not divisible by groups", func(c *Config) { c.Memory.GroupsPerChannel = 5 }},
		{"row not multiple of bus", func(c *Config) { c.Memory.RowBufferBytes = 2049 }},
		{"tiny TS", func(c *Config) { c.PIM.TSBytes = 8 }},
		{"unaligned TS", func(c *Config) { c.PIM.TSBytes = 100 }},
		{"zero BMF", func(c *Config) { c.PIM.BMF = 0 }},
		{"zero subpartitions", func(c *Config) { c.GPU.L2SubPartitions = 0 }},
		{"banks not divisible by subpartitions", func(c *Config) { c.GPU.L2SubPartitions = 3 }},
		{"zero timing", func(c *Config) { c.Memory.Timing.RAS = 0 }},
		{"bad chunk", func(c *Config) { c.Memory.ChunkBytes = 40 }},
	}
	for _, m := range mutate {
		c := Default()
		m.f(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate() passed, want error", m.name)
		}
	}
}

func TestParsePrimitive(t *testing.T) {
	cases := map[string]Primitive{
		"none": PrimitiveNone, "NoFence": PrimitiveNone,
		"fence": PrimitiveFence, "FENCE": PrimitiveFence,
		"orderlight": PrimitiveOrderLight, "OL": PrimitiveOrderLight,
	}
	for s, want := range cases {
		got, err := ParsePrimitive(s)
		if err != nil || got != want {
			t.Errorf("ParsePrimitive(%q) = %v,%v want %v", s, got, err, want)
		}
	}
	if _, err := ParsePrimitive("bogus"); err == nil {
		t.Error("ParsePrimitive(bogus) succeeded, want error")
	}
}

func TestPrimitiveString(t *testing.T) {
	if PrimitiveNone.String() != "none" ||
		PrimitiveFence.String() != "fence" ||
		PrimitiveOrderLight.String() != "orderlight" {
		t.Error("Primitive.String() mismatch")
	}
	if !strings.HasPrefix(Primitive(99).String(), "Primitive(") {
		t.Error("unknown primitive should render as Primitive(n)")
	}
}

func TestTable1ContainsTimingString(t *testing.T) {
	rows := Table1String(Default())
	want := "CCD=1:RRD=3:RCDW=9:RAS=28:RP=12:CL=12:WL=2:CDLR=3:WR=10:CCDL=2:WTP=9"
	if !strings.Contains(rows, want) {
		t.Fatalf("Table 1 output missing paper timing string %q:\n%s", want, rows)
	}
}

// Table1String is a test helper rendering Table1 rows as text.
func Table1String(c Config) string {
	var b strings.Builder
	for _, r := range c.Table1() {
		b.WriteString(r[0])
		b.WriteString(": ")
		b.WriteString(r[1])
		b.WriteString("\n")
	}
	return b.String()
}

func TestBanksPerGroup(t *testing.T) {
	c := Default()
	if got := c.BanksPerGroup(); got != 4 {
		t.Fatalf("BanksPerGroup() = %d, want 4", got)
	}
}

// Package config defines every tunable parameter of the OrderLight
// simulator. Default() reproduces Table 1 of the paper (Volta Titan V
// GPU host + 16-channel HBM) plus the PIM-unit parameters of §4.1 and
// the OrderLight packet parameters of §5.3.1.
package config

import (
	"fmt"
	"strconv"
	"strings"

	"orderlight/internal/olerrors"
)

// Primitive selects the memory-ordering primitive the generated PIM
// kernel uses between dependent command phases.
type Primitive int

const (
	// PrimitiveNone inserts no ordering at all. The memory controller's
	// FR-FCFS scheduler is then free to reorder dependent PIM commands,
	// which is functionally incorrect (Figure 5's leftmost point).
	PrimitiveNone Primitive = iota
	// PrimitiveFence is the core-centric baseline: the warp stalls until
	// every prior PIM request has been issued to the DRAM device and
	// acknowledged back at the core (§4.3).
	PrimitiveFence
	// PrimitiveOrderLight is the paper's contribution: a lightweight
	// packet that enforces ordering at the memory controller (§5).
	PrimitiveOrderLight
	// PrimitiveSeqno is the related-work baseline of §8.1 (Kim et al.,
	// SC'17): every PIM request carries a sequence number, the memory
	// controller releases requests strictly in sequence order, and the
	// core throttles itself with credit-based flow control so the
	// controller's reorder buffering stays bounded.
	PrimitiveSeqno
)

// String implements fmt.Stringer.
func (p Primitive) String() string {
	switch p {
	case PrimitiveNone:
		return "none"
	case PrimitiveFence:
		return "fence"
	case PrimitiveOrderLight:
		return "orderlight"
	case PrimitiveSeqno:
		return "seqno"
	default:
		return fmt.Sprintf("Primitive(%d)", int(p))
	}
}

// ParsePrimitive converts a string flag value to a Primitive.
func ParsePrimitive(s string) (Primitive, error) {
	switch strings.ToLower(s) {
	case "none", "nofence":
		return PrimitiveNone, nil
	case "fence":
		return PrimitiveFence, nil
	case "orderlight", "ol":
		return PrimitiveOrderLight, nil
	case "seqno", "sequence":
		return PrimitiveSeqno, nil
	}
	return 0, fmt.Errorf("config: unknown primitive %q (want none|fence|orderlight|seqno)", s)
}

// DRAMTiming holds the HBM timing parameters of Table 1, all in memory
// clock cycles.
type DRAMTiming struct {
	CCD  int // column-to-column delay, different bank
	RRD  int // activate-to-activate delay, different banks
	RCDW int // activate-to-column-write delay
	RCDR int // activate-to-column-read delay (not listed in Table 1; = RCDW)
	RAS  int // activate-to-precharge minimum
	RP   int // precharge period
	CL   int // CAS (read) latency
	WL   int // write latency
	CDLR int // last-read-to-write turnaround
	WR   int // write recovery (write end to precharge)
	CCDL int // column-to-column delay, same bank (long)
	WTP  int // write-to-precharge delay
	RTP  int // read-to-precharge delay (not listed; modeled as CCDL)
}

// GPU holds the host-GPU parameters of Table 1 plus the core-pipeline
// parameters needed by the SM model of §5.3.1.
type GPU struct {
	NumSMs           int     // total SMs on the device (80)
	PIMSMs           int     // SMs running the PIM kernel (simulated cycle-by-cycle)
	WarpsPerSM       int     // PIM warps per simulated SM
	CoreFreqMHz      int     // 1200
	L1SizeKB         int     // 32
	SharedMemKB      int     // 96
	L2SizeMB         int     // 3
	L2QueueSize      int     // 64 entries per L2 sub-partition queue
	RWQueueSize      int     // 64 entries for each MC read/write queue
	InterconnectToL2 int     // SM-to-L2 latency in core cycles (120)
	IcntRoutes       int     // parallel NoC routes per channel (1 = in-order pipe; >1 = adaptive routing, §9)
	L2ToDRAM         int     // L2-to-DRAM-scheduler latency in core cycles (100)
	LDSTQueueSize    int     // per-SM load/store queue depth
	IssuePerCycle    int     // warp instructions issued per SM per cycle (warp schedulers)
	CollectorUnits   int     // operand-collector capacity in instructions
	CollectorLat     int     // operand-collection latency in core cycles
	CollectorTags    int     // OrderLight counters per SM (0 = one per channel x group, §5.3.1)
	L2SubPartitions  int     // divergent sub-paths per L2 slice (§5.3.2)
	AckLatency       int     // MC-to-SM acknowledgment latency in core cycles (fence baseline)
	HostPeakGBs      float64 // peak external memory bandwidth available to the host
	HostEff          float64 // achievable fraction of peak for streaming host kernels
	PeakGFLOPs       float64 // host compute roofline for compute-bound phases
}

// Memory holds the HBM organization parameters of Table 1.
type Memory struct {
	Channels         int // 16
	BanksPerChannel  int // 16
	BusWidthBytes    int // 32 (one column access moves 32 B)
	MemFreqMHz       int // 850
	RowBufferBytes   int // row-buffer (page) size per bank
	GroupsPerChannel int // PIM memory-groups per channel (banks/group = Banks/Groups)
	ChunkBytes       int // physical channel-interleave granularity (256 B)
	Sched            SchedPolicy
	Timing           DRAMTiming

	// Refresh models all-bank refresh. The paper's evaluation (like most
	// ordering studies) leaves refresh out; it is off by default and the
	// ablation-refresh experiment quantifies its impact.
	RefreshEnabled bool
	REFI           int // memory cycles between refresh commands (tREFI)
	RFC            int // refresh cycle duration in memory cycles (tRFC)
}

// SchedPolicy selects the memory controller's transaction scheduler.
type SchedPolicy string

const (
	// SchedFRFCFS is Table 1's scheduler: row hits first, then oldest.
	// Its reordering freedom is both the performance and the hazard the
	// ordering primitives manage.
	SchedFRFCFS SchedPolicy = "frfcfs"
	// SchedFCFS issues strictly oldest-first (per ordering-eligible
	// candidate) — no row-hit hoisting. Used by the ablation-sched
	// experiment to isolate what FR-FCFS contributes.
	SchedFCFS SchedPolicy = "fcfs"
)

// HostKind selects the host front end issuing the PIM kernel.
type HostKind string

const (
	// HostGPU is the paper's evaluation host: SIMT warps on SMs.
	HostGPU HostKind = "gpu"
	// HostCPU is the §9 extension: out-of-order CPU cores whose
	// reservation stations reorder memory issue — a second reordering
	// source OrderLight must survive.
	HostCPU HostKind = "cpu"
)

// Host configures the front end. GPU-specific parameters stay in GPU;
// these apply to the OoO-CPU host of §9.
type Host struct {
	Kind          HostKind
	ROBSize       int // reorder-buffer entries per core
	DispatchWidth int // instruction lanes dispatched per cycle
	MemPorts      int // memory issues per cycle (reservation-station ports)
}

// PIM holds the generic parameterized PIM-unit knobs of §4.1.
type PIM struct {
	TSBytes int // temporary storage per PIM unit, in bytes
	BMF     int // bandwidth multiplication factor over host bandwidth
}

// Energy holds per-event energies and background power for the memory
// system (representative HBM2-class constants; the evaluation cares
// about relative energy between ordering disciplines).
type Energy struct {
	ActNJ       float64 // one activate+precharge pair
	RdNJ        float64 // one 32 B column read, incl. I/O
	WrNJ        float64 // one 32 B column write, incl. I/O
	RefNJ       float64 // one all-bank refresh
	PIMOpNJ     float64 // one PIM command at the unit (ALU + TS)
	BackgroundW float64 // static + peripheral power per channel, watts
}

// Run holds per-run knobs that are not hardware parameters.
type Run struct {
	Primitive  Primitive
	Seed       uint64  // scheduler tie-break / adversarial reorder seed
	DeadlineMS float64 // simulated-time budget before declaring a hang
	Verify     bool    // functionally verify results against the reference executor

	// SeqnoCredits bounds the outstanding unacknowledged PIM requests
	// per warp under PrimitiveSeqno — the credit-based buffer management
	// the §8.1 baseline needs to keep memory-side buffering finite.
	SeqnoCredits int
}

// Config is the complete simulator configuration.
type Config struct {
	GPU    GPU
	Host   Host
	Memory Memory
	PIM    PIM
	Energy Energy
	Run    Run
}

// Default returns the paper's Table 1 configuration with a 1/8-row-buffer
// temporary storage, BMF 16 and the OrderLight primitive.
func Default() Config {
	return Config{
		GPU: GPU{
			NumSMs:           80,
			PIMSMs:           8, // one SM per two channels (§6: 8 SMs for 16 channels)
			WarpsPerSM:       2, // one warp per memory channel
			CoreFreqMHz:      1200,
			L1SizeKB:         32,
			SharedMemKB:      96,
			L2SizeMB:         3,
			L2QueueSize:      64,
			RWQueueSize:      64,
			InterconnectToL2: 120,
			IcntRoutes:       1,
			L2ToDRAM:         100,
			LDSTQueueSize:    32,
			IssuePerCycle:    2, // Volta SMs host four schedulers; two PIM warps per SM
			CollectorUnits:   16,
			CollectorLat:     4,
			CollectorTags:    0,
			L2SubPartitions:  2,
			AckLatency:       30, // dedicated issued-to-DRAM acknowledgment path back to the SM
			HostPeakGBs:      405,
			HostEff:          0.80,
			PeakGFLOPs:       14900, // Titan V FP32
		},
		Host: Host{
			Kind:          HostGPU,
			ROBSize:       64,
			DispatchWidth: 4,
			MemPorts:      2,
		},
		Memory: Memory{
			Channels:         16,
			BanksPerChannel:  16,
			BusWidthBytes:    32,
			MemFreqMHz:       850,
			RowBufferBytes:   2048,
			GroupsPerChannel: 4,
			ChunkBytes:       256,
			Sched:            SchedFRFCFS,
			Timing: DRAMTiming{
				CCD: 1, RRD: 3, RCDW: 9, RCDR: 9, RAS: 28, RP: 12,
				CL: 12, WL: 2, CDLR: 3, WR: 10, CCDL: 2, WTP: 9, RTP: 2,
			},
			RefreshEnabled: false,
			REFI:           3315, // ~3.9 us at 850 MHz
			RFC:            298,  // ~350 ns at 850 MHz
		},
		PIM: PIM{
			TSBytes: 256, // 1/8 of a 2 KB row buffer
			BMF:     16,
		},
		Energy: Energy{
			ActNJ: 1.7, RdNJ: 1.1, WrNJ: 1.2, RefNJ: 25,
			PIMOpNJ: 0.4, BackgroundW: 0.15,
		},
		Run: Run{
			Primitive:    PrimitiveOrderLight,
			Seed:         1,
			DeadlineMS:   50,
			Verify:       true,
			SeqnoCredits: 32,
		},
	}
}

// TSFraction parses a temporary-storage size expressed as a fraction of
// the row-buffer size, e.g. "1/8" or "1/16", and returns it in bytes.
func (c Config) TSFraction(frac string) (int, error) {
	num, den, ok := strings.Cut(frac, "/")
	if !ok {
		return 0, fmt.Errorf("config: %w: TS fraction %q must look like 1/8", olerrors.ErrInvalidSpec, frac)
	}
	n, err := strconv.Atoi(strings.TrimSpace(num))
	if err != nil {
		return 0, fmt.Errorf("config: %w: bad TS fraction numerator: %v", olerrors.ErrInvalidSpec, err)
	}
	d, err := strconv.Atoi(strings.TrimSpace(den))
	if err != nil {
		return 0, fmt.Errorf("config: %w: bad TS fraction denominator: %v", olerrors.ErrInvalidSpec, err)
	}
	if n <= 0 || d <= 0 || c.Memory.RowBufferBytes*n%d != 0 {
		return 0, fmt.Errorf("config: %w: TS fraction %q does not divide the %d B row buffer", olerrors.ErrInvalidSpec, frac, c.Memory.RowBufferBytes)
	}
	return c.Memory.RowBufferBytes * n / d, nil
}

// WithTSFraction returns a copy of the config with PIM.TSBytes set to the
// given fraction of the row buffer. It panics on a malformed fraction;
// use TSFraction for error handling.
func (c Config) WithTSFraction(frac string) Config {
	b, err := c.TSFraction(frac)
	if err != nil {
		panic(err)
	}
	c.PIM.TSBytes = b
	return c
}

// CommandsPerTile returns N, the number of 32 B PIM commands that fit in
// the temporary storage (Figure 11: a 256 B TS admits 8 column accesses).
func (c Config) CommandsPerTile() int {
	return c.PIM.TSBytes / c.Memory.BusWidthBytes
}

// BytesPerCommand returns the number of bytes one PIM command processes
// inside the memory die: the 32 B host-visible column access multiplied
// by the bandwidth multiplication factor (§6, Evaluation Metrics).
func (c Config) BytesPerCommand() int {
	return c.Memory.BusWidthBytes * c.PIM.BMF
}

// BanksPerGroup returns the number of banks in one PIM memory-group.
func (c Config) BanksPerGroup() int {
	return c.Memory.BanksPerChannel / c.Memory.GroupsPerChannel
}

// HostPeakBandwidth returns the host-visible peak bandwidth in bytes/s
// implied by the memory organization.
func (c Config) HostPeakBandwidth() float64 {
	return float64(c.Memory.Channels) * float64(c.Memory.BusWidthBytes) * float64(c.Memory.MemFreqMHz) * 1e6
}

// Validate checks internal consistency and returns a descriptive error
// for the first violated invariant, wrapping olerrors.ErrInvalidSpec so
// callers can classify with errors.Is.
func (c Config) Validate() error {
	if err := c.validate(); err != nil {
		return fmt.Errorf("%w: %v", olerrors.ErrInvalidSpec, err)
	}
	return nil
}

func (c Config) validate() error {
	m := c.Memory
	switch {
	case c.GPU.PIMSMs <= 0 || c.GPU.WarpsPerSM <= 0:
		return fmt.Errorf("config: need at least one PIM SM and warp")
	case c.GPU.PIMSMs*c.GPU.WarpsPerSM < m.Channels:
		return fmt.Errorf("config: %d PIM warps cannot drive %d channels (one warp per channel, §5.4)",
			c.GPU.PIMSMs*c.GPU.WarpsPerSM, m.Channels)
	case m.Channels <= 0 || m.Channels > 16:
		return fmt.Errorf("config: channels %d out of range [1,16] (4-bit channel ID, Figure 8)", m.Channels)
	case m.GroupsPerChannel <= 0 || m.GroupsPerChannel > 16:
		return fmt.Errorf("config: memory-groups %d out of range [1,16] (4-bit group ID, Figure 8)", m.GroupsPerChannel)
	case m.BanksPerChannel%m.GroupsPerChannel != 0:
		return fmt.Errorf("config: %d banks not divisible into %d groups", m.BanksPerChannel, m.GroupsPerChannel)
	case m.RowBufferBytes <= 0 || m.RowBufferBytes%m.BusWidthBytes != 0:
		return fmt.Errorf("config: row buffer %d B not a multiple of the %d B bus", m.RowBufferBytes, m.BusWidthBytes)
	case m.ChunkBytes <= 0 || m.ChunkBytes%m.BusWidthBytes != 0:
		return fmt.Errorf("config: chunk %d B not a multiple of the %d B bus", m.ChunkBytes, m.BusWidthBytes)
	case c.PIM.TSBytes < m.BusWidthBytes:
		return fmt.Errorf("config: TS %d B holds no %d B command", c.PIM.TSBytes, m.BusWidthBytes)
	case c.PIM.TSBytes%m.BusWidthBytes != 0:
		return fmt.Errorf("config: TS %d B not a multiple of the %d B bus", c.PIM.TSBytes, m.BusWidthBytes)
	case c.PIM.BMF <= 0:
		return fmt.Errorf("config: BMF must be positive, got %d", c.PIM.BMF)
	case c.GPU.IssuePerCycle <= 0:
		return fmt.Errorf("config: need at least one issue slot per SM cycle")
	case c.GPU.IcntRoutes <= 0:
		return fmt.Errorf("config: need at least one interconnect route")
	case c.Run.Primitive == PrimitiveSeqno && c.Run.SeqnoCredits <= 0:
		return fmt.Errorf("config: seqno primitive needs positive SeqnoCredits")
	case c.Memory.Sched != SchedFRFCFS && c.Memory.Sched != SchedFCFS:
		return fmt.Errorf("config: unknown scheduler policy %q", c.Memory.Sched)
	case c.Memory.RefreshEnabled && (c.Memory.REFI <= 0 || c.Memory.RFC <= 0 || c.Memory.RFC >= c.Memory.REFI):
		return fmt.Errorf("config: refresh needs 0 < tRFC (%d) < tREFI (%d)", c.Memory.RFC, c.Memory.REFI)
	case c.Host.Kind != HostGPU && c.Host.Kind != HostCPU:
		return fmt.Errorf("config: unknown host kind %q", c.Host.Kind)
	case c.Host.Kind == HostCPU && (c.Host.ROBSize <= 0 || c.Host.DispatchWidth <= 0 || c.Host.MemPorts <= 0):
		return fmt.Errorf("config: CPU host needs positive ROB size, dispatch width and memory ports")
	case c.Host.Kind == HostCPU && c.Run.Primitive == PrimitiveSeqno && c.Run.SeqnoCredits > c.GPU.RWQueueSize:
		return fmt.Errorf("config: seqno credits (%d) must not exceed the R/W queue depth (%d) on an OoO host (deadlock)",
			c.Run.SeqnoCredits, c.GPU.RWQueueSize)
	case c.GPU.L2SubPartitions <= 0:
		return fmt.Errorf("config: need at least one L2 sub-partition")
	case m.BanksPerChannel%c.GPU.L2SubPartitions != 0:
		return fmt.Errorf("config: %d banks not divisible across %d L2 sub-partitions", m.BanksPerChannel, c.GPU.L2SubPartitions)
	}
	t := m.Timing
	for _, v := range []struct {
		name string
		val  int
	}{
		{"CCD", t.CCD}, {"RRD", t.RRD}, {"RCDW", t.RCDW}, {"RCDR", t.RCDR},
		{"RAS", t.RAS}, {"RP", t.RP}, {"CL", t.CL}, {"WL", t.WL},
		{"CDLR", t.CDLR}, {"WR", t.WR}, {"CCDL", t.CCDL}, {"WTP", t.WTP}, {"RTP", t.RTP},
	} {
		if v.val <= 0 {
			return fmt.Errorf("config: DRAM timing %s must be positive", v.name)
		}
	}
	return nil
}

// Table1 renders the configuration as the rows of the paper's Table 1,
// for the table1 experiment and for documentation.
func (c Config) Table1() [][2]string {
	t := c.Memory.Timing
	return [][2]string{
		{"GPU Model", "Volta Titan V (modeled)"},
		{"Number of SMs", fmt.Sprintf("%d (%d simulated for PIM kernels)", c.GPU.NumSMs, c.GPU.PIMSMs)},
		{"Core Frequency", fmt.Sprintf("%d MHz", c.GPU.CoreFreqMHz)},
		{"L1 Data Size", fmt.Sprintf("%d KB", c.GPU.L1SizeKB)},
		{"Shared Memory Size", fmt.Sprintf("%d KB", c.GPU.SharedMemKB)},
		{"L2 Size", fmt.Sprintf("%d MB", c.GPU.L2SizeMB)},
		{"L2 Queue Size", fmt.Sprintf("%d", c.GPU.L2QueueSize)},
		{"Memory Scheduler", "FRFCFS"},
		{"R/W Queue Size", fmt.Sprintf("%d", c.GPU.RWQueueSize)},
		{"Interconnect to L2 latency", fmt.Sprintf("%d cycles", c.GPU.InterconnectToL2)},
		{"L2 to DRAM scheduler latency", fmt.Sprintf("%d cycles", c.GPU.L2ToDRAM)},
		{"Memory Model", "HBM"},
		{"Memory Channels", fmt.Sprintf("%d", c.Memory.Channels)},
		{"DRAM Bus Width", fmt.Sprintf("%d B", c.Memory.BusWidthBytes)},
		{"Banks per Channel", fmt.Sprintf("%d", c.Memory.BanksPerChannel)},
		{"Memory Frequency", fmt.Sprintf("%d MHz", c.Memory.MemFreqMHz)},
		{"Memory Timing", fmt.Sprintf(
			"CCD=%d:RRD=%d:RCDW=%d:RAS=%d:RP=%d:CL=%d:WL=%d:CDLR=%d:WR=%d:CCDL=%d:WTP=%d",
			t.CCD, t.RRD, t.RCDW, t.RAS, t.RP, t.CL, t.WL, t.CDLR, t.WR, t.CCDL, t.WTP)},
	}
}

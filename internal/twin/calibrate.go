package twin

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"orderlight/internal/config"
	"orderlight/internal/kernel"
	"orderlight/internal/stats"
)

// CellRunner executes one cell on a cycle-level engine and returns its
// measured counters. The twin package is a leaf — it cannot import the
// runner — so calibration and cross-checking take the engine as a
// callback; cmd/olwhatif and the tests wire the skip engine in.
type CellRunner func(ctx context.Context, cfg config.Config, spec kernel.Spec, bytesPerChannel int64) (*stats.Run, error)

// DefaultAnchors are the per-channel footprints calibration anchors
// each fitted line on. They bracket the experiment grid's 256 KiB
// default scale, so the fit interpolates rather than extrapolates over
// the domain the artifact declares valid.
var DefaultAnchors = []int64{16 << 10, 64 << 10, 256 << 10}

// CalibrationFractions are the temporary-storage sizes calibration
// covers — the same four fractions every figure sweeps.
var CalibrationFractions = []string{"1/16", "1/8", "1/4", "1/2"}

// CalibrationPrimitives are the ordering disciplines the twin models.
// Seqno (§8.1) is deliberately absent: its credit-based stalls are not
// affine in tiles, so queries for it decline with ErrOutOfConfidence.
var CalibrationPrimitives = []config.Primitive{
	config.PrimitiveNone, config.PrimitiveFence, config.PrimitiveOrderLight,
}

// Options tunes a calibration pass. The zero value means "the full
// default grid": every Table 2 kernel, every calibration primitive and
// TS fraction, anchored on DefaultAnchors, one worker per CPU.
type Options struct {
	Anchors     []int64
	TSBytes     []int
	Primitives  []config.Primitive
	Specs       []kernel.Spec
	Parallelism int
}

func (o Options) withDefaults(cfg config.Config) (Options, error) {
	if len(o.Anchors) == 0 {
		o.Anchors = DefaultAnchors
	}
	if len(o.TSBytes) == 0 {
		for _, frac := range CalibrationFractions {
			b, err := cfg.TSFraction(frac)
			if err != nil {
				return o, err
			}
			o.TSBytes = append(o.TSBytes, b)
		}
	}
	if len(o.Primitives) == 0 {
		o.Primitives = CalibrationPrimitives
	}
	if len(o.Specs) == 0 {
		o.Specs = kernel.All()
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o, nil
}

// cellCfg specializes the base config to one grid cell.
func cellCfg(cfg config.Config, prim config.Primitive, tsBytes int) config.Config {
	cfg.Run.Primitive = prim
	cfg.PIM.TSBytes = tsBytes
	return cfg
}

// runPool runs f(0..n-1) on a bounded worker pool, stopping at the
// first error or context cancellation. Collection is index-keyed by
// the callers, so scheduling order never leaks into results.
func runPool(ctx context.Context, n, workers int, f func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain
				}
				if err := f(i); err != nil {
					fail(err)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Calibrate fits the twin's constants from cycle-engine anchor runs:
// for every (kernel, primitive, TS) family it measures each anchor
// footprint on the supplied engine, converts footprints to tile counts
// and least-squares fits the affine-in-tiles lines. The result carries
// zero error bounds — run CrossCheck + ApplyBounds before saving, or
// every envelope test will (correctly) fail.
func Calibrate(ctx context.Context, cfg config.Config, run CellRunner, opt Options) (*Artifact, error) {
	opt, err := opt.withDefaults(cfg)
	if err != nil {
		return nil, err
	}

	type job struct {
		spec kernel.Spec
		prim config.Primitive
		ts   int
	}
	var jobs []job
	for _, spec := range opt.Specs {
		for _, prim := range opt.Primitives {
			for _, ts := range opt.TSBytes {
				jobs = append(jobs, job{spec, prim, ts})
			}
		}
	}

	nA := len(opt.Anchors)
	runs := make([]*stats.Run, len(jobs)*nA)
	err = runPool(ctx, len(runs), opt.Parallelism, func(i int) error {
		j, a := jobs[i/nA], opt.Anchors[i%nA]
		r, err := run(ctx, cellCfg(cfg, j.prim, j.ts), j.spec, a)
		if err != nil {
			return fmt.Errorf("twin: calibrate %s/%v/ts=%dB at %d B: %w", j.spec.Name, j.prim, j.ts, a, err)
		}
		runs[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}

	art := &Artifact{
		ConfigHash: NormalizedConfigHash(cfg),
		Channels:   cfg.Memory.Channels,
		BytesMin:   opt.Anchors[0],
		BytesMax:   opt.Anchors[0],
		Anchors:    opt.Anchors,
		Seed:       cfg.Run.Seed,
	}
	for _, a := range opt.Anchors {
		if a < art.BytesMin {
			art.BytesMin = a
		}
		if a > art.BytesMax {
			art.BytesMax = a
		}
	}
	for ji, j := range jobs {
		tiles := make([]int, nA)
		cyc := make([]float64, nA)
		fence := make([]float64, nA)
		ol := make([]float64, nA)
		correct := false
		for ai := 0; ai < nA; ai++ {
			cts, err := CellCounts(cellCfg(cfg, j.prim, j.ts), j.spec, opt.Anchors[ai])
			if err != nil {
				return nil, err
			}
			r := runs[ji*nA+ai]
			tiles[ai] = cts.Tiles
			cyc[ai] = float64(r.ExecTime())
			fence[ai] = float64(r.FenceStallCycles)
			ol[ai] = float64(r.OLStallCycles)
			correct = r.Correct // every anchor agrees; keep the largest
		}
		art.Entries = append(art.Entries, Entry{
			Kernel:     j.spec.Name,
			Primitive:  j.prim.String(),
			TSBytes:    j.ts,
			Cycles:     fitLin(tiles, cyc),
			FenceStall: fitLin(tiles, fence),
			OLStall:    fitLin(tiles, ol),
			Correct:    correct,
		})
	}
	sortEntries(art.Entries)
	return art, nil
}

// CheckCell names one cross-check point: a grid cell replayed on both
// the twin and the cycle engine.
type CheckCell struct {
	Kernel    string
	Primitive config.Primitive
	TSBytes   int
	Bytes     int64
}

// CheckResult records one cross-check outcome: the signed relative
// error of every predicted quantity ((twin−cycle)/cycle with the
// envelope's denominator floors).
type CheckResult struct {
	CheckCell
	Tiles      int
	TwinTicks  int64 // predicted End−Start
	CycleTicks int64 // measured End−Start
	CyclesErr  float64
	FenceErr   float64
	OLErr      float64
}

// DefaultGrid lists the fig5 + fig12 experiment cells at the given
// footprint — the acceptance grid the twin must answer within its
// recorded bounds. It mirrors the declarations in
// internal/experiments (which the leaf twin package cannot import).
func DefaultGrid(cfg config.Config, bytes int64) ([]CheckCell, error) {
	var cells []CheckCell
	ts18, err := cfg.TSFraction("1/8")
	if err != nil {
		return nil, err
	}
	cells = append(cells, CheckCell{Kernel: "add", Primitive: config.PrimitiveNone, TSBytes: ts18, Bytes: bytes})
	for _, frac := range CalibrationFractions {
		ts, err := cfg.TSFraction(frac)
		if err != nil {
			return nil, err
		}
		cells = append(cells, CheckCell{Kernel: "add", Primitive: config.PrimitiveFence, TSBytes: ts, Bytes: bytes})
	}
	for _, s := range kernel.Apps() {
		for _, frac := range CalibrationFractions {
			ts, err := cfg.TSFraction(frac)
			if err != nil {
				return nil, err
			}
			for _, prim := range []config.Primitive{config.PrimitiveFence, config.PrimitiveOrderLight} {
				cells = append(cells, CheckCell{Kernel: s.Name, Primitive: prim, TSBytes: ts, Bytes: bytes})
			}
		}
	}
	return cells, nil
}

// FullGrid lists every calibrated (kernel, primitive, TS) family at
// the given footprints — the grid ApplyBounds wants, so every family
// an artifact models carries a measured bound.
func FullGrid(cfg config.Config, footprints []int64) ([]CheckCell, error) {
	var cells []CheckCell
	for _, s := range kernel.All() {
		for _, prim := range CalibrationPrimitives {
			for _, frac := range CalibrationFractions {
				ts, err := cfg.TSFraction(frac)
				if err != nil {
					return nil, err
				}
				for _, b := range footprints {
					cells = append(cells, CheckCell{Kernel: s.Name, Primitive: prim, TSBytes: ts, Bytes: b})
				}
			}
		}
	}
	return cells, nil
}

// CrossCheck replays every cell on both the twin and the cycle engine
// and records the signed relative error of each predicted quantity.
func CrossCheck(ctx context.Context, cfg config.Config, p *Predictor, run CellRunner, cells []CheckCell, parallelism int) ([]CheckResult, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	out := make([]CheckResult, len(cells))
	err := runPool(ctx, len(cells), parallelism, func(i int) error {
		cell := cells[i]
		spec, err := kernel.ByName(cell.Kernel)
		if err != nil {
			return err
		}
		c := cellCfg(cfg, cell.Primitive, cell.TSBytes)
		pred, err := p.Predict(c, spec, cell.Bytes)
		if err != nil {
			return fmt.Errorf("twin: cross-check %s/%v/ts=%dB: %w", cell.Kernel, cell.Primitive, cell.TSBytes, err)
		}
		meas, err := run(ctx, c, spec, cell.Bytes)
		if err != nil {
			return fmt.Errorf("twin: cross-check %s/%v/ts=%dB: %w", cell.Kernel, cell.Primitive, cell.TSBytes, err)
		}
		out[i] = CheckResult{
			CheckCell:  cell,
			Tiles:      pred.Tiles,
			TwinTicks:  int64(pred.Run.ExecTime()),
			CycleTicks: int64(meas.ExecTime()),
			CyclesErr:  RelErr(float64(pred.Run.ExecTime()), float64(meas.ExecTime()), CyclesAbsFloor),
			FenceErr:   RelErr(float64(pred.Run.FenceStallCycles), float64(meas.FenceStallCycles), StallAbsFloor),
			OLErr:      RelErr(float64(pred.Run.OLStallCycles), float64(meas.OLStallCycles), StallAbsFloor),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BoundFloor is the minimum recorded relative bound. Observed errors
// below it still get a 2% envelope, absorbing run-to-run quantization
// the cross-check footprints did not happen to exercise.
const BoundFloor = 0.02

// DefaultSafety scales observed worst-case errors into recorded
// bounds, leaving headroom for interpolated footprints between the
// cross-checked ones.
const DefaultSafety = 1.5

// ApplyBounds folds cross-check results into the artifact: each
// family's recorded bound becomes safety × its worst observed absolute
// relative error, floored at BoundFloor. Families absent from results
// keep zero bounds and fail every envelope test.
func ApplyBounds(a *Artifact, results []CheckResult, safety float64) {
	if safety <= 0 {
		safety = DefaultSafety
	}
	type agg struct {
		cyc, fence, ol float64
		cells          int
	}
	worst := make(map[entryKey]*agg)
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	for _, r := range results {
		k := entryKey{r.Kernel, r.Primitive.String(), r.TSBytes}
		w := worst[k]
		if w == nil {
			w = &agg{}
			worst[k] = w
		}
		w.cells++
		if e := abs(r.CyclesErr); e > w.cyc {
			w.cyc = e
		}
		if e := abs(r.FenceErr); e > w.fence {
			w.fence = e
		}
		if e := abs(r.OLErr); e > w.ol {
			w.ol = e
		}
	}
	bound := func(worst float64) float64 {
		b := safety * worst
		if b < BoundFloor {
			b = BoundFloor
		}
		return b
	}
	for i := range a.Entries {
		e := &a.Entries[i]
		w := worst[entryKey{e.Kernel, e.Primitive, e.TSBytes}]
		if w == nil {
			continue
		}
		e.CyclesBound = bound(w.cyc)
		e.FenceBound = bound(w.fence)
		e.OLBound = bound(w.ol)
		e.Cells = w.cells
	}
}

// Package twin is the calibrated analytical twin of the cycle-level
// simulator: a closed-form roofline/queueing surrogate that answers an
// experiment cell in microseconds instead of milliseconds–seconds.
//
// The model separates what it knows exactly from what it estimates.
// Command counts, tile counts and ordering-point counts are replicated
// exactly from the kernel generator's arithmetic (counts.go); cycle
// quantities — execution time, fence stall, OrderLight drain stall —
// are affine-in-tiles lines fitted against cycle-engine anchor runs
// (model.go) and persisted as a versioned, checksummed calibration
// artifact (artifact.go). Every artifact carries per-family error
// bounds recorded by a cross-check pass against the cycle engine
// (calibrate.go); a twin answer outside the calibrated domain is
// refused with ErrOutOfConfidence rather than guessed, so callers can
// escalate to the cycle engine. Twin results never claim functional
// verification and are never cached as cycle results.
package twin

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"reflect"

	"orderlight/internal/config"
	"orderlight/internal/kernel"
	"orderlight/internal/sim"
	"orderlight/internal/stats"
)

// Absolute floors for the error envelope. Relative bounds alone are
// brittle near zero (a 3-cycle stall predicted as 5 is a 67% "error"
// that no caller cares about), so the envelope test is
// |pred-meas| ≤ bound·|meas| + floor with floors far below anything an
// experiment plots: ~50 ns of simulated time for the cycles line and a
// fraction of one fence's worth of stall for the stall lines.
const (
	CyclesAbsFloor = 1024 // base ticks
	StallAbsFloor  = 256  // core cycles
)

// Within reports whether a prediction stays inside the recorded
// envelope for a measurement: relative bound plus absolute floor.
func Within(pred, meas, bound, floor float64) bool {
	return math.Abs(pred-meas) <= bound*math.Abs(meas)+floor
}

// RelErr returns the signed relative error of pred against meas,
// flooring the denominator so near-zero measurements do not explode
// the quotient (the same floor the envelope test uses).
func RelErr(pred, meas, floor float64) float64 {
	den := math.Abs(meas)
	if den < floor {
		den = floor
	}
	return (pred - meas) / den
}

// NormalizedConfigHash hashes the configuration with the per-cell grid
// axes — the ordering primitive and the temporary-storage size —
// zeroed out. One calibration artifact covers the full primitive × TS
// grid of its base configuration; any other knob (channel count, BMF,
// DRAM timing, seed) changes the hash and sends the query out of
// confidence, because the fitted constants were measured under those
// exact timings.
func NormalizedConfigHash(cfg config.Config) string {
	cfg.Run.Primitive = config.PrimitiveNone
	cfg.PIM.TSBytes = 0
	b, err := json.Marshal(cfg)
	if err != nil {
		panic(fmt.Sprintf("twin: config not encodable: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// Predictor answers what-if queries from a calibration artifact.
type Predictor struct {
	art   *Artifact
	hash  string
	byKey map[entryKey]int // index into art.Entries
}

type entryKey struct {
	kernel    string
	primitive string
	tsBytes   int
}

// NewPredictor wraps an artifact for querying.
func NewPredictor(a *Artifact) *Predictor {
	p := &Predictor{art: a, hash: a.Hash(), byKey: make(map[entryKey]int, len(a.Entries))}
	for i, e := range a.Entries {
		p.byKey[entryKey{e.Kernel, e.Primitive, e.TSBytes}] = i
	}
	return p
}

// LoadPredictor loads a calibration artifact from disk and wraps it.
func LoadPredictor(path string) (*Predictor, error) {
	a, err := Load(path)
	if err != nil {
		return nil, err
	}
	return NewPredictor(a), nil
}

// Hash returns the content hash of the underlying calibration.
func (p *Predictor) Hash() string { return p.hash }

// Artifact returns the underlying calibration artifact.
func (p *Predictor) Artifact() *Artifact { return p.art }

// Prediction is one twin answer: a synthesized stats.Run plus the
// calibration entry that produced it (whose recorded bounds callers
// surface as the answer's error bar). Kernel carries the generator's
// exact accounting counters — command totals and the host-roofline
// inputs — without any program or memory image; its Programs and Store
// are nil, which is precisely why the answer takes microseconds.
type Prediction struct {
	Run    *stats.Run
	Kernel *kernel.Kernel
	Entry  Entry
	Tiles  int
	Counts Counts
}

// Predict answers one cell analytically. Everything it cannot vouch
// for declines with ErrOutOfConfidence: a base configuration other
// than the calibrated one, a primitive the model has no line for, a
// spec that is not byte-for-byte the registered Table 2 kernel of the
// same name, or a footprint outside the anchored range. Within the
// domain it synthesizes a stats.Run whose command counts are exact and
// whose cycle quantities come from the fitted lines; Verified is
// always false — the twin never claims functional verification.
func (p *Predictor) Predict(cfg config.Config, spec kernel.Spec, bytesPerChannel int64) (*Prediction, error) {
	if h := NormalizedConfigHash(cfg); h != p.art.ConfigHash {
		return nil, fmt.Errorf("%w: config %s is not the calibrated base %s", ErrOutOfConfidence, h, p.art.ConfigHash)
	}
	prim := cfg.Run.Primitive
	switch prim {
	case config.PrimitiveNone, config.PrimitiveFence, config.PrimitiveOrderLight:
	default:
		return nil, fmt.Errorf("%w: primitive %v has no calibrated model", ErrOutOfConfidence, prim)
	}
	registered, err := kernel.ByName(spec.Name)
	if err != nil || !reflect.DeepEqual(spec, registered) {
		return nil, fmt.Errorf("%w: spec %q is not a registered Table 2 kernel", ErrOutOfConfidence, spec.Name)
	}
	if bytesPerChannel < p.art.BytesMin || bytesPerChannel > p.art.BytesMax {
		return nil, fmt.Errorf("%w: %d bytes/channel outside calibrated range [%d, %d]",
			ErrOutOfConfidence, bytesPerChannel, p.art.BytesMin, p.art.BytesMax)
	}
	i, ok := p.byKey[entryKey{spec.Name, prim.String(), cfg.PIM.TSBytes}]
	if !ok {
		return nil, fmt.Errorf("%w: no calibration entry for %s/%v/ts=%dB",
			ErrOutOfConfidence, spec.Name, prim, cfg.PIM.TSBytes)
	}
	entry := p.art.Entries[i]

	counts, err := CellCounts(cfg, spec, bytesPerChannel)
	if err != nil {
		return nil, err
	}
	run := stats.New(cfg.BytesPerCommand())
	run.Start = 0
	run.End = sim.Time(clampRound(entry.Cycles.At(counts.Tiles), 1))
	run.PIMCommands = counts.TotalCmds()
	switch prim {
	case config.PrimitiveFence:
		run.FenceCount = counts.Orders
		run.FenceStallCycles = clampRound(entry.FenceStall.At(counts.Tiles), 0)
	case config.PrimitiveOrderLight:
		run.OLCount = counts.Orders
		run.OLStallCycles = clampRound(entry.OLStall.At(counts.Tiles), 0)
	}
	run.Correct = entry.Correct
	k := &kernel.Kernel{
		Spec:    spec,
		MemCmds: counts.MemCmds, ExecCmds: counts.ExecCmds, Orders: counts.Orders,
		HostBytes: counts.HostBytes, HostOps: counts.HostOps,
	}
	return &Prediction{Run: run, Kernel: k, Entry: entry, Tiles: counts.Tiles, Counts: counts}, nil
}

// clampRound rounds x to the nearest integer, flooring at min.
func clampRound(x float64, min int64) int64 {
	v := int64(math.Round(x))
	if v < min {
		v = min
	}
	return v
}

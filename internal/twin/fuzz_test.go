package twin_test

import (
	"bytes"
	"testing"

	"orderlight/internal/twin"
)

// fuzzSeedArtifact is a small valid calibration artifact used to seed
// the decoder fuzzer near the interesting surface.
func fuzzSeedArtifact(tb testing.TB) []byte {
	data, err := twin.Encode(&twin.Artifact{
		ConfigHash: "00ff00ff00ff00ff", Channels: 16,
		BytesMin: 16 << 10, BytesMax: 256 << 10,
		Anchors: []int64{16 << 10, 64 << 10, 256 << 10}, Seed: 1,
		Entries: []twin.Entry{{
			Kernel: "add", Primitive: "fence", TSBytes: 256,
			Cycles: twin.Lin{F: 123, S: 45.6}, FenceStall: twin.Lin{F: 1, S: 2},
			Correct: true, CyclesBound: 0.02, FenceBound: 0.03, Cells: 5,
		}},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzCalibrationDecode throws arbitrary bytes at the calibration
// decoder. The invariants: Decode never panics, and anything it
// accepts survives a re-encode/re-decode round trip with an identical
// content hash — a corrupt artifact is always a typed error, never a
// crash or a silently different calibration.
func FuzzCalibrationDecode(f *testing.F) {
	valid := fuzzSeedArtifact(f)
	f.Add([]byte{})
	f.Add([]byte("OLCAL1"))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), 0xAA))
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)-1] ^= 0x01
	f.Add(mutated)
	wrongVer := append([]byte(nil), valid...)
	wrongVer[7] = 0x07
	f.Add(wrongVer)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := twin.Decode(data)
		if err != nil {
			return
		}
		re, err := twin.Encode(a)
		if err != nil {
			t.Fatalf("accepted artifact does not re-encode: %v", err)
		}
		a2, err := twin.Decode(re)
		if err != nil {
			t.Fatalf("re-encoded artifact does not decode: %v", err)
		}
		if a2.Hash() != a.Hash() {
			t.Fatalf("content hash changed across round trip: %s vs %s", a2.Hash(), a.Hash())
		}
	})
}

// TestFuzzSeedsAreWellFormed pins the committed corpus entries'
// intent: the valid seed decodes, and it carries the format magic.
func TestFuzzSeedsAreWellFormed(t *testing.T) {
	valid := fuzzSeedArtifact(t)
	if _, err := twin.Decode(valid); err != nil {
		t.Fatalf("seed artifact does not decode: %v", err)
	}
	if !bytes.HasPrefix(valid, []byte("OLCAL1")) {
		t.Fatal("seed artifact lost its magic")
	}
}

package twin_test

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/gpu"
	"orderlight/internal/kernel"
	"orderlight/internal/stats"
	"orderlight/internal/twin"
)

// skipRunner is a minimal cycle-engine CellRunner: build the kernel,
// run the skip-ahead machine — the same path the runner's skip engine
// takes, without the runner (twin's tests stay leaf-level).
func skipRunner(ctx context.Context, cfg config.Config, spec kernel.Spec, bytes int64) (*stats.Run, error) {
	k, err := kernel.Build(cfg, spec, bytes)
	if err != nil {
		return nil, err
	}
	m, err := gpu.NewMachine(cfg, k.Store, k.Programs)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// TestCellCountsMatchBuild pins the twin's closed-form counts to the
// generator's actual output over the full kernel × primitive × TS grid
// at several footprints, including a non-multiple one.
func TestCellCountsMatchBuild(t *testing.T) {
	base := config.Default()
	prims := []config.Primitive{config.PrimitiveNone, config.PrimitiveFence, config.PrimitiveOrderLight}
	for _, spec := range kernel.All() {
		for _, prim := range prims {
			for _, ts := range []int{128, 256, 512, 1024} {
				for _, bytes := range []int64{512, 4 << 10, 100_000, 256 << 10} {
					cfg := base
					cfg.Run.Primitive = prim
					cfg.PIM.TSBytes = ts
					k, err := kernel.Build(cfg, spec, bytes)
					if err != nil {
						t.Fatalf("Build(%s/%v/ts=%d): %v", spec.Name, prim, ts, err)
					}
					got, err := twin.CellCounts(cfg, spec, bytes)
					if err != nil {
						t.Fatalf("CellCounts(%s/%v/ts=%d): %v", spec.Name, prim, ts, err)
					}
					if got.MemCmds != k.MemCmds || got.ExecCmds != k.ExecCmds || got.Orders != k.Orders ||
						got.HostBytes != k.HostBytes || got.HostOps != k.HostOps {
						t.Errorf("%s/%v/ts=%d bytes=%d: counts = %+v, Build = mem %d exec %d orders %d hostB %d hostOps %d",
							spec.Name, prim, ts, bytes, got, k.MemCmds, k.ExecCmds, k.Orders, k.HostBytes, k.HostOps)
					}
				}
			}
		}
	}
}

// TestArtifactCodecLadder walks the decode failure ladder: every
// corruption class maps to its sentinel, and all of them classify as
// ErrCalibration.
func TestArtifactCodecLadder(t *testing.T) {
	art := &twin.Artifact{
		ConfigHash: "deadbeef00112233", Channels: 16,
		BytesMin: 16 << 10, BytesMax: 256 << 10,
		Anchors: []int64{16 << 10, 256 << 10}, Seed: 1,
		Entries: []twin.Entry{{
			Kernel: "add", Primitive: "fence", TSBytes: 256,
			Cycles: twin.Lin{F: 100, S: 10}, CyclesBound: 0.02, Cells: 3,
		}},
	}
	valid, err := twin.Encode(art)
	if err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name string
		blob []byte
		want error
	}{
		{"empty", nil, twin.ErrTruncated},
		{"magic only", []byte("OLCAL1"), twin.ErrTruncated},
		{"bad magic", []byte("NOTCAL99999999999999999999999999999999999999999999"), twin.ErrFormat},
		{"half", valid[:len(valid)/2], twin.ErrTruncated},
		{"trailing garbage", append(append([]byte(nil), valid...), 0xAA), twin.ErrFormat},
		{"bit flip", flipLast(valid), twin.ErrChecksum},
		{"future version", bumpVersion(valid), twin.ErrVersion},
	}
	for _, tc := range tests {
		if _, err := twin.Decode(tc.blob); !errors.Is(err, tc.want) {
			t.Errorf("%s: Decode err = %v, want %v", tc.name, err, tc.want)
		} else if !errors.Is(err, twin.ErrCalibration) {
			t.Errorf("%s: %v does not classify as ErrCalibration", tc.name, err)
		}
	}

	got, err := twin.Decode(valid)
	if err != nil {
		t.Fatalf("valid blob: %v", err)
	}
	if got.ConfigHash != art.ConfigHash || len(got.Entries) != 1 || got.Entries[0] != art.Entries[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Hash() != art.Hash() {
		t.Fatalf("hash changed across round trip: %s vs %s", got.Hash(), art.Hash())
	}
}

func flipLast(b []byte) []byte {
	out := append([]byte(nil), b...)
	out[len(out)-1] ^= 0x01
	return out
}

func bumpVersion(b []byte) []byte {
	out := append([]byte(nil), b...)
	out[7] = 0x07 // version low byte, after the 6-byte magic
	return out
}

// TestSaveLoad round-trips an artifact through disk.
func TestSaveLoad(t *testing.T) {
	art := &twin.Artifact{ConfigHash: "cafe", Anchors: []int64{1024}, Entries: []twin.Entry{
		{Kernel: "copy", Primitive: "orderlight", TSBytes: 128, Cycles: twin.Lin{F: 1, S: 2}},
	}}
	path := filepath.Join(t.TempDir(), "calibration.olcal")
	if err := twin.Save(art, path); err != nil {
		t.Fatal(err)
	}
	got, err := twin.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != art.Hash() {
		t.Fatalf("hash mismatch after disk round trip")
	}
	if _, err := twin.Load(filepath.Join(t.TempDir(), "missing.olcal")); err == nil {
		t.Fatal("loading a missing file did not fail")
	}
}

// TestPredictorDeclines pins every out-of-confidence class to
// ErrOutOfConfidence.
func TestPredictorDeclines(t *testing.T) {
	cfg := config.Default()
	art := &twin.Artifact{
		ConfigHash: twin.NormalizedConfigHash(cfg),
		BytesMin:   16 << 10, BytesMax: 256 << 10,
		Entries: []twin.Entry{{Kernel: "add", Primitive: "fence", TSBytes: 256, Cycles: twin.Lin{F: 10, S: 100}}},
	}
	p := twin.NewPredictor(art)
	add, err := kernel.ByName("add")
	if err != nil {
		t.Fatal(err)
	}

	okCfg := cfg
	okCfg.Run.Primitive = config.PrimitiveFence
	if _, err := p.Predict(okCfg, add, 32<<10); err != nil {
		t.Fatalf("in-domain predict failed: %v", err)
	}

	foreign := okCfg
	foreign.Memory.Channels = 8
	seqno := okCfg
	seqno.Run.Primitive = config.PrimitiveSeqno
	noEntry := okCfg
	noEntry.PIM.TSBytes = 512
	custom := add
	custom.Phases = append([]kernel.PhaseSpec(nil), add.Phases...)
	custom.Phases[0].CmdsPerN = 2

	tests := []struct {
		name  string
		cfg   config.Config
		spec  kernel.Spec
		bytes int64
	}{
		{"foreign config", foreign, add, 32 << 10},
		{"seqno primitive", seqno, add, 32 << 10},
		{"no entry for ts", noEntry, add, 32 << 10},
		{"modified spec", okCfg, custom, 32 << 10},
		{"below range", okCfg, add, 1 << 10},
		{"above range", okCfg, add, 1 << 20},
	}
	for _, tc := range tests {
		if _, err := p.Predict(tc.cfg, tc.spec, tc.bytes); !errors.Is(err, twin.ErrOutOfConfidence) {
			t.Errorf("%s: err = %v, want ErrOutOfConfidence", tc.name, err)
		}
	}
}

// TestCalibrateCrossCheckPredict is the end-to-end harness at reduced
// scale: calibrate two kernels against the real skip engine, record
// bounds from a cross-check, and assert a fresh prediction at an
// uncalibrated intermediate footprint lands inside its envelope.
func TestCalibrateCrossCheckPredict(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs real simulations")
	}
	cfg := config.Default()
	specs := []kernel.Spec{mustSpec(t, "add"), mustSpec(t, "fc")}
	opt := twin.Options{
		Anchors: []int64{4 << 10, 16 << 10, 48 << 10},
		TSBytes: []int{256},
		Specs:   specs,
	}
	art, err := twin.Calibrate(context.Background(), cfg, skipRunner, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Entries) != len(specs)*3 {
		t.Fatalf("entries = %d, want %d", len(art.Entries), len(specs)*3)
	}
	p := twin.NewPredictor(art)

	var cells []twin.CheckCell
	for _, s := range specs {
		for _, prim := range twin.CalibrationPrimitives {
			cells = append(cells, twin.CheckCell{Kernel: s.Name, Primitive: prim, TSBytes: 256, Bytes: 24 << 10})
		}
	}
	results, err := twin.CrossCheck(context.Background(), cfg, p, skipRunner, cells, 0)
	if err != nil {
		t.Fatal(err)
	}
	twin.ApplyBounds(art, results, 0)

	for _, r := range results {
		i := entryIndex(t, art, r.Kernel, r.Primitive.String(), r.TSBytes)
		e := art.Entries[i]
		if e.CyclesBound <= 0 || e.Cells == 0 {
			t.Fatalf("%s/%v: bounds not applied: %+v", r.Kernel, r.Primitive, e)
		}
		if !twin.Within(float64(r.TwinTicks), float64(r.CycleTicks), e.CyclesBound, twin.CyclesAbsFloor) {
			t.Errorf("%s/%v: cross-checked cell outside its own bound: twin %d cycle %d bound %.3f",
				r.Kernel, r.Primitive, r.TwinTicks, r.CycleTicks, e.CyclesBound)
		}
		if math.Abs(r.CyclesErr) > 0.10 {
			t.Errorf("%s/%v: relative cycle error %.3f exceeds 10%%", r.Kernel, r.Primitive, r.CyclesErr)
		}
	}

	// A fresh in-domain prediction at a footprint no anchor or check
	// used must stay inside the envelope against a live measurement.
	c := cfg
	c.Run.Primitive = config.PrimitiveOrderLight
	pred, err := p.Predict(c, specs[0], 36<<10)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := skipRunner(context.Background(), c, specs[0], 36<<10)
	if err != nil {
		t.Fatal(err)
	}
	i := entryIndex(t, art, specs[0].Name, "orderlight", 256)
	if !twin.Within(float64(pred.Run.ExecTime()), float64(meas.ExecTime()), art.Entries[i].CyclesBound, twin.CyclesAbsFloor) {
		t.Errorf("fresh footprint outside envelope: twin %v cycle %v bound %.3f",
			pred.Run.ExecTime(), meas.ExecTime(), art.Entries[i].CyclesBound)
	}
	if pred.Run.Verified {
		t.Error("twin prediction claims functional verification")
	}
	if pred.Run.PIMCommands != meas.PIMCommands {
		t.Errorf("twin PIM commands %d != measured %d (counts must be exact)", pred.Run.PIMCommands, meas.PIMCommands)
	}
	if pred.Run.OLCount != meas.OLCount {
		t.Errorf("twin OL count %d != measured %d (counts must be exact)", pred.Run.OLCount, meas.OLCount)
	}
}

func mustSpec(t *testing.T, name string) kernel.Spec {
	t.Helper()
	s, err := kernel.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func entryIndex(t *testing.T, art *twin.Artifact, k, prim string, ts int) int {
	t.Helper()
	for i, e := range art.Entries {
		if e.Kernel == k && e.Primitive == prim && e.TSBytes == ts {
			return i
		}
	}
	t.Fatalf("no entry for %s/%s/ts=%d", k, prim, ts)
	return -1
}

package twin

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Version is the current calibration-artifact format version. Decode
// rejects any other version with ErrVersion.
const Version = 1

const magic = "OLCAL1"

// headerLen is magic + version + payload length + sha256.
const headerLen = len(magic) + 2 + 8 + sha256.Size

// Failure sentinels. ErrOutOfConfidence is the twin's single decline
// signal — any query outside the calibrated domain (foreign config,
// unknown or modified spec, footprint outside the anchored range,
// unmodeled primitive) gets it, so callers can escalate to the cycle
// engine with one errors.Is check. The decode ladder mirrors the
// ckpt/rcache idiom, and every decode sentinel wraps ErrCalibration so
// "the artifact is unusable" is one classification no matter how it
// broke.
var (
	ErrOutOfConfidence = errors.New("twin: query outside calibrated confidence domain")

	ErrCalibration = errors.New("twin: invalid calibration artifact")
	ErrTruncated   = fmt.Errorf("%w: truncated", ErrCalibration)
	ErrFormat      = fmt.Errorf("%w: format", ErrCalibration)
	ErrVersion     = fmt.Errorf("%w: version", ErrCalibration)
	ErrChecksum    = fmt.Errorf("%w: checksum mismatch", ErrCalibration)
)

// Entry is one calibrated model family: the fitted lines and recorded
// error bounds for a (kernel, primitive, temporary-storage) cell class.
// Stall lines are in core cycles, the cycles line in base ticks.
type Entry struct {
	Kernel    string // spec name, e.g. "daxpy"
	Primitive string // "none", "fence" or "orderlight"
	TSBytes   int

	Cycles     Lin  // End-Start, base ticks
	FenceStall Lin  // FenceStallCycles, core cycles
	OLStall    Lin  // OLStallCycles, core cycles
	Correct    bool // functional verdict observed during calibration

	// Recorded error envelope: relative bounds from the cross-check
	// pass (|pred-meas| ≤ bound·|meas| + absolute floor), and the cell
	// count that informed them. Zero bounds mean "never cross-checked"
	// and fail every envelope test — a calibration artifact without a
	// cross-check pass is not trustworthy by construction.
	CyclesBound float64
	FenceBound  float64
	OLBound     float64
	Cells       int
}

// Artifact is the persisted calibration: every fitted entry plus the
// domain it is valid for. It contains no maps and no timestamps, so
// its gob encoding — and therefore Hash — is deterministic and `make
// calibrate` regenerates it byte-identically from pinned seeds.
type Artifact struct {
	ConfigHash string  // NormalizedConfigHash of the base configuration
	Channels   int     // base-config channel count (informational)
	BytesMin   int64   // smallest anchored per-channel footprint
	BytesMax   int64   // largest anchored per-channel footprint
	Anchors    []int64 // per-channel footprints the fit was anchored on
	Seed       uint64  // base-config seed the anchors ran with
	Entries    []Entry // sorted by (Kernel, Primitive, TSBytes)
}

// sortEntries fixes the canonical entry order so encoding is
// reproducible regardless of calibration scheduling.
func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		if a.Primitive != b.Primitive {
			return a.Primitive < b.Primitive
		}
		return a.TSBytes < b.TSBytes
	})
}

// Encode renders the artifact into the versioned container format
// shared with internal/ckpt and internal/rcache:
//
//	magic "OLCAL1" | version uint16 | payload length uint64 | sha256 | gob payload
//
// (integers big-endian). Entries are sorted into canonical order first.
func Encode(a *Artifact) ([]byte, error) {
	sortEntries(a.Entries)
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(a); err != nil {
		return nil, fmt.Errorf("twin: encode calibration: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	out := make([]byte, 0, headerLen+payload.Len())
	out = append(out, magic...)
	out = binary.BigEndian.AppendUint16(out, Version)
	out = binary.BigEndian.AppendUint64(out, uint64(payload.Len()))
	out = append(out, sum[:]...)
	out = append(out, payload.Bytes()...)
	return out, nil
}

// Decode parses and verifies a calibration blob. Failure modes map to
// distinct sentinels: short read ErrTruncated, bad magic / trailing
// garbage / undecodable payload ErrFormat, future version ErrVersion,
// digest mismatch ErrChecksum — all wrapping ErrCalibration.
func Decode(blob []byte) (*Artifact, error) {
	if len(blob) < len(magic) {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(blob), headerLen)
	}
	if string(blob[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, blob[:len(magic)])
	}
	if len(blob) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(blob), headerLen)
	}
	ver := binary.BigEndian.Uint16(blob[len(magic):])
	if ver != Version {
		return nil, fmt.Errorf("%w: artifact is v%d, this build reads v%d", ErrVersion, ver, Version)
	}
	declared := binary.BigEndian.Uint64(blob[len(magic)+2:])
	var sum [sha256.Size]byte
	copy(sum[:], blob[len(magic)+10:])
	payload := blob[headerLen:]
	if uint64(len(payload)) < declared {
		return nil, fmt.Errorf("%w: payload is %d of %d declared bytes", ErrTruncated, len(payload), declared)
	}
	if uint64(len(payload)) > declared {
		return nil, fmt.Errorf("%w: %d bytes of trailing garbage", ErrFormat, uint64(len(payload))-declared)
	}
	if sha256.Sum256(payload) != sum {
		return nil, fmt.Errorf("%w: payload does not match header digest", ErrChecksum)
	}
	var a Artifact
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&a); err != nil {
		return nil, fmt.Errorf("%w: payload decode: %v", ErrFormat, err)
	}
	return &a, nil
}

// Hash returns the short content hash of the artifact: the first 16
// hex digits of the sha256 over its canonical gob payload. Manifests
// carry it so every twin answer names the exact calibration it came
// from.
func (a *Artifact) Hash() string {
	sortEntries(a.Entries)
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(a); err != nil {
		// Artifact is a plain struct of numbers and strings; gob cannot
		// fail on it. Guard anyway rather than corrupt a hash.
		panic(fmt.Sprintf("twin: artifact not encodable: %v", err))
	}
	sum := sha256.Sum256(payload.Bytes())
	return hex.EncodeToString(sum[:8])
}

// Save writes the artifact to path atomically (temp file + fsync +
// rename), the same crash discipline as checkpoints and cache blobs.
func Save(a *Artifact, path string) error {
	blob, err := Encode(a)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".*.tmp")
	if err != nil {
		return fmt.Errorf("twin: save calibration: %w", err)
	}
	tmp := f.Name()
	if _, err = f.Write(blob); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(tmp, 0o644)
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("twin: save calibration %s: %w", path, err)
	}
	return nil
}

// Load reads, verifies and decodes a calibration artifact from disk.
func Load(path string) (*Artifact, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("twin: load calibration: %w", err)
	}
	a, err := Decode(blob)
	if err != nil {
		return nil, fmt.Errorf("twin: load calibration %s: %w", path, err)
	}
	return a, nil
}

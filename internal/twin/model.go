package twin

// Lin is one fitted model line: quantity ≈ F + S·tiles. Every cell of
// a (kernel, primitive, TS) family executes the same per-tile phase
// structure, so its cycle-level quantities are affine in the tile
// count to first order — F captures fixed cost (drain of the last
// ordering point, pipeline fill), S the steady-state per-tile cost
// (command service under the DRAM timing ceiling plus the per-tile
// ordering stalls). The calibration pass fits both from cycle-engine
// anchor runs; see DESIGN.md §4j for the derivation and valid ranges.
type Lin struct {
	F float64 `json:"f"` // fixed offset at zero tiles
	S float64 `json:"s"` // slope per tile
}

// At evaluates the line at the given tile count.
func (l Lin) At(tiles int) float64 { return l.F + l.S*float64(tiles) }

// fitLin least-squares fits y ≈ F + S·x. With a single point (or all
// x equal) the slope is indeterminate: the fit degenerates to a flat
// line through the mean, which keeps interpolation safe and makes the
// degenerate case explicit instead of dividing by a zero variance.
func fitLin(x []int, y []float64) Lin {
	if len(x) == 0 {
		return Lin{}
	}
	var sx, sy, sxx, sxy float64
	for i, xi := range x {
		fx := float64(xi)
		sx += fx
		sy += y[i]
		sxx += fx * fx
		sxy += fx * y[i]
	}
	n := float64(len(x))
	den := n*sxx - sx*sx
	if den == 0 {
		return Lin{F: sy / n}
	}
	s := (n*sxy - sx*sy) / den
	return Lin{F: (sy - s*sx) / n, S: s}
}

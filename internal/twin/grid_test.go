package twin

// White-box tests for the calibration plumbing the end-to-end tests
// exercise only on their happy paths: option defaulting, the bounded
// worker pool's failure modes, the two check grids, and the predictor
// accessors around a loaded artifact.

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/kernel"
)

func TestOptionsWithDefaults(t *testing.T) {
	cfg := config.Default()
	o, err := Options{}.withDefaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(o.Anchors) != len(DefaultAnchors) {
		t.Errorf("default anchors %v, want %v", o.Anchors, DefaultAnchors)
	}
	if len(o.TSBytes) != len(CalibrationFractions) {
		t.Errorf("default TS sizes %v, want one per fraction %v", o.TSBytes, CalibrationFractions)
	}
	if len(o.Primitives) != len(CalibrationPrimitives) {
		t.Errorf("default primitives %v, want %v", o.Primitives, CalibrationPrimitives)
	}
	if len(o.Specs) != len(kernel.All()) {
		t.Errorf("default specs cover %d kernels, want all %d", len(o.Specs), len(kernel.All()))
	}
	if o.Parallelism < 1 {
		t.Errorf("default parallelism %d, want >= 1", o.Parallelism)
	}

	// Explicit fields survive defaulting untouched.
	o2, err := Options{Anchors: []int64{4 << 10}, TSBytes: []int{128},
		Primitives: []config.Primitive{config.PrimitiveFence}, Parallelism: 3}.withDefaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(o2.Anchors) != 1 || len(o2.TSBytes) != 1 || len(o2.Primitives) != 1 || o2.Parallelism != 3 {
		t.Errorf("explicit options were overridden: %+v", o2)
	}
}

func TestRunPool(t *testing.T) {
	t.Run("runs every index", func(t *testing.T) {
		var n atomic.Int64
		if err := runPool(context.Background(), 17, 4, func(i int) error {
			n.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if n.Load() != 17 {
			t.Errorf("ran %d jobs, want 17", n.Load())
		}
	})
	t.Run("first error wins and stops the pool", func(t *testing.T) {
		boom := errors.New("boom")
		err := runPool(context.Background(), 64, 2, func(i int) error {
			if i == 5 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Errorf("pool returned %v, want the job error", err)
		}
	})
	t.Run("cancellation surfaces", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		err := runPool(ctx, 8, 2, func(i int) error { return nil })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("pool returned %v, want context.Canceled", err)
		}
	})
	t.Run("more workers than jobs", func(t *testing.T) {
		var n atomic.Int64
		if err := runPool(context.Background(), 2, 16, func(i int) error {
			n.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if n.Load() != 2 {
			t.Errorf("ran %d jobs, want 2", n.Load())
		}
	})
}

func TestDefaultGridMirrorsExperiments(t *testing.T) {
	cfg := config.Default()
	cells, err := DefaultGrid(cfg, 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	// fig5: add/none at 1/8 plus add/fence at all four fractions; fig12:
	// every application kernel x 4 fractions x {fence, orderlight}.
	want := 1 + len(CalibrationFractions) + len(kernel.Apps())*len(CalibrationFractions)*2
	if len(cells) != want {
		t.Errorf("default grid has %d cells, want %d", len(cells), want)
	}
	if cells[0].Kernel != "add" || cells[0].Primitive != config.PrimitiveNone {
		t.Errorf("first cell %+v, want fig5's add/none", cells[0])
	}
	for _, c := range cells {
		if c.Bytes != 128<<10 {
			t.Fatalf("cell %+v does not carry the requested footprint", c)
		}
	}
}

func TestFullGridCoversEveryFamily(t *testing.T) {
	cfg := config.Default()
	foot := []int64{48 << 10, 128 << 10}
	cells, err := FullGrid(cfg, foot)
	if err != nil {
		t.Fatal(err)
	}
	want := len(kernel.All()) * len(CalibrationPrimitives) * len(CalibrationFractions) * len(foot)
	if len(cells) != want {
		t.Fatalf("full grid has %d cells, want %d", len(cells), want)
	}
	type family struct {
		kernel, prim string
		ts           int
	}
	seen := map[family]bool{}
	for _, c := range cells {
		seen[family{c.Kernel, c.Primitive.String(), c.TSBytes}] = true
	}
	if len(seen) != want/len(foot) {
		t.Errorf("full grid covers %d families, want %d", len(seen), want/len(foot))
	}
}

func TestLoadPredictorAccessors(t *testing.T) {
	art := &Artifact{
		ConfigHash: NormalizedConfigHash(config.Default()),
		BytesMin:   16 << 10, BytesMax: 256 << 10,
		Anchors: []int64{16 << 10, 256 << 10}, Seed: 1,
		Entries: []Entry{{Kernel: "add", Primitive: "fence", TSBytes: 256,
			CyclesBound: 0.02, FenceBound: 0.02, OLBound: 0.02, Cells: 1}},
	}
	path := filepath.Join(t.TempDir(), "cal.olcal")
	if err := Save(art, path); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPredictor(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hash() != art.Hash() {
		t.Errorf("loaded predictor hash %s, want %s", p.Hash(), art.Hash())
	}
	if got := p.Artifact(); got.ConfigHash != art.ConfigHash || len(got.Entries) != 1 {
		t.Errorf("Artifact() returned a different calibration: %+v", got)
	}
	if _, err := LoadPredictor(filepath.Join(t.TempDir(), "missing.olcal")); err == nil {
		t.Error("loading a missing artifact succeeded")
	}
}

package twin

import (
	"fmt"

	"orderlight/internal/config"
	"orderlight/internal/isa"
	"orderlight/internal/kernel"
)

// Counts are the exact whole-cell command totals the analytical twin
// derives in closed form. They replicate the kernel generator's
// arithmetic (tile count, per-phase command counts, ordering-point
// placement) without building a kernel image, which is what keeps a
// twin answer in the microsecond range: counts are combinatorial facts
// of (config, spec, footprint), not simulation outcomes, so the twin
// reports them exactly and only *cycle* quantities carry model error.
type Counts struct {
	Tiles    int   // tiles per channel
	MemCmds  int64 // commands occupying DRAM bank timing, all channels
	ExecCmds int64 // pure-ALU PIM commands, all channels
	Orders   int64 // ordering primitives emitted (0 when primitive=none)

	// Host-baseline accounting for the roofline model, matching the
	// generator's: bytes the host would move and int32 ops it would
	// execute for the same computation.
	HostBytes int64
	HostOps   int64
}

// TotalCmds returns every PIM command the cell issues.
func (c Counts) TotalCmds() int64 { return c.MemCmds + c.ExecCmds }

// phaseCmds mirrors kernel.PhaseSpec's unexported cmds method: a fixed
// count wins, otherwise the count scales with the tile size N and is
// floored at one command.
func phaseCmds(p kernel.PhaseSpec, n int) int {
	if p.FixedCmds > 0 {
		return p.FixedCmds
	}
	c := int(p.CmdsPerN*float64(n) + 0.5)
	if c < 1 {
		c = 1
	}
	return c
}

// CellCounts computes the exact command totals kernel.Build would
// report for the same (cfg, spec, bytesPerChannel) cell. Every tile
// emits the same phase structure and every channel emits the same tile
// count (RandomRows phases randomize addresses, never counts), so the
// totals are per-tile sums scaled by tiles × channels.
func CellCounts(cfg config.Config, spec kernel.Spec, bytesPerChannel int64) (Counts, error) {
	if err := cfg.Validate(); err != nil {
		return Counts{}, err
	}
	if err := spec.Validate(); err != nil {
		return Counts{}, err
	}
	n := cfg.CommandsPerTile()

	// Tile count: the primary data structure (first memory phase's
	// vector) must be covered once — the same rule Build applies.
	primary := -1
	perTile := make(map[int]int)
	for _, p := range spec.Phases {
		if !p.Kind.IsMemAccess() {
			continue
		}
		if primary < 0 {
			primary = p.Vec
		}
		if c := phaseCmds(p, n); c > perTile[p.Vec] {
			perTile[p.Vec] = c
		}
	}
	if primary < 0 {
		return Counts{}, fmt.Errorf("twin: spec %q has no memory phase", spec.Name)
	}
	dataCmds := bytesPerChannel / int64(cfg.BytesPerCommand())
	if dataCmds < 1 {
		dataCmds = 1
	}
	tiles := int((dataCmds + int64(perTile[primary]) - 1) / int64(perTile[primary]))
	if tiles < 1 {
		tiles = 1
	}

	// Per-tile sums. The generator ends every phase with an ordering
	// point and, when ExtraOrderEvery is set, inserts one more after
	// each full run of that many commands within a phase (the counter
	// resets at phase boundaries), i.e. floor((cmds-1)/every) extras.
	var mem, exec, orders, hostOps int64
	lanesPerSlot := int64(cfg.BytesPerCommand() / 4) // int32 lanes per slot
	for _, p := range spec.Phases {
		c := int64(phaseCmds(p, n))
		if p.Kind.IsMemAccess() {
			mem += c
		} else {
			exec += c
		}
		if p.Op != isa.OpNop {
			hostOps += c * lanesPerSlot
		}
		orders++
		if e := int64(spec.ExtraOrderEvery); e > 0 {
			orders += (c - 1) / e
		}
	}
	if prim := cfg.Run.Primitive; prim != config.PrimitiveFence && prim != config.PrimitiveOrderLight {
		orders = 0
	}

	scale := int64(tiles) * int64(cfg.Memory.Channels)
	return Counts{
		Tiles:     tiles,
		MemCmds:   mem * scale,
		ExecCmds:  exec * scale,
		Orders:    orders * scale,
		HostBytes: mem * scale * int64(cfg.BytesPerCommand()),
		HostOps:   hostOps * scale,
	}, nil
}

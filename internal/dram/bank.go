package dram

import (
	"fmt"

	"orderlight/internal/config"
)

// Cmd is a DRAM device command.
type Cmd uint8

const (
	// CmdACT opens (activates) a row in a bank.
	CmdACT Cmd = iota
	// CmdPRE closes (precharges) the open row of a bank.
	CmdPRE
	// CmdRD performs one 32 B column read from the open row.
	CmdRD
	// CmdWR performs one 32 B column write to the open row.
	CmdWR
)

// String implements fmt.Stringer.
func (c Cmd) String() string {
	switch c {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdRD:
		return "RD"
	case CmdWR:
		return "WR"
	default:
		return fmt.Sprintf("Cmd(%d)", uint8(c))
	}
}

// noRow marks a closed bank.
const noRow = -1

// bank is the timing state of one DRAM bank. All times are memory-clock
// cycle numbers at which the next command of each type becomes legal.
type bank struct {
	openRow int
	nextACT int64
	nextPRE int64
	nextRD  int64
	nextWR  int64
}

// Timing enforces the Table 1 DRAM timing constraints for one channel:
// per-bank row timing plus channel-global column-to-column and
// activate-to-activate spacing. It deliberately exposes a narrow
// CanIssue/Issue API so the memory controller cannot bypass a check.
type Timing struct {
	t     config.DRAMTiming
	banks []bank

	lastACT      int64 // channel-global, for tRRD
	lastCol      int64 // cycle of last column command on the channel bus
	lastColBank  int
	lastColWrite bool
	anyCol       bool // a column command has been issued before
	anyACT       bool
}

// NewTiming creates the timing checker for one channel with nbanks
// banks, all initially closed and immediately available.
func NewTiming(t config.DRAMTiming, nbanks int) *Timing {
	tm := &Timing{t: t, banks: make([]bank, nbanks), lastColBank: -1}
	for i := range tm.banks {
		tm.banks[i] = bank{openRow: noRow, nextACT: 0}
	}
	return tm
}

// OpenRow returns the open row of a bank, or -1 if closed.
func (tm *Timing) OpenRow(b int) int { return tm.banks[b].openRow }

// colEarliest returns the earliest legal cycle for a column command on
// bank b given channel-global column spacing and read/write turnaround.
func (tm *Timing) colEarliest(b int, write bool) int64 {
	if !tm.anyCol {
		return 0
	}
	var gap int64
	if b == tm.lastColBank {
		gap = int64(tm.t.CCDL)
	} else {
		gap = int64(tm.t.CCD)
	}
	earliest := tm.lastCol + gap
	// Bus turnaround between reads and writes (tCDLR in Table 1; applied
	// symmetrically — the write-to-read gap is not listed separately).
	if write != tm.lastColWrite {
		if e := tm.lastCol + int64(tm.t.CDLR); e > earliest {
			earliest = e
		}
	}
	return earliest
}

// Earliest returns the earliest memory cycle at which cmd targeting
// (bank b, row) could legally issue, or -1 if the command is illegal in
// the current state regardless of time (e.g. RD on a closed bank).
func (tm *Timing) Earliest(cmd Cmd, b, row int) int64 {
	bk := &tm.banks[b]
	switch cmd {
	case CmdACT:
		if bk.openRow != noRow {
			return -1
		}
		e := bk.nextACT
		if tm.anyACT {
			if r := tm.lastACT + int64(tm.t.RRD); r > e {
				e = r
			}
		}
		return e
	case CmdPRE:
		if bk.openRow == noRow {
			return -1
		}
		return bk.nextPRE
	case CmdRD:
		if bk.openRow != row {
			return -1
		}
		e := bk.nextRD
		if c := tm.colEarliest(b, false); c > e {
			e = c
		}
		return e
	case CmdWR:
		if bk.openRow != row {
			return -1
		}
		e := bk.nextWR
		if c := tm.colEarliest(b, true); c > e {
			e = c
		}
		return e
	default:
		panic(fmt.Sprintf("dram: unknown command %v", cmd))
	}
}

// CanIssue reports whether cmd may issue at the given memory cycle.
func (tm *Timing) CanIssue(cmd Cmd, b, row int, cycle int64) bool {
	e := tm.Earliest(cmd, b, row)
	return e >= 0 && cycle >= e
}

// Issue applies cmd at the given cycle, updating all timing state. It
// panics if the command is illegal at that cycle — the checker is the
// single source of truth and controllers must consult CanIssue first.
func (tm *Timing) Issue(cmd Cmd, b, row int, cycle int64) {
	if !tm.CanIssue(cmd, b, row, cycle) {
		panic(fmt.Sprintf("dram: illegal %v bank=%d row=%d at cycle %d (earliest %d, open row %d)",
			cmd, b, row, cycle, tm.Earliest(cmd, b, row), tm.banks[b].openRow))
	}
	bk := &tm.banks[b]
	switch cmd {
	case CmdACT:
		bk.openRow = row
		bk.nextRD = cycle + int64(tm.t.RCDR)
		bk.nextWR = cycle + int64(tm.t.RCDW)
		bk.nextPRE = cycle + int64(tm.t.RAS)
		tm.lastACT = cycle
		tm.anyACT = true
	case CmdPRE:
		bk.openRow = noRow
		bk.nextACT = cycle + int64(tm.t.RP)
	case CmdRD:
		if e := cycle + int64(tm.t.RTP); e > bk.nextPRE {
			bk.nextPRE = e
		}
		tm.lastCol, tm.lastColBank, tm.lastColWrite, tm.anyCol = cycle, b, false, true
	case CmdWR:
		if e := cycle + int64(tm.t.WTP); e > bk.nextPRE {
			bk.nextPRE = e
		}
		tm.lastCol, tm.lastColBank, tm.lastColWrite, tm.anyCol = cycle, b, true, true
	}
}

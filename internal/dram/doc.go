// Package dram models the HBM memory device of Table 1: address
// geometry, per-bank timing state machines enforcing the paper's
// timing parameters, and a functional backing store so that PIM
// commands move real data.
//
// # Address granularity
//
// The unit of address in the simulator is one command slot: the 32 B
// host-visible column access a fine-grained PIM command performs.
// Under a bandwidth multiplication factor (BMF) of k, the PIM units
// ganged behind a channel move k x 32 B per command, so each slot
// carries 8*BMF int32 lanes of payload while occupying the timing of a
// single 32 B column access. This matches the paper's definition of
// PIM data bandwidth as command bandwidth x BMF (§6) and keeps Figure
// 11's "8 column writes per 256 B temporary storage" arithmetic exact.
//
// # Timing
//
// Timing enforces tRCD/tRP/tRAS/tCCD/tRRD/tWTR/tRTW and row state per
// bank; the FR-FCFS scheduler in internal/memctrl consults it through
// CanIssue/Earliest. The row hit/miss behavior it produces drives the
// peak-command-bandwidth ceiling of Figure 11 and the row-hit-rate
// columns of the experiment tables. All-bank refresh (tREFI/tRFC) is
// owned by the controller and off by default, matching the paper's
// setup; the ablation-refresh experiment turns it on.
//
// # Backing store
//
// Store holds the channel-partitioned int32 image the PIM units compute
// over. It is what functional verification diffs against the reference
// executor, making ordering bugs visible as wrong bytes (Figure 5's
// broken no-primitive bars).
package dram

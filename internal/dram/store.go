package dram

import (
	"fmt"

	"orderlight/internal/isa"
)

// Store is the functional backing memory: a lazily allocated map from
// global slot address to the slot's int32 payload lanes. PIM units and
// the reference executor read and write through it, so the bytes a run
// produces are real and an ordering violation shows up as a wrong
// answer.
type Store struct {
	lanes int
	data  map[isa.Addr][]int32
}

// NewStore creates an empty store whose slots carry the given number of
// int32 lanes (8 * BMF).
func NewStore(lanes int) *Store {
	if lanes <= 0 {
		panic("dram: store needs at least one lane per slot")
	}
	return &Store{lanes: lanes, data: make(map[isa.Addr][]int32)}
}

// Lanes returns the number of int32 lanes per slot.
func (s *Store) Lanes() int { return s.lanes }

// Read returns the payload of a slot. Untouched slots read as zero.
// The returned slice must not be mutated; use Write.
func (s *Store) Read(a isa.Addr) []int32 {
	if v, ok := s.data[a]; ok {
		return v
	}
	return make([]int32, s.lanes)
}

// Write replaces the payload of a slot. The value slice is copied.
func (s *Store) Write(a isa.Addr, v []int32) {
	if len(v) != s.lanes {
		panic(fmt.Sprintf("dram: write of %d lanes to %d-lane store", len(v), s.lanes))
	}
	dst, ok := s.data[a]
	if !ok {
		dst = make([]int32, s.lanes)
		s.data[a] = dst
	}
	copy(dst, v)
}

// Update applies f lane-wise to the slot (read-modify-write, used by
// PIM_Scale).
func (s *Store) Update(a isa.Addr, f func(lane int, old int32) int32) {
	cur := s.Read(a)
	out := make([]int32, s.lanes)
	for i, v := range cur {
		out[i] = f(i, v)
	}
	s.Write(a, out)
}

// Touched returns the number of slots ever written.
func (s *Store) Touched() int { return len(s.data) }

// Clone deep-copies the store (used to snapshot initial state for the
// reference executor).
func (s *Store) Clone() *Store {
	c := NewStore(s.lanes)
	for a, v := range s.data {
		nv := make([]int32, s.lanes)
		copy(nv, v)
		c.data[a] = nv
	}
	return c
}

// Equal reports whether two stores hold identical contents, treating
// missing slots as zero-filled.
func (s *Store) Equal(o *Store) bool {
	if s.lanes != o.lanes {
		return false
	}
	zero := func(v []int32) bool {
		for _, x := range v {
			if x != 0 {
				return false
			}
		}
		return true
	}
	for a, v := range s.data {
		ov, ok := o.data[a]
		if !ok {
			if !zero(v) {
				return false
			}
			continue
		}
		for i := range v {
			if v[i] != ov[i] {
				return false
			}
		}
	}
	for a, ov := range o.data {
		if _, ok := s.data[a]; !ok && !zero(ov) {
			return false
		}
	}
	return true
}

// Diff returns up to max addresses whose contents differ between the two
// stores, for diagnostics.
func (s *Store) Diff(o *Store, max int) []isa.Addr {
	var out []isa.Addr
	seen := map[isa.Addr]bool{}
	for a := range s.data {
		seen[a] = true
	}
	for a := range o.data {
		seen[a] = true
	}
	for a := range seen {
		av, bv := s.Read(a), o.Read(a)
		for i := range av {
			if av[i] != bv[i] {
				out = append(out, a)
				break
			}
		}
		if len(out) >= max {
			break
		}
	}
	return out
}

package dram

import "orderlight/internal/isa"

// Memory is the slot-granular view PIM units execute against. *Store
// implements it directly; *Overlay implements it as a copy-on-write
// layer so per-channel shards of the parallel engine can execute
// against a shared base store without write races.
type Memory interface {
	// Lanes returns the number of int32 lanes per slot.
	Lanes() int
	// Read returns the payload of a slot; untouched slots read as zero.
	// The returned slice must not be mutated.
	Read(a isa.Addr) []int32
	// Write replaces the payload of a slot. The value slice is copied.
	Write(a isa.Addr, v []int32)
	// Update applies f lane-wise to the slot (read-modify-write).
	Update(a isa.Addr, f func(lane int, old int32) int32)
}

var (
	_ Memory = (*Store)(nil)
	_ Memory = (*Overlay)(nil)
)

// Overlay is a copy-on-write view over a base Store: reads fall through
// to the base until the slot is written, writes land in a private delta
// map. The parallel engine gives each channel its own overlay while the
// base is shared read-only; because channels write disjoint address
// sets, folding every overlay back into the base reproduces exactly the
// image sequential execution would have produced.
//
// An Overlay is not safe for concurrent use; concurrent *readers* of the
// shared base are safe as long as no goroutine writes the base.
type Overlay struct {
	base  *Store
	delta map[isa.Addr][]int32
}

// NewOverlay creates an empty overlay over base.
func NewOverlay(base *Store) *Overlay {
	return &Overlay{base: base, delta: make(map[isa.Addr][]int32)}
}

// Lanes returns the number of int32 lanes per slot.
func (o *Overlay) Lanes() int { return o.base.Lanes() }

// Read returns the slot's payload: the overlay's copy when the slot has
// been written through this overlay, otherwise the base's view.
func (o *Overlay) Read(a isa.Addr) []int32 {
	if v, ok := o.delta[a]; ok {
		return v
	}
	return o.base.Read(a)
}

// Write replaces the payload of a slot in the overlay's delta.
func (o *Overlay) Write(a isa.Addr, v []int32) {
	if len(v) != o.base.lanes {
		panic("dram: overlay write of wrong lane count")
	}
	dst, ok := o.delta[a]
	if !ok {
		dst = make([]int32, o.base.lanes)
		o.delta[a] = dst
	}
	copy(dst, v)
}

// Update applies f lane-wise to the slot, reading through to the base
// when the slot is clean.
func (o *Overlay) Update(a isa.Addr, f func(lane int, old int32) int32) {
	cur := o.Read(a)
	out := make([]int32, o.base.lanes)
	for i, v := range cur {
		out[i] = f(i, v)
	}
	o.Write(a, out)
}

// Dirty returns the number of slots written through the overlay since
// the last Fold.
func (o *Overlay) Dirty() int { return len(o.delta) }

// Fold writes every dirty slot back into the base store and clears the
// delta. Overlays over the same base must cover disjoint address sets
// for the result to be well defined; the parallel engine guarantees
// this by sharding on the channel bits of the address.
func (o *Overlay) Fold() {
	for a, v := range o.delta {
		o.base.Write(a, v)
		delete(o.delta, a)
	}
}

package dram

import (
	"testing"

	"orderlight/internal/isa"
)

func TestOverlayReadThrough(t *testing.T) {
	base := NewStore(4)
	base.Write(isa.Addr(8), []int32{1, 2, 3, 4})
	o := NewOverlay(base)

	if o.Lanes() != 4 {
		t.Fatalf("Lanes() = %d, want 4", o.Lanes())
	}
	// Clean slots read through to the base; untouched slots read as zero.
	if got := o.Read(isa.Addr(8)); got[0] != 1 || got[3] != 4 {
		t.Fatalf("read-through = %v, want base payload", got)
	}
	if got := o.Read(isa.Addr(16)); got[0] != 0 {
		t.Fatalf("untouched slot reads %v, want zeros", got)
	}

	// A write lands in the delta, not the base.
	o.Write(isa.Addr(8), []int32{9, 9, 9, 9})
	if got := o.Read(isa.Addr(8)); got[0] != 9 {
		t.Fatalf("overlay read after write = %v, want delta payload", got)
	}
	if got := base.Read(isa.Addr(8)); got[0] != 1 {
		t.Fatalf("base mutated by overlay write: %v", got)
	}
	if o.Dirty() != 1 {
		t.Fatalf("Dirty() = %d, want 1", o.Dirty())
	}
}

func TestOverlayUpdateAndFold(t *testing.T) {
	base := NewStore(2)
	base.Write(isa.Addr(0), []int32{10, 20})
	o := NewOverlay(base)

	// Update on a clean slot reads through to the base.
	o.Update(isa.Addr(0), func(lane int, old int32) int32 { return old + 1 })
	// Update on a dirty slot compounds on the delta.
	o.Update(isa.Addr(0), func(lane int, old int32) int32 { return old * 2 })
	o.Write(isa.Addr(8), []int32{7, 7})

	if got := o.Read(isa.Addr(0)); got[0] != 22 || got[1] != 42 {
		t.Fatalf("compound update = %v, want [22 42]", got)
	}
	if got := base.Read(isa.Addr(0)); got[0] != 10 {
		t.Fatalf("base mutated before Fold: %v", got)
	}

	o.Fold()
	if o.Dirty() != 0 {
		t.Fatalf("Dirty() after Fold = %d, want 0", o.Dirty())
	}
	if got := base.Read(isa.Addr(0)); got[0] != 22 || got[1] != 42 {
		t.Fatalf("base after Fold = %v, want folded payload", got)
	}
	if got := base.Read(isa.Addr(8)); got[0] != 7 {
		t.Fatalf("base after Fold = %v, want folded payload", got)
	}
}

func TestOverlayDisjointFoldEquivalence(t *testing.T) {
	// Two overlays writing disjoint address sets fold back into exactly
	// the image direct sequential writes would have produced — the
	// property the parallel engine's per-channel sharding rests on.
	direct := NewStore(1)
	base := NewStore(1)
	a, b := NewOverlay(base), NewOverlay(base)
	for i := 0; i < 64; i++ {
		addr := isa.Addr(i * 4)
		direct.Write(addr, []int32{int32(i)})
		if i%2 == 0 {
			a.Write(addr, []int32{int32(i)})
		} else {
			b.Write(addr, []int32{int32(i)})
		}
	}
	a.Fold()
	b.Fold()
	if !base.Equal(direct) {
		t.Fatalf("folded overlays diverge from direct writes at %v", base.Diff(direct, 4))
	}
}

func TestOverlayRejectsWrongLaneCount(t *testing.T) {
	o := NewOverlay(NewStore(4))
	defer func() {
		if recover() == nil {
			t.Fatal("overlay write with wrong lane count did not panic")
		}
	}()
	o.Write(isa.Addr(0), []int32{1})
}

package dram

import (
	"fmt"

	"orderlight/internal/isa"
)

// Geometry describes the addressable organization of the memory system
// in command slots.
type Geometry struct {
	Channels     int // memory channels
	Banks        int // banks per channel
	SlotsPerRow  int // 32 B command slots per row (RowBufferBytes / BusWidth)
	Groups       int // PIM memory-groups per channel
	LanesPerSlot int // int32 payload lanes per slot (8 * BMF)
}

// NewGeometry derives the slot geometry from raw byte parameters.
func NewGeometry(channels, banks, rowBytes, busBytes, groups, bmf int) Geometry {
	return Geometry{
		Channels:     channels,
		Banks:        banks,
		SlotsPerRow:  rowBytes / busBytes,
		Groups:       groups,
		LanesPerSlot: busBytes / 4 * bmf,
	}
}

// Loc is a decoded slot address.
type Loc struct {
	Channel int
	Bank    int
	Row     int
	Col     int // slot index within the row
}

// Encode packs a location into a global slot address. The layout is
// channel-interleaved at slot granularity with [row | bank | col] inside
// the channel, so consecutive channel-local addresses walk the columns
// of one row before switching banks.
func (g Geometry) Encode(l Loc) isa.Addr {
	if l.Channel < 0 || l.Channel >= g.Channels || l.Bank < 0 || l.Bank >= g.Banks ||
		l.Col < 0 || l.Col >= g.SlotsPerRow || l.Row < 0 {
		panic(fmt.Sprintf("dram: Encode out-of-range location %+v for %+v", l, g))
	}
	local := (uint64(l.Row)*uint64(g.Banks)+uint64(l.Bank))*uint64(g.SlotsPerRow) + uint64(l.Col)
	return isa.Addr(local*uint64(g.Channels) + uint64(l.Channel))
}

// Decode unpacks a global slot address.
func (g Geometry) Decode(a isa.Addr) Loc {
	ch := int(uint64(a) % uint64(g.Channels))
	local := uint64(a) / uint64(g.Channels)
	col := int(local % uint64(g.SlotsPerRow))
	rb := local / uint64(g.SlotsPerRow)
	bank := int(rb % uint64(g.Banks))
	row := int(rb / uint64(g.Banks))
	return Loc{Channel: ch, Bank: bank, Row: row, Col: col}
}

// GroupOf returns the PIM memory-group a bank belongs to: banks are
// partitioned into contiguous runs of Banks/Groups.
func (g Geometry) GroupOf(bank int) int {
	return bank / (g.Banks / g.Groups)
}

// BanksOfGroup returns the banks composing a memory-group, ascending.
func (g Geometry) BanksOfGroup(group int) []int {
	per := g.Banks / g.Groups
	out := make([]int, per)
	for i := range out {
		out[i] = group*per + i
	}
	return out
}

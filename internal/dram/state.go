package dram

import (
	"fmt"

	"orderlight/internal/isa"
)

// This file is the dram layer's checkpoint surface: exported snapshot
// structs plus State/Restore pairs for the per-channel Timing checker
// and the functional Store.

// BankState is one bank's timing state.
type BankState struct {
	OpenRow int
	NextACT int64
	NextPRE int64
	NextRD  int64
	NextWR  int64
}

// TimingState is the Timing checker's checkpointable state: per-bank
// row/command timing plus the channel-global spacing trackers. The
// timing parameters themselves are configuration, not state.
type TimingState struct {
	Banks        []BankState
	LastACT      int64
	LastCol      int64
	LastColBank  int
	LastColWrite bool
	AnyCol       bool
	AnyACT       bool
}

// State captures the full timing state of the channel.
func (tm *Timing) State() TimingState {
	s := TimingState{
		Banks:        make([]BankState, len(tm.banks)),
		LastACT:      tm.lastACT,
		LastCol:      tm.lastCol,
		LastColBank:  tm.lastColBank,
		LastColWrite: tm.lastColWrite,
		AnyCol:       tm.anyCol,
		AnyACT:       tm.anyACT,
	}
	for i, b := range tm.banks {
		s.Banks[i] = BankState{OpenRow: b.openRow, NextACT: b.nextACT, NextPRE: b.nextPRE, NextRD: b.nextRD, NextWR: b.nextWR}
	}
	return s
}

// Restore replaces the timing state with the snapshot.
func (tm *Timing) Restore(s TimingState) error {
	if len(s.Banks) != len(tm.banks) {
		return fmt.Errorf("dram: snapshot has %d banks, channel has %d", len(s.Banks), len(tm.banks))
	}
	for i, b := range s.Banks {
		tm.banks[i] = bank{openRow: b.OpenRow, nextACT: b.NextACT, nextPRE: b.NextPRE, nextRD: b.NextRD, nextWR: b.NextWR}
	}
	tm.lastACT = s.LastACT
	tm.lastCol = s.LastCol
	tm.lastColBank = s.LastColBank
	tm.lastColWrite = s.LastColWrite
	tm.anyCol = s.AnyCol
	tm.anyACT = s.AnyACT
	return nil
}

// StoreState is the Store's checkpointable state: the lane width and a
// deep copy of every touched slot.
type StoreState struct {
	Lanes int
	Data  map[isa.Addr][]int32
}

// State deep-copies the store contents.
func (s *Store) State() StoreState {
	st := StoreState{Lanes: s.lanes, Data: make(map[isa.Addr][]int32, len(s.data))}
	for a, v := range s.data {
		st.Data[a] = append([]int32(nil), v...)
	}
	return st
}

// Restore replaces the store contents with the snapshot, in place, so
// every component sharing the store pointer sees the restored image.
func (s *Store) Restore(st StoreState) error {
	if st.Lanes != s.lanes {
		return fmt.Errorf("dram: snapshot store has %d lanes, store has %d", st.Lanes, s.lanes)
	}
	s.data = make(map[isa.Addr][]int32, len(st.Data))
	for a, v := range st.Data {
		if len(v) != s.lanes {
			return fmt.Errorf("dram: snapshot slot %d has %d lanes, store has %d", a, len(v), s.lanes)
		}
		s.data[a] = append([]int32(nil), v...)
	}
	return nil
}

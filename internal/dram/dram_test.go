package dram

import (
	"testing"
	"testing/quick"

	"orderlight/internal/config"
	"orderlight/internal/isa"
	"orderlight/internal/sim"
)

func testGeometry() Geometry {
	c := config.Default()
	return NewGeometry(c.Memory.Channels, c.Memory.BanksPerChannel,
		c.Memory.RowBufferBytes, c.Memory.BusWidthBytes,
		c.Memory.GroupsPerChannel, c.PIM.BMF)
}

func TestGeometryDerivation(t *testing.T) {
	g := testGeometry()
	if g.SlotsPerRow != 64 {
		t.Errorf("SlotsPerRow = %d, want 64 (2048/32)", g.SlotsPerRow)
	}
	if g.LanesPerSlot != 128 {
		t.Errorf("LanesPerSlot = %d, want 128 (8 lanes x BMF 16)", g.LanesPerSlot)
	}
}

func TestGeometryRoundTripProperty(t *testing.T) {
	g := testGeometry()
	f := func(ch, bank, row, col uint16) bool {
		l := Loc{
			Channel: int(ch) % g.Channels,
			Bank:    int(bank) % g.Banks,
			Row:     int(row) % 1024,
			Col:     int(col) % g.SlotsPerRow,
		}
		return g.Decode(g.Encode(l)) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryEncodePanicsOutOfRange(t *testing.T) {
	g := testGeometry()
	defer func() {
		if recover() == nil {
			t.Fatal("Encode out of range did not panic")
		}
	}()
	g.Encode(Loc{Channel: g.Channels})
}

func TestGeometryConsecutiveColsShareRow(t *testing.T) {
	g := testGeometry()
	a := g.Encode(Loc{Channel: 3, Bank: 2, Row: 5, Col: 0})
	b := g.Encode(Loc{Channel: 3, Bank: 2, Row: 5, Col: 1})
	if uint64(b)-uint64(a) != uint64(g.Channels) {
		t.Fatalf("column stride = %d, want %d (channel interleave)", b-a, g.Channels)
	}
}

func TestGroupOf(t *testing.T) {
	g := testGeometry() // 16 banks, 4 groups -> 4 banks each
	cases := map[int]int{0: 0, 3: 0, 4: 1, 7: 1, 12: 3, 15: 3}
	for bank, want := range cases {
		if got := g.GroupOf(bank); got != want {
			t.Errorf("GroupOf(%d) = %d, want %d", bank, got, want)
		}
	}
	banks := g.BanksOfGroup(2)
	if len(banks) != 4 || banks[0] != 8 || banks[3] != 11 {
		t.Errorf("BanksOfGroup(2) = %v", banks)
	}
}

func defaultTiming() *Timing {
	return NewTiming(config.Default().Memory.Timing, 16)
}

func TestTimingActivateThenColumn(t *testing.T) {
	tm := defaultTiming()
	if !tm.CanIssue(CmdACT, 0, 7, 0) {
		t.Fatal("ACT on idle bank at cycle 0 rejected")
	}
	tm.Issue(CmdACT, 0, 7, 0)
	if tm.OpenRow(0) != 7 {
		t.Fatalf("OpenRow = %d, want 7", tm.OpenRow(0))
	}
	// RCDW=9: first write legal exactly at cycle 9.
	if tm.CanIssue(CmdWR, 0, 7, 8) {
		t.Fatal("WR allowed before tRCDW")
	}
	if !tm.CanIssue(CmdWR, 0, 7, 9) {
		t.Fatal("WR rejected at tRCDW")
	}
	// Reads to a different row are illegal regardless of time.
	if e := tm.Earliest(CmdRD, 0, 8); e != -1 {
		t.Fatalf("RD to closed row earliest = %d, want -1", e)
	}
}

// TestTimingFigure11 reproduces the paper's Figure 11 arithmetic: open a
// row, send 8 column writes, precharge, open the next row — exactly 44
// memory cycles with Table 1 timing (tRCDW=9 + 7xtCCDL=14 + tWTP=9 +
// tRP=12).
func TestTimingFigure11(t *testing.T) {
	tm := defaultTiming()
	tm.Issue(CmdACT, 0, 0, 0)
	cycle := int64(9) // first write at tRCDW
	for i := 0; i < 8; i++ {
		e := tm.Earliest(CmdWR, 0, 0)
		if e > cycle {
			cycle = e
		}
		tm.Issue(CmdWR, 0, 0, cycle)
	}
	if cycle != 23 {
		t.Fatalf("8th write at cycle %d, want 23 (9 + 7x2)", cycle)
	}
	pre := tm.Earliest(CmdPRE, 0, 0)
	if pre != 32 {
		t.Fatalf("PRE earliest = %d, want 32 (23 + tWTP 9)", pre)
	}
	tm.Issue(CmdPRE, 0, 0, pre)
	act := tm.Earliest(CmdACT, 0, 1)
	if act != 44 {
		t.Fatalf("next ACT earliest = %d, want 44 (32 + tRP 12)", act)
	}
}

func TestTimingReadRowCycle(t *testing.T) {
	// Same exercise with reads: ACT@0, RD@9..23. Read-to-precharge
	// (23+RTP=25) is floored by tRAS=28, so PRE@28 and ACT@28+12=40.
	tm := defaultTiming()
	tm.Issue(CmdACT, 1, 0, 0)
	cycle := int64(0)
	for i := 0; i < 8; i++ {
		e := tm.Earliest(CmdRD, 1, 0)
		if e > cycle {
			cycle = e
		}
		tm.Issue(CmdRD, 1, 0, cycle)
	}
	if cycle != 23 {
		t.Fatalf("8th read at cycle %d, want 23", cycle)
	}
	if pre := tm.Earliest(CmdPRE, 1, 0); pre != 28 {
		t.Fatalf("PRE earliest = %d, want 28 (tRAS floor)", pre)
	}
	tm.Issue(CmdPRE, 1, 0, 28)
	if act := tm.Earliest(CmdACT, 1, 5); act != 40 {
		t.Fatalf("next ACT earliest = %d, want 40", act)
	}
}

func TestTimingRASFloor(t *testing.T) {
	// With a single column access, precharge waits for tRAS (28), not
	// the column-to-precharge delay.
	tm := defaultTiming()
	tm.Issue(CmdACT, 0, 0, 0)
	tm.Issue(CmdWR, 0, 0, 9)
	if pre := tm.Earliest(CmdPRE, 0, 0); pre != 28 {
		t.Fatalf("PRE earliest = %d, want 28 (tRAS)", pre)
	}
}

func TestTimingRRDAcrossBanks(t *testing.T) {
	tm := defaultTiming()
	tm.Issue(CmdACT, 0, 0, 0)
	if tm.CanIssue(CmdACT, 1, 0, 2) {
		t.Fatal("ACT on second bank inside tRRD allowed")
	}
	if !tm.CanIssue(CmdACT, 1, 0, 3) {
		t.Fatal("ACT on second bank at tRRD rejected")
	}
}

func TestTimingColumnSpacingAcrossBanks(t *testing.T) {
	tm := defaultTiming()
	tm.Issue(CmdACT, 0, 0, 0)
	tm.Issue(CmdACT, 1, 0, 3)
	tm.Issue(CmdRD, 0, 0, 9)
	// Different bank: CCD=1 applies.
	if !tm.CanIssue(CmdRD, 1, 0, 12) {
		t.Fatal("cross-bank read at RCDR+CCD window rejected")
	}
	// Same bank: CCDL=2 applies.
	if tm.CanIssue(CmdRD, 0, 0, 10) {
		t.Fatal("same-bank read inside tCCDL allowed")
	}
	if !tm.CanIssue(CmdRD, 0, 0, 11) {
		t.Fatal("same-bank read at tCCDL rejected")
	}
}

func TestTimingReadWriteTurnaround(t *testing.T) {
	tm := defaultTiming()
	tm.Issue(CmdACT, 0, 0, 0)
	tm.Issue(CmdRD, 0, 0, 9)
	// CDLR=3: a write after a read waits the turnaround, not just CCDL.
	if tm.CanIssue(CmdWR, 0, 0, 11) {
		t.Fatal("write inside read-to-write turnaround allowed")
	}
	if !tm.CanIssue(CmdWR, 0, 0, 12) {
		t.Fatal("write at read-to-write turnaround rejected")
	}
}

func TestTimingIssuePanicsOnViolation(t *testing.T) {
	tm := defaultTiming()
	defer func() {
		if recover() == nil {
			t.Fatal("illegal Issue did not panic")
		}
	}()
	tm.Issue(CmdRD, 0, 0, 0) // closed bank
}

// TestTimingNeverAdmitsViolationProperty drives random command attempts
// through CanIssue/Issue and re-validates externally that per-bank
// protocol invariants hold: column commands only to the open row, no
// ACT on an open bank, no PRE on a closed one, monotonically
// non-decreasing issue cycles per constraint window.
func TestTimingNeverAdmitsViolationProperty(t *testing.T) {
	cfg := config.Default().Memory.Timing
	f := func(ops []uint16, seed uint64) bool {
		tm := NewTiming(cfg, 4)
		rng := sim.NewRand(seed)
		open := [4]int{-1, -1, -1, -1}
		cycle := int64(0)
		for _, op := range ops {
			b := int(op) % 4
			row := int(op/4) % 8
			var cmd Cmd
			switch (op / 32) % 4 {
			case 0:
				cmd = CmdACT
			case 1:
				cmd = CmdPRE
			case 2:
				cmd = CmdRD
			case 3:
				cmd = CmdWR
			}
			cycle += int64(rng.Intn(4))
			if !tm.CanIssue(cmd, b, row, cycle) {
				continue
			}
			// External protocol invariants, tracked independently.
			switch cmd {
			case CmdACT:
				if open[b] != -1 {
					return false
				}
				open[b] = row
			case CmdPRE:
				if open[b] == -1 {
					return false
				}
				open[b] = -1
			case CmdRD, CmdWR:
				if open[b] != row {
					return false
				}
			}
			tm.Issue(cmd, b, row, cycle)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreReadWrite(t *testing.T) {
	s := NewStore(4)
	a := isa.Addr(100)
	if got := s.Read(a); len(got) != 4 || got[0] != 0 {
		t.Fatalf("fresh Read = %v, want zeros", got)
	}
	s.Write(a, []int32{1, 2, 3, 4})
	if got := s.Read(a); got[2] != 3 {
		t.Fatalf("Read = %v", got)
	}
	s.Update(a, func(_ int, old int32) int32 { return old * 10 })
	if got := s.Read(a); got[3] != 40 {
		t.Fatalf("after Update, Read = %v", got)
	}
	if s.Touched() != 1 {
		t.Fatalf("Touched = %d, want 1", s.Touched())
	}
}

func TestStoreWriteWrongLanesPanics(t *testing.T) {
	s := NewStore(4)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-lane write did not panic")
		}
	}()
	s.Write(0, []int32{1})
}

func TestStoreCloneAndEqual(t *testing.T) {
	s := NewStore(2)
	s.Write(1, []int32{5, 6})
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Write(1, []int32{5, 7})
	if s.Equal(c) {
		t.Fatal("diverged stores reported equal")
	}
	if d := s.Diff(c, 10); len(d) != 1 || d[0] != 1 {
		t.Fatalf("Diff = %v, want [1]", d)
	}
	// A zero-filled written slot equals an absent slot.
	z := NewStore(2)
	z.Write(9, []int32{0, 0})
	if !z.Equal(NewStore(2)) {
		t.Fatal("explicit zeros should equal absent slot")
	}
}

func TestStoreReadIsolation(t *testing.T) {
	// Read of an absent slot returns a fresh buffer each time; mutating
	// it must not corrupt the store.
	s := NewStore(2)
	v := s.Read(3)
	v[0] = 99
	if got := s.Read(3); got[0] != 0 {
		t.Fatal("mutating a Read result of an absent slot leaked into the store")
	}
}

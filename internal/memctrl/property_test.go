package memctrl

import (
	"testing"
	"testing/quick"

	"orderlight/internal/config"
	"orderlight/internal/isa"
	"orderlight/internal/sim"
)

// TestControllerEpochOrderProperty drives the full controller with
// random request streams punctuated by OrderLight packets and verifies
// the end-to-end invariant at the device: within a memory-group, no
// request crosses an OrderLight packet that separates it from an older
// request.
func TestControllerEpochOrderProperty(t *testing.T) {
	cfg := config.Default()
	f := func(plan []uint16, seed uint64) bool {
		c, _, geom, _ := newTestController(cfg)
		var log []isa.Request
		c.IssueLog = &log
		rng := sim.NewRand(seed)

		// epochOf[group] counts OrderLight packets sent to that group;
		// sent[id] records each request's (group, epoch).
		type tag struct {
			group int
			epoch int
		}
		epochOf := map[int]int{}
		pktNum := map[int]uint32{}
		sent := map[uint64]tag{}
		var queue []isa.Request
		var id uint64 = 1
		for _, op := range plan {
			if op%7 == 0 {
				g := int(op/7) % geom.Groups
				queue = append(queue, olReq(id, g, pktNum[g]))
				pktNum[g]++
				epochOf[g]++
				id++
				continue
			}
			bank := int(op) % geom.Banks
			row := int(op/16) % 8
			col := rng.Intn(geom.SlotsPerRow)
			kind := isa.KindPIMLoad
			if op%3 == 0 {
				kind = isa.KindPIMStore
			}
			r := req(geom, id, kind, isa.OpNop, bank, row, col, 0)
			sent[id] = tag{group: r.Group, epoch: epochOf[r.Group]}
			queue = append(queue, r)
			id++
		}
		// Feed and drain.
		for cy := int64(0); cy < 200000; cy++ {
			for len(queue) > 0 && c.CanAccept(queue[0]) {
				c.Accept(queue[0])
				queue = queue[1:]
			}
			c.Tick(cy)
			if len(queue) == 0 && c.Pending() == 0 {
				break
			}
		}
		if c.Pending() != 0 {
			return false // stuck
		}
		// Invariant: per group, device-issue epochs are non-decreasing.
		lastEpoch := map[int]int{}
		for _, r := range log {
			tg := sent[r.ID]
			if tg.epoch < lastEpoch[tg.group] {
				return false
			}
			lastEpoch[tg.group] = tg.epoch
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestControllerRefreshStateMachine(t *testing.T) {
	cfg := config.Default()
	cfg.Memory.RefreshEnabled = true
	cfg.Memory.REFI = 200
	cfg.Memory.RFC = 40
	c, _, geom, st := newTestController(cfg)

	// A steady stream of row-hit stores, long enough to span several
	// refresh windows.
	var queue []isa.Request
	var id uint64 = 1
	for i := 0; i < 256; i++ {
		queue = append(queue, req(geom, id, isa.KindPIMStore, isa.OpNop, 0, 0, i%64, 0))
		id++
	}
	var done int64 = -1
	for cy := int64(0); cy < 100000; cy++ {
		for len(queue) > 0 && c.CanAccept(queue[0]) {
			c.Accept(queue[0])
			queue = queue[1:]
		}
		c.Tick(cy)
		if len(queue) == 0 && c.Pending() == 0 {
			done = cy
			break
		}
	}
	if done < 0 {
		t.Fatal("stream did not drain under refresh")
	}
	if st.Refreshes == 0 {
		t.Fatal("no refreshes performed")
	}
	wantMin := done/int64(cfg.Memory.REFI) - 2
	if int64(st.Refreshes) < wantMin {
		t.Fatalf("refreshes = %d over %d cycles, want >= %d", st.Refreshes, done, wantMin)
	}
	if st.PIMCommands != 256 {
		t.Fatalf("commands lost across refresh: %d", st.PIMCommands)
	}
}

func TestControllerRefreshDrainsOpenBanks(t *testing.T) {
	cfg := config.Default()
	cfg.Memory.RefreshEnabled = true
	cfg.Memory.REFI = 100
	cfg.Memory.RFC = 30
	c, _, geom, st := newTestController(cfg)

	// Open several banks, then go idle across a refresh boundary: the
	// drain must precharge them all.
	for b := 0; b < 4; b++ {
		c.Accept(req(geom, uint64(b+1), isa.KindPIMStore, isa.OpNop, b, 0, 0, 0))
	}
	for cy := int64(0); cy < 400; cy++ {
		c.Tick(cy)
	}
	if st.Refreshes == 0 {
		t.Fatal("idle channel never refreshed")
	}
	if st.PreCmds < 4 {
		t.Fatalf("PreCmds = %d, want >= 4 (drain precharges)", st.PreCmds)
	}
}

// TestControllerSeqnoOoOArrivalNoDeadlock: requests arriving out of
// sequence order (as an OoO host produces) must still drain — the
// PopBest dequeue keeps the next expected sequence reachable.
func TestControllerSeqnoOoOArrivalNoDeadlock(t *testing.T) {
	cfg := config.Default()
	cfg.Run.Primitive = config.PrimitiveSeqno
	c, _, geom, _ := newTestController(cfg)
	var log []isa.Request
	c.IssueLog = &log

	// Arrival order 2,0,3,1 with mixed read/write queues.
	mk := func(id uint64, seq uint64, kind isa.Kind, row int) isa.Request {
		r := req(geom, id, kind, isa.OpNop, 0, row, int(seq), 0)
		r.Seq = seq
		return r
	}
	c.Accept(mk(1, 2, isa.KindPIMStore, 1))
	c.Accept(mk(2, 0, isa.KindPIMLoad, 0))
	c.Accept(mk(3, 3, isa.KindPIMLoad, 0))
	c.Accept(mk(4, 1, isa.KindPIMStore, 1))
	if cy := run(c, 10000); cy >= 10000 {
		t.Fatal("out-of-order arrival deadlocked the seqno controller")
	}
	for i := 0; i < 4; i++ {
		if log[i].Seq != uint64(i) {
			t.Fatalf("issue order %v, want seq order", ids(log))
		}
	}
}

package memctrl

import (
	"testing"

	"orderlight/internal/config"
	"orderlight/internal/dram"
	"orderlight/internal/isa"
	"orderlight/internal/stats"
)

func newTestController(cfg config.Config) (*Controller, *dram.Store, dram.Geometry, *stats.Run) {
	geom := dram.NewGeometry(cfg.Memory.Channels, cfg.Memory.BanksPerChannel,
		cfg.Memory.RowBufferBytes, cfg.Memory.BusWidthBytes,
		cfg.Memory.GroupsPerChannel, cfg.PIM.BMF)
	store := dram.NewStore(geom.LanesPerSlot)
	st := stats.New(cfg.BytesPerCommand())
	c := New(0, cfg, geom, store, st)
	return c, store, geom, st
}

// req builds a request targeting channel 0 with fields resolved the way
// the NoC resolves them before the controller.
func req(geom dram.Geometry, id uint64, kind isa.Kind, op isa.ALUOp, bank, row, col, slot int) isa.Request {
	addr := geom.Encode(dram.Loc{Channel: 0, Bank: bank, Row: row, Col: col})
	return isa.Request{
		ID: id, Kind: kind, Op: op, Addr: addr,
		Channel: 0, Group: geom.GroupOf(bank), Bank: bank, Row: row, TSlot: slot,
	}
}

func olReq(id uint64, group int, num uint32) isa.Request {
	return isa.Request{
		ID: id, Kind: isa.KindOrderLight, Channel: 0, Group: group,
		OL: isa.OLPacket{PktID: isa.PktIDOrderLight, Channel: 0, Group: uint8(group), Number: num},
	}
}

// run ticks the controller until it drains or maxCycles pass.
func run(c *Controller, maxCycles int64) int64 {
	for cy := int64(0); cy < maxCycles; cy++ {
		c.Tick(cy)
		if c.Pending() == 0 {
			return cy
		}
	}
	return maxCycles
}

func TestControllerVectorAddTile(t *testing.T) {
	cfg := config.Default()
	c, store, geom, _ := newTestController(cfg)

	// One tile of Figure 4 with N=2: rows 0 (a), 1 (b), 2 (c) in bank 0.
	for col := 0; col < 2; col++ {
		a := geom.Encode(dram.Loc{Channel: 0, Bank: 0, Row: 0, Col: col})
		b := geom.Encode(dram.Loc{Channel: 0, Bank: 0, Row: 1, Col: col})
		av := make([]int32, geom.LanesPerSlot)
		bv := make([]int32, geom.LanesPerSlot)
		for l := range av {
			av[l] = int32(100 + col)
			bv[l] = int32(1000 + col)
		}
		store.Write(a, av)
		store.Write(b, bv)
	}
	seq := []isa.Request{
		req(geom, 1, isa.KindPIMLoad, isa.OpNop, 0, 0, 0, 0),
		req(geom, 2, isa.KindPIMLoad, isa.OpNop, 0, 0, 1, 1),
		olReq(3, 0, 0),
		req(geom, 4, isa.KindPIMCompute, isa.OpAdd, 0, 1, 0, 0),
		req(geom, 5, isa.KindPIMCompute, isa.OpAdd, 0, 1, 1, 1),
		olReq(6, 0, 1),
		req(geom, 7, isa.KindPIMStore, isa.OpNop, 0, 2, 0, 0),
		req(geom, 8, isa.KindPIMStore, isa.OpNop, 0, 2, 1, 1),
	}
	for _, r := range seq {
		if !c.CanAccept(r) {
			t.Fatalf("controller rejected %v", r)
		}
		c.Accept(r)
	}
	if cy := run(c, 10000); cy >= 10000 {
		t.Fatal("controller did not drain")
	}
	for col := 0; col < 2; col++ {
		cAddr := geom.Encode(dram.Loc{Channel: 0, Bank: 0, Row: 2, Col: col})
		got := store.Read(cAddr)
		want := int32(1100 + 2*col)
		if got[0] != want {
			t.Fatalf("c[%d] = %d, want %d", col, got[0], want)
		}
	}
}

func TestControllerOrderLightPreventsOvertake(t *testing.T) {
	cfg := config.Default()
	c, _, geom, _ := newTestController(cfg)
	var log []isa.Request
	c.IssueLog = &log

	// Tile t: store to row 2 (bank 0). OrderLight. Tile t+1: loads to
	// row 0 (bank 0). Without ordering the loads would be preferred once
	// row 0 opens; with OrderLight they must wait for the store.
	c.Accept(req(geom, 1, isa.KindPIMStore, isa.OpNop, 0, 2, 0, 0))
	c.Accept(olReq(2, 0, 0))
	c.Accept(req(geom, 3, isa.KindPIMLoad, isa.OpNop, 0, 0, 0, 0))
	c.Accept(req(geom, 4, isa.KindPIMLoad, isa.OpNop, 0, 0, 1, 1))
	run(c, 10000)

	if len(log) != 3 {
		t.Fatalf("issued %d requests, want 3", len(log))
	}
	if log[0].ID != 1 {
		t.Fatalf("issue order %v: store did not issue first", ids(log))
	}
}

func TestControllerNoPrimitiveAllowsReorder(t *testing.T) {
	cfg := config.Default()
	c, _, geom, _ := newTestController(cfg)
	var log []isa.Request
	c.IssueLog = &log

	// Same-bank conflict: oldest is a store to row 2, then loads to row
	// 0 — all in one epoch. The store is oldest so its ACT goes first,
	// but once any row opens, row-hit-first can pick younger loads.
	// Craft the canonical hazard: loads to the row that is already open.
	c.Accept(req(geom, 1, isa.KindPIMLoad, isa.OpNop, 0, 0, 0, 0)) // opens row 0
	c.Accept(req(geom, 2, isa.KindPIMStore, isa.OpNop, 0, 2, 0, 0))
	c.Accept(req(geom, 3, isa.KindPIMLoad, isa.OpNop, 0, 0, 1, 1)) // row hit on 0
	run(c, 10000)

	if len(log) != 3 {
		t.Fatalf("issued %d requests, want 3", len(log))
	}
	// FR-FCFS must have hoisted request 3 (row hit) above request 2.
	if !(log[0].ID == 1 && log[1].ID == 3 && log[2].ID == 2) {
		t.Fatalf("issue order %v: expected row-hit-first reorder [1 3 2]", ids(log))
	}
}

func TestControllerGroupsIndependent(t *testing.T) {
	cfg := config.Default()
	c, _, geom, _ := newTestController(cfg)
	var log []isa.Request
	c.IssueLog = &log

	// Group 0 (bank 0) is blocked behind an OrderLight; group 1 (bank 4)
	// must proceed immediately.
	c.Accept(req(geom, 1, isa.KindPIMStore, isa.OpNop, 0, 9, 0, 0))
	c.Accept(olReq(2, 0, 0))
	c.Accept(req(geom, 3, isa.KindPIMLoad, isa.OpNop, 0, 1, 0, 0)) // group 0, gated
	c.Accept(req(geom, 4, isa.KindPIMLoad, isa.OpNop, 4, 0, 0, 1)) // group 1, free
	run(c, 10000)

	// Request 4 must not be last: it is independent of group 0's barrier.
	if log[len(log)-1].ID == 4 {
		t.Fatalf("issue order %v: independent group was serialized", ids(log))
	}
}

func TestControllerOLMergesOnceAcrossQueues(t *testing.T) {
	cfg := config.Default()
	c, _, geom, st := newTestController(cfg)

	// Reads and writes in flight on both queues, one OL between them.
	c.Accept(req(geom, 1, isa.KindPIMLoad, isa.OpNop, 0, 0, 0, 0))
	c.Accept(req(geom, 2, isa.KindPIMStore, isa.OpNop, 0, 1, 0, 0))
	c.Accept(olReq(3, 0, 0))
	c.Accept(req(geom, 4, isa.KindPIMLoad, isa.OpNop, 0, 0, 1, 1))
	run(c, 10000)

	if st.OLMerges != 1 {
		t.Fatalf("OLMerges = %d, want exactly 1 (copies merged at scheduler)", st.OLMerges)
	}
	if st.PIMCommands != 3 {
		t.Fatalf("PIMCommands = %d, want 3", st.PIMCommands)
	}
}

func TestControllerPIMExecNoBankTiming(t *testing.T) {
	cfg := config.Default()
	c, _, _, st := newTestController(cfg)
	for i := 0; i < 4; i++ {
		c.Accept(isa.Request{
			ID: uint64(i + 1), Kind: isa.KindPIMExec, Op: isa.OpAdd,
			Channel: 0, Group: 0, TSlot: 0, Imm: 1,
		})
	}
	cy := run(c, 1000)
	// Four execs need only dequeue+bus slots: far less than a row cycle.
	if cy > 20 {
		t.Fatalf("4 exec commands took %d cycles", cy)
	}
	if st.CmdsByKind[isa.KindPIMExec] != 4 {
		t.Fatalf("exec count = %d", st.CmdsByKind[isa.KindPIMExec])
	}
	if st.ActCmds != 0 || st.RowMisses != 0 {
		t.Fatal("exec commands must not touch bank timing")
	}
}

func TestControllerBackpressure(t *testing.T) {
	cfg := config.Default()
	cfg.GPU.RWQueueSize = 2
	c, _, geom, _ := newTestController(cfg)
	// Fill the read queue without ticking.
	c.Accept(req(geom, 1, isa.KindPIMLoad, isa.OpNop, 0, 0, 0, 0))
	c.Accept(req(geom, 2, isa.KindPIMLoad, isa.OpNop, 0, 0, 1, 1))
	if c.CanAccept(req(geom, 3, isa.KindPIMLoad, isa.OpNop, 0, 0, 2, 2)) {
		t.Fatal("full read queue accepted another read")
	}
	// Writes ride the other queue and are still accepted.
	if !c.CanAccept(req(geom, 4, isa.KindPIMStore, isa.OpNop, 0, 1, 0, 0)) {
		t.Fatal("write rejected while write queue empty")
	}
	// An OrderLight needs room on BOTH queues.
	if c.CanAccept(olReq(5, 0, 0)) {
		t.Fatal("OrderLight accepted with a full read queue")
	}
}

func TestControllerRowHitAccounting(t *testing.T) {
	cfg := config.Default()
	c, _, geom, st := newTestController(cfg)
	for i := 0; i < 8; i++ {
		c.Accept(req(geom, uint64(i+1), isa.KindPIMStore, isa.OpNop, 0, 0, i, 0))
	}
	run(c, 10000)
	if st.RowMisses != 1 || st.RowHits != 7 {
		t.Fatalf("hits=%d misses=%d, want 7/1", st.RowHits, st.RowMisses)
	}
	if st.ActCmds != 1 {
		t.Fatalf("ActCmds = %d, want 1", st.ActCmds)
	}
}

// TestControllerFigure11Rate reproduces the steady-state command rate of
// Figure 11: alternating 8-command write bursts between two conflicting
// rows sustain 8 commands per 44 memory cycles (tRCDW 9 + 7xtCCDL 14 +
// tWTP 9 + tRP 12).
func TestControllerFigure11Rate(t *testing.T) {
	cfg := config.Default()
	c, _, geom, st := newTestController(cfg)

	// Lazily generated request stream: per tile, 8 writes to row 0
	// ("vector p"), an OrderLight, 8 writes to row 1 ("vector q"), an
	// OrderLight. Rows conflict in bank 0.
	const tiles = 20
	var queue []isa.Request
	var id uint64 = 1
	var pktNum uint32
	for tile := 0; tile < tiles; tile++ {
		for _, row := range []int{0, 1} {
			for col := 0; col < 8; col++ {
				queue = append(queue, req(geom, id, isa.KindPIMStore, isa.OpNop, 0, row, (tile*8+col)%64, 0))
				id++
			}
			queue = append(queue, olReq(id, 0, pktNum))
			id++
			pktNum++
		}
	}
	var done int64 = -1
	for cy := int64(0); cy < 100000; cy++ {
		for len(queue) > 0 && c.CanAccept(queue[0]) {
			c.Accept(queue[0])
			queue = queue[1:]
		}
		c.Tick(cy)
		if len(queue) == 0 && c.Pending() == 0 {
			done = cy
			break
		}
	}
	if done < 0 {
		t.Fatal("stream did not drain")
	}
	if st.PIMCommands != tiles*16 {
		t.Fatalf("PIMCommands = %d, want %d", st.PIMCommands, tiles*16)
	}
	// Steady state: 44 cycles per 8-command burst. Allow slack for the
	// pipeline fill of the first burst.
	wantMin, wantMax := int64(tiles*2*44-50), int64(tiles*2*44+60)
	if done < wantMin || done > wantMax {
		t.Fatalf("drained in %d cycles, want ~%d (8 commands / 44 cycles)", done, tiles*2*44)
	}
}

func TestControllerSeqnoStrictOrder(t *testing.T) {
	cfg := config.Default()
	cfg.Run.Primitive = config.PrimitiveSeqno
	c, _, geom, _ := newTestController(cfg)
	var log []isa.Request
	c.IssueLog = &log

	// The row-hit bait of TestControllerNoPrimitiveAllowsReorder: under
	// sequence numbers the controller must refuse the hoist.
	r1 := req(geom, 1, isa.KindPIMLoad, isa.OpNop, 0, 0, 0, 0)
	r1.Seq = 0
	r2 := req(geom, 2, isa.KindPIMStore, isa.OpNop, 0, 2, 0, 0)
	r2.Seq = 1
	r3 := req(geom, 3, isa.KindPIMLoad, isa.OpNop, 0, 0, 1, 1)
	r3.Seq = 2
	c.Accept(r1)
	c.Accept(r2)
	c.Accept(r3)
	run(c, 10000)

	if len(log) != 3 || log[0].Seq != 0 || log[1].Seq != 1 || log[2].Seq != 2 {
		t.Fatalf("seqno issue order = %v, want strict [0 1 2]", ids(log))
	}
}

func TestControllerSeqnoHostUnordered(t *testing.T) {
	cfg := config.Default()
	cfg.Run.Primitive = config.PrimitiveSeqno
	c, _, geom, _ := newTestController(cfg)
	var log []isa.Request
	c.IssueLog = &log

	// A host load arriving between PIM requests is not held to the PIM
	// sequence: it may issue whenever the scheduler likes.
	p0 := req(geom, 1, isa.KindPIMStore, isa.OpNop, 0, 5, 0, 0)
	p0.Seq = 0
	host := req(geom, 2, isa.KindHostLoad, isa.OpNop, 4, 0, 0, 0)
	host.Seq = 0 // host requests carry no meaningful sequence
	p1 := req(geom, 3, isa.KindPIMLoad, isa.OpNop, 0, 6, 0, 0)
	p1.Seq = 1
	c.Accept(p0)
	c.Accept(host)
	c.Accept(p1)
	run(c, 10000)
	if len(log) != 3 {
		t.Fatalf("issued %d, want 3", len(log))
	}
}

func TestControllerPanicsOnMalformedPIMCommand(t *testing.T) {
	// Failure injection: a PIM command with a TS slot beyond the unit's
	// capacity is a modeling bug and must crash loudly, not corrupt
	// silently.
	cfg := config.Default()
	c, _, geom, _ := newTestController(cfg)
	bad := req(geom, 1, isa.KindPIMLoad, isa.OpNop, 0, 0, 0, 10_000)
	c.Accept(bad)
	defer func() {
		if recover() == nil {
			t.Fatal("malformed PIM command executed without panic")
		}
	}()
	run(c, 10000)
}

func TestControllerPanicsOnNonIncreasingPacketNumbers(t *testing.T) {
	// The packet-number field exists for exactly this sanity check
	// (§5.3.1): a replayed/duplicated packet number is a protocol error.
	cfg := config.Default()
	c, _, _, _ := newTestController(cfg)
	c.Accept(olReq(1, 0, 5))
	c.Accept(olReq(2, 0, 5))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate packet number accepted silently")
		}
	}()
	run(c, 10000)
}

func ids(reqs []isa.Request) []uint64 {
	out := make([]uint64, len(reqs))
	for i, r := range reqs {
		out[i] = r.ID
	}
	return out
}

// Package memctrl implements one memory channel's controller: separate
// read/write queues (Table 1: 64 entries each), an FR-FCFS transaction
// scheduler, DRAM command generation subject to the timing model, and —
// the paper's §5.3.2 augmentation — OrderLight enforcement via a
// per-memory-group request counter and flag (generalized to epochs).
//
// # Where the ordering designs meet
//
//   - With fences, the controller is unmodified; correctness relies on
//     the core never having two dependent commands in flight at once.
//   - With OrderLight, packets replicated into the read and write
//     queues merge at the scheduler stage (copy-and-merge, Figure 9)
//     and gate FR-FCFS's reordering freedom per memory-group.
//   - With no primitive at all, FR-FCFS's row-hit-first policy freely
//     reorders dependent PIM commands and the functional result is
//     corrupted — Figure 5's "functionally incorrect" configuration.
//   - The §8.1 sequence-number baseline releases PIM requests to the
//     device strictly in warp order (related-seqno experiment).
//
// The scheduler's row hit/miss split and command counts feed the
// bandwidth figures (10a, 11) and the row-hit-rate columns of the
// tables; an optional all-bank refresh state machine (off in the
// paper's setup) feeds the ablation-refresh experiment. When a trace
// sink is armed, every ACT/PRE/RD/WR, refresh window and PIM command
// execution is exported on the channel's MC and PIM tracks
// (internal/obs).
package memctrl

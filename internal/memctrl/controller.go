package memctrl

import (
	"fmt"

	"orderlight/internal/config"
	"orderlight/internal/core"
	"orderlight/internal/dram"
	"orderlight/internal/fault"
	"orderlight/internal/isa"
	"orderlight/internal/obs"
	"orderlight/internal/pim"
	"orderlight/internal/sim"
	"orderlight/internal/stats"
)

// Controller drives one memory channel.
type Controller struct {
	channel int
	geom    dram.Geometry
	timing  *dram.Timing
	unit    *pim.Unit
	tracker *core.Tracker
	div     *core.Diverge
	conv    *core.Converge
	txq     []txEntry
	txqCap  int
	st      *stats.Run

	// Sequence-number baseline state (§8.1): when enabled, PIM requests
	// issue to the device strictly in warp sequence order.
	seqno   bool
	nextSeq uint64
	fcfs    bool // strict oldest-first scheduling (ablation)

	// All-bank refresh state (optional; off in the paper's setup).
	refreshOn    bool
	refi, rfc    int64
	nextRefresh  int64
	refreshUntil int64
	draining     bool

	// OnIssue, if set, is called when a request's column command (or a
	// PIMExec's bus slot) issues to the device — the completion event
	// acknowledgments are generated from.
	OnIssue func(r isa.Request)

	// IssueLog, if non-nil, records requests in device issue order (used
	// by tests and the trace tool).
	IssueLog *[]isa.Request

	// Sink, if non-nil, receives device-level events: every DRAM command
	// (ACT/PRE/RD/WR, refresh as a tRFC-long span) on the channel's MC
	// track and every PIM command execution on the channel's PIM track.
	// Armed by Machine.SetSink.
	Sink obs.Sink

	// Fault, if non-nil, is the ordering-fault injection plan for this
	// run: it can weaken OrderLight tracker programming (dequeue),
	// bypass the tracker's issue gate (canIssue), and defer PIM
	// write-back visibility (issueColumn). Armed by
	// Machine.SetFaultPlan. All Plan decision methods are nil-safe.
	Fault *fault.Plan
}

// txEntry is one transaction in the scheduler's working set.
type txEntry struct {
	r      isa.Request
	epoch  core.Epoch
	didACT bool // this transaction triggered its own activate (row miss)
}

// Sub-path indices of the read/write queue divergence point.
const (
	pathRead  = 0
	pathWrite = 1
)

// rwPaths is the (immutable) path set an OrderLight packet visits; a
// shared slice so GroupPaths never allocates on the per-cycle
// CanAccept path.
var rwPaths = []int{pathRead, pathWrite}

// never is the NextWork value for "no self-generated future work". It
// matches sim.NoWork by construction (both are max int64).
const never = int64(^uint64(0) >> 1)

// New creates the controller for one channel.
func New(channel int, cfg config.Config, geom dram.Geometry, store *dram.Store, st *stats.Run) *Controller {
	c := &Controller{
		channel: channel,
		geom:    geom,
		timing:  dram.NewTiming(cfg.Memory.Timing, geom.Banks),
		unit:    pim.NewUnit(channel, cfg.CommandsPerTile()*cfg.Memory.GroupsPerChannel, store),
		tracker: core.NewTracker(geom.Groups),
		conv:    core.NewConverge(2, cfg.GPU.RWQueueSize),
		txq:     make([]txEntry, 0, cfg.GPU.RWQueueSize),
		txqCap:  cfg.GPU.RWQueueSize,
		st:      st,
		seqno:   cfg.Run.Primitive == config.PrimitiveSeqno,
		fcfs:    cfg.Memory.Sched == config.SchedFCFS,

		refreshOn:   cfg.Memory.RefreshEnabled,
		refi:        int64(cfg.Memory.REFI),
		rfc:         int64(cfg.Memory.RFC),
		nextRefresh: int64(cfg.Memory.REFI),
	}
	c.div = &core.Diverge{
		NPaths: 2,
		Route: func(r isa.Request) int {
			if r.Kind.IsWrite() {
				return pathWrite
			}
			return pathRead
		},
		// An OrderLight packet must visit both queues regardless of
		// group: either queue may hold older requests of its group.
		GroupPaths: func(int) []int { return rwPaths },
	}
	return c
}

// Unit exposes the channel's PIM unit (for result verification).
func (c *Controller) Unit() *pim.Unit { return c.unit }

// SetStats redirects the controller's statistics counters to st. The
// parallel engine points each channel at a private stats.Run so shards
// can count concurrently, then folds the privates into the machine's
// run; counters are plain sums, so folding is exact.
func (c *Controller) SetStats(st *stats.Run) { c.st = st }

// Tracker exposes the ordering tracker (for tests).
func (c *Controller) Tracker() *core.Tracker { return c.tracker }

// CanAccept reports whether the controller can take the request from
// the L2-to-DRAM pipe this cycle: every divergence target must have room.
func (c *Controller) CanAccept(r isa.Request) bool {
	for _, p := range c.div.Targets(r) {
		if !c.conv.CanPush(p) {
			return false
		}
	}
	return true
}

// Accept places the request into the read/write queues, replicating an
// OrderLight packet onto both (§5.3.2). Callers must check CanAccept.
func (c *Controller) Accept(r isa.Request) {
	targets := c.div.Targets(r)
	rep := core.Replicate(r, 0)
	if r.Kind == isa.KindOrderLight && len(targets) > 1 {
		rep = core.Replicate(r, len(targets))
	}
	for _, p := range targets {
		if !c.conv.CanPush(p) {
			panic(fmt.Sprintf("memctrl: Accept without room on path %d for %v", p, r))
		}
		c.conv.Push(p, rep)
	}
}

// Pending returns the number of requests buffered anywhere in the
// controller (queues, scheduler working set, and PIM commands whose
// write-back visibility a fault plan has deferred).
func (c *Controller) Pending() int { return c.conv.Len() + len(c.txq) + c.unit.Deferred() }

// emit reports a device-level event if a sink is armed. Commands occur
// at memory-clock edges that are identical under the dense and
// skip-ahead engines, so the exported stream is engine-independent.
func (c *Controller) emit(kind, name string, memCycle, durCycles int64, detail string) {
	if c.Sink == nil {
		return
	}
	c.Sink.Emit(obs.Event{
		Name:   name,
		Track:  obs.Track{Kind: kind, ID: c.channel},
		At:     sim.Time(memCycle) * sim.MemTicks,
		Dur:    sim.Time(durCycles) * sim.MemTicks,
		Detail: detail,
	})
}

// Tick advances the controller by one memory-clock cycle.
func (c *Controller) Tick(memCycle int64) {
	// Fault-deferred PIM write-backs become visible first: deferral is
	// purely functional (no bus slot), so it runs even on cycles the
	// refresh machinery owns.
	if c.unit.Deferred() > 0 {
		if err := c.unit.RunDue(memCycle); err != nil {
			panic(fmt.Sprintf("memctrl: deferred PIM execution failed: %v", err))
		}
	}
	c.dequeue()
	if c.refresh(memCycle) {
		return // the refresh machinery owns the command bus this cycle
	}
	c.schedule(memCycle)
}

// NextWork returns the earliest memory cycle >= cycle at which Tick
// could change any state or statistic: the current cycle when the
// controller has immediate work (a dequeue slot, a due refresh, an
// issuable or tracker-blocked transaction), a future wake-up cycle
// derived from DRAM timing and refresh deadlines otherwise, and `never`
// (max int64) when the controller is empty and refresh is off. Hints
// may be early — the engine then fires an edge Tick treats as a no-op,
// exactly as the dense engine does every cycle — but are never late.
func (c *Controller) NextWork(cycle int64) int64 {
	if c.conv.Len() > 0 && len(c.txq) < c.txqCap {
		return cycle // dequeue admits one request per cycle
	}
	next := never
	if due, ok := c.unit.NextDue(); ok {
		if due <= cycle {
			return cycle // a deferred PIM write-back becomes visible now
		}
		next = due
	}
	if c.refreshOn {
		if cycle < c.refreshUntil {
			// Mid-refresh: the command bus is blocked until tRFC elapses,
			// but a deferred write-back (already in next) can act sooner.
			if c.refreshUntil < next {
				next = c.refreshUntil
			}
			return next
		}
		if c.draining || cycle >= c.nextRefresh {
			return cycle // precharge drain / refresh proper owns the bus every cycle
		}
		if c.nextRefresh < next {
			next = c.nextRefresh
		}
	}
	if len(c.txq) > 0 {
		w := c.nextSchedule(cycle)
		if w <= cycle {
			return cycle
		}
		if w < next {
			next = w
		}
	}
	return next
}

// nextSchedule mirrors schedule()'s two passes without side effects: it
// returns the earliest cycle at which some eligible transaction could
// issue a column, precharge or activate command. Two states force the
// current cycle: a PIMExec candidate (always bus-ready) and the
// no-eligible-candidate state, where schedule() accrues OLFlagBlocked
// every cycle and must therefore tick densely.
func (c *Controller) nextSchedule(cycle int64) int64 {
	next := never
	any := false
	for i := range c.txq {
		e := &c.txq[i]
		if !c.canIssue(e) {
			continue
		}
		if c.seqno && e.r.Kind.IsPIM() && e.r.Seq != c.nextSeq {
			continue
		}
		any = true
		if e.r.Kind == isa.KindPIMExec {
			return cycle
		}
		cmd := dram.CmdRD
		if e.r.Kind.IsWrite() {
			cmd = dram.CmdWR
		}
		if t := c.timing.Earliest(cmd, e.r.Bank, e.r.Row); t >= 0 && t < next {
			next = t
		}
		// Bank-progress wake-up (schedule's pass 2): the precharge or
		// activate the transaction needs before its column can issue.
		switch open := c.timing.OpenRow(e.r.Bank); {
		case open == e.r.Row:
			// Row open; the column wake-up above covers it.
		case open >= 0:
			if t := c.timing.Earliest(dram.CmdPRE, e.r.Bank, open); t >= 0 && t < next {
				next = t
			}
		default:
			if t := c.timing.Earliest(dram.CmdACT, e.r.Bank, e.r.Row); t >= 0 && t < next {
				next = t
			}
		}
		if next <= cycle {
			return cycle
		}
	}
	if !any {
		return cycle // scheduler deferral: OLFlagBlocked accrues per cycle
	}
	return next
}

// refresh runs the all-bank refresh state machine: when tREFI elapses,
// open banks are drained with precharges, then the whole channel blocks
// for tRFC. Returns true while refresh activity blocks scheduling.
func (c *Controller) refresh(cycle int64) bool {
	if !c.refreshOn {
		return false
	}
	if cycle < c.refreshUntil {
		return true // mid-refresh
	}
	if !c.draining {
		if cycle < c.nextRefresh {
			return false
		}
		c.draining = true
	}
	// Drain: close any open bank (one precharge per cycle as timing
	// allows); the command bus stays reserved during the drain.
	for b := 0; b < c.geom.Banks; b++ {
		open := c.timing.OpenRow(b)
		if open < 0 {
			continue
		}
		if c.timing.CanIssue(dram.CmdPRE, b, open, cycle) {
			c.timing.Issue(dram.CmdPRE, b, open, cycle)
			c.st.PreCmds++
			if c.Sink != nil {
				c.emit("mc", "PRE", cycle, 0, fmt.Sprintf("bank %d (refresh drain)", b))
			}
		}
		return true
	}
	// All banks closed: refresh proper.
	c.draining = false
	c.refreshUntil = cycle + c.rfc
	c.nextRefresh += c.refi
	c.st.Refreshes++
	c.emit("mc", "REF", cycle, c.rfc, "all-bank refresh")
	return true
}

// dequeue moves one entry per cycle from the queue stage into the
// scheduler's working set, registering it with the ordering tracker in
// arrival order (merged OrderLight packets program the tracker here).
func (c *Controller) dequeue() {
	if len(c.txq) >= c.txqCap {
		return
	}
	var r isa.Request
	var ok bool
	if c.seqno {
		// Drain the read/write queues in warp sequence order so the
		// scheduler's working set always contains the next expected
		// request (otherwise the bounded working set could fill with
		// younger requests and deadlock).
		r, ok = c.conv.PopBest(func(a, b isa.Request) bool {
			if a.Kind.IsPIM() != b.Kind.IsPIM() {
				return !a.Kind.IsPIM() // host traffic is unordered; let it through
			}
			return a.Seq < b.Seq
		})
	} else {
		r, ok = c.conv.Pop()
	}
	if !ok {
		return
	}
	if r.Kind == isa.KindOrderLight {
		c.st.OLMerges++
		groups := r.OL.Groups()
		if c.Fault.ShouldWeakenDrain(r.ID) {
			// Weakened drain semantics: the packet's cross-group targets
			// are never programmed into the tracker; a single-group packet
			// is dropped at the controller outright, releasing its epoch's
			// younger requests early.
			if len(groups) > 1 {
				c.Fault.RecordN(fault.PointOLWeakened, int64(len(groups)-1))
				groups = groups[:1]
			} else {
				c.Fault.Record(fault.PointOLDropped)
				groups = nil
			}
		}
		for _, g := range groups {
			if err := c.tracker.OrderLight(int(g), r.OL.Number); err != nil {
				panic(fmt.Sprintf("memctrl: %v", err))
			}
		}
		return
	}
	epoch := c.tracker.Arrive(r.Group)
	c.txq = append(c.txq, txEntry{r: r, epoch: epoch})
}

// schedule issues at most one DRAM command (or PIMExec bus slot) per
// memory cycle, FR-FCFS among transactions the ordering tracker allows.
func (c *Controller) schedule(memCycle int64) {
	if len(c.txq) == 0 {
		return
	}
	// Pass 1: oldest column-ready candidate (row-hit-first).
	anyCandidate := false
	for i := range c.txq {
		e := &c.txq[i]
		if !c.canIssue(e) {
			continue
		}
		if c.seqno && e.r.Kind.IsPIM() && e.r.Seq != c.nextSeq {
			continue // strict in-order release under sequence numbers
		}
		anyCandidate = true
		if c.columnReady(e, memCycle) {
			c.issueColumn(i, memCycle)
			return
		}
		if c.fcfs {
			break // strict FCFS: never hoist a younger row hit
		}
	}
	if !anyCandidate {
		c.st.OLFlagBlocked++
		return
	}
	// Pass 2: progress the oldest candidate's bank (precharge/activate).
	for i := range c.txq {
		e := &c.txq[i]
		if !c.canIssue(e) {
			continue
		}
		if c.seqno && e.r.Kind.IsPIM() && e.r.Seq != c.nextSeq {
			continue
		}
		if e.r.Kind == isa.KindPIMExec {
			continue // never needs bank progress; bus contention only
		}
		open := c.timing.OpenRow(e.r.Bank)
		switch {
		case open == e.r.Row:
			// Row already open; just waiting out column timing.
			return
		case open >= 0:
			if c.timing.CanIssue(dram.CmdPRE, e.r.Bank, open, memCycle) {
				c.timing.Issue(dram.CmdPRE, e.r.Bank, open, memCycle)
				c.st.PreCmds++
				if c.Sink != nil {
					c.emit("mc", "PRE", memCycle, 0, fmt.Sprintf("bank %d row %d", e.r.Bank, open))
				}
				return
			}
		default:
			if c.timing.CanIssue(dram.CmdACT, e.r.Bank, e.r.Row, memCycle) {
				c.timing.Issue(dram.CmdACT, e.r.Bank, e.r.Row, memCycle)
				c.st.ActCmds++
				e.didACT = true
				if c.Sink != nil {
					c.emit("mc", "ACT", memCycle, 0, fmt.Sprintf("bank %d row %d", e.r.Bank, e.r.Row))
				}
				return
			}
		}
		// The oldest candidate's bank is waiting out timing; allow a
		// younger candidate on a different bank to make progress instead
		// (bank-level parallelism), but never issue more than one
		// command per cycle.
		if c.fcfs {
			return // strict FCFS: only the oldest may touch the device
		}
	}
}

// canIssue is the scheduler's ordering gate: the tracker's verdict,
// overridden for transactions a fault plan illegally reorders. Shared
// by schedule, nextSchedule and issueColumn so the dense run, the
// quiescence hint and the injection accounting always agree.
func (c *Controller) canIssue(e *txEntry) bool {
	if c.tracker.CanIssue(e.r.Group, e.epoch) {
		return true
	}
	return c.Fault.ShouldBypassOrdering(e.r.ID)
}

// columnReady reports whether the transaction's final command could
// issue this cycle.
func (c *Controller) columnReady(e *txEntry, memCycle int64) bool {
	if e.r.Kind == isa.KindPIMExec {
		return true // consumes only the command-bus slot
	}
	cmd := dram.CmdRD
	if e.r.Kind.IsWrite() {
		cmd = dram.CmdWR
	}
	return c.timing.CanIssue(cmd, e.r.Bank, e.r.Row, memCycle)
}

// issueColumn completes transaction i: the column command (or exec slot)
// issues to the device, the PIM unit executes the command functionally,
// ordering state advances, and the completion callback fires.
func (c *Controller) issueColumn(i int, memCycle int64) {
	e := c.txq[i]
	if e.r.Kind != isa.KindPIMExec {
		cmd := dram.CmdRD
		name := "RD"
		if e.r.Kind.IsWrite() {
			cmd, name = dram.CmdWR, "WR"
		}
		c.timing.Issue(cmd, e.r.Bank, e.r.Row, memCycle)
		if e.didACT {
			c.st.RowMisses++
		} else {
			c.st.RowHits++
		}
		if c.Sink != nil {
			c.emit("mc", name, memCycle, 0,
				fmt.Sprintf("#%d bank %d row %d", e.r.ID, e.r.Bank, e.r.Row))
		}
	} else if c.Sink != nil {
		c.emit("mc", "exec", memCycle, 0, fmt.Sprintf("#%d", e.r.ID))
	}
	if c.Fault != nil && !c.tracker.CanIssue(e.r.Group, e.epoch) {
		// The transaction is issuing past an undrained older epoch: the
		// canIssue bypass actually fired. Count it here, where the
		// reorder becomes real, not at every scheduler glance.
		c.Fault.Record(fault.PointReordered)
	}
	if e.r.Kind.IsPIM() {
		if d, ok := c.Fault.DelayExec(e.r.ID); ok {
			// Delayed visibility: the command is acknowledged and ordered
			// now, but its functional effect lands d cycles later.
			c.Fault.Record(fault.PointDelayedExec)
			c.unit.Defer(e.r, memCycle+d)
		} else if err := c.unit.Exec(e.r); err != nil {
			panic(fmt.Sprintf("memctrl: PIM execution failed: %v", err))
		}
		if c.Sink != nil {
			c.emit("pim", fmt.Sprintf("%v", e.r.Kind), memCycle, 0,
				fmt.Sprintf("#%d g%d slot %d", e.r.ID, e.r.Group, e.r.TSlot))
		}
	}
	c.st.CountCmd(e.r.Kind)
	c.tracker.Issued(e.r.Group, e.epoch)
	if c.seqno && e.r.Kind.IsPIM() {
		c.nextSeq = e.r.Seq + 1
	}
	if c.IssueLog != nil {
		*c.IssueLog = append(*c.IssueLog, e.r)
	}
	if c.OnIssue != nil {
		c.OnIssue(e.r)
	}
	c.txq = append(c.txq[:i], c.txq[i+1:]...)
}

package memctrl

import (
	"fmt"

	"orderlight/internal/core"
	"orderlight/internal/dram"
	"orderlight/internal/isa"
	"orderlight/internal/pim"
)

// ControllerState is one memory controller's checkpointable state: the
// read/write queue FSM, the ordering tracker, DRAM timing, the
// scheduler's working set, the sequence-number cursor, the refresh
// machinery and the channel's PIM unit. Configuration (seqno/fcfs mode,
// refresh intervals) is rebuilt from config, not checkpointed.
type ControllerState struct {
	Conv         core.ConvergeState
	Tracker      core.TrackerState
	Timing       dram.TimingState
	TXQ          []TxState
	NextSeq      uint64
	NextRefresh  int64
	RefreshUntil int64
	Draining     bool
	Unit         pim.UnitState
}

// TxState is one transaction in the scheduler's working set.
type TxState struct {
	R      isa.Request
	Epoch  int
	DidACT bool
}

// State captures the controller's full mutable state.
func (c *Controller) State() ControllerState {
	s := ControllerState{
		Conv:         c.conv.State(),
		Tracker:      c.tracker.State(),
		Timing:       c.timing.State(),
		NextSeq:      c.nextSeq,
		NextRefresh:  c.nextRefresh,
		RefreshUntil: c.refreshUntil,
		Draining:     c.draining,
		Unit:         c.unit.State(),
	}
	for _, e := range c.txq {
		s.TXQ = append(s.TXQ, TxState{R: e.r, Epoch: int(e.epoch), DidACT: e.didACT})
	}
	return s
}

// Restore replaces the controller's mutable state with the snapshot.
func (c *Controller) Restore(s ControllerState) error {
	if len(s.TXQ) > c.txqCap {
		return fmt.Errorf("memctrl: snapshot has %d transactions, working set holds %d", len(s.TXQ), c.txqCap)
	}
	if err := c.conv.Restore(s.Conv); err != nil {
		return err
	}
	if err := c.tracker.Restore(s.Tracker); err != nil {
		return err
	}
	if err := c.timing.Restore(s.Timing); err != nil {
		return err
	}
	if err := c.unit.Restore(s.Unit); err != nil {
		return err
	}
	c.txq = c.txq[:0]
	for _, e := range s.TXQ {
		c.txq = append(c.txq, txEntry{r: e.R, epoch: core.Epoch(e.Epoch), didACT: e.DidACT})
	}
	c.nextSeq = s.NextSeq
	c.nextRefresh = s.NextRefresh
	c.refreshUntil = s.RefreshUntil
	c.draining = s.Draining
	return nil
}

package rcache_test

import (
	"fmt"
	"os"

	"orderlight/internal/rcache"
)

// A cache miss falls through to the caller's compute path; the Put
// makes the next identical lookup a hit. This is exactly the runner's
// per-cell flow: key by everything the result depends on, look up
// before simulating, insert after.
func Example() {
	dir, err := os.MkdirTemp("", "rcache-example")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)

	cache, err := rcache.Open(dir, 0)
	if err != nil {
		fmt.Println(err)
		return
	}
	key := "cell|cfg=77bf45bd7a9542cc|kernel=add|bytes=131072|engine=skip"

	if _, ok := cache.Get(key); !ok {
		fmt.Println("miss: simulating")
		result := []byte("cycles=10489 fences=12") // stand-in for the gob-encoded stats.Run
		if err := cache.Put(key, result); err != nil {
			fmt.Println(err)
			return
		}
	}
	if data, ok := cache.Get(key); ok {
		fmt.Printf("hit: %s\n", data)
	}
	s := cache.Stats()
	fmt.Printf("hits=%d misses=%d stores=%d\n", s.Hits, s.Misses, s.Stores)
	// Output:
	// miss: simulating
	// hit: cycles=10489 fences=12
	// hits=1 misses=1 stores=1
}

// Package rcache is the content-addressed result store behind warm
// sweep reruns and the olserve daemon's cross-tenant memoization.
//
// # Keying
//
// The cache maps opaque string keys to opaque byte payloads. Callers
// own the keying discipline; the invariant they must keep is that a
// key names everything the payload depends on. The runner keys a cell
// result by the manifest's sha256 config hash (which covers the seed)
// plus the kernel spec, per-channel footprint, host/traffic variant,
// and engine name — and deliberately not the shard count, because the
// parallel engine is gated byte-identical at every shard count, so a
// result computed at -shards 8 may legally answer a -shards 2 lookup.
// A parity test (TestCellCacheEngineShardParity in the experiments
// package) enforces that cached results really are engine- and
// shard-independent.
//
// # Layout
//
// On disk every entry is one blob file named by the hex sha256 of its
// key, in the container format shared with internal/ckpt:
//
//	magic "OLRES1" | version uint16 | payload length uint64 | sha256 | gob envelope
//
// (integers big-endian; the envelope carries the key so a blob can
// prove it answers the key that hashed to its name). Writes are
// atomic — temp file + fsync + rename — so concurrent writers and
// crashes leave either a previous complete blob or none. An in-memory
// LRU front (byte-budgeted, DefaultMemBytes by default) absorbs the
// hot-key traffic.
//
// # Corruption
//
// Get never errors: a truncated, bit-flipped, mis-keyed, or
// wrong-version blob is counted, removed, and reported as a miss, so
// the caller recomputes and rewrites the slot. The cache can lose
// work to corruption; it can never serve it.
//
// Hit/miss/store/byte counters are published process-wide on expvar
// (rcache_hits, rcache_misses, rcache_stores, rcache_bytes_read,
// rcache_bytes_written, rcache_corrupt_dropped) and per-Cache via
// Stats.
package rcache

package rcache

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTripDisk(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	want := []byte("payload bytes")
	if err := c.Put("k", want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("k")
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, want)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Stores != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 store", s)
	}
}

// A second Cache opened on the same directory must see the first one's
// entries — that is the whole point of the disk layer.
func TestReopenSurvivesProcess(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put("cell|abc", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	c2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get("cell|abc")
	if !ok || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("reopened Get = %v, %v", got, ok)
	}
	if s := c2.Stats(); s.BytesRead != 3 {
		t.Fatalf("BytesRead = %d, want 3", s.BytesRead)
	}
}

func TestMemoryOnly(t *testing.T) {
	c, err := Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get("k"); !ok || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if _, ok := c.Get("absent"); ok {
		t.Fatal("hit for absent key")
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := Open("", 10) // tiny budget: two 4-byte entries fit, three don't
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		if err := c.Put(k, []byte("1234")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("oldest entry survived past the byte budget")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("recent entry %q evicted", k)
		}
	}
	// An entry larger than the whole budget is skipped, not crash-looped.
	if err := c.Put("big", make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("big"); ok {
		t.Fatal("over-budget entry landed in memory-only cache")
	}
}

// Disk entries evicted from memory are refetched transparently.
func TestDiskBackfillAfterEviction(t *testing.T) {
	c, err := Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("a", []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("b", []byte("bbbbbbbb")); err != nil { // evicts a
		t.Fatal(err)
	}
	got, ok := c.Get("a")
	if !ok || string(got) != "aaaa" {
		t.Fatalf("disk backfill Get = %q, %v", got, ok)
	}
}

func TestDecodeLadder(t *testing.T) {
	blob, err := Encode("key", []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	flip := func(b []byte, i int) []byte {
		out := append([]byte(nil), b...)
		out[i] ^= 0x40
		return out
	}
	cases := []struct {
		name string
		blob []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short magic", blob[:3], ErrTruncated},
		{"short header", blob[:headerLen-1], ErrTruncated},
		{"short payload", blob[:len(blob)-1], ErrTruncated},
		{"bad magic", flip(blob, 0), ErrFormat},
		{"future version", flip(blob, len(magic)), ErrVersion},
		{"trailing garbage", append(append([]byte(nil), blob...), 0), ErrFormat},
		{"flipped payload byte", flip(blob, headerLen), ErrChecksum},
		{"flipped digest byte", flip(blob, len(magic)+10), ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Decode(tc.blob); !errors.Is(err, tc.want) {
				t.Fatalf("Decode = %v, want %v", err, tc.want)
			}
		})
	}
	if k, d, err := Decode(blob); err != nil || k != "key" || string(d) != "data" {
		t.Fatalf("clean Decode = %q, %q, %v", k, d, err)
	}
}

// Every corruption shape falls back to a miss, removes the damaged
// blob, and a fresh Put heals the slot — the recompute path.
func TestCorruptBlobIsMissNeverServed(t *testing.T) {
	corruptions := []struct {
		name   string
		damage func(path string, blob []byte) error
	}{
		{"truncated", func(p string, b []byte) error { return os.WriteFile(p, b[:len(b)/2], 0o644) }},
		{"bit-flipped payload", func(p string, b []byte) error {
			b = append([]byte(nil), b...)
			b[len(b)-1] ^= 1
			return os.WriteFile(p, b, 0o644)
		}},
		{"zero length", func(p string, b []byte) error { return os.WriteFile(p, nil, 0o644) }},
		{"foreign key blob", func(p string, b []byte) error {
			other, err := Encode("some other key", []byte("stale"))
			if err != nil {
				return err
			}
			return os.WriteFile(p, other, 0o644)
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := Open(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Put("k", []byte("good")); err != nil {
				t.Fatal(err)
			}
			path := c.path("k")
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := tc.damage(path, blob); err != nil {
				t.Fatal(err)
			}
			fresh, err := Open(dir, 0) // bypass the memory front
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := fresh.Get("k"); ok {
				t.Fatalf("served damaged blob: %q", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("damaged blob not removed: %v", err)
			}
			if s := fresh.Stats(); s.Corrupt != 1 {
				t.Fatalf("Corrupt = %d, want 1", s.Corrupt)
			}
			// Recompute path: a new Put re-populates and serves again.
			if err := fresh.Put("k", []byte("good")); err != nil {
				t.Fatal(err)
			}
			if got, ok := fresh.Get("k"); !ok || string(got) != "good" {
				t.Fatalf("healed Get = %q, %v", got, ok)
			}
		})
	}
}

// Put leaves no stray temp files behind.
func TestPutAtomicNoStrayTemp(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Put("k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("stray temp files: %v", ents)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, err := Open(t.TempDir(), 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 50 && err == nil; i++ {
				key := string(rune('a' + (g+i)%4))
				err = c.Put(key, []byte(key))
				if v, ok := c.Get(key); ok && string(v) != key {
					err = errors.New("wrong payload for " + key)
				}
			}
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

package rcache

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"expvar"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"orderlight/internal/chaos"
)

// Version is the current blob format version. Decode rejects any other
// version with ErrVersion.
const Version = 1

const magic = "OLRES1"

// headerLen is magic + version + payload length + sha256.
const headerLen = len(magic) + 2 + 8 + sha256.Size

// Decode failure sentinels. A damaged blob is never fatal to a run —
// Get treats every decode error as a miss and removes the blob — but
// the sentinels keep the failure modes distinct for tests and fuzzing,
// mirroring the ckpt decode ladder.
var (
	ErrTruncated   = errors.New("rcache: blob truncated")
	ErrFormat      = errors.New("rcache: blob format")
	ErrVersion     = errors.New("rcache: blob version")
	ErrChecksum    = errors.New("rcache: blob checksum mismatch")
	ErrKeyMismatch = errors.New("rcache: blob key mismatch")
)

// envelope is the gob payload inside the container: the full cache key
// travels with the data so Get can verify a blob really belongs to the
// key that hashed to its file name (defense against hash-prefix
// collisions and against blobs renamed or copied between directories).
type envelope struct {
	Key  string
	Data []byte
}

// Process-wide counters, published on expvar so olserve's -debug-addr
// style introspection (and olbench's) can watch cache effectiveness.
// Package-level so multiple Cache instances in one process aggregate.
var (
	expHits         = expvar.NewInt("rcache_hits")
	expMisses       = expvar.NewInt("rcache_misses")
	expStores       = expvar.NewInt("rcache_stores")
	expBytesRead    = expvar.NewInt("rcache_bytes_read")
	expBytesWritten = expvar.NewInt("rcache_bytes_written")
	expCorrupt      = expvar.NewInt("rcache_corrupt_dropped")
	expEvictions    = expvar.NewInt("rcache_evictions")
	expDiskBytes    = expvar.NewInt("rcache_disk_bytes")
	expDiskErrors   = expvar.NewInt("rcache_disk_errors")
	expDegraded     = expvar.NewInt("rcache_degraded")
)

// Stats is a point-in-time snapshot of one cache's counters.
type Stats struct {
	Hits         int64 // Get calls answered (memory or disk)
	Misses       int64 // Get calls not answered
	Stores       int64 // Put calls that wrote a new blob
	BytesRead    int64 // payload bytes served from disk (not memory)
	BytesWritten int64 // container bytes written to disk
	Corrupt      int64 // damaged blobs dropped instead of served
	Evictions    int64 // blobs removed by the disk size cap
	DiskBytes    int64 // current on-disk footprint
	DiskErrors   int64 // disk operations that failed
	Degraded     bool  // disk store abandoned; memory-only pass-through
}

// Cache is a content-addressed result store: an optional on-disk blob
// directory (one file per key, written atomically) fronted by an
// in-memory LRU. The zero value is not usable; call Open.
//
// Keys are opaque strings; the caller owns the keying discipline (the
// runner keys cells by config hash + kernel spec + footprint + engine).
// Values are opaque byte slices, typically a gob encoding.
type Cache struct {
	dir  string // "" = memory-only
	fsys chaos.FS

	mu       sync.Mutex
	mem      map[string]*list.Element
	ll       *list.List // front = most recent
	memBytes int64
	memCap   int64

	// Disk LRU state, keyed by blob file base name (the hex key hash)
	// so blobs found at open — whose keys are unrecoverable — still
	// participate in eviction. diskCap 0 means unbounded (no GC).
	disk      map[string]*list.Element
	dll       *list.List // front = most recent
	diskBytes int64
	diskCap   int64

	// errStreak counts consecutive failed disk operations; at
	// degradeAfter the disk store is abandoned for the life of the
	// Cache and Get/Put become memory-only pass-throughs. A run on a
	// sick disk loses memoization, never correctness.
	errStreak int
	degraded  bool

	stats Stats
}

type memEntry struct {
	key  string
	data []byte
}

type diskEntry struct {
	file string // base name inside c.dir
	size int64
}

// DefaultMemBytes is the in-memory LRU budget when Open is given a
// non-positive one. Cell results are a few hundred bytes each, so this
// holds on the order of 10^5 hot entries.
const DefaultMemBytes = 32 << 20

// degradeAfter is how many consecutive disk failures the cache
// tolerates before declaring the disk sick and going memory-only.
// One flaky operation self-heals; a full or read-only store trips the
// breaker within a handful of cells.
const degradeAfter = 3

// Config describes a cache to OpenWith.
type Config struct {
	// Dir is the blob directory; "" means memory-only.
	Dir string

	// MemBytes bounds the in-memory LRU front; <= 0 uses
	// DefaultMemBytes.
	MemBytes int64

	// DiskBytes caps the on-disk store; past it the least recently
	// used blobs are evicted. <= 0 leaves the store unbounded.
	DiskBytes int64

	// FS is the filesystem the blob store writes through; nil means
	// the real one. The chaos harness injects its sick disk here.
	FS chaos.FS
}

// Open returns a cache backed by dir, creating it if needed. An empty
// dir gives a memory-only cache (still useful inside one process: the
// daemon shares one across jobs and tenants). memBytes bounds the
// in-memory front; <= 0 uses DefaultMemBytes.
func Open(dir string, memBytes int64) (*Cache, error) {
	return OpenWith(Config{Dir: dir, MemBytes: memBytes})
}

// OpenWith is Open with the full configuration surface: disk size cap
// and injectable filesystem. Blobs already in the directory are
// inventoried (oldest first) so the size cap governs pre-existing
// state too.
func OpenWith(cfg Config) (*Cache, error) {
	fsys := cfg.FS
	if fsys == nil {
		fsys = chaos.OS
	}
	if cfg.Dir != "" {
		if err := fsys.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("rcache: open %s: %w", cfg.Dir, err)
		}
	}
	if cfg.MemBytes <= 0 {
		cfg.MemBytes = DefaultMemBytes
	}
	c := &Cache{
		dir:     cfg.Dir,
		fsys:    fsys,
		mem:     make(map[string]*list.Element),
		ll:      list.New(),
		memCap:  cfg.MemBytes,
		disk:    make(map[string]*list.Element),
		dll:     list.New(),
		diskCap: cfg.DiskBytes,
	}
	if c.dir != "" {
		if err := c.scanDisk(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// scanDisk inventories existing blobs into the disk LRU, oldest
// modification first, and applies the size cap to what it found.
func (c *Cache) scanDisk() error {
	ents, err := c.fsys.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("rcache: open %s: %w", c.dir, err)
	}
	type found struct {
		name  string
		size  int64
		mtime int64
	}
	var blobs []found
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".res") {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue // raced with a concurrent eviction; skip
		}
		blobs = append(blobs, found{ent.Name(), info.Size(), info.ModTime().UnixNano()})
	}
	sort.Slice(blobs, func(i, j int) bool {
		if blobs[i].mtime != blobs[j].mtime {
			return blobs[i].mtime < blobs[j].mtime
		}
		return blobs[i].name < blobs[j].name
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, b := range blobs {
		c.disk[b.name] = c.dll.PushFront(&diskEntry{file: b.name, size: b.size})
		c.diskBytes += b.size
	}
	c.stats.DiskBytes = c.diskBytes
	expDiskBytes.Add(c.diskBytes)
	c.evictDiskLocked()
	return nil
}

// Dir reports the backing directory ("" for memory-only).
func (c *Cache) Dir() string { return c.dir }

// path maps a key to its blob file: the hex sha256 of the key (file
// names stay fixed-length and filesystem-safe no matter what the key
// contains).
func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, fmt.Sprintf("%x.res", sum))
}

// Encode renders a key/payload pair into the versioned container
// format shared with internal/ckpt:
//
//	magic "OLRES1" | version uint16 | payload length uint64 | sha256 | gob envelope
//
// (integers big-endian; the envelope carries the key alongside the
// data so decoding can prove the blob answers the key asked about).
func Encode(key string, data []byte) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&envelope{Key: key, Data: data}); err != nil {
		return nil, fmt.Errorf("rcache: encode: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())
	out := make([]byte, 0, headerLen+payload.Len())
	out = append(out, magic...)
	out = binary.BigEndian.AppendUint16(out, Version)
	out = binary.BigEndian.AppendUint64(out, uint64(payload.Len()))
	out = append(out, sum[:]...)
	out = append(out, payload.Bytes()...)
	return out, nil
}

// Decode parses and verifies a blob container, returning the embedded
// key and payload. Failure modes map to distinct sentinels: short read
// ErrTruncated, bad magic / trailing garbage / undecodable payload
// ErrFormat, future version ErrVersion, digest mismatch ErrChecksum.
func Decode(blob []byte) (key string, data []byte, err error) {
	if len(blob) < len(magic) {
		return "", nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(blob), headerLen)
	}
	if string(blob[:len(magic)]) != magic {
		return "", nil, fmt.Errorf("%w: bad magic %q", ErrFormat, blob[:len(magic)])
	}
	if len(blob) < headerLen {
		return "", nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(blob), headerLen)
	}
	ver := binary.BigEndian.Uint16(blob[len(magic):])
	if ver != Version {
		return "", nil, fmt.Errorf("%w: blob is v%d, this build reads v%d", ErrVersion, ver, Version)
	}
	declared := binary.BigEndian.Uint64(blob[len(magic)+2:])
	var sum [sha256.Size]byte
	copy(sum[:], blob[len(magic)+10:])
	payload := blob[headerLen:]
	if uint64(len(payload)) < declared {
		return "", nil, fmt.Errorf("%w: payload is %d of %d declared bytes", ErrTruncated, len(payload), declared)
	}
	if uint64(len(payload)) > declared {
		return "", nil, fmt.Errorf("%w: %d bytes of trailing garbage", ErrFormat, uint64(len(payload))-declared)
	}
	if sha256.Sum256(payload) != sum {
		return "", nil, fmt.Errorf("%w: payload does not match header digest", ErrChecksum)
	}
	var e envelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
		return "", nil, fmt.Errorf("%w: payload decode: %v", ErrFormat, err)
	}
	return e.Key, e.Data, nil
}

// Get looks key up, memory first then disk. It never returns an error:
// a truncated, bit-flipped, or mis-keyed blob counts as a miss and the
// damaged file is removed so the slot is recomputed and rewritten —
// the cache can lose work to corruption but can never serve it. A
// degraded cache (sick disk) answers from memory only.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.mem[key]; ok {
		c.ll.MoveToFront(el)
		data := el.Value.(*memEntry).data
		c.stats.Hits++
		c.mu.Unlock()
		expHits.Add(1)
		return data, true
	}
	degraded := c.degraded
	c.mu.Unlock()

	if c.dir == "" || degraded {
		c.miss()
		return nil, false
	}
	path := c.path(key)
	blob, err := c.fsys.ReadFile(path)
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			c.noteDiskErr()
		}
		c.miss()
		return nil, false
	}
	c.noteDiskOK()
	gotKey, data, err := Decode(blob)
	if err == nil && gotKey != key {
		err = fmt.Errorf("%w: blob carries %q", ErrKeyMismatch, gotKey)
	}
	if err != nil {
		c.fsys.Remove(path)
		c.mu.Lock()
		c.stats.Corrupt++
		c.dropDiskLocked(filepath.Base(path))
		c.mu.Unlock()
		expCorrupt.Add(1)
		c.miss()
		return nil, false
	}
	c.mu.Lock()
	c.stats.Hits++
	c.stats.BytesRead += int64(len(data))
	if el, ok := c.disk[filepath.Base(path)]; ok {
		c.dll.MoveToFront(el)
	}
	c.insertMemLocked(key, data)
	c.mu.Unlock()
	expHits.Add(1)
	expBytesRead.Add(int64(len(data)))
	return data, true
}

func (c *Cache) miss() {
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	expMisses.Add(1)
}

// Put stores data under key: atomically on disk (temp file + fsync +
// rename, so a crash mid-write leaves the previous blob or none) and
// in the LRU front. Storing the same key again overwrites — entries
// are content-addressed, so any two writers write the same bytes.
// A disk failure is reported to the caller but also counted toward
// the degradation breaker: after degradeAfter consecutive failures
// the disk store is abandoned and Put becomes memory-only (and stops
// returning errors) — graceful pass-through instead of a failing run.
func (c *Cache) Put(key string, data []byte) error {
	if c.dir != "" && !c.Degraded() {
		blob, err := Encode(key, data)
		if err != nil {
			return err
		}
		path := c.path(key)
		if err := c.writeBlob(path, blob); err != nil {
			c.noteDiskErr()
			c.mu.Lock()
			c.stats.Stores++
			c.insertMemLocked(key, data)
			c.mu.Unlock()
			expStores.Add(1)
			return err
		}
		c.noteDiskOK()
		expBytesWritten.Add(int64(len(blob)))
		c.mu.Lock()
		c.stats.BytesWritten += int64(len(blob))
		c.recordDiskLocked(filepath.Base(path), int64(len(blob)))
		c.evictDiskLocked()
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.stats.Stores++
	c.insertMemLocked(key, data)
	c.mu.Unlock()
	expStores.Add(1)
	return nil
}

// writeBlob lands one container atomically at path.
func (c *Cache) writeBlob(path string, blob []byte) error {
	// Unique temp name per writer: two goroutines racing to store
	// the same key write identical content, and whichever rename
	// lands last wins without clobbering the other's temp file.
	f, err := c.fsys.CreateTemp(c.dir, filepath.Base(path)+".*.tmp")
	if err != nil {
		return fmt.Errorf("rcache: put: %w", err)
	}
	tmp := f.Name()
	if _, err = f.Write(blob); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = c.fsys.Chmod(tmp, 0o644)
	}
	if err == nil {
		err = c.fsys.Rename(tmp, path)
	}
	if err != nil {
		c.fsys.Remove(tmp)
		return fmt.Errorf("rcache: put %s: %w", path, err)
	}
	return nil
}

// recordDiskLocked adds (or refreshes) a disk LRU entry. Caller holds
// c.mu.
func (c *Cache) recordDiskLocked(file string, size int64) {
	if el, ok := c.disk[file]; ok {
		ent := el.Value.(*diskEntry)
		c.diskBytes += size - ent.size
		expDiskBytes.Add(size - ent.size)
		ent.size = size
		c.dll.MoveToFront(el)
	} else {
		c.disk[file] = c.dll.PushFront(&diskEntry{file: file, size: size})
		c.diskBytes += size
		expDiskBytes.Add(size)
	}
	c.stats.DiskBytes = c.diskBytes
}

// dropDiskLocked forgets a disk LRU entry (corrupt blob removal,
// eviction). Caller holds c.mu.
func (c *Cache) dropDiskLocked(file string) {
	el, ok := c.disk[file]
	if !ok {
		return
	}
	ent := el.Value.(*diskEntry)
	c.dll.Remove(el)
	delete(c.disk, file)
	c.diskBytes -= ent.size
	c.stats.DiskBytes = c.diskBytes
	expDiskBytes.Add(-ent.size)
}

// evictDiskLocked removes least-recently-used blobs past the size
// cap. Caller holds c.mu. Removal failures are ignored: the entry
// leaves the accounting either way, and a genuinely sick disk trips
// the degradation breaker through the Put/Get paths.
func (c *Cache) evictDiskLocked() {
	if c.diskCap <= 0 {
		return
	}
	for c.diskBytes > c.diskCap {
		tail := c.dll.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*diskEntry)
		c.fsys.Remove(filepath.Join(c.dir, ent.file))
		c.dropDiskLocked(ent.file)
		c.stats.Evictions++
		expEvictions.Add(1)
	}
}

// noteDiskErr counts one failed disk operation toward the degradation
// breaker.
func (c *Cache) noteDiskErr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.DiskErrors++
	expDiskErrors.Add(1)
	c.errStreak++
	if !c.degraded && c.errStreak >= degradeAfter {
		c.degraded = true
		c.stats.Degraded = true
		expDegraded.Add(1)
	}
}

// noteDiskOK resets the consecutive-failure streak.
func (c *Cache) noteDiskOK() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.errStreak = 0
}

// Degraded reports whether the cache has abandoned its disk store.
func (c *Cache) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// insertMemLocked adds (or refreshes) a memory entry and evicts from
// the LRU tail past the byte budget. Caller holds c.mu.
func (c *Cache) insertMemLocked(key string, data []byte) {
	if int64(len(data)) > c.memCap {
		return // larger than the whole budget; disk still has it
	}
	if el, ok := c.mem[key]; ok {
		c.memBytes += int64(len(data)) - int64(len(el.Value.(*memEntry).data))
		el.Value.(*memEntry).data = data
		c.ll.MoveToFront(el)
	} else {
		c.mem[key] = c.ll.PushFront(&memEntry{key: key, data: data})
		c.memBytes += int64(len(data))
	}
	for c.memBytes > c.memCap {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*memEntry)
		c.ll.Remove(tail)
		delete(c.mem, ent.key)
		c.memBytes -= int64(len(ent.data))
	}
}

// Stats snapshots this cache's counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

package rcache

import (
	"expvar"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"orderlight/internal/chaos"
)

func sickFS(t *testing.T, spec string, seed uint64) chaos.FS {
	t.Helper()
	s, err := chaos.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	s.Seed = seed
	p, err := chaos.NewPlan(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	return chaos.NewFS(p, chaos.OS)
}

func expInt(name string) int64 {
	return expvar.Get(name).(*expvar.Int).Value()
}

// TestDegradeOnENOSPC pins the graceful-degradation contract: a full
// disk costs memoization, never correctness. Puts fail loudly until
// the breaker trips, then the cache is a memory-only pass-through and
// stops erroring; the rcache_degraded expvar announces the state.
func TestDegradeOnENOSPC(t *testing.T) {
	degradedBefore := expInt("rcache_degraded")
	c, err := OpenWith(Config{Dir: t.TempDir(), FS: sickFS(t, "enospc=1", 1)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < degradeAfter; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte("v")); err == nil {
			t.Fatalf("Put %d on a full disk reported success", i)
		}
		// The memory front still took the value: the run keeps its
		// intra-process memoization even while the disk fails.
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("Put %d lost the value from the memory front", i)
		}
	}
	if !c.Degraded() {
		t.Fatalf("cache not degraded after %d consecutive disk failures", degradeAfter)
	}
	if got := expInt("rcache_degraded"); got != degradedBefore+1 {
		t.Fatalf("rcache_degraded = %d, want %d", got, degradedBefore+1)
	}
	// Past the breaker: no more disk attempts, no more errors.
	if err := c.Put("after", []byte("v")); err != nil {
		t.Fatalf("degraded Put still errors: %v", err)
	}
	if _, ok := c.Get("after"); !ok {
		t.Fatal("degraded cache lost a stored value")
	}
	st := c.Stats()
	if !st.Degraded || st.DiskErrors < degradeAfter {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDegradeOnReadOnlyStore covers the other common sick-disk shape:
// the directory exists but nothing can be written.
func TestDegradeOnReadOnlyStore(t *testing.T) {
	if os.Getuid() == 0 {
		t.Skip("root ignores directory write bits")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < degradeAfter; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	if !c.Degraded() {
		t.Fatal("cache not degraded on a read-only store")
	}
	if err := c.Put("after", []byte("v")); err != nil {
		t.Fatalf("degraded Put still errors: %v", err)
	}
}

// TestFlakyDiskSelfHeals pins the streak semantics: isolated failures
// with successes between them never trip the breaker.
func TestFlakyDiskSelfHeals(t *testing.T) {
	// rename=0.3 with this seed fails 13 of 40 Puts but never
	// degradeAfter in a row; interleaved successes reset the streak.
	c, err := OpenWith(Config{Dir: t.TempDir(), FS: sickFS(t, "rename=0.3", 3)})
	if err != nil {
		t.Fatal(err)
	}
	var failures int
	for i := 0; i < 40; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("rename=0.3 plan never fired; test is vacuous")
	}
	if c.Degraded() {
		t.Fatalf("flaky-but-alive disk (%d/40 failures) tripped the breaker", failures)
	}
}

// TestDiskCapLRU pins the size-capped GC: the store never exceeds the
// cap, the least recently used blobs go first, and a touched blob
// survives eviction of its elders.
func TestDiskCapLRU(t *testing.T) {
	dir := t.TempDir()
	blob, err := Encode("probe", []byte("xy"))
	if err != nil {
		t.Fatal(err)
	}
	per := int64(len(blob)) + 2 // per-blob footprint (keys here are same-length)
	cap := 4 * per              // room for ~4 blobs
	// MemBytes 1 with 2-byte payloads: nothing fits the memory front,
	// so every Get exercises the disk path and its LRU touching.
	c, err := OpenWith(Config{Dir: dir, DiskBytes: cap, MemBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := c.Put(fmt.Sprintf("key%02d", i), []byte("xy")); err != nil {
			t.Fatal(err)
		}
		// Keep key00 hot so eviction passes over it.
		if i >= 1 {
			if _, ok := c.Get("key00"); !ok {
				t.Fatalf("hot key00 evicted after put %d", i)
			}
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("8 puts into a 4-blob cap evicted nothing")
	}
	if st.DiskBytes > cap {
		t.Fatalf("disk footprint %d exceeds cap %d", st.DiskBytes, cap)
	}
	if _, ok := c.Get("key00"); !ok {
		t.Fatal("most recently used key evicted")
	}
	if _, ok := c.Get("key01"); ok {
		t.Fatal("cold oldest key survived past the cap")
	}
	files, _ := os.ReadDir(dir)
	var n int
	for _, f := range files {
		if filepath.Ext(f.Name()) == ".res" {
			n++
		}
	}
	if int64(n)*per > cap+per {
		t.Fatalf("%d blobs on disk, cap holds ~4", n)
	}
}

// TestDiskCapGovernsPreexistingBlobs proves a reopened store inherits
// its inventory into the LRU: blobs written by a previous process are
// counted and evicted under the cap.
func TestDiskCapGovernsPreexistingBlobs(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := c.Put(fmt.Sprintf("key%02d", i), []byte("xy")); err != nil {
			t.Fatal(err)
		}
	}
	full := c.Stats().DiskBytes
	if full == 0 {
		t.Fatal("no disk footprint recorded")
	}
	reopened, err := OpenWith(Config{Dir: dir, DiskBytes: full / 2, MemBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := reopened.Stats()
	if st.DiskBytes > full/2 {
		t.Fatalf("reopened store holds %d bytes, cap %d", st.DiskBytes, full/2)
	}
	if st.Evictions == 0 {
		t.Fatal("reopening over-cap store evicted nothing")
	}
}

// TestWarmCacheStillServesUnderCap: with a cap roomy enough for the
// working set, a rerun is still fully served from disk.
func TestWarmCacheStillServesUnderCap(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenWith(Config{Dir: dir, DiskBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := c.Put(fmt.Sprintf("key%02d", i), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	warm, err := OpenWith(Config{Dir: dir, DiskBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, ok := warm.Get(fmt.Sprintf("key%02d", i)); !ok {
			t.Fatalf("warm rerun missed key%02d", i)
		}
	}
	if warm.Stats().Evictions != 0 {
		t.Fatal("roomy cap evicted from the working set")
	}
}

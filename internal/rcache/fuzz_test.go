package rcache

import (
	"bytes"
	"testing"
)

// fuzzSeedBlob is a small valid blob seeding the decoder fuzzer near
// the interesting surface.
func fuzzSeedBlob(tb testing.TB) []byte {
	blob, err := Encode("cell|cfg=77bf45bd7a9542cc|add|131072|skip", []byte("gob payload"))
	if err != nil {
		tb.Fatal(err)
	}
	return blob
}

// FuzzResultCacheDecode throws arbitrary bytes at the blob decoder.
// The invariants: Decode never panics, and anything it accepts
// survives a re-encode/re-decode round trip with identical key and
// payload — a damaged blob is always a typed error (which Get turns
// into a miss), never a crash or a silently wrong result.
func FuzzResultCacheDecode(f *testing.F) {
	valid := fuzzSeedBlob(f)
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(append(append([]byte(nil), valid...), 0xAA))
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)-1] ^= 0x01
	f.Add(mutated)
	wrongVer := append([]byte(nil), valid...)
	wrongVer[len(magic)+1] = 0x07
	f.Add(wrongVer)
	f.Fuzz(func(t *testing.T, data []byte) {
		key, payload, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(key, payload)
		if err != nil {
			t.Fatalf("accepted blob does not re-encode: %v", err)
		}
		key2, payload2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded blob does not decode: %v", err)
		}
		if key2 != key || !bytes.Equal(payload2, payload) {
			t.Fatalf("content changed across round trip: %q/%q vs %q/%q", key2, payload2, key, payload)
		}
	})
}

// TestFuzzSeedsAreWellFormed pins the committed corpus entries'
// intent: the valid seed decodes, and carries the expected magic.
func TestFuzzSeedsAreWellFormed(t *testing.T) {
	valid := fuzzSeedBlob(t)
	if _, _, err := Decode(valid); err != nil {
		t.Fatalf("seed blob does not decode: %v", err)
	}
	if !bytes.HasPrefix(valid, []byte(magic)) {
		t.Fatal("seed blob lost its magic")
	}
}

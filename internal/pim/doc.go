// Package pim implements the generic, parameterized PIM compute unit
// of §4.1: a SIMD ALU coupled with temporary storage (TS), attached to
// one memory channel. The unit executes fine-grained PIM commands
// functionally over real int32 data in the DRAM backing store, in the
// exact order the memory controller issues them — so a run whose
// ordering is wrong produces wrong bytes, not just wrong statistics.
// That property is what makes Figure 5's "functionally incorrect"
// no-primitive configuration demonstrable rather than asserted.
//
// The bandwidth multiplication factor (BMF) of the unit is embodied in
// the lane width of the store's slots: one command moves 8*BMF int32
// lanes while occupying the channel like a single 32 B column access.
// This is the paper's definition of PIM data bandwidth as command
// bandwidth x BMF (§6), and it is what the Figure 13 BMF sweep varies.
//
// Temporary-storage capacity (Config.PIM.TSBytes) bounds how many
// command slots a tile may use; the TS-fraction axis of Figures 5, 10a
// and 10b sweeps it. Executed-command counts by kind feed the command
// taxonomy rows of the experiment tables, and each execution is also
// visible on the channel's "pim" track in exported Perfetto traces.
package pim
